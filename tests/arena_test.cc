// RepairContext / Arena memory-model tests.
//
// Three layers of guarantees, strongest first:
//   1. The arena and scratch pools behave as documented (alignment, O(1)
//      reset, block reuse, capacity retention).
//   2. Context reuse is invisible in results: fresh-context and
//      reused-context repairs are byte-identical across the adversarial
//      corpus and every algorithm/metric combination.
//   3. The batch worker loop performs ZERO steady-state heap allocations
//      per document on the balanced fast path, and the FPT path's
//      allocation count plateaus (constant per document, strictly below a
//      fresh context's) — measured with a global operator-new hook.
//
// Suite names deliberately contain "Arena"/"Context" so the tsan/asan
// preset filters pick them up (context reuse across pool workers must be
// TSan-clean).

// The replaced operators intentionally pair ::operator delete with
// std::free; GCC cannot see that the matching ::operator new is also
// malloc-backed and warns at inlined call sites throughout the TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/context.h"
#include "src/core/dyck.h"
#include "src/gen/adversarial.h"
#include "src/gen/workload.h"
#include "src/pipeline/pipeline.h"
#include "src/runtime/batch_engine.h"
#include "src/util/arena.h"

namespace {

// Global allocation counter. Replacing the global operators is the only
// way to observe *every* heap allocation the library makes (std::vector,
// unordered_map, make_unique, ...). The replacements must come in
// new/delete pairs backed by the same allocator (malloc/free here).
std::atomic<long long> g_heap_allocs{0};

long long HeapAllocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
// The nothrow variants must be replaced too: libstdc++'s
// get_temporary_buffer (std::stable_sort) allocates through
// operator new(nothrow) — if only the throwing overloads were replaced,
// those allocations would escape the counter, and under ASan they would
// pair the sanitizer's own operator-new interceptor with our free()-based
// operator delete, tripping alloc-dealloc-mismatch.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace dyck {
namespace {

// ---------------------------------------------------------------------
// Arena basics.

TEST(ArenaTest, AllocationsAreAlignedAndTracked) {
  Arena arena;
  EXPECT_EQ(arena.used_bytes(), 0);
  void* a = arena.Allocate(3, 1);
  void* b = arena.Allocate(8, 8);
  void* c = arena.Allocate(64, 64);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 64, 0u);
  EXPECT_GE(arena.used_bytes(), 3 + 8 + 64);
  EXPECT_EQ(arena.high_water_bytes(), arena.used_bytes());
}

TEST(ArenaTest, ZeroByteAllocationsReturnDistinctPointers) {
  Arena arena;
  void* a = arena.Allocate(0, 1);
  void* b = arena.Allocate(0, 1);
  EXPECT_NE(a, b);
}

TEST(ArenaTest, ResetRewindsInConstantTimeAndKeepsBlocks) {
  Arena arena;
  for (int i = 0; i < 100; ++i) arena.Allocate(4096, 8);
  const size_t blocks_before = arena.block_allocs();
  const int64_t high_water = arena.high_water_bytes();
  EXPECT_GT(blocks_before, 1u);

  arena.Reset();
  EXPECT_EQ(arena.used_bytes(), 0);
  EXPECT_EQ(arena.resets(), 1);
  EXPECT_EQ(arena.high_water_bytes(), high_water);

  // The same allocation pattern replays entirely out of retained blocks.
  for (int i = 0; i < 100; ++i) arena.Allocate(4096, 8);
  EXPECT_EQ(arena.block_allocs(), blocks_before);
}

TEST(ArenaTest, OversizedRequestGetsDedicatedBlock) {
  Arena arena;
  void* big = arena.Allocate(1 << 20, 8);  // far above the block size
  ASSERT_NE(big, nullptr);
  EXPECT_GE(arena.reserved_bytes(), 1 << 20);
  // And the arena keeps working afterwards.
  void* small = arena.Allocate(16, 8);
  ASSERT_NE(small, nullptr);
}

TEST(ArenaAllocatorTest, BacksStandardContainers) {
  Arena arena;
  std::vector<int64_t, ArenaAllocator<int64_t>> v{
      ArenaAllocator<int64_t>(&arena)};
  for (int64_t i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_EQ(v[999], 999);
  EXPECT_GT(arena.used_bytes(), 0);
  EXPECT_TRUE(ArenaAllocator<int64_t>(&arena) ==
              ArenaAllocator<int32_t>(&arena));
}

TEST(ArenaScratchPoolTest, ReleaseThenAcquireRetainsCapacity) {
  ScratchPool<int64_t> pool;
  std::vector<int64_t> buf = pool.Acquire();
  EXPECT_EQ(pool.misses(), 1);
  buf.resize(4096);
  const size_t capacity = buf.capacity();
  pool.Release(std::move(buf));

  std::vector<int64_t> again = pool.Acquire();
  EXPECT_EQ(pool.misses(), 1);  // served from the free list
  EXPECT_TRUE(again.empty());
  EXPECT_GE(again.capacity(), capacity);
}

// ---------------------------------------------------------------------
// Context plumbing.

TEST(ContextTest, ScopeInstallsAndRestores) {
  RepairContext& ambient = RepairContext::CurrentThread();
  RepairContext mine;
  {
    RepairContextScope scope(&mine);
    EXPECT_EQ(&RepairContext::CurrentThread(), &mine);
    RepairContext inner;
    {
      RepairContextScope nested(&inner);
      EXPECT_EQ(&RepairContext::CurrentThread(), &inner);
    }
    EXPECT_EQ(&RepairContext::CurrentThread(), &mine);
  }
  EXPECT_EQ(&RepairContext::CurrentThread(), &ambient);
}

TEST(ContextTest, BeginDocumentResetsArenaAndCounts) {
  RepairContext ctx;
  ctx.arena().Allocate(128, 8);
  EXPECT_GT(ctx.arena().used_bytes(), 0);
  ctx.BeginDocument();
  EXPECT_EQ(ctx.arena().used_bytes(), 0);
  EXPECT_EQ(ctx.documents(), 1);
  ctx.BeginDocument();
  EXPECT_EQ(ctx.documents(), 2);
}

TEST(ContextTelemetryTest, ArenaCountersRideOnResults) {
  RepairContext ctx;
  const ParenSeq seq = gen::ManyValleys(2, 3);
  const auto first = Repair(seq, {}, &ctx);
  ASSERT_TRUE(first.ok());
  const auto second = Repair(seq, {}, &ctx);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->telemetry.arena_resets, 1);
  EXPECT_EQ(second->telemetry.arena_resets, 2);
  EXPECT_GT(second->telemetry.arena_high_water_bytes, 0);
  // A reused context fetches no new heap blocks for an identical document.
  EXPECT_EQ(second->telemetry.heap_allocs, first->telemetry.heap_allocs);
}

// ---------------------------------------------------------------------
// Differential: context reuse must be invisible in results.

std::vector<ParenSeq> AdversarialCorpus() {
  std::vector<ParenSeq> corpus;
  corpus.push_back(gen::ManyValleys(2, 3));
  corpus.push_back(gen::MismatchedV(12, 3, /*seed=*/7));
  corpus.push_back(gen::GreedyTrap(10));
  corpus.push_back(ParenSeq{});  // empty
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    gen::BalancedOptions bopts;
    bopts.length = 96;
    bopts.num_types = 3;
    bopts.shape = seed % 2 == 0 ? gen::Shape::kUniform : gen::Shape::kDeep;
    const ParenSeq balanced = gen::RandomBalanced(bopts, seed);
    corpus.push_back(balanced);  // the balanced fast path
    gen::CorruptionOptions copts;
    copts.num_edits = 3;
    copts.kind = gen::CorruptionKind::kMixed;
    corpus.push_back(gen::Corrupt(balanced, copts, seed * 31).seq);
  }
  return corpus;
}

void ExpectSameResult(const StatusOr<RepairResult>& fresh,
                      const StatusOr<RepairResult>& reused) {
  ASSERT_EQ(fresh.ok(), reused.ok())
      << fresh.status().ToString() << " vs " << reused.status().ToString();
  if (!fresh.ok()) {
    EXPECT_EQ(fresh.status().code(), reused.status().code());
    return;
  }
  EXPECT_EQ(fresh->distance, reused->distance);
  EXPECT_EQ(fresh->degraded, reused->degraded);
  EXPECT_TRUE(fresh->script.ops == reused->script.ops);
  EXPECT_TRUE(fresh->script.aligned_pairs == reused->script.aligned_pairs);
  EXPECT_TRUE(fresh->repaired == reused->repaired);
}

TEST(ContextReuseTest, FreshAndReusedContextsAreByteIdentical) {
  const std::vector<ParenSeq> corpus = AdversarialCorpus();
  std::vector<Options> grid;
  for (const Metric metric :
       {Metric::kDeletionsOnly, Metric::kDeletionsAndSubstitutions}) {
    for (const Algorithm algorithm :
         {Algorithm::kAuto, Algorithm::kFpt, Algorithm::kCubic}) {
      Options options;
      options.metric = metric;
      options.algorithm = algorithm;
      grid.push_back(options);
    }
  }

  RepairContext reused;  // serves every (seq, options) pair in sequence
  for (const Options& options : grid) {
    for (const ParenSeq& seq : corpus) {
      RepairContext fresh;
      const auto a = Repair(seq, options, &fresh);
      const auto b = Repair(seq, options, &reused);
      ExpectSameResult(a, b);
    }
  }
  // One context served the whole grid.
  EXPECT_EQ(reused.documents(),
            static_cast<int64_t>(grid.size() * corpus.size()));
}

TEST(ContextReuseTest, RepairIntoMatchesRepair) {
  const std::vector<ParenSeq> corpus = AdversarialCorpus();
  RepairContext ctx;
  RepairResult into;  // reused across all documents
  for (const ParenSeq& seq : corpus) {
    const auto direct = Repair(seq, {});
    const Status status = RepairInto(seq, {}, &ctx, &into);
    ASSERT_EQ(direct.ok(), status.ok());
    if (!direct.ok()) continue;
    EXPECT_EQ(direct->distance, into.distance);
    EXPECT_TRUE(direct->script.ops == into.script.ops);
    EXPECT_TRUE(direct->repaired == into.repaired);
  }
}

// ---------------------------------------------------------------------
// Allocation accounting: the tentpole's acceptance criterion.

TEST(ContextAllocTest, ZeroSteadyStateHeapAllocsPerBalancedDocument) {
  // The batch worker loop's shape: one long-lived context, one reused
  // result, documents streaming through. Balanced inputs take the fast
  // path (no solver), which must be allocation-free once warm.
  std::vector<ParenSeq> docs;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    gen::BalancedOptions bopts;
    bopts.length = 256;
    bopts.num_types = 4;
    bopts.shape = gen::Shape::kUniform;
    docs.push_back(gen::RandomBalanced(bopts, seed));
  }

  RepairContext ctx;
  RepairResult result;
  const Options options;

  // Warmup: two full passes grow every scratch vector and the result's
  // capacity to the corpus maximum.
  for (int pass = 0; pass < 2; ++pass) {
    for (const ParenSeq& doc : docs) {
      ASSERT_TRUE(RepairInto(doc, options, &ctx, &result).ok());
    }
  }

  const long long before = HeapAllocs();
  for (int pass = 0; pass < 3; ++pass) {
    for (const ParenSeq& doc : docs) {
      ASSERT_TRUE(RepairInto(doc, options, &ctx, &result).ok());
      ASSERT_EQ(result.distance, 0);
    }
  }
  const long long after = HeapAllocs();
  EXPECT_EQ(after - before, 0)
      << (after - before) << " heap allocations leaked into the steady "
      << "state of the balanced batch loop";
}

TEST(ContextAllocTest, FptPathAllocsPlateauAndBeatFreshContext) {
  // Unbalanced documents run the FPT solver, whose pimpl and LCE index
  // are per-document by design — the claim is a *plateau*: with a reused
  // context the per-document allocation count is constant (scratch is
  // warm) and strictly below a fresh context's.
  const ParenSeq doc = gen::MismatchedV(16, 2, /*seed=*/3);
  const Options options;

  RepairContext reused;
  RepairResult result;
  for (int i = 0; i < 3; ++i) {  // warm the context
    ASSERT_TRUE(RepairInto(doc, options, &reused, &result).ok());
  }
  long long reused_counts[3] = {};
  for (int i = 0; i < 3; ++i) {
    const long long before = HeapAllocs();
    ASSERT_TRUE(RepairInto(doc, options, &reused, &result).ok());
    reused_counts[i] = HeapAllocs() - before;
  }
  EXPECT_EQ(reused_counts[0], reused_counts[1]);
  EXPECT_EQ(reused_counts[1], reused_counts[2]);

  long long fresh_count = 0;
  {
    RepairContext fresh;
    RepairResult fresh_result;
    const long long before = HeapAllocs();
    ASSERT_TRUE(RepairInto(doc, options, &fresh, &fresh_result).ok());
    fresh_count = HeapAllocs() - before;
  }
  EXPECT_LT(reused_counts[2], fresh_count)
      << "context reuse saved no allocations over a cold context";
}

// ---------------------------------------------------------------------
// Batch: per-worker contexts under threads (TSan coverage).

TEST(ContextBatchTest, WorkerContextReuseIsDeterministicAcrossRuns) {
  std::vector<ParenSeq> docs;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    gen::BalancedOptions bopts;
    bopts.length = 128;
    bopts.num_types = 3;
    bopts.shape = gen::Shape::kUniform;
    const ParenSeq balanced = gen::RandomBalanced(bopts, seed);
    gen::CorruptionOptions copts;
    copts.num_edits = static_cast<int64_t>(seed % 4);  // some stay balanced
    docs.push_back(gen::Corrupt(balanced, copts, seed).seq);
  }

  runtime::BatchOptions batch_options;
  batch_options.jobs = 4;
  runtime::BatchRepairEngine engine(batch_options);

  const auto first = engine.RepairAll(docs, {});
  const auto second = engine.RepairAll(docs, {});  // contexts now warm
  ASSERT_EQ(first.results.size(), docs.size());
  ASSERT_EQ(second.results.size(), docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    ASSERT_TRUE(first.results[i].ok()) << first.results[i].status().ToString();
    ASSERT_TRUE(second.results[i].ok());
    EXPECT_EQ(first.results[i]->distance, second.results[i]->distance);
    EXPECT_TRUE(first.results[i]->repaired == second.results[i]->repaired);
    EXPECT_TRUE(IsBalanced(first.results[i]->repaired));
  }
  // Reuse is observable in the aggregate: some worker context served more
  // than one document.
  EXPECT_GT(second.stats.telemetry.arena_resets, 1);
}

}  // namespace
}  // namespace dyck
