#include <gtest/gtest.h>

#include <random>

#include "src/alphabet/parse.h"
#include "src/baseline/cubic.h"
#include "src/cfg/edit_distance.h"
#include "src/cfg/grammar.h"

namespace dyck {
namespace cfg {
namespace {

ParenSeq Parse(const std::string& text) {
  return ParenAlphabet::Default().Parse(text).value();
}

TEST(GrammarTest, NormalizeRejectsBadInput) {
  Grammar empty;
  EXPECT_TRUE(empty.Normalize().status().IsInvalidArgument());

  Grammar eps;
  const int32_t s = eps.AddNonterminal("S");
  eps.AddProduction(s, {});
  EXPECT_TRUE(eps.Normalize().status().IsInvalidArgument());

  Grammar dangling;
  const int32_t s2 = dangling.AddNonterminal("S");
  dangling.AddProduction(s2, {Symbol::Terminal(3)});
  EXPECT_TRUE(dangling.Normalize().status().IsInvalidArgument());
}

TEST(GrammarTest, BinarizationIntroducesFreshNonterminals) {
  Grammar g;
  const int32_t s = g.AddNonterminal("S");
  const int32_t a = g.AddTerminal("a");
  // S -> a a a a : needs fresh nonterminals for binarization and
  // pre-terminal wrapping.
  g.AddProduction(s, {Symbol::Terminal(a), Symbol::Terminal(a),
                      Symbol::Terminal(a), Symbol::Terminal(a)});
  const auto nf = g.Normalize();
  ASSERT_TRUE(nf.ok()) << nf.status();
  EXPECT_GT(nf->num_nonterminals, 1);
  EXPECT_FALSE(nf->binary.empty());
  // "aaaa" parses with 0 edits; the language is exactly {aaaa}, so a
  // three-symbol string cannot be repaired (deletions only shrink).
  EXPECT_EQ(*CfgEditDistance(*nf, {a, a, a, a}, {}), 0);
  EXPECT_FALSE(CfgEditDistance(*nf, {a, a, a},
                               {.allow_substitutions = false})
                   .has_value());
  // A five-symbol string loses one symbol.
  EXPECT_EQ(*CfgEditDistance(*nf, {a, a, a, a, a}, {}), 1);
}

TEST(GrammarTest, UnitProductionsAreEliminated) {
  Grammar g;
  const int32_t s = g.AddNonterminal("S");
  const int32_t t = g.AddNonterminal("T");
  const int32_t u = g.AddNonterminal("U");
  const int32_t a = g.AddTerminal("a");
  g.AddProduction(s, {Symbol::Nonterminal(t)});
  g.AddProduction(t, {Symbol::Nonterminal(u)});
  g.AddProduction(u, {Symbol::Terminal(a)});
  const auto nf = g.Normalize();
  ASSERT_TRUE(nf.ok());
  EXPECT_EQ(*CfgEditDistance(*nf, {a}, {}), 0);
}

TEST(CfgEditDistanceTest, PalindromeGrammar) {
  // S -> a S a | b S b | a a | b b  (even-length palindromes over {a,b})
  Grammar g;
  const int32_t s = g.AddNonterminal("S");
  const int32_t a = g.AddTerminal("a");
  const int32_t b = g.AddTerminal("b");
  g.AddProduction(s, {Symbol::Terminal(a), Symbol::Nonterminal(s),
                      Symbol::Terminal(a)});
  g.AddProduction(s, {Symbol::Terminal(b), Symbol::Nonterminal(s),
                      Symbol::Terminal(b)});
  g.AddProduction(s, {Symbol::Terminal(a), Symbol::Terminal(a)});
  g.AddProduction(s, {Symbol::Terminal(b), Symbol::Terminal(b)});
  const auto nf = g.Normalize();
  ASSERT_TRUE(nf.ok());
  EXPECT_EQ(*CfgEditDistance(*nf, {a, b, b, a}, {}), 0);
  EXPECT_EQ(*CfgEditDistance(*nf, {a, b, b, b}, {}), 1);  // sub last b->a
  EXPECT_EQ(*CfgEditDistance(*nf, {a, b, a}, {}), 1);     // delete one
  EXPECT_EQ(*CfgEditDistance(*nf, {a, b}, {}), 1);  // sub to aa or bb
  // Deletions alone cannot reach an even palindrome from "ab".
  EXPECT_FALSE(CfgEditDistance(*nf, {a, b},
                               {.allow_substitutions = false})
                   .has_value());
}

TEST(CfgEditDistanceTest, DeletionsOnlyCanBeImpossible) {
  // Language {aa}: a string of two b's cannot be repaired by deletions.
  Grammar g;
  const int32_t s = g.AddNonterminal("S");
  const int32_t a = g.AddTerminal("a");
  const int32_t b = g.AddTerminal("b");
  g.AddProduction(s, {Symbol::Terminal(a), Symbol::Terminal(a)});
  const auto nf = g.Normalize();
  ASSERT_TRUE(nf.ok());
  EXPECT_FALSE(CfgEditDistance(*nf, {b, b},
                               {.allow_substitutions = false})
                   .has_value());
  EXPECT_EQ(*CfgEditDistance(*nf, {b, b}, {}), 2);
}

TEST(CfgEditDistanceTest, EmptyTextIsNotDerivable) {
  const auto nf = DyckGrammar(1).Normalize();
  ASSERT_TRUE(nf.ok());
  EXPECT_FALSE(CfgEditDistance(*nf, {}, {}).has_value());
}

TEST(DyckViaCfgTest, HandpickedCases) {
  EXPECT_EQ(DyckDistanceViaCfg({}, false), 0);
  EXPECT_EQ(DyckDistanceViaCfg(Parse("()"), false), 0);
  EXPECT_EQ(DyckDistanceViaCfg(Parse("(("), false), 2);
  EXPECT_EQ(DyckDistanceViaCfg(Parse("(("), true), 1);
  EXPECT_EQ(DyckDistanceViaCfg(Parse("([)]"), true), 2);
  EXPECT_EQ(DyckDistanceViaCfg(Parse("(]"), true), 1);
}

// The general Aho-Peterson-style parser and the specialized Dyck cubic DP
// must agree everywhere — they implement the same distance.
class DyckViaCfgDifferentialTest
    : public ::testing::TestWithParam<std::tuple<bool, int32_t>> {};

TEST_P(DyckViaCfgDifferentialTest, MatchesSpecializedCubic) {
  const auto [subs, types] = GetParam();
  std::mt19937_64 rng(subs ? 1001 : 1000);
  for (int trial = 0; trial < 120; ++trial) {
    ParenSeq seq;
    const int64_t n = rng() % 12;
    for (int64_t i = 0; i < n; ++i) {
      seq.push_back(
          Paren{static_cast<ParenType>(rng() % types), rng() % 2 == 0});
    }
    EXPECT_EQ(DyckDistanceViaCfg(seq, subs), CubicDistance(seq, subs))
        << ToString(seq) << " subs=" << subs;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DyckViaCfgDifferentialTest,
    ::testing::Combine(::testing::Bool(), ::testing::Values<int32_t>(1, 2,
                                                                     3)));

}  // namespace
}  // namespace cfg
}  // namespace dyck
