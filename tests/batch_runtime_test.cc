// Differential tests for the batch runtime: RepairBatch must be
// byte-identical to serial Repair calls — per document, in input order —
// for every jobs count, both metrics, and both repair styles, and must
// isolate per-document failures to their own slot.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/core/batch.h"
#include "src/gen/workload.h"
#include "src/runtime/batch_engine.h"

namespace dyck {
namespace {

std::vector<ParenSeq> MakeCorpus(int count, uint64_t seed) {
  const gen::Shape shapes[] = {gen::Shape::kUniform, gen::Shape::kDeep,
                               gen::Shape::kFlat};
  std::vector<ParenSeq> docs;
  docs.reserve(count);
  for (int i = 0; i < count; ++i) {
    const int64_t n = 20 + (seed + i * 37) % 180;
    const ParenSeq base = gen::RandomBalanced(
        {.length = n, .num_types = 4, .shape = shapes[i % 3]}, seed + i);
    gen::CorruptedSequence corrupted = gen::Corrupt(
        base, {.num_edits = i % 4, .kind = gen::CorruptionKind::kMixed,
               .num_types = 4},
        seed * 31 + i);
    docs.push_back(std::move(corrupted.seq));
  }
  return docs;
}

// Everything observable about one result, so equality means byte-identical.
std::string Fingerprint(const StatusOr<RepairResult>& result) {
  if (!result.ok()) return "ERR|" + result.status().ToString();
  return std::to_string(result->distance) + "|" +
         ToString(result->repaired) + "|" + result->script.ToJson();
}

std::vector<int> JobCounts() {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<int> jobs = {1, 4};
  if (hw > 0 && hw != 1 && hw != 4) jobs.push_back(hw);
  return jobs;
}

TEST(BatchRuntimeTest, MatchesSerialAcrossJobsMetricsAndStyles) {
  const std::vector<ParenSeq> docs = MakeCorpus(48, 0xB4C5);
  for (const Metric metric :
       {Metric::kDeletionsOnly, Metric::kDeletionsAndSubstitutions}) {
    for (const RepairStyle style :
         {RepairStyle::kMinimalEdits, RepairStyle::kPreserveContent}) {
      Options options;
      options.metric = metric;
      options.style = style;

      std::vector<std::string> expected;
      expected.reserve(docs.size());
      for (const ParenSeq& doc : docs) {
        expected.push_back(Fingerprint(Repair(doc, options)));
      }

      for (const int jobs : JobCounts()) {
        const runtime::BatchRepairOutcome out =
            RepairBatch(docs, options, {.jobs = jobs});
        ASSERT_EQ(out.results.size(), docs.size());
        for (size_t i = 0; i < docs.size(); ++i) {
          EXPECT_EQ(Fingerprint(out.results[i]), expected[i])
              << "doc " << i << " jobs=" << jobs
              << " metric=" << static_cast<int>(metric)
              << " style=" << static_cast<int>(style);
        }
      }
    }
  }
}

TEST(BatchRuntimeTest, StatsAggregateTheResults) {
  const std::vector<ParenSeq> docs = MakeCorpus(32, 0x57A7);
  const Options options{.metric = Metric::kDeletionsOnly};
  const runtime::BatchRepairOutcome out =
      RepairBatch(docs, options, {.jobs = 4});

  int64_t expected_edits = 0;
  for (const auto& result : out.results) {
    ASSERT_TRUE(result.ok()) << result.status();
    expected_edits += result->distance;
  }
  EXPECT_EQ(out.stats.num_documents, static_cast<int64_t>(docs.size()));
  EXPECT_EQ(out.stats.num_ok, static_cast<int64_t>(docs.size()));
  EXPECT_EQ(out.stats.num_failed, 0);
  EXPECT_EQ(out.stats.total_edits, expected_edits);
  EXPECT_GT(expected_edits, 0);  // the corpus does contain corrupted docs
  EXPECT_EQ(out.stats.jobs, 4);
  EXPECT_GT(out.stats.wall_seconds, 0.0);
  EXPECT_GT(out.stats.docs_per_second, 0.0);
  EXPECT_EQ(out.stats.latency.TotalCount(),
            static_cast<int64_t>(docs.size()));
  EXPECT_FALSE(out.stats.ToString().empty());
}

TEST(BatchRuntimeTest, TelemetryAggregatesAcrossJobs) {
  // stats.telemetry must equal the sum of the per-result telemetry records
  // in input order, whatever the jobs count: aggregation happens on the
  // submitting thread after the workers join, so it is deterministic and
  // (under TSan) provably race-free.
  const std::vector<ParenSeq> docs = MakeCorpus(48, 0x7E1E);
  const Options options;
  for (const int jobs : JobCounts()) {
    const runtime::BatchRepairOutcome out =
        RepairBatch(docs, options, {.jobs = jobs});
    ASSERT_EQ(out.results.size(), docs.size());

    TelemetryAggregate expected;
    for (const auto& result : out.results) {
      ASSERT_TRUE(result.ok()) << result.status();
      expected.Add(result->telemetry);
    }
    const TelemetryAggregate& got = out.stats.telemetry;
    EXPECT_EQ(got.documents, static_cast<int64_t>(docs.size()));
    EXPECT_EQ(got.doubling_iterations, expected.doubling_iterations);
    EXPECT_EQ(got.subproblems, expected.subproblems);
    EXPECT_EQ(got.seq_allocations, expected.seq_allocations);
    EXPECT_EQ(got.seq_copies, 0) << "jobs=" << jobs;
    EXPECT_EQ(got.reduced_length_total, expected.reduced_length_total);
    EXPECT_EQ(got.reduced_input_total, expected.reduced_input_total);
    int64_t algorithm_total = 0;
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(got.algorithm_counts[i], expected.algorithm_counts[i])
          << "jobs=" << jobs << " algorithm " << i;
      algorithm_total += got.algorithm_counts[i];
    }
    EXPECT_EQ(algorithm_total, static_cast<int64_t>(docs.size()));
    // Same records, same order, same double summation: exactly equal.
    for (int s = 0; s < kNumPipelineStages; ++s) {
      EXPECT_DOUBLE_EQ(got.stage_seconds[s], expected.stage_seconds[s])
          << "jobs=" << jobs << " stage " << s;
    }
    EXPECT_GT(got.TotalSeconds(), 0.0);
  }
}

TEST(BatchRuntimeTest, TelemetryAggregateSkipsFailedDocuments) {
  std::vector<ParenSeq> docs = {
      ParenAlphabet::Default().Parse("()[]").value(),
      ParenAlphabet::Default().Parse("((((((((").value(),  // BoundExceeded
      ParenAlphabet::Default().Parse("((").value(),
  };
  Options options;
  options.metric = Metric::kDeletionsOnly;
  options.max_distance = 3;
  const runtime::BatchRepairOutcome out =
      RepairBatch(docs, options, {.jobs = 2});
  EXPECT_EQ(out.stats.num_failed, 1);
  EXPECT_EQ(out.stats.telemetry.documents, 2);  // only the ok results
}

TEST(BatchRuntimeTest, PerDocumentFailureIsIsolated) {
  // Doc 2 needs 8 deletions, beyond max_distance; its neighbours must
  // still repair, and only its slot may hold the BoundExceeded status.
  std::vector<ParenSeq> docs = {
      ParenAlphabet::Default().Parse("()[]").value(),
      ParenAlphabet::Default().Parse("((").value(),
      ParenAlphabet::Default().Parse("((((((((").value(),
      ParenAlphabet::Default().Parse("{}").value(),
  };
  Options options;
  options.metric = Metric::kDeletionsOnly;
  options.max_distance = 3;
  for (const int jobs : JobCounts()) {
    const runtime::BatchRepairOutcome out =
        RepairBatch(docs, options, {.jobs = jobs});
    ASSERT_EQ(out.results.size(), docs.size());
    EXPECT_TRUE(out.results[0].ok());
    EXPECT_TRUE(out.results[1].ok());
    EXPECT_EQ(out.results[1]->distance, 2);
    EXPECT_TRUE(out.results[2].status().IsBoundExceeded())
        << out.results[2].status();
    EXPECT_TRUE(out.results[3].ok());
    EXPECT_EQ(out.stats.num_ok, 3);
    EXPECT_EQ(out.stats.num_failed, 1);
    EXPECT_EQ(out.stats.total_edits, 2);
  }
}

TEST(BatchRuntimeTest, EmptyBatchAndEmptyDocuments) {
  const runtime::BatchRepairOutcome empty = RepairBatch({}, {}, {.jobs = 4});
  EXPECT_TRUE(empty.results.empty());
  EXPECT_EQ(empty.stats.num_documents, 0);

  const std::vector<ParenSeq> docs(3);  // three empty documents
  const runtime::BatchRepairOutcome out = RepairBatch(docs, {}, {.jobs = 4});
  ASSERT_EQ(out.results.size(), 3u);
  for (const auto& result : out.results) {
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->distance, 0);
    EXPECT_TRUE(result->repaired.empty());
  }
}

TEST(BatchRuntimeTest, JobsZeroMeansHardwareConcurrency) {
  runtime::BatchRepairEngine engine({.jobs = 0});
  EXPECT_GE(engine.jobs(), 1);
  const std::vector<ParenSeq> docs = MakeCorpus(8, 0x0B5);
  const runtime::BatchRepairOutcome out = engine.RepairAll(docs, {});
  for (size_t i = 0; i < docs.size(); ++i) {
    ASSERT_TRUE(out.results[i].ok()) << out.results[i].status();
    EXPECT_EQ(Fingerprint(out.results[i]), Fingerprint(Repair(docs[i], {})));
  }
}

TEST(BatchRuntimeTest, EngineIsReusableAcrossBatches) {
  runtime::BatchRepairEngine engine({.jobs = 3});
  const Options options{.metric = Metric::kDeletionsOnly};
  for (int round = 0; round < 5; ++round) {
    const std::vector<ParenSeq> docs = MakeCorpus(12, 0x900D + round);
    const runtime::BatchRepairOutcome out = engine.RepairAll(docs, options);
    for (size_t i = 0; i < docs.size(); ++i) {
      EXPECT_EQ(Fingerprint(out.results[i]),
                Fingerprint(Repair(docs[i], options)))
          << "round " << round << " doc " << i;
    }
  }
}

TEST(LatencyHistogramTest, BucketsAndRendering) {
  runtime::LatencyHistogram histogram;
  histogram.Record(0.5e-6);   // <= 1us
  histogram.Record(3e-6);     // <= 4us
  histogram.Record(3e-6);     // <= 4us
  histogram.Record(1.0);      // 1s, near the top
  EXPECT_EQ(histogram.TotalCount(), 4);
  EXPECT_EQ(histogram.bucket_count(0), 1);
  EXPECT_EQ(histogram.bucket_count(1), 2);
  EXPECT_EQ(runtime::LatencyHistogram::BucketUpperMicros(0), 1);
  EXPECT_EQ(runtime::LatencyHistogram::BucketUpperMicros(3), 64);
  EXPECT_EQ(runtime::LatencyHistogram::BucketUpperMicros(
                runtime::LatencyHistogram::kNumBuckets - 1),
            -1);
  EXPECT_NE(histogram.ToString().find("<=4us:2"), std::string::npos)
      << histogram.ToString();
}

}  // namespace
}  // namespace dyck
