#include <gtest/gtest.h>

#include <random>

#include "src/alphabet/parse.h"
#include "src/bp/bp_tree.h"
#include "src/gen/workload.h"

namespace dyck {
namespace {

BpTree Tree(const std::string& text) {
  auto seq = ParenAlphabet::Default().Parse(text).value();
  auto tree = BpTree::Build(std::move(seq));
  EXPECT_TRUE(tree.ok()) << tree.status();
  return std::move(tree).value();
}

// Reference matcher via a plain stack.
std::vector<int64_t> NaiveMatch(const ParenSeq& seq) {
  std::vector<int64_t> match(seq.size(), -1);
  std::vector<int64_t> stack;
  for (int64_t i = 0; i < static_cast<int64_t>(seq.size()); ++i) {
    if (seq[i].is_open) {
      stack.push_back(i);
    } else {
      match[i] = stack.back();
      match[stack.back()] = i;
      stack.pop_back();
    }
  }
  return match;
}

TEST(BpTreeTest, RejectsUnbalanced) {
  auto seq = ParenAlphabet::Default().Parse("(]").value();
  EXPECT_TRUE(BpTree::Build(seq).status().IsInvalidArgument());
}

TEST(BpTreeTest, BasicNavigation) {
  // (()[]){}  =>  roots at 0 and 6; node 0 has children 1 and 3.
  const BpTree tree = Tree("(()[]){}");
  EXPECT_EQ(tree.Roots(), (std::vector<int64_t>{0, 6}));
  EXPECT_EQ(tree.FindClose(0), 5);
  EXPECT_EQ(tree.FindOpen(5), 0);
  EXPECT_EQ(tree.FirstChild(0), 1);
  EXPECT_EQ(tree.NextSibling(1), 3);
  EXPECT_EQ(tree.NextSibling(3), std::nullopt);
  EXPECT_EQ(tree.Parent(1), 0);
  EXPECT_EQ(tree.Parent(0), std::nullopt);
  EXPECT_EQ(tree.Depth(0), 0);
  EXPECT_EQ(tree.Depth(1), 1);
  EXPECT_EQ(tree.SubtreeSize(0), 3);
  EXPECT_EQ(tree.NumChildren(0), 2);
  EXPECT_EQ(tree.TypeOf(3), 1);  // "[]"
}

TEST(BpTreeTest, DeepNest) {
  std::string text;
  const int64_t depth = 2000;
  for (int64_t i = 0; i < depth; ++i) text += "(";
  for (int64_t i = 0; i < depth; ++i) text += ")";
  const BpTree tree = Tree(text);
  EXPECT_EQ(tree.FindClose(0), 2 * depth - 1);
  EXPECT_EQ(tree.Depth(depth - 1), depth - 1);
  EXPECT_EQ(tree.SubtreeSize(0), depth);
  EXPECT_EQ(tree.Roots().size(), 1u);
  // Walk to the root from the deepest node.
  int64_t v = depth - 1;
  int64_t steps = 0;
  while (auto p = tree.Parent(v)) {
    v = *p;
    ++steps;
  }
  EXPECT_EQ(steps, depth - 1);
}

TEST(BpTreeTest, MatchesNaiveOnRandomForests) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const ParenSeq seq =
        gen::RandomBalanced({.length = 400, .num_types = 3}, seed);
    const auto match = NaiveMatch(seq);
    auto tree_or = BpTree::Build(seq);
    ASSERT_TRUE(tree_or.ok());
    const BpTree& tree = *tree_or;
    for (int64_t i = 0; i < static_cast<int64_t>(seq.size()); ++i) {
      if (seq[i].is_open) {
        ASSERT_EQ(tree.FindClose(i), match[i]) << "seed " << seed;
      } else {
        ASSERT_EQ(tree.FindOpen(i), match[i]) << "seed " << seed;
      }
    }
  }
}

TEST(BpTreeTest, ParentConsistencyOnRandomForests) {
  for (uint64_t seed = 100; seed < 110; ++seed) {
    const ParenSeq seq =
        gen::RandomBalanced({.length = 300, .num_types = 2}, seed);
    auto tree_or = BpTree::Build(seq);
    ASSERT_TRUE(tree_or.ok());
    const BpTree& tree = *tree_or;
    // Every node's children report it as their parent; subtree sizes add
    // up (children + 1 == own size).
    for (int64_t v = 0; v < tree.size(); ++v) {
      if (!tree.IsOpen(v)) continue;
      int64_t children_total = 0;
      auto child = tree.FirstChild(v);
      while (child.has_value()) {
        EXPECT_EQ(tree.Parent(*child), v);
        EXPECT_EQ(tree.Depth(*child), tree.Depth(v) + 1);
        children_total += tree.SubtreeSize(*child);
        child = tree.NextSibling(*child);
      }
      EXPECT_EQ(tree.SubtreeSize(v), children_total + 1);
    }
  }
}

TEST(BpTreeTest, EmptySequence) {
  auto tree = BpTree::Build(ParenSeq{});
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->Roots().empty());
  EXPECT_EQ(tree->size(), 0);
}

}  // namespace
}  // namespace dyck
