#include <gtest/gtest.h>

#include <random>

#include "src/alphabet/parse.h"
#include "src/baseline/cubic.h"
#include "src/gen/workload.h"

namespace dyck {
namespace {

ParenSeq Parse(const std::string& text) {
  return ParenAlphabet::Default().Parse(text).value();
}

TEST(PairCostTest, AllCases) {
  const Paren o0 = Paren::Open(0);
  const Paren c0 = Paren::Close(0);
  const Paren o1 = Paren::Open(1);
  const Paren c1 = Paren::Close(1);
  // Deletion metric: only exact matches align.
  EXPECT_EQ(PairCost(o0, c0, false), 0);
  EXPECT_EQ(PairCost(o0, c1, false), kPairImpossible);
  // Substitution metric.
  EXPECT_EQ(PairCost(o0, c0, true), 0);
  EXPECT_EQ(PairCost(o0, c1, true), 1);  // retype the closer
  EXPECT_EQ(PairCost(o0, o1, true), 1);  // "((" -> "()"
  EXPECT_EQ(PairCost(c0, c1, true), 1);  // "))" -> "()"
  EXPECT_EQ(PairCost(c0, o0, true), 2);  // ")(" needs both rewritten
}

struct Case {
  std::string text;
  int64_t edit1;
  int64_t edit2;
};

class CubicKnownCasesTest : public ::testing::TestWithParam<Case> {};

TEST_P(CubicKnownCasesTest, DistancesMatch) {
  const Case& c = GetParam();
  const ParenSeq seq = Parse(c.text);
  EXPECT_EQ(CubicDistance(seq, false), c.edit1) << c.text;
  EXPECT_EQ(CubicDistance(seq, true), c.edit2) << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Handpicked, CubicKnownCasesTest,
    ::testing::Values(Case{"", 0, 0}, Case{"()", 0, 0}, Case{"(", 1, 1},
                      Case{")", 1, 1}, Case{"((", 2, 1}, Case{"))", 2, 1},
                      Case{")(", 2, 2}, Case{"(]", 2, 1},
                      Case{"([)]", 2, 2}, Case{"(()", 1, 1},
                      Case{"(()){}", 0, 0}, Case{"((((", 4, 2},
                      Case{"(((((", 5, 3}, Case{"()[]{}<>", 0, 0},
                      Case{"([{}])", 0, 0}, Case{"][", 2, 2},
                      Case{"(])", 1, 1}, Case{"{()}]", 1, 1}));

TEST(CubicRepairTest, ScriptsValidateOnRandomInputs) {
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    ParenSeq seq;
    const int64_t n = rng() % 14;
    for (int64_t i = 0; i < n; ++i) {
      seq.push_back(Paren{static_cast<ParenType>(rng() % 3), rng() % 2 == 0});
    }
    for (const bool subs : {false, true}) {
      const CubicResult result = CubicRepair(seq, subs);
      EXPECT_EQ(result.distance, CubicDistance(seq, subs));
      const Status status =
          ValidateScript(seq, result.script, result.distance, subs);
      EXPECT_TRUE(status.ok()) << status << " on " << ToString(seq);
    }
  }
}

TEST(CubicRepairTest, CorruptedBalancedSequencesRespectBounds) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    const ParenSeq base =
        gen::RandomBalanced({.length = 20, .num_types = 2}, seed);
    const gen::CorruptedSequence corrupted =
        gen::Corrupt(base, {.num_edits = 2, .num_types = 2}, seed + 1000);
    EXPECT_LE(CubicDistance(corrupted.seq, false), corrupted.edit1_bound);
    EXPECT_LE(CubicDistance(corrupted.seq, true), corrupted.edit2_bound);
    EXPECT_LE(CubicDistance(corrupted.seq, true),
              CubicDistance(corrupted.seq, false))
        << "substitutions can only help";
  }
}

TEST(CubicRepairTest, AlignedPairsAreConsistent) {
  const ParenSeq seq = Parse("([)]");
  const CubicResult result = CubicRepair(seq, true);
  EXPECT_EQ(result.distance, 2);
  // Exactly one aligned pair involves a substitution; the repaired doc is
  // balanced (checked by ValidateScript).
  EXPECT_TRUE(
      ValidateScript(seq, result.script, result.distance, true).ok());
}

TEST(CubicRepairTest, DistanceIsAtLeastImbalance) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    ParenSeq seq;
    const int64_t n = rng() % 12;
    int64_t opens = 0;
    for (int64_t i = 0; i < n; ++i) {
      const bool open = rng() % 2 == 0;
      opens += open ? 1 : -1;
      seq.push_back(Paren{static_cast<ParenType>(rng() % 2), open});
    }
    EXPECT_GE(CubicDistance(seq, false), std::abs(opens));
    EXPECT_GE(2 * CubicDistance(seq, true), std::abs(opens));
  }
}

}  // namespace
}  // namespace dyck
