#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "src/suffix/lce.h"
#include "src/suffix/lcp.h"
#include "src/suffix/rmq.h"
#include "src/suffix/sais.h"

namespace dyck {
namespace {

std::vector<int32_t> RandomText(int64_t n, int32_t sigma, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int32_t> text(n);
  for (auto& v : text) v = static_cast<int32_t>(rng() % sigma);
  return text;
}

TEST(SaisTest, EmptyAndSingle) {
  EXPECT_TRUE(BuildSuffixArray({}).empty());
  EXPECT_EQ(BuildSuffixArray({5}), (std::vector<int32_t>{0}));
}

TEST(SaisTest, Banana) {
  // "banana" with a=0, b=1, n=2.
  const std::vector<int32_t> text = {1, 0, 2, 0, 2, 0};
  EXPECT_EQ(BuildSuffixArray(text), BuildSuffixArrayNaive(text));
}

TEST(SaisTest, AllEqualSymbols) {
  const std::vector<int32_t> text(50, 3);
  const auto sa = BuildSuffixArray(text);
  // Suffixes sort by decreasing length... i.e. increasing start from the
  // end: shortest suffix is smallest (prefix property).
  for (size_t r = 0; r < sa.size(); ++r) {
    EXPECT_EQ(sa[r], static_cast<int32_t>(text.size()) - 1 -
                         static_cast<int32_t>(r));
  }
}

class SaisRandomTest : public ::testing::TestWithParam<
                           std::tuple<int64_t, int32_t, uint64_t>> {};

TEST_P(SaisRandomTest, MatchesNaive) {
  const auto [n, sigma, seed] = GetParam();
  const auto text = RandomText(n, sigma, seed);
  EXPECT_EQ(BuildSuffixArray(text), BuildSuffixArrayNaive(text));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SaisRandomTest,
    ::testing::Combine(::testing::Values<int64_t>(2, 3, 7, 16, 64, 257),
                       ::testing::Values<int32_t>(1, 2, 4, 50),
                       ::testing::Values<uint64_t>(1, 2, 3)));

TEST(CompressTest, PreservesOrder) {
  const std::vector<int32_t> values = {100, 5, 100, 7, 1 << 30};
  const auto compressed = CompressAlphabet(values);
  EXPECT_EQ(compressed, (std::vector<int32_t>{2, 0, 2, 1, 3}));
}

TEST(LcpTest, MatchesDirectComparison) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    const auto text = RandomText(120, 3, seed);
    const auto sa = BuildSuffixArray(text);
    const auto lcp = BuildLcpArray(text, sa);
    for (size_t r = 1; r < sa.size(); ++r) {
      int32_t expected = 0;
      int64_t i = sa[r - 1], j = sa[r];
      while (i + expected < static_cast<int64_t>(text.size()) &&
             j + expected < static_cast<int64_t>(text.size()) &&
             text[i + expected] == text[j + expected]) {
        ++expected;
      }
      EXPECT_EQ(lcp[r], expected) << "rank " << r;
    }
  }
}

TEST(RmqTest, MatchesBruteForce) {
  std::mt19937_64 rng(99);
  std::vector<int32_t> values(200);
  for (auto& v : values) v = static_cast<int32_t>(rng() % 1000) - 500;
  const RangeMin rmq = RangeMin::Build(values);
  for (int trial = 0; trial < 500; ++trial) {
    int64_t lo = rng() % values.size();
    int64_t hi = rng() % values.size();
    if (lo > hi) std::swap(lo, hi);
    EXPECT_EQ(rmq.Min(lo, hi),
              *std::min_element(values.begin() + lo, values.begin() + hi + 1));
  }
}

TEST(RmqTest, SingleElement) {
  const RangeMin rmq = RangeMin::Build({42});
  EXPECT_EQ(rmq.Min(0, 0), 42);
}

TEST(LceTest, MatchesBruteForce) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    const auto text = RandomText(150, 2 + seed % 3, seed);
    const LceIndex index = LceIndex::Build(text);
    std::mt19937_64 rng(seed * 31 + 1);
    for (int trial = 0; trial < 400; ++trial) {
      const int64_t i = rng() % text.size();
      const int64_t j = rng() % text.size();
      int64_t expected = 0;
      while (i + expected < static_cast<int64_t>(text.size()) &&
             j + expected < static_cast<int64_t>(text.size()) &&
             text[i + expected] == text[j + expected]) {
        ++expected;
      }
      EXPECT_EQ(index.Lce(i, j), expected) << i << "," << j;
    }
  }
}

TEST(LceTest, IdenticalIndices) {
  const LceIndex index = LceIndex::Build({1, 2, 3});
  EXPECT_EQ(index.Lce(0, 0), 3);
  EXPECT_EQ(index.Lce(2, 2), 1);
}

TEST(LceTest, OutOfRangeIsZero) {
  const LceIndex index = LceIndex::Build({1, 2, 3});
  EXPECT_EQ(index.Lce(3, 0), 0);
}

TEST(LceTest, SparseAlphabetGetsCompressed) {
  // Values far beyond 4n trigger the compression path.
  std::vector<int32_t> text = {1 << 28, 5, 1 << 28, 5, 77};
  const LceIndex index = LceIndex::Build(text);
  EXPECT_EQ(index.Lce(0, 2), 2);
  EXPECT_EQ(index.Lce(1, 3), 1);
}

}  // namespace
}  // namespace dyck
