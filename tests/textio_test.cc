#include <gtest/gtest.h>

#include "src/core/dyck.h"
#include "src/textio/document_repair.h"
#include "src/textio/json_tokenizer.h"
#include "src/textio/latex_tokenizer.h"
#include "src/textio/source_tokenizer.h"
#include "src/textio/xml_tokenizer.h"

namespace dyck {
namespace textio {
namespace {

TEST(JsonTokenizerTest, ExtractsBrackets) {
  const auto doc = TokenizeJson(R"({"a": [1, 2, {"b": 3}]})", {});
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(ToString(doc->seq), "{[{}]}");
  EXPECT_TRUE(IsBalanced(doc->seq));
}

TEST(JsonTokenizerTest, IgnoresBracketsInStrings) {
  const auto doc = TokenizeJson(R"({"key": "val[ue}"})", {});
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(ToString(doc->seq), "{}");
}

TEST(JsonTokenizerTest, HonorsEscapes) {
  const auto doc = TokenizeJson(R"({"k": "a\"]b"})", {});
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(ToString(doc->seq), "{}");
}

TEST(JsonTokenizerTest, UnterminatedStringLenientVsStrict) {
  const std::string text = R"({"k": "unterminated)";
  EXPECT_TRUE(TokenizeJson(text, {.lenient = true}).ok());
  EXPECT_TRUE(TokenizeJson(text, {.lenient = false})
                  .status()
                  .IsParseError());
}

TEST(JsonTokenizerTest, SpansPointAtSource) {
  const std::string text = "x{y}z";
  const auto doc = TokenizeJson(text, {});
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->spans.size(), 2u);
  EXPECT_EQ(text.substr(doc->spans[0].begin,
                        doc->spans[0].end - doc->spans[0].begin),
            "{");
  EXPECT_EQ(doc->spans[1].begin, 3);
}

TEST(XmlTokenizerTest, BasicTags) {
  const auto doc = TokenizeXml("<a><b>text</b></a>", {});
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->seq.size(), 4u);
  EXPECT_TRUE(IsBalanced(doc->seq));
  EXPECT_EQ(doc->type_names[doc->seq[0].type], "a");
  EXPECT_EQ(doc->type_names[doc->seq[1].type], "b");
}

TEST(XmlTokenizerTest, CaseInsensitiveByDefault) {
  const auto doc = TokenizeXml("<B>bold</b>", {});
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(IsBalanced(doc->seq));
}

TEST(XmlTokenizerTest, SkipsVoidCommentsDoctypePi) {
  const auto doc = TokenizeXml(
      "<!DOCTYPE html><?xml version=\"1\"?><!-- <i> --> <p><br>x</p>", {});
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->seq.size(), 2u);  // only <p> and </p>
  EXPECT_TRUE(IsBalanced(doc->seq));
}

TEST(XmlTokenizerTest, SelfClosingAndAttributes) {
  const auto doc = TokenizeXml(
      "<a href=\"x>y\"><img src='z>'/><b class=\"c\">t</b></a>", {});
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->seq.size(), 4u);
  EXPECT_TRUE(IsBalanced(doc->seq));
}

TEST(XmlTokenizerTest, MisnestedTagsAreUnbalanced) {
  const auto doc = TokenizeXml("<b><i>x</b></i>", {});
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(IsBalanced(doc->seq));
  // "([)]"-style interleaving costs 2 even with substitutions (no single
  // rewrite balances it).
  EXPECT_EQ(*Distance(doc->seq, {}), 2);
}

TEST(XmlTokenizerTest, StrayLessThanIsNotATag) {
  const auto doc = TokenizeXml("a < b <em>x</em>", {});
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->seq.size(), 2u);
}

TEST(LatexTokenizerTest, Environments) {
  const auto doc = TokenizeLatex(
      "\\begin{doc}\\begin{itemize}\\item x\\end{itemize}\\end{doc}", {});
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->seq.size(), 4u);
  EXPECT_TRUE(IsBalanced(doc->seq));
  EXPECT_EQ(doc->type_names[doc->seq[1].type], "itemize");
}

TEST(LatexTokenizerTest, CommentsAreSkipped) {
  const auto doc =
      TokenizeLatex("% \\begin{a}\n\\begin{b}\\end{b}", {});
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->seq.size(), 2u);
}

TEST(LatexTokenizerTest, BraceGroupsOptIn) {
  const auto without = TokenizeLatex("{x}", {});
  ASSERT_TRUE(without.ok());
  EXPECT_TRUE(without->seq.empty());
  const auto with = TokenizeLatex("{x}", {.track_brace_groups = true});
  ASSERT_TRUE(with.ok());
  EXPECT_EQ(with->seq.size(), 2u);
}

TEST(LatexTokenizerTest, UnterminatedBeginIsParseError) {
  EXPECT_TRUE(TokenizeLatex("\\begin{itemize", {}).status().IsParseError());
}

TEST(SourceTokenizerTest, SkipsCommentsAndLiterals) {
  const auto doc = TokenizeSource(
      "int f() { return a[\"(\"] + '('; } // }}}\n/* ((( */", {});
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(ToString(doc->seq), "(){[]}");
  EXPECT_TRUE(IsBalanced(doc->seq));
}

TEST(SourceTokenizerTest, DetectsMissingBrace) {
  const auto doc = TokenizeSource("void f() { if (x) { y(); }", {});
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(IsBalanced(doc->seq));
  EXPECT_EQ(*Distance(doc->seq, {.metric = Metric::kDeletionsOnly}), 1);
}

TEST(DocumentRepairTest, DeletesStrayTag) {
  const std::string html = "<p>hello <b>world</p>";
  const auto doc = TokenizeXml(html, {});
  ASSERT_TRUE(doc.ok());
  const auto result = RepairDocument(
      html, *doc, RenderXmlToken, {.metric = Metric::kDeletionsOnly});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->distance, 1);
  EXPECT_EQ(result->repaired_text, "<p>hello world</p>");
}

TEST(DocumentRepairTest, SubstitutesMisnestedTag) {
  const std::string html = "<b><i>x</b></i>";
  const auto doc = TokenizeXml(html, {});
  ASSERT_TRUE(doc.ok());
  const auto result = RepairDocument(html, *doc, RenderXmlToken, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distance, 2);
  // The repaired document must itself tokenize to a balanced sequence.
  const auto recheck = TokenizeXml(result->repaired_text, {});
  ASSERT_TRUE(recheck.ok());
  EXPECT_TRUE(IsBalanced(recheck->seq));
}

TEST(DocumentRepairTest, JsonRoundTrip) {
  const std::string json = R"({"a": [1, 2, {"b": 3}})";  // missing ]
  const auto doc = TokenizeJson(json, {});
  ASSERT_TRUE(doc.ok());
  const auto result = RepairDocument(
      json, *doc,
      [](const Paren& p, const std::vector<std::string>&) {
        return RenderJsonToken(p);
      },
      {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distance, 1);
  const auto recheck = TokenizeJson(result->repaired_text, {});
  ASSERT_TRUE(recheck.ok());
  EXPECT_TRUE(IsBalanced(recheck->seq));
}

TEST(DocumentRepairTest, PreserveStyleInsertsClosingTag) {
  const std::string html = "<div><p>text</div>";
  const auto doc = TokenizeXml(html, {});
  ASSERT_TRUE(doc.ok());
  const auto result = RepairDocument(
      html, *doc, RenderXmlToken,
      {.style = RepairStyle::kPreserveContent});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->distance, 1);
  EXPECT_EQ(result->repaired_text, "<div><p>text</p></div>");
}

TEST(DocumentRepairTest, PreserveStyleInsertsAtEndOfDocument) {
  const std::string html = "<b>unclosed";
  const auto doc = TokenizeXml(html, {});
  ASSERT_TRUE(doc.ok());
  const auto result = RepairDocument(
      html, *doc, RenderXmlToken,
      {.style = RepairStyle::kPreserveContent});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->repaired_text, "<b>unclosed</b>");
}

TEST(DocumentRepairTest, RejectsForeignScript) {
  const auto doc = TokenizeJson("{}", {});
  ASSERT_TRUE(doc.ok());
  EditScript script;
  script.ops.push_back({EditOpKind::kDelete, 9, Paren{}});
  const auto result = ApplyScriptToDocument(
      "{}", *doc, script,
      [](const Paren& p, const std::vector<std::string>&) {
        return RenderJsonToken(p);
      });
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

}  // namespace
}  // namespace textio
}  // namespace dyck
