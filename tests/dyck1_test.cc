#include <gtest/gtest.h>

#include <random>

#include "src/baseline/cubic.h"
#include "src/baseline/dyck1.h"

namespace dyck {
namespace {

ParenSeq SingleTypeSeq(const std::string& pattern) {
  ParenSeq seq;
  for (char c : pattern) {
    seq.push_back(c == '(' ? Paren::Open(0) : Paren::Close(0));
  }
  return seq;
}

TEST(Dyck1Test, ClosedFormsOnCanonicalShapes) {
  EXPECT_EQ(*Dyck1Distance(SingleTypeSeq(""), false), 0);
  EXPECT_EQ(*Dyck1Distance(SingleTypeSeq("()"), false), 0);
  EXPECT_EQ(*Dyck1Distance(SingleTypeSeq(")("), false), 2);
  EXPECT_EQ(*Dyck1Distance(SingleTypeSeq(")("), true), 2);
  EXPECT_EQ(*Dyck1Distance(SingleTypeSeq("(("), false), 2);
  EXPECT_EQ(*Dyck1Distance(SingleTypeSeq("(("), true), 1);
  EXPECT_EQ(*Dyck1Distance(SingleTypeSeq(")))((("), false), 6);
  EXPECT_EQ(*Dyck1Distance(SingleTypeSeq(")))((("), true), 4);
}

TEST(Dyck1Test, RefusesMixedTypes) {
  ParenSeq seq = {Paren::Open(0), Paren::Close(1)};
  EXPECT_FALSE(Dyck1Distance(seq, false).has_value());
}

TEST(Dyck1Test, MatchesCubicOnRandomSingleTypeSequences) {
  std::mt19937_64 rng(31337);
  for (int trial = 0; trial < 300; ++trial) {
    ParenSeq seq;
    const int64_t n = rng() % 15;
    for (int64_t i = 0; i < n; ++i) {
      seq.push_back(Paren{0, rng() % 2 == 0});
    }
    for (const bool subs : {false, true}) {
      ASSERT_EQ(*Dyck1Distance(seq, subs), CubicDistance(seq, subs))
          << ToString(seq) << " subs=" << subs;
    }
  }
}

}  // namespace
}  // namespace dyck
