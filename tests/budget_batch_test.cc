// Deadlines and cancellation through the batch runtime: ThreadPool's
// stop-now queue cancellation, per-document timeouts (degrade vs fail),
// the whole-batch deadline (finished docs keep exact results, queued docs
// short-circuit to kCancelled), dispatch fault injection, and the
// cancelled/degraded accounting in BatchStats.
//
// Timing margins are deliberately generous (seconds against 50ms
// deadlines) so the suite stays deterministic under TSan/ASan slowdowns:
// the adversarial document would take effectively unbounded time without
// budget enforcement, so any finite wall-clock bound proves the trip.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "src/core/dyck.h"
#include "src/gen/adversarial.h"
#include "src/gen/workload.h"
#include "src/runtime/batch_engine.h"
#include "src/runtime/thread_pool.h"
#include "src/util/budget.h"

namespace dyck {
namespace {

class ScopedFaultInject {
 public:
  explicit ScopedFaultInject(const char* value) {
    ::setenv("DYCKFIX_FAULT_INJECT", value, /*overwrite=*/1);
  }
  ~ScopedFaultInject() { ::unsetenv("DYCKFIX_FAULT_INJECT"); }
};

// Small nearly-correct documents: each repairs in well under a
// millisecond, so they always fit comfortably inside the test deadlines.
std::vector<ParenSeq> MakeFastCorpus(int count, uint64_t seed) {
  std::vector<ParenSeq> docs;
  docs.reserve(count);
  for (int i = 0; i < count; ++i) {
    const ParenSeq base = gen::RandomBalanced(
        {.length = 20 + (i % 3) * 10, .num_types = 3,
         .shape = gen::Shape::kUniform},
        seed + i);
    gen::CorruptedSequence corrupted = gen::Corrupt(
        base, {.num_edits = i % 3, .kind = gen::CorruptionKind::kMixed,
               .num_types = 3},
        seed * 31 + i);
    docs.push_back(std::move(corrupted.seq));
  }
  return docs;
}

// The budget-buster: edit2 = 512, so the doubling driver climbs toward
// d = 512 where the O(n + d^16) substitution solver needs tens of seconds
// (measured >15s in Release) — far beyond every deadline used here. Only
// budget enforcement gets a batch past it.
ParenSeq SlowDocument() { return gen::ManyValleys(32, 16); }

std::string Fingerprint(const StatusOr<RepairResult>& result) {
  if (!result.ok()) return "ERR|" + result.status().ToString();
  return std::to_string(result->distance) + "|" +
         ToString(result->repaired) + "|" + result->script.ToJson();
}

// --- ThreadPool stop-now cancellation. ---

TEST(ThreadPoolCancelTest, CancelPendingDropsOnlyTheMatchingTag) {
  std::atomic<int> ran_keep{0};
  std::atomic<int> ran_drop{0};
  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  {
    runtime::ThreadPool pool(1);
    // Pin the worker, and wait until it actually dequeued the pin task so
    // the cancellation below sees exactly the tasks submitted after it.
    pool.Submit(
        [&started, gate] {
          started.set_value();
          gate.wait();
        },
        /*tag=*/99);
    started.get_future().wait();
    for (int i = 0; i < 5; ++i) {
      pool.Submit([&ran_drop] { ++ran_drop; }, /*tag=*/1);
    }
    for (int i = 0; i < 3; ++i) {
      pool.Submit([&ran_keep] { ++ran_keep; }, /*tag=*/2);
    }
    EXPECT_EQ(pool.CancelPending(1), 5u);
    EXPECT_EQ(pool.CancelPending(1), 0u);  // idempotent
    release.set_value();
    // The destructor drains: every surviving task runs before the join.
  }
  EXPECT_EQ(ran_drop.load(), 0);
  EXPECT_EQ(ran_keep.load(), 3);
}

TEST(ThreadPoolCancelTest, CancelAllPendingDropsEveryTag) {
  std::atomic<int> ran{0};
  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  {
    runtime::ThreadPool pool(1);
    pool.Submit(
        [&started, gate] {
          started.set_value();
          gate.wait();
        },
        /*tag=*/7);
    started.get_future().wait();
    for (int i = 0; i < 4; ++i) pool.Submit([&ran] { ++ran; }, /*tag=*/1);
    for (int i = 0; i < 4; ++i) pool.Submit([&ran] { ++ran; });  // untagged
    EXPECT_EQ(pool.CancelAllPending(), 8u);
    release.set_value();
  }
  EXPECT_EQ(ran.load(), 0);
}

// --- ForEachWithDeadline semantics. ---

TEST(ForEachDeadlineTest, InlinePathDropsEverythingPastTheDeadline) {
  runtime::BatchRepairEngine engine({.jobs = 1});
  CancelToken cancel;
  std::atomic<int> invoked{0};
  const auto outcome = engine.ForEachWithDeadline(
      5, std::chrono::steady_clock::now() - std::chrono::milliseconds(1),
      &cancel, [&](size_t) { ++invoked; });
  EXPECT_EQ(outcome.dropped, 5u);
  EXPECT_EQ(invoked.load(), 0);
  EXPECT_TRUE(cancel.cancelled());
}

TEST(ForEachDeadlineTest, PoolPathInvokesOrDropsEveryTask) {
  runtime::BatchRepairEngine engine({.jobs = 2});
  CancelToken cancel;
  std::atomic<int> invoked{0};
  // Each running task parks until the deadline fires, so the queue cannot
  // drain: the submitter must drop the unstarted tail.
  const auto outcome = engine.ForEachWithDeadline(
      32, std::chrono::steady_clock::now() + std::chrono::milliseconds(100),
      &cancel, [&](size_t) {
        const auto give_up =
            std::chrono::steady_clock::now() + std::chrono::seconds(10);
        while (!cancel.cancelled() &&
               std::chrono::steady_clock::now() < give_up) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        ++invoked;
      });
  EXPECT_TRUE(cancel.cancelled());
  EXPECT_GE(outcome.dropped, 1u);
  EXPECT_EQ(invoked.load() + static_cast<int>(outcome.dropped), 32);
}

TEST(ForEachDeadlineTest, NoDeadlineMeansNothingDropped) {
  runtime::BatchRepairEngine engine({.jobs = 2});
  std::atomic<int> invoked{0};
  const auto outcome = engine.ForEachWithDeadline(
      16, std::nullopt, nullptr, [&](size_t) { ++invoked; });
  EXPECT_EQ(outcome.dropped, 0u);
  EXPECT_EQ(invoked.load(), 16);
}

// --- Per-document timeouts. ---

// The PR's acceptance scenario: one adversarial high-d document under a
// 50ms budget inside a batch of fast documents. Greedy policy: the slow
// slot degrades, everything else stays byte-identical to serial exact
// repair.
TEST(BudgetBatchTest, DocTimeoutDegradesTheSlowDocumentOnly) {
  std::vector<ParenSeq> docs = MakeFastCorpus(6, 0xFA57);
  const size_t slow = 2;
  docs.insert(docs.begin() + slow, SlowDocument());

  Options options;
  options.timeout_ms = 50;
  options.on_budget_exceeded = DegradePolicy::kGreedy;

  // Exact unbudgeted fingerprints for the fast documents; the slow one
  // is exactly what cannot be repaired without a budget.
  std::vector<std::string> expected(docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    if (i != slow) expected[i] = Fingerprint(Repair(docs[i], {}));
  }

  for (const int jobs : {1, 4}) {
    runtime::BatchRepairEngine engine({.jobs = jobs});
    const runtime::BatchRepairOutcome out = engine.RepairAll(docs, options);
    ASSERT_EQ(out.results.size(), docs.size());
    // Budget enforcement is what bounds this at ~deadline scale; without
    // it the slow document alone would run for (effectively) ever.
    EXPECT_LT(out.stats.wall_seconds, 30.0);

    for (size_t i = 0; i < docs.size(); ++i) {
      ASSERT_TRUE(out.results[i].ok())
          << "doc " << i << " jobs=" << jobs << ": "
          << out.results[i].status();
      if (i == slow) continue;
      EXPECT_FALSE(out.results[i]->degraded) << "doc " << i;
      EXPECT_EQ(Fingerprint(out.results[i]), expected[i])
          << "doc " << i << " jobs=" << jobs;
    }

    const RepairResult& degraded = *out.results[slow];
    EXPECT_TRUE(degraded.degraded);
    EXPECT_TRUE(IsBalanced(degraded.repaired));
    EXPECT_EQ(degraded.script.Cost(), degraded.distance);
    EXPECT_GE(degraded.distance, 512);  // exact edit2 of SlowDocument()
    EXPECT_GE(degraded.telemetry.exact_lower_bound, 1);
    EXPECT_EQ(degraded.telemetry.budget_trip_code,
              static_cast<int>(StatusCode::kDeadlineExceeded));

    EXPECT_EQ(out.stats.num_ok, static_cast<int64_t>(docs.size()));
    EXPECT_EQ(out.stats.num_failed, 0);
    EXPECT_EQ(out.stats.num_degraded, 1);
    EXPECT_EQ(out.stats.num_cancelled, 0);
    EXPECT_EQ(out.stats.telemetry.degraded_documents, 1);
    EXPECT_GT(out.stats.telemetry.budget_steps, 0);
    EXPECT_NE(out.stats.ToString().find("degraded=1"), std::string::npos);
  }
}

TEST(BudgetBatchTest, DocTimeoutFailPolicyIsolatesTheFailure) {
  std::vector<ParenSeq> docs = MakeFastCorpus(5, 0xFA11);
  docs.push_back(SlowDocument());
  const size_t slow = docs.size() - 1;

  Options options;
  options.timeout_ms = 50;
  options.on_budget_exceeded = DegradePolicy::kFail;

  runtime::BatchRepairEngine engine({.jobs = 2});
  const runtime::BatchRepairOutcome out = engine.RepairAll(docs, options);
  EXPECT_LT(out.stats.wall_seconds, 30.0);
  for (size_t i = 0; i < slow; ++i) {
    EXPECT_TRUE(out.results[i].ok()) << "doc " << i;
  }
  ASSERT_FALSE(out.results[slow].ok());
  EXPECT_TRUE(out.results[slow].status().IsDeadlineExceeded())
      << out.results[slow].status();
  EXPECT_EQ(out.stats.num_ok, static_cast<int64_t>(slow));
  EXPECT_EQ(out.stats.num_failed, 1);
  EXPECT_EQ(out.stats.num_cancelled, 0);
  EXPECT_EQ(out.stats.num_degraded, 0);
}

TEST(BudgetBatchTest, EngineDocTimeoutComposesWithOptionsTimeout) {
  // The engine-level doc timeout (50ms) must win over a huge per-call
  // Options::timeout_ms — the budget takes the smaller of the two.
  std::vector<ParenSeq> docs = {SlowDocument()};
  Options options;
  options.timeout_ms = 1000000;
  options.on_budget_exceeded = DegradePolicy::kGreedy;

  runtime::BatchRepairEngine engine({.jobs = 1, .doc_timeout_ms = 50});
  const runtime::BatchRepairOutcome out = engine.RepairAll(docs, options);
  EXPECT_LT(out.stats.wall_seconds, 30.0);
  ASSERT_TRUE(out.results[0].ok()) << out.results[0].status();
  EXPECT_TRUE(out.results[0]->degraded);
}

// --- The whole-batch deadline. ---

TEST(BudgetBatchTest, BatchDeadlineCancelsQueuedDocuments) {
  // Two slow documents pin both workers past the deadline; every queued
  // fast document must come back kCancelled without ever running.
  std::vector<ParenSeq> docs = {SlowDocument(), SlowDocument()};
  const std::vector<ParenSeq> fast = MakeFastCorpus(12, 0xCA11);
  docs.insert(docs.end(), fast.begin(), fast.end());

  runtime::BatchRepairEngine engine({.jobs = 2, .batch_timeout_ms = 100});
  const runtime::BatchRepairOutcome out = engine.RepairAll(docs, {});
  EXPECT_LT(out.stats.wall_seconds, 30.0);

  for (size_t i = 0; i < 2; ++i) {
    ASSERT_FALSE(out.results[i].ok()) << "slow doc " << i;
    // The running documents observe either their capped deadline or the
    // batch cancel token, whichever their next checkpoint sees first.
    EXPECT_TRUE(out.results[i].status().IsDeadlineExceeded() ||
                out.results[i].status().IsCancelled())
        << out.results[i].status();
  }
  for (size_t i = 2; i < docs.size(); ++i) {
    ASSERT_FALSE(out.results[i].ok()) << "queued doc " << i;
    EXPECT_TRUE(out.results[i].status().IsCancelled())
        << out.results[i].status();
  }
  EXPECT_EQ(out.stats.num_ok, 0);
  EXPECT_EQ(out.stats.num_failed, static_cast<int64_t>(docs.size()));
  EXPECT_GE(out.stats.num_cancelled, 12);
  EXPECT_NE(out.stats.ToString().find("cancelled="), std::string::npos);
}

TEST(BudgetBatchTest, BatchDeadlineKeepsFinishedDocumentsExact) {
  // Fast documents first: they finish well inside the 2s deadline and
  // must keep their exact results; the slow trailer eats the rest of the
  // budget and fails alone. SlowDocument() is not slow enough here: the
  // cost-model planner routes it to the cubic DP (~0.3s), which beats the
  // 2s deadline. This 4096-symbol variant is >15s for every exact solver,
  // cubic included.
  std::vector<ParenSeq> docs = MakeFastCorpus(8, 0xD0C5);
  const size_t slow = docs.size();
  docs.push_back(gen::ManyValleys(128, 16));

  std::vector<std::string> expected(slow);
  for (size_t i = 0; i < slow; ++i) {
    expected[i] = Fingerprint(Repair(docs[i], {}));
  }

  runtime::BatchRepairEngine engine({.jobs = 2, .batch_timeout_ms = 2000});
  const runtime::BatchRepairOutcome out = engine.RepairAll(docs, {});
  EXPECT_LT(out.stats.wall_seconds, 60.0);

  for (size_t i = 0; i < slow; ++i) {
    ASSERT_TRUE(out.results[i].ok())
        << "doc " << i << ": " << out.results[i].status();
    EXPECT_EQ(Fingerprint(out.results[i]), expected[i]) << "doc " << i;
  }
  ASSERT_FALSE(out.results[slow].ok());
  EXPECT_TRUE(out.results[slow].status().IsDeadlineExceeded() ||
              out.results[slow].status().IsCancelled())
      << out.results[slow].status();
  EXPECT_EQ(out.stats.num_ok, static_cast<int64_t>(slow));
}

// --- Dispatch fault injection. ---

TEST(BudgetBatchTest, DispatchFaultInjectionFailsEveryDocument) {
  // Fault hits are counted per Budget, and each document owns a Budget:
  // "runtime.batch_dispatch:1" therefore trips every dispatch, proving
  // the dispatch checkpoint really guards each document.
  ScopedFaultInject env("runtime.batch_dispatch:1");
  const std::vector<ParenSeq> docs = MakeFastCorpus(4, 0xD15B);
  for (const int jobs : {1, 2}) {
    runtime::BatchRepairEngine engine({.jobs = jobs});
    const runtime::BatchRepairOutcome out = engine.RepairAll(docs, {});
    for (size_t i = 0; i < docs.size(); ++i) {
      ASSERT_FALSE(out.results[i].ok()) << "doc " << i << " jobs=" << jobs;
      EXPECT_TRUE(out.results[i].status().IsDeadlineExceeded())
          << out.results[i].status();
    }
    EXPECT_EQ(out.stats.num_failed, static_cast<int64_t>(docs.size()));
    EXPECT_EQ(out.stats.num_cancelled, 0);
  }
}

TEST(BudgetBatchTest, UnbudgetedBatchMatchesSerialExactly) {
  // No limits, no deadline, no fault seam: the batch path must not even
  // construct budgets — telemetry shows zero budget steps and the results
  // are byte-identical to serial repair.
  const std::vector<ParenSeq> docs = MakeFastCorpus(10, 0x5E1A);
  runtime::BatchRepairEngine engine({.jobs = 2});
  const runtime::BatchRepairOutcome out = engine.RepairAll(docs, {});
  for (size_t i = 0; i < docs.size(); ++i) {
    ASSERT_TRUE(out.results[i].ok());
    EXPECT_EQ(Fingerprint(out.results[i]), Fingerprint(Repair(docs[i], {})))
        << "doc " << i;
  }
  EXPECT_EQ(out.stats.telemetry.budget_steps, 0);
  EXPECT_EQ(out.stats.num_degraded, 0);
  EXPECT_EQ(out.stats.num_cancelled, 0);
}

}  // namespace
}  // namespace dyck
