// Shared test helper: validates a PairOp sequence as a complete alignment.

#ifndef DYCKFIX_TESTS_PAIR_OP_CHECK_H_
#define DYCKFIX_TESTS_PAIR_OP_CHECK_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/lms/banded.h"

namespace dyck {
namespace test_support {

// Validates that `ops` is a complete, consistent alignment of a vs b under
// `metric` and returns its cost. Adds gtest failures on inconsistency.
inline int64_t CheckPairOps(const std::vector<int32_t>& a,
                            const std::vector<int32_t>& b,
                            const std::vector<PairOp>& ops,
                            WaveMetric metric) {
  const bool subs = metric == WaveMetric::kSubstitution;
  int64_t ia = 0;
  int64_t ib = 0;
  int64_t cost = 0;
  for (const PairOp& op : ops) {
    switch (op.kind) {
      case PairOpKind::kMatch:
        EXPECT_EQ(op.a_pos, ia);
        EXPECT_EQ(op.b_pos, ib);
        EXPECT_GE(op.len, 1);
        for (int64_t t = 0; t < op.len; ++t) {
          EXPECT_LT(ia + t, static_cast<int64_t>(a.size()));
          EXPECT_LT(ib + t, static_cast<int64_t>(b.size()));
          if (ia + t < static_cast<int64_t>(a.size()) &&
              ib + t < static_cast<int64_t>(b.size())) {
            EXPECT_EQ(a[ia + t], b[ib + t]) << "mismatched match at " << t;
          }
        }
        ia += op.len;
        ib += op.len;
        break;
      case PairOpKind::kDeleteA:
        EXPECT_EQ(op.a_pos, ia);
        ia += 1;
        cost += 1;
        break;
      case PairOpKind::kDeleteB:
        EXPECT_EQ(op.b_pos, ib);
        ib += 1;
        cost += 1;
        break;
      case PairOpKind::kSubstitute:
        EXPECT_TRUE(subs) << "substitution under deletion metric";
        EXPECT_EQ(op.a_pos, ia);
        EXPECT_EQ(op.b_pos, ib);
        ia += 1;
        ib += 1;
        cost += 1;
        break;
      case PairOpKind::kDoubleDeleteA:
        EXPECT_TRUE(subs);
        EXPECT_EQ(op.a_pos, ia);
        ia += 2;
        cost += 1;
        break;
      case PairOpKind::kDoubleDeleteB:
        EXPECT_TRUE(subs);
        EXPECT_EQ(op.b_pos, ib);
        ib += 2;
        cost += 1;
        break;
    }
    EXPECT_LE(ia, static_cast<int64_t>(a.size()));
    EXPECT_LE(ib, static_cast<int64_t>(b.size()));
  }
  EXPECT_EQ(ia, static_cast<int64_t>(a.size())) << "A not fully consumed";
  EXPECT_EQ(ib, static_cast<int64_t>(b.size())) << "B not fully consumed";
  return cost;
}

}  // namespace test_support
}  // namespace dyck

#endif  // DYCKFIX_TESTS_PAIR_OP_CHECK_H_
