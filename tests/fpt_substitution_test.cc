#include <gtest/gtest.h>

#include <random>

#include "src/alphabet/parse.h"
#include "src/baseline/cubic.h"
#include "src/fpt/substitution.h"
#include "src/gen/workload.h"

namespace dyck {
namespace {

ParenSeq Parse(const std::string& text) {
  return ParenAlphabet::Default().Parse(text).value();
}

ParenSeq RandomSeq(int64_t n, int32_t types, std::mt19937_64& rng) {
  ParenSeq seq;
  for (int64_t i = 0; i < n; ++i) {
    seq.push_back(
        Paren{static_cast<ParenType>(rng() % types), rng() % 2 == 0});
  }
  return seq;
}

TEST(FptSubstitutionTest, HandpickedCases) {
  EXPECT_EQ(FptSubstitutionDistance({}), 0);
  EXPECT_EQ(FptSubstitutionDistance(Parse("()")), 0);
  EXPECT_EQ(FptSubstitutionDistance(Parse("(")), 1);
  EXPECT_EQ(FptSubstitutionDistance(Parse("((")), 1);
  EXPECT_EQ(FptSubstitutionDistance(Parse("))")), 1);
  EXPECT_EQ(FptSubstitutionDistance(Parse(")(")), 2);
  EXPECT_EQ(FptSubstitutionDistance(Parse("(]")), 1);
  EXPECT_EQ(FptSubstitutionDistance(Parse("([)]")), 2);
  EXPECT_EQ(FptSubstitutionDistance(Parse("((((")), 2);
  EXPECT_EQ(FptSubstitutionDistance(Parse("(((((")), 3);
}

class FptSubstitutionRandomTest
    : public ::testing::TestWithParam<std::tuple<int32_t, int64_t>> {};

TEST_P(FptSubstitutionRandomTest, MatchesCubicOracle) {
  const auto [types, max_len] = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(types) * 7777 + max_len);
  for (int trial = 0; trial < 200; ++trial) {
    const ParenSeq seq = RandomSeq(rng() % max_len, types, rng);
    const int64_t truth = CubicDistance(seq, true);
    EXPECT_EQ(FptSubstitutionDistance(seq), truth) << ToString(seq);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FptSubstitutionRandomTest,
    ::testing::Combine(::testing::Values<int32_t>(1, 2, 4),
                       ::testing::Values<int64_t>(8, 16, 28)));

class FptSubstitutionCorruptionTest
    : public ::testing::TestWithParam<
          std::tuple<int64_t, int64_t, gen::Shape>> {};

TEST_P(FptSubstitutionCorruptionTest, MatchesCubicOnCorruptedBalanced) {
  const auto [length, edits, shape] = GetParam();
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const ParenSeq base = gen::RandomBalanced(
        {.length = length, .num_types = 3, .shape = shape}, seed);
    const gen::CorruptedSequence corrupted = gen::Corrupt(
        base, {.num_edits = edits, .num_types = 3}, seed + 77);
    const int64_t truth = CubicDistance(corrupted.seq, true);
    ASSERT_LE(truth, corrupted.edit2_bound);
    EXPECT_EQ(FptSubstitutionDistance(corrupted.seq), truth)
        << ToString(corrupted.seq);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FptSubstitutionCorruptionTest,
    ::testing::Combine(::testing::Values<int64_t>(24, 60, 120),
                       ::testing::Values<int64_t>(1, 2, 4),
                       ::testing::Values(gen::Shape::kUniform,
                                         gen::Shape::kDeep,
                                         gen::Shape::kFlat)));

TEST(FptSubstitutionTest, BoundedDistanceRefusesWhenTooSmall) {
  SubstitutionSolver solver(Parse("(((((((("));
  EXPECT_FALSE(solver.Distance(3).has_value());
  EXPECT_EQ(*solver.Distance(4), 4);
  EXPECT_EQ(*solver.Distance(9), 4);
}

TEST(FptSubstitutionRepairTest, ScriptsValidateOnRandomInputs) {
  std::mt19937_64 rng(1717);
  for (int trial = 0; trial < 150; ++trial) {
    const ParenSeq seq = RandomSeq(rng() % 18, 3, rng);
    const FptResult result = FptSubstitutionRepair(seq);
    EXPECT_EQ(result.distance, CubicDistance(seq, true)) << ToString(seq);
    const Status status =
        ValidateScript(seq, result.script, result.distance, true);
    EXPECT_TRUE(status.ok()) << status << " on " << ToString(seq);
  }
}

TEST(FptSubstitutionRepairTest, ScriptsValidateOnCorruptedBalanced) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const ParenSeq base =
        gen::RandomBalanced({.length = 160, .num_types = 4}, seed);
    const gen::CorruptedSequence corrupted =
        gen::Corrupt(base, {.num_edits = 3, .num_types = 4}, seed * 3 + 2);
    const FptResult result = FptSubstitutionRepair(corrupted.seq);
    EXPECT_LE(result.distance, corrupted.edit2_bound);
    const Status status = ValidateScript(corrupted.seq, result.script,
                                         result.distance, true);
    EXPECT_TRUE(status.ok()) << status;
  }
}

TEST(FptSubstitutionTest, LongNearlyBalancedInput) {
  const ParenSeq base =
      gen::RandomBalanced({.length = 20000, .num_types = 4}, 15);
  gen::CorruptedSequence corrupted =
      gen::Corrupt(base, {.num_edits = 2, .num_types = 4}, 16);
  const int64_t d = FptSubstitutionDistance(corrupted.seq);
  EXPECT_LE(d, corrupted.edit2_bound);
}

TEST(FptSubstitutionTest, NeverWorseThanDeletionsOnly) {
  std::mt19937_64 rng(2025);
  for (int trial = 0; trial < 100; ++trial) {
    const ParenSeq seq = RandomSeq(rng() % 16, 2, rng);
    EXPECT_LE(FptSubstitutionDistance(seq), CubicDistance(seq, false))
        << ToString(seq);
  }
}

}  // namespace
}  // namespace dyck
