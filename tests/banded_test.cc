#include <gtest/gtest.h>

#include <random>

#include "src/lms/banded.h"
#include "tests/pair_op_check.h"

namespace dyck {
namespace {

using test_support::CheckPairOps;

std::vector<int32_t> RandomString(int64_t n, int32_t sigma,
                                  std::mt19937_64& rng) {
  std::vector<int32_t> s(n);
  for (auto& v : s) v = static_cast<int32_t>(rng() % sigma);
  return s;
}

class BandedDifferentialTest : public ::testing::TestWithParam<WaveMetric> {
};

TEST_P(BandedDifferentialTest, CostMatchesQuadraticAndOpsAreValid) {
  const WaveMetric metric = GetParam();
  std::mt19937_64 rng(metric == WaveMetric::kDeletion ? 5 : 6);
  for (int trial = 0; trial < 300; ++trial) {
    const auto a = RandomString(rng() % 20, 3, rng);
    const auto b = RandomString(rng() % 20, 3, rng);
    const int64_t expected = EditDistanceQuadratic(a, b, metric);
    const auto result = BandedAlign(a, b, metric, expected);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->cost, expected);
    EXPECT_EQ(CheckPairOps(a, b, result->ops, metric), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Metrics, BandedDifferentialTest,
                         ::testing::Values(WaveMetric::kDeletion,
                                           WaveMetric::kSubstitution));

TEST(BandedTest, RefusesWhenBoundTooSmall) {
  const auto result =
      BandedAlign({1, 2, 3}, {4, 5, 6}, WaveMetric::kDeletion, 1);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsBoundExceeded());
}

TEST(BandedTest, RejectsNegativeBound) {
  EXPECT_TRUE(BandedAlign({1}, {1}, WaveMetric::kDeletion, -1)
                  .status()
                  .IsInvalidArgument());
}

TEST(BandedTest, EmptyInputs) {
  const auto result = BandedAlign({}, {}, WaveMetric::kDeletion, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost, 0);
  EXPECT_TRUE(result->ops.empty());
}

TEST(BandedTest, DoubleDeletionPreferredOverTwoDeletions) {
  const auto result =
      BandedAlign({7, 7}, {}, WaveMetric::kSubstitution, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost, 1);
}

}  // namespace
}  // namespace dyck
