// RepairDoc unit tests: splice mechanics against a reference vector, chunk
// cache bookkeeping (dirty counts, rebuild threshold), the summary-folded
// lower bound, telemetry counters, and the C doc-handle API. The
// differential guarantees (incremental == eager, byte for byte) live in
// incremental_test.cc.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "include/dyckfix.h"
#include "src/approx/lower_bound.h"
#include "src/core/doc.h"
#include "src/core/dyck.h"
#include "src/gen/workload.h"
#include "src/textio/bracket_tokenizer.h"

namespace dyck {
namespace {

ParenSeq Tokens(const std::string& text) {
  return textio::TokenizeBrackets(text, ParenAlphabet::Default()).seq;
}

std::string Render(const ParenSeq& seq) {
  std::string out;
  for (const Paren& p : seq) out += textio::RenderBracketToken(p);
  return out;
}

TEST(DocTest, EmptyDocRepairsToEmpty) {
  RepairDoc doc;
  EXPECT_EQ(doc.size(), 0);
  const auto result = doc.Repair({});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->distance, 0);
  EXPECT_TRUE(result->repaired.empty());
}

TEST(DocTest, SpliceMatchesReferenceVector) {
  // Every splice is mirrored on a plain vector; the doc's buffer must
  // track it exactly regardless of how chunks merge and split.
  RepairDoc doc(Tokens("()[]{}()[]{}"), /*target_chunk_size=*/16);
  ParenSeq mirror = Tokens("()[]{}()[]{}");

  const auto apply_both = [&](int64_t pos, int64_t erase_len,
                              const std::string& insert) {
    const ParenSeq tokens = Tokens(insert);
    doc.Splice(pos, erase_len, tokens);
    mirror.erase(mirror.begin() + pos, mirror.begin() + pos + erase_len);
    mirror.insert(mirror.begin() + pos, tokens.begin(), tokens.end());
    ASSERT_EQ(Render(doc.tokens()), Render(mirror));
  };

  apply_both(0, 0, "((");        // prepend
  apply_both(14, 0, "))");       // append
  apply_both(3, 5, "");          // pure erase
  apply_both(2, 2, "[[]]");      // replace, net growth
  apply_both(0, doc.size(), ""); // erase everything
  EXPECT_EQ(doc.size(), 0);
  apply_both(0, 0, "()");        // grow from empty
}

TEST(DocTest, SpliceDirtiesOnlyTouchedChunks) {
  // 64 tokens in 4 chunks of 16. After the first repair everything is
  // clean; a one-token splice must dirty O(1) chunks, not the cache.
  ParenSeq seq;
  for (int i = 0; i < 32; ++i) {
    seq.push_back(Paren::Open(0));
    seq.push_back(Paren::Close(0));
  }
  RepairDoc doc(std::move(seq), /*target_chunk_size=*/16);
  ASSERT_TRUE(doc.Repair({}).ok());
  EXPECT_EQ(doc.chunk_count(), 4);
  EXPECT_EQ(doc.dirty_chunk_count(), 0);

  const Paren open = Paren::Open(0);
  doc.Splice(1, 0, ParenSpan(&open, 1));
  EXPECT_EQ(doc.dirty_chunk_count(), 1);
  EXPECT_GE(doc.chunk_count(), 4);

  RepairResult result;
  ASSERT_TRUE(doc.RepairInto({}, &result).ok());
  EXPECT_EQ(doc.dirty_chunk_count(), 0);
  EXPECT_TRUE(result.telemetry.incremental);
  EXPECT_EQ(result.telemetry.chunks_recomputed, 1);
  EXPECT_EQ(result.telemetry.chunks_reused, 3);
}

TEST(DocTest, FirstRepairIsAFullBuild) {
  RepairDoc doc(Tokens("(()[]"), /*target_chunk_size=*/16);
  RepairResult result;
  ASSERT_TRUE(doc.RepairInto({}, &result).ok());
  EXPECT_FALSE(result.telemetry.incremental);
  EXPECT_EQ(result.telemetry.chunks_reused, 0);
  EXPECT_GT(result.telemetry.chunks_recomputed, 0);
}

TEST(DocTest, SpliceStormTriggersRebuild) {
  // Dirtying more than half the chunks makes the next repair rebuild the
  // cache from scratch (telemetry reports a non-incremental repair), after
  // which the cache is clean and chunks are evenly re-cut.
  gen::BalancedOptions options;
  options.length = 256;
  RepairDoc doc(gen::RandomBalanced(options, 7), /*target_chunk_size=*/16);
  ASSERT_TRUE(doc.Repair({}).ok());
  const int64_t chunks = doc.chunk_count();
  ASSERT_GE(chunks, 8);

  const Paren open = Paren::Open(1);
  for (int64_t pos = 1; pos < doc.size(); pos += 14) {
    doc.Splice(pos, 0, ParenSpan(&open, 1));
  }
  EXPECT_GT(doc.dirty_chunk_count() * 2, doc.chunk_count());

  RepairResult result;
  ASSERT_TRUE(doc.RepairInto({}, &result).ok());
  EXPECT_FALSE(result.telemetry.incremental);
  EXPECT_EQ(result.telemetry.chunks_reused, 0);
  EXPECT_EQ(doc.dirty_chunk_count(), 0);
}

TEST(DocTest, LowerBoundMatchesDyckRelaxation) {
  gen::BalancedOptions balanced;
  balanced.length = 512;
  gen::CorruptionOptions corrupt;
  corrupt.num_edits = 5;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const ParenSeq seq =
        gen::Corrupt(gen::RandomBalanced(balanced, seed), corrupt, seed + 100)
            .seq;
    RepairDoc doc(ParenSeq(seq), /*target_chunk_size=*/32);
    for (const bool subs : {false, true}) {
      EXPECT_EQ(doc.UntypedLowerBound(subs),
                DyckRelaxationLowerBound(seq, subs))
          << "seed=" << seed << " subs=" << subs;
    }
    // Still exact after a splice (the summary fold sees the dirty chunk).
    const Paren close = Paren::Close(0);
    doc.Splice(doc.size() / 2, 0, ParenSpan(&close, 1));
    for (const bool subs : {false, true}) {
      EXPECT_EQ(doc.UntypedLowerBound(subs),
                DyckRelaxationLowerBound(doc.tokens(), subs))
          << "seed=" << seed << " subs=" << subs << " (after splice)";
    }
  }
}

TEST(DocTest, ConstructorChunkOverrideIsClamped) {
  gen::BalancedOptions options;
  options.length = 128;
  RepairDoc doc(gen::RandomBalanced(options, 3), /*target_chunk_size=*/1);
  ASSERT_TRUE(doc.Repair({}).ok());
  // Clamped to >= 16 tokens per chunk: 128 / 16 = 8 chunks.
  EXPECT_EQ(doc.chunk_count(), 8);
}

TEST(DocTest, RepairReportsErrorsLikeEager) {
  RepairDoc doc(Tokens("((((("));
  Options options;
  options.max_distance = 2;
  const auto result = doc.Repair(options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsBoundExceeded())
      << result.status().ToString();
}

// ---------------------------------------------------------------------------
// C API doc handle (suite name DocCApi keeps it inside the sanitizer preset
// filters together with the C++ Doc tests).

TEST(DocCApi, CreateSpliceRepairFree) {
  dyckfix_doc* doc = dyckfix_doc_create("(()");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(dyckfix_doc_size(doc), 3);

  char* out = nullptr;
  long long distance = -1;
  int degraded = -1;
  ASSERT_EQ(dyckfix_doc_repair(doc, nullptr, &out, &distance, &degraded),
            DYCKFIX_OK);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(std::string(out), "()");
  EXPECT_EQ(distance, 1);
  EXPECT_EQ(degraded, 0);
  dyckfix_string_free(out);

  // Close the dangling open instead: "(()" + ")" at the end is balanced.
  ASSERT_EQ(dyckfix_doc_splice(doc, 3, 0, ")"), DYCKFIX_OK);
  EXPECT_EQ(dyckfix_doc_size(doc), 4);
  out = nullptr;
  ASSERT_EQ(dyckfix_doc_repair(doc, nullptr, &out, &distance, nullptr),
            DYCKFIX_OK);
  EXPECT_EQ(std::string(out), "(())");
  EXPECT_EQ(distance, 0);
  dyckfix_string_free(out);

  dyckfix_doc_free(doc);
}

TEST(DocCApi, NonBracketBytesAreDropped) {
  dyckfix_doc* doc = dyckfix_doc_create("f(a, b[0\x2e]");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(dyckfix_doc_size(doc), 3);  // ( [ ]
  dyckfix_doc_free(doc);
}

TEST(DocCApi, SpliceValidatesBounds) {
  dyckfix_doc* doc = dyckfix_doc_create("()");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(dyckfix_doc_splice(doc, 3, 0, "("),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  EXPECT_EQ(dyckfix_doc_splice(doc, 0, 3, nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  EXPECT_EQ(dyckfix_doc_splice(doc, -1, 0, nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  EXPECT_NE(std::strlen(dyckfix_doc_last_error(doc)), 0u);
  // Document unchanged after the rejected splices.
  EXPECT_EQ(dyckfix_doc_size(doc), 2);
  EXPECT_EQ(dyckfix_doc_splice(doc, 2, 0, "()"), DYCKFIX_OK);
  EXPECT_EQ(std::strlen(dyckfix_doc_last_error(doc)), 0u);
  dyckfix_doc_free(doc);
}

TEST(DocCApi, TelemetryReportsIncrementalCounters) {
  dyckfix_doc* doc = dyckfix_doc_create("((((");
  ASSERT_NE(doc, nullptr);

  dyckfix_telemetry telemetry;
  EXPECT_EQ(dyckfix_doc_telemetry(doc, &telemetry),
            DYCKFIX_ERROR_NO_TELEMETRY);

  char* out = nullptr;
  ASSERT_EQ(dyckfix_doc_repair(doc, nullptr, &out, nullptr, nullptr),
            DYCKFIX_OK);
  dyckfix_string_free(out);
  ASSERT_EQ(dyckfix_doc_telemetry(doc, &telemetry), DYCKFIX_OK);
  EXPECT_EQ(telemetry.incremental, 0);  // first repair builds the cache
  EXPECT_GT(telemetry.chunks_recomputed, 0);
  EXPECT_EQ(telemetry.input_length, 4);

  EXPECT_EQ(dyckfix_doc_telemetry(nullptr, &telemetry),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  EXPECT_EQ(dyckfix_doc_telemetry(doc, nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  dyckfix_doc_free(doc);
}

TEST(DocCApi, RepairValidatesOptions) {
  dyckfix_doc* doc = dyckfix_doc_create("(");
  ASSERT_NE(doc, nullptr);
  dyckfix_options opts;
  dyckfix_options_init(&opts);
  opts.max_approx_factor = 0.5;
  char* out = nullptr;
  EXPECT_EQ(dyckfix_doc_repair(doc, &opts, &out, nullptr, nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  EXPECT_NE(std::strlen(dyckfix_doc_last_error(doc)), 0u);
  EXPECT_EQ(dyckfix_doc_repair(doc, nullptr, nullptr, nullptr, nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  dyckfix_doc_free(doc);
}

TEST(DocCApi, NullHandleIsSafe) {
  dyckfix_doc_free(nullptr);
  EXPECT_EQ(dyckfix_doc_size(nullptr), -1);
  EXPECT_EQ(dyckfix_doc_splice(nullptr, 0, 0, ""),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  char* out = nullptr;
  EXPECT_EQ(dyckfix_doc_repair(nullptr, nullptr, &out, nullptr, nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  EXPECT_STREQ(dyckfix_doc_last_error(nullptr), "");
}

TEST(DocCApi, EmptyAndNullCreateText) {
  for (const char* text : {static_cast<const char*>(nullptr), "", "no br"}) {
    dyckfix_doc* doc = dyckfix_doc_create(text);
    ASSERT_NE(doc, nullptr);
    EXPECT_EQ(dyckfix_doc_size(doc), 0);
    char* out = nullptr;
    long long distance = -1;
    ASSERT_EQ(dyckfix_doc_repair(doc, nullptr, &out, &distance, nullptr),
              DYCKFIX_OK);
    EXPECT_STREQ(out, "");
    EXPECT_EQ(distance, 0);
    dyckfix_string_free(out);
    dyckfix_doc_free(doc);
  }
}

}  // namespace
}  // namespace dyck
