// Unit tests for the execution-budget primitive (src/util/budget.h):
// step counting, each trip class (deadline / steps / allocation / cancel),
// trip stickiness, the stride-gated fast path, scope nesting, and the
// DYCKFIX_FAULT_INJECT parsing contract.

#include "src/util/budget.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <thread>

namespace dyck {
namespace {

// The clock/cancel poll period; kept in sync with Budget::kStride by the
// StrideGatesTheClock test below (which fails if the stride changes).
constexpr int kStride = 256;

// Sets DYCKFIX_FAULT_INJECT for one test body. Budgets parse the variable
// at construction, so the guard must outlive every Budget under test.
class ScopedFaultInject {
 public:
  explicit ScopedFaultInject(const char* value) {
    ::setenv("DYCKFIX_FAULT_INJECT", value, /*overwrite=*/1);
  }
  ~ScopedFaultInject() { ::unsetenv("DYCKFIX_FAULT_INJECT"); }
};

TEST(BudgetLimitsTest, DefaultIsUnlimited) {
  BudgetLimits limits;
  EXPECT_TRUE(limits.Unlimited());
  limits.timeout_ms = 10;
  EXPECT_FALSE(limits.Unlimited());
  limits = BudgetLimits{};
  limits.max_steps = 1;
  EXPECT_FALSE(limits.Unlimited());
  limits = BudgetLimits{};
  limits.max_alloc_bytes = 1;
  EXPECT_FALSE(limits.Unlimited());
}

TEST(BudgetTest, UnlimitedBudgetCountsStepsAndNeverTrips) {
  Budget budget({});
  for (int i = 0; i < 3 * kStride; ++i) {
    EXPECT_TRUE(budget.Check("test.loop").ok());
  }
  EXPECT_EQ(budget.steps(), 3 * kStride);
  EXPECT_FALSE(budget.exceeded());
  EXPECT_EQ(budget.trip_checkpoint(), nullptr);
  EXPECT_FALSE(budget.has_deadline());
}

TEST(BudgetTest, StepCapTripsResourceExhaustedAndSticks) {
  Budget budget({.max_steps = 10});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(budget.Check("test.loop").ok()) << "step " << i;
  }
  const Status trip = budget.Check("test.loop");
  EXPECT_TRUE(trip.IsResourceExhausted()) << trip;
  EXPECT_TRUE(budget.exceeded());
  EXPECT_STREQ(budget.trip_checkpoint(), "test.loop");
  // Sticky: later checks return the original trip, from any checkpoint.
  const Status again = budget.Check("test.other");
  EXPECT_TRUE(again.IsResourceExhausted());
  EXPECT_STREQ(budget.trip_checkpoint(), "test.loop");
  EXPECT_EQ(budget.trip_status().code(), StatusCode::kResourceExhausted);
}

TEST(BudgetTest, StrideGatesTheClock) {
  // An already-expired deadline is only observed at stride multiples, so
  // the first kStride - 1 checks pass and check kStride trips. This pins
  // the documented overshoot bound (one stride) and the stride constant.
  Budget budget({.timeout_ms = 0});
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  for (int i = 0; i < kStride - 1; ++i) {
    ASSERT_TRUE(budget.Check("test.loop").ok()) << "step " << i;
  }
  const Status trip = budget.Check("test.loop");
  EXPECT_TRUE(trip.IsDeadlineExceeded()) << trip;
}

TEST(BudgetTest, CheckNowObservesExpiredDeadlineImmediately) {
  Budget budget({.timeout_ms = 0});
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const Status trip = budget.CheckNow("runtime.batch_dispatch");
  EXPECT_TRUE(trip.IsDeadlineExceeded()) << trip;
  EXPECT_STREQ(budget.trip_checkpoint(), "runtime.batch_dispatch");
}

TEST(BudgetTest, CheckNowObservesCancelImmediately) {
  CancelToken cancel;
  Budget budget({}, &cancel);
  EXPECT_TRUE(budget.CheckNow("test.dispatch").ok());
  cancel.Cancel();
  const Status trip = budget.CheckNow("test.dispatch");
  EXPECT_TRUE(trip.IsCancelled()) << trip;
}

TEST(BudgetTest, CancelTokenTripsAtStrideBoundary) {
  CancelToken cancel;
  Budget budget({}, &cancel);
  cancel.Cancel();
  Status status = Status::OK();
  for (int i = 0; i < kStride && status.ok(); ++i) {
    status = budget.Check("test.loop");
  }
  EXPECT_TRUE(status.IsCancelled()) << status;
  EXPECT_EQ(budget.steps(), kStride);
}

TEST(BudgetTest, CapDeadlineKeepsTheEarlier) {
  Budget budget({.timeout_ms = 1000000});
  EXPECT_TRUE(budget.has_deadline());
  budget.CapDeadline(Budget::Clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(budget.CheckNow("test.dispatch").IsDeadlineExceeded());

  Budget no_own_deadline({});
  EXPECT_FALSE(no_own_deadline.has_deadline());
  no_own_deadline.CapDeadline(Budget::Clock::now() +
                              std::chrono::hours(1));
  EXPECT_TRUE(no_own_deadline.has_deadline());
  EXPECT_TRUE(no_own_deadline.CheckNow("test.dispatch").ok());
}

TEST(BudgetTest, AllocationCapThrowsAndTracksPeak) {
  Budget budget({.max_alloc_bytes = 1000});
  budget.ReportAlloc("test.table", 600);
  EXPECT_EQ(budget.current_alloc_bytes(), 600);
  EXPECT_EQ(budget.peak_alloc_bytes(), 600);
  budget.ReleaseAlloc(600);
  EXPECT_EQ(budget.current_alloc_bytes(), 0);
  EXPECT_EQ(budget.peak_alloc_bytes(), 600);
  // Released memory really is released: a second 600 fits again.
  budget.ReportAlloc("test.table", 600);
  budget.ReleaseAlloc(600);

  try {
    budget.ReportAlloc("test.table", 1200);
    FAIL() << "allocation above the cap must throw";
  } catch (const BudgetExceededError& error) {
    EXPECT_TRUE(error.status.IsResourceExhausted()) << error.status;
    EXPECT_STREQ(error.checkpoint, "test.table");
  }
  EXPECT_TRUE(budget.exceeded());
  // A tripped budget rejects every further allocation report, so callers
  // unwind at their next allocation site even between checkpoints.
  EXPECT_THROW(budget.ReportAlloc("test.table", 1), BudgetExceededError);
}

TEST(BudgetTest, PollThrowsTheTripStatus) {
  Budget budget({.max_steps = 1});
  budget.Poll("test.loop");  // step 1: within budget
  try {
    budget.Poll("test.loop");
    FAIL() << "Poll above the step cap must throw";
  } catch (const BudgetExceededError& error) {
    EXPECT_TRUE(error.status.IsResourceExhausted());
    EXPECT_STREQ(error.checkpoint, "test.loop");
  }
}

TEST(BudgetScopeTest, NestingRestoresThePreviousBudget) {
  EXPECT_EQ(BudgetScope::Current(), nullptr);
  Budget outer({});
  {
    BudgetScope outer_scope(&outer);
    EXPECT_EQ(BudgetScope::Current(), &outer);
    Budget inner({});
    {
      BudgetScope inner_scope(&inner);
      EXPECT_EQ(BudgetScope::Current(), &inner);
    }
    EXPECT_EQ(BudgetScope::Current(), &outer);
  }
  EXPECT_EQ(BudgetScope::Current(), nullptr);
}

TEST(BudgetScopeTest, CheckpointIsANoOpWithoutAScope) {
  ASSERT_EQ(BudgetScope::Current(), nullptr);
  BudgetCheckpoint("test.loop");             // must not crash or throw
  BudgetReportAlloc("test.table", 1 << 30);  // ditto
  BudgetReleaseAlloc(1 << 30);
}

TEST(FaultInjectTest, ArmedReflectsTheEnvironment) {
  EXPECT_FALSE(BudgetFaultInjectionArmed());
  ScopedFaultInject env("test.loop:1");
  EXPECT_TRUE(BudgetFaultInjectionArmed());
}

TEST(FaultInjectTest, TripsTheNamedCheckpointOnTheKthHit) {
  ScopedFaultInject env("test.loop:3");
  Budget budget({});
  EXPECT_TRUE(budget.Check("test.loop").ok());
  EXPECT_TRUE(budget.Check("test.other").ok());  // non-matching: no hit
  EXPECT_TRUE(budget.Check("test.loop").ok());
  const Status trip = budget.Check("test.loop");  // third matching hit
  EXPECT_TRUE(trip.IsDeadlineExceeded()) << trip;  // default code
  EXPECT_STREQ(budget.trip_checkpoint(), "test.loop");
}

TEST(FaultInjectTest, HitsAreCountedPerBudgetInstance) {
  ScopedFaultInject env("test.loop:1");
  Budget first({});
  EXPECT_TRUE(first.Check("test.loop").IsDeadlineExceeded());
  Budget second({});  // a fresh budget re-arms the seam
  EXPECT_TRUE(second.Check("test.loop").IsDeadlineExceeded());
}

TEST(FaultInjectTest, CodeSuffixSelectsTheStatus) {
  {
    ScopedFaultInject env("test.loop:1:cancelled");
    Budget budget({});
    EXPECT_TRUE(budget.Check("test.loop").IsCancelled());
  }
  {
    ScopedFaultInject env("test.loop:1:resource");
    Budget budget({});
    EXPECT_TRUE(budget.Check("test.loop").IsResourceExhausted());
  }
  {
    ScopedFaultInject env("test.loop:1:deadline");
    Budget budget({});
    EXPECT_TRUE(budget.Check("test.loop").IsDeadlineExceeded());
  }
}

TEST(FaultInjectTest, MalformedSpecsDisarmTheSeam) {
  const char* kMalformed[] = {
      "test.loop",          // no count
      ":3",                 // empty checkpoint name
      "test.loop:0",        // k < 1
      "test.loop:-2",       // negative
      "test.loop:abc",      // non-numeric
      "test.loop:1:bogus",  // unknown code
      "test.loop:",         // empty count
  };
  for (const char* spec : kMalformed) {
    ScopedFaultInject env(spec);
    Budget budget({});
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(budget.Check("test.loop").ok())
          << "spec \"" << spec << "\" must disarm, not trip";
    }
  }
}

}  // namespace
}  // namespace dyck
