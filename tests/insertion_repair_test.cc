#include <gtest/gtest.h>

#include <random>

#include "src/alphabet/parse.h"
#include "src/baseline/cubic.h"
#include "src/cfg/edit_distance.h"
#include "src/core/dyck.h"
#include "src/core/insertion_repair.h"

namespace dyck {
namespace {

ParenSeq Parse(const std::string& text) {
  return ParenAlphabet::Default().Parse(text).value();
}

// Every original symbol must appear, in order, in the repaired sequence.
bool ContainsAsSubsequenceModuloSubs(const ParenSeq& original,
                                     const EditScript& script,
                                     const ParenSeq& repaired) {
  ParenSeq expected = original;
  for (const EditOp& op : script.ops) {
    if (op.kind == EditOpKind::kSubstitute) {
      expected[op.pos] = op.replacement;
    }
  }
  size_t j = 0;
  for (const Paren& p : expected) {
    while (j < repaired.size() && !(repaired[j] == p)) ++j;
    if (j == repaired.size()) return false;
    ++j;
  }
  return true;
}

TEST(PreserveContentTest, UnclosedOpenerGetsCloser) {
  const ParenSeq seq = Parse("([");
  const auto repair = Repair(seq, {.style = RepairStyle::kPreserveContent});
  ASSERT_TRUE(repair.ok()) << repair.status();
  // edit2("([") = 1 (one substitution in minimal style); content-preserving
  // keeps the cost.
  EXPECT_EQ(repair->distance, 1);
  EXPECT_TRUE(IsBalanced(repair->repaired));
  EXPECT_GE(repair->repaired.size(), seq.size());
}

TEST(PreserveContentTest, DeletionOnlyMetricInsertsInstead) {
  const ParenSeq seq = Parse("((");
  const auto repair = Repair(seq, {.metric = Metric::kDeletionsOnly,
                                   .style = RepairStyle::kPreserveContent});
  ASSERT_TRUE(repair.ok());
  EXPECT_EQ(repair->distance, 2);
  EXPECT_EQ(ToString(repair->repaired), "(())");
}

TEST(PreserveContentTest, CloserGetsOpenerInFront) {
  const ParenSeq seq = Parse(")");
  const auto repair = Repair(seq, {.metric = Metric::kDeletionsOnly,
                                   .style = RepairStyle::kPreserveContent});
  ASSERT_TRUE(repair.ok());
  EXPECT_EQ(ToString(repair->repaired), "()");
}

TEST(PreserveContentTest, MixedDeepCase) {
  const ParenSeq seq = Parse(")]([");
  const auto repair = Repair(seq, {.metric = Metric::kDeletionsOnly,
                                   .style = RepairStyle::kPreserveContent});
  ASSERT_TRUE(repair.ok());
  EXPECT_EQ(repair->distance, 4);
  EXPECT_TRUE(IsBalanced(repair->repaired));
  EXPECT_EQ(repair->repaired.size(), 8u);
}

TEST(PreserveContentTest, RandomizedInvariants) {
  std::mt19937_64 rng(13579);
  for (int trial = 0; trial < 300; ++trial) {
    ParenSeq seq;
    const int64_t n = rng() % 20;
    for (int64_t i = 0; i < n; ++i) {
      seq.push_back(Paren{static_cast<ParenType>(rng() % 3), rng() % 2 == 0});
    }
    for (const Metric metric :
         {Metric::kDeletionsOnly, Metric::kDeletionsAndSubstitutions}) {
      const auto minimal = Repair(seq, {.metric = metric});
      ASSERT_TRUE(minimal.ok());
      const auto preserved =
          Repair(seq, {.metric = metric,
                       .style = RepairStyle::kPreserveContent});
      ASSERT_TRUE(preserved.ok()) << preserved.status();
      // Same optimal cost.
      EXPECT_EQ(preserved->distance, minimal->distance);
      // Valid insertion script that balances.
      const bool subs = metric == Metric::kDeletionsAndSubstitutions;
      EXPECT_TRUE(ValidateScript(seq, preserved->script,
                                 preserved->distance, subs,
                                 /*allow_insertions=*/true)
                      .ok())
          << ToString(seq);
      // No deletions at all.
      for (const EditOp& op : preserved->script.ops) {
        EXPECT_NE(op.kind, EditOpKind::kDelete) << ToString(seq);
      }
      // All content present.
      EXPECT_TRUE(ContainsAsSubsequenceModuloSubs(seq, preserved->script,
                                                  preserved->repaired))
          << ToString(seq);
      // Length grows by exactly the number of former deletions.
      EXPECT_GE(preserved->repaired.size(), seq.size());
    }
  }
}

TEST(PreserveContentTest, TransformRejectsBrokenScripts) {
  const ParenSeq seq = Parse("((");
  EditScript bogus;  // empty script does not repair "(("
  EXPECT_TRUE(
      PreserveContentScript(seq, bogus).status().IsInvalidArgument());
  EditScript with_insert;
  with_insert.ops.push_back({EditOpKind::kInsert, 0, Paren::Close(0)});
  EXPECT_TRUE(PreserveContentScript(seq, with_insert)
                  .status()
                  .IsInvalidArgument());
}

// The folklore identity the feature rests on: allowing insertions does not
// reduce the distance to Dyck (checked against the general CFG parser).
TEST(PreserveContentTest, InsertionsNeverBeatEdit2) {
  std::mt19937_64 rng(24680);
  for (int trial = 0; trial < 120; ++trial) {
    ParenSeq seq;
    const int64_t n = rng() % 10;
    for (int64_t i = 0; i < n; ++i) {
      seq.push_back(Paren{static_cast<ParenType>(rng() % 2), rng() % 2 == 0});
    }
    EXPECT_EQ(cfg::DyckDistanceViaCfg(seq, /*allow_substitutions=*/true,
                                      /*allow_insertions=*/true),
              CubicDistance(seq, true))
        << ToString(seq);
  }
}

TEST(PreserveContentTest, InsertOnlyEditDistanceViaCfg) {
  // Sanity on the CFG insertion machinery itself: distance from the empty
  // string equals the shortest yield.
  const auto nf = cfg::DyckGrammar(2).Normalize();
  ASSERT_TRUE(nf.ok());
  EXPECT_EQ(*cfg::CfgEditDistance(*nf, {},
                                  {.allow_insertions = true}),
            2);  // "()"
  // One lone opener: one insertion fixes it.
  EXPECT_EQ(*cfg::CfgEditDistance(*nf, {cfg::DyckTerminalId(0, true)},
                                  {.allow_substitutions = false,
                                   .allow_insertions = true}),
            1);
}

}  // namespace
}  // namespace dyck
