// Empirical validation of the paper's subproblem-count bounds: the number
// of memoized subproblems depends on d, not on n (Theorem 22's O(d^3)
// accounting for deletions; the |E| = O(d^8) bound for substitutions).

#include <gtest/gtest.h>

#include "src/fpt/deletion.h"
#include "src/fpt/substitution.h"
#include "src/gen/workload.h"

namespace dyck {
namespace {

ParenSeq MakeWorkload(int64_t n, int64_t edits, uint64_t seed) {
  const ParenSeq base =
      gen::RandomBalanced({.length = n, .num_types = 3}, seed);
  return gen::Corrupt(base, {.num_edits = edits, .num_types = 3}, seed + 1)
      .seq;
}

TEST(FptStatsTest, DeletionSubproblemsFlatInN) {
  // Same corruption level, n growing 64x: the memo must not grow with n.
  std::vector<int64_t> counts;
  for (const int64_t n : {int64_t{1} << 12, int64_t{1} << 15,
                          int64_t{1} << 18}) {
    DeletionSolver solver(MakeWorkload(n, 4, /*seed=*/7));
    ASSERT_TRUE(solver.Distance(16).has_value());
    counts.push_back(solver.last_subproblem_count());
  }
  // Not exactly equal (different random inputs), but same order: allow 8x.
  const int64_t max_count = *std::max_element(counts.begin(), counts.end());
  const int64_t min_count =
      std::max<int64_t>(1, *std::min_element(counts.begin(), counts.end()));
  EXPECT_LE(max_count, 8 * min_count)
      << "memo grew with n: " << counts[0] << ", " << counts[1] << ", "
      << counts[2];
}

TEST(FptStatsTest, DeletionSubproblemsPolynomialInD) {
  // Growing d with n fixed: memo grows, but far slower than d^3 with
  // realistic constants.
  const int64_t n = 1 << 14;
  int64_t prev = 0;
  for (const int64_t edits : {2, 8, 32}) {
    DeletionSolver solver(MakeWorkload(n, edits, /*seed=*/11));
    ASSERT_TRUE(solver.Distance(128).has_value());
    const int64_t count = solver.last_subproblem_count();
    EXPECT_GE(count, prev / 2);  // roughly monotone
    prev = count;
    // Sanity ceiling: way below n^2 (the unrestricted interval count).
    EXPECT_LT(count, n);
  }
}

TEST(FptStatsTest, SubstitutionSubproblemsFlatInN) {
  std::vector<int64_t> counts;
  for (const int64_t n : {int64_t{1} << 12, int64_t{1} << 14,
                          int64_t{1} << 16}) {
    SubstitutionSolver solver(MakeWorkload(n, 2, /*seed=*/23));
    ASSERT_TRUE(solver.Distance(8).has_value());
    counts.push_back(solver.last_subproblem_count());
  }
  const int64_t max_count = *std::max_element(counts.begin(), counts.end());
  const int64_t min_count =
      std::max<int64_t>(1, *std::min_element(counts.begin(), counts.end()));
  EXPECT_LE(max_count, 16 * min_count)
      << counts[0] << ", " << counts[1] << ", " << counts[2];
}

TEST(FptStatsTest, SolverReuseAcrossBoundsResets) {
  const ParenSeq seq = MakeWorkload(1 << 12, 4, 31);
  DeletionSolver solver(seq);
  ASSERT_TRUE(solver.Distance(64).has_value());
  const int64_t first = solver.last_subproblem_count();
  ASSERT_TRUE(solver.Distance(64).has_value());
  EXPECT_EQ(solver.last_subproblem_count(), first)
      << "same bound must reproduce the same memo";
}

}  // namespace
}  // namespace dyck
