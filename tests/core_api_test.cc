#include <gtest/gtest.h>

#include <random>

#include "src/baseline/cubic.h"
#include "src/core/dyck.h"
#include "src/gen/workload.h"

namespace dyck {
namespace {

ParenSeq Parse(const std::string& text) {
  return ParenAlphabet::Default().Parse(text).value();
}

TEST(EditScriptTest, ApplyScriptDeletesAndSubstitutes) {
  const ParenSeq seq = Parse("(])");
  EditScript script;
  script.ops.push_back({EditOpKind::kDelete, 1, Paren{}});
  EXPECT_EQ(ToString(ApplyScript(seq, script)), "()");

  EditScript script2;
  script2.ops.push_back({EditOpKind::kSubstitute, 1, Paren::Open(1)});
  EXPECT_EQ(ToString(ApplyScript(seq, script2)), "([)");
}

TEST(EditScriptTest, ValidateCatchesBadScripts) {
  const ParenSeq seq = Parse("(]");
  // Wrong cost.
  EditScript s1;
  EXPECT_FALSE(ValidateScript(seq, s1, 1, false).ok());
  // Unsorted / duplicate positions.
  EditScript s2;
  s2.ops.push_back({EditOpKind::kDelete, 1, Paren{}});
  s2.ops.push_back({EditOpKind::kDelete, 1, Paren{}});
  EXPECT_FALSE(ValidateScript(seq, s2, 2, false).ok());
  // Substitution under the deletion metric.
  EditScript s3;
  s3.ops.push_back({EditOpKind::kSubstitute, 1, Paren::Close(0)});
  EXPECT_FALSE(ValidateScript(seq, s3, 1, false).ok());
  // Self-substitution.
  EditScript s4;
  s4.ops.push_back({EditOpKind::kSubstitute, 1, Paren::Close(1)});
  EXPECT_FALSE(ValidateScript(seq, s4, 1, true).ok());
  // Non-repairing script.
  EditScript s5;
  s5.ops.push_back({EditOpKind::kSubstitute, 0, Paren::Open(2)});
  EXPECT_FALSE(ValidateScript(seq, s5, 1, true).ok());
  // A correct script passes.
  EditScript ok;
  ok.ops.push_back({EditOpKind::kSubstitute, 1, Paren::Close(0)});
  EXPECT_TRUE(ValidateScript(seq, ok, 1, true).ok());
}

TEST(EditScriptTest, NormalizeSortsOps) {
  EditScript script;
  script.ops.push_back({EditOpKind::kDelete, 5, Paren{}});
  script.ops.push_back({EditOpKind::kDelete, 2, Paren{}});
  script.Normalize();
  EXPECT_EQ(script.ops[0].pos, 2);
  EXPECT_EQ(script.ops[1].pos, 5);
}

TEST(EditScriptTest, ToStringIsReadable) {
  EditScript script;
  EXPECT_EQ(script.ToString(), "(no edits)");
  script.ops.push_back({EditOpKind::kDelete, 3, Paren{}});
  script.ops.push_back({EditOpKind::kSubstitute, 5, Paren::Close(2)});
  EXPECT_EQ(script.ToString(), "del@3, sub@5->close2");
}

TEST(DistanceApiTest, MetricsAndDefaults) {
  const ParenSeq seq = Parse("((");
  EXPECT_EQ(*Distance(seq, {.metric = Metric::kDeletionsOnly}), 2);
  EXPECT_EQ(*Distance(seq, {}), 1);  // substitutions by default
}

TEST(DistanceApiTest, BalancedShortCircuitsToZero) {
  const ParenSeq seq = Parse("([]{})");
  EXPECT_EQ(*Distance(seq, {}), 0);
}

TEST(DistanceApiTest, AllAlgorithmsAgree) {
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    ParenSeq seq;
    const int64_t n = rng() % 14;
    for (int64_t i = 0; i < n; ++i) {
      seq.push_back(Paren{static_cast<ParenType>(rng() % 3), rng() % 2 == 0});
    }
    for (const Metric metric :
         {Metric::kDeletionsOnly, Metric::kDeletionsAndSubstitutions}) {
      const int64_t auto_d = *Distance(seq, {.metric = metric});
      for (const Algorithm alg :
           {Algorithm::kFpt, Algorithm::kCubic, Algorithm::kBranching}) {
        EXPECT_EQ(*Distance(seq, {.metric = metric, .algorithm = alg}),
                  auto_d)
            << ToString(seq);
      }
    }
  }
}

TEST(DistanceApiTest, MaxDistanceBoundsFailCleanly) {
  const ParenSeq seq = Parse("(((((((((((((((("); // distance 16 / 8
  const auto result =
      Distance(seq, {.metric = Metric::kDeletionsOnly, .max_distance = 3});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsBoundExceeded());
  EXPECT_EQ(
      *Distance(seq, {.metric = Metric::kDeletionsOnly, .max_distance = 16}),
      16);
}

TEST(RepairApiTest, RepairedSequencesAreBalanced) {
  std::mt19937_64 rng(123);
  for (int trial = 0; trial < 60; ++trial) {
    ParenSeq seq;
    const int64_t n = rng() % 16;
    for (int64_t i = 0; i < n; ++i) {
      seq.push_back(Paren{static_cast<ParenType>(rng() % 3), rng() % 2 == 0});
    }
    for (const Metric metric :
         {Metric::kDeletionsOnly, Metric::kDeletionsAndSubstitutions}) {
      const auto result = Repair(seq, {.metric = metric});
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_TRUE(IsBalanced(result->repaired)) << ToString(seq);
      const bool subs = metric == Metric::kDeletionsAndSubstitutions;
      EXPECT_TRUE(
          ValidateScript(seq, result->script, result->distance, subs).ok());
      EXPECT_EQ(result->distance, CubicDistance(seq, subs));
    }
  }
}

TEST(RepairApiTest, BalancedInputKeepsEverySymbol) {
  const ParenSeq seq = Parse("(()[]){}");
  const auto result = Repair(seq, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distance, 0);
  EXPECT_EQ(result->repaired, seq);
  EXPECT_EQ(result->script.aligned_pairs.size(), seq.size() / 2);
}

TEST(RepairApiTest, RepairAgreesAcrossAlgorithms) {
  const ParenSeq seq = Parse("([)](");
  const auto fpt = Repair(seq, {.algorithm = Algorithm::kFpt});
  const auto cubic = Repair(seq, {.algorithm = Algorithm::kCubic});
  const auto branching = Repair(seq, {.algorithm = Algorithm::kBranching});
  ASSERT_TRUE(fpt.ok());
  ASSERT_TRUE(cubic.ok());
  ASSERT_TRUE(branching.ok());
  EXPECT_EQ(fpt->distance, cubic->distance);
  EXPECT_EQ(fpt->distance, branching->distance);
  EXPECT_TRUE(IsBalanced(fpt->repaired));
  EXPECT_TRUE(IsBalanced(branching->repaired));
}

TEST(RepairApiTest, Dyck1FastPathConsistentWithRepair) {
  const ParenSeq seq = Parse("))((");
  EXPECT_EQ(*Distance(seq, {}), 2);
  const auto repair = Repair(seq, {});
  ASSERT_TRUE(repair.ok());
  EXPECT_EQ(repair->distance, 2);
}

}  // namespace
}  // namespace dyck
