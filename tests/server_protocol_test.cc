// Protocol adversity tests for the serving stack (src/server): the frame
// grammar, per-request error isolation, admission control, the pressure
// degrade ladder, doc-handle sessions, fault injection, and the dyckfixd
// binary's signal/EOF behaviour.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/server/admission.h"
#include "src/server/server.h"
#include "src/server/wire.h"
#include "src/util/budget.h"

#ifndef DYCKFIXD_PATH
#error "DYCKFIXD_PATH must be defined by the build"
#endif

namespace dyck {
namespace server {
namespace {

// ---------------------------------------------------------------------------
// Response parsing for assertions.

struct Response {
  uint64_t id = 0;
  std::string status;
  std::map<std::string, std::string> fields;
  std::string msg;
  std::string payload;
};

std::vector<Response> ParseResponses(const std::string& text) {
  std::vector<Response> responses;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t nl = text.find('\n', pos);
    EXPECT_NE(nl, std::string::npos) << "unterminated response line";
    if (nl == std::string::npos) break;  // NOLINT: helper must return
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    Response response;
    LineScanner scanner(line);
    std::string_view token;
    EXPECT_TRUE(scanner.NextToken(&token)) << line;
    EXPECT_EQ(token, kProtocolMagic) << line;
    EXPECT_TRUE(scanner.NextToken(&token)) << line;
    EXPECT_TRUE(ParseDecimalU64(token, &response.id)) << line;
    EXPECT_TRUE(scanner.NextToken(&token)) << line;
    response.status = std::string(token);
    while (scanner.NextToken(&token)) {
      const size_t eq = token.find('=');
      EXPECT_NE(eq, std::string_view::npos) << line;
      if (eq == std::string_view::npos) break;
      const std::string key(token.substr(0, eq));
      if (key == "msg") {
        response.msg = std::string(token.substr(eq + 1));
        const std::string_view rest = scanner.Rest();
        if (!rest.empty()) {
          response.msg += " ";
          response.msg += std::string(rest);
        }
        break;
      }
      response.fields[key] = std::string(token.substr(eq + 1));
    }
    const auto len = response.fields.find("len");
    if (len != response.fields.end()) {
      const size_t n = static_cast<size_t>(std::stoll(len->second));
      EXPECT_LE(pos + n, text.size()) << "truncated payload";
      if (pos + n > text.size()) break;
      response.payload = text.substr(pos, n);
      pos += n + 1;  // payload + LF
    }
    responses.push_back(std::move(response));
  }
  return responses;
}

const Response* FindResponse(const std::vector<Response>& responses,
                             uint64_t id) {
  for (const Response& response : responses) {
    if (response.id == id) return &response;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// In-process harness: one Server + one Session with a buffering sink.

class TestServer {
 public:
  explicit TestServer(ServerOptions options = {}) : server_(options) {
    session_ = server_.OpenSession([this](std::string_view bytes) {
      std::lock_guard<std::mutex> lock(mu_);
      output_.append(bytes.data(), bytes.size());
    });
  }

  bool Feed(std::string_view bytes) { return session_->Feed(bytes); }

  /// Drains in-flight work and takes everything responded so far.
  std::vector<Response> DrainResponses() {
    server_.Drain();
    std::string taken;
    {
      std::lock_guard<std::mutex> lock(mu_);
      taken.swap(output_);
    }
    return ParseResponses(taken);
  }

  Server& server() { return server_; }
  Session& session() { return *session_; }

 private:
  Server server_;
  std::mutex mu_;
  std::string output_;
  std::unique_ptr<Session> session_;
};

// ---------------------------------------------------------------------------
// Wire grammar units.

TEST(ProtocolWireTest, LineScannerTokenizesAndExposesRest) {
  LineScanner scanner("splice 3  4 ( [ )");
  std::string_view token;
  ASSERT_TRUE(scanner.NextToken(&token));
  EXPECT_EQ(token, "splice");
  ASSERT_TRUE(scanner.NextToken(&token));
  EXPECT_EQ(token, "3");
  ASSERT_TRUE(scanner.NextToken(&token));
  EXPECT_EQ(token, "4");
  EXPECT_EQ(scanner.Rest(), "( [ )");
  EXPECT_FALSE(scanner.AtEnd());

  LineScanner empty("   ");
  EXPECT_FALSE(empty.NextToken(&token));
  EXPECT_TRUE(empty.AtEnd());
}

TEST(ProtocolWireTest, ParseDecimalRejectsJunk) {
  int64_t value = 0;
  EXPECT_TRUE(ParseDecimal("0", &value));
  EXPECT_EQ(value, 0);
  EXPECT_TRUE(ParseDecimal("123456789", &value));
  EXPECT_EQ(value, 123456789);
  EXPECT_FALSE(ParseDecimal("", &value));
  EXPECT_FALSE(ParseDecimal("-3", &value));
  EXPECT_FALSE(ParseDecimal("12x", &value));
  EXPECT_FALSE(ParseDecimal("1 2", &value));
  EXPECT_FALSE(ParseDecimal("99999999999999999999", &value));  // overflow
}

TEST(ProtocolWireTest, ParseSpliceArgsSharedGrammar) {
  SpliceArgs args;
  ASSERT_TRUE(ParseSpliceArgs("3 2 ([", &args).ok());
  EXPECT_EQ(args.pos, 3);
  EXPECT_EQ(args.erase_len, 2);
  EXPECT_EQ(args.insert_text, "([");

  ASSERT_TRUE(ParseSpliceArgs("0 0", &args).ok());
  EXPECT_EQ(args.insert_text, "");

  EXPECT_TRUE(ParseSpliceArgs("x 2", &args).IsInvalidArgument());
  EXPECT_TRUE(ParseSpliceArgs("3", &args).IsInvalidArgument());
  EXPECT_TRUE(ParseSpliceArgs("-1 2", &args).IsInvalidArgument());
}

TEST(ProtocolFrameTest, ParsesHeaderOnlyAndPayloadFrames) {
  FrameParser parser;
  parser.Feed("dyckfix/1 7 ping\ndyckfix/1 8 repair len=4\n(](\x28\n");
  FrameParser::Event event = parser.Next();
  ASSERT_EQ(event.kind, FrameParser::EventKind::kFrame);
  EXPECT_EQ(event.frame.id, 7u);
  EXPECT_EQ(event.frame.verb, "ping");
  EXPECT_FALSE(event.frame.has_payload);

  event = parser.Next();
  ASSERT_EQ(event.kind, FrameParser::EventKind::kFrame);
  EXPECT_EQ(event.frame.id, 8u);
  EXPECT_EQ(event.frame.verb, "repair");
  EXPECT_TRUE(event.frame.has_payload);
  EXPECT_EQ(event.frame.payload, "(]((");

  EXPECT_EQ(parser.Next().kind, FrameParser::EventKind::kNeedMore);
}

TEST(ProtocolFrameTest, ReassemblesByteAtATime) {
  const std::string wire = "dyckfix/1 12 repair len=3 timeout_ms=50\n()(\n";
  FrameParser parser;
  int frames = 0;
  for (const char byte : wire) {
    parser.Feed(std::string_view(&byte, 1));
    FrameParser::Event event = parser.Next();
    if (event.kind == FrameParser::EventKind::kFrame) {
      ++frames;
      EXPECT_EQ(event.frame.id, 12u);
      EXPECT_EQ(event.frame.payload, "()(");
      const std::string* timeout = event.frame.Find("timeout_ms");
      ASSERT_NE(timeout, nullptr);
      EXPECT_EQ(*timeout, "50");
    } else {
      EXPECT_EQ(event.kind, FrameParser::EventKind::kNeedMore);
    }
  }
  EXPECT_EQ(frames, 1);
}

TEST(ProtocolFrameTest, GarbageResyncsAtNextNewline) {
  FrameParser parser;
  parser.Feed("total garbage here\ndyckfix/1 3 ping\n");
  FrameParser::Event event = parser.Next();
  ASSERT_EQ(event.kind, FrameParser::EventKind::kError);
  EXPECT_EQ(event.id, 0u);
  EXPECT_TRUE(event.error.IsInvalidArgument());

  event = parser.Next();
  ASSERT_EQ(event.kind, FrameParser::EventKind::kFrame);
  EXPECT_EQ(event.frame.id, 3u);
}

TEST(ProtocolFrameTest, MalformedHeadersReportParsedId) {
  struct Case {
    const char* wire;
    uint64_t id;
  };
  const Case cases[] = {
      {"dyckfix/1 0 ping\n", 0},              // id must be positive
      {"dyckfix/1 9 PING\n", 9},              // verb must be lowercase
      {"dyckfix/1 9 ping junk\n", 9},         // field without '='
      {"dyckfix/1 9 ping K=v\n", 9},          // bad key charset
      {"dyckfix/1 9 ping a=1 a=2\n", 9},      // duplicate field
      {"dyckfix/1 9 ping len=2 len=2\n", 9},  // duplicate len
      {"dyckfix/1 nine ping\n", 0},           // id not a number
  };
  for (const Case& c : cases) {
    FrameParser parser;
    parser.Feed(c.wire);
    FrameParser::Event event = parser.Next();
    ASSERT_EQ(event.kind, FrameParser::EventKind::kError) << c.wire;
    EXPECT_EQ(event.id, c.id) << c.wire;
    EXPECT_TRUE(event.error.IsInvalidArgument()) << c.wire;
    EXPECT_EQ(parser.Next().kind, FrameParser::EventKind::kNeedMore);
  }
}

TEST(ProtocolFrameTest, OversizedPayloadSkippedExactly) {
  FrameParser::Limits limits;
  limits.max_doc_bytes = 8;
  FrameParser parser(limits);
  const std::string big(32, '(');
  parser.Feed("dyckfix/1 4 repair len=32\n" + big +
              "\ndyckfix/1 5 ping\n");
  FrameParser::Event event = parser.Next();
  ASSERT_EQ(event.kind, FrameParser::EventKind::kError);
  EXPECT_EQ(event.id, 4u);
  EXPECT_TRUE(event.error.IsResourceExhausted());

  // The payload's 32 bytes must not be misread as headers.
  event = parser.Next();
  ASSERT_EQ(event.kind, FrameParser::EventKind::kFrame);
  EXPECT_EQ(event.frame.id, 5u);
}

TEST(ProtocolFrameTest, AbsurdLengthResyncsInsteadOfSkipping) {
  // A length beyond kMaxSkippableBytes is not skipped byte-for-byte; the
  // parser resyncs at the next newline (whatever payload prefix the client
  // did send is discarded as one garbage line).
  FrameParser parser;
  parser.Feed(
      "dyckfix/1 4 repair len=99999999999\n"
      "whatever payload prefix arrived\n"
      "dyckfix/1 5 ping\n");
  FrameParser::Event event = parser.Next();
  ASSERT_EQ(event.kind, FrameParser::EventKind::kError);
  EXPECT_TRUE(event.error.IsResourceExhausted());
  event = parser.Next();
  ASSERT_EQ(event.kind, FrameParser::EventKind::kFrame);
  EXPECT_EQ(event.frame.id, 5u);
}

TEST(ProtocolFrameTest, PayloadMissingTerminatorIsolatedToFrame) {
  FrameParser parser;
  parser.Feed("dyckfix/1 6 repair len=2\n()XXXX\ndyckfix/1 7 ping\n");
  FrameParser::Event event = parser.Next();
  ASSERT_EQ(event.kind, FrameParser::EventKind::kError);
  EXPECT_EQ(event.id, 6u);
  EXPECT_TRUE(event.error.IsInvalidArgument());
  event = parser.Next();
  ASSERT_EQ(event.kind, FrameParser::EventKind::kFrame);
  EXPECT_EQ(event.frame.id, 7u);
}

TEST(ProtocolFrameTest, OverlongHeaderLineRejected) {
  FrameParser parser;
  parser.Feed("dyckfix/1 9 ping " + std::string(kMaxHeaderBytes, 'a') +
              "=b\ndyckfix/1 10 ping\n");
  FrameParser::Event event = parser.Next();
  ASSERT_EQ(event.kind, FrameParser::EventKind::kError);
  EXPECT_TRUE(event.error.IsInvalidArgument());
  event = parser.Next();
  ASSERT_EQ(event.kind, FrameParser::EventKind::kFrame);
  EXPECT_EQ(event.frame.id, 10u);
}

TEST(ProtocolFrameTest, ResponseWriterRoundTrips) {
  const std::string ok = ResponseWriter(3, kStatusOk)
                             .Field("distance", int64_t{2})
                             .FieldF2("factor", 1.0)
                             .Payload("()")
                             .Finish();
  EXPECT_EQ(ok, "dyckfix/1 3 ok distance=2 factor=1.00 len=2\n()\n");

  const std::string err =
      ErrorResponse(9, Status::InvalidArgument("multi\nline reason"));
  EXPECT_EQ(err,
            "dyckfix/1 9 err code=InvalidArgument msg=multi line reason\n");
}

// ---------------------------------------------------------------------------
// Admission ladder units.

TEST(ServerShedTest, AdmissionLadderTiersByDepth) {
  AdmissionConfig config;
  config.max_queue_depth = 8;  // derived: exact <= 4, approx <= 6
  config.workers = 2;
  AdmissionController controller(config);
  EXPECT_EQ(controller.Decide(0).tier, PressureTier::kExact);
  EXPECT_EQ(controller.Decide(4).tier, PressureTier::kExact);
  EXPECT_EQ(controller.Decide(5).tier, PressureTier::kApproximate);
  EXPECT_EQ(controller.Decide(6).tier, PressureTier::kApproximate);
  EXPECT_EQ(controller.Decide(7).tier, PressureTier::kGreedy);
  EXPECT_EQ(controller.Decide(8).tier, PressureTier::kShed);
  EXPECT_GE(controller.Decide(8).retry_after_ms, 1);

  controller.RecordLatency(0.050);  // 50ms EWMA seed
  EXPECT_GE(controller.Decide(8).retry_after_ms, 100);  // 50ms * 8 / 2
}

TEST(ServerShedTest, ApplyTierWalksDegradeLadder) {
  Options exact;
  AdmissionController::ApplyTier(PressureTier::kExact, &exact);
  EXPECT_EQ(exact.algorithm, Algorithm::kAuto);
  EXPECT_EQ(exact.max_approximation_factor, 1.0);

  Options approx;
  AdmissionController::ApplyTier(PressureTier::kApproximate, &approx);
  EXPECT_EQ(approx.algorithm, Algorithm::kAuto);
  EXPECT_EQ(approx.max_approximation_factor, 3.0);
  EXPECT_EQ(approx.on_budget_exceeded, DegradePolicy::kApproximate);

  Options greedy;
  AdmissionController::ApplyTier(PressureTier::kGreedy, &greedy);
  EXPECT_EQ(greedy.algorithm, Algorithm::kGreedy);
}

// ---------------------------------------------------------------------------
// End-to-end server behaviour.

ServerOptions SmallServer(int workers = 2) {
  ServerOptions options;
  options.workers = workers;
  return options;
}

TEST(ServerTest, RepairsAndReportsTelemetryFields) {
  TestServer server(SmallServer());
  server.Feed("dyckfix/1 1 repair len=4\n(]((\n");
  const std::vector<Response> responses = server.DrainResponses();
  const Response* response = FindResponse(responses, 1);
  ASSERT_NE(response, nullptr);
  EXPECT_EQ(response->status, "ok");
  EXPECT_EQ(response->fields.at("distance"), "2");
  EXPECT_EQ(response->fields.at("degraded"), "0");
  EXPECT_EQ(response->fields.at("factor"), "1.00");
  EXPECT_EQ(response->fields.at("pressure"), "exact");
  EXPECT_EQ(response->payload, "()()");

  const ServerStats stats = server.server().Stats();
  EXPECT_EQ(stats.requests_received, 1);
  EXPECT_EQ(stats.admitted, 1);
  EXPECT_EQ(stats.served_ok, 1);
  EXPECT_EQ(stats.shed_overloaded, 0);
}

TEST(ServerTest, NonBracketBytesPreservedInPayload) {
  TestServer server(SmallServer());
  server.Feed("dyckfix/1 1 repair len=9\nfoo(bar]!\n");
  const std::vector<Response> responses = server.DrainResponses();
  const Response* response = FindResponse(responses, 1);
  ASSERT_NE(response, nullptr);
  EXPECT_EQ(response->status, "ok");
  // edit2 retypes ']' to ')'; all other bytes survive verbatim.
  EXPECT_EQ(response->payload, "foo(bar)!");
}

TEST(ServerProtocolTest, MalformedFramesAnswerTypedErrAndStreamContinues) {
  TestServer server(SmallServer());
  server.Feed("how about no\n");
  server.Feed("dyckfix/1 2 frobnicate\n");
  server.Feed("dyckfix/1 3 repair\n");            // no payload, no doc
  server.Feed("dyckfix/1 4 repair len=2 x=1\n()\n");  // unknown field
  server.Feed("dyckfix/1 5 repair len=2\n()\n");  // fine
  const std::vector<Response> responses = server.DrainResponses();
  ASSERT_EQ(responses.size(), 5u);

  const Response* garbage = FindResponse(responses, 0);
  ASSERT_NE(garbage, nullptr);
  EXPECT_EQ(garbage->status, "err");
  EXPECT_EQ(garbage->fields.at("code"), "InvalidArgument");

  EXPECT_EQ(FindResponse(responses, 2)->status, "err");
  EXPECT_EQ(FindResponse(responses, 3)->status, "err");
  EXPECT_EQ(FindResponse(responses, 4)->status, "err");
  const Response* good = FindResponse(responses, 5);
  ASSERT_NE(good, nullptr);
  EXPECT_EQ(good->status, "ok");
  EXPECT_EQ(good->fields.at("distance"), "0");

  const ServerStats stats = server.server().Stats();
  EXPECT_EQ(stats.protocol_errors, 4);
  EXPECT_EQ(stats.served_ok, 1);
}

TEST(ServerProtocolTest, OversizedPayloadGetsResourceExhausted) {
  ServerOptions options = SmallServer();
  options.max_doc_bytes = 16;
  TestServer server(options);
  const std::string big(64, '(');
  server.Feed("dyckfix/1 1 repair len=64\n" + big +
              "\ndyckfix/1 2 repair len=2\n()\n");
  const std::vector<Response> responses = server.DrainResponses();
  const Response* rejected = FindResponse(responses, 1);
  ASSERT_NE(rejected, nullptr);
  EXPECT_EQ(rejected->status, "err");
  EXPECT_EQ(rejected->fields.at("code"), "ResourceExhausted");
  const Response* good = FindResponse(responses, 2);
  ASSERT_NE(good, nullptr);
  EXPECT_EQ(good->status, "ok");
}

TEST(ServerProtocolTest, DuplicateInFlightIdRejected) {
  // One worker chewing a deliberately slow exact solve keeps request 1 in
  // flight while its duplicate arrives on the Feed thread.
  ServerOptions options = SmallServer(/*workers=*/1);
  TestServer server(options);
  const std::string slow(600, '(');
  server.Feed("dyckfix/1 1 repair solver=cubic len=600\n" + slow + "\n");
  server.Feed("dyckfix/1 1 repair len=2\n()\n");
  const std::vector<Response> responses = server.DrainResponses();
  ASSERT_EQ(responses.size(), 2u);
  int ok = 0, err = 0;
  for (const Response& response : responses) {
    EXPECT_EQ(response.id, 1u);
    if (response.status == "ok") ++ok;
    if (response.status == "err") {
      ++err;
      EXPECT_EQ(response.fields.at("code"), "InvalidArgument");
    }
  }
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(err, 1);
}

TEST(ServerProtocolTest, PerRequestBudgetMapsToTypedError) {
  TestServer server(SmallServer());
  const std::string hard(200, '(');
  server.Feed("dyckfix/1 1 repair max_steps=5 degrade=fail len=200\n" +
              hard + "\n");
  server.Feed("dyckfix/1 2 repair max_steps=5 degrade=greedy len=200\n" +
              hard + "\n");
  const std::vector<Response> responses = server.DrainResponses();
  const Response* failed = FindResponse(responses, 1);
  ASSERT_NE(failed, nullptr);
  EXPECT_EQ(failed->status, "err");
  EXPECT_EQ(failed->fields.at("code"), "ResourceExhausted");

  const Response* degraded = FindResponse(responses, 2);
  ASSERT_NE(degraded, nullptr);
  EXPECT_EQ(degraded->status, "ok");
  EXPECT_EQ(degraded->fields.at("degraded"), "1");

  const ServerStats stats = server.server().Stats();
  EXPECT_EQ(stats.faulted, 1);
  EXPECT_EQ(stats.served_ok, 1);
}

TEST(ServerShedTest, SaturatedQueueShedsWithRetryAfter) {
  ServerOptions options = SmallServer(/*workers=*/1);
  options.max_queue_depth = 2;
  TestServer server(options);
  // One slow request occupies the worker; the rest pile into the bounded
  // queue and the tail must shed.
  const std::string slow(600, '(');
  std::string burst = "dyckfix/1 1 repair solver=cubic len=600\n" + slow +
                      "\n";
  for (int i = 2; i <= 8; ++i) {
    burst += "dyckfix/1 " + std::to_string(i) +
             " repair solver=cubic len=600\n" + slow + "\n";
  }
  server.Feed(burst);
  const std::vector<Response> responses = server.DrainResponses();
  ASSERT_EQ(responses.size(), 8u);
  int ok = 0, shed = 0;
  for (const Response& response : responses) {
    if (response.status == "ok") ++ok;
    if (response.status == "overloaded") {
      ++shed;
      EXPECT_GE(std::stoll(response.fields.at("retry_after_ms")), 1);
      EXPECT_GE(std::stoll(response.fields.at("queue_depth")), 2);
    }
  }
  EXPECT_GE(shed, 1);
  EXPECT_GE(ok, 1);
  EXPECT_EQ(ok + shed, 8);

  const ServerStats stats = server.server().Stats();
  EXPECT_EQ(stats.shed_overloaded, shed);
  EXPECT_GE(stats.queue_depth_high_water, 2);
}

TEST(ServerShedTest, PressureDegradesBeforeShedding) {
  ServerOptions options = SmallServer(/*workers=*/1);
  options.max_queue_depth = 64;
  options.exact_depth_limit = 1;
  options.approx_depth_limit = 2;
  TestServer server(options);
  const std::string slow(600, '(');
  std::string burst;
  for (int i = 1; i <= 6; ++i) {
    burst += "dyckfix/1 " + std::to_string(i) +
             " repair solver=cubic len=600\n" + slow + "\n";
  }
  server.Feed(burst);
  const std::vector<Response> responses = server.DrainResponses();
  ASSERT_EQ(responses.size(), 6u);
  std::map<std::string, int> tiers;
  for (const Response& response : responses) {
    ASSERT_EQ(response.status, "ok");
    ++tiers[response.fields.at("pressure")];
  }
  // The first request sees an empty queue (exact); deeper arrivals must
  // have walked the ladder instead of shedding.
  EXPECT_GE(tiers["exact"], 1);
  EXPECT_GE(tiers["greedy"], 1);
  EXPECT_EQ(server.server().Stats().shed_overloaded, 0);
  EXPECT_EQ(server.server().Stats().degraded_pressure,
            6 - tiers["exact"]);
}

TEST(ServerTest, DocSessionOpenSpliceRepairClose) {
  TestServer server(SmallServer());
  server.Feed("dyckfix/1 1 open doc=a len=4\n(]((\n");
  server.Feed("dyckfix/1 2 repair doc=a\n");
  server.Feed("dyckfix/1 3 splice doc=a pos=4 erase=0 len=2\n))\n");
  server.Feed("dyckfix/1 4 repair doc=a\n");
  server.Feed("dyckfix/1 5 close doc=a\n");
  server.Feed("dyckfix/1 6 repair doc=a\n");  // after close: unknown doc
  const std::vector<Response> responses = server.DrainResponses();
  ASSERT_EQ(responses.size(), 6u);
  EXPECT_EQ(FindResponse(responses, 1)->fields.at("tokens"), "4");
  const Response* first = FindResponse(responses, 2);
  EXPECT_EQ(first->status, "ok");
  EXPECT_EQ(first->fields.at("distance"), "2");
  EXPECT_EQ(FindResponse(responses, 3)->fields.at("tokens"), "6");
  const Response* second = FindResponse(responses, 4);
  EXPECT_EQ(second->status, "ok");
  // "(](())" needs only the ']' retyped once the splice closed the opens.
  EXPECT_EQ(second->fields.at("distance"), "1");
  EXPECT_EQ(second->payload, "()(())");
  EXPECT_EQ(FindResponse(responses, 5)->status, "ok");
  const Response* gone = FindResponse(responses, 6);
  EXPECT_EQ(gone->status, "err");
  EXPECT_EQ(gone->fields.at("code"), "InvalidArgument");
}

TEST(ServerProtocolTest, DocAdversity) {
  ServerOptions options = SmallServer();
  options.max_docs_per_session = 2;
  TestServer server(options);
  server.Feed("dyckfix/1 1 open doc=a len=2\n()\n");
  server.Feed("dyckfix/1 2 open doc=a len=2\n()\n");  // duplicate open
  server.Feed("dyckfix/1 3 splice doc=a pos=9 erase=1 len=0\n\n");  // OOB
  server.Feed("dyckfix/1 4 splice doc=a pos=0\n");   // missing erase=
  server.Feed("dyckfix/1 5 splice doc=zz pos=0 erase=0\n");  // unknown doc
  server.Feed("dyckfix/1 6 open doc=b len=2\n()\n");
  server.Feed("dyckfix/1 7 open doc=c len=2\n()\n");  // over the doc cap
  const std::vector<Response> responses = server.DrainResponses();
  ASSERT_EQ(responses.size(), 7u);
  EXPECT_EQ(FindResponse(responses, 1)->status, "ok");
  EXPECT_EQ(FindResponse(responses, 2)->status, "err");
  const Response* oob = FindResponse(responses, 3);
  EXPECT_EQ(oob->status, "err");
  EXPECT_NE(oob->msg.find("out of bounds"), std::string::npos);
  EXPECT_EQ(FindResponse(responses, 4)->status, "err");
  EXPECT_EQ(FindResponse(responses, 5)->status, "err");
  EXPECT_EQ(FindResponse(responses, 6)->status, "ok");
  const Response* capped = FindResponse(responses, 7);
  EXPECT_EQ(capped->status, "err");
  EXPECT_EQ(capped->fields.at("code"), "ResourceExhausted");
}

TEST(ServerTest, FaultInjectionStormYieldsTypedErrorsNotCrashes) {
  {
    TestServer server(SmallServer(/*workers=*/1));
    ::setenv("DYCKFIX_FAULT_INJECT", "server.admit:1", 1);
    server.Feed("dyckfix/1 1 repair len=2\n()\n");
    std::vector<Response> responses = server.DrainResponses();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].status, "err");
    EXPECT_EQ(responses[0].fields.at("code"), "DeadlineExceeded");
    ::unsetenv("DYCKFIX_FAULT_INJECT");
  }
  {
    TestServer server(SmallServer(/*workers=*/1));
    ::setenv("DYCKFIX_FAULT_INJECT", "server.dispatch:1:resource", 1);
    server.Feed("dyckfix/1 2 repair len=2\n()\n");
    std::vector<Response> responses = server.DrainResponses();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].status, "err");
    EXPECT_EQ(responses[0].fields.at("code"), "ResourceExhausted");
    ::unsetenv("DYCKFIX_FAULT_INJECT");
    // The fault is transient: the very next request is served.
    server.Feed("dyckfix/1 3 repair len=2\n()\n");
    responses = server.DrainResponses();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].status, "ok");
    EXPECT_EQ(server.server().Stats().faulted, 1);
  }
  {
    TestServer server(SmallServer(/*workers=*/1));
    ::setenv("DYCKFIX_FAULT_INJECT", "server.respond:1:cancelled", 1);
    server.Feed("dyckfix/1 4 repair len=2\n()\n");
    std::vector<Response> responses = server.DrainResponses();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].status, "err");
    EXPECT_EQ(responses[0].fields.at("code"), "Cancelled");
    ::unsetenv("DYCKFIX_FAULT_INJECT");
  }
}

TEST(ServerTest, ShutdownVerbSaysByeAndCancelsLaterRequests) {
  TestServer server(SmallServer());
  EXPECT_TRUE(server.Feed("dyckfix/1 1 ping\n"));
  EXPECT_FALSE(server.Feed("dyckfix/1 2 shutdown\n"));
  EXPECT_FALSE(server.Feed("dyckfix/1 3 repair len=2\n()\n"));
  const std::vector<Response> responses = server.DrainResponses();
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(FindResponse(responses, 1)->status, "ok");
  EXPECT_EQ(FindResponse(responses, 2)->status, "bye");
  const Response* cancelled = FindResponse(responses, 3);
  EXPECT_EQ(cancelled->status, "err");
  EXPECT_EQ(cancelled->fields.at("code"), "Cancelled");
  EXPECT_EQ(server.server().Stats().cancelled, 1);
}

TEST(ServerTest, StatsVerbRendersCounters) {
  TestServer server(SmallServer());
  server.Feed("dyckfix/1 1 repair len=2\n)(\n");
  server.server().Drain();
  server.Feed("dyckfix/1 2 stats\n");
  const std::vector<Response> responses = server.DrainResponses();
  const Response* stats = FindResponse(responses, 2);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->status, "ok");
  EXPECT_NE(stats->msg.find("admitted=1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The dyckfixd binary: EOF drain, shutdown verb, SIGTERM, poison storms.

struct DaemonRun {
  int exit_code = -1;
  std::string output;
};

DaemonRun RunDaemon(const std::string& args, const std::string& input) {
  const std::string in_path =
      ::testing::TempDir() + "/dyckfixd_in_" +
      std::to_string(reinterpret_cast<uintptr_t>(&args)) + ".txt";
  {
    FILE* out = std::fopen(in_path.c_str(), "wb");
    EXPECT_NE(out, nullptr);
    std::fwrite(input.data(), 1, input.size(), out);
    std::fclose(out);
  }
  const std::string command = std::string(DYCKFIXD_PATH) + " " + args +
                              " < " + in_path + " 2>/dev/null";
  DaemonRun run;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return run;
  char buffer[4096];
  size_t read = 0;
  while ((read = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    run.output.append(buffer, read);
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::remove(in_path.c_str());
  return run;
}

TEST(ServerDaemonTest, EofDrainsAndExitsZero) {
  const DaemonRun run = RunDaemon(
      "--workers=2", "dyckfix/1 1 repair len=4\n(]((\n"
                     "dyckfix/1 2 ping\n");
  EXPECT_EQ(run.exit_code, 0);
  const std::vector<Response> responses = ParseResponses(run.output);
  EXPECT_EQ(responses.size(), 2u);
  EXPECT_NE(FindResponse(responses, 1), nullptr);
  EXPECT_NE(FindResponse(responses, 2), nullptr);
}

TEST(ServerDaemonTest, ShutdownVerbExitsZero) {
  const DaemonRun run = RunDaemon(
      "", "dyckfix/1 1 repair len=2\n)(\ndyckfix/1 2 shutdown\n");
  EXPECT_EQ(run.exit_code, 0);
  const std::vector<Response> responses = ParseResponses(run.output);
  const Response* bye = FindResponse(responses, 2);
  ASSERT_NE(bye, nullptr);
  EXPECT_EQ(bye->status, "bye");
  EXPECT_EQ(FindResponse(responses, 1)->status, "ok");
}

TEST(ServerDaemonTest, PoisonStormLeavesWellFormedRequestsServed) {
  std::string storm;
  for (int i = 1; i <= 20; ++i) {
    storm += "complete garbage " + std::to_string(i) + "\n";
    // Absurd length: the parser resyncs, eating the next line as the
    // poison payload's prefix.
    storm += "dyckfix/1 " + std::to_string(100 + i) +
             " repair len=99999999999\npoison payload prefix\n";
    storm += "dyckfix/1 " + std::to_string(i) + " repair len=4\n(]((\n";
  }
  const DaemonRun run = RunDaemon("--workers=2", storm);
  EXPECT_EQ(run.exit_code, 0);
  const std::vector<Response> responses = ParseResponses(run.output);
  int ok = 0;
  for (int i = 1; i <= 20; ++i) {
    const Response* response = FindResponse(responses, i);
    ASSERT_NE(response, nullptr) << "request " << i << " unanswered";
    if (response->status == "ok") ++ok;
  }
  EXPECT_EQ(ok, 20);
}

TEST(ServerDaemonTest, SigtermDrainsInFlightAndExitsZero) {
  int to_child[2], from_child[2];
  ASSERT_EQ(::pipe(to_child), 0);
  ASSERT_EQ(::pipe(from_child), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    ::execl(DYCKFIXD_PATH, "dyckfixd", "--workers=1",
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);

  const std::string request = "dyckfix/1 1 repair len=4\n(]((\n";
  // Deliver a request and wait for its response, proving the daemon is
  // mid-conversation when the signal lands.
  ASSERT_EQ(::write(to_child[1], request.data(), request.size() - 2),
            static_cast<ssize_t>(request.size() - 2));
  ASSERT_EQ(::write(to_child[1], request.data() + request.size() - 2, 2),
            2);
  std::string output;
  char buffer[4096];
  while (output.find("dyckfix/1 1 ") == std::string::npos) {
    const ssize_t n = ::read(from_child[0], buffer, sizeof(buffer));
    ASSERT_GT(n, 0) << "daemon closed stream before responding";
    output.append(buffer, static_cast<size_t>(n));
  }

  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  for (;;) {
    const ssize_t n = ::read(from_child[0], buffer, sizeof(buffer));
    if (n <= 0) break;  // EOF: daemon drained and exited
    output.append(buffer, static_cast<size_t>(n));
  }
  ::close(to_child[1]);
  ::close(from_child[0]);

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  const std::vector<Response> responses = ParseResponses(output);
  const Response* response = FindResponse(responses, 1);
  ASSERT_NE(response, nullptr);
  EXPECT_EQ(response->status, "ok");
}

}  // namespace
}  // namespace server
}  // namespace dyck
