// Exercises the C API exactly as an FFI consumer would.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "include/dyckfix.h"

namespace {

TEST(CapiTest, IsBalanced) {
  EXPECT_EQ(dyckfix_is_balanced("([]{})"), 1);
  EXPECT_EQ(dyckfix_is_balanced("func(a[0]) { body(); }"), 1);
  EXPECT_EQ(dyckfix_is_balanced("(]"), 0);
  EXPECT_EQ(dyckfix_is_balanced(""), 1);
  EXPECT_EQ(dyckfix_is_balanced(nullptr), 0);
}

TEST(CapiTest, Distance) {
  long long distance = -1;
  ASSERT_EQ(dyckfix_distance("((", DYCKFIX_METRIC_DELETIONS, &distance),
            DYCKFIX_OK);
  EXPECT_EQ(distance, 2);
  ASSERT_EQ(
      dyckfix_distance("((", DYCKFIX_METRIC_SUBSTITUTIONS, &distance),
      DYCKFIX_OK);
  EXPECT_EQ(distance, 1);
  EXPECT_EQ(dyckfix_distance(nullptr, DYCKFIX_METRIC_DELETIONS, &distance),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  EXPECT_EQ(dyckfix_distance("(", DYCKFIX_METRIC_DELETIONS, nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
}

TEST(CapiTest, RepairMinimal) {
  char* out = nullptr;
  long long distance = -1;
  ASSERT_EQ(dyckfix_repair("a(b[c)d", DYCKFIX_METRIC_DELETIONS,
                           DYCKFIX_STYLE_MINIMAL, &out, &distance),
            DYCKFIX_OK);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(distance, 1);
  EXPECT_EQ(std::string(out), "a(bc)d");
  dyckfix_string_free(out);
}

TEST(CapiTest, RepairPreserve) {
  char* out = nullptr;
  long long distance = -1;
  ASSERT_EQ(dyckfix_repair("{\"a\": [1, 2}", DYCKFIX_METRIC_SUBSTITUTIONS,
                           DYCKFIX_STYLE_PRESERVE, &out, &distance),
            DYCKFIX_OK);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(std::string(out), "{\"a\": [1, 2]}");
  EXPECT_EQ(distance, 1);
  dyckfix_string_free(out);
}

TEST(CapiTest, RepairBalancedIsIdentity) {
  char* out = nullptr;
  long long distance = -1;
  ASSERT_EQ(dyckfix_repair("nothing to fix ()", DYCKFIX_METRIC_DELETIONS,
                           DYCKFIX_STYLE_MINIMAL, &out, &distance),
            DYCKFIX_OK);
  EXPECT_EQ(std::string(out), "nothing to fix ()");
  EXPECT_EQ(distance, 0);
  dyckfix_string_free(out);
}

TEST(CapiTest, NullDistanceOutIsOptionalForRepair) {
  char* out = nullptr;
  ASSERT_EQ(dyckfix_repair("(", DYCKFIX_METRIC_DELETIONS,
                           DYCKFIX_STYLE_MINIMAL, &out, nullptr),
            DYCKFIX_OK);
  dyckfix_string_free(out);
}

TEST(CapiTest, FreeNullIsNoop) { dyckfix_string_free(nullptr); }

TEST(CapiTest, Version) {
  EXPECT_STREQ(dyckfix_version(), "1.0.0");
}

}  // namespace
