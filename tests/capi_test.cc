// Exercises the C API exactly as an FFI consumer would.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>

#include "include/dyckfix.h"

namespace {

TEST(CapiTest, IsBalanced) {
  EXPECT_EQ(dyckfix_is_balanced("([]{})"), 1);
  EXPECT_EQ(dyckfix_is_balanced("func(a[0]) { body(); }"), 1);
  EXPECT_EQ(dyckfix_is_balanced("(]"), 0);
  EXPECT_EQ(dyckfix_is_balanced(""), 1);
  EXPECT_EQ(dyckfix_is_balanced(nullptr), 0);
}

TEST(CapiTest, Distance) {
  long long distance = -1;
  ASSERT_EQ(dyckfix_distance("((", DYCKFIX_METRIC_DELETIONS, &distance),
            DYCKFIX_OK);
  EXPECT_EQ(distance, 2);
  ASSERT_EQ(
      dyckfix_distance("((", DYCKFIX_METRIC_SUBSTITUTIONS, &distance),
      DYCKFIX_OK);
  EXPECT_EQ(distance, 1);
  EXPECT_EQ(dyckfix_distance(nullptr, DYCKFIX_METRIC_DELETIONS, &distance),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  EXPECT_EQ(dyckfix_distance("(", DYCKFIX_METRIC_DELETIONS, nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
}

TEST(CapiTest, RepairMinimal) {
  char* out = nullptr;
  long long distance = -1;
  ASSERT_EQ(dyckfix_repair("a(b[c)d", DYCKFIX_METRIC_DELETIONS,
                           DYCKFIX_STYLE_MINIMAL, &out, &distance),
            DYCKFIX_OK);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(distance, 1);
  EXPECT_EQ(std::string(out), "a(bc)d");
  dyckfix_string_free(out);
}

TEST(CapiTest, RepairPreserve) {
  char* out = nullptr;
  long long distance = -1;
  ASSERT_EQ(dyckfix_repair("{\"a\": [1, 2}", DYCKFIX_METRIC_SUBSTITUTIONS,
                           DYCKFIX_STYLE_PRESERVE, &out, &distance),
            DYCKFIX_OK);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(std::string(out), "{\"a\": [1, 2]}");
  EXPECT_EQ(distance, 1);
  dyckfix_string_free(out);
}

TEST(CapiTest, RepairBalancedIsIdentity) {
  char* out = nullptr;
  long long distance = -1;
  ASSERT_EQ(dyckfix_repair("nothing to fix ()", DYCKFIX_METRIC_DELETIONS,
                           DYCKFIX_STYLE_MINIMAL, &out, &distance),
            DYCKFIX_OK);
  EXPECT_EQ(std::string(out), "nothing to fix ()");
  EXPECT_EQ(distance, 0);
  dyckfix_string_free(out);
}

TEST(CapiTest, NullDistanceOutIsOptionalForRepair) {
  char* out = nullptr;
  ASSERT_EQ(dyckfix_repair("(", DYCKFIX_METRIC_DELETIONS,
                           DYCKFIX_STYLE_MINIMAL, &out, nullptr),
            DYCKFIX_OK);
  dyckfix_string_free(out);
}

TEST(CapiTest, FreeNullIsNoop) { dyckfix_string_free(nullptr); }

TEST(CapiTest, RepairEmptyString) {
  // The documented contract excludes embedded NULs, not the empty
  // document: "" is balanced and must round-trip unchanged.
  char* out = nullptr;
  long long distance = -1;
  ASSERT_EQ(dyckfix_repair("", DYCKFIX_METRIC_SUBSTITUTIONS,
                           DYCKFIX_STYLE_MINIMAL, &out, &distance),
            DYCKFIX_OK);
  ASSERT_NE(out, nullptr);
  EXPECT_STREQ(out, "");
  EXPECT_EQ(distance, 0);
  dyckfix_string_free(out);
  EXPECT_EQ(dyckfix_distance("", DYCKFIX_METRIC_DELETIONS, &distance),
            DYCKFIX_OK);
  EXPECT_EQ(distance, 0);
}

TEST(CapiTest, RepairNullOutParams) {
  char* out = nullptr;
  EXPECT_EQ(dyckfix_repair(nullptr, DYCKFIX_METRIC_DELETIONS,
                           DYCKFIX_STYLE_MINIMAL, &out, nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  EXPECT_EQ(out, nullptr);
  EXPECT_EQ(dyckfix_repair("(", DYCKFIX_METRIC_DELETIONS,
                           DYCKFIX_STYLE_MINIMAL, nullptr, nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
}

TEST(CapiTest, LastTelemetryReflectsLastRepairOnThisThread) {
  EXPECT_EQ(dyckfix_last_telemetry(nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  /* A thread that never repaired has no snapshot. */
  std::thread([] {
    dyckfix_telemetry fresh;
    EXPECT_EQ(dyckfix_last_telemetry(&fresh), DYCKFIX_ERROR_NO_TELEMETRY);
  }).join();

  char* out = nullptr;
  long long distance = -1;
  ASSERT_EQ(dyckfix_repair("a(b[c)d", DYCKFIX_METRIC_DELETIONS,
                           DYCKFIX_STYLE_MINIMAL, &out, &distance),
            DYCKFIX_OK);
  dyckfix_string_free(out);

  dyckfix_telemetry t;
  ASSERT_EQ(dyckfix_last_telemetry(&t), DYCKFIX_OK);
  EXPECT_EQ(t.input_length, 3); /* "(", "[", ")" */
  EXPECT_EQ(t.algorithm, DYCKFIX_ALGORITHM_FPT);
  EXPECT_EQ(t.balanced_fast_path, 0);
  EXPECT_EQ(t.seq_copies, 0);
  EXPECT_GE(t.doubling_iterations, 1);
  EXPECT_GE(t.solve_bound, 1);
  EXPECT_GE(t.normalize_seconds, 0.0);
  EXPECT_GE(t.solve_seconds, 0.0);

  /* A balanced repair overwrites the snapshot with the fast-path shape. */
  ASSERT_EQ(dyckfix_repair("()", DYCKFIX_METRIC_DELETIONS,
                           DYCKFIX_STYLE_MINIMAL, &out, &distance),
            DYCKFIX_OK);
  dyckfix_string_free(out);
  ASSERT_EQ(dyckfix_last_telemetry(&t), DYCKFIX_OK);
  EXPECT_EQ(t.balanced_fast_path, 1);
  EXPECT_EQ(t.algorithm, DYCKFIX_ALGORITHM_AUTO);
  EXPECT_EQ(t.input_length, 2);
}

TEST(CapiTest, BatchRepairBasic) {
  const char* texts[] = {"a(b[c)d", "()", nullptr, "(("};
  char** out_texts = nullptr;
  int* out_codes = nullptr;
  long long* out_distances = nullptr;
  ASSERT_EQ(dyckfix_repair_batch(texts, 4, DYCKFIX_METRIC_DELETIONS,
                                 DYCKFIX_STYLE_MINIMAL, /*jobs=*/2,
                                 &out_texts, &out_codes, &out_distances),
            DYCKFIX_OK);
  ASSERT_NE(out_texts, nullptr);
  ASSERT_NE(out_codes, nullptr);
  ASSERT_NE(out_distances, nullptr);

  EXPECT_EQ(out_codes[0], DYCKFIX_OK);
  EXPECT_STREQ(out_texts[0], "a(bc)d");
  EXPECT_EQ(out_distances[0], 1);

  EXPECT_EQ(out_codes[1], DYCKFIX_OK);
  EXPECT_STREQ(out_texts[1], "()");
  EXPECT_EQ(out_distances[1], 0);

  /* The NULL document fails alone; the batch and its neighbours survive. */
  EXPECT_EQ(out_codes[2], DYCKFIX_ERROR_INVALID_ARGUMENT);
  EXPECT_EQ(out_texts[2], nullptr);
  EXPECT_EQ(out_distances[2], -1);

  EXPECT_EQ(out_codes[3], DYCKFIX_OK);
  EXPECT_STREQ(out_texts[3], "");
  EXPECT_EQ(out_distances[3], 2);

  dyckfix_batch_free(out_texts, out_codes, out_distances, 4);
}

TEST(CapiTest, BatchRepairMatchesSerial) {
  const char* texts[] = {"((",     "{\"a\": [1, 2}", "([)](",
                         "<p>ok",  "nothing here",   "",
                         "[[[]]",  "f(x[0]) {"};
  const size_t count = sizeof(texts) / sizeof(texts[0]);
  char** out_texts = nullptr;
  int* out_codes = nullptr;
  long long* out_distances = nullptr;
  ASSERT_EQ(dyckfix_repair_batch(texts, count, DYCKFIX_METRIC_SUBSTITUTIONS,
                                 DYCKFIX_STYLE_PRESERVE, /*jobs=*/0,
                                 &out_texts, &out_codes, &out_distances),
            DYCKFIX_OK);
  for (size_t i = 0; i < count; ++i) {
    char* serial = nullptr;
    long long serial_distance = -1;
    ASSERT_EQ(dyckfix_repair(texts[i], DYCKFIX_METRIC_SUBSTITUTIONS,
                             DYCKFIX_STYLE_PRESERVE, &serial,
                             &serial_distance),
              DYCKFIX_OK);
    EXPECT_EQ(out_codes[i], DYCKFIX_OK) << "doc " << i;
    EXPECT_STREQ(out_texts[i], serial) << "doc " << i;
    EXPECT_EQ(out_distances[i], serial_distance) << "doc " << i;
    dyckfix_string_free(serial);
  }
  dyckfix_batch_free(out_texts, out_codes, out_distances, count);
}

TEST(CapiTest, BatchRepairArgumentValidation) {
  const char* texts[] = {"()"};
  char** out_texts = nullptr;
  int* out_codes = nullptr;
  EXPECT_EQ(dyckfix_repair_batch(nullptr, 1, DYCKFIX_METRIC_DELETIONS,
                                 DYCKFIX_STYLE_MINIMAL, 1, &out_texts,
                                 &out_codes, nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  EXPECT_EQ(dyckfix_repair_batch(texts, 1, DYCKFIX_METRIC_DELETIONS,
                                 DYCKFIX_STYLE_MINIMAL, 1, nullptr,
                                 &out_codes, nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  EXPECT_EQ(dyckfix_repair_batch(texts, 1, DYCKFIX_METRIC_DELETIONS,
                                 DYCKFIX_STYLE_MINIMAL, 1, &out_texts,
                                 nullptr, nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  EXPECT_EQ(dyckfix_repair_batch(texts, 1, DYCKFIX_METRIC_DELETIONS,
                                 DYCKFIX_STYLE_MINIMAL, /*jobs=*/-1,
                                 &out_texts, &out_codes, nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  EXPECT_EQ(out_texts, nullptr);
  EXPECT_EQ(out_codes, nullptr);
}

TEST(CapiTest, BatchRepairCountZero) {
  char** out_texts = reinterpret_cast<char**>(0x1);
  int* out_codes = reinterpret_cast<int*>(0x1);
  long long* out_distances = reinterpret_cast<long long*>(0x1);
  ASSERT_EQ(dyckfix_repair_batch(nullptr, 0, DYCKFIX_METRIC_DELETIONS,
                                 DYCKFIX_STYLE_MINIMAL, 1, &out_texts,
                                 &out_codes, &out_distances),
            DYCKFIX_OK);
  EXPECT_EQ(out_texts, nullptr);
  EXPECT_EQ(out_codes, nullptr);
  EXPECT_EQ(out_distances, nullptr);
  dyckfix_batch_free(out_texts, out_codes, out_distances, 0);
}

TEST(CapiTest, BatchRepairNullDistancesIsOptional) {
  const char* texts[] = {"(("};
  char** out_texts = nullptr;
  int* out_codes = nullptr;
  ASSERT_EQ(dyckfix_repair_batch(texts, 1, DYCKFIX_METRIC_DELETIONS,
                                 DYCKFIX_STYLE_MINIMAL, 1, &out_texts,
                                 &out_codes, nullptr),
            DYCKFIX_OK);
  EXPECT_EQ(out_codes[0], DYCKFIX_OK);
  EXPECT_STREQ(out_texts[0], "");
  dyckfix_batch_free(out_texts, out_codes, nullptr, 1);
}

TEST(CapiTest, BatchFreeNullIsNoop) {
  dyckfix_batch_free(nullptr, nullptr, nullptr, 3);
}

TEST(CapiTest, Version) {
  EXPECT_STREQ(dyckfix_version(), "1.0.0");
}

/* The text form of gen::ManyValleys(32, 16): every symbol needs an edit
 * (edit2 = 512), so the doubling driver climbs far beyond any test-scale
 * budget. Used to force budget trips through the C surface. */
std::string SlowText() {
  std::string text;
  for (int v = 0; v < 32; ++v) {
    text.append(16, '(');
    text.append(16, ']');
  }
  return text;
}

TEST(CapiOptionsTest, InitFillsTheDocumentedDefaults) {
  dyckfix_options opts;
  std::memset(&opts, 0x5a, sizeof(opts));
  dyckfix_options_init(&opts);
  EXPECT_EQ(opts.metric, DYCKFIX_METRIC_SUBSTITUTIONS);
  EXPECT_EQ(opts.style, DYCKFIX_STYLE_MINIMAL);
  EXPECT_EQ(opts.max_distance, 0);
  EXPECT_EQ(opts.timeout_ms, 0);
  EXPECT_EQ(opts.max_work_steps, 0);
  EXPECT_EQ(opts.degrade, DYCKFIX_DEGRADE_FAIL);
  EXPECT_EQ(opts.algorithm, nullptr);
  dyckfix_options_init(nullptr); /* documented no-op */
}

TEST(CapiOptionsTest, AlgorithmSelectsForcedSolversByName) {
  /* Forced family names and registry names repair identically. */
  const char* text = "(()(";
  for (const char* algorithm :
       {"auto", "fpt", "fpt-deletion", "cubic", "branching"}) {
    dyckfix_options opts;
    dyckfix_options_init(&opts);
    opts.metric = DYCKFIX_METRIC_DELETIONS;
    opts.algorithm = algorithm;
    char* out = nullptr;
    long long distance = -1;
    ASSERT_EQ(dyckfix_repair_opts(text, &opts, &out, &distance, nullptr),
              DYCKFIX_OK)
        << algorithm << ": " << dyckfix_last_error();
    EXPECT_EQ(distance, 2) << algorithm;  /* edit1("(()(") = 2 */
    dyckfix_string_free(out);
  }
}

TEST(CapiOptionsTest, LastSolverAndTelemetryNameTheSolverThatRan) {
  dyckfix_options opts;
  dyckfix_options_init(&opts);
  opts.metric = DYCKFIX_METRIC_DELETIONS;
  opts.algorithm = "cubic";
  char* out = nullptr;
  long long distance = -1;
  ASSERT_EQ(dyckfix_repair_opts("(()(", &opts, &out, &distance, nullptr),
            DYCKFIX_OK);
  dyckfix_string_free(out);
  EXPECT_STREQ(dyckfix_last_solver(), "cubic");
  dyckfix_telemetry telemetry;
  ASSERT_EQ(dyckfix_last_telemetry(&telemetry), DYCKFIX_OK);
  EXPECT_STREQ(telemetry.solver, "cubic");
  EXPECT_EQ(telemetry.algorithm, DYCKFIX_ALGORITHM_CUBIC);

  /* The balanced fast path runs no solver. */
  opts.algorithm = nullptr;
  ASSERT_EQ(dyckfix_repair_opts("()", &opts, &out, &distance, nullptr),
            DYCKFIX_OK)
      << dyckfix_last_error();
  dyckfix_string_free(out);
  EXPECT_STREQ(dyckfix_last_solver(), "");

  /* Under the planner, the telemetry names whatever it picked. */
  ASSERT_EQ(dyckfix_repair_opts("(()(", &opts, &out, &distance, nullptr),
            DYCKFIX_OK);
  dyckfix_string_free(out);
  EXPECT_STRNE(dyckfix_last_solver(), "");
}

TEST(CapiOptionsTest, UnsupportedSolverMetricComboSurfacesVerbatim) {
  /* banded is deletions-only: forcing it under the substitution metric
   * must fail with the registry's exact capability message. */
  dyckfix_options opts;
  dyckfix_options_init(&opts);
  opts.metric = DYCKFIX_METRIC_SUBSTITUTIONS;
  opts.algorithm = "banded";
  char* out = nullptr;
  long long distance = -1;
  EXPECT_EQ(dyckfix_repair_opts("(()(", &opts, &out, &distance, nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  EXPECT_STREQ(dyckfix_last_error(),
               "InvalidArgument: solver 'banded' does not support the "
               "deletions+substitutions metric (capability: deletions-only)");

  opts.algorithm = "no-such-solver";
  EXPECT_EQ(dyckfix_repair_opts("(()(", &opts, &out, &distance, nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  EXPECT_STREQ(dyckfix_last_error(),
               "InvalidArgument: unknown solver 'no-such-solver'");
}

TEST(CapiOptionsTest, ContextLastSolverTracksTheContext) {
  dyckfix_context* ctx = dyckfix_context_create();
  ASSERT_NE(ctx, nullptr);
  EXPECT_STREQ(dyckfix_context_last_solver(nullptr), "");
  EXPECT_STREQ(dyckfix_context_last_solver(ctx), "");
  dyckfix_options opts;
  dyckfix_options_init(&opts);
  opts.metric = DYCKFIX_METRIC_DELETIONS;
  opts.algorithm = "fpt-deletion";
  char* out = nullptr;
  long long distance = -1;
  ASSERT_EQ(
      dyckfix_context_repair(ctx, "(()(", &opts, &out, &distance, nullptr),
      DYCKFIX_OK);
  dyckfix_string_free(out);
  EXPECT_STREQ(dyckfix_context_last_solver(ctx), "fpt-deletion");
  dyckfix_telemetry telemetry;
  ASSERT_EQ(dyckfix_context_telemetry(ctx, &telemetry), DYCKFIX_OK);
  EXPECT_STREQ(telemetry.solver, "fpt-deletion");
  dyckfix_context_free(ctx);
}

TEST(CapiOptionsTest, RepairOptsDefaultsMatchPlainRepair) {
  const char* text = "{\"a\": [1, 2}";
  char* plain = nullptr;
  long long plain_distance = -1;
  ASSERT_EQ(dyckfix_repair(text, DYCKFIX_METRIC_SUBSTITUTIONS,
                           DYCKFIX_STYLE_MINIMAL, &plain, &plain_distance),
            DYCKFIX_OK);

  dyckfix_options opts;
  dyckfix_options_init(&opts);
  char* out = nullptr;
  long long distance = -1;
  int degraded = -1;
  ASSERT_EQ(dyckfix_repair_opts(text, &opts, &out, &distance, &degraded),
            DYCKFIX_OK);
  EXPECT_STREQ(out, plain);
  EXPECT_EQ(distance, plain_distance);
  EXPECT_EQ(distance, 1);
  EXPECT_EQ(degraded, 0);
  EXPECT_STREQ(dyckfix_last_error(), "");
  dyckfix_string_free(plain);
  dyckfix_string_free(out);
}

TEST(CapiOptionsTest, TinyStepBudgetDegradesUnderGreedy) {
  dyckfix_options opts;
  dyckfix_options_init(&opts);
  opts.max_work_steps = 1;
  opts.degrade = DYCKFIX_DEGRADE_GREEDY;
  char* out = nullptr;
  long long distance = -1;
  int degraded = -1;
  ASSERT_EQ(dyckfix_repair_opts("(((([[[[", &opts, &out, &distance,
                                &degraded),
            DYCKFIX_OK);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(degraded, 1);
  EXPECT_GE(distance, 4); /* exact edit2 of "(((([[[[" is 4 */
  EXPECT_EQ(dyckfix_is_balanced(out), 1);
  dyckfix_string_free(out);

  dyckfix_telemetry t;
  ASSERT_EQ(dyckfix_last_telemetry(&t), DYCKFIX_OK);
  EXPECT_EQ(t.degraded, 1);
  EXPECT_GT(t.budget_steps, 0);
}

TEST(CapiOptionsTest, TinyStepBudgetFailsUnderFailPolicy) {
  dyckfix_options opts;
  dyckfix_options_init(&opts);
  opts.max_work_steps = 1; /* degrade stays DYCKFIX_DEGRADE_FAIL */
  char* out = nullptr;
  long long distance = -1;
  int degraded = -1;
  EXPECT_EQ(dyckfix_repair_opts("(((([[[[", &opts, &out, &distance,
                                &degraded),
            DYCKFIX_ERROR_RESOURCE_EXHAUSTED);
  EXPECT_EQ(out, nullptr);
  EXPECT_NE(std::string(dyckfix_last_error()).find("work-step cap"),
            std::string::npos)
      << dyckfix_last_error();
}

TEST(CapiOptionsTest, InvalidValuesGetSpecificErrors) {
  char* out = nullptr;
  long long distance = -1;

  dyckfix_options opts;
  dyckfix_options_init(&opts);
  opts.timeout_ms = -5;
  EXPECT_EQ(dyckfix_repair_opts("()", &opts, &out, &distance, nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  EXPECT_NE(std::string(dyckfix_last_error())
                .find("timeout_ms must be >= 0 (0 = unlimited), got -5"),
            std::string::npos)
      << dyckfix_last_error();

  dyckfix_options_init(&opts);
  opts.max_work_steps = -1;
  EXPECT_EQ(dyckfix_repair_opts("()", &opts, &out, &distance, nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  EXPECT_NE(std::string(dyckfix_last_error()).find("max_work_steps"),
            std::string::npos);

  dyckfix_options_init(&opts);
  opts.max_distance = -3;
  EXPECT_EQ(dyckfix_repair_opts("()", &opts, &out, &distance, nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  EXPECT_NE(std::string(dyckfix_last_error()).find("max_distance"),
            std::string::npos);

  dyckfix_options_init(&opts);
  opts.degrade = 7;
  EXPECT_EQ(dyckfix_repair_opts("()", &opts, &out, &distance, nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  EXPECT_NE(std::string(dyckfix_last_error()).find("unknown degrade mode 7"),
            std::string::npos)
      << dyckfix_last_error();

  dyckfix_options_init(&opts);
  opts.metric = 9;
  EXPECT_EQ(dyckfix_repair_opts("()", &opts, &out, &distance, nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  EXPECT_NE(std::string(dyckfix_last_error()).find("unknown metric 9"),
            std::string::npos);

  /* NULL opts is invalid too. */
  EXPECT_EQ(dyckfix_repair_opts("()", nullptr, &out, &distance, nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  EXPECT_EQ(out, nullptr);

  /* A subsequent success clears the sticky message. */
  dyckfix_options_init(&opts);
  ASSERT_EQ(dyckfix_repair_opts("()", &opts, &out, &distance, nullptr),
            DYCKFIX_OK);
  EXPECT_STREQ(dyckfix_last_error(), "");
  dyckfix_string_free(out);
}

TEST(CapiBatchOptsTest, MatchesPlainBatchWithoutBudgets) {
  const char* texts[] = {"((", "{\"a\": [1, 2}", "", "([)]("};
  const size_t count = sizeof(texts) / sizeof(texts[0]);
  dyckfix_options opts;
  dyckfix_options_init(&opts);
  char** out_texts = nullptr;
  int* out_codes = nullptr;
  long long* out_distances = nullptr;
  int* out_degraded = nullptr;
  ASSERT_EQ(dyckfix_repair_batch_opts(texts, count, &opts, /*jobs=*/2,
                                      /*batch_timeout_ms=*/0, &out_texts,
                                      &out_codes, &out_distances,
                                      &out_degraded),
            DYCKFIX_OK);
  for (size_t i = 0; i < count; ++i) {
    char* serial = nullptr;
    long long serial_distance = -1;
    ASSERT_EQ(dyckfix_repair(texts[i], DYCKFIX_METRIC_SUBSTITUTIONS,
                             DYCKFIX_STYLE_MINIMAL, &serial,
                             &serial_distance),
              DYCKFIX_OK);
    EXPECT_EQ(out_codes[i], DYCKFIX_OK) << "doc " << i;
    EXPECT_STREQ(out_texts[i], serial) << "doc " << i;
    EXPECT_EQ(out_distances[i], serial_distance) << "doc " << i;
    EXPECT_EQ(out_degraded[i], 0) << "doc " << i;
    dyckfix_string_free(serial);
  }
  dyckfix_batch_free(out_texts, out_codes, out_distances, count);
  dyckfix_batch_free(nullptr, out_degraded, nullptr, 0);
}

TEST(CapiBatchOptsTest, BatchDeadlineCancelsQueuedDocuments) {
  /* Two budget-busters pin both workers past the 100ms batch deadline;
   * the queued documents must come back DYCKFIX_ERROR_CANCELLED without
   * running. Generous code set for the busters themselves: deadline or
   * cancelled, whichever their next checkpoint observes first. */
  const std::string slow = SlowText();
  const char* texts[] = {slow.c_str(), slow.c_str(), "((", "()", "[", "{}"};
  const size_t count = sizeof(texts) / sizeof(texts[0]);
  dyckfix_options opts;
  dyckfix_options_init(&opts);
  char** out_texts = nullptr;
  int* out_codes = nullptr;
  long long* out_distances = nullptr;
  int* out_degraded = nullptr;
  ASSERT_EQ(dyckfix_repair_batch_opts(texts, count, &opts, /*jobs=*/2,
                                      /*batch_timeout_ms=*/100, &out_texts,
                                      &out_codes, &out_distances,
                                      &out_degraded),
            DYCKFIX_OK);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(out_codes[i] == DYCKFIX_ERROR_DEADLINE_EXCEEDED ||
                out_codes[i] == DYCKFIX_ERROR_CANCELLED)
        << "slow doc " << i << " code " << out_codes[i];
    EXPECT_EQ(out_texts[i], nullptr);
    EXPECT_EQ(out_distances[i], -1);
  }
  for (size_t i = 2; i < count; ++i) {
    EXPECT_EQ(out_codes[i], DYCKFIX_ERROR_CANCELLED) << "queued doc " << i;
    EXPECT_EQ(out_texts[i], nullptr);
    EXPECT_EQ(out_degraded[i], 0);
  }
  dyckfix_batch_free(out_texts, out_codes, out_distances, count);
  dyckfix_batch_free(nullptr, out_degraded, nullptr, 0);
}

TEST(CapiBatchOptsTest, DocTimeoutWithGreedyDegradesTheSlowSlot) {
  const std::string slow = SlowText();
  const char* texts[] = {"((", slow.c_str(), "{\"a\": [1, 2}"};
  const size_t count = sizeof(texts) / sizeof(texts[0]);
  dyckfix_options opts;
  dyckfix_options_init(&opts);
  opts.timeout_ms = 50;
  opts.degrade = DYCKFIX_DEGRADE_GREEDY;
  char** out_texts = nullptr;
  int* out_codes = nullptr;
  long long* out_distances = nullptr;
  int* out_degraded = nullptr;
  ASSERT_EQ(dyckfix_repair_batch_opts(texts, count, &opts, /*jobs=*/2,
                                      /*batch_timeout_ms=*/0, &out_texts,
                                      &out_codes, &out_distances,
                                      &out_degraded),
            DYCKFIX_OK);
  for (size_t i = 0; i < count; ++i) {
    EXPECT_EQ(out_codes[i], DYCKFIX_OK) << "doc " << i;
    EXPECT_EQ(dyckfix_is_balanced(out_texts[i]), 1) << "doc " << i;
  }
  EXPECT_EQ(out_degraded[0], 0);
  EXPECT_EQ(out_degraded[1], 1);
  EXPECT_EQ(out_degraded[2], 0);
  EXPECT_GE(out_distances[1], 512); /* exact edit2 of SlowText() */
  dyckfix_batch_free(out_texts, out_codes, out_distances, count);
  dyckfix_batch_free(nullptr, out_degraded, nullptr, 0);
}

TEST(CapiBatchOptsTest, ValidatesItsArguments) {
  const char* texts[] = {"()"};
  dyckfix_options opts;
  dyckfix_options_init(&opts);
  char** out_texts = nullptr;
  int* out_codes = nullptr;
  EXPECT_EQ(dyckfix_repair_batch_opts(texts, 1, &opts, 1,
                                      /*batch_timeout_ms=*/-1, &out_texts,
                                      &out_codes, nullptr, nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  EXPECT_NE(std::string(dyckfix_last_error()).find("batch_timeout_ms"),
            std::string::npos)
      << dyckfix_last_error();
  EXPECT_EQ(dyckfix_repair_batch_opts(texts, 1, nullptr, 1, 0, &out_texts,
                                      &out_codes, nullptr, nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  opts.degrade = 3;
  EXPECT_EQ(dyckfix_repair_batch_opts(texts, 1, &opts, 1, 0, &out_texts,
                                      &out_codes, nullptr, nullptr),
            DYCKFIX_ERROR_INVALID_ARGUMENT);
  EXPECT_NE(std::string(dyckfix_last_error()).find("unknown degrade mode"),
            std::string::npos);
  EXPECT_EQ(out_texts, nullptr);
  EXPECT_EQ(out_codes, nullptr);
}

}  // namespace
