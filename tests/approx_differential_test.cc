// Oracle differential harness for the approximation ladder (src/approx):
// every approximate solver in the registry is checked against the cubic
// ground-truth oracle on randomized and adversarial corpora, under both
// metrics, with fresh and reused RepairContexts. The contract under test
// is the certificate itself:
//
//   exact <= reported <= factor * exact          (finite-factor solvers)
//   exact <= reported                            (greedy, factor = inf)
//
// plus the telemetry that carries the proof: certified_factor is the
// realized ratio reported / proven-lower-bound, and exact_lower_bound
// never exceeds the true exact distance (a lower bound that did would be
// a forged certificate).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "src/alphabet/paren.h"
#include "src/baseline/cubic.h"
#include "src/core/context.h"
#include "src/core/dyck.h"
#include "src/core/edit_script.h"
#include "src/core/solver.h"
#include "src/gen/adversarial.h"
#include "src/gen/workload.h"
#include "src/pipeline/pipeline.h"
#include "src/profile/reduce.h"

namespace dyck {
namespace {

ParenSeq Parse(const std::string& text) {
  return ParenAlphabet::Default().Parse(text).value();
}

// Randomized (generator-driven) plus adversarial shapes. Sizes stay
// moderate because every sequence is also fed to the O(n^3) oracle.
std::vector<ParenSeq> Corpus() {
  std::vector<ParenSeq> corpus;
  uint64_t seed = 7;
  for (const gen::Shape shape :
       {gen::Shape::kUniform, gen::Shape::kDeep, gen::Shape::kFlat}) {
    for (const int64_t n : {16, 64, 192}) {
      for (const int64_t edits : {1, 4, 12}) {
        gen::BalancedOptions balanced;
        balanced.length = n;
        balanced.shape = shape;
        gen::CorruptionOptions corruption;
        corruption.num_edits = edits;
        corpus.push_back(
            gen::Corrupt(gen::RandomBalanced(balanced, seed), corruption,
                         seed + 1)
                .seq);
        seed += 2;
      }
    }
  }
  // Adversarial: valley chains, a mismatched peak, the greedy trap (built
  // to make the forward scan cascade), and certification edge cases —
  // all-openers (relaxation bound tight) and type-mismatched pairs
  // (relaxation bound useless).
  corpus.push_back(gen::ManyValleys(4, 3));
  corpus.push_back(gen::MismatchedV(64, 4, 9));
  corpus.push_back(gen::GreedyTrap(24));
  corpus.push_back(Parse("(((((((((((((((("));
  corpus.push_back(Parse("(](](](](](](](]"));
  corpus.push_back(Parse(")]})]})]}"));
  corpus.push_back(Parse(""));
  corpus.push_back(Parse("([{}])"));
  return corpus;
}

struct OracleCase {
  ParenSeq seq;
  int64_t exact[2];  // indexed by allow_substitutions
};

const std::vector<OracleCase>& OracleCorpus() {
  static const std::vector<OracleCase>* cases = [] {
    auto* out = new std::vector<OracleCase>();
    for (ParenSeq& seq : Corpus()) {
      OracleCase c;
      c.exact[0] = CubicDistance(seq, /*allow_substitutions=*/false);
      c.exact[1] = CubicDistance(seq, /*allow_substitutions=*/true);
      c.seq = std::move(seq);
      out->push_back(std::move(c));
    }
    return out;
  }();
  return *cases;
}

// The approximate rungs of the registry: everything not exact.
std::vector<const Solver*> ApproximateSolvers() {
  std::vector<const Solver*> out;
  for (const Solver* solver : SolverRegistry::Global().solvers()) {
    if (!solver->caps().exact) out.push_back(solver);
  }
  return out;
}

// SolveDistance with a pipeline-shaped request. nullopt = the solver
// declined (approx-greedy's certification gate); any non-InvalidArgument
// failure is reported as a test failure by the caller via status.
StatusOr<int64_t> DistanceWith(const Solver* solver, const ParenSeq& seq,
                               bool subs) {
  SolveRequest request;
  request.seq = seq;
  request.use_substitutions = subs;
  request.doubling_cap = static_cast<int64_t>(seq.size()) + 1;
  Reduced reduced;
  if (solver->caps().needs_reduced) {
    Reduce(request.seq, &reduced);
    request.reduced = &reduced;
  }
  return solver->SolveDistance(request);
}

// Distances: every accepted answer sits in the certified band around the
// oracle's exact value.
TEST(ApproxDifferentialTest, DistanceStaysInsideTheCertifiedBand) {
  for (const Solver* solver : ApproximateSolvers()) {
    const double factor = solver->caps().approximation_factor;
    for (const bool subs : {false, true}) {
      if (subs ? !solver->caps().substitutions : !solver->caps().deletions) {
        continue;
      }
      for (const OracleCase& c : OracleCorpus()) {
        const StatusOr<int64_t> reported = DistanceWith(solver, c.seq, subs);
        if (!reported.ok()) {
          EXPECT_TRUE(reported.status().IsInvalidArgument())
              << solver->name() << ": " << reported.status().ToString();
          continue;  // certification gate declined this input
        }
        const int64_t exact = c.exact[subs ? 1 : 0];
        EXPECT_GE(*reported, exact)
            << solver->name() << " undershot on " << ToString(c.seq);
        if (std::isfinite(factor)) {
          EXPECT_LE(static_cast<double>(*reported),
                    factor * static_cast<double>(exact))
              << solver->name() << " broke its certificate on "
              << ToString(c.seq);
        }
      }
    }
  }
}

// Full repairs through the pipeline: the script is valid and costs what
// the distance claims, the repaired sequence is balanced, and the
// telemetry certificate is internally consistent AND consistent with the
// oracle — the proven lower bound may never exceed the true distance.
TEST(ApproxDifferentialTest, RepairCertificatesAreSoundAgainstTheOracle) {
  RepairContext reused;
  for (const Solver* solver : ApproximateSolvers()) {
    if (std::isinf(solver->caps().approximation_factor)) continue;
    const double factor = solver->caps().approximation_factor;
    for (const bool subs : {false, true}) {
      Options options;
      options.metric = subs ? Metric::kDeletionsAndSubstitutions
                            : Metric::kDeletionsOnly;
      options.solver = solver->name();
      for (const OracleCase& c : OracleCorpus()) {
        RepairContext fresh;
        const auto result = pipeline::Run(c.seq, options, &fresh);
        if (!result.ok()) {
          EXPECT_TRUE(result.status().IsInvalidArgument())
              << solver->name() << ": " << result.status().ToString();
          continue;
        }
        const int64_t exact = c.exact[subs ? 1 : 0];
        EXPECT_GE(result->distance, exact) << solver->name();
        EXPECT_LE(static_cast<double>(result->distance),
                  factor * static_cast<double>(exact))
            << solver->name();
        EXPECT_TRUE(ValidateScript(c.seq, result->script, result->distance,
                                   subs)
                        .ok())
            << solver->name() << " " << ToString(c.seq);
        EXPECT_TRUE(IsBalanced(result->repaired)) << solver->name();

        const RepairTelemetry& t = result->telemetry;
        if (c.seq.empty()) {
          // Balanced fast path: no solver ran.
          EXPECT_EQ(result->distance, 0);
          continue;
        }
        EXPECT_GE(t.certified_factor, 1.0) << solver->name();
        EXPECT_LE(t.certified_factor, factor) << solver->name();
        if (t.certified_factor == 1.0) {
          // Exact answers carry no lower bound (the distance is the bound)
          // and must really be exact.
          EXPECT_EQ(result->distance, exact) << solver->name();
          EXPECT_EQ(t.exact_lower_bound, -1) << solver->name();
        } else {
          // A certificate that overstates the lower bound is forged.
          EXPECT_GE(t.exact_lower_bound, 1) << solver->name();
          EXPECT_LE(t.exact_lower_bound, exact) << solver->name();
          // The realized ratio is measured against the proven bound.
          EXPECT_NEAR(t.certified_factor,
                      static_cast<double>(result->distance) /
                          static_cast<double>(t.exact_lower_bound),
                      1e-9)
              << solver->name();
        }

        // Context reuse may never change an answer: byte-identical
        // results from a context that has served every prior document.
        const auto again = pipeline::Run(c.seq, options, &reused);
        ASSERT_TRUE(again.ok()) << solver->name() << ": " << again.status();
        EXPECT_EQ(again->distance, result->distance) << solver->name();
        EXPECT_EQ(again->script.ToString(), result->script.ToString())
            << solver->name();
        EXPECT_EQ(again->telemetry.certified_factor, t.certified_factor)
            << solver->name();
        EXPECT_EQ(again->telemetry.exact_lower_bound, t.exact_lower_bound)
            << solver->name();
      }
    }
  }
}

// The refinement solver ("approx") accepts every input; only the O(n)
// counting rung ("approx-greedy") may decline, and it must do so loudly
// with the documented InvalidArgument, never with a silently uncertified
// answer.
TEST(ApproxDifferentialTest, CertifiedGreedyDeclinesLoudly) {
  const ParenSeq hard = Parse("(](](](](](](](]");  // U = 8, L = 1
  SolveRequest request;
  request.seq = hard;
  request.use_substitutions = true;
  request.doubling_cap = static_cast<int64_t>(hard.size()) + 1;

  const Solver* certified = SolverRegistry::Global().Find("approx-greedy");
  ASSERT_NE(certified, nullptr);
  const StatusOr<int64_t> declined = certified->SolveDistance(request);
  ASSERT_FALSE(declined.ok());
  EXPECT_TRUE(declined.status().IsInvalidArgument());
  EXPECT_NE(declined.status().message().find("cannot certify"),
            std::string::npos)
      << declined.status().ToString();

  const Solver* approx = SolverRegistry::Global().Find("approx");
  ASSERT_NE(approx, nullptr);
  for (const OracleCase& c : OracleCorpus()) {
    for (const bool subs : {false, true}) {
      EXPECT_TRUE(DistanceWith(approx, c.seq, subs).ok())
          << "approx declined " << ToString(c.seq);
    }
  }
}

// Forced selection through the public Options surface reaches the ladder:
// Algorithm::kApprox lands on the canonical "approx" entry, and both rungs
// are reachable by registry name.
TEST(ApproxDifferentialTest, ForcedSelectionReachesTheLadder) {
  const ParenSeq seq = Parse("((((((((((((((((");
  Options by_enum;
  by_enum.algorithm = Algorithm::kApprox;
  const auto via_enum = Repair(seq, by_enum);
  ASSERT_TRUE(via_enum.ok()) << via_enum.status();
  EXPECT_EQ(via_enum->telemetry.solver_name, "approx");
  EXPECT_EQ(via_enum->telemetry.chosen_algorithm, Algorithm::kApprox);
  // Sixteen unmatched openers under the default edit2 metric: greedy
  // pairs them for U = 8 while the relaxation proves L = 8, so the
  // certificate collapses to a proof of optimality.
  EXPECT_EQ(via_enum->distance, 8);
  EXPECT_EQ(via_enum->telemetry.certified_factor, 1.0);

  Options by_name;
  by_name.solver = "approx-greedy";
  const auto via_name = Repair(seq, by_name);
  ASSERT_TRUE(via_name.ok()) << via_name.status();
  EXPECT_EQ(via_name->telemetry.solver_name, "approx-greedy");
  EXPECT_EQ(via_name->distance, 8);
}

}  // namespace
}  // namespace dyck
