// Metamorphic properties: transformations of the input with a known,
// exactly predictable effect on the distance. These catch bug classes that
// point-wise differential tests miss (asymmetries, type-identity
// assumptions, concatenation handling).
//
// Every property iterates SolverRegistry::Global() instead of calling the
// two FPT convenience wrappers, so baseline solvers (cubic, branching,
// banded) are held to the same invariants — they used to be silently
// skipped. Exact solvers must satisfy each property exactly; approximate
// solvers cannot (greedy is direction-dependent, certification is
// shape-dependent), so they get a dedicated soundness property instead:
// exact <= reported <= factor * exact on every input they accept.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <optional>
#include <random>

#include "src/core/dyck.h"
#include "src/core/solver.h"
#include "src/fpt/deletion.h"
#include "src/fpt/substitution.h"
#include "src/gen/workload.h"
#include "src/profile/reduce.h"

namespace dyck {
namespace {

ParenSeq RandomSeq(int64_t n, int32_t types, std::mt19937_64& rng) {
  ParenSeq seq;
  for (int64_t i = 0; i < n; ++i) {
    seq.push_back(
        Paren{static_cast<ParenType>(rng() % types), rng() % 2 == 0});
  }
  return seq;
}

// Mirror: reverse the sequence and flip every direction. A sequence is
// balanced iff its mirror is, and edits map one-to-one, so both distances
// are invariant.
ParenSeq Mirror(const ParenSeq& seq) {
  ParenSeq out;
  out.reserve(seq.size());
  for (auto it = seq.rbegin(); it != seq.rend(); ++it) {
    out.push_back(Paren{it->type, !it->is_open});
  }
  return out;
}

// The independently-tested reference for soundness bounds.
int64_t Oracle(const ParenSeq& seq, bool subs) {
  return subs ? FptSubstitutionDistance(seq) : FptDeletionDistance(seq);
}

// SolveDistance through the registry interface, building the request the
// way the pipeline would (reduced input for solvers that declare
// needs_reduced). nullopt = the solver declined this input: an Applicable
// gate (banded's single-peak shape test) or an InvalidArgument refusal
// (approx-greedy's certification gate). Any other failure is a bug.
std::optional<int64_t> DistanceWith(const Solver* solver,
                                    const ParenSeq& seq, bool subs) {
  SolveRequest request;
  request.seq = seq;
  request.use_substitutions = subs;
  request.doubling_cap = static_cast<int64_t>(seq.size()) + 1;
  Reduced reduced;
  if (solver->caps().needs_reduced) {
    Reduce(request.seq, &reduced);
    request.reduced = &reduced;
  }
  if (!solver->Applicable(request)) return std::nullopt;
  const StatusOr<int64_t> result = solver->SolveDistance(request);
  if (!result.ok()) {
    EXPECT_TRUE(result.status().IsInvalidArgument())
        << solver->name() << ": " << result.status().ToString();
    return std::nullopt;
  }
  return *result;
}

// Branching is exponential in d, so its random inputs stay short enough
// that d is small; everyone else gets the historical corpus sizes.
int64_t MaxTrialLength(const Solver* solver, int64_t wanted) {
  return solver->caps().family == Algorithm::kBranching
             ? std::min<int64_t>(wanted, 14)
             : wanted;
}

// Runs `fn(solver, subs)` for every (registered exact solver, metric it
// supports) pair. Properties below assert exact invariances, which only
// exact solvers promise.
template <typename Fn>
void ForEachExactSolver(Fn fn) {
  for (const Solver* solver : SolverRegistry::Global().solvers()) {
    if (!solver->caps().exact) continue;
    if (solver->caps().deletions) fn(solver, false);
    if (solver->caps().substitutions) fn(solver, true);
  }
}

TEST(MetamorphicTest, MirrorInvariance) {
  ForEachExactSolver([](const Solver* solver, bool subs) {
    std::mt19937_64 rng(42);
    for (int trial = 0; trial < 60; ++trial) {
      const ParenSeq seq =
          RandomSeq(rng() % MaxTrialLength(solver, 24), 3, rng);
      const ParenSeq mirrored = Mirror(seq);
      const auto a = DistanceWith(solver, seq, subs);
      const auto b = DistanceWith(solver, mirrored, subs);
      // Shape gates are not mirror-symmetric (banded may accept only one
      // side); the property applies when the solver answered both.
      if (!a.has_value() || !b.has_value()) continue;
      EXPECT_EQ(*a, *b) << solver->name() << " " << ToString(seq);
    }
  });
}

// Relabeling types by any permutation changes nothing.
TEST(MetamorphicTest, TypeRelabelInvariance) {
  ForEachExactSolver([](const Solver* solver, bool subs) {
    std::mt19937_64 rng(43);
    for (int trial = 0; trial < 60; ++trial) {
      const ParenSeq seq =
          RandomSeq(rng() % MaxTrialLength(solver, 24), 4, rng);
      ParenSeq relabeled = seq;
      const int32_t perm[4] = {2, 0, 3, 1};
      for (Paren& p : relabeled) p.type = perm[p.type];
      const auto a = DistanceWith(solver, seq, subs);
      const auto b = DistanceWith(solver, relabeled, subs);
      if (!a.has_value() || !b.has_value()) continue;
      EXPECT_EQ(*a, *b) << solver->name() << " " << ToString(seq);
    }
  });
}

// Wrapping in a matched pair of a FRESH type changes nothing. (Wrapping
// with a type that occurs in S can genuinely *reduce* the distance — the
// wrapper's opener can adopt a stray closer of S, e.g. "][" wrapped in
// "[]" is already balanced — so the invariance only holds for fresh
// types. Discovering that was this test's first contribution.)
TEST(MetamorphicTest, FreshTypeWrapInvariance) {
  ForEachExactSolver([](const Solver* solver, bool subs) {
    std::mt19937_64 rng(44);
    for (int trial = 0; trial < 50; ++trial) {
      const ParenSeq seq =
          RandomSeq(rng() % MaxTrialLength(solver, 20), 3, rng);
      ParenSeq wrapped;
      wrapped.push_back(Paren::Open(3));  // fresh type
      wrapped.insert(wrapped.end(), seq.begin(), seq.end());
      wrapped.push_back(Paren::Close(3));
      const auto base = DistanceWith(solver, seq, subs);
      const auto after = DistanceWith(solver, wrapped, subs);
      if (!base.has_value() || !after.has_value()) continue;
      EXPECT_EQ(*after, *base) << solver->name() << " " << ToString(seq);
    }
  });
}

// Wrapping with an in-S type can only help, never hurt.
TEST(MetamorphicTest, WrapNeverIncreasesDistance) {
  ForEachExactSolver([](const Solver* solver, bool subs) {
    std::mt19937_64 rng(45);
    for (int trial = 0; trial < 50; ++trial) {
      const ParenSeq seq =
          RandomSeq(rng() % MaxTrialLength(solver, 20), 3, rng);
      ParenSeq wrapped;
      wrapped.push_back(Paren::Open(1));
      wrapped.insert(wrapped.end(), seq.begin(), seq.end());
      wrapped.push_back(Paren::Close(1));
      const auto base = DistanceWith(solver, seq, subs);
      const auto after = DistanceWith(solver, wrapped, subs);
      if (!base.has_value() || !after.has_value()) continue;
      EXPECT_LE(*after, *base) << solver->name() << " " << ToString(seq);
    }
  });
}

// Distances are subadditive under concatenation.
TEST(MetamorphicTest, ConcatenationSubadditivity) {
  ForEachExactSolver([](const Solver* solver, bool subs) {
    std::mt19937_64 rng(45);
    for (int trial = 0; trial < 50; ++trial) {
      const int64_t half = MaxTrialLength(solver, 14) / 2;
      const ParenSeq a = RandomSeq(rng() % (half + 1), 2, rng);
      const ParenSeq b = RandomSeq(rng() % (half + 1), 2, rng);
      ParenSeq ab = a;
      ab.insert(ab.end(), b.begin(), b.end());
      const auto da = DistanceWith(solver, a, subs);
      const auto db = DistanceWith(solver, b, subs);
      const auto dab = DistanceWith(solver, ab, subs);
      if (!da.has_value() || !db.has_value() || !dab.has_value()) continue;
      EXPECT_LE(*dab, *da + *db)
          << solver->name() << " " << ToString(a) << " | " << ToString(b);
    }
  });
}

TEST(MetamorphicTest, OpeningRunPlusItsMirrorIsFree) {
  // For an all-openings prefix P, P . mirror(P) pairs every symbol with
  // its mirror image concentrically, so the result is balanced.
  ForEachExactSolver([](const Solver* solver, bool subs) {
    std::mt19937_64 rng(46);
    for (int trial = 0; trial < 50; ++trial) {
      ParenSeq opens;
      const int64_t n = rng() % MaxTrialLength(solver, 20);
      for (int64_t i = 0; i < n; ++i) {
        opens.push_back(Paren::Open(static_cast<ParenType>(rng() % 3)));
      }
      ParenSeq doubled = opens;
      const ParenSeq mirrored = Mirror(opens);
      doubled.insert(doubled.end(), mirrored.begin(), mirrored.end());
      ASSERT_TRUE(IsBalanced(doubled)) << ToString(opens);
      const auto d = DistanceWith(solver, doubled, subs);
      if (!d.has_value()) continue;
      EXPECT_EQ(*d, 0) << solver->name() << " " << ToString(opens);
    }
  });
}

// Duplicating a sequence at most doubles the distance.
TEST(MetamorphicTest, DoublingAtMostDoubles) {
  ForEachExactSolver([](const Solver* solver, bool subs) {
    std::mt19937_64 rng(47);
    for (int trial = 0; trial < 50; ++trial) {
      const ParenSeq seq =
          RandomSeq(rng() % (MaxTrialLength(solver, 14) / 2 + 1), 2, rng);
      ParenSeq doubled = seq;
      doubled.insert(doubled.end(), seq.begin(), seq.end());
      const auto base = DistanceWith(solver, seq, subs);
      const auto twice = DistanceWith(solver, doubled, subs);
      if (!base.has_value() || !twice.has_value()) continue;
      EXPECT_LE(*twice, 2 * *base) << solver->name() << " " << ToString(seq);
    }
  });
}

// Interleaving metric relation: edit2 <= edit1 <= 2 * edit2, for every
// exact solver that supports both metrics.
TEST(MetamorphicTest, MetricSandwich) {
  for (const Solver* solver : SolverRegistry::Global().solvers()) {
    const SolverCaps& caps = solver->caps();
    if (!caps.exact || !caps.deletions || !caps.substitutions) continue;
    std::mt19937_64 rng(48);
    for (int trial = 0; trial < 60; ++trial) {
      const ParenSeq seq =
          RandomSeq(rng() % MaxTrialLength(solver, 24), 3, rng);
      const auto e1 = DistanceWith(solver, seq, false);
      const auto e2 = DistanceWith(solver, seq, true);
      if (!e1.has_value() || !e2.has_value()) continue;
      EXPECT_LE(*e2, *e1) << solver->name() << " " << ToString(seq);
      EXPECT_LE(*e1, 2 * *e2) << solver->name() << " " << ToString(seq);
    }
  }
}

// Approximate solvers break the invariances above by design (greedy is
// direction-dependent; certification is shape-dependent), but every answer
// they give must still be sound: at least the exact distance, and — when
// the solver certifies a finite factor — at most factor * exact. Greedy
// (infinite factor) only promises the lower side.
TEST(MetamorphicTest, ApproximateSolversAreSoundOnEveryAcceptedInput) {
  for (const Solver* solver : SolverRegistry::Global().solvers()) {
    const SolverCaps& caps = solver->caps();
    if (caps.exact) continue;
    for (const bool subs : {false, true}) {
      if (subs ? !caps.substitutions : !caps.deletions) continue;
      std::mt19937_64 rng(49);
      for (int trial = 0; trial < 60; ++trial) {
        const ParenSeq seq = RandomSeq(rng() % 24, 3, rng);
        const auto d = DistanceWith(solver, seq, subs);
        if (!d.has_value()) continue;
        const int64_t exact = Oracle(seq, subs);
        EXPECT_GE(*d, exact) << solver->name() << " " << ToString(seq);
        if (std::isfinite(caps.approximation_factor)) {
          EXPECT_LE(static_cast<double>(*d),
                    caps.approximation_factor * static_cast<double>(exact))
              << solver->name() << " " << ToString(seq);
        }
      }
    }
  }
}

}  // namespace
}  // namespace dyck
