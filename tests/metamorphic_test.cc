// Metamorphic properties: transformations of the input with a known,
// exactly predictable effect on the distance. These catch bug classes that
// point-wise differential tests miss (asymmetries, type-identity
// assumptions, concatenation handling).

#include <gtest/gtest.h>

#include <random>

#include "src/core/dyck.h"
#include "src/fpt/deletion.h"
#include "src/fpt/substitution.h"
#include "src/gen/workload.h"

namespace dyck {
namespace {

ParenSeq RandomSeq(int64_t n, int32_t types, std::mt19937_64& rng) {
  ParenSeq seq;
  for (int64_t i = 0; i < n; ++i) {
    seq.push_back(
        Paren{static_cast<ParenType>(rng() % types), rng() % 2 == 0});
  }
  return seq;
}

// Mirror: reverse the sequence and flip every direction. A sequence is
// balanced iff its mirror is, and edits map one-to-one, so both distances
// are invariant.
ParenSeq Mirror(const ParenSeq& seq) {
  ParenSeq out;
  out.reserve(seq.size());
  for (auto it = seq.rbegin(); it != seq.rend(); ++it) {
    out.push_back(Paren{it->type, !it->is_open});
  }
  return out;
}

TEST(MetamorphicTest, MirrorInvariance) {
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 150; ++trial) {
    const ParenSeq seq = RandomSeq(rng() % 24, 3, rng);
    const ParenSeq mirrored = Mirror(seq);
    EXPECT_EQ(FptDeletionDistance(seq), FptDeletionDistance(mirrored))
        << ToString(seq);
    EXPECT_EQ(FptSubstitutionDistance(seq),
              FptSubstitutionDistance(mirrored))
        << ToString(seq);
  }
}

// Relabeling types by any permutation changes nothing.
TEST(MetamorphicTest, TypeRelabelInvariance) {
  std::mt19937_64 rng(43);
  for (int trial = 0; trial < 150; ++trial) {
    const ParenSeq seq = RandomSeq(rng() % 24, 4, rng);
    ParenSeq relabeled = seq;
    const int32_t perm[4] = {2, 0, 3, 1};
    for (Paren& p : relabeled) p.type = perm[p.type];
    EXPECT_EQ(FptDeletionDistance(seq), FptDeletionDistance(relabeled))
        << ToString(seq);
    EXPECT_EQ(FptSubstitutionDistance(seq),
              FptSubstitutionDistance(relabeled))
        << ToString(seq);
  }
}

// Wrapping in a matched pair of a FRESH type changes nothing. (Wrapping
// with a type that occurs in S can genuinely *reduce* the distance — the
// wrapper's opener can adopt a stray closer of S, e.g. "][" wrapped in
// "[]" is already balanced — so the invariance only holds for fresh
// types. Discovering that was this test's first contribution.)
TEST(MetamorphicTest, FreshTypeWrapInvariance) {
  std::mt19937_64 rng(44);
  for (int trial = 0; trial < 100; ++trial) {
    const ParenSeq seq = RandomSeq(rng() % 20, 3, rng);  // types 0..2
    const int64_t base_del = FptDeletionDistance(seq);
    const int64_t base_sub = FptSubstitutionDistance(seq);

    ParenSeq wrapped;
    wrapped.push_back(Paren::Open(3));  // fresh type
    wrapped.insert(wrapped.end(), seq.begin(), seq.end());
    wrapped.push_back(Paren::Close(3));
    EXPECT_EQ(FptDeletionDistance(wrapped), base_del) << ToString(seq);
    EXPECT_EQ(FptSubstitutionDistance(wrapped), base_sub) << ToString(seq);
  }
}

// Wrapping with an in-S type can only help, never hurt.
TEST(MetamorphicTest, WrapNeverIncreasesDistance) {
  std::mt19937_64 rng(45);
  for (int trial = 0; trial < 100; ++trial) {
    const ParenSeq seq = RandomSeq(rng() % 20, 3, rng);
    ParenSeq wrapped;
    wrapped.push_back(Paren::Open(1));
    wrapped.insert(wrapped.end(), seq.begin(), seq.end());
    wrapped.push_back(Paren::Close(1));
    EXPECT_LE(FptDeletionDistance(wrapped), FptDeletionDistance(seq));
    EXPECT_LE(FptSubstitutionDistance(wrapped),
              FptSubstitutionDistance(seq));
  }
}

// Distances are subadditive under concatenation, and concatenating a
// sequence with its own mirror is free.
TEST(MetamorphicTest, ConcatenationSubadditivity) {
  std::mt19937_64 rng(45);
  for (int trial = 0; trial < 100; ++trial) {
    const ParenSeq a = RandomSeq(rng() % 14, 2, rng);
    const ParenSeq b = RandomSeq(rng() % 14, 2, rng);
    ParenSeq ab = a;
    ab.insert(ab.end(), b.begin(), b.end());
    EXPECT_LE(FptDeletionDistance(ab),
              FptDeletionDistance(a) + FptDeletionDistance(b));
    EXPECT_LE(FptSubstitutionDistance(ab),
              FptSubstitutionDistance(a) + FptSubstitutionDistance(b));
  }
}

TEST(MetamorphicTest, OpeningRunPlusItsMirrorIsFree) {
  // For an all-openings prefix P, P . mirror(P) pairs every symbol with
  // its mirror image concentrically, so the result is balanced.
  std::mt19937_64 rng(46);
  for (int trial = 0; trial < 100; ++trial) {
    ParenSeq opens;
    const int64_t n = rng() % 20;
    for (int64_t i = 0; i < n; ++i) {
      opens.push_back(Paren::Open(static_cast<ParenType>(rng() % 3)));
    }
    ParenSeq doubled = opens;
    const ParenSeq mirrored = Mirror(opens);
    doubled.insert(doubled.end(), mirrored.begin(), mirrored.end());
    EXPECT_TRUE(IsBalanced(doubled)) << ToString(opens);
    EXPECT_EQ(FptDeletionDistance(doubled), 0) << ToString(opens);
  }
}

// Duplicating a sequence at most doubles the distance.
TEST(MetamorphicTest, DoublingAtMostDoubles) {
  std::mt19937_64 rng(47);
  for (int trial = 0; trial < 100; ++trial) {
    const ParenSeq seq = RandomSeq(rng() % 14, 2, rng);
    ParenSeq doubled = seq;
    doubled.insert(doubled.end(), seq.begin(), seq.end());
    EXPECT_LE(FptDeletionDistance(doubled), 2 * FptDeletionDistance(seq));
    EXPECT_LE(FptSubstitutionDistance(doubled),
              2 * FptSubstitutionDistance(seq));
  }
}

// Interleaving metric relation: edit2 <= edit1 <= 2 * edit2.
TEST(MetamorphicTest, MetricSandwich) {
  std::mt19937_64 rng(48);
  for (int trial = 0; trial < 150; ++trial) {
    const ParenSeq seq = RandomSeq(rng() % 24, 3, rng);
    const int64_t e1 = FptDeletionDistance(seq);
    const int64_t e2 = FptSubstitutionDistance(seq);
    EXPECT_LE(e2, e1) << ToString(seq);
    EXPECT_LE(e1, 2 * e2) << ToString(seq);
  }
}

}  // namespace
}  // namespace dyck
