// Differential suite for the incremental pipeline: after every edit of a
// random trace, RepairDoc::RepairInto must be byte-identical to the eager
// Repair() on the same token buffer — same distance, same edit ops, same
// aligned pairs, same repaired sequence — across solver configurations,
// metrics, and styles. This is the contract that lets every other test in
// the repo stand in for the incremental path.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/doc.h"
#include "src/core/dyck.h"
#include "src/core/edit_script.h"
#include "src/gen/workload.h"

namespace dyck {
namespace {

// Deterministic xorshift-ish generator; tests must not depend on libstdc++
// distribution details.
struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed * 2654435761u + 1) {}
  uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  int64_t Below(int64_t n) {
    return n <= 0 ? 0 : static_cast<int64_t>(Next() % n);
  }
};

ParenSeq RandomInsert(Rng& rng, int64_t max_len) {
  ParenSeq out;
  const int64_t len = rng.Below(max_len + 1);
  for (int64_t i = 0; i < len; ++i) {
    const auto type = static_cast<ParenType>(rng.Below(3));
    out.push_back(rng.Next() % 2 == 0 ? Paren::Open(type)
                                      : Paren::Close(type));
  }
  return out;
}

// One random splice applied to the doc; small inserts/erases so the trace
// stays near the few-errors regime most solvers are registered for.
void RandomSplice(Rng& rng, RepairDoc* doc) {
  const int64_t pos = rng.Below(doc->size() + 1);
  const int64_t erase_len = rng.Below(std::min<int64_t>(doc->size() - pos, 4) + 1);
  doc->Splice(pos, erase_len, RandomInsert(rng, 4));
}

void ExpectIdentical(const RepairResult& incremental,
                     const RepairResult& eager, const std::string& what) {
  EXPECT_EQ(incremental.distance, eager.distance) << what;
  EXPECT_EQ(incremental.script.ops, eager.script.ops) << what;
  EXPECT_EQ(incremental.script.aligned_pairs, eager.script.aligned_pairs)
      << what;
  EXPECT_TRUE(incremental.repaired == eager.repaired) << what;
}

// Drives `edits` random splices through a RepairDoc under `options`,
// checking the incremental result against the eager pipeline after every
// one (and once before the first).
void RunDifferentialTrace(int64_t n, const Options& options, uint64_t seed,
                          int edits) {
  gen::BalancedOptions balanced;
  balanced.length = n;
  gen::CorruptionOptions corrupt;
  corrupt.num_edits = 2;
  RepairDoc doc(
      gen::Corrupt(gen::RandomBalanced(balanced, seed), corrupt, seed + 1)
          .seq,
      /*target_chunk_size=*/32);

  Rng rng(seed + 2);
  RepairResult incremental;
  for (int e = 0; e <= edits; ++e) {
    if (e > 0) RandomSplice(rng, &doc);
    const std::string what =
        "seed=" + std::to_string(seed) + " edit=" + std::to_string(e);
    const Status status = doc.RepairInto(options, &incremental);
    const auto eager = Repair(doc.tokens(), options);
    ASSERT_EQ(status.ok(), eager.ok())
        << what << ": incremental " << status.ToString() << " vs eager "
        << eager.status().ToString();
    if (!status.ok()) {
      EXPECT_EQ(status.code(), eager.status().code()) << what;
      continue;
    }
    ExpectIdentical(incremental, *eager, what);
  }
}

TEST(IncrementalTest, AutoDeletions) {
  Options options;
  options.metric = Metric::kDeletionsOnly;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    RunDifferentialTrace(512, options, seed, 10);
  }
}

TEST(IncrementalTest, AutoSubstitutions) {
  Options options;
  options.metric = Metric::kDeletionsAndSubstitutions;
  for (uint64_t seed = 10; seed < 14; ++seed) {
    RunDifferentialTrace(512, options, seed, 10);
  }
}

TEST(IncrementalTest, ForcedFpt) {
  for (const Metric metric :
       {Metric::kDeletionsOnly, Metric::kDeletionsAndSubstitutions}) {
    Options options;
    options.metric = metric;
    options.algorithm = Algorithm::kFpt;
    RunDifferentialTrace(256, options, 20 + static_cast<int>(metric), 8);
  }
}

TEST(IncrementalTest, ForcedCubic) {
  // Cubic is a raw-input solver (needs_reduced = false): it runs even on
  // balanced buffers and emits its own complete pair alignment — the path
  // where the doc must NOT add its chunk pairs on top.
  for (const Metric metric :
       {Metric::kDeletionsOnly, Metric::kDeletionsAndSubstitutions}) {
    Options options;
    options.metric = metric;
    options.algorithm = Algorithm::kCubic;
    RunDifferentialTrace(96, options, 30 + static_cast<int>(metric), 8);
  }
}

TEST(IncrementalTest, ForcedApprox) {
  // The approx refinement solver may serve either a greedy full-sequence
  // script or an exact reduced-based one; the doc must take the fully
  // materialized pipeline path for it.
  Options options;
  options.metric = Metric::kDeletionsOnly;
  options.algorithm = Algorithm::kApprox;
  options.max_approximation_factor = 2.0;
  for (uint64_t seed = 40; seed < 43; ++seed) {
    RunDifferentialTrace(512, options, seed, 8);
  }
}

TEST(IncrementalTest, AutoWithApproximationBudget) {
  Options options;
  options.metric = Metric::kDeletionsOnly;
  options.max_approximation_factor = 3.0;
  for (uint64_t seed = 50; seed < 53; ++seed) {
    RunDifferentialTrace(512, options, seed, 8);
  }
}

TEST(IncrementalTest, PreserveContentStyle) {
  // kPreserveContent consumes the pair alignment inside stage 5; the doc
  // must hand the pipeline complete artifacts (no omitted-pairs mode).
  Options options;
  options.metric = Metric::kDeletionsAndSubstitutions;
  options.style = RepairStyle::kPreserveContent;
  for (uint64_t seed = 60; seed < 63; ++seed) {
    RunDifferentialTrace(256, options, seed, 8);
  }
}

TEST(IncrementalTest, FreshDocMatchesReusedDoc) {
  // A doc that lived through a long trace must answer exactly like a
  // fresh doc constructed from its current buffer (stale-cache detector).
  Options options;
  options.metric = Metric::kDeletionsAndSubstitutions;
  gen::BalancedOptions balanced;
  balanced.length = 512;
  RepairDoc reused(gen::RandomBalanced(balanced, 99),
                   /*target_chunk_size=*/32);
  Rng rng(7);
  RepairResult from_reused, from_fresh;
  for (int e = 0; e < 20; ++e) {
    RandomSplice(rng, &reused);
    if (e % 4 != 3) continue;  // repair every few edits, like an editor
    ASSERT_TRUE(reused.RepairInto(options, &from_reused).ok());
    RepairDoc fresh{ParenSeq(reused.tokens())};
    ASSERT_TRUE(fresh.RepairInto(options, &from_fresh).ok());
    ExpectIdentical(from_reused, from_fresh, "edit=" + std::to_string(e));
  }
}

TEST(IncrementalTest, FuzzInterleavedSplicesAndRepairs) {
  // Fuzz-harness mode: random splices interleaved with repairs under
  // randomized options; every successful repair must validate and match
  // the eager pipeline.
  for (uint64_t seed = 70; seed < 76; ++seed) {
    Rng rng(seed);
    gen::BalancedOptions balanced;
    balanced.length = 64 + rng.Below(256);
    RepairDoc doc(gen::RandomBalanced(balanced, seed),
                  /*target_chunk_size=*/16 + rng.Below(48));
    RepairResult result;
    for (int step = 0; step < 40; ++step) {
      if (rng.Next() % 3 != 0) {
        RandomSplice(rng, &doc);
        continue;
      }
      Options options;
      options.metric = rng.Next() % 2 == 0
                           ? Metric::kDeletionsOnly
                           : Metric::kDeletionsAndSubstitutions;
      if (rng.Next() % 4 == 0) options.max_approximation_factor = 2.0;
      const std::string what =
          "seed=" + std::to_string(seed) + " step=" + std::to_string(step);
      const Status status = doc.RepairInto(options, &result);
      const auto eager = Repair(doc.tokens(), options);
      ASSERT_EQ(status.ok(), eager.ok()) << what;
      if (!status.ok()) continue;
      ExpectIdentical(result, *eager, what);
      const bool subs = options.metric == Metric::kDeletionsAndSubstitutions;
      EXPECT_TRUE(ValidateScript(doc.tokens(), result.script,
                                 result.distance, subs)
                      .ok())
          << what;
    }
  }
}

TEST(IncrementalTest, GrowFromEmptyAndShrinkToEmpty) {
  RepairDoc doc;
  RepairResult result;
  Options options;
  ASSERT_TRUE(doc.RepairInto(options, &result).ok());
  EXPECT_EQ(result.distance, 0);

  Rng rng(123);
  // Grow to ~200 tokens in small appends, repairing as we go.
  while (doc.size() < 200) {
    doc.Splice(doc.size(), 0, RandomInsert(rng, 8));
    ASSERT_TRUE(doc.RepairInto(options, &result).ok());
    const auto eager = Repair(doc.tokens(), options);
    ASSERT_TRUE(eager.ok());
    ExpectIdentical(result, *eager, "grow to " + std::to_string(doc.size()));
  }
  // Shrink back to empty from the front.
  while (doc.size() > 0) {
    doc.Splice(0, std::min<int64_t>(doc.size(), 16), ParenSpan());
    ASSERT_TRUE(doc.RepairInto(options, &result).ok());
    const auto eager = Repair(doc.tokens(), options);
    ASSERT_TRUE(eager.ok());
    ExpectIdentical(result, *eager,
                    "shrink to " + std::to_string(doc.size()));
  }
  EXPECT_EQ(result.distance, 0);
}

}  // namespace
}  // namespace dyck
