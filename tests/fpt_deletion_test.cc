#include <gtest/gtest.h>

#include <random>

#include "src/alphabet/parse.h"
#include "src/baseline/cubic.h"
#include "src/fpt/deletion.h"
#include "src/gen/workload.h"

namespace dyck {
namespace {

ParenSeq Parse(const std::string& text) {
  return ParenAlphabet::Default().Parse(text).value();
}

ParenSeq RandomSeq(int64_t n, int32_t types, std::mt19937_64& rng) {
  ParenSeq seq;
  for (int64_t i = 0; i < n; ++i) {
    seq.push_back(
        Paren{static_cast<ParenType>(rng() % types), rng() % 2 == 0});
  }
  return seq;
}

TEST(FptDeletionTest, HandpickedCases) {
  EXPECT_EQ(FptDeletionDistance({}), 0);
  EXPECT_EQ(FptDeletionDistance(Parse("()")), 0);
  EXPECT_EQ(FptDeletionDistance(Parse("(")), 1);
  EXPECT_EQ(FptDeletionDistance(Parse(")(")), 2);
  EXPECT_EQ(FptDeletionDistance(Parse("(]")), 2);
  EXPECT_EQ(FptDeletionDistance(Parse("([)]")), 2);
  EXPECT_EQ(FptDeletionDistance(Parse("(()){}")), 0);
  EXPECT_EQ(FptDeletionDistance(Parse("((((")), 4);
}

// The backbone differential suite: FPT vs the cubic oracle on fully random
// (usually heavily corrupt) short sequences.
class FptDeletionRandomTest
    : public ::testing::TestWithParam<std::tuple<int32_t, int64_t>> {};

TEST_P(FptDeletionRandomTest, MatchesCubicOracle) {
  const auto [types, max_len] = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(types) * 1000 + max_len);
  for (int trial = 0; trial < 200; ++trial) {
    const ParenSeq seq = RandomSeq(rng() % max_len, types, rng);
    const int64_t truth = CubicDistance(seq, false);
    EXPECT_EQ(FptDeletionDistance(seq), truth) << ToString(seq);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FptDeletionRandomTest,
    ::testing::Combine(::testing::Values<int32_t>(1, 2, 4),
                       ::testing::Values<int64_t>(8, 16, 28)));

// Realistic regime: balanced sequences with few corruptions, longer inputs.
class FptDeletionCorruptionTest
    : public ::testing::TestWithParam<
          std::tuple<int64_t, int64_t, gen::Shape>> {};

TEST_P(FptDeletionCorruptionTest, MatchesCubicOnCorruptedBalanced) {
  const auto [length, edits, shape] = GetParam();
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const ParenSeq base = gen::RandomBalanced(
        {.length = length, .num_types = 3, .shape = shape}, seed);
    const gen::CorruptedSequence corrupted = gen::Corrupt(
        base, {.num_edits = edits, .num_types = 3}, seed + 99);
    const int64_t truth = CubicDistance(corrupted.seq, false);
    ASSERT_LE(truth, corrupted.edit1_bound);
    EXPECT_EQ(FptDeletionDistance(corrupted.seq), truth)
        << ToString(corrupted.seq);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FptDeletionCorruptionTest,
    ::testing::Combine(::testing::Values<int64_t>(24, 60, 120),
                       ::testing::Values<int64_t>(1, 2, 4),
                       ::testing::Values(gen::Shape::kUniform,
                                         gen::Shape::kDeep,
                                         gen::Shape::kFlat)));

TEST(FptDeletionTest, QuadraticOracleBackendAgrees) {
  // Theorem 25's backend must compute the same distances as Theorem 26's.
  std::mt19937_64 rng(909);
  for (int trial = 0; trial < 150; ++trial) {
    const ParenSeq seq = RandomSeq(rng() % 24, 3, rng);
    const int64_t truth = CubicDistance(seq, false);
    DeletionSolver thm25(seq, DeletionOracleKind::kQuadraticTable);
    const auto got = thm25.Distance(static_cast<int32_t>(seq.size() + 1));
    ASSERT_TRUE(got.has_value()) << ToString(seq);
    EXPECT_EQ(*got, truth) << ToString(seq);
  }
}

TEST(FptDeletionTest, BoundedDistanceRefusesWhenTooSmall) {
  DeletionSolver solver(Parse("(((("));
  EXPECT_FALSE(solver.Distance(3).has_value());
  EXPECT_EQ(*solver.Distance(4), 4);
  // Solver instances are reusable across bounds (the doubling driver).
  EXPECT_FALSE(solver.Distance(1).has_value());
  EXPECT_EQ(*solver.Distance(8), 4);
}

TEST(FptDeletionTest, ReducedSizeReflectsPreprocessing) {
  DeletionSolver solver(Parse("((()))[]"));
  EXPECT_EQ(solver.reduced_size(), 0);
  DeletionSolver solver2(Parse("((]"));
  EXPECT_EQ(solver2.reduced_size(), 3);
}

TEST(FptDeletionRepairTest, ScriptsValidateOnRandomInputs) {
  std::mt19937_64 rng(4242);
  for (int trial = 0; trial < 150; ++trial) {
    const ParenSeq seq = RandomSeq(rng() % 20, 3, rng);
    const FptResult result = FptDeletionRepair(seq);
    EXPECT_EQ(result.distance, CubicDistance(seq, false)) << ToString(seq);
    const Status status =
        ValidateScript(seq, result.script, result.distance, false);
    EXPECT_TRUE(status.ok()) << status << " on " << ToString(seq);
  }
}

TEST(FptDeletionRepairTest, ScriptsValidateOnCorruptedBalanced) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const ParenSeq base =
        gen::RandomBalanced({.length = 200, .num_types = 4}, seed);
    const gen::CorruptedSequence corrupted =
        gen::Corrupt(base, {.num_edits = 3, .num_types = 4}, seed * 7 + 1);
    const FptResult result = FptDeletionRepair(corrupted.seq);
    EXPECT_LE(result.distance, corrupted.edit1_bound);
    const Status status = ValidateScript(corrupted.seq, result.script,
                                         result.distance, false);
    EXPECT_TRUE(status.ok()) << status;
  }
}

TEST(FptDeletionTest, LongNearlyBalancedInput) {
  // n = 20000 with d = 2: exercises the O(n)-preprocessing path end to end.
  const ParenSeq base =
      gen::RandomBalanced({.length = 20000, .num_types = 4}, 5);
  gen::CorruptedSequence corrupted = gen::Corrupt(
      base, {.num_edits = 2, .kind = gen::CorruptionKind::kDelete}, 6);
  const int64_t d = FptDeletionDistance(corrupted.seq);
  EXPECT_GE(d, 1);
  EXPECT_LE(d, 2);
}

TEST(FptDeletionTest, AlignedPairsDoNotCross) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const ParenSeq base =
        gen::RandomBalanced({.length = 60, .num_types = 2}, seed);
    const gen::CorruptedSequence corrupted =
        gen::Corrupt(base, {.num_edits = 2, .num_types = 2}, seed + 5);
    const FptResult result = FptDeletionRepair(corrupted.seq);
    // Alignment arcs must be properly nested (no crossings) and typed.
    auto pairs = result.script.aligned_pairs;
    for (const auto& [a, b] : pairs) {
      ASSERT_LT(a, b);
      EXPECT_TRUE(corrupted.seq[a].Matches(corrupted.seq[b]));
    }
    for (size_t x = 0; x < pairs.size(); ++x) {
      for (size_t y = x + 1; y < pairs.size(); ++y) {
        const auto& [a1, b1] = pairs[x];
        const auto& [a2, b2] = pairs[y];
        const bool disjoint = b1 < a2 || b2 < a1;
        const bool nested = (a1 < a2 && b2 < b1) || (a2 < a1 && b1 < b2);
        EXPECT_TRUE(disjoint || nested)
            << "crossing arcs (" << a1 << "," << b1 << ") vs (" << a2 << ","
            << b2 << ")";
      }
    }
  }
}

}  // namespace
}  // namespace dyck
