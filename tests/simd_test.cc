// Differential tests for the vector kernel layer (src/simd): every kernel,
// on every backend compiled into this binary and usable on this CPU, is
// pinned byte-identical to an independent plain-loop reference across
// adversarial shapes, sizes around every vector-width boundary, unaligned
// span starts, and resumed scans. ForceVectorPathForTest() bypasses the
// size thresholds and the run-heaviness probe so the vector code paths run
// even on tiny inputs.

#include <cstdlib>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/alphabet/paren.h"
#include "src/simd/greedy_kernel.h"
#include "src/simd/simd.h"

namespace dyck {
namespace {

using simd::Backend;

// ---------------------------------------------------------------------------
// Independent references (plain loops, written against the documented
// contracts rather than the scalar backend's code).

simd::SpanHeight RefSummarize(const ParenSeq& s) {
  simd::SpanHeight out;
  for (const Paren& p : s) {
    out.net += p.is_open ? +1 : -1;
    if (out.net < out.min_prefix) out.min_prefix = out.net;
  }
  return out;
}

bool RefBalanced(const ParenSeq& s) {
  std::vector<ParenType> stack;
  for (const Paren& p : s) {
    if (p.is_open) {
      stack.push_back(p.type);
    } else if (!stack.empty() && stack.back() == p.type) {
      stack.pop_back();
    } else {
      return false;
    }
  }
  return stack.empty();
}

void RefReduce(const ParenSeq& s, std::vector<int64_t>* kept,
               std::vector<std::pair<int64_t, int64_t>>* pairs) {
  kept->clear();
  for (int64_t i = 0; i < static_cast<int64_t>(s.size()); ++i) {
    const Paren& p = s[i];
    if (!p.is_open && !kept->empty() && s[kept->back()].Matches(p)) {
      pairs->emplace_back(kept->back(), i);
      kept->pop_back();
    } else {
      kept->push_back(i);
    }
  }
}

int64_t RefGreedyAdvance(const Paren* data, int64_t n, int64_t i,
                         bool reversed_flipped,
                         std::vector<GreedyEntry>* stack,
                         std::vector<std::pair<int64_t, int64_t>>* pairs) {
  while (i < n) {
    Paren p = data[reversed_flipped ? n - 1 - i : i];
    if (reversed_flipped) p.is_open = !p.is_open;
    if (p.is_open) {
      stack->push_back({p.type, i, -1});
    } else if (!stack->empty() && stack->back().type == p.type) {
      if (pairs != nullptr) pairs->emplace_back(stack->back().pos, i);
      stack->pop_back();
    } else {
      return i;
    }
    ++i;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Corpus generators.

ParenSeq Uniform(size_t n, int types, uint32_t seed) {
  std::mt19937 rng(seed);
  ParenSeq s(n);
  for (auto& p : s) {
    p.type = static_cast<ParenType>(rng() % types);
    p.is_open = (rng() & 1) != 0;
  }
  return s;
}

ParenSeq Balanced(size_t n, int types, uint32_t seed) {
  std::mt19937 rng(seed);
  ParenSeq s;
  s.reserve(n);
  std::vector<ParenType> stack;
  for (size_t i = 0; i < n; ++i) {
    const size_t remaining = n - i;
    const bool must_close = stack.size() >= remaining;
    const bool must_open = stack.empty();
    if (must_open || (!must_close && (rng() & 1) != 0)) {
      const auto t = static_cast<ParenType>(rng() % types);
      stack.push_back(t);
      s.push_back(Paren::Open(t));
    } else {
      s.push_back(Paren::Close(stack.back()));
      stack.pop_back();
    }
  }
  return s;
}

// Long monotone runs: the shape the run-heaviness probe steers to scalar.
ParenSeq Runs(size_t n, int types, uint32_t seed) {
  std::mt19937 rng(seed);
  ParenSeq s;
  s.reserve(n);
  while (s.size() < n) {
    const size_t len = std::min<size_t>(1 + rng() % 200, n - s.size());
    const bool open = (rng() & 1) != 0;
    const auto t = static_cast<ParenType>(rng() % types);
    for (size_t j = 0; j < len; ++j) {
      s.push_back(open ? Paren::Open(t) : Paren::Close(t));
    }
  }
  return s;
}

std::vector<ParenSeq> Corpus() {
  const size_t sizes[] = {0,  1,  2,   7,   8,   9,    15,   16,  17,
                          31, 32, 33,  63,  64,  65,   100,  255, 256,
                          257, 1023, 1024, 4096, 4097, 8192, 20000};
  std::vector<ParenSeq> out;
  uint32_t seed = 1;
  for (const size_t n : sizes) {
    out.push_back(Uniform(n, 1, seed++));
    out.push_back(Uniform(n, 3, seed++));
    out.push_back(Balanced(n & ~size_t{1}, 4, seed++));
    out.push_back(Runs(n, 2, seed++));
    // Balanced with one flipped symbol: balanced shape, type conflict.
    ParenSeq mut = Balanced(n & ~size_t{1}, 4, seed++);
    if (!mut.empty()) mut[mut.size() / 2].type += 1;
    out.push_back(std::move(mut));
  }
  // Extremes around the block width.
  for (const size_t n : {8u, 64u, 4096u}) {
    out.emplace_back(n, Paren::Open(0));
    out.emplace_back(n, Paren::Close(0));
    ParenSeq alt(n);
    for (size_t i = 0; i < n; ++i) alt[i] = (i & 1) ? Paren::Close(0)
                                                    : Paren::Open(0);
    out.push_back(std::move(alt));
  }
  return out;
}

// An unaligned view of the same symbols: copy into a buffer at element
// offset 1/2/3 so vector loads start off any 16/32-byte boundary.
ParenSeq Shifted(const ParenSeq& s, size_t shift, ParenSpan* view) {
  ParenSeq buf(s.size() + shift + 8, Paren::Open(7));
  std::copy(s.begin(), s.end(), buf.begin() + shift);
  *view = ParenSpan(buf.data() + shift, s.size());
  return buf;
}

class SimdBackendTest : public ::testing::Test {
 protected:
  void TearDown() override {
    simd::ClearForcedBackend();
    simd::ForceVectorPathForTest(false);
  }

  // Runs `body` once per available backend with dispatch pinned to it and
  // the vector path forced, under a SCOPED_TRACE naming the backend.
  template <typename Body>
  void ForEachBackend(Body body) {
    for (const Backend b : simd::AvailableBackends()) {
      SCOPED_TRACE(simd::BackendName(b));
      ASSERT_TRUE(simd::ForceBackend(b));
      simd::ForceVectorPathForTest(true);
      body();
    }
  }
};

// ---------------------------------------------------------------------------
// Span kernels.

TEST_F(SimdBackendTest, SummarizeMatchesReference) {
  const auto corpus = Corpus();
  ForEachBackend([&] {
    for (const ParenSeq& s : corpus) {
      const simd::SpanHeight want = RefSummarize(s);
      const simd::SpanHeight got = simd::Summarize(s.data(), s.size());
      ASSERT_EQ(want.net, got.net) << "n=" << s.size();
      ASSERT_EQ(want.min_prefix, got.min_prefix) << "n=" << s.size();
    }
  });
}

TEST_F(SimdBackendTest, IsBalancedSpanMatchesReference) {
  const auto corpus = Corpus();
  ForEachBackend([&] {
    for (const ParenSeq& s : corpus) {
      ASSERT_EQ(RefBalanced(s), simd::IsBalancedSpan(s.data(), s.size()))
          << "n=" << s.size();
    }
  });
}

TEST_F(SimdBackendTest, ReduceSpanMatchesReference) {
  const auto corpus = Corpus();
  ForEachBackend([&] {
    for (const ParenSeq& s : corpus) {
      std::vector<int64_t> want_kept;
      std::vector<std::pair<int64_t, int64_t>> want_pairs;
      want_pairs.emplace_back(-11, -22);  // sentinel: appended to, not cleared
      RefReduce(s, &want_kept, &want_pairs);

      std::vector<int64_t> kept;
      std::vector<std::pair<int64_t, int64_t>> pairs;
      pairs.emplace_back(-11, -22);
      simd::SpanHeight height;
      simd::ReduceSpan(s.data(), s.size(), &kept, &pairs, &height);

      ASSERT_EQ(want_kept, kept) << "n=" << s.size();
      ASSERT_EQ(want_pairs, pairs) << "n=" << s.size();
      const simd::SpanHeight want_h = RefSummarize(s);
      ASSERT_EQ(want_h.net, height.net);
      ASSERT_EQ(want_h.min_prefix, height.min_prefix);
    }
  });
}

TEST_F(SimdBackendTest, UnalignedSpansMatchReference) {
  const ParenSeq base = Uniform(1000, 3, 77);
  ForEachBackend([&] {
    for (const size_t shift : {1u, 2u, 3u, 5u}) {
      ParenSpan view;
      const ParenSeq buf = Shifted(base, shift, &view);
      const simd::SpanHeight want = RefSummarize(base);
      const simd::SpanHeight got = simd::Summarize(view.data(), view.size());
      ASSERT_EQ(want.net, got.net) << "shift=" << shift;
      ASSERT_EQ(want.min_prefix, got.min_prefix);
      std::vector<int64_t> want_kept, kept;
      std::vector<std::pair<int64_t, int64_t>> want_pairs, pairs;
      RefReduce(base, &want_kept, &want_pairs);
      simd::ReduceSpan(view.data(), view.size(), &kept, &pairs, nullptr);
      ASSERT_EQ(want_kept, kept) << "shift=" << shift;
      ASSERT_EQ(want_pairs, pairs);
    }
  });
}

// A toy delete-on-conflict scan driven by GreedyAdvance, so resumed calls
// (i > 0, live stack, preserved deep entries) are exercised, forwards and
// through the reversed-flipped view.
TEST_F(SimdBackendTest, GreedyAdvanceMatchesReference) {
  const auto corpus = Corpus();
  ForEachBackend([&] {
    for (const ParenSeq& s : corpus) {
      for (const bool rev : {false, true}) {
        for (const bool with_pairs : {false, true}) {
          const auto n = static_cast<int64_t>(s.size());
          std::vector<GreedyEntry> want_stack{{1000, -5, 42}};
          std::vector<GreedyEntry> stack{{1000, -5, 42}};
          std::vector<std::pair<int64_t, int64_t>> want_pairs, pairs;
          std::vector<int64_t> want_stops, stops;
          for (int64_t i = 0; i < n;) {
            i = RefGreedyAdvance(s.data(), n, i, rev, &want_stack,
                                 with_pairs ? &want_pairs : nullptr);
            if (i < n) want_stops.push_back(i);
            ++i;
          }
          for (int64_t i = 0; i < n;) {
            i = simd::GreedyAdvance(s.data(), n, i, rev, &stack,
                                    with_pairs ? &pairs : nullptr);
            if (i < n) stops.push_back(i);
            ++i;
          }
          ASSERT_EQ(want_stops, stops)
              << "n=" << n << " rev=" << rev << " pairs=" << with_pairs;
          ASSERT_EQ(want_pairs, pairs) << "n=" << n << " rev=" << rev;
          ASSERT_EQ(want_stack.size(), stack.size()) << "n=" << n;
          for (size_t k = 0; k < stack.size(); ++k) {
            ASSERT_EQ(want_stack[k].type, stack[k].type);
            ASSERT_EQ(want_stack[k].pos, stack[k].pos);
            ASSERT_EQ(want_stack[k].op_index, stack[k].op_index);
          }
        }
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Byte kernels.

TEST_F(SimdBackendTest, FindByteMatchesReference) {
  std::mt19937 rng(9);
  ForEachBackend([&] {
    for (const size_t n : {0u, 1u, 15u, 16u, 31u, 32u, 33u, 100u, 1000u}) {
      std::string s(n, 'x');
      for (auto& c : s) c = static_cast<char>('a' + rng() % 4);
      for (const char needle : {'a', 'z', '\n'}) {
        size_t want = s.find(needle);
        if (want == std::string::npos) want = n;
        ASSERT_EQ(want, simd::FindByte(s.data(), n, needle))
            << "n=" << n << " needle=" << needle;
      }
      if (n > 2) {
        s[n - 1] = '\n';
        ASSERT_EQ(n - 1, simd::FindByte(s.data(), n, '\n'));
      }
    }
  });
}

TEST_F(SimdBackendTest, TokenizeMatchesReference) {
  // "(){}[]<>" style map plus a couple of multi-char types.
  int32_t char_map[256];
  for (auto& e : char_map) e = -1;
  const std::string opens = "([{<";
  const std::string closes = ")]}>";
  for (int t = 0; t < 4; ++t) {
    char_map[static_cast<unsigned char>(opens[t])] = (t << 1) | 1;
    char_map[static_cast<unsigned char>(closes[t])] = t << 1;
  }
  simd::ByteSet set;
  simd::BuildByteSet(char_map, &set);
  ASSERT_TRUE(set.usable);

  std::mt19937 rng(13);
  const std::string mixed = "([{<)]}> \tax\n\xC3\xA9";
  ForEachBackend([&] {
    for (const size_t n : {0u, 1u, 31u, 32u, 33u, 64u, 100u, 1000u, 4096u}) {
      std::string all_mapped(n, '(');
      for (auto& c : all_mapped) {
        c = (rng() & 1) ? opens[rng() % 4] : closes[rng() % 4];
      }
      std::string noisy(n, ' ');
      for (auto& c : noisy) c = mixed[rng() % mixed.size()];

      for (const std::string* sp : {&all_mapped, &noisy}) {
        const std::string& str = *sp;
        // Strict reference: stop at first unmapped char.
        size_t want_k = 0;
        std::vector<Paren> want(n);
        while (want_k < n &&
               char_map[static_cast<unsigned char>(str[want_k])] >= 0) {
          const int32_t e = char_map[static_cast<unsigned char>(str[want_k])];
          want[want_k] = Paren{e >> 1, (e & 1) != 0};
          ++want_k;
        }
        std::vector<Paren> got(n);
        const size_t k =
            simd::Tokenize(str.data(), n, char_map, set, got.data());
        ASSERT_EQ(want_k, k) << "n=" << n;
        for (size_t i = 0; i < k; ++i) ASSERT_EQ(want[i], got[i]) << i;

        // Lenient reference: keep every mapped char.
        std::vector<Paren> want_l;
        for (size_t i = 0; i < n; ++i) {
          const int32_t e = char_map[static_cast<unsigned char>(str[i])];
          if (e >= 0) want_l.push_back(Paren{e >> 1, (e & 1) != 0});
        }
        std::vector<Paren> got_l(n);
        const size_t written = simd::TokenizeLenient(str.data(), n, char_map,
                                                     set, got_l.data());
        ASSERT_EQ(want_l.size(), written) << "n=" << n;
        for (size_t i = 0; i < written; ++i) ASSERT_EQ(want_l[i], got_l[i]);
      }
    }
  });
}

TEST(SimdByteSetTest, HighBitAlphabetIsUnusableButCorrect) {
  int32_t char_map[256];
  for (auto& e : char_map) e = -1;
  char_map[static_cast<unsigned char>('(')] = 1;
  char_map[static_cast<unsigned char>(')')] = 0;
  char_map[0xE9] = 3;  // a high-bit open: defeats the PSHUFB classifier
  char_map[0xE8] = 2;
  simd::ByteSet set;
  simd::BuildByteSet(char_map, &set);
  EXPECT_FALSE(set.usable);
  const std::string s = "(()\xE9\xE8)x()";
  std::vector<Paren> out(s.size());
  const size_t k =
      simd::Tokenize(s.data(), s.size(), char_map, set, out.data());
  EXPECT_EQ(6u, k);  // stops at 'x'
  EXPECT_EQ(Paren::Open(1), out[3]);
  EXPECT_EQ(Paren::Close(1), out[4]);
}

// ---------------------------------------------------------------------------
// Wave combine kernel.

TEST_F(SimdBackendTest, WaveCombineRowMatchesReference) {
  constexpr int64_t kUnreached = -2;
  std::mt19937 rng(21);
  ForEachBackend([&] {
    for (const int64_t span : {0, 1, 2, 3, 4, 7, 8, 16, 33, 100}) {
      const int64_t stride = 2 * span + 1;
      for (int rep = 0; rep < 8; ++rep) {
        const int64_t a_len = static_cast<int64_t>(rng() % 200);
        const int64_t b_len = static_cast<int64_t>(rng() % 200);
        const bool subs = (rng() & 1) != 0;
        std::vector<int64_t> prev(stride);
        for (auto& v : prev) {
          const uint32_t r = rng() % 10;
          v = r == 0 ? kUnreached
                     : (r == 1 ? -1
                               : static_cast<int64_t>(rng() % (a_len + 2)));
        }
        // Reference: scalar combine over an explicitly padded row.
        std::vector<int64_t> padded(prev.size() + 4, kUnreached);
        std::copy(prev.begin(), prev.end(), padded.begin() + 2);
        std::vector<int64_t> want(stride);
        for (int64_t idx = 0; idx < stride; ++idx) {
          const int64_t k = idx - span;
          const int64_t* row = padded.data() + 2;
          int64_t best = row[idx];
          const auto consider = [&](int64_t dd, int64_t rd) {
            int64_t src = row[idx + dd];
            if (src == kUnreached) return;
            src = std::min(src, a_len - rd);
            src = std::min(src, b_len - k - rd);
            if (src < 0 || src + k + dd < 0) return;
            const int64_t r = src + rd;
            if (r < 0 || r + k < 0) return;
            best = std::max(best, r);
          };
          consider(+1, +1);
          consider(-1, 0);
          if (subs) {
            consider(0, +1);
            consider(+2, +2);
            consider(-2, 0);
          }
          want[idx] = best;
        }
        std::vector<int64_t> got(stride, -99);
        std::vector<int64_t> scratch;
        simd::WaveCombineRow(prev.data(), span, a_len, b_len, subs,
                             kUnreached, got.data(), &scratch);
        ASSERT_EQ(want, got) << "span=" << span << " subs=" << subs
                             << " a=" << a_len << " b=" << b_len;
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Adaptive drivers (no forcing): thresholds and the run-heaviness probe
// must change timing only, never results.

TEST(SimdAdaptiveTest, DefaultDispatchMatchesReferenceOnLargeSpans) {
  simd::ClearForcedBackend();
  simd::ForceVectorPathForTest(false);
  for (const ParenSeq& s :
       {Uniform(65536, 3, 5), Balanced(65536, 4, 6), Runs(65536, 2, 7)}) {
    EXPECT_EQ(RefBalanced(s), simd::IsBalancedSpan(s.data(), s.size()));
    const simd::SpanHeight want = RefSummarize(s);
    const simd::SpanHeight got = simd::Summarize(s.data(), s.size());
    EXPECT_EQ(want.net, got.net);
    EXPECT_EQ(want.min_prefix, got.min_prefix);
    std::vector<int64_t> want_kept, kept;
    std::vector<std::pair<int64_t, int64_t>> want_pairs, pairs;
    RefReduce(s, &want_kept, &want_pairs);
    simd::ReduceSpan(s.data(), s.size(), &kept, &pairs, nullptr);
    EXPECT_EQ(want_kept, kept);
    EXPECT_EQ(want_pairs, pairs);
  }
}

// ---------------------------------------------------------------------------
// Dispatch plumbing.

TEST(SimdDispatchTest, BackendNamesRoundTrip) {
  for (const Backend b : simd::kAllBackends) {
    Backend parsed;
    ASSERT_TRUE(simd::ParseBackendName(simd::BackendName(b), &parsed));
    EXPECT_EQ(b, parsed);
  }
  Backend parsed;
  EXPECT_FALSE(simd::ParseBackendName("AVX2", &parsed));
  EXPECT_FALSE(simd::ParseBackendName("", &parsed));
  EXPECT_FALSE(simd::ParseBackendName("sse", &parsed));
}

TEST(SimdDispatchTest, ScalarAlwaysAvailableAndListedFirst) {
  EXPECT_TRUE(simd::BackendAvailable(Backend::kScalar));
  const auto avail = simd::AvailableBackends();
  ASSERT_FALSE(avail.empty());
  EXPECT_EQ(Backend::kScalar, avail.front());
}

TEST(SimdDispatchTest, ForceBackendRejectsUnavailable) {
  const auto avail = simd::AvailableBackends();
  for (const Backend b : simd::kAllBackends) {
    const bool is_avail =
        std::find(avail.begin(), avail.end(), b) != avail.end();
    EXPECT_EQ(is_avail, simd::ForceBackend(b)) << simd::BackendName(b);
  }
  simd::ClearForcedBackend();
}

TEST(SimdDispatchTest, CheckEnvDiagnoses) {
  ASSERT_EQ(0, setenv("DYCKFIX_SIMD", "quantum", 1));
  std::string error;
  EXPECT_FALSE(simd::CheckEnv(&error));
  EXPECT_NE(std::string::npos, error.find("quantum"));
  EXPECT_NE(std::string::npos, error.find("valid values"));

  ASSERT_EQ(0, setenv("DYCKFIX_SIMD", "scalar", 1));
  error.clear();
  EXPECT_TRUE(simd::CheckEnv(&error));
  EXPECT_TRUE(error.empty());

  // An unavailable-but-valid name reports availability, not spelling.
  const auto avail = simd::AvailableBackends();
  for (const Backend b : simd::kAllBackends) {
    if (std::find(avail.begin(), avail.end(), b) != avail.end()) continue;
    ASSERT_EQ(0, setenv("DYCKFIX_SIMD", simd::BackendName(b), 1));
    error.clear();
    EXPECT_FALSE(simd::CheckEnv(&error));
    EXPECT_NE(std::string::npos, error.find("not available"));
    break;
  }
  ASSERT_EQ(0, unsetenv("DYCKFIX_SIMD"));
  EXPECT_TRUE(simd::CheckEnv(nullptr));
}

}  // namespace
}  // namespace dyck
