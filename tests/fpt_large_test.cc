// Large-n differential regression tests.
//
// The cubic oracle is unusable beyond a few thousand symbols, so these
// sweeps validate the FPT solvers against the 2^{O(d)} n branching
// baseline on inputs big enough to produce deep reduced profiles — the
// regime where Case 2's height-window pruning actually prunes. This suite
// exists because of a real bug: an over-aggressive reading of the paper's
// "l := max_i h(i)" window (anchoring at the global maximum instead of the
// highest intermediate peak) passed every small-n test and failed only
// once reduced profiles grew deeper than 10d.

#include <gtest/gtest.h>

#include "src/baseline/branching.h"
#include "src/fpt/deletion.h"
#include "src/fpt/substitution.h"
#include "src/gen/workload.h"

namespace dyck {
namespace {

class FptLargeTest : public ::testing::TestWithParam<
                         std::tuple<int64_t, int64_t, gen::Shape>> {};

TEST_P(FptLargeTest, MatchesBranchingOracle) {
  const auto [n, edits, shape] = GetParam();
  for (uint64_t seed = 7; seed < 11; ++seed) {
    const ParenSeq base = gen::RandomBalanced(
        {.length = n, .num_types = 3, .shape = shape}, seed);
    const gen::CorruptedSequence corrupted = gen::Corrupt(
        base, {.num_edits = edits, .num_types = 3}, seed + 1);
    const auto branch1 =
        BranchingDistance(corrupted.seq, false, corrupted.edit1_bound);
    ASSERT_TRUE(branch1.has_value());
    EXPECT_EQ(FptDeletionDistance(corrupted.seq), *branch1)
        << "n=" << n << " edits=" << edits << " seed=" << seed;
    const auto branch2 =
        BranchingDistance(corrupted.seq, true, corrupted.edit2_bound);
    ASSERT_TRUE(branch2.has_value());
    EXPECT_EQ(FptSubstitutionDistance(corrupted.seq), *branch2)
        << "n=" << n << " edits=" << edits << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FptLargeTest,
    ::testing::Combine(::testing::Values<int64_t>(1 << 12, 1 << 15,
                                                  1 << 18),
                       ::testing::Values<int64_t>(2, 4),
                       ::testing::Values(gen::Shape::kUniform,
                                         gen::Shape::kDeep)));

TEST(FptLargeTest, RegressionGlobalMaxVsIntermediatePeakWindow) {
  // The exact workload that exposed the window bug: n = 2^18, four mixed
  // corruptions, reduced profile ~3200 symbols deep with intermediate
  // peaks ~850 below the top.
  const ParenSeq base = gen::RandomBalanced(
      {.length = 1 << 18, .num_types = 3}, /*seed=*/7);
  const gen::CorruptedSequence corrupted =
      gen::Corrupt(base, {.num_edits = 4, .num_types = 3}, /*seed=*/8);
  DeletionSolver solver(corrupted.seq);
  const auto d16 = solver.Distance(16);
  ASSERT_TRUE(d16.has_value());
  EXPECT_EQ(*d16, 5);
}

TEST(FptLargeTest, ScriptsValidateOnDeepLargeInputs) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    const ParenSeq base = gen::RandomBalanced(
        {.length = 1 << 15, .num_types = 4, .shape = gen::Shape::kDeep},
        seed);
    const gen::CorruptedSequence corrupted =
        gen::Corrupt(base, {.num_edits = 3, .num_types = 4}, seed + 50);
    const FptResult del = FptDeletionRepair(corrupted.seq);
    EXPECT_TRUE(
        ValidateScript(corrupted.seq, del.script, del.distance, false).ok());
    const FptResult sub = FptSubstitutionRepair(corrupted.seq);
    EXPECT_TRUE(
        ValidateScript(corrupted.seq, sub.script, sub.distance, true).ok());
    EXPECT_LE(sub.distance, del.distance);
  }
}

}  // namespace
}  // namespace dyck
