// Cross-product coverage of the public Options knobs: every (metric x
// algorithm x style x bound) combination must agree on distances, produce
// valid scripts, and fail cleanly when bounded.

#include <gtest/gtest.h>

#include <random>

#include "src/baseline/cubic.h"
#include "src/core/dyck.h"
#include "src/gen/workload.h"

namespace dyck {
namespace {

ParenSeq RandomSeq(int64_t n, std::mt19937_64& rng) {
  ParenSeq seq;
  for (int64_t i = 0; i < n; ++i) {
    seq.push_back(Paren{static_cast<ParenType>(rng() % 3), rng() % 2 == 0});
  }
  return seq;
}

TEST(OptionsGridTest, FullGridAgreesAndValidates) {
  std::mt19937_64 rng(0xFEED);
  for (int trial = 0; trial < 30; ++trial) {
    const ParenSeq seq = RandomSeq(rng() % 14, rng);
    for (const Metric metric :
         {Metric::kDeletionsOnly, Metric::kDeletionsAndSubstitutions}) {
      const bool subs = metric == Metric::kDeletionsAndSubstitutions;
      const int64_t truth = CubicDistance(seq, subs);
      for (const Algorithm algorithm :
           {Algorithm::kAuto, Algorithm::kFpt, Algorithm::kCubic,
            Algorithm::kBranching}) {
        for (const RepairStyle style :
             {RepairStyle::kMinimalEdits, RepairStyle::kPreserveContent}) {
          const Options options{metric, algorithm, style, -1};
          const auto distance = Distance(seq, options);
          ASSERT_TRUE(distance.ok()) << distance.status();
          EXPECT_EQ(*distance, truth) << ToString(seq);
          const auto repair = Repair(seq, options);
          ASSERT_TRUE(repair.ok()) << repair.status();
          EXPECT_EQ(repair->distance, truth);
          EXPECT_TRUE(IsBalanced(repair->repaired)) << ToString(seq);
          const bool inserts = style == RepairStyle::kPreserveContent;
          EXPECT_TRUE(ValidateScript(seq, repair->script, truth, subs,
                                     inserts)
                          .ok())
              << ToString(seq);
          if (inserts) {
            for (const EditOp& op : repair->script.ops) {
              EXPECT_NE(op.kind, EditOpKind::kDelete);
            }
          }
        }
      }
    }
  }
}

TEST(OptionsGridTest, MaxDistanceAcrossAlgorithms) {
  const ParenSeq seq =
      ParenAlphabet::Default().Parse("((((((((").value();  // edit1 = 8
  for (const Algorithm algorithm :
       {Algorithm::kFpt, Algorithm::kCubic, Algorithm::kBranching}) {
    Options tight{Metric::kDeletionsOnly, algorithm,
                  RepairStyle::kMinimalEdits, 3};
    EXPECT_TRUE(Distance(seq, tight).status().IsBoundExceeded())
        << static_cast<int>(algorithm);
    EXPECT_TRUE(Repair(seq, tight).status().IsBoundExceeded());
    Options loose{Metric::kDeletionsOnly, algorithm,
                  RepairStyle::kMinimalEdits, 8};
    EXPECT_EQ(*Distance(seq, loose), 8);
    EXPECT_EQ(Repair(seq, loose)->distance, 8);
  }
}

TEST(OptionsGridTest, MaxDistanceZeroAcceptsBalancedOnly) {
  const ParenSeq balanced = ParenAlphabet::Default().Parse("()[]").value();
  EXPECT_EQ(*Distance(balanced, {.max_distance = 0}), 0);
  const ParenSeq broken = ParenAlphabet::Default().Parse("(").value();
  EXPECT_TRUE(Distance(broken, {.max_distance = 0})
                  .status()
                  .IsBoundExceeded());
}

TEST(OptionsGridTest, EmptyInputEverywhere) {
  for (const Algorithm algorithm :
       {Algorithm::kAuto, Algorithm::kFpt, Algorithm::kCubic,
        Algorithm::kBranching}) {
    Options options;
    options.algorithm = algorithm;
    EXPECT_EQ(*Distance({}, options), 0);
    const auto repair = Repair({}, options);
    ASSERT_TRUE(repair.ok());
    EXPECT_TRUE(repair->repaired.empty());
  }
}

TEST(OptionsGridTest, PreserveContentOnLargeInput) {
  // The preserve transform runs after the FPT solver; make sure the whole
  // pipeline holds together beyond toy sizes.
  const ParenSeq base =
      gen::RandomBalanced({.length = 40000, .num_types = 4}, 99);
  const gen::CorruptedSequence corrupted =
      gen::Corrupt(base, {.num_edits = 5, .num_types = 4}, 100);
  const ParenSeq& seq = corrupted.seq;
  const auto repair =
      Repair(seq, {.style = RepairStyle::kPreserveContent});
  ASSERT_TRUE(repair.ok()) << repair.status();
  EXPECT_TRUE(IsBalanced(repair->repaired));
  int64_t inserts = 0;
  for (const auto& op : repair->script.ops) {
    if (op.kind == EditOpKind::kInsert) ++inserts;
    EXPECT_NE(op.kind, EditOpKind::kDelete);
  }
  EXPECT_EQ(repair->repaired.size(), seq.size() + inserts);
}

}  // namespace
}  // namespace dyck
