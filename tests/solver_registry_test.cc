// The SolverRegistry (src/core/solver.h): built-in population, forced
// lookup, capability metadata, cost-model monotonicity, and the
// unsupported-metric error contract.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>

#include "src/core/solver.h"
#include "src/pipeline/telemetry.h"

namespace dyck {
namespace {

TEST(SolverRegistryTest, BuiltInSolversAreRegistered) {
  SolverRegistry& registry = SolverRegistry::Global();
  for (const char* name : {"fpt", "fpt-deletion", "fpt-substitution",
                           "cubic", "branching", "greedy", "banded",
                           "approx", "approx-greedy"}) {
    EXPECT_NE(registry.Find(name), nullptr) << name;
  }
  EXPECT_EQ(registry.Find("no-such-solver"), nullptr);
}

TEST(SolverRegistryTest, ForAlgorithmMapsEveryForcedEnumerator) {
  SolverRegistry& registry = SolverRegistry::Global();
  for (const Algorithm algorithm :
       {Algorithm::kFpt, Algorithm::kCubic, Algorithm::kBranching,
        Algorithm::kBanded, Algorithm::kGreedy, Algorithm::kApprox}) {
    const Solver* solver = registry.ForAlgorithm(algorithm);
    ASSERT_NE(solver, nullptr) << AlgorithmName(algorithm);
    EXPECT_STREQ(solver->name(), AlgorithmName(algorithm));
    EXPECT_EQ(solver->caps().family, algorithm);
  }
  EXPECT_EQ(registry.ForAlgorithm(Algorithm::kAuto), nullptr);
}

TEST(SolverRegistryTest, CapabilityMetadataMatchesTheFamilies) {
  SolverRegistry& registry = SolverRegistry::Global();

  const Solver* greedy = registry.Find("greedy");
  ASSERT_NE(greedy, nullptr);
  EXPECT_FALSE(greedy->caps().exact);
  EXPECT_FALSE(greedy->caps().planner_candidate);

  const Solver* banded = registry.Find("banded");
  ASSERT_NE(banded, nullptr);
  EXPECT_TRUE(banded->caps().deletions);
  EXPECT_FALSE(banded->caps().substitutions);
  EXPECT_TRUE(banded->caps().needs_reduced);
  EXPECT_TRUE(banded->caps().exact);

  const Solver* del = registry.Find("fpt-deletion");
  ASSERT_NE(del, nullptr);
  EXPECT_TRUE(del->caps().deletions);
  EXPECT_FALSE(del->caps().substitutions);
  EXPECT_TRUE(del->caps().planner_candidate);
  EXPECT_EQ(del->caps().family, Algorithm::kFpt);

  const Solver* sub = registry.Find("fpt-substitution");
  ASSERT_NE(sub, nullptr);
  EXPECT_FALSE(sub->caps().deletions);
  EXPECT_TRUE(sub->caps().substitutions);
  EXPECT_TRUE(sub->caps().planner_candidate);

  // The umbrella and branching are forced-only; cubic is a candidate.
  EXPECT_FALSE(registry.Find("fpt")->caps().planner_candidate);
  EXPECT_FALSE(registry.Find("branching")->caps().planner_candidate);
  EXPECT_TRUE(registry.Find("cubic")->caps().planner_candidate);

  // Every solver of a family shares its telemetry bucket.
  for (const Solver* solver : registry.solvers()) {
    EXPECT_NE(solver->caps().family, Algorithm::kAuto) << solver->name();
  }
}

// `exact` and `approximation_factor` are two views of one capability: a
// solver is exact iff its certified factor is exactly 1.0, and every
// registered factor must be a usable bound (>= 1.0, possibly infinite).
TEST(SolverRegistryTest, ApproximationFactorAgreesWithExactness) {
  for (const Solver* solver : SolverRegistry::Global().solvers()) {
    const SolverCaps& caps = solver->caps();
    EXPECT_GE(caps.approximation_factor, 1.0) << solver->name();
    EXPECT_EQ(caps.exact, caps.approximation_factor == 1.0)
        << solver->name();
  }
}

TEST(SolverRegistryTest, ApproxLadderCapsMatchTheDesign) {
  SolverRegistry& registry = SolverRegistry::Global();

  const Solver* approx = registry.Find("approx");
  ASSERT_NE(approx, nullptr);
  EXPECT_FALSE(approx->caps().exact);
  EXPECT_EQ(approx->caps().approximation_factor, 2.0);
  EXPECT_TRUE(approx->caps().planner_candidate);
  EXPECT_TRUE(approx->caps().deletions);
  EXPECT_TRUE(approx->caps().substitutions);
  EXPECT_EQ(approx->caps().family, Algorithm::kApprox);

  const Solver* certified = registry.Find("approx-greedy");
  ASSERT_NE(certified, nullptr);
  EXPECT_FALSE(certified->caps().exact);
  EXPECT_EQ(certified->caps().approximation_factor, 3.0);
  EXPECT_TRUE(certified->caps().planner_candidate);
  EXPECT_EQ(certified->caps().family, Algorithm::kApprox);

  // Greedy stays the uncertified floor of the ladder.
  EXPECT_TRUE(std::isinf(registry.Find("greedy")->caps().approximation_factor));
}

// The planner compares PredictCost values across solvers, which is only
// meaningful if each model is nondecreasing in both n and d.
TEST(SolverRegistryTest, PredictCostIsMonotoneInSizeAndDistance) {
  for (const Solver* solver : SolverRegistry::Global().solvers()) {
    for (const int64_t n : {16, 64, 256, 1024, 4096}) {
      for (const int64_t d : {1, 2, 4, 8, 16, 32, 64}) {
        const double cost = solver->PredictCost(n, d);
        EXPECT_GE(cost, 0.0) << solver->name();
        EXPECT_LE(cost, solver->PredictCost(n * 2, d))
            << solver->name() << " n=" << n << " d=" << d;
        EXPECT_LE(cost, solver->PredictCost(n, d * 2))
            << solver->name() << " n=" << n << " d=" << d;
      }
    }
  }
}

TEST(SolverRegistryTest, CheckMetricNamesTheSolverAndTheCapability) {
  SolverRegistry& registry = SolverRegistry::Global();

  const Solver* banded = registry.Find("banded");
  ASSERT_NE(banded, nullptr);
  EXPECT_TRUE(banded->CheckMetric(false).ok());
  const Status subs = banded->CheckMetric(true);
  EXPECT_TRUE(subs.IsInvalidArgument());
  EXPECT_EQ(subs.message(),
            "solver 'banded' does not support the deletions+substitutions"
            " metric (capability: deletions-only)");

  const Solver* sub = registry.Find("fpt-substitution");
  ASSERT_NE(sub, nullptr);
  EXPECT_TRUE(sub->CheckMetric(true).ok());
  const Status del = sub->CheckMetric(false);
  EXPECT_TRUE(del.IsInvalidArgument());
  EXPECT_EQ(del.message(),
            "solver 'fpt-substitution' does not support the deletions"
            " metric (capability: substitutions-only)");
}

// A minimal solver for registration-contract tests.
class FakeSolver : public Solver {
 public:
  explicit FakeSolver(const char* name) : name_(name) {}
  const char* name() const override { return name_; }
  const SolverCaps& caps() const override {
    static const SolverCaps caps;
    return caps;
  }
  double PredictCost(int64_t, int64_t) const override { return 0; }
  Status Solve(const SolveRequest&, RepairContext&, RepairTelemetry*,
               SolverResult*) const override {
    return Status::Internal("unimplemented");
  }
  StatusOr<int64_t> SolveDistance(const SolveRequest&) const override {
    return Status::Internal("unimplemented");
  }

 private:
  const char* name_;
};

TEST(SolverRegistryTest, RegisterRejectsDuplicatesAndEmptyNames) {
  SolverRegistry registry;
  EXPECT_TRUE(registry.Register(std::make_unique<FakeSolver>("a")).ok());
  const Status duplicate =
      registry.Register(std::make_unique<FakeSolver>("a"));
  EXPECT_TRUE(duplicate.IsInvalidArgument());
  EXPECT_NE(duplicate.message().find("already registered"),
            std::string::npos);
  EXPECT_TRUE(
      registry.Register(std::make_unique<FakeSolver>("")).IsInvalidArgument());
  EXPECT_TRUE(registry.Register(nullptr).IsInvalidArgument());
  EXPECT_EQ(registry.solvers().size(), 1u);
}

}  // namespace
}  // namespace dyck
