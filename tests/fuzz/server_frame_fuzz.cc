// Fuzz target: arbitrary bytes -> a live server Session over the dyckfix/1
// wire protocol.
//
// Two build modes share this file (same arrangement as repair_fuzz.cc):
//  - libFuzzer (-fsanitize=fuzzer, Clang only, CMake option DYCKFIX_FUZZ):
//    LLVMFuzzerTestOneInput is the entry point.
//  - smoke driver (any compiler, always built): DYCKFIX_FUZZ_SMOKE_MAIN
//    adds a main() that replays a fixed deterministic corpus, wired into
//    ctest so every CI run exercises the harness end to end.
//
// The harness checks the serving invariants, not outputs: whatever bytes
// arrive, the session must never crash, every response the server emits
// must be a well-formed dyckfix/1 line (optionally followed by exactly the
// payload it declared), and the sink must never see a partial write
// interleave. Protocol errors are expected constantly — they must surface
// as typed err responses, not process death.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/server/server.h"
#include "src/server/wire.h"
#include "src/util/logging.h"

namespace {

// Validates that `text` is a concatenation of complete response frames.
void CheckResponseStream(const std::string& text) {
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t nl = text.find('\n', pos);
    DYCK_CHECK(nl != std::string::npos) << "unterminated response line";
    const std::string_view line =
        std::string_view(text).substr(pos, nl - pos);
    pos = nl + 1;
    DYCK_CHECK(line.rfind("dyckfix/1 ", 0) == 0)
        << "response line without protocol magic";
    dyck::server::LineScanner scanner(line);
    std::string_view token;
    DYCK_CHECK(scanner.NextToken(&token));  // magic
    uint64_t id = 0;
    DYCK_CHECK(scanner.NextToken(&token) &&
               dyck::server::ParseDecimalU64(token, &id))
        << "response id is not a decimal";
    DYCK_CHECK(scanner.NextToken(&token)) << "response missing status";
    DYCK_CHECK(token == dyck::server::kStatusOk ||
               token == dyck::server::kStatusErr ||
               token == dyck::server::kStatusOverloaded ||
               token == dyck::server::kStatusBye)
        << "unknown response status";
    // Step over a declared payload so its bytes are not read as headers.
    const size_t len_at = line.find(" len=");
    if (len_at != std::string_view::npos) {
      size_t end = line.find(' ', len_at + 5);
      if (end == std::string_view::npos) end = line.size();
      int64_t n = 0;
      DYCK_CHECK(dyck::server::ParseDecimal(
          std::string_view(line).substr(len_at + 5, end - (len_at + 5)),
          &n))
          << "declared len is not a decimal";
      DYCK_CHECK(pos + static_cast<size_t>(n) < text.size() + 1)
          << "response declared more payload than it wrote";
      pos += static_cast<size_t>(n);
      DYCK_CHECK(pos < text.size() && text[pos] == '\n')
          << "response payload not newline-terminated";
      ++pos;
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  // First byte picks the serving configuration; the rest is wire traffic.
  const uint8_t config = data[0];
  std::string_view traffic(reinterpret_cast<const char*>(data + 1),
                           size - 1);

  dyck::server::ServerOptions options;
  options.workers = 1 + (config & 1);
  options.max_queue_depth = 1 + ((config >> 1) & 3);
  // Small payload cap so the oversized-skip and resync paths fire often.
  options.max_doc_bytes = 16 + ((config >> 3) & 3) * 64;
  options.max_docs_per_session = 1 + ((config >> 5) & 1) * 3;
  // Tight work budget: admitted repairs trip and walk the degrade ladder.
  options.base_options.max_work_steps = 1 + (config >> 6) * 256;

  std::string responses;
  {
    dyck::server::Server server(options);
    std::unique_ptr<dyck::server::Session> session =
        server.OpenSession([&responses](std::string_view bytes) {
          responses.append(bytes.data(), bytes.size());
        });
    // Deliver the traffic in two arbitrary chunks so frame reassembly is
    // part of the fuzzed surface.
    const size_t cut = traffic.size() / 2;
    session->Feed(traffic.substr(0, cut));
    session->Feed(traffic.substr(cut));
    server.Drain();
    session->Close();
  }
  CheckResponseStream(responses);
  return 0;
}

#ifdef DYCKFIX_FUZZ_SMOKE_MAIN

#include <cstdio>
#include <random>
#include <vector>

// Deterministic smoke corpus: handcrafted frames (valid, truncated,
// oversized, duplicated, interleaved with garbage) plus PRNG byte soup.
int main() {
  std::vector<std::string> corpus = {
      "",
      "dyckfix/1 1 ping\n",
      "dyckfix/1 1 repair len=4\n(]((\n",
      "dyckfix/1 1 repair len=4\n(]((\ndyckfix/1 1 repair len=2\n()\n",
      "dyckfix/1 1 stats\ndyckfix/1 2 shutdown\ndyckfix/1 3 ping\n",
      "dyckfix/1 1 open doc=a len=4\n(]((\n"
      "dyckfix/1 2 splice doc=a pos=4 erase=0 len=2\n))\n"
      "dyckfix/1 3 repair doc=a\n"
      "dyckfix/1 4 close doc=a\n",
      "dyckfix/1 1 open doc=a len=2\n()\n"
      "dyckfix/1 2 open doc=b len=2\n()\n"
      "dyckfix/1 3 splice doc=a pos=99 erase=9\n",
      "dyckfix/1 1 repair len=600\n" + std::string(600, '(') + "\n",
      "dyckfix/1 1 repair len=99999999999\npoison\ndyckfix/1 2 ping\n",
      "dyckfix/1 1 repair len=4\n()",  // truncated payload at EOF
      "dyckfix/1 0 ping\ndyckfix/1 nine ping\nDYCKFIX/1 1 ping\n",
      "dyckfix/1 1 repair len=2 degrade=bogus\n()\n",
      "dyckfix/1 1 repair max_steps=1 degrade=fail len=8\n(((]]]]]\n",
      std::string(5000, 'a') + "\ndyckfix/1 1 ping\n",
      "\r\n\r\ndyckfix/1 1 ping\r\n",
  };
  std::mt19937 rng(20260809u);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> piece(0, 9);
  const char* kPieces[] = {
      "dyckfix/1 ", "repair ", "len=", "doc=a ", "splice ", "\n",
      "ping\n",     "(](",     "=",    " ",
  };
  for (int round = 0; round < 300; ++round) {
    std::string traffic;
    const int len = round % 37;
    for (int i = 0; i < len; ++i) {
      if (round % 4 == 0) {
        traffic.push_back(static_cast<char>(byte(rng)));
      } else {
        traffic += kPieces[piece(rng)];
      }
    }
    corpus.push_back(traffic);
  }
  size_t replayed = 0;
  for (const std::string& traffic : corpus) {
    for (const uint8_t config : {0x00, 0x2b, 0x7f, 0xd4, 0xff}) {
      std::string input(1, static_cast<char>(config));
      input += traffic;
      LLVMFuzzerTestOneInput(
          reinterpret_cast<const uint8_t*>(input.data()), input.size());
      ++replayed;
    }
  }
  std::printf("server_frame_fuzz_smoke: %zu traffic samples replayed\n",
              replayed);
  return 0;
}

#endif  // DYCKFIX_FUZZ_SMOKE_MAIN
