// Fuzz target: arbitrary bytes -> bracket tokenizer -> repair pipeline
// under a small deterministic budget.
//
// Two build modes share this file:
//  - libFuzzer (-fsanitize=fuzzer, Clang only, CMake option DYCKFIX_FUZZ):
//    LLVMFuzzerTestOneInput is the entry point.
//  - smoke driver (any compiler, always built): DYCKFIX_FUZZ_SMOKE_MAIN
//    adds a main() that replays a fixed deterministic corpus, wired into
//    ctest so every CI run exercises the harness end to end.
//
// The harness checks invariants, not outputs: a repair must either succeed
// with a balanced result whose script cost matches the distance, degrade
// to a valid greedy answer, or fail with a classified budget/bound Status.
// Anything else (crash, unbalanced output, unclassified error) is a bug.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

#include "src/core/dyck.h"
#include "src/textio/bracket_tokenizer.h"
#include "src/util/logging.h"

namespace {

void CheckRepair(const dyck::ParenSeq& seq, const dyck::Options& options) {
  const dyck::StatusOr<dyck::RepairResult> result =
      dyck::Repair(seq, options);
  if (!result.ok()) {
    const dyck::Status& s = result.status();
    // The only acceptable failures for in-alphabet input under a budget.
    DYCK_CHECK(s.IsBoundExceeded() || s.IsDeadlineExceeded() ||
               s.IsResourceExhausted())
        << "unexpected repair failure: " << s.ToString();
    return;
  }
  DYCK_CHECK(dyck::IsBalanced(result->repaired))
      << "repair produced an unbalanced sequence";
  DYCK_CHECK_EQ(result->script.Cost(), result->distance);
  if (result->degraded) {
    DYCK_CHECK(result->telemetry.degraded);
    DYCK_CHECK_GE(result->distance, result->telemetry.exact_lower_bound);
  }
  // Certificate invariants for the approximation ladder. certified_factor
  // is 0.0 only on uncertified degraded fallbacks; every certified
  // non-exact answer carries a proven lower bound consistent with the
  // realized ratio it claims.
  const double factor = result->telemetry.certified_factor;
  const int64_t lower = result->telemetry.exact_lower_bound;
  DYCK_CHECK(factor == 0.0 || factor >= 1.0)
      << "certified_factor outside {0} U [1, inf): " << factor;
  if (factor == 0.0) {
    DYCK_CHECK(result->degraded) << "uncertified result without degrade";
  } else if (factor == 1.0) {
    if (!result->degraded) {
      DYCK_CHECK_EQ(lower, -1) << "exact run kept a lower bound";
    }
  } else {
    DYCK_CHECK_GE(lower, 1);
    DYCK_CHECK_GE(result->distance, lower);
    const double realized = static_cast<double>(result->distance) /
                            static_cast<double>(lower);
    DYCK_CHECK(realized <= factor + 1e-9)
        << "distance " << result->distance << " exceeds certified "
        << factor << " * " << lower;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  // First byte picks the configuration; the rest is the document.
  const uint8_t config = data[0];
  const std::string text(reinterpret_cast<const char*>(data + 1),
                         size - 1);

  dyck::Options options;
  options.metric = (config & 1) ? dyck::Metric::kDeletionsAndSubstitutions
                                : dyck::Metric::kDeletionsOnly;
  options.style = (config & 2) ? dyck::RepairStyle::kPreserveContent
                               : dyck::RepairStyle::kMinimalEdits;
  // Bits 2-3: the full degrade ladder, with kApproximate twice as likely
  // so the certified rung sees as much traffic as the legacy pair.
  switch ((config >> 2) & 3) {
    case 0: options.on_budget_exceeded = dyck::DegradePolicy::kFail; break;
    case 1: options.on_budget_exceeded = dyck::DegradePolicy::kGreedy; break;
    default:
      options.on_budget_exceeded = dyck::DegradePolicy::kApproximate;
      break;
  }
  // Bits 4-5: accuracy budget for the planner's approximation ladder.
  switch ((config >> 4) & 3) {
    case 0: options.max_approximation_factor = 1.0; break;
    case 1: options.max_approximation_factor = 2.0; break;
    case 2: options.max_approximation_factor = 3.0; break;
    default:
      options.max_approximation_factor =
          std::numeric_limits<double>::infinity();
      break;
  }
  // A small deterministic budget keeps adversarial inputs from stalling
  // the fuzzer and exercises the trip/degrade paths constantly.
  options.max_work_steps = 1 + (config >> 6) * 512;

  const dyck::textio::TokenizedDocument doc = dyck::textio::TokenizeBrackets(
      text, dyck::ParenAlphabet::Default());
  CheckRepair(doc.seq, options);
  return 0;
}

#ifdef DYCKFIX_FUZZ_SMOKE_MAIN

#include <cstdio>
#include <random>
#include <vector>

// Deterministic smoke corpus: fixed seeds plus PRNG byte soup. Replays in
// a few seconds so it can gate CI; the real libFuzzer binary explores
// beyond it when built with DYCKFIX_FUZZ=ON under Clang.
int main() {
  std::vector<std::string> corpus = {
      "", ")", "(", "()", ")(", "([)]", "((((((((((",
      "))))))))))", "([{<>}])", "(((([[[[{{{{<<<<",
      "][" "}{" "><", "(x[y{z<w>q}p]o)", ")]}>)]}>)]}>",
  };
  std::mt19937 rng(20260806u);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> bracket(0, 7);
  const char kBrackets[] = "()[]{}<>";
  for (int round = 0; round < 400; ++round) {
    std::string doc;
    const int len = round % 97;
    for (int i = 0; i < len; ++i) {
      // Mostly brackets with occasional arbitrary bytes, so the repair
      // path (not just the tokenizer's pass-through) gets exercised.
      if (round % 3 == 0) {
        doc.push_back(static_cast<char>(byte(rng)));
      } else {
        doc.push_back(kBrackets[bracket(rng)]);
      }
    }
    corpus.push_back(doc);
  }
  // Every config byte variant over a few structural shapes.
  for (int config = 0; config < 256; config += 7) {
    std::string input(1, static_cast<char>(config));
    input += "((([[[)]]}))";
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const uint8_t*>(input.data()), input.size());
  }
  for (const std::string& doc : corpus) {
    // 0x0b/0x1d/0x6e land on DegradePolicy::kApproximate with accuracy
    // budgets 1.0/2.0/3.0; 0xff is the everything-on corner (approximate
    // degrade, unlimited factor, largest step budget).
    for (const uint8_t config : {0x00, 0x05, 0x0b, 0x1d, 0x6e, 0xff}) {
      std::string input(1, static_cast<char>(config));
      input += doc;
      LLVMFuzzerTestOneInput(
          reinterpret_cast<const uint8_t*>(input.data()), input.size());
    }
  }
  std::printf("repair_fuzz_smoke: %zu corpus documents replayed\n",
              corpus.size());
  return 0;
}

#endif  // DYCKFIX_FUZZ_SMOKE_MAIN
