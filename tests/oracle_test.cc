#include <gtest/gtest.h>

#include <random>

#include "src/alphabet/parse.h"
#include "src/fpt/oracle.h"
#include "src/gen/workload.h"

namespace dyck {
namespace {

ParenSeq Parse(const std::string& text) {
  return ParenAlphabet::Default().Parse(text).value();
}

// Direct reference for edit(X, Y) where X is all-open and Y all-close:
// Fact 7 / Fact 29 via the quadratic DP on U(X) vs rev(U(Y)).
int64_t ReferencePairDistance(const ParenSeq& seq, int64_t xb, int64_t xe,
                              int64_t yb, int64_t ye, WaveMetric metric) {
  std::vector<int32_t> a;
  for (int64_t i = xb; i < xe; ++i) a.push_back(seq[i].type);
  std::vector<int32_t> b;
  for (int64_t i = ye - 1; i >= yb; --i) b.push_back(seq[i].type);
  return EditDistanceQuadratic(a, b, metric);
}

TEST(PairOracleTest, MatchesReferenceOnRandomRuns) {
  std::mt19937_64 rng(2024);
  for (int trial = 0; trial < 100; ++trial) {
    // Build a sequence with an opening run then a closing run plus noise
    // around them so substrings are non-trivial.
    ParenSeq seq;
    const int64_t pre = rng() % 5;
    for (int64_t i = 0; i < pre; ++i) {
      seq.push_back(Paren{static_cast<ParenType>(rng() % 3), rng() % 2 == 0});
    }
    const int64_t xb = static_cast<int64_t>(seq.size());
    const int64_t xlen = rng() % 10;
    for (int64_t i = 0; i < xlen; ++i) {
      seq.push_back(Paren::Open(static_cast<ParenType>(rng() % 3)));
    }
    const int64_t xe = static_cast<int64_t>(seq.size());
    const int64_t yb = xe;
    const int64_t ylen = rng() % 10;
    for (int64_t i = 0; i < ylen; ++i) {
      seq.push_back(Paren::Close(static_cast<ParenType>(rng() % 3)));
    }
    const int64_t ye = static_cast<int64_t>(seq.size());

    const PairOracle oracle(seq);
    for (const WaveMetric metric :
         {WaveMetric::kDeletion, WaveMetric::kSubstitution}) {
      const int64_t truth =
          ReferencePairDistance(seq, xb, xe, yb, ye, metric);
      const auto got = oracle.PairDistance(xb, xe, yb, ye,
                                           static_cast<int32_t>(truth) + 1,
                                           metric);
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, truth) << trial;
    }
  }
}

TEST(PairOracleTest, PrefixSuffixSemantics) {
  // X = "(((((", Y = ")))": Point(r, c) must compare the FIRST r symbols of
  // X with the LAST c symbols of Y (Theorem 14).
  const ParenSeq seq = Parse("((((()))");
  const PairOracle oracle(seq);
  const WaveTable table =
      oracle.BuildTable(0, 5, 5, 8, 4, WaveMetric::kDeletion);
  EXPECT_EQ(*table.Point(3, 3), 0);   // "(((" vs ")))"
  EXPECT_EQ(*table.Point(5, 3), 2);   // "(((((" vs ")))"
  EXPECT_EQ(*table.Point(0, 0), 0);
  EXPECT_EQ(*table.Point(0, 2), 2);
}

TEST(PairOracleTest, PointQueriesMatchReference) {
  std::mt19937_64 rng(555);
  for (int trial = 0; trial < 40; ++trial) {
    ParenSeq seq;
    const int64_t xlen = 1 + rng() % 8;
    for (int64_t i = 0; i < xlen; ++i) {
      seq.push_back(Paren::Open(static_cast<ParenType>(rng() % 2)));
    }
    const int64_t ylen = 1 + rng() % 8;
    for (int64_t i = 0; i < ylen; ++i) {
      seq.push_back(Paren::Close(static_cast<ParenType>(rng() % 2)));
    }
    const PairOracle oracle(seq);
    const int32_t max_d = 5;
    const WaveMetric metric =
        trial % 2 ? WaveMetric::kDeletion : WaveMetric::kSubstitution;
    const WaveTable table =
        oracle.BuildTable(0, xlen, xlen, xlen + ylen, max_d, metric);
    for (int64_t r = 0; r <= xlen; ++r) {
      for (int64_t c = 0; c <= ylen; ++c) {
        // Prefix of X of length r vs suffix of Y of length c.
        const int64_t truth = ReferencePairDistance(
            seq, 0, r, xlen + ylen - c, xlen + ylen, metric);
        const auto point = table.Point(r, c);
        if (truth <= max_d) {
          ASSERT_TRUE(point.has_value());
          EXPECT_EQ(*point, truth);
        } else {
          EXPECT_FALSE(point.has_value());
        }
      }
    }
  }
}

TEST(PairOracleTest, AlignPairCostMatchesPairDistance) {
  std::mt19937_64 rng(808);
  for (int trial = 0; trial < 60; ++trial) {
    ParenSeq seq;
    const int64_t xlen = rng() % 8;
    for (int64_t i = 0; i < xlen; ++i) {
      seq.push_back(Paren::Open(static_cast<ParenType>(rng() % 2)));
    }
    const int64_t ylen = rng() % 8;
    for (int64_t i = 0; i < ylen; ++i) {
      seq.push_back(Paren::Close(static_cast<ParenType>(rng() % 2)));
    }
    const PairOracle oracle(seq);
    const WaveMetric metric =
        trial % 2 ? WaveMetric::kDeletion : WaveMetric::kSubstitution;
    const auto dist = oracle.PairDistance(0, xlen, xlen, xlen + ylen,
                                          static_cast<int32_t>(xlen + ylen),
                                          metric);
    ASSERT_TRUE(dist.has_value());
    const auto aligned = oracle.AlignPair(0, xlen, xlen, xlen + ylen,
                                          static_cast<int32_t>(xlen + ylen),
                                          metric);
    ASSERT_TRUE(aligned.ok()) << aligned.status();
    EXPECT_EQ(aligned->cost, *dist);
  }
}

TEST(PairOracleTest, EmptySides) {
  const ParenSeq seq = Parse("((]]");
  const PairOracle oracle(seq);
  EXPECT_EQ(*oracle.PairDistance(0, 0, 4, 4, 0, WaveMetric::kDeletion), 0);
  EXPECT_EQ(*oracle.PairDistance(0, 2, 2, 2, 2, WaveMetric::kDeletion), 2);
  EXPECT_EQ(*oracle.PairDistance(0, 2, 2, 2, 1, WaveMetric::kSubstitution),
            1);
}

}  // namespace
}  // namespace dyck
