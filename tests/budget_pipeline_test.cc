// Budget enforcement through the repair pipeline: real step-cap trips,
// deterministic fault-injection trips at every solver checkpoint, the
// kFail / kApproximate / kGreedy degradation ladder, the degraded >= exact
// differential on adversarial inputs, and the budget fields of
// RepairTelemetry.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/core/dyck.h"
#include "src/gen/adversarial.h"
#include "src/util/budget.h"

namespace dyck {
namespace {

ParenSeq Parse(const std::string& text) {
  return ParenAlphabet::Default().Parse(text).value();
}

class ScopedFaultInject {
 public:
  explicit ScopedFaultInject(const char* value) {
    ::setenv("DYCKFIX_FAULT_INJECT", value, /*overwrite=*/1);
  }
  ~ScopedFaultInject() { ::unsetenv("DYCKFIX_FAULT_INJECT"); }
};

// Eight unmatched opens: deletion distance 8, substitution distance 4.
const char* kEightOpens = "((((((((";

// --- Fault-injection coverage: one trip per instrumented checkpoint. ---

struct CheckpointCase {
  const char* checkpoint;
  Metric metric;
  Algorithm algorithm;
};

class BudgetCheckpointTest
    : public ::testing::TestWithParam<CheckpointCase> {};

TEST_P(BudgetCheckpointTest, FailPolicyReturnsTheInjectedStatus) {
  const CheckpointCase& c = GetParam();
  const std::string spec = std::string(c.checkpoint) + ":1";
  ScopedFaultInject env(spec.c_str());

  Options options;
  options.metric = c.metric;
  options.algorithm = c.algorithm;
  options.on_budget_exceeded = DegradePolicy::kFail;
  const auto result = Repair(Parse(kEightOpens), options);
  ASSERT_FALSE(result.ok()) << "checkpoint " << c.checkpoint
                            << " was never polled";
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status();
}

TEST_P(BudgetCheckpointTest, GreedyPolicyDegradesWithTelemetry) {
  const CheckpointCase& c = GetParam();
  const std::string spec = std::string(c.checkpoint) + ":1";
  ScopedFaultInject env(spec.c_str());

  Options options;
  options.metric = c.metric;
  options.algorithm = c.algorithm;
  options.on_budget_exceeded = DegradePolicy::kGreedy;
  const auto result = Repair(Parse(kEightOpens), options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->degraded);
  EXPECT_TRUE(IsBalanced(result->repaired));
  EXPECT_EQ(result->script.Cost(), result->distance);

  const RepairTelemetry& t = result->telemetry;
  EXPECT_TRUE(t.degraded);
  EXPECT_EQ(t.budget_checkpoint, c.checkpoint);
  EXPECT_EQ(t.budget_trip_code,
            static_cast<int>(StatusCode::kDeadlineExceeded));
  EXPECT_GT(t.budget_steps, 0);
  EXPECT_GE(t.exact_lower_bound, 1);
  EXPECT_GE(result->distance, t.exact_lower_bound);
}

INSTANTIATE_TEST_SUITE_P(
    AllCheckpoints, BudgetCheckpointTest,
    ::testing::Values(
        CheckpointCase{"pipeline.doubling", Metric::kDeletionsOnly,
                       Algorithm::kFpt},
        CheckpointCase{"fpt.deletion.solve", Metric::kDeletionsOnly,
                       Algorithm::kFpt},
        CheckpointCase{"fpt.substitution.solve",
                       Metric::kDeletionsAndSubstitutions, Algorithm::kFpt},
        CheckpointCase{"baseline.cubic.fill", Metric::kDeletionsOnly,
                       Algorithm::kCubic},
        CheckpointCase{"baseline.branching.search", Metric::kDeletionsOnly,
                       Algorithm::kBranching}),
    [](const ::testing::TestParamInfo<CheckpointCase>& info) {
      std::string name = info.param.checkpoint;
      for (char& ch : name) {
        if (ch == '.') ch = '_';
      }
      return name;
    });

TEST(BudgetFaultInjectTest, InjectedCancellationNeverDegrades) {
  ScopedFaultInject env("pipeline.doubling:1:cancelled");
  Options options;
  options.on_budget_exceeded = DegradePolicy::kGreedy;
  const auto result = Repair(Parse(kEightOpens), options);
  ASSERT_FALSE(result.ok()) << "kCancelled must not take the greedy path";
  EXPECT_TRUE(result.status().IsCancelled()) << result.status();
}

TEST(BudgetFaultInjectTest, InjectedResourceCodePropagates) {
  ScopedFaultInject env("pipeline.doubling:1:resource");
  Options options;
  options.on_budget_exceeded = DegradePolicy::kFail;
  const auto result = Repair(Parse(kEightOpens), options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted()) << result.status();
}

TEST(BudgetFaultInjectTest, BalancedFastPathNeverPollsACheckpoint) {
  // A balanced document answers before any solver runs, so even an
  // aggressive fault spec cannot trip it.
  ScopedFaultInject env("pipeline.doubling:1");
  const auto result = Repair(Parse("([]{})"), {});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->distance, 0);
  EXPECT_FALSE(result->degraded);
}

// --- Real (non-injected) budget trips. ---

TEST(BudgetPipelineTest, StepCapTripsTheFptSolver) {
  const ParenSeq doc = gen::ManyValleys(4, 6);  // edit2 = 24: real work
  Options options;
  options.max_work_steps = 50;
  options.on_budget_exceeded = DegradePolicy::kFail;
  const auto result = Repair(doc, options);
  ASSERT_FALSE(result.ok()) << "50 steps cannot solve edit2=24";
  EXPECT_TRUE(result.status().IsResourceExhausted()) << result.status();
}

TEST(BudgetPipelineTest, StepCapWithGreedyPolicyDegrades) {
  const ParenSeq doc = gen::ManyValleys(4, 6);
  Options options;
  options.max_work_steps = 50;
  options.on_budget_exceeded = DegradePolicy::kGreedy;
  const auto result = Repair(doc, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->degraded);
  EXPECT_TRUE(IsBalanced(result->repaired));
  EXPECT_TRUE(result->telemetry.budget_trip_code ==
              static_cast<int>(StatusCode::kResourceExhausted))
      << result->telemetry.budget_trip_code;
}

// --- The kApproximate rung of the degrade ladder. ---

// On a mixed-type all-openers run the fallback's cost equals the untyped
// relaxation lower bound, so the kApproximate rung certifies the degraded
// answer as provably optimal: factor 1.0 with the proven bound attached —
// strictly more information than kGreedy's uncertified answer for the
// same budget trip.
TEST(BudgetDegradeLadderTest, ApproximateRungCertifiesTightFallbacks) {
  ScopedFaultInject env("pipeline.doubling:1");
  const ParenSeq doc = Parse("([([([([([([");  // 12 unmatched openers

  Options options;
  options.metric = Metric::kDeletionsOnly;
  options.algorithm = Algorithm::kFpt;
  options.on_budget_exceeded = DegradePolicy::kApproximate;
  const auto result = Repair(doc, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->degraded);
  EXPECT_TRUE(result->telemetry.degraded);
  EXPECT_TRUE(IsBalanced(result->repaired));
  EXPECT_EQ(result->distance, 12);  // delete every opener
  EXPECT_EQ(result->telemetry.certified_factor, 1.0);
  EXPECT_EQ(result->telemetry.exact_lower_bound, 12);
  EXPECT_EQ(result->telemetry.budget_checkpoint, "pipeline.doubling");

  // Same trip under kGreedy: same repair, no certificate. The ladder's
  // whole point is that kApproximate dominates kGreedy in information.
  Options greedy = options;
  greedy.on_budget_exceeded = DegradePolicy::kGreedy;
  const auto uncertified = Repair(doc, greedy);
  ASSERT_TRUE(uncertified.ok()) << uncertified.status();
  EXPECT_TRUE(uncertified->degraded);
  EXPECT_EQ(uncertified->telemetry.certified_factor, 0.0);
  EXPECT_EQ(uncertified->distance, result->distance);
}

// When even the 3.0 ladder bound cannot be proven — type-mismatched pairs
// are untyped-balanced, so the relaxation lower bound collapses to 1 while
// the fallback pays one edit per pair — the rung falls through to exactly
// the uncertified shape kGreedy produces, never a false certificate.
TEST(BudgetDegradeLadderTest, ApproximateRungFallsThroughUncertified) {
  ScopedFaultInject env("pipeline.doubling:1");
  const ParenSeq doc = Parse("(](](](](](]");  // 6 mismatched pairs

  Options options;
  options.metric = Metric::kDeletionsAndSubstitutions;
  options.algorithm = Algorithm::kFpt;
  options.on_budget_exceeded = DegradePolicy::kApproximate;
  const auto result = Repair(doc, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->degraded);
  EXPECT_TRUE(IsBalanced(result->repaired));
  EXPECT_GE(result->distance, 6);  // exact is one retype per pair; greedy
                                   // pays at least that, uncertified
  EXPECT_EQ(result->telemetry.certified_factor, 0.0);
  EXPECT_GE(result->telemetry.exact_lower_bound, 1);
  EXPECT_EQ(result->script.Cost(), result->distance);
}

// Cancellation outranks every rung, exactly as it does for kGreedy.
TEST(BudgetDegradeLadderTest, CancellationBeatsTheApproximateRung) {
  ScopedFaultInject env("pipeline.doubling:1:cancelled");
  Options options;
  options.on_budget_exceeded = DegradePolicy::kApproximate;
  const auto result = Repair(Parse(kEightOpens), options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status();
}

TEST(BudgetPipelineTest, MemoryCapTripsTheCubicTable) {
  // The cubic DP table for n symbols is (n+1)^2 * 4 bytes; cap below it.
  const ParenSeq doc = gen::ManyValleys(4, 8);  // n = 64
  Options options;
  options.algorithm = Algorithm::kCubic;
  options.max_memory_bytes = 1000;  // 65 * 65 * 4 = 16900 > 1000
  options.on_budget_exceeded = DegradePolicy::kFail;
  const auto result = Repair(doc, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted()) << result.status();
}

TEST(BudgetPipelineTest, GenerousBudgetStaysExact) {
  const ParenSeq doc = gen::MismatchedV(12, 3, 0xBEEF);
  const auto exact = Repair(doc, {});
  ASSERT_TRUE(exact.ok());

  Options generous;
  generous.timeout_ms = 60000;
  generous.max_work_steps = 100000000;
  generous.on_budget_exceeded = DegradePolicy::kGreedy;
  const auto budgeted = Repair(doc, generous);
  ASSERT_TRUE(budgeted.ok()) << budgeted.status();
  EXPECT_FALSE(budgeted->degraded);
  EXPECT_EQ(budgeted->distance, exact->distance);
  EXPECT_EQ(budgeted->distance, 3);  // MismatchedV plants edit2 == errors
  // The budget ran (steps were counted) but never tripped.
  EXPECT_GT(budgeted->telemetry.budget_steps, 0);
  EXPECT_EQ(budgeted->telemetry.budget_trip_code, 0);
  EXPECT_TRUE(budgeted->telemetry.budget_checkpoint.empty());
  EXPECT_EQ(budgeted->telemetry.exact_lower_bound, -1);
}

TEST(BudgetPipelineTest, UnbudgetedRunReportsNoBudgetTelemetry) {
  const auto result = Repair(Parse(kEightOpens), {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->telemetry.budget_steps, 0);
  EXPECT_EQ(result->telemetry.exact_lower_bound, -1);
  EXPECT_FALSE(result->telemetry.degraded);
}

// --- Degraded >= exact differential on adversarial shapes. ---

TEST(BudgetDifferentialTest, DegradedDistanceUpperBoundsExact) {
  struct Case {
    const char* name;
    ParenSeq doc;
  };
  const Case cases[] = {
      {"many_valleys", gen::ManyValleys(5, 5)},
      {"mismatched_v", gen::MismatchedV(16, 4, 0x5EED)},
      {"greedy_trap", gen::GreedyTrap(12)},
  };
  for (const Metric metric :
       {Metric::kDeletionsOnly, Metric::kDeletionsAndSubstitutions}) {
    for (const Case& c : cases) {
      Options exact_options;
      exact_options.metric = metric;
      const auto exact = Repair(c.doc, exact_options);
      ASSERT_TRUE(exact.ok()) << c.name;

      // A 1-step budget trips on the second checkpoint poll, long before
      // any solver finishes, so the greedy fallback serves the answer.
      Options tiny = exact_options;
      tiny.max_work_steps = 1;
      tiny.on_budget_exceeded = DegradePolicy::kGreedy;
      const auto degraded = Repair(c.doc, tiny);
      ASSERT_TRUE(degraded.ok()) << c.name << ": " << degraded.status();
      ASSERT_TRUE(degraded->degraded) << c.name;
      EXPECT_TRUE(IsBalanced(degraded->repaired)) << c.name;
      EXPECT_EQ(degraded->script.Cost(), degraded->distance) << c.name;
      EXPECT_GE(degraded->distance, exact->distance)
          << c.name << ": a degraded answer may overshoot but never "
          << "undershoot the exact distance";
      EXPECT_GE(degraded->distance, degraded->telemetry.exact_lower_bound)
          << c.name;
    }
  }
}

TEST(BudgetDifferentialTest, DegradedPreserveContentKeepsEverySymbol) {
  const ParenSeq doc = gen::ManyValleys(3, 4);
  Options options;
  options.style = RepairStyle::kPreserveContent;
  options.max_work_steps = 1;
  options.on_budget_exceeded = DegradePolicy::kGreedy;
  const auto result = Repair(doc, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->degraded);
  EXPECT_TRUE(IsBalanced(result->repaired));
  // Preserve-content never deletes: output at least as long as input.
  EXPECT_GE(result->repaired.size(), doc.size());
}

// --- Distance is fail-only. ---

TEST(BudgetDistanceTest, DistanceIgnoresTheDegradePolicy) {
  ScopedFaultInject env("pipeline.doubling:1");
  Options options;
  // Explicit kFpt: kAuto would answer single-type inputs via the Dyck-1
  // closed form without ever reaching the doubling checkpoint.
  options.algorithm = Algorithm::kFpt;
  options.on_budget_exceeded = DegradePolicy::kGreedy;  // ignored
  const auto distance = Distance(Parse(kEightOpens), options);
  ASSERT_FALSE(distance.ok()) << "Distance has no degraded channel";
  EXPECT_TRUE(distance.status().IsDeadlineExceeded()) << distance.status();
}

TEST(BudgetDistanceTest, DistanceWithinBudgetIsExact) {
  Options options;
  options.algorithm = Algorithm::kFpt;  // run the driver under the budget
  options.max_work_steps = 100000000;
  const auto distance = Distance(Parse(kEightOpens), options);
  ASSERT_TRUE(distance.ok()) << distance.status();
  EXPECT_EQ(*distance, 4);  // edit2 of eight opens
}

}  // namespace
}  // namespace dyck
