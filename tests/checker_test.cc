#include <gtest/gtest.h>

#include <random>

#include "src/alphabet/parse.h"
#include "src/baseline/cubic.h"
#include "src/core/checker.h"
#include "src/gen/workload.h"

namespace dyck {
namespace {

ParenSeq Parse(const std::string& text) {
  return ParenAlphabet::Default().Parse(text).value();
}

TEST(CheckerTest, CleanStream) {
  IncrementalChecker checker;
  checker.AppendAll(Parse("([]{})"));
  EXPECT_TRUE(checker.ok_so_far());
  EXPECT_EQ(checker.depth(), 0);
  EXPECT_EQ(checker.GreedyCostIfEndedNow(), 0);
  EXPECT_EQ(checker.position(), 6);
}

TEST(CheckerTest, PrefixOfBalancedIsOk) {
  IncrementalChecker checker;
  checker.AppendAll(Parse("([{"));
  EXPECT_TRUE(checker.ok_so_far());
  EXPECT_EQ(checker.depth(), 3);
  EXPECT_EQ(checker.PendingOpenPositions(),
            (std::vector<int64_t>{0, 1, 2}));
}

TEST(CheckerTest, ConflictIdentifiesBlockingOpen) {
  IncrementalChecker checker;
  checker.AppendAll(Parse("([)"));
  ASSERT_EQ(checker.conflicts().size(), 1u);
  const auto& conflict = checker.conflicts()[0];
  EXPECT_EQ(conflict.pos, 2);
  EXPECT_EQ(conflict.symbol, Paren::Close(0));
  ASSERT_TRUE(conflict.blocking_open_pos.has_value());
  EXPECT_EQ(*conflict.blocking_open_pos, 1);
}

TEST(CheckerTest, CloserOnEmptyStackHasNoBlocker) {
  IncrementalChecker checker;
  checker.Append(Paren::Close(0));
  ASSERT_EQ(checker.conflicts().size(), 1u);
  EXPECT_FALSE(checker.conflicts()[0].blocking_open_pos.has_value());
}

TEST(CheckerTest, GreedyCostUpperBoundsEdit1) {
  std::mt19937_64 rng(888);
  for (int trial = 0; trial < 200; ++trial) {
    ParenSeq seq;
    const int64_t n = rng() % 18;
    for (int64_t i = 0; i < n; ++i) {
      seq.push_back(Paren{static_cast<ParenType>(rng() % 3), rng() % 2 == 0});
    }
    IncrementalChecker checker;
    checker.AppendAll(seq);
    EXPECT_GE(checker.GreedyCostIfEndedNow(), CubicDistance(seq, false))
        << ToString(seq);
    EXPECT_GE(checker.GreedyCostIfEndedNow(), UnmatchedCount(seq));
  }
}

TEST(CheckerTest, OkSoFarIffConflictFree) {
  // A prefix with no conflicts can always be completed to balanced, so
  // ok_so_far matches "prefix + matching closers is balanced".
  std::mt19937_64 rng(999);
  for (int trial = 0; trial < 100; ++trial) {
    const ParenSeq base =
        gen::RandomBalanced({.length = 30, .num_types = 2}, rng());
    const int64_t cut = rng() % (base.size() + 1);
    const ParenSeq prefix(base.begin(), base.begin() + cut);
    IncrementalChecker checker;
    checker.AppendAll(prefix);
    EXPECT_TRUE(checker.ok_so_far());
  }
}

TEST(CheckerTest, ResetClearsState) {
  IncrementalChecker checker;
  checker.AppendAll(Parse(")]"));
  EXPECT_EQ(checker.conflicts().size(), 2u);
  checker.Reset();
  EXPECT_TRUE(checker.ok_so_far());
  EXPECT_EQ(checker.position(), 0);
  EXPECT_EQ(checker.depth(), 0);
}

TEST(CheckerTest, MatchesAreExactTypeOnly) {
  IncrementalChecker checker;
  checker.AppendAll(Parse("(]"));
  EXPECT_EQ(checker.conflicts().size(), 1u);
  EXPECT_EQ(checker.depth(), 1);  // the '(' is still pending
}

}  // namespace
}  // namespace dyck
