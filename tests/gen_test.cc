#include <gtest/gtest.h>

#include "src/baseline/cubic.h"
#include "src/gen/workload.h"
#include "src/profile/height.h"

namespace dyck {
namespace gen {
namespace {

TEST(RandomBalancedTest, AllShapesProduceBalancedSequences) {
  for (const Shape shape : {Shape::kUniform, Shape::kDeep, Shape::kFlat}) {
    for (uint64_t seed = 0; seed < 10; ++seed) {
      const ParenSeq seq =
          RandomBalanced({.length = 100, .num_types = 4, .shape = shape},
                         seed);
      EXPECT_EQ(seq.size(), 100u);
      EXPECT_TRUE(IsBalanced(seq));
    }
  }
}

TEST(RandomBalancedTest, OddLengthRoundsDown) {
  EXPECT_EQ(RandomBalanced({.length = 101}, 1).size(), 100u);
}

TEST(RandomBalancedTest, DeterministicInSeed) {
  const ParenSeq a = RandomBalanced({.length = 50}, 9);
  const ParenSeq b = RandomBalanced({.length = 50}, 9);
  const ParenSeq c = RandomBalanced({.length = 50}, 10);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(RandomBalancedTest, ShapesHaveExpectedDepthOrder) {
  auto depth = [](const ParenSeq& seq) {
    int64_t depth = 0, max_depth = 0;
    for (const Paren& p : seq) {
      depth += p.is_open ? 1 : -1;
      max_depth = std::max(max_depth, depth);
    }
    return max_depth;
  };
  const int64_t n = 400;
  const int64_t deep =
      depth(RandomBalanced({.length = n, .shape = Shape::kDeep}, 3));
  const int64_t uniform =
      depth(RandomBalanced({.length = n, .shape = Shape::kUniform}, 3));
  const int64_t flat =
      depth(RandomBalanced({.length = n, .shape = Shape::kFlat}, 3));
  EXPECT_EQ(deep, n / 2);
  EXPECT_EQ(flat, 1);
  EXPECT_GT(uniform, flat);
  EXPECT_LT(uniform, deep);
}

TEST(RandomBalancedTest, SingleTypeOption) {
  const ParenSeq seq = RandomBalanced({.length = 40, .num_types = 1}, 4);
  for (const Paren& p : seq) EXPECT_EQ(p.type, 0);
}

TEST(CorruptTest, BoundsHoldForEveryKind) {
  const ParenSeq base = RandomBalanced({.length = 30, .num_types = 3}, 8);
  for (const CorruptionKind kind :
       {CorruptionKind::kDelete, CorruptionKind::kInsert,
        CorruptionKind::kFlipDirection, CorruptionKind::kFlipType,
        CorruptionKind::kMixed}) {
    for (uint64_t seed = 0; seed < 10; ++seed) {
      const CorruptedSequence c =
          Corrupt(base, {.num_edits = 3, .kind = kind, .num_types = 3},
                  seed);
      EXPECT_LE(CubicDistance(c.seq, false), c.edit1_bound);
      EXPECT_LE(CubicDistance(c.seq, true), c.edit2_bound);
    }
  }
}

TEST(CorruptTest, ZeroEditsIsIdentity) {
  const ParenSeq base = RandomBalanced({.length = 20}, 2);
  const CorruptedSequence c = Corrupt(base, {.num_edits = 0}, 5);
  EXPECT_EQ(c.seq, base);
  EXPECT_EQ(c.edit1_bound, 0);
  EXPECT_EQ(c.edit2_bound, 0);
}

TEST(CorruptTest, DeleteOnlyShrinksByExactlyNumEdits) {
  const ParenSeq base = RandomBalanced({.length = 40}, 6);
  const CorruptedSequence c = Corrupt(
      base, {.num_edits = 5, .kind = CorruptionKind::kDelete}, 7);
  EXPECT_EQ(c.seq.size(), base.size() - 5);
  EXPECT_EQ(c.edit1_bound, 5);
}

TEST(CorruptTest, CorruptingEmptySequenceInsertsInstead) {
  // A delete on an empty sequence degrades to an insert; the next delete
  // may then remove it again. Bounds must stay sound either way.
  const CorruptedSequence c = Corrupt(
      {}, {.num_edits = 2, .kind = CorruptionKind::kDelete}, 3);
  EXPECT_LE(c.seq.size(), 2u);
  EXPECT_EQ(c.edit1_bound, 2);
  const CorruptedSequence one = Corrupt(
      {}, {.num_edits = 1, .kind = CorruptionKind::kDelete}, 3);
  EXPECT_EQ(one.seq.size(), 1u);
}

}  // namespace
}  // namespace gen
}  // namespace dyck
