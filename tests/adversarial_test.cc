#include <gtest/gtest.h>

#include "src/baseline/cubic.h"
#include "src/baseline/greedy.h"
#include "src/fpt/deletion.h"
#include "src/fpt/substitution.h"
#include "src/gen/adversarial.h"
#include "src/profile/reduce.h"

namespace dyck {
namespace gen {
namespace {

TEST(AdversarialTest, ManyValleysDistancesMatchOracleSmall) {
  for (int64_t valleys = 1; valleys <= 3; ++valleys) {
    for (int64_t depth = 1; depth <= 4; ++depth) {
      const ParenSeq seq = ManyValleys(valleys, depth);
      EXPECT_EQ(FptDeletionDistance(seq), CubicDistance(seq, false));
      EXPECT_EQ(FptSubstitutionDistance(seq), CubicDistance(seq, true));
      // Closed forms for this construction.
      EXPECT_EQ(CubicDistance(seq, true), valleys * depth);
      EXPECT_EQ(CubicDistance(seq, false), 2 * valleys * depth);
      // Nothing reduces: Property 19 holds already.
      EXPECT_EQ(Reduce(seq).seq.size(), seq.size());
    }
  }
}

TEST(AdversarialTest, MismatchedVExactDistances) {
  for (const int64_t depth : {int64_t{50}, int64_t{500}}) {
    for (const int64_t errors : {int64_t{1}, int64_t{3}}) {
      const ParenSeq seq = MismatchedV(depth, errors, /*seed=*/9);
      EXPECT_EQ(FptSubstitutionDistance(seq), errors)
          << "depth=" << depth;
      EXPECT_EQ(FptDeletionDistance(seq), 2 * errors) << "depth=" << depth;
    }
  }
}

TEST(AdversarialTest, MismatchedVAgainstCubicSmall) {
  for (int64_t depth = 2; depth <= 10; ++depth) {
    const ParenSeq seq = MismatchedV(depth, 1, depth);
    EXPECT_EQ(FptDeletionDistance(seq), CubicDistance(seq, false));
    EXPECT_EQ(FptSubstitutionDistance(seq), CubicDistance(seq, true));
  }
}

TEST(AdversarialTest, GreedyTrapExactCostIsTwo) {
  for (const int64_t depth : {int64_t{4}, int64_t{100}, int64_t{5000}}) {
    const ParenSeq seq = GreedyTrap(depth);
    EXPECT_EQ(FptDeletionDistance(seq), 2) << "depth=" << depth;
    EXPECT_EQ(FptSubstitutionDistance(seq), 2) << "depth=" << depth;
  }
}

TEST(AdversarialTest, HardenedGreedySurvivesTheTrap) {
  // The spurious-opener cascade: a naive "always fix against the top"
  // greedy pays Theta(depth); the shipped policy must stay at O(1).
  const ParenSeq seq = GreedyTrap(5000);
  EXPECT_EQ(GreedyRepair(seq, false).cost, 2);
  EXPECT_EQ(GreedyRepair(seq, true).cost, 2);
}

TEST(AdversarialTest, SubproblemBudgetGrowsWithValleys) {
  // More valleys => more FPT subproblems, but still far below n^2.
  const ParenSeq few = ManyValleys(2, 40);
  const ParenSeq many = ManyValleys(10, 8);
  DeletionSolver solver_few(few);
  DeletionSolver solver_many(many);
  ASSERT_TRUE(
      solver_few.Distance(static_cast<int32_t>(few.size())).has_value());
  ASSERT_TRUE(
      solver_many.Distance(static_cast<int32_t>(many.size())).has_value());
  EXPECT_GT(solver_many.last_subproblem_count(),
            solver_few.last_subproblem_count());
}

}  // namespace
}  // namespace gen
}  // namespace dyck
