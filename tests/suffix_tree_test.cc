#include <gtest/gtest.h>

#include <random>

#include "src/suffix/lce.h"
#include "src/suffix/suffix_tree.h"

namespace dyck {
namespace {

std::vector<int32_t> RandomText(int64_t n, int32_t sigma, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int32_t> text(n);
  for (auto& v : text) v = static_cast<int32_t>(rng() % sigma);
  return text;
}

TEST(SuffixTreeTest, EmptyText) {
  const SuffixTree tree = SuffixTree::Build({});
  EXPECT_EQ(tree.Lce(0, 0), 0);
  EXPECT_EQ(tree.size(), 0);
}

TEST(SuffixTreeTest, SingleSymbol) {
  const SuffixTree tree = SuffixTree::Build({7});
  EXPECT_EQ(tree.Lce(0, 0), 1);
}

TEST(SuffixTreeTest, KnownSmallCases) {
  // "abab": lce(0,2) = 2, lce(1,3) = 1, lce(0,1) = 0.
  const SuffixTree tree = SuffixTree::Build({0, 1, 0, 1});
  EXPECT_EQ(tree.Lce(0, 2), 2);
  EXPECT_EQ(tree.Lce(1, 3), 1);
  EXPECT_EQ(tree.Lce(0, 1), 0);
  EXPECT_EQ(tree.Lce(0, 0), 4);
}

TEST(SuffixTreeTest, AllEqual) {
  const SuffixTree tree = SuffixTree::Build(std::vector<int32_t>(64, 3));
  for (int64_t i = 0; i < 64; ++i) {
    for (int64_t j = 0; j < 64; ++j) {
      EXPECT_EQ(tree.Lce(i, j), 64 - std::max(i, j));
    }
  }
}

TEST(SuffixTreeTest, NodeCountIsLinear) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    const auto text = RandomText(500, 3, seed);
    const SuffixTree tree = SuffixTree::Build(text);
    // A suffix tree over m = n+1 symbols has at most 2m nodes.
    EXPECT_LE(tree.num_nodes(), 2 * (500 + 1));
  }
}

class SuffixTreeDifferentialTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int32_t>> {};

TEST_P(SuffixTreeDifferentialTest, AgreesWithSuffixArrayBackend) {
  const auto [n, sigma] = GetParam();
  for (uint64_t seed = 0; seed < 3; ++seed) {
    const auto text = RandomText(n, sigma, seed * 97 + n);
    const SuffixTree tree = SuffixTree::Build(text);
    const LceIndex index = LceIndex::Build(text);
    std::mt19937_64 rng(seed + 1);
    for (int trial = 0; trial < 500; ++trial) {
      const int64_t i = rng() % n;
      const int64_t j = rng() % n;
      ASSERT_EQ(tree.Lce(i, j), index.Lce(i, j))
          << "n=" << n << " sigma=" << sigma << " i=" << i << " j=" << j;
    }
    // Exhaustive on small inputs.
    if (n <= 40) {
      for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < n; ++j) {
          ASSERT_EQ(tree.Lce(i, j), index.Lce(i, j));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SuffixTreeDifferentialTest,
    ::testing::Combine(::testing::Values<int64_t>(2, 7, 33, 256, 5000),
                       ::testing::Values<int32_t>(1, 2, 4, 100)));

TEST(SuffixTreeTest, PeriodicText) {
  // Periodic strings maximize deep internal structure.
  std::vector<int32_t> text;
  for (int i = 0; i < 300; ++i) text.push_back(i % 3);
  const SuffixTree tree = SuffixTree::Build(text);
  const LceIndex index = LceIndex::Build(text);
  for (int64_t i = 0; i < 300; i += 7) {
    for (int64_t j = 0; j < 300; j += 11) {
      ASSERT_EQ(tree.Lce(i, j), index.Lce(i, j)) << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace dyck
