// Property tests for the wave structures: the invariants the paper proves
// (Properties 9 and 10, Lemma 30) checked directly against the frontier
// arrays, not just through end-to-end distances.

#include <gtest/gtest.h>

#include <random>

#include "src/lms/wave.h"

namespace dyck {
namespace {

std::vector<int32_t> RandomString(int64_t n, int32_t sigma,
                                  std::mt19937_64& rng) {
  std::vector<int32_t> s(n);
  for (auto& v : s) v = static_cast<int32_t>(rng() % sigma);
  return s;
}

struct Instance {
  std::vector<int32_t> a;
  std::vector<int32_t> b;
  LceIndex index;
  WaveParams params;
};

Instance MakeInstance(int64_t na, int64_t nb, int32_t sigma,
                      WaveMetric metric, int32_t max_d, uint64_t seed) {
  std::mt19937_64 rng(seed);
  Instance inst;
  inst.a = RandomString(na, sigma, rng);
  inst.b = RandomString(nb, sigma, rng);
  std::vector<int32_t> c = inst.a;
  c.insert(c.end(), inst.b.begin(), inst.b.end());
  inst.index = LceIndex::Build(std::move(c));
  inst.params = WaveParams{0, na, na, nb, max_d, metric};
  return inst;
}

class WavePropertyTest : public ::testing::TestWithParam<WaveMetric> {};

TEST_P(WavePropertyTest, FrontiersAreMonotoneInWaveIndex) {
  // wave(h) dominates wave(h-1) on every diagonal: D <= h-1 implies
  // D <= h (Property 9's consequence used by the O(log d) point query).
  for (uint64_t seed = 0; seed < 30; ++seed) {
    const Instance inst =
        MakeInstance(14, 11, 3, GetParam(), 8, seed);
    const WaveTable table = ComputeWaves(inst.index, inst.params);
    for (int64_t diag = -table.diag_span(); diag <= table.diag_span();
         ++diag) {
      for (int32_t h = 1; h <= table.max_d(); ++h) {
        const int64_t prev = table.FrontierRow(h - 1, diag);
        const int64_t cur = table.FrontierRow(h, diag);
        if (prev != WaveTable::kUnreached) {
          ASSERT_NE(cur, WaveTable::kUnreached);
          ASSERT_GE(cur, prev) << "diag " << diag << " wave " << h;
        }
      }
    }
  }
}

TEST_P(WavePropertyTest, FrontierRowsAreExactMaxima) {
  // Definition 11 literally: F_h(k) equals the largest row r on diagonal k
  // with D[r][r+k] <= h, per the quadratic reference DP.
  for (uint64_t seed = 100; seed < 120; ++seed) {
    const int64_t na = 12;
    const int64_t nb = 9;
    const Instance inst = MakeInstance(na, nb, 2, GetParam(), 6, seed);
    const WaveTable table = ComputeWaves(inst.index, inst.params);
    for (int64_t diag = -table.diag_span(); diag <= table.diag_span();
         ++diag) {
      for (int32_t h = 0; h <= table.max_d(); ++h) {
        int64_t expected = WaveTable::kUnreached;
        for (int64_t r = 0; r <= na; ++r) {
          const int64_t c = r + diag;
          if (c < 0 || c > nb) continue;
          const std::vector<int32_t> pa(inst.a.begin(),
                                        inst.a.begin() + r);
          const std::vector<int32_t> pb(inst.b.begin(),
                                        inst.b.begin() + c);
          if (EditDistanceQuadratic(pa, pb, GetParam()) <= h) expected = r;
        }
        ASSERT_EQ(table.FrontierRow(h, diag), expected)
            << "diag " << diag << " wave " << h << " seed " << seed;
      }
    }
  }
}

TEST_P(WavePropertyTest, Property10FarDiagonalsExceedBound) {
  // |diagonal| beyond what d edits can reach stays unreached.
  const WaveMetric metric = GetParam();
  const int64_t reach = metric == WaveMetric::kSubstitution ? 2 : 1;
  for (uint64_t seed = 200; seed < 215; ++seed) {
    const Instance inst = MakeInstance(16, 16, 2, metric, 5, seed);
    const WaveTable table = ComputeWaves(inst.index, inst.params);
    for (int32_t h = 0; h <= table.max_d(); ++h) {
      for (int64_t diag = -table.diag_span(); diag <= table.diag_span();
           ++diag) {
        if (std::abs(diag) > reach * h) {
          ASSERT_EQ(table.FrontierRow(h, diag), WaveTable::kUnreached)
              << "wave " << h << " diag " << diag;
        }
      }
    }
  }
}

TEST_P(WavePropertyTest, Lemma30AppendingEqualSymbolsKeepsDistance) {
  const WaveMetric metric = GetParam();
  std::mt19937_64 rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    auto a = RandomString(rng() % 10, 3, rng);
    auto b = RandomString(rng() % 10, 3, rng);
    const int64_t base = EditDistanceQuadratic(a, b, metric);
    const int32_t x = static_cast<int32_t>(rng() % 3);
    a.push_back(x);
    b.push_back(x);
    EXPECT_EQ(EditDistanceQuadratic(a, b, metric), base);
  }
}

TEST(WavePropertyTest, Lemma30AppendDifferentSymbolsAddsAtMostOne) {
  std::mt19937_64 rng(78);
  for (int trial = 0; trial < 100; ++trial) {
    auto a = RandomString(rng() % 10, 3, rng);
    auto b = RandomString(rng() % 10, 3, rng);
    const int64_t base =
        EditDistanceQuadratic(a, b, WaveMetric::kSubstitution);
    a.push_back(100);
    b.push_back(200);
    const int64_t appended =
        EditDistanceQuadratic(a, b, WaveMetric::kSubstitution);
    EXPECT_GE(appended, base);
    EXPECT_LE(appended, base + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Metrics, WavePropertyTest,
                         ::testing::Values(WaveMetric::kDeletion,
                                           WaveMetric::kSubstitution));

}  // namespace
}  // namespace dyck
