#include <gtest/gtest.h>

#include <random>

#include "src/alphabet/parse.h"
#include "src/baseline/branching.h"
#include "src/baseline/cubic.h"

namespace dyck {
namespace {

ParenSeq RandomSeq(int64_t n, int32_t types, std::mt19937_64& rng) {
  ParenSeq seq;
  for (int64_t i = 0; i < n; ++i) {
    seq.push_back(
        Paren{static_cast<ParenType>(rng() % types), rng() % 2 == 0});
  }
  return seq;
}

class BranchingDifferentialTest
    : public ::testing::TestWithParam<std::tuple<bool, int32_t>> {};

TEST_P(BranchingDifferentialTest, MatchesCubicOracle) {
  const auto [subs, types] = GetParam();
  std::mt19937_64 rng(subs ? 21 : 20);
  for (int trial = 0; trial < 250; ++trial) {
    const ParenSeq seq = RandomSeq(rng() % 13, types, rng);
    const int64_t truth = CubicDistance(seq, subs);
    const auto got = BranchingDistance(seq, subs, truth);
    ASSERT_TRUE(got.has_value())
        << ToString(seq) << " truth=" << truth << " subs=" << subs;
    EXPECT_EQ(*got, truth) << ToString(seq);
    if (truth > 0) {
      EXPECT_FALSE(BranchingDistance(seq, subs, truth - 1).has_value())
          << ToString(seq);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BranchingDifferentialTest,
    ::testing::Combine(::testing::Bool(), ::testing::Values<int32_t>(1, 2,
                                                                     3)));

TEST(BranchingRepairTest, ScriptsValidate) {
  std::mt19937_64 rng(77);
  for (int trial = 0; trial < 150; ++trial) {
    const ParenSeq seq = RandomSeq(rng() % 12, 2, rng);
    for (const bool subs : {false, true}) {
      const auto result = BranchingRepair(seq, subs, 12);
      ASSERT_TRUE(result.ok()) << result.status();
      const Status status =
          ValidateScript(seq, result->script, result->distance, subs);
      EXPECT_TRUE(status.ok()) << status << " on " << ToString(seq);
    }
  }
}

TEST(BranchingRepairTest, BoundExceededSignalled) {
  const ParenSeq seq =
      ParenAlphabet::Default().Parse("((((((((").value();
  const auto result = BranchingRepair(seq, false, 3);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsBoundExceeded());
}

TEST(BranchingTest, BalancedIsZeroEvenWithZeroBudget) {
  const ParenSeq seq = ParenAlphabet::Default().Parse("([]){}").value();
  EXPECT_EQ(*BranchingDistance(seq, false, 0), 0);
  EXPECT_EQ(*BranchingDistance(seq, true, 0), 0);
}

TEST(BranchingTest, LongBalancedWithOneError) {
  // Exercises the linear greedy consumption with a single branch point.
  std::string text;
  for (int i = 0; i < 200; ++i) text += "([]{})";
  text.insert(text.size() / 2, "]");
  const ParenSeq seq = ParenAlphabet::Default().Parse(text).value();
  EXPECT_EQ(*BranchingDistance(seq, false, 2), 1);
  EXPECT_EQ(*BranchingDistance(seq, true, 2), 1);
}

}  // namespace
}  // namespace dyck
