// The staged repair pipeline (src/pipeline): telemetry correctness, the
// zero-copy contract between stages, the max_distance x d-doubling
// interplay, and byte-level agreement with the cubic baseline.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/baseline/cubic.h"
#include "src/core/dyck.h"
#include "src/gen/workload.h"

namespace dyck {
namespace {

ParenSeq Parse(const std::string& text) {
  return ParenAlphabet::Default().Parse(text).value();
}

// Eight unmatched opens: deletion distance 8, substitution distance 4.
// The doubling driver probes d = 1, 2, 4, 8 (deletions) or 1, 2, 4
// (substitutions), which pins exact iteration counts.
const char* kEightOpens = "((((((((";

TEST(PipelineTelemetryTest, BalancedFastPathUnderAuto) {
  const auto result = Repair(Parse("([]{})"), {});
  ASSERT_TRUE(result.ok());
  const RepairTelemetry& t = result->telemetry;
  EXPECT_TRUE(t.balanced_fast_path);
  EXPECT_EQ(t.chosen_algorithm, Algorithm::kAuto);
  EXPECT_EQ(t.doubling_iterations, 0);
  EXPECT_EQ(t.solve_bound, -1);
  EXPECT_EQ(t.input_length, 6);
  EXPECT_EQ(t.reduced_length, 0);  // balanced input reduces to empty
  EXPECT_EQ(t.subproblems, 0);
  EXPECT_EQ(t.seq_copies, 0);
  // The fast path still aligns every pair for downstream consumers.
  EXPECT_EQ(result->script.aligned_pairs.size(), 3u);
}

TEST(PipelineTelemetryTest, AutoResolvesToFptOnUnbalancedInput) {
  const auto result = Repair(Parse("(()("), {});
  ASSERT_TRUE(result.ok());
  const RepairTelemetry& t = result->telemetry;
  EXPECT_FALSE(t.balanced_fast_path);
  EXPECT_EQ(t.chosen_algorithm, Algorithm::kFpt);
  EXPECT_EQ(t.input_length, 4);
  // "(()(" strips its matched pair: two symbols survive Property 19.
  EXPECT_EQ(t.reduced_length, 2);
  EXPECT_EQ(t.doubling_iterations, 1);  // distance 1 -> first probe wins
  EXPECT_EQ(t.solve_bound, 1);
  EXPECT_GT(t.subproblems, 0);
}

TEST(PipelineTelemetryTest, ExplicitFptOnBalancedInputRunsTheSolver) {
  Options options;
  options.algorithm = Algorithm::kFpt;
  const auto result = Repair(Parse("(())"), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distance, 0);
  EXPECT_FALSE(result->telemetry.balanced_fast_path);
  EXPECT_EQ(result->telemetry.chosen_algorithm, Algorithm::kFpt);
  EXPECT_EQ(result->telemetry.doubling_iterations, 1);
  EXPECT_EQ(result->telemetry.reduced_length, 0);
}

TEST(PipelineTelemetryTest, CubicSkipsReductionAndDoubling) {
  Options options;
  options.algorithm = Algorithm::kCubic;
  const auto result = Repair(Parse("(()("), options);
  ASSERT_TRUE(result.ok());
  const RepairTelemetry& t = result->telemetry;
  EXPECT_EQ(t.chosen_algorithm, Algorithm::kCubic);
  EXPECT_EQ(t.doubling_iterations, 0);
  EXPECT_EQ(t.solve_bound, -1);
  EXPECT_EQ(t.reduced_length, -1);  // reduction skipped, not "empty"
  EXPECT_EQ(t.seq_copies, 0);
}

TEST(PipelineTelemetryTest, BranchingUsesTheDoublingDriver) {
  Options options;
  options.algorithm = Algorithm::kBranching;
  options.metric = Metric::kDeletionsOnly;
  const auto result = Repair(Parse("(((("), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distance, 4);
  EXPECT_EQ(result->telemetry.chosen_algorithm, Algorithm::kBranching);
  EXPECT_EQ(result->telemetry.doubling_iterations, 3);  // d = 1, 2, 4
  EXPECT_EQ(result->telemetry.solve_bound, 4);
}

TEST(PipelineTelemetryTest, DoublingIterationCountsMatchDistance) {
  Options del;
  del.metric = Metric::kDeletionsOnly;
  auto result = Repair(Parse(kEightOpens), del);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distance, 8);
  EXPECT_EQ(result->telemetry.doubling_iterations, 4);  // 1, 2, 4, 8
  EXPECT_EQ(result->telemetry.solve_bound, 8);

  Options sub;
  sub.metric = Metric::kDeletionsAndSubstitutions;
  result = Repair(Parse(kEightOpens), sub);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distance, 4);
  EXPECT_EQ(result->telemetry.doubling_iterations, 3);  // 1, 2, 4
  EXPECT_EQ(result->telemetry.solve_bound, 4);
}

TEST(PipelineTelemetryTest, StageSecondsPartitionTotal) {
  const auto result = Repair(Parse("(()(")  , {});
  ASSERT_TRUE(result.ok());
  double sum = 0;
  for (int s = 0; s < kNumPipelineStages; ++s) {
    EXPECT_GE(result->telemetry.stage_seconds[s], 0.0);
    sum += result->telemetry.stage_seconds[s];
  }
  EXPECT_DOUBLE_EQ(result->telemetry.TotalSeconds(), sum);
  EXPECT_GT(sum, 0.0);
  const std::string rendered = result->telemetry.ToString();
  EXPECT_NE(rendered.find("algorithm=fpt"), std::string::npos);
  EXPECT_NE(rendered.find("copies=0"), std::string::npos);
}

// Acceptance criterion: zero intermediate ParenSeq copies on every path
// through the pipeline — stages exchange ParenSpan views. seq_allocations
// admits only the deliberate materializations (the reduced sequence for
// FPT, the repaired output).
TEST(PipelineTelemetryTest, ZeroInterStageCopiesAcrossAllPaths) {
  const char* inputs[] = {"",     "()",    "(()(",     kEightOpens,
                          "(]",   "))((",  "([)]{<>}", "]]]"};
  for (const char* input : inputs) {
    for (const Metric metric :
         {Metric::kDeletionsOnly, Metric::kDeletionsAndSubstitutions}) {
      for (const Algorithm algorithm :
           {Algorithm::kAuto, Algorithm::kFpt, Algorithm::kCubic,
            Algorithm::kBranching}) {
        Options options;
        options.metric = metric;
        options.algorithm = algorithm;
        const auto result = Repair(Parse(input), options);
        ASSERT_TRUE(result.ok()) << input;
        EXPECT_EQ(result->telemetry.seq_copies, 0)
            << input << " metric=" << static_cast<int>(metric)
            << " algorithm=" << static_cast<int>(algorithm);
        EXPECT_LE(result->telemetry.seq_allocations, 2);
        EXPECT_TRUE(IsBalanced(result->repaired)) << input;
      }
    }
  }
}

// --- Options::max_distance vs the doubling driver -------------------------

TEST(PipelineTelemetryTest, MaxDistanceEqualToDistanceSucceeds) {
  // Off-by-one hotspot: the final probe runs at bound == max_distance
  // exactly (the clamp min(d, max_distance) turns the 8th probe from 8
  // into... 8 here, and from 16 into 9 below).
  Options options;
  options.metric = Metric::kDeletionsOnly;
  options.max_distance = 8;
  const auto result = Repair(Parse(kEightOpens), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distance, 8);
  EXPECT_EQ(result->telemetry.solve_bound, 8);
  EXPECT_EQ(result->telemetry.doubling_iterations, 4);  // 1, 2, 4, 8
}

TEST(PipelineTelemetryTest, MaxDistanceOneBelowDistanceIsBoundExceeded) {
  Options options;
  options.metric = Metric::kDeletionsOnly;
  options.max_distance = 7;
  const auto result = Repair(Parse(kEightOpens), options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsBoundExceeded())
      << result.status().ToString();
}

TEST(PipelineTelemetryTest, MaxDistanceFailsAtEveryDoublingStep) {
  // Whatever doubling step the cap lands on — below, at, or between probe
  // bounds — a cap under the true distance must yield BoundExceeded.
  for (const int64_t max_distance : {1, 2, 3, 4, 5, 6, 7}) {
    Options options;
    options.metric = Metric::kDeletionsOnly;
    options.max_distance = max_distance;
    const auto result = Repair(Parse(kEightOpens), options);
    ASSERT_FALSE(result.ok()) << "max_distance=" << max_distance;
    EXPECT_TRUE(result.status().IsBoundExceeded())
        << "max_distance=" << max_distance << ": "
        << result.status().ToString();
  }
}

TEST(PipelineTelemetryTest, MaxDistanceAboveDistanceClampsNothing) {
  Options options;
  options.metric = Metric::kDeletionsOnly;
  options.max_distance = 9;  // not a power of two, above the distance
  const auto result = Repair(Parse(kEightOpens), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distance, 8);
  EXPECT_EQ(result->telemetry.solve_bound, 8);
}

TEST(PipelineTelemetryTest, MaxDistanceUnderSubstitutionMetric) {
  Options options;
  options.metric = Metric::kDeletionsAndSubstitutions;
  options.max_distance = 4;
  auto result = Repair(Parse(kEightOpens), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distance, 4);
  EXPECT_EQ(result->telemetry.solve_bound, 4);

  options.max_distance = 3;
  result = Repair(Parse(kEightOpens), options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsBoundExceeded());
}

TEST(PipelineTelemetryTest, MaxDistanceAppliesToBranchingDriver) {
  Options options;
  options.metric = Metric::kDeletionsOnly;
  options.algorithm = Algorithm::kBranching;
  options.max_distance = 7;
  auto result = Repair(Parse(kEightOpens), options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsBoundExceeded());

  options.max_distance = 8;
  result = Repair(Parse(kEightOpens), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distance, 8);
}

TEST(PipelineTelemetryTest, MaxDistanceAppliesToCubicPostHoc) {
  Options options;
  options.metric = Metric::kDeletionsOnly;
  options.algorithm = Algorithm::kCubic;
  options.max_distance = 7;
  auto result = Repair(Parse(kEightOpens), options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsBoundExceeded());

  options.max_distance = 8;
  result = Repair(Parse(kEightOpens), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distance, 8);
}

// --- Differential: the staged pipeline against the cubic baseline ---------

TEST(PipelineTelemetryTest, AgreesWithCubicBaselineOnRandomWorkloads) {
  for (int i = 0; i < 24; ++i) {
    const ParenSeq base = gen::RandomBalanced(
        {.length = 80 + i * 7, .num_types = 3, .shape = gen::Shape::kUniform},
        /*seed=*/0x51A6E5 + i);
    gen::CorruptedSequence corrupted = gen::Corrupt(
        base, {.num_edits = i % 5, .kind = gen::CorruptionKind::kMixed,
               .num_types = 3},
        /*seed=*/0x9E1 + i);
    for (const Metric metric :
         {Metric::kDeletionsOnly, Metric::kDeletionsAndSubstitutions}) {
      Options options;
      options.metric = metric;
      const auto result = Repair(corrupted.seq, options);
      ASSERT_TRUE(result.ok());
      const CubicResult cubic = CubicRepair(
          corrupted.seq, metric == Metric::kDeletionsAndSubstitutions);
      EXPECT_EQ(result->distance, cubic.distance) << "workload " << i;
      EXPECT_TRUE(
          ValidateScript(corrupted.seq, result->script, result->distance,
                         metric == Metric::kDeletionsAndSubstitutions)
              .ok())
          << "workload " << i;
      EXPECT_EQ(result->telemetry.seq_copies, 0);
    }
  }
}

// --- TelemetryAggregate arithmetic ----------------------------------------

TEST(TelemetryAggregateTest, AddAndMergeSumFields) {
  RepairTelemetry fpt;
  fpt.stage_seconds[static_cast<int>(PipelineStage::kSolve)] = 0.5;
  fpt.doubling_iterations = 3;
  fpt.input_length = 100;
  fpt.reduced_length = 10;
  fpt.subproblems = 42;
  fpt.chosen_algorithm = Algorithm::kFpt;
  fpt.seq_allocations = 2;

  RepairTelemetry trivial;
  trivial.stage_seconds[static_cast<int>(PipelineStage::kNormalize)] = 0.25;
  trivial.input_length = 50;
  trivial.reduced_length = 0;
  trivial.chosen_algorithm = Algorithm::kAuto;
  trivial.balanced_fast_path = true;
  trivial.seq_allocations = 1;

  RepairTelemetry cubic;
  cubic.chosen_algorithm = Algorithm::kCubic;
  cubic.input_length = 30;
  cubic.reduced_length = -1;  // reduction skipped: excluded from ratios

  TelemetryAggregate agg;
  agg.Add(fpt);
  agg.Add(trivial);
  EXPECT_EQ(agg.documents, 2);
  EXPECT_EQ(agg.doubling_iterations, 3);
  EXPECT_EQ(agg.subproblems, 42);
  EXPECT_EQ(agg.seq_allocations, 3);
  EXPECT_EQ(agg.algorithm_counts[static_cast<int>(Algorithm::kAuto)], 1);
  EXPECT_EQ(agg.algorithm_counts[static_cast<int>(Algorithm::kFpt)], 1);
  EXPECT_EQ(agg.reduced_length_total, 10);
  EXPECT_EQ(agg.reduced_input_total, 150);
  EXPECT_DOUBLE_EQ(agg.TotalSeconds(), 0.75);

  TelemetryAggregate other;
  other.Add(cubic);
  agg.Merge(other);
  EXPECT_EQ(agg.documents, 3);
  EXPECT_EQ(agg.algorithm_counts[static_cast<int>(Algorithm::kCubic)], 1);
  // cubic skipped reduction, so the ratio denominators are unchanged.
  EXPECT_EQ(agg.reduced_input_total, 150);

  const std::string rendered = agg.ToString();
  EXPECT_NE(rendered.find("docs=3"), std::string::npos);
  EXPECT_NE(rendered.find("trivial=1"), std::string::npos);
  EXPECT_NE(rendered.find("fpt=1"), std::string::npos);
}

}  // namespace
}  // namespace dyck
