// Concurrency stress for the serving stack: many sessions fed from many
// threads, mixed well-formed/garbage traffic, session churn with pending
// cancellation, and a stats poller racing the counters. Primarily a
// TSan/ASan target (it is in the sanitizer preset filters); the functional
// assertions are conservation laws that hold under any interleaving.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/server/server.h"
#include "src/server/wire.h"

namespace dyck {
namespace server {
namespace {

// Counts complete response frames, stepping over payload bytes so bracket
// payloads are never mistaken for headers.
int64_t CountResponses(const std::string& text) {
  int64_t count = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t nl = text.find('\n', pos);
    EXPECT_NE(nl, std::string::npos) << "unterminated response";
    if (nl == std::string::npos) break;
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    EXPECT_EQ(line.rfind("dyckfix/1 ", 0), 0u) << "stray line: " << line;
    ++count;
    const size_t len_at = line.find(" len=");
    if (len_at != std::string::npos) {
      size_t end = line.find(' ', len_at + 5);
      if (end == std::string::npos) end = line.size();
      const size_t n = static_cast<size_t>(
          std::stoll(line.substr(len_at + 5, end - (len_at + 5))));
      EXPECT_LE(pos + n, text.size()) << "truncated payload";
      if (pos + n > text.size()) break;
      pos += n + 1;  // payload + LF
    }
  }
  return count;
}

struct SessionState {
  std::mutex mu;
  std::string out;
  std::unique_ptr<Session> session;
};

TEST(ServerStressTest, ConcurrentSessionsMixedTrafficConserveResponses) {
  ServerOptions options;
  options.workers = 4;
  options.max_queue_depth = 8;
  Server server(options);

  constexpr int kSessions = 6;
  constexpr int kIterations = 60;
  std::vector<std::unique_ptr<SessionState>> states;
  for (int s = 0; s < kSessions; ++s) {
    auto state = std::make_unique<SessionState>();
    SessionState* raw = state.get();
    state->session = server.OpenSession([raw](std::string_view bytes) {
      std::lock_guard<std::mutex> lock(raw->mu);
      raw->out.append(bytes.data(), bytes.size());
    });
    states.push_back(std::move(state));
  }

  std::atomic<bool> done{false};
  std::thread poller([&server, &done] {
    while (!done.load(std::memory_order_relaxed)) {
      const ServerStats stats = server.Stats();
      EXPECT_GE(stats.requests_received, 0);
      std::this_thread::yield();
    }
  });

  std::atomic<int64_t> expected_responses{0};
  std::atomic<int64_t> valid_frames{0};
  std::vector<std::thread> feeders;
  for (int s = 0; s < kSessions; ++s) {
    feeders.emplace_back([&, s] {
      SessionState& state = *states[s];
      int64_t responses = 0, frames = 0;
      for (int i = 0; i < kIterations; ++i) {
        const uint64_t id = static_cast<uint64_t>(i) + 1;
        std::string wire;
        switch (i % 6) {
          case 0:
            wire = "dyckfix/1 " + std::to_string(id) +
                   " repair len=4\n(]((\n";
            frames += 1, responses += 1;
            break;
          case 1:
            // Heavy enough to back the queue up and exercise the degrade
            // ladder and shedding under contention.
            wire = "dyckfix/1 " + std::to_string(id) +
                   " repair solver=cubic len=240\n" +
                   std::string(240, '(') + "\n";
            frames += 1, responses += 1;
            break;
          case 2:
            wire = "this is not a frame\n";  // id-0 err, no frame
            responses += 1;
            break;
          case 3:
            wire = "dyckfix/1 " + std::to_string(id) + " ping\n";
            frames += 1, responses += 1;
            break;
          case 4: {
            const std::string doc = "d" + std::to_string(i);
            wire = "dyckfix/1 " + std::to_string(id) + " open doc=" + doc +
                   " len=4\n(]((\n";
            wire += "dyckfix/1 " + std::to_string(id + 10000) +
                    " splice doc=" + doc + " pos=4 erase=0 len=2\n))\n";
            wire += "dyckfix/1 " + std::to_string(id + 20000) +
                    " repair doc=" + doc + "\n";
            wire += "dyckfix/1 " + std::to_string(id + 30000) +
                    " close doc=" + doc + "\n";
            frames += 4, responses += 4;
            break;
          }
          case 5:
            wire = "dyckfix/1 " + std::to_string(id) + " stats\n";
            frames += 1, responses += 1;
            break;
        }
        // Feed across an arbitrary split so reassembly is exercised under
        // concurrency, not just in the single-threaded parser tests.
        const size_t cut = wire.size() / 2;
        state.session->Feed(std::string_view(wire).substr(0, cut));
        state.session->Feed(std::string_view(wire).substr(cut));
      }
      expected_responses.fetch_add(responses, std::memory_order_relaxed);
      valid_frames.fetch_add(frames, std::memory_order_relaxed);
    });
  }
  for (std::thread& thread : feeders) thread.join();
  server.Drain();
  done.store(true, std::memory_order_relaxed);
  poller.join();

  int64_t total = 0;
  for (const auto& state : states) {
    std::lock_guard<std::mutex> lock(state->mu);
    total += CountResponses(state->out);
  }
  EXPECT_EQ(total, expected_responses.load());

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.requests_received, valid_frames.load());
  // Conservation: every valid frame is answered exactly one way. (No
  // faults are injected and nothing is cancelled in this test.)
  EXPECT_EQ(stats.served_ok + stats.shed_overloaded + stats.faulted +
                stats.cancelled,
            stats.requests_received);
  EXPECT_GT(stats.bytes_in, 0);
  EXPECT_GT(stats.bytes_out, 0);
}

TEST(ServerStressTest, SessionChurnCancelsPendingWithoutLeaks) {
  ServerOptions options;
  options.workers = 2;
  options.max_queue_depth = 64;
  Server server(options);

  int64_t fed = 0;
  for (int round = 0; round < 4; ++round) {
    std::mutex mu;
    std::string out;
    std::unique_ptr<Session> session =
        server.OpenSession([&mu, &out](std::string_view bytes) {
          std::lock_guard<std::mutex> lock(mu);
          out.append(bytes.data(), bytes.size());
        });
    std::string burst;
    for (int i = 1; i <= 30; ++i) {
      burst += "dyckfix/1 " + std::to_string(i) +
               " repair solver=cubic len=240\n" + std::string(240, '(') +
               "\n";
      ++fed;
    }
    session->Feed(burst);
    // Destroying the session cancels whatever is still queued; running
    // repairs finish and respond into `out`, which outlives the session.
    session.reset();
  }
  server.Drain();

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.requests_received, fed);
  EXPECT_EQ(stats.served_ok + stats.shed_overloaded + stats.faulted +
                stats.cancelled,
            stats.requests_received);
  // With a 2-deep worker pool fed 30-at-a-time bursts, closing early must
  // actually cancel queued work at least once across the rounds.
  EXPECT_GT(stats.cancelled, 0);
}

TEST(ServerStressTest, ShutdownRacingFeedersStaysTyped) {
  ServerOptions options;
  options.workers = 2;
  Server server(options);
  constexpr int kSessions = 4;
  std::vector<std::unique_ptr<SessionState>> states;
  for (int s = 0; s < kSessions; ++s) {
    auto state = std::make_unique<SessionState>();
    SessionState* raw = state.get();
    state->session = server.OpenSession([raw](std::string_view bytes) {
      std::lock_guard<std::mutex> lock(raw->mu);
      raw->out.append(bytes.data(), bytes.size());
    });
    states.push_back(std::move(state));
  }

  std::vector<std::thread> feeders;
  for (int s = 0; s < kSessions; ++s) {
    feeders.emplace_back([&, s] {
      SessionState& state = *states[s];
      for (int i = 1; i <= 40; ++i) {
        state.session->Feed("dyckfix/1 " + std::to_string(i) +
                            " repair len=4\n(]((\n");
      }
    });
  }
  std::thread stopper([&server] { server.BeginShutdown(); });
  for (std::thread& thread : feeders) thread.join();
  stopper.join();
  server.Drain();

  // Requests that arrived after the shutdown flag flipped got a typed
  // Cancelled error; everything else was served. Nothing was dropped.
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.requests_received, int64_t{kSessions} * 40);
  EXPECT_EQ(stats.served_ok + stats.shed_overloaded + stats.faulted +
                stats.cancelled,
            stats.requests_received);
  int64_t total = 0;
  for (const auto& state : states) {
    std::lock_guard<std::mutex> lock(state->mu);
    total += CountResponses(state->out);
  }
  EXPECT_EQ(total, int64_t{kSessions} * 40);
}

}  // namespace
}  // namespace server
}  // namespace dyck
