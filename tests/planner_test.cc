// The cost-model planner (src/pipeline/planner.h): kAuto must agree
// byte-for-byte with the forced run of whatever solver it picks, pick the
// cubic DP on the short high-distance inputs where FPT loses (the kAuto
// crossover regression), use the banded solver on single-peak inputs, and
// surface capability violations as InvalidArgument naming the solver.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/baseline/greedy.h"
#include "src/core/dyck.h"
#include "src/core/solver.h"
#include "src/gen/adversarial.h"
#include "src/gen/workload.h"
#include "src/pipeline/telemetry.h"

namespace dyck {
namespace {

ParenSeq Parse(const std::string& text) {
  return ParenAlphabet::Default().Parse(text).value();
}

std::vector<ParenSeq> Corpus() {
  std::vector<ParenSeq> corpus;
  uint64_t seed = 1;
  for (const gen::Shape shape :
       {gen::Shape::kUniform, gen::Shape::kDeep, gen::Shape::kFlat}) {
    for (const int64_t n : {32, 128, 384}) {
      for (const int64_t edits : {1, 3, 8}) {
        gen::BalancedOptions balanced;
        balanced.length = n;
        balanced.shape = shape;
        gen::CorruptionOptions corruption;
        corruption.num_edits = edits;
        corpus.push_back(
            gen::Corrupt(gen::RandomBalanced(balanced, seed), corruption,
                         seed + 1)
                .seq);
        seed += 2;
      }
    }
  }
  // Adversarial shapes: valleys, one mismatched peak, the greedy trap.
  corpus.push_back(gen::ManyValleys(4, 3));
  corpus.push_back(gen::MismatchedV(40, 4, 7));
  corpus.push_back(gen::GreedyTrap(24));
  return corpus;
}

double RepairSeconds(const ParenSeq& seq, const Options& options) {
  const auto start = std::chrono::steady_clock::now();
  const auto result = Repair(seq, options);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(result.ok());
  return elapsed.count();
}

// kAuto must be indistinguishable from forcing the solver it picked: same
// distance, same script, on every input and both metrics.
TEST(PlannerTest, AutoIsByteIdenticalToItsForcedChoice) {
  for (const ParenSeq& seq : Corpus()) {
    for (const Metric metric :
         {Metric::kDeletionsOnly, Metric::kDeletionsAndSubstitutions}) {
      Options auto_options;
      auto_options.metric = metric;
      const auto auto_result = Repair(seq, auto_options);
      ASSERT_TRUE(auto_result.ok());
      if (auto_result->telemetry.balanced_fast_path) continue;
      const std::string& choice = auto_result->telemetry.planner_choice;
      ASSERT_FALSE(choice.empty());
      EXPECT_EQ(choice, auto_result->telemetry.solver_name);

      Options forced = auto_options;
      forced.solver = choice;
      const auto forced_result = Repair(seq, forced);
      ASSERT_TRUE(forced_result.ok()) << choice;
      EXPECT_EQ(auto_result->distance, forced_result->distance) << choice;
      EXPECT_EQ(auto_result->script.ToString(),
                forced_result->script.ToString())
          << choice;
      EXPECT_EQ(forced_result->telemetry.solver_name, choice);

      // Distance() goes through the same planner/solver stack.
      const auto distance = Distance(seq, auto_options);
      ASSERT_TRUE(distance.ok());
      EXPECT_EQ(*distance, auto_result->distance);
    }
  }
}

TEST(PlannerTest, TelemetryRecordsTheDecision) {
  const auto result = Repair(Parse("(()("), {});
  ASSERT_TRUE(result.ok());
  const RepairTelemetry& t = result->telemetry;
  EXPECT_FALSE(t.planner_choice.empty());
  EXPECT_EQ(t.planner_choice, t.solver_name);
  EXPECT_GE(t.planned_cost, 0.0);
  // The greedy scan is an upper bound on the exact distance.
  EXPECT_GE(t.d_upper_bound, result->distance);
}

// The original kAuto bug: "unbalanced -> FPT" unconditionally, even on
// short high-distance inputs where the n^3 DP is an order of magnitude
// faster than the d^3-per-symbol FPT solver. The planner must route such
// inputs to cubic — and that routing must actually win wall-clock against
// forcing FPT.
TEST(PlannerTest, CrossoverRegressionShortHighDistanceGoesCubic) {
  gen::BalancedOptions balanced;
  balanced.length = 256;
  gen::CorruptionOptions corruption;
  corruption.num_edits = 32;
  const ParenSeq seq =
      gen::Corrupt(gen::RandomBalanced(balanced, 11), corruption, 12).seq;

  Options options;
  options.metric = Metric::kDeletionsOnly;
  const auto auto_result = Repair(seq, options);
  ASSERT_TRUE(auto_result.ok());
  EXPECT_EQ(auto_result->telemetry.planner_choice, "cubic");
  EXPECT_EQ(auto_result->telemetry.chosen_algorithm, Algorithm::kCubic);

  // Warm both paths once, then compare one timed run each. The measured
  // gap on this shape is >5x, so a plain comparison is stable.
  Options fpt = options;
  fpt.algorithm = Algorithm::kFpt;
  const double auto_seconds = RepairSeconds(seq, options);
  const double fpt_seconds = RepairSeconds(seq, fpt);
  EXPECT_LT(auto_seconds, fpt_seconds);

  const auto forced_cubic_distance = [&] {
    Options cubic = options;
    cubic.algorithm = Algorithm::kCubic;
    return Repair(seq, cubic);
  }();
  ASSERT_TRUE(forced_cubic_distance.ok());
  EXPECT_EQ(auto_result->distance, forced_cubic_distance->distance);
}

// Tiny inputs stay on the paper's FPT default (the planner's small-cost
// floor): predictions under measurement noise must not flap the choice.
TEST(PlannerTest, TinyInputsKeepTheFptDefault) {
  const auto result = Repair(Parse("(()("), {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->telemetry.chosen_algorithm, Algorithm::kFpt);
}

// EstimateDistanceUpperBound is the counting twin of GreedyRepair; the two
// share one policy-templated scan and may never drift.
TEST(PlannerTest, DistanceEstimateMatchesGreedyScriptCost) {
  for (const ParenSeq& seq : Corpus()) {
    for (const bool subs : {false, true}) {
      EXPECT_EQ(EstimateDistanceUpperBound(seq, subs),
                GreedyRepair(seq, subs).cost);
    }
  }
}

// The planner's actual hint takes the min of a forward scan and a
// reversed-with-flipped-directions scan. It must (a) equal the min of the
// forward estimate on the sequence and on its explicitly materialized
// reverse-flip (the zero-copy view may not drift from the real thing),
// and (b) still bound the true distance from above.
TEST(PlannerTest, BidirectionalEstimateIsTheTighterValidBound) {
  for (const ParenSeq& seq : Corpus()) {
    ParenSeq rev(seq.rbegin(), seq.rend());
    for (Paren& p : rev) p.is_open = !p.is_open;
    for (const bool subs : {false, true}) {
      const int64_t bidi = EstimateDistanceUpperBoundBidirectional(seq, subs);
      EXPECT_EQ(bidi, std::min(EstimateDistanceUpperBound(seq, subs),
                               EstimateDistanceUpperBound(rev, subs)));

      Options options;
      options.metric =
          subs ? Metric::kDeletionsAndSubstitutions : Metric::kDeletionsOnly;
      const auto exact = Repair(seq, options);
      ASSERT_TRUE(exact.ok());
      EXPECT_GE(bidi, exact->distance);
    }
  }
}

// The reversed scan exists because greedy's cascades are direction
// dependent: GreedyTrap is built to fool the left-to-right parse, so its
// reverse-flip fools the right-to-left one — and the bidirectional bound
// stays tight on both orientations.
TEST(PlannerTest, ReversedScanRescuesDirectionDependentCascades) {
  const ParenSeq trap = gen::GreedyTrap(24);
  ParenSeq flipped(trap.rbegin(), trap.rend());
  for (Paren& p : flipped) p.is_open = !p.is_open;
  const int64_t on_trap = EstimateDistanceUpperBoundBidirectional(trap, false);
  const int64_t on_flip =
      EstimateDistanceUpperBoundBidirectional(flipped, false);
  EXPECT_EQ(on_trap, on_flip);
  EXPECT_LE(on_flip, EstimateDistanceUpperBound(flipped, false));
}

// Forced banded agrees with forced cubic on single-peak inputs, at the
// generator's documented distance.
TEST(PlannerTest, BandedMatchesCubicOnSinglePeakInputs) {
  for (const int64_t errors : {1, 3, 7}) {
    const ParenSeq seq = gen::MismatchedV(100, errors, 21 + errors);
    Options banded;
    banded.metric = Metric::kDeletionsOnly;
    banded.solver = "banded";
    const auto banded_result = Repair(seq, banded);
    ASSERT_TRUE(banded_result.ok());

    Options cubic;
    cubic.metric = Metric::kDeletionsOnly;
    cubic.algorithm = Algorithm::kCubic;
    const auto cubic_result = Repair(seq, cubic);
    ASSERT_TRUE(cubic_result.ok());

    EXPECT_EQ(banded_result->distance, cubic_result->distance);
    EXPECT_EQ(banded_result->distance, 2 * errors);
    EXPECT_EQ(banded_result->script.Cost(), banded_result->distance);
  }
}

// On a large single-peak input the banded O(n d) alignment undercuts both
// FPT (n d^3) and cubic (n^3); the planner must find it.
TEST(PlannerTest, AutoPicksBandedOnLargeSinglePeak) {
  const ParenSeq seq = gen::MismatchedV(4000, 30, 5);
  Options options;
  options.metric = Metric::kDeletionsOnly;
  const auto result = Repair(seq, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->telemetry.planner_choice, "banded");
  EXPECT_EQ(result->telemetry.chosen_algorithm, Algorithm::kBanded);
  EXPECT_EQ(result->distance, 60);
}

// Accuracy gating, exact side: max_approximation_factor == 1.0 (the
// default, explicit, or a sub-1.0 value clamped up to it) admits exactly
// the solver set the planner had before the approximation ladder existed,
// so every choice, distance, and script is byte-identical to the default
// configuration.
TEST(PlannerTest, UnitFactorIsByteIdenticalToExactSelection) {
  for (const ParenSeq& seq : Corpus()) {
    for (const Metric metric :
         {Metric::kDeletionsOnly, Metric::kDeletionsAndSubstitutions}) {
      Options defaults;
      defaults.metric = metric;
      const auto base = Repair(seq, defaults);
      ASSERT_TRUE(base.ok());
      for (const double factor : {1.0, 0.25}) {  // < 1.0 clamps to 1.0
        Options gated = defaults;
        gated.max_approximation_factor = factor;
        const auto result = Repair(seq, gated);
        ASSERT_TRUE(result.ok());
        EXPECT_EQ(result->telemetry.planner_choice,
                  base->telemetry.planner_choice);
        EXPECT_EQ(result->distance, base->distance);
        EXPECT_EQ(result->script.ToString(), base->script.ToString());
        EXPECT_EQ(result->telemetry.certified_factor, 1.0);
        EXPECT_EQ(result->telemetry.exact_lower_bound, -1);
      }
    }
  }
}

// Accuracy gating, approximate side: on a large high-distance input the
// refinement solver's capped probes undercut every exact cost model, so a
// 2.0 budget routes there — and the answer must honour the certificate:
// exact <= reported <= 2 * exact, with the realized ratio and the proven
// lower bound in the telemetry.
TEST(PlannerTest, LadderPicksApproxOnLargeHighDistanceInputs) {
  gen::BalancedOptions balanced;
  balanced.length = 2048;
  gen::CorruptionOptions corruption;
  corruption.num_edits = 24;
  const ParenSeq seq =
      gen::Corrupt(gen::RandomBalanced(balanced, 31), corruption, 32).seq;

  Options exact_options;
  exact_options.metric = Metric::kDeletionsOnly;
  const auto exact = Repair(seq, exact_options);
  ASSERT_TRUE(exact.ok());

  Options approx_options = exact_options;
  approx_options.max_approximation_factor = 2.0;
  const auto result = Repair(seq, approx_options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->telemetry.planner_choice, "approx");
  EXPECT_EQ(result->telemetry.chosen_algorithm, Algorithm::kApprox);
  EXPECT_GE(result->distance, exact->distance);
  EXPECT_LE(result->distance, 2 * exact->distance);
  EXPECT_GE(result->telemetry.certified_factor, 1.0);
  EXPECT_LE(result->telemetry.certified_factor, 2.0);
  if (result->telemetry.certified_factor > 1.0) {
    // A certified-but-inexact answer keeps its proven lower bound.
    EXPECT_GE(result->telemetry.exact_lower_bound, 1);
    EXPECT_LE(result->telemetry.exact_lower_bound, exact->distance);
  }
  // The returned script really costs what the distance claims.
  EXPECT_EQ(result->script.Cost(), result->distance);
}

// With a 3.0 budget the certified-greedy rung (linear time) wins the cost
// race outright on inputs its counting certificate accepts — an
// all-openers run is the canonical case, where the untyped relaxation
// lower bound equals the greedy cost and proves greedy optimal.
TEST(PlannerTest, CertifiedGreedyWinsWhereItsCertificateIsTight) {
  ParenSeq seq;
  for (int i = 0; i < 4096; ++i) {
    seq.push_back(Paren::Open(static_cast<ParenType>(i % 3)));
  }
  Options options;
  options.metric = Metric::kDeletionsOnly;
  options.max_approximation_factor = 3.0;
  const auto result = Repair(seq, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->telemetry.planner_choice, "approx-greedy");
  EXPECT_EQ(result->distance, 4096);  // every opener must go
  // U == L collapses the certificate: the answer is provably optimal.
  EXPECT_EQ(result->telemetry.certified_factor, 1.0);
  EXPECT_EQ(result->telemetry.exact_lower_bound, -1);
}

TEST(PlannerTest, UnsupportedSolverMetricComboIsInvalidArgument) {
  // banded is deletions-only.
  Options banded;
  banded.solver = "banded";
  banded.metric = Metric::kDeletionsAndSubstitutions;
  const auto banded_result = Repair(Parse("(()("), banded);
  ASSERT_FALSE(banded_result.ok());
  EXPECT_TRUE(banded_result.status().IsInvalidArgument());
  EXPECT_EQ(banded_result.status().message(),
            "solver 'banded' does not support the deletions+substitutions"
            " metric (capability: deletions-only)");

  // fpt-substitution is substitutions-only.
  Options sub;
  sub.solver = "fpt-substitution";
  sub.metric = Metric::kDeletionsOnly;
  const auto sub_result = Repair(Parse("(()("), sub);
  ASSERT_FALSE(sub_result.ok());
  EXPECT_TRUE(sub_result.status().IsInvalidArgument());
  EXPECT_EQ(sub_result.status().message(),
            "solver 'fpt-substitution' does not support the deletions"
            " metric (capability: substitutions-only)");

  // Distance() enforces the same contract.
  EXPECT_TRUE(Distance(Parse("(()("), banded).status().IsInvalidArgument());
}

TEST(PlannerTest, UnknownSolverNameIsInvalidArgument) {
  Options options;
  options.solver = "quantum";
  const auto result = Repair(Parse("(()("), options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_EQ(result.status().message(), "unknown solver 'quantum'");
}

// Forcing banded on an input whose reduction is not single-peak must fail
// loudly, not misalign.
TEST(PlannerTest, BandedRejectsMultiPeakInputs) {
  Options options;
  options.metric = Metric::kDeletionsOnly;
  options.solver = "banded";
  const auto result = Repair(gen::ManyValleys(4, 3), options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().message().find("single-peak"),
            std::string::npos);
}

}  // namespace
}  // namespace dyck
