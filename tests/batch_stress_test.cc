// Concurrency stress for the batch runtime: many small batches submitted
// back-to-back from multiple caller threads, against both a shared engine
// and per-caller engines, with valid and failing documents interleaved.
// Every document's expected outcome is a pure function of its identity
// (caller, batch, slot), so any cross-talk or ordering violation shows up
// as a wrong distance or a wrong status in a specific slot.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/batch.h"
#include "src/runtime/batch_engine.h"

namespace dyck {
namespace {

constexpr int kCallers = 4;
constexpr int kBatchesPerCaller = 25;
constexpr int kDocsPerBatch = 8;
constexpr int64_t kMaxDistance = 4;

// Document (caller, batch, slot): `opens` unmatched '(' symbols. Under the
// deletion metric its distance is exactly `opens`; with max_distance = 4,
// documents with more than 4 opens must fail with BoundExceeded.
int64_t OpensFor(int caller, int batch, int slot) {
  return (caller * 7 + batch * 3 + slot) % 8;
}

ParenSeq DocFor(int caller, int batch, int slot) {
  return ParenSeq(static_cast<size_t>(OpensFor(caller, batch, slot)),
                  Paren::Open(0));
}

Options StressOptions() {
  Options options;
  options.metric = Metric::kDeletionsOnly;
  options.max_distance = kMaxDistance;
  return options;
}

// Runs one caller's batches against `engine` and records any mismatch.
void RunCaller(runtime::BatchRepairEngine* engine, int caller,
               std::vector<std::string>* failures) {
  const Options options = StressOptions();
  for (int batch = 0; batch < kBatchesPerCaller; ++batch) {
    std::vector<ParenSeq> docs;
    docs.reserve(kDocsPerBatch);
    for (int slot = 0; slot < kDocsPerBatch; ++slot) {
      docs.push_back(DocFor(caller, batch, slot));
    }
    const runtime::BatchRepairOutcome out =
        engine->RepairAll(docs, options);
    if (out.results.size() != docs.size()) {
      failures->push_back("caller " + std::to_string(caller) +
                          ": wrong result count");
      continue;
    }
    for (int slot = 0; slot < kDocsPerBatch; ++slot) {
      const int64_t opens = OpensFor(caller, batch, slot);
      const auto& result = out.results[slot];
      const std::string id = "caller " + std::to_string(caller) +
                             " batch " + std::to_string(batch) + " slot " +
                             std::to_string(slot);
      if (opens > kMaxDistance) {
        if (!result.status().IsBoundExceeded()) {
          failures->push_back(id + ": expected BoundExceeded, got " +
                              result.status().ToString());
        }
      } else if (!result.ok()) {
        failures->push_back(id + ": unexpected " +
                            result.status().ToString());
      } else if (result->distance != opens) {
        failures->push_back(id + ": distance " +
                            std::to_string(result->distance) + " != " +
                            std::to_string(opens));
      } else if (!result->repaired.empty()) {
        failures->push_back(id + ": repaired sequence not empty");
      }
    }
  }
}

void StressEngines(bool shared_engine, int jobs) {
  std::unique_ptr<runtime::BatchRepairEngine> shared;
  if (shared_engine) {
    shared = std::make_unique<runtime::BatchRepairEngine>(
        runtime::BatchOptions{.jobs = jobs});
  }
  std::vector<std::vector<std::string>> failures(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int caller = 0; caller < kCallers; ++caller) {
    callers.emplace_back([&, caller] {
      if (shared != nullptr) {
        RunCaller(shared.get(), caller, &failures[caller]);
      } else {
        runtime::BatchRepairEngine own({.jobs = jobs});
        RunCaller(&own, caller, &failures[caller]);
      }
    });
  }
  for (std::thread& thread : callers) thread.join();
  for (const auto& caller_failures : failures) {
    for (const std::string& failure : caller_failures) {
      ADD_FAILURE() << failure;
    }
  }
}

TEST(BatchStressTest, SharedEngineManyCallers) { StressEngines(true, 3); }

TEST(BatchStressTest, PerCallerEngines) { StressEngines(false, 2); }

TEST(BatchStressTest, SharedInlineEngineManyCallers) {
  // jobs = 1 has no pool: RepairAll must still be safe to call from
  // multiple threads at once (no hidden shared state).
  StressEngines(true, 1);
}

TEST(BatchStressTest, MixedRealDocumentsKeepInputOrder) {
  // Distinct, individually-verifiable documents of very different costs in
  // one batch: sizes differ so completion order inverts submission order.
  std::vector<ParenSeq> docs;
  const int kDocs = 24;
  for (int i = 0; i < kDocs; ++i) {
    // Doc i: i unmatched opens surrounded by balanced padding.
    ParenSeq doc;
    for (int p = 0; p < (kDocs - i) * 8; ++p) {
      doc.push_back(Paren::Open(1));
      doc.push_back(Paren::Close(1));
    }
    doc.insert(doc.end(), static_cast<size_t>(i), Paren::Open(0));
    docs.push_back(std::move(doc));
  }
  Options options;
  options.metric = Metric::kDeletionsOnly;
  const runtime::BatchRepairOutcome out =
      RepairBatch(docs, options, {.jobs = 4});
  ASSERT_EQ(out.results.size(), docs.size());
  for (int i = 0; i < kDocs; ++i) {
    ASSERT_TRUE(out.results[i].ok()) << out.results[i].status();
    EXPECT_EQ(out.results[i]->distance, i) << "slot " << i;
    EXPECT_EQ(out.results[i]->repaired.size(),
              docs[i].size() - static_cast<size_t>(i))
        << "slot " << i;
  }
}

}  // namespace
}  // namespace dyck
