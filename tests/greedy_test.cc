#include <gtest/gtest.h>

#include <random>

#include "src/alphabet/parse.h"
#include "src/baseline/cubic.h"
#include "src/baseline/greedy.h"
#include "src/gen/workload.h"

namespace dyck {
namespace {

ParenSeq Parse(const std::string& text) {
  return ParenAlphabet::Default().Parse(text).value();
}

TEST(GreedyTest, ExactOnBalancedInput) {
  const GreedyResult result = GreedyRepair(Parse("([]{})"), false);
  EXPECT_EQ(result.cost, 0);
  EXPECT_EQ(result.script.aligned_pairs.size(), 3u);
}

TEST(GreedyTest, SimpleConflicts) {
  EXPECT_EQ(GreedyRepair(Parse(")"), false).cost, 1);
  EXPECT_EQ(GreedyRepair(Parse("("), false).cost, 1);
  EXPECT_EQ(GreedyRepair(Parse("(]"), false).cost, 2);
  EXPECT_EQ(GreedyRepair(Parse("(]"), true).cost, 1);
  EXPECT_EQ(GreedyRepair(Parse("(("), true).cost, 1);
}

TEST(GreedyTest, ScriptsAlwaysValid) {
  std::mt19937_64 rng(654);
  for (int trial = 0; trial < 300; ++trial) {
    ParenSeq seq;
    const int64_t n = rng() % 30;
    for (int64_t i = 0; i < n; ++i) {
      seq.push_back(Paren{static_cast<ParenType>(rng() % 3), rng() % 2 == 0});
    }
    for (const bool subs : {false, true}) {
      const GreedyResult result = GreedyRepair(seq, subs);
      const Status status =
          ValidateScript(seq, result.script, result.cost, subs);
      EXPECT_TRUE(status.ok()) << status << " on " << ToString(seq);
    }
  }
}

TEST(GreedyTest, NeverBeatsTheOptimum) {
  std::mt19937_64 rng(321);
  for (int trial = 0; trial < 300; ++trial) {
    ParenSeq seq;
    const int64_t n = rng() % 16;
    for (int64_t i = 0; i < n; ++i) {
      seq.push_back(Paren{static_cast<ParenType>(rng() % 3), rng() % 2 == 0});
    }
    for (const bool subs : {false, true}) {
      EXPECT_GE(GreedyRepair(seq, subs).cost, CubicDistance(seq, subs))
          << ToString(seq);
    }
  }
}

TEST(GreedyTest, ApproximationRatioOnLightCorruptionIsModest) {
  // No worst-case guarantee is claimed, but on randomly corrupted balanced
  // sequences the heuristic should stay within a small constant of the
  // optimum — this is its reason to exist.
  int64_t greedy_total = 0;
  int64_t optimal_total = 0;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    const ParenSeq base =
        gen::RandomBalanced({.length = 60, .num_types = 3}, seed);
    const gen::CorruptedSequence corrupted =
        gen::Corrupt(base, {.num_edits = 3, .num_types = 3}, seed + 1);
    greedy_total += GreedyRepair(corrupted.seq, true).cost;
    optimal_total += CubicDistance(corrupted.seq, true);
  }
  EXPECT_LE(greedy_total, 4 * optimal_total);
  EXPECT_GE(greedy_total, optimal_total);
}

TEST(GreedyTest, SuboptimalCaseExists) {
  // Greedy is a heuristic: document a case where it provably loses.
  // "([{" + ")": optimal rewrites "{" into "]" (cost 1); greedy
  // substitutes ")" into "}" and then pays for the leftovers.
  const ParenSeq seq = Parse("([{)");
  EXPECT_EQ(CubicDistance(seq, true), 1);
  EXPECT_GT(GreedyRepair(seq, true).cost, 1);
}

TEST(GreedyTest, NoCascadesOnDeepLightlyCorruptedInputs) {
  // Regression for two measured cascade modes (spurious openers poisoning
  // the stack; orphaned closers consuming parents): on big inputs with
  // few errors the heuristic must stay within a small factor of optimal
  // instead of the ~90x it produced before the lookahead rules.
  for (uint64_t seed = 0; seed < 6; ++seed) {
    const ParenSeq base =
        gen::RandomBalanced({.length = 1 << 14, .num_types = 4}, seed);
    const gen::CorruptedSequence corrupted =
        gen::Corrupt(base, {.num_edits = 2, .num_types = 4}, seed * 3);
    const int64_t greedy = GreedyRepair(corrupted.seq, true).cost;
    EXPECT_LE(greedy, 8 * corrupted.edit2_bound + 4)
        << "seed " << seed << ": greedy " << greedy << " vs bound "
        << corrupted.edit2_bound;
  }
}

TEST(GreedyTest, LinearTimeSmoke) {
  const ParenSeq base =
      gen::RandomBalanced({.length = 1 << 20, .num_types = 4}, 1);
  const gen::CorruptedSequence corrupted =
      gen::Corrupt(base, {.num_edits = 50, .num_types = 4}, 2);
  const GreedyResult result = GreedyRepair(corrupted.seq, true);
  EXPECT_GT(result.cost, 0);
  EXPECT_TRUE(
      ValidateScript(corrupted.seq, result.script, result.cost, true).ok());
}

}  // namespace
}  // namespace dyck
