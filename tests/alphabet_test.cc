#include <gtest/gtest.h>

#include "src/alphabet/paren.h"
#include "src/alphabet/parse.h"

namespace dyck {
namespace {

ParenSeq Parse(const std::string& text) {
  auto result = ParenAlphabet::Default().Parse(text);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

TEST(ParenTest, MatchesRequiresOpenCloseSameType) {
  EXPECT_TRUE(Paren::Open(3).Matches(Paren::Close(3)));
  EXPECT_FALSE(Paren::Open(3).Matches(Paren::Close(2)));
  EXPECT_FALSE(Paren::Close(3).Matches(Paren::Open(3)));
  EXPECT_FALSE(Paren::Open(3).Matches(Paren::Open(3)));
}

TEST(ParenTest, UForgetsDirectionKeepsType) {
  const ParenSeq seq = Parse("([)]");
  EXPECT_EQ(U(seq), (std::vector<ParenType>{0, 1, 0, 1}));
}

TEST(ParenTest, RevReversesOrderOnly) {
  const ParenSeq seq = Parse("([");
  const ParenSeq rev = Rev(seq);
  ASSERT_EQ(rev.size(), 2u);
  EXPECT_EQ(rev[0], Paren::Open(1));
  EXPECT_EQ(rev[1], Paren::Open(0));
}

TEST(BalanceTest, Examples) {
  // Paper §2: "(()){}" is balanced and "(()(" is not.
  EXPECT_TRUE(IsBalanced(Parse("(()){}")));
  EXPECT_FALSE(IsBalanced(Parse("(()(")));
  EXPECT_TRUE(IsBalanced({}));
  EXPECT_TRUE(IsBalanced(Parse("([{}])")));
  EXPECT_FALSE(IsBalanced(Parse("([)]")));  // interleaving is not allowed
  EXPECT_FALSE(IsBalanced(Parse(")(")));
  EXPECT_FALSE(IsBalanced(Parse("(")));
}

TEST(BalanceTest, UnmatchedCount) {
  EXPECT_EQ(UnmatchedCount(Parse("(()){}")), 0);
  EXPECT_EQ(UnmatchedCount(Parse("(((")), 3);
  EXPECT_EQ(UnmatchedCount(Parse(")))")), 3);
  EXPECT_EQ(UnmatchedCount(Parse(")(")), 2);
  EXPECT_EQ(UnmatchedCount(Parse("([)]")), 2);
}

TEST(ToStringTest, RoundTripsDefaultAlphabet) {
  const std::string text = "([{<>}])()";
  EXPECT_EQ(ToString(Parse(text)), text);
}

TEST(ToStringTest, LargeTypesGetNumericSuffix) {
  EXPECT_EQ(ToString(ParenSeq{Paren::Open(7)}), "(7");
  EXPECT_EQ(ToString(ParenSeq{Paren::Close(12)}), ")12");
}

TEST(AlphabetTest, ParseRejectsUnknownCharacters) {
  const auto result = ParenAlphabet::Default().Parse("(a)");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsParseError());
}

TEST(AlphabetTest, ParseLenientSkipsUnknownCharacters) {
  const ParenSeq seq = ParenAlphabet::Default().ParseLenient("f(x[i]) + 1");
  EXPECT_EQ(ToString(seq), "([])");
}

TEST(AlphabetTest, CustomAlphabet) {
  auto alphabet = ParenAlphabet::Create({"ab", "xy"});
  ASSERT_TRUE(alphabet.ok());
  const auto seq = alphabet->Parse("axyb");
  ASSERT_TRUE(seq.ok());
  EXPECT_TRUE(IsBalanced(*seq));
  EXPECT_EQ(alphabet->Render(*seq).value(), "axyb");
}

TEST(AlphabetTest, CreateRejectsBadPairs) {
  EXPECT_TRUE(ParenAlphabet::Create({"abc"}).status().IsInvalidArgument());
  EXPECT_TRUE(ParenAlphabet::Create({"aa"}).status().IsInvalidArgument());
  EXPECT_TRUE(
      ParenAlphabet::Create({"ab", "bc"}).status().IsInvalidArgument());
}

TEST(AlphabetTest, RenderRejectsOutOfRangeTypes) {
  EXPECT_TRUE(ParenAlphabet::Default()
                  .Render({Paren::Open(99)})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace dyck
