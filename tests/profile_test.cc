#include <gtest/gtest.h>

#include <random>

#include "src/alphabet/parse.h"
#include "src/gen/workload.h"
#include "src/profile/height.h"
#include "src/profile/reduce.h"
#include "src/profile/valleys.h"

namespace dyck {
namespace {

ParenSeq Parse(const std::string& text) {
  return ParenAlphabet::Default().Parse(text).value();
}

TEST(HeightTest, Empty) { EXPECT_TRUE(ComputeHeights({}).empty()); }

TEST(HeightTest, Definition15Steps) {
  // "(()())": heights 0,-1,-1,-1,-1,0 (two-open steps down, two-close up,
  // direction changes flat).
  const std::vector<int64_t> h = ComputeHeights(Parse("(()())"));
  EXPECT_EQ(h, (std::vector<int64_t>{0, -1, -1, -1, -1, 0}));
}

TEST(HeightTest, BalancedSequenceHasEqualEndpointHeights) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const ParenSeq seq =
        gen::RandomBalanced({.length = 64, .num_types = 3}, seed);
    const auto h = ComputeHeights(seq);
    EXPECT_EQ(h.front(), h.back()) << ToString(seq);
  }
}

TEST(HeightTest, RunsAreMonotoneSlopes) {
  const ParenSeq seq = Parse("((()))]]][[[");
  const auto h = ComputeHeights(seq);
  // Opening run of 3 descends, closing run ascends, etc.
  EXPECT_EQ(h[0], 0);
  EXPECT_EQ(h[1], -1);
  EXPECT_EQ(h[2], -2);
  EXPECT_EQ(h[3], -2);  // direction change
  EXPECT_EQ(h[5], 0);
}

TEST(HeightTest, RenderProfileContainsEveryColumn) {
  const std::string out = RenderProfile(Parse("(())"));
  EXPECT_NE(out.find('('), std::string::npos);
  EXPECT_NE(out.find(')'), std::string::npos);
}

TEST(ReduceTest, BalancedReducesToEmpty) {
  const Reduced r = Reduce(Parse("([]{})"));
  EXPECT_TRUE(r.seq.empty());
  EXPECT_EQ(r.matched_pairs.size(), 3u);
}

TEST(ReduceTest, CanonicalUnbalancedShape) {
  // ")(" cannot reduce.
  const Reduced r = Reduce(Parse(")("));
  EXPECT_EQ(ToString(r.seq), ")(");
  EXPECT_TRUE(r.matched_pairs.empty());
}

TEST(ReduceTest, CascadingRemovals) {
  // Outer pair becomes adjacent only after inner removal.
  const Reduced r = Reduce(Parse("([])"));
  EXPECT_TRUE(r.seq.empty());
}

TEST(ReduceTest, TypeMismatchBlocksRemoval) {
  const Reduced r = Reduce(Parse("(]"));
  EXPECT_EQ(r.seq.size(), 2u);
}

TEST(ReduceTest, OrigPosStrictlyIncreasingAndConsistent) {
  const ParenSeq seq = Parse("((]{})[)");
  const Reduced r = Reduce(seq);
  for (size_t i = 0; i < r.orig_pos.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(r.orig_pos[i - 1], r.orig_pos[i]);
    }
    EXPECT_EQ(seq[r.orig_pos[i]], r.seq[i]);
  }
  // Removed symbols + kept symbols account for the whole input.
  EXPECT_EQ(r.orig_pos.size() + 2 * r.matched_pairs.size(), seq.size());
}

TEST(ReduceTest, ResultSatisfiesProperty19) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    ParenSeq seq;
    for (int i = 0; i < 40; ++i) {
      seq.push_back(Paren{static_cast<ParenType>(rng() % 3), rng() % 2 == 0});
    }
    const Reduced r = Reduce(seq);
    EXPECT_TRUE(SatisfiesProperty19(r.seq)) << ToString(r.seq);
  }
}

TEST(ReduceTest, MatchedPairsAreRealMatches) {
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    ParenSeq seq;
    for (int i = 0; i < 30; ++i) {
      seq.push_back(Paren{static_cast<ParenType>(rng() % 2), rng() % 2 == 0});
    }
    for (const auto& [a, b] : Reduce(seq).matched_pairs) {
      EXPECT_LT(a, b);
      EXPECT_TRUE(seq[a].Matches(seq[b]));
    }
  }
}

TEST(Property19Test, Direct) {
  EXPECT_TRUE(SatisfiesProperty19(Parse(")(")));
  EXPECT_FALSE(SatisfiesProperty19(Parse("()")));
  EXPECT_TRUE(SatisfiesProperty19(Parse("(]")));
  EXPECT_TRUE(SatisfiesProperty19({}));
}

TEST(ValleyTest, RunsAlternate) {
  const ParenSeq seq = Reduce(Parse("((]]((]]")).seq;
  const BlockStructure bs = BlockStructure::Build(seq);
  ASSERT_EQ(bs.num_runs(), 4);
  EXPECT_TRUE(bs.runs()[0].is_open);
  EXPECT_FALSE(bs.runs()[1].is_open);
  EXPECT_TRUE(bs.runs()[2].is_open);
  EXPECT_FALSE(bs.runs()[3].is_open);
  EXPECT_EQ(bs.num_valleys(), 2);
}

TEST(ValleyTest, LeadingCloserMakesEmptyD1) {
  const ParenSeq seq = Parse("))((");
  const BlockStructure bs = BlockStructure::Build(seq);
  EXPECT_EQ(bs.num_runs(), 2);
  // Valley 1 = (empty, U_1); valley 2 = (D_2, empty).
  EXPECT_EQ(bs.num_valleys(), 2);
}

TEST(ValleyTest, RunOfLookup) {
  const ParenSeq seq = Parse("(((]]]");
  const BlockStructure bs = BlockStructure::Build(seq);
  EXPECT_EQ(bs.run_of(0), 0);
  EXPECT_EQ(bs.run_of(2), 0);
  EXPECT_EQ(bs.run_of(3), 1);
  EXPECT_EQ(bs.run_of(5), 1);
}

TEST(ValleyTest, NumValleysInRange) {
  const ParenSeq seq = Parse("((]]((]]");
  const BlockStructure bs = BlockStructure::Build(seq);
  EXPECT_EQ(bs.NumValleysInRange(0, 7), 2);
  EXPECT_EQ(bs.NumValleysInRange(0, 3), 1);
  EXPECT_EQ(bs.NumValleysInRange(2, 5), 2);  // closing run + opening run
  EXPECT_EQ(bs.NumValleysInRange(0, 1), 1);  // trailing open run
  EXPECT_EQ(bs.NumValleysInRange(4, 3), 0);
}

TEST(ValleyTest, SingleRun) {
  const ParenSeq seq = Parse("(((");
  const BlockStructure bs = BlockStructure::Build(seq);
  EXPECT_EQ(bs.num_runs(), 1);
  EXPECT_EQ(bs.num_valleys(), 1);
}

}  // namespace
}  // namespace dyck
