#include <gtest/gtest.h>

#include <random>

#include "src/lms/wave.h"

namespace dyck {
namespace {

std::vector<int32_t> RandomString(int64_t n, int32_t sigma, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int32_t> s(n);
  for (auto& v : s) v = static_cast<int32_t>(rng() % sigma);
  return s;
}

TEST(QuadraticReferenceTest, DeletionMetricBasics) {
  // edit1' = minimum deletions to equalize (LCS distance).
  EXPECT_EQ(EditDistanceQuadratic({}, {}, WaveMetric::kDeletion), 0);
  EXPECT_EQ(EditDistanceQuadratic({1, 2, 3}, {1, 2, 3},
                                  WaveMetric::kDeletion),
            0);
  EXPECT_EQ(EditDistanceQuadratic({1}, {2}, WaveMetric::kDeletion), 2);
  EXPECT_EQ(EditDistanceQuadratic({1, 2}, {2}, WaveMetric::kDeletion), 1);
  EXPECT_EQ(EditDistanceQuadratic({1, 2, 3}, {}, WaveMetric::kDeletion), 3);
}

TEST(QuadraticReferenceTest, SubstitutionMetricBasics) {
  EXPECT_EQ(EditDistanceQuadratic({1}, {2}, WaveMetric::kSubstitution), 1);
  // Definition 28's paired deletion: two consecutive symbols, cost 1.
  EXPECT_EQ(EditDistanceQuadratic({1, 2}, {}, WaveMetric::kSubstitution), 1);
  EXPECT_EQ(EditDistanceQuadratic({1, 2, 3}, {}, WaveMetric::kSubstitution),
            2);
  EXPECT_EQ(
      EditDistanceQuadratic({1, 2, 3, 4}, {}, WaveMetric::kSubstitution), 2);
  // Lemma 30: appending equal symbols never changes the distance.
  EXPECT_EQ(EditDistanceQuadratic({1, 2, 9}, {3, 9},
                                  WaveMetric::kSubstitution),
            EditDistanceQuadratic({1, 2}, {3}, WaveMetric::kSubstitution));
}

class WaveDifferentialTest
    : public ::testing::TestWithParam<std::tuple<WaveMetric, int32_t>> {};

TEST_P(WaveDifferentialTest, MatchesQuadraticDp) {
  const auto [metric, sigma] = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(sigma) * 7 +
                      (metric == WaveMetric::kDeletion ? 0 : 1));
  for (int trial = 0; trial < 300; ++trial) {
    const int64_t na = rng() % 24;
    const int64_t nb = rng() % 24;
    const auto a = RandomString(na, sigma, rng());
    const auto b = RandomString(nb, sigma, rng());
    const int64_t expected = EditDistanceQuadratic(a, b, metric);
    // Exact budget: must find it.
    const auto found =
        WaveEditDistance(a, b, metric, static_cast<int32_t>(expected));
    ASSERT_TRUE(found.has_value()) << trial;
    EXPECT_EQ(*found, expected);
    // Generous budget: same value.
    const auto found_loose = WaveEditDistance(
        a, b, metric, static_cast<int32_t>(expected) + 7);
    ASSERT_TRUE(found_loose.has_value());
    EXPECT_EQ(*found_loose, expected);
    // Tight-minus-one budget: must refuse.
    if (expected > 0) {
      EXPECT_FALSE(
          WaveEditDistance(a, b, metric, static_cast<int32_t>(expected) - 1)
              .has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WaveDifferentialTest,
    ::testing::Combine(::testing::Values(WaveMetric::kDeletion,
                                         WaveMetric::kSubstitution),
                       ::testing::Values<int32_t>(1, 2, 3, 8)));

TEST(WaveTableTest, PointQueriesMatchFullDp) {
  std::mt19937_64 rng(1234);
  for (int trial = 0; trial < 60; ++trial) {
    const int64_t na = 1 + rng() % 15;
    const int64_t nb = 1 + rng() % 15;
    const int32_t sigma = 2 + trial % 3;
    const WaveMetric metric =
        trial % 2 == 0 ? WaveMetric::kDeletion : WaveMetric::kSubstitution;
    auto a = RandomString(na, sigma, rng());
    auto b = RandomString(nb, sigma, rng());
    std::vector<int32_t> c = a;
    c.insert(c.end(), b.begin(), b.end());
    const LceIndex index = LceIndex::Build(c);
    const int32_t max_d = 6;
    WaveParams params{0, na, na, nb, max_d, metric};
    const WaveTable table = ComputeWaves(index, params);
    for (int64_t r = 0; r <= na; ++r) {
      for (int64_t cc = 0; cc <= nb; ++cc) {
        const std::vector<int32_t> pa(a.begin(), a.begin() + r);
        const std::vector<int32_t> pb(b.begin(), b.begin() + cc);
        const int64_t truth = EditDistanceQuadratic(pa, pb, metric);
        const auto point = table.Point(r, cc);
        if (truth <= max_d) {
          ASSERT_TRUE(point.has_value()) << r << "," << cc;
          EXPECT_EQ(*point, truth);
          EXPECT_TRUE(table.PointWithin(r, cc));
        } else {
          EXPECT_FALSE(point.has_value());
          EXPECT_FALSE(table.PointWithin(r, cc));
        }
      }
    }
  }
}

TEST(WaveTableTest, StoredCellsIsQuadraticInDNotN) {
  // Theorem 12's space bound: O(d^2) cells regardless of string length.
  const auto a = RandomString(5000, 4, 42);
  const auto b = RandomString(5000, 4, 43);
  std::vector<int32_t> c = a;
  c.insert(c.end(), b.begin(), b.end());
  const LceIndex index = LceIndex::Build(c);
  WaveParams params{0, 5000, 5000, 5000, 10, WaveMetric::kDeletion};
  const WaveTable table = ComputeWaves(index, params);
  EXPECT_LE(table.StoredCells(), (10 + 1) * (2 * 10 + 1));
}

TEST(WaveTableTest, IdenticalStringsDistanceZero) {
  const auto a = RandomString(100, 3, 7);
  const auto found = WaveEditDistance(a, a, WaveMetric::kDeletion, 0);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, 0);
}

TEST(WaveTableTest, EmptySides) {
  EXPECT_EQ(*WaveEditDistance({}, {}, WaveMetric::kDeletion, 0), 0);
  EXPECT_EQ(*WaveEditDistance({1, 1, 1}, {}, WaveMetric::kDeletion, 3), 3);
  EXPECT_EQ(*WaveEditDistance({1, 1, 1}, {}, WaveMetric::kSubstitution, 2),
            2);
  EXPECT_EQ(*WaveEditDistance({}, {2, 2}, WaveMetric::kSubstitution, 1), 1);
}

}  // namespace
}  // namespace dyck
