#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "src/suffix/rmq_linear.h"

namespace dyck {
namespace {

TEST(LinearRmqTest, SingleElement) {
  const LinearRangeMin rmq = LinearRangeMin::Build({42});
  EXPECT_EQ(rmq.Min(0, 0), 42);
  EXPECT_EQ(rmq.ArgMin(0, 0), 0);
}

TEST(LinearRmqTest, TinyArrays) {
  for (int64_t n = 1; n <= 9; ++n) {
    std::vector<int32_t> values(n);
    std::mt19937_64 rng(n);
    for (auto& v : values) v = static_cast<int32_t>(rng() % 5);
    const LinearRangeMin rmq = LinearRangeMin::Build(values);
    for (int64_t lo = 0; lo < n; ++lo) {
      for (int64_t hi = lo; hi < n; ++hi) {
        const auto it =
            std::min_element(values.begin() + lo, values.begin() + hi + 1);
        EXPECT_EQ(rmq.Min(lo, hi), *it) << n << ":" << lo << "," << hi;
        EXPECT_EQ(rmq.ArgMin(lo, hi), it - values.begin())
            << "leftmost argmin; " << n << ":" << lo << "," << hi;
      }
    }
  }
}

class LinearRmqRandomTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int32_t>> {};

TEST_P(LinearRmqRandomTest, MatchesBruteForceAndSparseTable) {
  const auto [n, sigma] = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(n) * 31 + sigma);
  std::vector<int32_t> values(n);
  for (auto& v : values) v = static_cast<int32_t>(rng() % sigma) - sigma / 2;
  const LinearRangeMin linear = LinearRangeMin::Build(values);
  const RangeMin sparse = RangeMin::Build(values);
  for (int trial = 0; trial < 2000; ++trial) {
    int64_t lo = rng() % n;
    int64_t hi = rng() % n;
    if (lo > hi) std::swap(lo, hi);
    const int32_t expected = sparse.Min(lo, hi);
    ASSERT_EQ(linear.Min(lo, hi), expected) << lo << "," << hi;
    const int64_t arg = linear.ArgMin(lo, hi);
    ASSERT_GE(arg, lo);
    ASSERT_LE(arg, hi);
    ASSERT_EQ(values[arg], expected);
    // Leftmost tie-break.
    for (int64_t k = lo; k < arg; ++k) ASSERT_GT(values[k], expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LinearRmqRandomTest,
    ::testing::Combine(::testing::Values<int64_t>(5, 33, 257, 4096, 100000),
                       ::testing::Values<int32_t>(2, 17, 1000000)));

TEST(LinearRmqTest, AdversarialPatterns) {
  // Strictly increasing, strictly decreasing, sawtooth, constant — shapes
  // that stress the Cartesian-tree signatures.
  const int64_t n = 1000;
  for (int pattern = 0; pattern < 4; ++pattern) {
    std::vector<int32_t> values(n);
    for (int64_t i = 0; i < n; ++i) {
      switch (pattern) {
        case 0: values[i] = static_cast<int32_t>(i); break;
        case 1: values[i] = static_cast<int32_t>(n - i); break;
        case 2: values[i] = static_cast<int32_t>(i % 7); break;
        default: values[i] = 5; break;
      }
    }
    const LinearRangeMin rmq = LinearRangeMin::Build(values);
    std::mt19937_64 rng(pattern);
    for (int trial = 0; trial < 500; ++trial) {
      int64_t lo = rng() % n;
      int64_t hi = rng() % n;
      if (lo > hi) std::swap(lo, hi);
      EXPECT_EQ(rmq.Min(lo, hi),
                *std::min_element(values.begin() + lo,
                                  values.begin() + hi + 1));
    }
  }
}

}  // namespace
}  // namespace dyck
