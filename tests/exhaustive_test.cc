// Exhaustive differential validation on small universes.
//
// Unlike the seeded random sweeps elsewhere, these tests enumerate EVERY
// sequence up to a length bound and require all independent implementations
// to agree with the cubic oracle. This pins down edge cases random
// sampling can miss (empty blocks, all-one-direction runs, alternating
// conflicts, ...).

#include <gtest/gtest.h>

#include "src/baseline/branching.h"
#include "src/baseline/cubic.h"
#include "src/baseline/dyck1.h"
#include "src/baseline/greedy.h"
#include "src/cfg/edit_distance.h"
#include "src/fpt/deletion.h"
#include "src/fpt/substitution.h"

namespace dyck {
namespace {

// Enumerates all sequences of exactly `length` over `num_types` types and
// both directions, invoking `fn` on each.
template <typename Fn>
void ForAllSequences(int64_t length, int32_t num_types, const Fn& fn) {
  const int64_t alphabet = 2 * num_types;
  ParenSeq seq(length);
  std::vector<int32_t> digits(length, 0);
  while (true) {
    for (int64_t i = 0; i < length; ++i) {
      seq[i] = Paren{digits[i] / 2, digits[i] % 2 == 0};
    }
    fn(seq);
    int64_t pos = 0;
    while (pos < length && ++digits[pos] == alphabet) {
      digits[pos] = 0;
      ++pos;
    }
    if (pos == length) break;
  }
}

TEST(ExhaustiveTest, SingleTypeUpToLength12) {
  for (int64_t len = 0; len <= 12; ++len) {
    ForAllSequences(len, 1, [&](const ParenSeq& seq) {
      const int64_t e1 = CubicDistance(seq, false);
      const int64_t e2 = CubicDistance(seq, true);
      ASSERT_EQ(FptDeletionDistance(seq), e1) << ToString(seq);
      ASSERT_EQ(FptSubstitutionDistance(seq), e2) << ToString(seq);
      ASSERT_EQ(*Dyck1Distance(seq, false), e1) << ToString(seq);
      ASSERT_EQ(*Dyck1Distance(seq, true), e2) << ToString(seq);
    });
  }
}

TEST(ExhaustiveTest, TwoTypesUpToLength7) {
  for (int64_t len = 0; len <= 7; ++len) {
    ForAllSequences(len, 2, [&](const ParenSeq& seq) {
      const int64_t e1 = CubicDistance(seq, false);
      const int64_t e2 = CubicDistance(seq, true);
      ASSERT_EQ(FptDeletionDistance(seq), e1) << ToString(seq);
      ASSERT_EQ(FptSubstitutionDistance(seq), e2) << ToString(seq);
    });
  }
}

TEST(ExhaustiveTest, BranchingTwoTypesUpToLength6) {
  for (int64_t len = 0; len <= 6; ++len) {
    ForAllSequences(len, 2, [&](const ParenSeq& seq) {
      const int64_t e1 = CubicDistance(seq, false);
      const int64_t e2 = CubicDistance(seq, true);
      ASSERT_EQ(BranchingDistance(seq, false, len).value_or(-1), e1)
          << ToString(seq);
      ASSERT_EQ(BranchingDistance(seq, true, len).value_or(-1), e2)
          << ToString(seq);
    });
  }
}

TEST(ExhaustiveTest, CfgParserTwoTypesUpToLength6) {
  for (int64_t len = 0; len <= 6; ++len) {
    ForAllSequences(len, 2, [&](const ParenSeq& seq) {
      ASSERT_EQ(cfg::DyckDistanceViaCfg(seq, false),
                CubicDistance(seq, false))
          << ToString(seq);
      ASSERT_EQ(cfg::DyckDistanceViaCfg(seq, true),
                CubicDistance(seq, true))
          << ToString(seq);
    });
  }
}

TEST(ExhaustiveTest, ScriptsValidateTwoTypesUpToLength6) {
  for (int64_t len = 0; len <= 6; ++len) {
    ForAllSequences(len, 2, [&](const ParenSeq& seq) {
      const FptResult del = FptDeletionRepair(seq);
      ASSERT_TRUE(
          ValidateScript(seq, del.script, del.distance, false).ok())
          << ToString(seq);
      const FptResult sub = FptSubstitutionRepair(seq);
      ASSERT_TRUE(ValidateScript(seq, sub.script, sub.distance, true).ok())
          << ToString(seq);
      const GreedyResult greedy = GreedyRepair(seq, true);
      ASSERT_TRUE(
          ValidateScript(seq, greedy.script, greedy.cost, true).ok())
          << ToString(seq);
      ASSERT_GE(greedy.cost, sub.distance) << ToString(seq);
    });
  }
}

}  // namespace
}  // namespace dyck
