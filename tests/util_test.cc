#include <gtest/gtest.h>

#include <sstream>

#include "src/util/status.h"
#include "src/util/statusor.h"

namespace dyck {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingPredicates) {
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::BoundExceeded("x").IsBoundExceeded());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::ParseError("oops");
  Status t = s;            // copy constructor
  Status u;
  u = s;                   // copy assignment
  EXPECT_EQ(t.ToString(), s.ToString());
  EXPECT_EQ(u.ToString(), s.ToString());
  // Self-assignment must be harmless.
  u = *&u;
  EXPECT_EQ(u.message(), "oops");
}

TEST(StatusTest, MoveLeavesSourceOk) {
  Status s = Status::Internal("gone");
  Status t = std::move(s);
  EXPECT_TRUE(t.IsInternal());
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::BoundExceeded("d too small");
  EXPECT_EQ(os.str(), "BoundExceeded: d too small");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "Cancelled");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status ChainedCheck(int x) {
  DYCK_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(ChainedCheck(1).ok());
  EXPECT_TRUE(ChainedCheck(-1).IsInvalidArgument());
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = ParsePositive(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 7);
  EXPECT_EQ(*v, 7);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = ParsePositive(-1);
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsInvalidArgument());
}

StatusOr<int> DoubleIfPositive(int x) {
  DYCK_ASSIGN_OR_RETURN(const int v, ParsePositive(x));
  return 2 * v;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  EXPECT_EQ(DoubleIfPositive(21).value(), 42);
  EXPECT_FALSE(DoubleIfPositive(0).ok());
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> s = std::string("payload");
  const std::string moved = std::move(s).value();
  EXPECT_EQ(moved, "payload");
}

}  // namespace
}  // namespace dyck
