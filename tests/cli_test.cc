// Integration tests for the dyckfix CLI: invokes the built binary on
// temporary files and checks output + exit status.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifndef DYCKFIX_CLI_PATH
#error "DYCKFIX_CLI_PATH must be defined by the build"
#endif

namespace dyck {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string stdout_text;
};

RunResult RunCli(const std::string& args, const std::string& stdin_text) {
  const std::string in_path =
      ::testing::TempDir() + "/cli_in_" +
      std::to_string(reinterpret_cast<uintptr_t>(&args)) + ".txt";
  {
    std::ofstream out(in_path, std::ios::binary);
    out << stdin_text;
  }
  const std::string command = std::string(DYCKFIX_CLI_PATH) + " " + args +
                              " < " + in_path + " 2>/dev/null";
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  size_t read = 0;
  while ((read = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.stdout_text.append(buffer, read);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::remove(in_path.c_str());
  return result;
}

RunResult RunCliOnFile(const std::string& args, const std::string& name,
                       const std::string& content) {
  const std::string path = ::testing::TempDir() + "/" + name;
  {
    std::ofstream out(path, std::ios::binary);
    out << content;
  }
  const std::string command =
      std::string(DYCKFIX_CLI_PATH) + " " + args + " " + path +
      " 2>/dev/null";
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  size_t read = 0;
  while ((read = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.stdout_text.append(buffer, read);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::remove(path.c_str());
  return result;
}

// Like RunCli, but merges stderr into the captured output (2>&1) so tests
// can see diagnostics: --stats lines and flag-error messages.
RunResult RunCliMerged(const std::string& args,
                       const std::string& stdin_text) {
  const std::string in_path =
      ::testing::TempDir() + "/cli_in_merged_" +
      std::to_string(reinterpret_cast<uintptr_t>(&args)) + ".txt";
  {
    std::ofstream out(in_path, std::ios::binary);
    out << stdin_text;
  }
  const std::string command = std::string(DYCKFIX_CLI_PATH) + " " + args +
                              " < " + in_path + " 2>&1";
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  size_t read = 0;
  while ((read = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.stdout_text.append(buffer, read);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::remove(in_path.c_str());
  return result;
}

// Like RunCliMerged, but with an environment-variable prefix ("K=V ")
// prepended to the shell command; for DYCKFIX_SIMD override tests.
RunResult RunCliMergedEnv(const std::string& env_prefix,
                          const std::string& args,
                          const std::string& stdin_text) {
  const std::string in_path =
      ::testing::TempDir() + "/cli_in_env_" +
      std::to_string(reinterpret_cast<uintptr_t>(&args)) + ".txt";
  {
    std::ofstream out(in_path, std::ios::binary);
    out << stdin_text;
  }
  const std::string command = env_prefix + " " +
                              std::string(DYCKFIX_CLI_PATH) + " " + args +
                              " < " + in_path + " 2>&1";
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  size_t read = 0;
  while ((read = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.stdout_text.append(buffer, read);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::remove(in_path.c_str());
  return result;
}

// Runs the CLI with `args` only (no stdin redirection); for batch mode.
// Set merge_stderr to also capture diagnostics (2>&1).
RunResult RunCommand(const std::string& args, bool merge_stderr = false) {
  const std::string command =
      std::string(DYCKFIX_CLI_PATH) + " " + args +
      (merge_stderr ? " 2>&1" : " 2>/dev/null");
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  size_t read = 0;
  while ((read = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.stdout_text.append(buffer, read);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(CliTest, BalancedInputExitsZeroAndEchoes) {
  const RunResult result = RunCli("--format=parens", "([]{})");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.stdout_text, "([]{})");
}

TEST(CliTest, RepairsParensAndExitsOne) {
  const RunResult result = RunCli("--format=parens --quiet", "([)](");
  EXPECT_EQ(result.exit_code, 1);
  // 2 edits under the default substitution metric; output is balanced.
  EXPECT_EQ(result.stdout_text, "([])");
}

TEST(CliTest, DeletionMetric) {
  const RunResult result =
      RunCli("--format=parens --metric=deletions --quiet", "((");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(result.stdout_text, "");
}

TEST(CliTest, CheckMode) {
  EXPECT_EQ(RunCli("--format=parens --check", "()").exit_code, 0);
  EXPECT_EQ(RunCli("--format=parens --check", "(").exit_code, 1);
}

TEST(CliTest, JsonByExtension) {
  // The paper's metrics have no insertions, so the unclosed "[" is removed
  // (one edit) rather than closed.
  const RunResult result = RunCliOnFile(
      "--quiet", "broken.json", R"({"a": [1, 2})");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(result.stdout_text, R"({"a": 1, 2})");
}

TEST(CliTest, HtmlByExtension) {
  const RunResult result = RunCliOnFile(
      "--quiet --metric=deletions", "broken.html",
      "<p>hello <b>world</p>");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(result.stdout_text, "<p>hello world</p>");
}

TEST(CliTest, MaxDistanceGivesUp) {
  const RunResult result =
      RunCli("--format=parens --max-distance=1 --quiet", "((((((((");
  EXPECT_EQ(result.exit_code, 2);
}

TEST(CliTest, BadFlagIsUsageError) {
  EXPECT_EQ(RunCli("--format=bogus", "()").exit_code, 2);
  EXPECT_EQ(RunCli("--no-such-flag", "()").exit_code, 2);
}

TEST(CliTest, PreserveModeInsertsMissingBracket) {
  // The flagship use case: with --preserve the unclosed "[" gains a "]"
  // instead of being deleted.
  const RunResult result = RunCliOnFile(
      "--quiet --preserve", "trunc.json", R"({"a": [1, 2})");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(result.stdout_text, R"({"a": [1, 2]})");
}

TEST(CliTest, JsonOutputMode) {
  const RunResult balanced = RunCli("--format=parens --json", "()");
  EXPECT_EQ(balanced.exit_code, 0);
  EXPECT_EQ(balanced.stdout_text, "{\"cost\":0,\"ops\":[]}\n");

  const RunResult repaired =
      RunCli("--format=parens --json --quiet", "((");
  EXPECT_EQ(repaired.exit_code, 1);
  EXPECT_NE(repaired.stdout_text.find("\"cost\":1"), std::string::npos);
  EXPECT_NE(repaired.stdout_text.find("\"op\":\"substitute\""),
            std::string::npos);
}

TEST(CliTest, NonBracketTextPassesThrough) {
  const RunResult result =
      RunCli("--format=parens --quiet", "f(x[0]) { return; ");
  EXPECT_EQ(result.exit_code, 1);
  // The '{' is repaired (deleted or closed); prose is preserved.
  EXPECT_NE(result.stdout_text.find("f(x[0])"), std::string::npos);
  EXPECT_NE(result.stdout_text.find("return;"), std::string::npos);
}

TEST(CliTest, BatchModeOverDirectory) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "cli_batch_dir";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto write = [&](const char* name, const char* content) {
    std::ofstream out(dir / name, std::ios::binary);
    out << content;
  };
  write("a.txt", "()");
  write("b.txt", "([)](");
  write("c.txt", "[]{}");

  const RunResult result =
      RunCommand("--batch=" + dir.string() + " --jobs=2");
  EXPECT_EQ(result.exit_code, 1);  // one file needed repair, none errored
  const std::vector<std::string> lines = Lines(result.stdout_text);
  ASSERT_EQ(lines.size(), 4u) << result.stdout_text;
  // One line per file, in input (sorted) order, then the summary.
  EXPECT_EQ(lines[0], (dir / "a.txt").string() + ": balanced");
  EXPECT_EQ(lines[1],
            (dir / "b.txt").string() + ": repaired distance=2");
  EXPECT_EQ(lines[2], (dir / "c.txt").string() + ": balanced");
  EXPECT_NE(lines[3].find("summary: files=3 balanced=2 repaired=1"
                          " errors=0 cancelled=0 degraded=0 edits=2 jobs=2"),
            std::string::npos)
      << lines[3];
  fs::remove_all(dir);
}

TEST(CliTest, BatchModeFileListWithMissingFile) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "cli_batch_list";
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    std::ofstream out(dir / "ok.txt", std::ios::binary);
    out << "((";
  }
  const fs::path list = dir / "list.txt";
  {
    std::ofstream out(list, std::ios::binary);
    out << (dir / "ok.txt").string() << "\n"
        << (dir / "missing.txt").string() << "\n";
  }

  const RunResult result = RunCommand("--batch=" + list.string() +
                                      " --jobs=1 --metric=deletions");
  EXPECT_EQ(result.exit_code, 2);  // the missing file is an error
  const std::vector<std::string> lines = Lines(result.stdout_text);
  ASSERT_EQ(lines.size(), 3u) << result.stdout_text;
  EXPECT_EQ(lines[0], (dir / "ok.txt").string() + ": repaired distance=2");
  // The message carries the OS detail (strerror) after the path; pin the
  // stable prefix only.
  EXPECT_EQ(lines[1].rfind(
                (dir / "missing.txt").string() + ": error: cannot open", 0),
            0u)
      << lines[1];
  EXPECT_NE(lines[2].find("balanced=0 repaired=1 errors=1"
                          " cancelled=0 degraded=0 edits=2"),
            std::string::npos)
      << lines[2];
  fs::remove_all(dir);
}

TEST(CliTest, BatchModeBadPathIsUsageError) {
  EXPECT_EQ(RunCommand("--batch=/nonexistent/dir/nowhere").exit_code, 2);
  // --batch with a trailing file operand is ambiguous: usage error.
  EXPECT_EQ(RunCommand("--batch=/tmp extra_operand").exit_code, 2);
}

// "cost":N from the CLI's --json script output; -1 if absent.
long long CostOf(const std::string& json) {
  const size_t pos = json.find("\"cost\":");
  if (pos == std::string::npos) return -1;
  return std::atoll(json.c_str() + pos + 7);
}

TEST(CliTest, AlgorithmFlagCombinationsAgree) {
  // Optimal solvers may pick different same-cost scripts, so the invariant
  // across --algorithm values is the cost, not the exact bytes: every
  // solver must match the cubic reference distance for each metric.
  const char* inputs[] = {"([)](", "((", "]][["};
  for (const char* input : inputs) {
    for (const char* metric : {"substitutions", "deletions"}) {
      const std::string base_args =
          std::string("--format=parens --quiet --json --metric=") + metric;
      const RunResult reference =
          RunCli(base_args + " --algorithm=cubic", input);
      EXPECT_EQ(reference.exit_code, 1) << input << " " << metric;
      const long long expected_cost = CostOf(reference.stdout_text);
      EXPECT_GT(expected_cost, 0) << reference.stdout_text;
      for (const char* algorithm : {"auto", "fpt", "branching"}) {
        const RunResult result = RunCli(
            base_args + " --algorithm=" + algorithm, input);
        EXPECT_EQ(result.exit_code, 1)
            << input << " " << metric << " " << algorithm;
        EXPECT_EQ(CostOf(result.stdout_text), expected_cost)
            << input << " " << metric << " " << algorithm << ": "
            << result.stdout_text;
      }
    }
  }
}

TEST(CliTest, StatsFlagPrintsPipelineBreakdown) {
  const RunResult repaired =
      RunCliMerged("--format=parens --quiet --stats", "(()(");
  EXPECT_EQ(repaired.exit_code, 1);
  EXPECT_NE(repaired.stdout_text.find("dyckfix: stats: algorithm=fpt"),
            std::string::npos)
      << repaired.stdout_text;
  for (const char* field :
       {"iterations=", "reduced=", "copies=0", "normalize=", "solve=",
        "materialize=", "total="}) {
    EXPECT_NE(repaired.stdout_text.find(field), std::string::npos)
        << "missing " << field << " in: " << repaired.stdout_text;
  }

  const RunResult balanced =
      RunCliMerged("--format=parens --quiet --stats", "()");
  EXPECT_EQ(balanced.exit_code, 0);
  EXPECT_NE(
      balanced.stdout_text.find("dyckfix: stats: algorithm=none(balanced)"),
      std::string::npos)
      << balanced.stdout_text;

  const RunResult cubic = RunCliMerged(
      "--format=parens --quiet --stats --algorithm=cubic", "((");
  EXPECT_EQ(cubic.exit_code, 1);
  EXPECT_NE(cubic.stdout_text.find("dyckfix: stats: algorithm=cubic"),
            std::string::npos)
      << cubic.stdout_text;
}

TEST(CliTest, StatsReportsForcedSimdBackend) {
  // Round trip: forcing a backend through the environment must be
  // reflected verbatim in the --stats telemetry line.
  const RunResult scalar = RunCliMergedEnv(
      "DYCKFIX_SIMD=scalar", "--format=parens --quiet --stats", "(()(");
  EXPECT_EQ(scalar.exit_code, 1);
  EXPECT_NE(scalar.stdout_text.find(" backend=scalar"), std::string::npos)
      << scalar.stdout_text;

  // Without an override the line still names whichever backend
  // auto-detection picked.
  const RunResult autodetect =
      RunCliMerged("--format=parens --quiet --stats", "(()(");
  EXPECT_EQ(autodetect.exit_code, 1);
  EXPECT_NE(autodetect.stdout_text.find(" backend="), std::string::npos)
      << autodetect.stdout_text;
}

TEST(CliTest, InvalidSimdBackendIsStartupError) {
  // A typo'd DYCKFIX_SIMD must abort with a message naming the valid
  // set, not silently fall back to scalar kernels.
  const RunResult result = RunCliMergedEnv(
      "DYCKFIX_SIMD=sse9", "--format=parens --quiet", "()");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stdout_text.find(
                "invalid DYCKFIX_SIMD value 'sse9'; valid values: "
                "scalar, sse2, avx2, neon"),
            std::string::npos)
      << result.stdout_text;
}

TEST(CliTest, BatchStatsAggregatesAcrossFiles) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "cli_batch_stats";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto write = [&](const char* name, const char* content) {
    std::ofstream out(dir / name, std::ios::binary);
    out << content;
  };
  write("a.txt", "(()(");
  write("b.txt", "()");
  write("c.txt", "))((");

  const RunResult result = RunCommand(
      "--batch=" + dir.string() + " --jobs=2 --stats", /*merge_stderr=*/true);
  EXPECT_EQ(result.exit_code, 1);
  // Two files repaired through the pipeline; the balanced one
  // short-circuits before Repair and contributes no telemetry.
  EXPECT_NE(result.stdout_text.find("dyckfix: stats: docs=2"),
            std::string::npos)
      << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("fpt=2"), std::string::npos);
  EXPECT_NE(result.stdout_text.find("copies=0"), std::string::npos);
  fs::remove_all(dir);
}

TEST(CliTest, UnknownFlagValuesGiveUsableErrors) {
  const RunResult metric = RunCliMerged("--metric=bogus", "()");
  EXPECT_EQ(metric.exit_code, 2);
  EXPECT_NE(
      metric.stdout_text.find(
          "unknown --metric value 'bogus' (expected substitutions|deletions)"),
      std::string::npos)
      << metric.stdout_text;

  const RunResult algorithm = RunCliMerged("--algorithm=quantum", "()");
  EXPECT_EQ(algorithm.exit_code, 2);
  EXPECT_NE(algorithm.stdout_text.find(
                "unknown --algorithm value 'quantum' (expected "
                "auto|fpt|cubic|branching|banded|greedy|approx or a name"
                " from --list-algorithms)"),
            std::string::npos)
      << algorithm.stdout_text;

  const RunResult format = RunCliMerged("--format=yaml", "()");
  EXPECT_EQ(format.exit_code, 2);
  EXPECT_NE(format.stdout_text.find("unknown --format value 'yaml'"),
            std::string::npos)
      << format.stdout_text;

  const RunResult flag = RunCliMerged("--frobnicate", "()");
  EXPECT_EQ(flag.exit_code, 2);
  EXPECT_NE(flag.stdout_text.find("unknown option '--frobnicate'"),
            std::string::npos)
      << flag.stdout_text;
  // The usage line still follows the specific diagnostic.
  EXPECT_NE(flag.stdout_text.find("usage: dyckfix"), std::string::npos);
}

TEST(CliTest, ListAlgorithmsPrintsTheRegistry) {
  const RunResult result = RunCommand("--list-algorithms");
  EXPECT_EQ(result.exit_code, 0);
  for (const char* name : {"auto", "fpt", "fpt-deletion", "fpt-substitution",
                           "cubic", "branching", "banded", "greedy",
                           "approx", "approx-greedy"}) {
    EXPECT_NE(result.stdout_text.find(name), std::string::npos)
        << name << "\n"
        << result.stdout_text;
  }
  // The KIND column spells out the accuracy contract of each rung of
  // the ladder: exact, a certified factor, or no guarantee at all.
  EXPECT_NE(result.stdout_text.find("exact"), std::string::npos);
  EXPECT_NE(result.stdout_text.find("<=2.0x"), std::string::npos);
  EXPECT_NE(result.stdout_text.find("<=3.0x"), std::string::npos);
  EXPECT_NE(result.stdout_text.find("heuristic"), std::string::npos);
  EXPECT_NE(result.stdout_text.find("deletions+substitutions"),
            std::string::npos);
}

TEST(CliTest, RegistryNamesAreAcceptedByAlgorithmFlag) {
  const RunResult result =
      RunCliMerged("--algorithm=fpt-deletion --metric=deletions --quiet",
                   "(()(");
  EXPECT_EQ(result.exit_code, 1);  // repaired
  // Any minimal deletion repair of "(()(" removes two opens, leaving "()".
  EXPECT_EQ(result.stdout_text, "()");
}

TEST(CliTest, UnsupportedSolverMetricComboSurfacesTheCapabilityError) {
  // banded is deletions-only; the registry's InvalidArgument message is
  // surfaced verbatim.
  const RunResult result =
      RunCliMerged("--algorithm=banded --metric=substitutions", "(()(");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stdout_text.find(
                "solver 'banded' does not support the "
                "deletions+substitutions metric (capability: deletions-only)"),
            std::string::npos)
      << result.stdout_text;
}

TEST(CliTest, StatsReportThePlannerDecision) {
  const RunResult result = RunCliMerged("--stats --quiet", "(()(");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.stdout_text.find("solver="), std::string::npos)
      << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("planner="), std::string::npos)
      << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("d_hint="), std::string::npos)
      << result.stdout_text;
}

// The text form of gen::ManyValleys(32, 16): edit2 = 512, so the exact
// solvers cannot finish inside any test-scale deadline — only budget
// enforcement (trip, degrade, or cancel) gets the CLI past this input.
std::string SlowText() {
  std::string text;
  for (int v = 0; v < 32; ++v) {
    text.append(16, '(');
    text.append(16, ']');
  }
  return text;
}

TEST(CliBudgetTest, BudgetFlagValuesAreValidated) {
  for (const char* bad :
       {"--timeout-ms=abc", "--timeout-ms=0", "--timeout-ms=-5",
        "--batch-timeout-ms=0", "--batch-timeout-ms=never",
        "--degrade=bogus"}) {
    EXPECT_EQ(RunCli(std::string(bad) + " --format=parens", "()").exit_code,
              2)
        << bad;
  }
  const RunResult timeout = RunCliMerged("--timeout-ms=0", "()");
  EXPECT_NE(timeout.stdout_text.find(
                "unknown --timeout-ms value '0' (expected a positive "
                "integer (milliseconds))"),
            std::string::npos)
      << timeout.stdout_text;
  const RunResult degrade = RunCliMerged("--degrade=bogus", "()");
  EXPECT_NE(
      degrade.stdout_text.find(
          "unknown --degrade value 'bogus' (expected fail|greedy|approx)"),
      std::string::npos)
      << degrade.stdout_text;
}

TEST(CliBudgetTest, TimeoutWithFailPolicyReportsTheTrip) {
  const RunResult result =
      RunCliMerged("--format=parens --timeout-ms=50", SlowText());
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stdout_text.find("DeadlineExceeded"), std::string::npos)
      << result.stdout_text;
}

TEST(CliBudgetTest, TimeoutWithGreedyPolicyMarksDegraded) {
  const RunResult result = RunCliMerged(
      "--format=parens --timeout-ms=50 --degrade=greedy", SlowText());
  EXPECT_EQ(result.exit_code, 1);  // a repair was produced
  EXPECT_NE(result.stdout_text.find("(degraded)"), std::string::npos)
      << result.stdout_text;
}

TEST(CliBudgetTest, BatchDocTimeoutDegradesOnlyTheSlowFile) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "cli_budget_batch";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto write = [&](const char* name, const std::string& content) {
    std::ofstream out(dir / name, std::ios::binary);
    out << content;
  };
  write("a.txt", "([)](");
  write("b_slow.txt", SlowText());
  write("c.txt", "()");

  const RunResult result = RunCommand(
      "--batch=" + dir.string() +
      " --jobs=2 --timeout-ms=50 --degrade=greedy");
  EXPECT_EQ(result.exit_code, 1);  // repaired, but no errors or cancels
  const std::vector<std::string> lines = Lines(result.stdout_text);
  ASSERT_EQ(lines.size(), 4u) << result.stdout_text;
  EXPECT_EQ(lines[0], (dir / "a.txt").string() + ": repaired distance=2");
  EXPECT_NE(lines[1].find((dir / "b_slow.txt").string() + ": repaired"),
            std::string::npos)
      << lines[1];
  EXPECT_NE(lines[1].find(" (degraded)"), std::string::npos) << lines[1];
  EXPECT_EQ(lines[2], (dir / "c.txt").string() + ": balanced");
  EXPECT_NE(lines[3].find("errors=0 cancelled=0 degraded=1"),
            std::string::npos)
      << lines[3];
  fs::remove_all(dir);
}

TEST(CliBudgetTest, BatchDeadlineCancelsQueuedFiles) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "cli_budget_cancel";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto write = [&](const char* name, const std::string& content) {
    std::ofstream out(dir / name, std::ios::binary);
    out << content;
  };
  // Sorted order puts the two budget-busters first: with --jobs=2 they pin
  // both workers past the deadline and every later file gets cancelled.
  write("a_slow.txt", SlowText());
  write("b_slow.txt", SlowText());
  write("c.txt", "((");
  write("d.txt", "()");

  const RunResult result = RunCommand("--batch=" + dir.string() +
                                      " --jobs=2 --batch-timeout-ms=100");
  EXPECT_EQ(result.exit_code, 2);  // cancelled files fail the batch
  const std::vector<std::string> lines = Lines(result.stdout_text);
  ASSERT_EQ(lines.size(), 5u) << result.stdout_text;
  EXPECT_EQ(lines[2], (dir / "c.txt").string() + ": cancelled (batch deadline)");
  EXPECT_EQ(lines[3], (dir / "d.txt").string() + ": cancelled (batch deadline)");
  const std::string& summary = lines[4];
  EXPECT_NE(summary.find("cancelled="), std::string::npos) << summary;
  EXPECT_EQ(summary.find("cancelled=0"), std::string::npos) << summary;
  fs::remove_all(dir);
}

}  // namespace
}  // namespace dyck
