// Integration tests for the dyckfix CLI: invokes the built binary on
// temporary files and checks output + exit status.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifndef DYCKFIX_CLI_PATH
#error "DYCKFIX_CLI_PATH must be defined by the build"
#endif

namespace dyck {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string stdout_text;
};

RunResult RunCli(const std::string& args, const std::string& stdin_text) {
  const std::string in_path =
      ::testing::TempDir() + "/cli_in_" +
      std::to_string(reinterpret_cast<uintptr_t>(&args)) + ".txt";
  {
    std::ofstream out(in_path, std::ios::binary);
    out << stdin_text;
  }
  const std::string command = std::string(DYCKFIX_CLI_PATH) + " " + args +
                              " < " + in_path + " 2>/dev/null";
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  size_t read = 0;
  while ((read = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.stdout_text.append(buffer, read);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::remove(in_path.c_str());
  return result;
}

RunResult RunCliOnFile(const std::string& args, const std::string& name,
                       const std::string& content) {
  const std::string path = ::testing::TempDir() + "/" + name;
  {
    std::ofstream out(path, std::ios::binary);
    out << content;
  }
  const std::string command =
      std::string(DYCKFIX_CLI_PATH) + " " + args + " " + path +
      " 2>/dev/null";
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  size_t read = 0;
  while ((read = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.stdout_text.append(buffer, read);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::remove(path.c_str());
  return result;
}

// Runs the CLI with `args` only (no stdin redirection); for batch mode.
RunResult RunCommand(const std::string& args) {
  const std::string command =
      std::string(DYCKFIX_CLI_PATH) + " " + args + " 2>/dev/null";
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  size_t read = 0;
  while ((read = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.stdout_text.append(buffer, read);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(CliTest, BalancedInputExitsZeroAndEchoes) {
  const RunResult result = RunCli("--format=parens", "([]{})");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.stdout_text, "([]{})");
}

TEST(CliTest, RepairsParensAndExitsOne) {
  const RunResult result = RunCli("--format=parens --quiet", "([)](");
  EXPECT_EQ(result.exit_code, 1);
  // 2 edits under the default substitution metric; output is balanced.
  EXPECT_EQ(result.stdout_text, "([])");
}

TEST(CliTest, DeletionMetric) {
  const RunResult result =
      RunCli("--format=parens --metric=deletions --quiet", "((");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(result.stdout_text, "");
}

TEST(CliTest, CheckMode) {
  EXPECT_EQ(RunCli("--format=parens --check", "()").exit_code, 0);
  EXPECT_EQ(RunCli("--format=parens --check", "(").exit_code, 1);
}

TEST(CliTest, JsonByExtension) {
  // The paper's metrics have no insertions, so the unclosed "[" is removed
  // (one edit) rather than closed.
  const RunResult result = RunCliOnFile(
      "--quiet", "broken.json", R"({"a": [1, 2})");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(result.stdout_text, R"({"a": 1, 2})");
}

TEST(CliTest, HtmlByExtension) {
  const RunResult result = RunCliOnFile(
      "--quiet --metric=deletions", "broken.html",
      "<p>hello <b>world</p>");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(result.stdout_text, "<p>hello world</p>");
}

TEST(CliTest, MaxDistanceGivesUp) {
  const RunResult result =
      RunCli("--format=parens --max-distance=1 --quiet", "((((((((");
  EXPECT_EQ(result.exit_code, 2);
}

TEST(CliTest, BadFlagIsUsageError) {
  EXPECT_EQ(RunCli("--format=bogus", "()").exit_code, 2);
  EXPECT_EQ(RunCli("--no-such-flag", "()").exit_code, 2);
}

TEST(CliTest, PreserveModeInsertsMissingBracket) {
  // The flagship use case: with --preserve the unclosed "[" gains a "]"
  // instead of being deleted.
  const RunResult result = RunCliOnFile(
      "--quiet --preserve", "trunc.json", R"({"a": [1, 2})");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(result.stdout_text, R"({"a": [1, 2]})");
}

TEST(CliTest, JsonOutputMode) {
  const RunResult balanced = RunCli("--format=parens --json", "()");
  EXPECT_EQ(balanced.exit_code, 0);
  EXPECT_EQ(balanced.stdout_text, "{\"cost\":0,\"ops\":[]}\n");

  const RunResult repaired =
      RunCli("--format=parens --json --quiet", "((");
  EXPECT_EQ(repaired.exit_code, 1);
  EXPECT_NE(repaired.stdout_text.find("\"cost\":1"), std::string::npos);
  EXPECT_NE(repaired.stdout_text.find("\"op\":\"substitute\""),
            std::string::npos);
}

TEST(CliTest, NonBracketTextPassesThrough) {
  const RunResult result =
      RunCli("--format=parens --quiet", "f(x[0]) { return; ");
  EXPECT_EQ(result.exit_code, 1);
  // The '{' is repaired (deleted or closed); prose is preserved.
  EXPECT_NE(result.stdout_text.find("f(x[0])"), std::string::npos);
  EXPECT_NE(result.stdout_text.find("return;"), std::string::npos);
}

TEST(CliTest, BatchModeOverDirectory) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "cli_batch_dir";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto write = [&](const char* name, const char* content) {
    std::ofstream out(dir / name, std::ios::binary);
    out << content;
  };
  write("a.txt", "()");
  write("b.txt", "([)](");
  write("c.txt", "[]{}");

  const RunResult result =
      RunCommand("--batch=" + dir.string() + " --jobs=2");
  EXPECT_EQ(result.exit_code, 1);  // one file needed repair, none errored
  const std::vector<std::string> lines = Lines(result.stdout_text);
  ASSERT_EQ(lines.size(), 4u) << result.stdout_text;
  // One line per file, in input (sorted) order, then the summary.
  EXPECT_EQ(lines[0], (dir / "a.txt").string() + ": balanced");
  EXPECT_EQ(lines[1],
            (dir / "b.txt").string() + ": repaired distance=2");
  EXPECT_EQ(lines[2], (dir / "c.txt").string() + ": balanced");
  EXPECT_NE(lines[3].find("summary: files=3 balanced=2 repaired=1"
                          " errors=0 edits=2 jobs=2"),
            std::string::npos)
      << lines[3];
  fs::remove_all(dir);
}

TEST(CliTest, BatchModeFileListWithMissingFile) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "cli_batch_list";
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    std::ofstream out(dir / "ok.txt", std::ios::binary);
    out << "((";
  }
  const fs::path list = dir / "list.txt";
  {
    std::ofstream out(list, std::ios::binary);
    out << (dir / "ok.txt").string() << "\n"
        << (dir / "missing.txt").string() << "\n";
  }

  const RunResult result = RunCommand("--batch=" + list.string() +
                                      " --jobs=1 --metric=deletions");
  EXPECT_EQ(result.exit_code, 2);  // the missing file is an error
  const std::vector<std::string> lines = Lines(result.stdout_text);
  ASSERT_EQ(lines.size(), 3u) << result.stdout_text;
  EXPECT_EQ(lines[0], (dir / "ok.txt").string() + ": repaired distance=2");
  EXPECT_EQ(lines[1],
            (dir / "missing.txt").string() + ": error: cannot open");
  EXPECT_NE(lines[2].find("balanced=0 repaired=1 errors=1 edits=2"),
            std::string::npos)
      << lines[2];
  fs::remove_all(dir);
}

TEST(CliTest, BatchModeBadPathIsUsageError) {
  EXPECT_EQ(RunCommand("--batch=/nonexistent/dir/nowhere").exit_code, 2);
  // --batch with a trailing file operand is ambiguous: usage error.
  EXPECT_EQ(RunCommand("--batch=/tmp extra_operand").exit_code, 2);
}

}  // namespace
}  // namespace dyck
