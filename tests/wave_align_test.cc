#include <gtest/gtest.h>

#include <random>

#include "src/lms/wave_align.h"
#include "tests/pair_op_check.h"

namespace dyck {
namespace {

using test_support::CheckPairOps;

std::vector<int32_t> RandomString(int64_t n, int32_t sigma,
                                  std::mt19937_64& rng) {
  std::vector<int32_t> s(n);
  for (auto& v : s) v = static_cast<int32_t>(rng() % sigma);
  return s;
}

StatusOr<BandedResult> AlignPairOfStrings(const std::vector<int32_t>& a,
                                          const std::vector<int32_t>& b,
                                          WaveMetric metric, int32_t max_d) {
  std::vector<int32_t> c = a;
  c.insert(c.end(), b.begin(), b.end());
  const LceIndex index = LceIndex::Build(c);
  WaveParams params;
  params.a_begin = 0;
  params.a_len = static_cast<int64_t>(a.size());
  params.b_begin = static_cast<int64_t>(a.size());
  params.b_len = static_cast<int64_t>(b.size());
  params.max_d = max_d;
  params.metric = metric;
  return WaveAlign(index, params);
}

class WaveAlignDifferentialTest
    : public ::testing::TestWithParam<std::tuple<WaveMetric, int32_t>> {};

TEST_P(WaveAlignDifferentialTest, OpsAchieveTheOptimalCost) {
  const auto [metric, sigma] = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(sigma) * 13 +
                      (metric == WaveMetric::kDeletion ? 0 : 100));
  for (int trial = 0; trial < 400; ++trial) {
    const auto a = RandomString(rng() % 25, sigma, rng);
    const auto b = RandomString(rng() % 25, sigma, rng);
    const int64_t expected = EditDistanceQuadratic(a, b, metric);
    const auto result =
        AlignPairOfStrings(a, b, metric, static_cast<int32_t>(expected) + 2);
    ASSERT_TRUE(result.ok()) << result.status() << " trial " << trial;
    EXPECT_EQ(result->cost, expected) << trial;
    EXPECT_EQ(CheckPairOps(a, b, result->ops, metric), expected) << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WaveAlignDifferentialTest,
    ::testing::Combine(::testing::Values(WaveMetric::kDeletion,
                                         WaveMetric::kSubstitution),
                       ::testing::Values<int32_t>(1, 2, 4)));

TEST(WaveAlignTest, LongIdenticalStringsOneMatchRun) {
  std::mt19937_64 rng(3);
  const auto a = RandomString(5000, 4, rng);
  const auto result = AlignPairOfStrings(a, a, WaveMetric::kDeletion, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost, 0);
  ASSERT_EQ(result->ops.size(), 1u);
  EXPECT_EQ(result->ops[0].kind, PairOpKind::kMatch);
  EXPECT_EQ(result->ops[0].len, 5000);
}

TEST(WaveAlignTest, BoundExceeded) {
  const auto result =
      AlignPairOfStrings({1, 2, 3, 4}, {}, WaveMetric::kDeletion, 3);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsBoundExceeded());
}

TEST(WaveAlignTest, SingleSubstitutionInLongString) {
  std::mt19937_64 rng(9);
  auto a = RandomString(2000, 3, rng);
  auto b = a;
  b[777] += 100;
  const auto result = AlignPairOfStrings(a, b, WaveMetric::kSubstitution, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost, 1);
  EXPECT_EQ(CheckPairOps(a, b, result->ops, WaveMetric::kSubstitution), 1);
}

TEST(WaveAlignTest, EmptyBothSides) {
  const auto result = AlignPairOfStrings({}, {}, WaveMetric::kDeletion, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cost, 0);
  EXPECT_TRUE(result->ops.empty());
}

}  // namespace
}  // namespace dyck
