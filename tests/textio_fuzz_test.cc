// Deterministic fuzz sweeps: the tokenizers must never crash, must emit
// well-formed spans, and repairs applied through those spans must succeed
// on arbitrary byte garbage.

#include <gtest/gtest.h>

#include <random>

#include "src/core/dyck.h"
#include "src/textio/bracket_tokenizer.h"
#include "src/textio/document_repair.h"
#include "src/textio/json_tokenizer.h"
#include "src/textio/latex_tokenizer.h"
#include "src/textio/source_tokenizer.h"
#include "src/textio/xml_tokenizer.h"

namespace dyck {
namespace textio {
namespace {

// Bytes biased toward structural characters so the tokenizers' interesting
// paths actually trigger.
std::string RandomGarbage(int64_t length, std::mt19937_64& rng) {
  static const std::string kLoaded =
      "<>/!?-[]{}()\\\"'%bi&= \n\tbeginend";
  std::string out;
  out.reserve(length);
  for (int64_t i = 0; i < length; ++i) {
    if (rng() % 4 == 0) {
      out.push_back(static_cast<char>(rng() % 256));
    } else {
      out.push_back(kLoaded[rng() % kLoaded.size()]);
    }
  }
  return out;
}

void CheckSpans(const std::string& text, const TokenizedDocument& doc) {
  ASSERT_EQ(doc.seq.size(), doc.spans.size());
  int64_t prev_end = 0;
  for (const TokenSpan& span : doc.spans) {
    ASSERT_LE(0, span.begin);
    ASSERT_LT(span.begin, span.end);
    ASSERT_LE(span.end, static_cast<int64_t>(text.size()));
    ASSERT_GE(span.begin, prev_end) << "overlapping token spans";
    prev_end = span.end;
  }
  for (const Paren& p : doc.seq) {
    ASSERT_GE(p.type, 0);
    ASSERT_LT(p.type, static_cast<ParenType>(doc.type_names.size()) + 1024);
  }
}

TEST(TextioFuzzTest, XmlTokenizerSurvivesGarbage) {
  std::mt19937_64 rng(1);
  for (int trial = 0; trial < 400; ++trial) {
    const std::string text = RandomGarbage(rng() % 300, rng);
    const auto doc = TokenizeXml(text, {});
    ASSERT_TRUE(doc.ok());
    CheckSpans(text, *doc);
  }
}

TEST(TextioFuzzTest, JsonTokenizerSurvivesGarbage) {
  std::mt19937_64 rng(2);
  for (int trial = 0; trial < 400; ++trial) {
    const std::string text = RandomGarbage(rng() % 300, rng);
    const auto doc = TokenizeJson(text, {});
    ASSERT_TRUE(doc.ok());
    CheckSpans(text, *doc);
  }
}

TEST(TextioFuzzTest, LatexTokenizerSurvivesGarbage) {
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 400; ++trial) {
    const std::string text = RandomGarbage(rng() % 300, rng);
    const auto doc = TokenizeLatex(text, {.track_brace_groups = true});
    if (!doc.ok()) {
      // Unterminated \begin{ is the one legitimate parse error.
      EXPECT_TRUE(doc.status().IsParseError());
      continue;
    }
    CheckSpans(text, *doc);
  }
}

TEST(TextioFuzzTest, SourceTokenizerSurvivesGarbage) {
  std::mt19937_64 rng(4);
  for (int trial = 0; trial < 400; ++trial) {
    const std::string text = RandomGarbage(rng() % 300, rng);
    const auto doc = TokenizeSource(text, {});
    ASSERT_TRUE(doc.ok());
    CheckSpans(text, *doc);
  }
}

TEST(TextioFuzzTest, EndToEndRepairOnGarbageBrackets) {
  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 60; ++trial) {
    const std::string text = RandomGarbage(50 + rng() % 150, rng);
    const TokenizedDocument doc =
        TokenizeBrackets(text, ParenAlphabet::Default());
    CheckSpans(text, doc);
    const auto result = RepairDocument(
        text, doc,
        [](const Paren& p, const std::vector<std::string>&) {
          return RenderBracketToken(p);
        },
        {});
    ASSERT_TRUE(result.ok()) << result.status();
    // Re-tokenizing the repaired text must yield a balanced structure.
    const TokenizedDocument again =
        TokenizeBrackets(result->repaired_text, ParenAlphabet::Default());
    EXPECT_TRUE(IsBalanced(again.seq));
  }
}

TEST(TextioTest, TokenizeBracketsBasics) {
  const TokenizedDocument doc =
      TokenizeBrackets("a(b[c]d)e", ParenAlphabet::Default());
  EXPECT_EQ(ToString(doc.seq), "([])");
  EXPECT_EQ(doc.spans[0].begin, 1);
  EXPECT_EQ(doc.spans[3].begin, 7);
  EXPECT_EQ(doc.type_names[0], "()");
}

TEST(TextioTest, EditScriptToJson) {
  EditScript script;
  EXPECT_EQ(script.ToJson(), "{\"cost\":0,\"ops\":[]}");
  script.ops.push_back({EditOpKind::kDelete, 3, Paren{}});
  script.ops.push_back({EditOpKind::kSubstitute, 5, Paren::Close(1)});
  EXPECT_EQ(script.ToJson(),
            "{\"cost\":2,\"ops\":[{\"op\":\"delete\",\"pos\":3},"
            "{\"op\":\"substitute\",\"pos\":5,\"type\":1,"
            "\"open\":false}]}");
}

}  // namespace
}  // namespace textio
}  // namespace dyck
