#include "src/approx/lower_bound.h"

namespace dyck {

int64_t DyckRelaxationLowerBound(ParenSpan seq, bool allow_substitutions) {
  // One untyped stack pass: `opens` is the stack height, `closes` counts
  // the closers that arrived at height zero. What survives is ")^a (^b"
  // with a = closes, b = opens.
  int64_t opens = 0;
  int64_t closes = 0;
  for (const Paren& p : seq) {
    if (p.is_open) {
      ++opens;
    } else if (opens > 0) {
      --opens;
    } else {
      ++closes;
    }
  }
  if (!allow_substitutions) return closes + opens;
  // One substitution repairs two unmatched symbols of the same run
  // (")(" -> "()" costs 2, but ")) " -> "()" costs 1), matching the
  // Fact-36 height argument used by Dyck1Distance.
  return (closes + 1) / 2 + (opens + 1) / 2;
}

}  // namespace dyck
