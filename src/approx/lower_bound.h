// Linear-time lower bounds on the Dyck edit distance, used to *certify*
// approximate results (src/approx/solvers.cc, the DegradePolicy ladder).
//
// The bound is the untyped (Dyck-1) relaxation: collapse every bracket
// type to one. Any typed edit script projects to an untyped script of at
// most the same cost — deletions stay deletions, direction-flipping
// substitutions stay substitutions, and type-only substitutions become
// free no-ops — so the untyped distance never exceeds the typed one. The
// untyped distance itself has the folklore closed form of
// src/baseline/dyck1.h: a one-stack scan leaves the canonical shape
// ")^a (^b", whence
//   edit1 = a + b,   edit2 = ceil(a/2) + ceil(b/2).
//
// The bound is exact on single-type inputs and on direction errors
// generally; it is 0 for inputs whose only corruption is retyping (the
// untyped profile is balanced), which is why certification falls back to
// bounded exact probes when the counting bound is too weak (see
// solvers.cc).

#ifndef DYCKFIX_SRC_APPROX_LOWER_BOUND_H_
#define DYCKFIX_SRC_APPROX_LOWER_BOUND_H_

#include <cstdint>

#include "src/alphabet/paren.h"

namespace dyck {

/// Proven lower bound on the distance from `seq` to the Dyck language
/// under the chosen metric (allow_substitutions selects edit2). O(n) time,
/// O(1) space, never allocates. Returns 0 iff the untyped profile of
/// `seq` is balanced (in particular, always 0 for balanced inputs).
int64_t DyckRelaxationLowerBound(ParenSpan seq, bool allow_substitutions);

}  // namespace dyck

#endif  // DYCKFIX_SRC_APPROX_LOWER_BOUND_H_
