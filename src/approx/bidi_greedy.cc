#include "src/approx/bidi_greedy.h"

#include <algorithm>
#include <utility>

#include "src/util/logging.h"

namespace dyck {

namespace {

// Maps a script against mirror(seq) back to seq: index i of the mirror is
// index n-1-i of the original, and every symbol flips direction, so a
// substitution's replacement flips too. Aligned (open, close) pairs swap
// endpoints to stay (earlier, later).
void MapMirrorScript(int64_t n, const EditScript& mirrored,
                     EditScript* out) {
  out->ops.clear();
  out->aligned_pairs.clear();
  out->ops.reserve(mirrored.ops.size());
  out->aligned_pairs.reserve(mirrored.aligned_pairs.size());
  for (const EditOp& op : mirrored.ops) {
    EditOp mapped = op;
    mapped.pos = n - 1 - op.pos;
    if (op.kind == EditOpKind::kSubstitute) {
      mapped.replacement =
          Paren{op.replacement.type, !op.replacement.is_open};
    }
    out->ops.push_back(mapped);
  }
  for (const auto& [open, close] : mirrored.aligned_pairs) {
    out->aligned_pairs.emplace_back(n - 1 - close, n - 1 - open);
  }
  out->Normalize();
}

}  // namespace

GreedyResult GreedyRepairBestDirection(
    ParenSpan seq, bool allow_substitutions,
    std::vector<GreedyEntry>* stack_scratch) {
  GreedyResult forward =
      GreedyRepair(seq, allow_substitutions, stack_scratch);
  const int64_t best = EstimateDistanceUpperBoundBidirectional(
      seq, allow_substitutions, stack_scratch);
  if (best >= forward.cost) return forward;

  // The reversed scan is strictly cheaper: repair the mirror and map back.
  ParenSeq mirrored;
  mirrored.reserve(seq.size());
  for (auto it = seq.end(); it != seq.begin();) {
    --it;
    mirrored.push_back(Paren{it->type, !it->is_open});
  }
  GreedyResult reversed =
      GreedyRepair(mirrored, allow_substitutions, stack_scratch);
  DYCK_DCHECK(reversed.cost == best);

  GreedyResult out;
  out.cost = reversed.cost;
  MapMirrorScript(static_cast<int64_t>(seq.size()), reversed.script,
                  &out.script);
  return out;
}

}  // namespace dyck
