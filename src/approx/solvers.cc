// Certified approximate solvers (registry family Algorithm::kApprox).
//
// The accuracy ladder between uncertified greedy and the exact FPT
// solvers, in the spirit of Saha's conditional approximation [Sah14] and
// the Das–Kociumaka–Saha Dyck approximation line: every result comes with
// a *proof* that distance <= factor * exact, carried per-result in
// RepairTelemetry::certified_factor / exact_lower_bound.
//
// Certification scheme. Let U be the bidirectional greedy upper bound
// (the cost of the script actually returned) and L the untyped Dyck-1
// relaxation lower bound (src/approx/lower_bound.h); both are linear.
//   - If U <= f * L, the greedy script is certified at factor f outright.
//   - Otherwise run exact FPT probes under the usual doubling schedule,
//     but CAPPED at b = ceil(U / f) - 1. A probe that succeeds yields the
//     exact answer (factor 1.0). A completed probe at bound b that fails
//     proves exact >= b + 1 >= U / f — which certifies the greedy script
//     at factor f after poly(U/f) work instead of the exact solver's
//     poly(d).
// Either way the reported distance is never below the exact distance (it
// is an upper bound by construction) and never above f times it; the
// realized ratio U / L_proven (<= f) is what telemetry reports.
//
// Two rungs are registered:
//   "approx"        — the refinement solver above (factor 2.0, both
//                     metrics). Forced selection via Algorithm::kApprox
//                     lands here.
//   "approx-greedy" — the bounded-error greedy rung (factor 3.0, both
//                     metrics, O(n)): certifies by counting alone and
//                     declares itself inapplicable when U > 3 * L, so the
//                     planner only picks it when the certificate is free.

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "src/approx/bidi_greedy.h"
#include "src/approx/lower_bound.h"
#include "src/core/context.h"
#include "src/core/solver.h"
#include "src/fpt/deletion.h"
#include "src/fpt/substitution.h"
#include "src/util/budget.h"
#include "src/util/logging.h"

namespace dyck {

namespace {

constexpr double kRefineFactor = 2.0;
constexpr double kCertifiedGreedyFactor = 3.0;

// Cost model of the refinement solver: the FPT substitution constants
// (the conservative choice — PredictCost cannot see the metric) evaluated
// at the capped probe bound d / f instead of d. That undercuts the exact
// FPT models exactly where the ladder should engage: large d, where
// (d/f)^3 saves a factor f^3 of solve work.
constexpr double kRefinePerSymbol = 300e-9;
constexpr double kRefinePerSymbolD3 = 2.5e-9;
// The certified-greedy rung is three linear scans (forward repair,
// reversed estimate, relaxation bound).
constexpr double kCertifiedGreedyPerSymbol = 15e-9;

// Smallest b such that a failed exact probe at b certifies factor f:
// b + 1 = ceil(U / f) >= U / f.
int64_t CertificationBound(int64_t upper, double factor) {
  const int64_t need = static_cast<int64_t>(
      std::ceil(static_cast<double>(upper) / factor));
  return need - 1;
}

// Stamps a certified approximate result: `upper` is the reported
// distance, `lower` the proven bound. upper == lower proves the greedy
// script optimal, so the factor collapses to exact 1.0.
void CertifyTelemetry(int64_t upper, int64_t lower,
                      RepairTelemetry* telemetry) {
  if (telemetry == nullptr) return;
  telemetry->exact_lower_bound =
      std::max(telemetry->exact_lower_bound, lower);
  telemetry->certified_factor =
      static_cast<double>(upper) / static_cast<double>(lower);
}

class ApproxRefineSolver final : public Solver {
 public:
  const char* name() const override { return "approx"; }
  const SolverCaps& caps() const override {
    static const SolverCaps caps{/*deletions=*/true, /*substitutions=*/true,
                                 /*exact=*/false, /*needs_reduced=*/true,
                                 /*supports_doubling=*/true,
                                 /*planner_candidate=*/true,
                                 Algorithm::kApprox,
                                 /*approximation_factor=*/kRefineFactor};
    return caps;
  }
  double PredictCost(int64_t n, int64_t d_hint) const override {
    const double nd = static_cast<double>(n);
    const double dd = static_cast<double>(d_hint) / kRefineFactor;
    return kRefinePerSymbol * nd + kRefinePerSymbolD3 * nd * dd * dd * dd;
  }
  Status Solve(const SolveRequest& request, RepairContext& ctx,
               RepairTelemetry* telemetry, SolverResult* out) const override {
    GreedyResult greedy = GreedyRepairBestDirection(
        request.seq, request.use_substitutions, &ctx.greedy_stack());
    const int64_t upper = greedy.cost;
    if (upper == 0) {
      // Balanced input: the empty script is exact.
      out->distance = 0;
      out->script = EditScript{};
      return Status::OK();
    }
    int64_t lower = std::max<int64_t>(
        DyckRelaxationLowerBound(request.seq, request.use_substitutions),
        1);
    if (request.max_distance >= 0 && lower > request.max_distance) {
      return solver_internal::MaxDistanceError(request.max_distance);
    }
    const int64_t cert_bound = CertificationBound(upper, kRefineFactor);
    if (lower > cert_bound) {
      // The counting bound already certifies the greedy script: free.
      CertifyTelemetry(upper, lower, telemetry);
      out->distance = upper;
      out->script = std::move(greedy.script);
      return Status::OK();
    }

    // Exact probes under the doubling schedule, capped at cert_bound. The
    // constructor borrows the pipeline's precomputed reduction when one
    // exists (caps().needs_reduced) and reduces internally otherwise
    // (direct Solve calls without a pipeline).
    auto probe_loop = [&](auto& solver) -> Status {
      for (int64_t d = 1;; d *= 2) {
        BudgetCheckpoint("pipeline.doubling");
        const int64_t bound = std::min(d, cert_bound);
        if (telemetry != nullptr) ++telemetry->doubling_iterations;
        StatusOr<FptResult> result =
            solver.Repair(static_cast<int32_t>(bound));
        if (result.ok()) {
          if (request.max_distance >= 0 &&
              result->distance > request.max_distance) {
            return solver_internal::MaxDistanceError(request.max_distance);
          }
          if (telemetry != nullptr) telemetry->solve_bound = bound;
          out->distance = result->distance;
          out->script = std::move(result->script);
          return Status::OK();
        }
        if (!result.status().IsBoundExceeded()) return result.status();
        // The probe completed, so exact > bound is proven.
        lower = std::max(lower, bound + 1);
        if (telemetry != nullptr) {
          telemetry->exact_lower_bound =
              std::max(telemetry->exact_lower_bound, lower);
        }
        if (request.max_distance >= 0 && lower > request.max_distance) {
          return solver_internal::MaxDistanceError(request.max_distance);
        }
        if (bound >= cert_bound) {
          // exact >= cert_bound + 1 >= U / f: greedy is certified.
          CertifyTelemetry(upper, lower, telemetry);
          out->distance = upper;
          out->script = std::move(greedy.script);
          return Status::OK();
        }
      }
    };
    if (request.use_substitutions) {
      SubstitutionSolver solver =
          request.reduced != nullptr
              ? SubstitutionSolver(request.reduced, &ctx)
              : SubstitutionSolver(request.seq);
      const Status status = probe_loop(solver);
      if (telemetry != nullptr) {
        telemetry->subproblems = solver.last_subproblem_count();
      }
      return status;
    }
    DeletionSolver solver = request.reduced != nullptr
                                ? DeletionSolver(request.reduced, &ctx)
                                : DeletionSolver(request.seq);
    const Status status = probe_loop(solver);
    if (telemetry != nullptr) {
      telemetry->subproblems = solver.last_subproblem_count();
    }
    return status;
  }
  StatusOr<int64_t> SolveDistance(const SolveRequest& request) const override {
    const int64_t upper = EstimateDistanceUpperBoundBidirectional(
        request.seq, request.use_substitutions);
    if (upper == 0) return 0;
    int64_t lower = std::max<int64_t>(
        DyckRelaxationLowerBound(request.seq, request.use_substitutions),
        1);
    if (request.max_distance >= 0 && lower > request.max_distance) {
      return solver_internal::MaxDistanceError(request.max_distance);
    }
    const int64_t cert_bound = CertificationBound(upper, kRefineFactor);
    if (lower > cert_bound) return upper;
    auto probe_loop = [&](auto& solver) -> StatusOr<int64_t> {
      for (int64_t d = 1;; d *= 2) {
        BudgetCheckpoint("pipeline.doubling");
        const int64_t bound = std::min(d, cert_bound);
        if (const auto v = solver.Distance(static_cast<int32_t>(bound));
            v.has_value()) {
          if (request.max_distance >= 0 && *v > request.max_distance) {
            return solver_internal::MaxDistanceError(request.max_distance);
          }
          return *v;
        }
        lower = std::max(lower, bound + 1);
        if (request.max_distance >= 0 && lower > request.max_distance) {
          return solver_internal::MaxDistanceError(request.max_distance);
        }
        if (bound >= cert_bound) return upper;
      }
    };
    if (request.use_substitutions) {
      SubstitutionSolver solver(request.seq);
      return probe_loop(solver);
    }
    DeletionSolver solver(request.seq);
    return probe_loop(solver);
  }
};

class CertifiedGreedySolver final : public Solver {
 public:
  const char* name() const override { return "approx-greedy"; }
  const SolverCaps& caps() const override {
    static const SolverCaps caps{
        /*deletions=*/true, /*substitutions=*/true,
        /*exact=*/false, /*needs_reduced=*/false,
        /*supports_doubling=*/false,
        /*planner_candidate=*/true, Algorithm::kApprox,
        /*approximation_factor=*/kCertifiedGreedyFactor};
    return caps;
  }
  double PredictCost(int64_t n, int64_t d_hint) const override {
    (void)d_hint;
    return kCertifiedGreedyPerSymbol * static_cast<double>(n);
  }
  bool Applicable(const SolveRequest& request) const override {
    // Applicable iff the counting certificate is free: U <= f * L. The
    // planner has already computed the bidirectional greedy bound
    // (request.d_hint); direct callers pay one scan.
    const int64_t upper =
        request.d_hint >= 0
            ? request.d_hint
            : EstimateDistanceUpperBoundBidirectional(
                  request.seq, request.use_substitutions);
    const int64_t lower = std::max<int64_t>(
        DyckRelaxationLowerBound(request.seq, request.use_substitutions),
        1);
    return static_cast<double>(upper) <=
           kCertifiedGreedyFactor * static_cast<double>(lower);
  }
  Status Solve(const SolveRequest& request, RepairContext& ctx,
               RepairTelemetry* telemetry, SolverResult* out) const override {
    GreedyResult greedy = GreedyRepairBestDirection(
        request.seq, request.use_substitutions, &ctx.greedy_stack());
    if (greedy.cost == 0) {
      out->distance = 0;
      out->script = EditScript{};
      return Status::OK();
    }
    const int64_t lower = std::max<int64_t>(
        DyckRelaxationLowerBound(request.seq, request.use_substitutions),
        1);
    if (static_cast<double>(greedy.cost) >
        kCertifiedGreedyFactor * static_cast<double>(lower)) {
      return Status::InvalidArgument(
          "solver 'approx-greedy' cannot certify its factor on this input"
          " (capability: counting-certificate; force 'approx' or 'greedy'"
          " instead)");
    }
    if (request.max_distance >= 0 && lower > request.max_distance) {
      return solver_internal::MaxDistanceError(request.max_distance);
    }
    CertifyTelemetry(greedy.cost, lower, telemetry);
    out->distance = greedy.cost;
    out->script = std::move(greedy.script);
    return Status::OK();
  }
  StatusOr<int64_t> SolveDistance(const SolveRequest& request) const override {
    const int64_t upper = EstimateDistanceUpperBoundBidirectional(
        request.seq, request.use_substitutions);
    if (upper == 0) return 0;
    const int64_t lower = std::max<int64_t>(
        DyckRelaxationLowerBound(request.seq, request.use_substitutions),
        1);
    if (static_cast<double>(upper) >
        kCertifiedGreedyFactor * static_cast<double>(lower)) {
      return Status::InvalidArgument(
          "solver 'approx-greedy' cannot certify its factor on this input"
          " (capability: counting-certificate; force 'approx' or 'greedy'"
          " instead)");
    }
    if (request.max_distance >= 0 && lower > request.max_distance) {
      return solver_internal::MaxDistanceError(request.max_distance);
    }
    return upper;
  }
};

}  // namespace

void RegisterApproxSolvers(SolverRegistry& registry) {
  DYCK_CHECK(registry.Register(std::make_unique<ApproxRefineSolver>()).ok());
  DYCK_CHECK(
      registry.Register(std::make_unique<CertifiedGreedySolver>()).ok());
}

}  // namespace dyck
