// Best-direction greedy repair.
//
// Greedy's cascade pathologies are direction-dependent (see
// src/baseline/greedy.h): a spurious symbol that poisons the left-to-right
// parse is often benign right-to-left. The planner already exploits this
// for its d-hint via EstimateDistanceUpperBoundBidirectional; this helper
// does the same for the *script*, so certified approximate results
// (src/approx/solvers.cc) report the tighter of the two bounds. The
// reversed script is produced by repairing the mirrored sequence
// (reverse + flip every direction — a Dyck-distance isometry) and mapping
// the ops back position by position.

#ifndef DYCKFIX_SRC_APPROX_BIDI_GREEDY_H_
#define DYCKFIX_SRC_APPROX_BIDI_GREEDY_H_

#include <vector>

#include "src/alphabet/paren.h"
#include "src/baseline/greedy.h"

namespace dyck {

/// GreedyRepair in whichever scan direction yields the cheaper script;
/// result.cost == EstimateDistanceUpperBoundBidirectional(seq, ...). The
/// forward scan reuses `stack_scratch`; when the reversed scan wins, the
/// mirrored sequence is materialized locally (one O(n) allocation on that
/// path only — certification call sites accept this, the zero-alloc
/// degrade path uses plain GreedyRepair).
GreedyResult GreedyRepairBestDirection(
    ParenSpan seq, bool allow_substitutions,
    std::vector<GreedyEntry>* stack_scratch = nullptr);

}  // namespace dyck

#endif  // DYCKFIX_SRC_APPROX_BIDI_GREEDY_H_
