// Closed-form distances for Dyck(1) — a single parenthesis type.
//
// Folklore specialization used as a fast path and as an independent test
// oracle: after the Property-19 reduction, a single-type sequence has the
// canonical shape ")^a (^b". Then
//   edit1 = a + b            (every unmatched symbol must be deleted)
//   edit2 = ceil(a/2) + ceil(b/2)
//           (a substitution fixes two unmatched symbols of one run;
//            matching the height argument of Fact 36).

#ifndef DYCKFIX_SRC_BASELINE_DYCK1_H_
#define DYCKFIX_SRC_BASELINE_DYCK1_H_

#include <cstdint>
#include <optional>

#include "src/alphabet/paren.h"

namespace dyck {

/// True iff every symbol of `seq` has the same type id.
bool IsSingleType(const ParenSeq& seq);

/// Closed-form distance for single-type sequences; std::nullopt when `seq`
/// mixes types. O(n).
std::optional<int64_t> Dyck1Distance(const ParenSeq& seq,
                                     bool allow_substitutions);

}  // namespace dyck

#endif  // DYCKFIX_SRC_BASELINE_DYCK1_H_
