// Exponential-in-d exact baseline: the "2^{O(d)} * n" algorithm of Table 1.
//
// A greedy stack parse consumes symbols until it gets stuck (a closing
// symbol that does not match the top of the stack, or leftovers at the
// end). As the paper's §1.2 recounts (crediting Saha), the optimal edit
// decision at a stuck point comes from a constant-size set, so enumerating
// at most d decisions yields an exact algorithm in 2^{O(d)} n time. The
// decision sets implemented here:
//
//   closing symbol vs. mismatching open top:
//     delete the closer | delete the top (and retry) |
//     [subs] substitute the closer to match the top |
//     [subs] substitute the closer into an opening "wildcard"
//   closing symbol vs. empty stack:
//     delete the closer | [subs] substitute it into an opening wildcard
//   end of input with m leftover openings:
//     delete all (deletion metric) | pair consecutive leftovers with one
//     substitution each, ceil(m/2) total (substitution metric)
//
// A substituted opening is a *wildcard*: its type is chosen only when a
// closing symbol matches it, at no extra cost.
//
// Exactness is not proven here; it is enforced by differential tests
// against the cubic oracle across large randomized workloads.

#ifndef DYCKFIX_SRC_BASELINE_BRANCHING_H_
#define DYCKFIX_SRC_BASELINE_BRANCHING_H_

#include <cstdint>
#include <optional>

#include "src/alphabet/paren.h"
#include "src/core/edit_script.h"
#include "src/util/statusor.h"

namespace dyck {

struct BranchingResult {
  int64_t distance = 0;
  EditScript script;
};

/// Exact distance if it is <= max_d; std::nullopt otherwise.
/// O(4^max_d * n) worst case.
std::optional<int64_t> BranchingDistance(ParenSpan seq,
                                         bool allow_substitutions,
                                         int64_t max_d);

/// Distance plus one optimal edit script; BoundExceeded if distance > max_d.
StatusOr<BranchingResult> BranchingRepair(ParenSpan seq,
                                          bool allow_substitutions,
                                          int64_t max_d);

}  // namespace dyck

#endif  // DYCKFIX_SRC_BASELINE_BRANCHING_H_
