#include "src/baseline/dyck1.h"

namespace dyck {

bool IsSingleType(const ParenSeq& seq) {
  for (const Paren& p : seq) {
    if (p.type != seq.front().type) return false;
  }
  return true;
}

std::optional<int64_t> Dyck1Distance(const ParenSeq& seq,
                                     bool allow_substitutions) {
  if (seq.empty()) return 0;
  if (!IsSingleType(seq)) return std::nullopt;
  // One stack pass: `opens` tracks unmatched openings so far; closers
  // beyond them are permanently unmatched.
  int64_t opens = 0;
  int64_t closers = 0;
  for (const Paren& p : seq) {
    if (p.is_open) {
      ++opens;
    } else if (opens > 0) {
      --opens;
    } else {
      ++closers;
    }
  }
  if (!allow_substitutions) return closers + opens;
  return (closers + 1) / 2 + (opens + 1) / 2;
}

}  // namespace dyck
