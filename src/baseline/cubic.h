// Cubic-time interval dynamic program (Aho & Peterson 1972 specialization;
// paper §4.2 recurrence (4), generalized with explicit pair costs).
//
// A[i][j] = edit distance of the substring S[i..j], computed over interval
// lengths with
//   A[i][j] = min( A[i+1][j-1] + PairCost(S_i, S_j),
//                  min_r A[i][r] + A[r+1][j] ).
// PairCost is 0 for an exactly matching open/close pair. Under the
// substitution metric it is additionally 1 when one substitution aligns the
// two symbols (open/close of different types, open/open, close/close) and 2
// for close/open. The paper states the recurrence with the exact-match
// predicate only; the explicit pair costs make the same DP correct under
// substitutions (e.g. edit2("((") = 1), and the FPT algorithm of §4.2 is
// differentially validated against this oracle.
//
// This is the library's ground-truth oracle: slow (O(n^3) time, O(n^2)
// space) but straightforwardly correct, and it reconstructs edit scripts.

#ifndef DYCKFIX_SRC_BASELINE_CUBIC_H_
#define DYCKFIX_SRC_BASELINE_CUBIC_H_

#include <cstdint>

#include "src/alphabet/paren.h"
#include "src/core/edit_script.h"

namespace dyck {

class RepairContext;

struct CubicResult {
  int64_t distance = 0;
  EditScript script;
};

/// Computes the distance and one optimal edit script. When `context` is
/// non-null the (n+1)^2 DP table lives in context->cubic_cells(), whose
/// capacity is retained across documents.
CubicResult CubicRepair(ParenSpan seq, bool allow_substitutions,
                        RepairContext* context = nullptr);

/// Distance only (same complexity, no backtracking pass).
int64_t CubicDistance(ParenSpan seq, bool allow_substitutions,
                      RepairContext* context = nullptr);

}  // namespace dyck

#endif  // DYCKFIX_SRC_BASELINE_CUBIC_H_
