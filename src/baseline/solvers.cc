// Registry adapters for the baseline solvers: the cubic interval-DP
// oracle, the exponential branching search, and the greedy heuristic.

#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "src/baseline/branching.h"
#include "src/baseline/cubic.h"
#include "src/baseline/greedy.h"
#include "src/core/context.h"
#include "src/core/solver.h"
#include "src/util/logging.h"

namespace dyck {

namespace {

// Calibrated against BENCH_crossover.json (DESIGN.md §5.10): the cubic DP
// fills (n+1)^2 cells with an O(n) split scan each.
constexpr double kCubicPerN3 = 0.25e-9;
// Greedy is one linear scan.
constexpr double kGreedyPerSymbol = 5e-9;
// Branching explores a 4-way decision tree of depth ~d over O(n) parses.
// Never a planner candidate — the model exists for ordering/monotonicity
// only, and saturates at d = 30 to stay finite.
constexpr double kBranchingPerSymbol = 5e-9;

class CubicSolver final : public Solver {
 public:
  const char* name() const override { return "cubic"; }
  const SolverCaps& caps() const override {
    static const SolverCaps caps{/*deletions=*/true, /*substitutions=*/true,
                                 /*exact=*/true, /*needs_reduced=*/false,
                                 /*supports_doubling=*/false,
                                 /*planner_candidate=*/true,
                                 Algorithm::kCubic};
    return caps;
  }
  double PredictCost(int64_t n, int64_t d_hint) const override {
    (void)d_hint;  // the DP fills every cell regardless of the distance
    const double nd = static_cast<double>(n);
    return kCubicPerN3 * nd * nd * nd;
  }
  Status Solve(const SolveRequest& request, RepairContext& ctx,
               RepairTelemetry* telemetry, SolverResult* out) const override {
    (void)telemetry;  // no doubling driver, no subproblem counter
    CubicResult result =
        CubicRepair(request.seq, request.use_substitutions, &ctx);
    if (request.max_distance >= 0 &&
        result.distance > request.max_distance) {
      return solver_internal::MaxDistanceError(request.max_distance);
    }
    out->distance = result.distance;
    out->script = std::move(result.script);
    return Status::OK();
  }
  StatusOr<int64_t> SolveDistance(const SolveRequest& request) const override {
    const int64_t v = CubicDistance(request.seq, request.use_substitutions);
    if (request.max_distance >= 0 && v > request.max_distance) {
      return solver_internal::MaxDistanceError(request.max_distance);
    }
    return v;
  }
};

class BranchingSolver final : public Solver {
 public:
  const char* name() const override { return "branching"; }
  const SolverCaps& caps() const override {
    static const SolverCaps caps{/*deletions=*/true, /*substitutions=*/true,
                                 /*exact=*/true, /*needs_reduced=*/false,
                                 /*supports_doubling=*/true,
                                 /*planner_candidate=*/false,
                                 Algorithm::kBranching};
    return caps;
  }
  double PredictCost(int64_t n, int64_t d_hint) const override {
    const double depth = static_cast<double>(std::min<int64_t>(d_hint, 30));
    return kBranchingPerSymbol * static_cast<double>(n) *
           std::pow(4.0, depth);
  }
  Status Solve(const SolveRequest& request, RepairContext& ctx,
               RepairTelemetry* telemetry, SolverResult* out) const override {
    (void)ctx;  // the search keeps its own per-branch stacks
    StatusOr<SolverResult> result = solver_internal::DoublingSolve(
        request.doubling_cap, request.max_distance, telemetry,
        [&](int32_t d) -> StatusOr<SolverResult> {
          DYCK_ASSIGN_OR_RETURN(
              BranchingResult r,
              BranchingRepair(request.seq, request.use_substitutions, d));
          SolverResult s;
          s.distance = r.distance;
          s.script = std::move(r.script);
          return s;
        });
    if (!result.ok()) return result.status();
    *out = std::move(result).value();
    return Status::OK();
  }
  StatusOr<int64_t> SolveDistance(const SolveRequest& request) const override {
    return solver_internal::DoublingDistance(
        request.doubling_cap, request.max_distance, [&](int32_t d) {
          return BranchingDistance(request.seq, request.use_substitutions, d);
        });
  }
};

class GreedySolver final : public Solver {
 public:
  const char* name() const override { return "greedy"; }
  const SolverCaps& caps() const override {
    static const SolverCaps caps{/*deletions=*/true, /*substitutions=*/true,
                                 /*exact=*/false, /*needs_reduced=*/false,
                                 /*supports_doubling=*/false,
                                 /*planner_candidate=*/false,
                                 Algorithm::kGreedy,
                                 /*approximation_factor=*/
                                 std::numeric_limits<double>::infinity()};
    return caps;
  }
  double PredictCost(int64_t n, int64_t d_hint) const override {
    (void)d_hint;
    return kGreedyPerSymbol * static_cast<double>(n);
  }
  Status Solve(const SolveRequest& request, RepairContext& ctx,
               RepairTelemetry* telemetry, SolverResult* out) const override {
    // Approximate: the cost upper-bounds the true distance, so
    // max_distance is deliberately not enforced (exceeding it proves
    // nothing about the exact distance) — same best-effort contract as the
    // DegradePolicy::kGreedy fallback.
    GreedyResult result = GreedyRepair(
        request.seq, request.use_substitutions, &ctx.greedy_stack());
    out->distance = result.cost;
    out->script = std::move(result.script);
    // No lower bound is computed here, so the answer carries no
    // multiplicative certificate (the src/approx solvers do).
    if (telemetry != nullptr) telemetry->certified_factor = 0.0;
    return Status::OK();
  }
  StatusOr<int64_t> SolveDistance(const SolveRequest& request) const override {
    return EstimateDistanceUpperBound(request.seq,
                                      request.use_substitutions);
  }
};

}  // namespace

void RegisterBaselineSolvers(SolverRegistry& registry) {
  DYCK_CHECK(registry.Register(std::make_unique<CubicSolver>()).ok());
  DYCK_CHECK(registry.Register(std::make_unique<BranchingSolver>()).ok());
  DYCK_CHECK(registry.Register(std::make_unique<GreedySolver>()).ok());
}

}  // namespace dyck
