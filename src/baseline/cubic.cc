#include "src/baseline/cubic.h"

#include <algorithm>
#include <vector>

#include "src/core/context.h"
#include "src/util/budget.h"
#include "src/util/logging.h"

namespace dyck {

namespace {

// The table is the baseline's whole memory footprint; charge it against
// the budget's allocation cap before committing the (n+1)^2 cells.
int64_t TableBytes(int64_t n) {
  return (n + 1) * (n + 1) * static_cast<int64_t>(sizeof(int32_t));
}

// Flat (n+1) x (n+1) table of interval costs; cell (i, j+1) holds A[i][j]
// so empty intervals (j = i-1) are addressable. Cell storage is either
// owned or borrowed from a RepairContext's capacity-retaining scratch.
class IntervalTable {
 public:
  explicit IntervalTable(int64_t n, RepairContext* context = nullptr)
      : n_(n),
        cells_(context != nullptr ? context->cubic_cells() : owned_cells_) {
    cells_.assign(static_cast<size_t>((n + 1) * (n + 1)), 0);
  }

  IntervalTable(const IntervalTable&) = delete;
  IntervalTable& operator=(const IntervalTable&) = delete;

  int32_t& At(int64_t i, int64_t j) { return cells_[i * (n_ + 1) + j + 1]; }
  int32_t At(int64_t i, int64_t j) const {
    return cells_[i * (n_ + 1) + j + 1];
  }

 private:
  int64_t n_;
  std::vector<int32_t> owned_cells_;
  std::vector<int32_t>& cells_;
};

void FillTable(ParenSpan seq, bool subs, IntervalTable* a) {
  const int64_t n = static_cast<int64_t>(seq.size());
  BudgetReportAlloc("baseline.cubic.fill", TableBytes(n));
  for (int64_t i = 0; i < n; ++i) a->At(i, i) = 1;  // lone symbol: delete
  for (int64_t len = 2; len <= n; ++len) {
    for (int64_t i = 0; i + len - 1 < n; ++i) {
      // One step per DP cell; the inner split scan below is O(n), so a
      // tripped budget stops the fill within one row of cells.
      BudgetCheckpoint("baseline.cubic.fill");
      const int64_t j = i + len - 1;
      int32_t best = kPairImpossible;
      const int32_t pc = PairCost(seq[i], seq[j], subs);
      if (pc < kPairImpossible) {
        best = std::min(best, a->At(i + 1, j - 1) + pc);
      }
      for (int64_t r = i; r < j; ++r) {
        best = std::min(best, a->At(i, r) + a->At(r + 1, j));
      }
      a->At(i, j) = best;
    }
  }
}

void Backtrack(ParenSpan seq, const IntervalTable& a, bool subs,
               EditScript* script) {
  const int64_t n = static_cast<int64_t>(seq.size());
  std::vector<std::pair<int64_t, int64_t>> work;
  if (n > 0) work.emplace_back(0, n - 1);
  while (!work.empty()) {
    const auto [i, j] = work.back();
    work.pop_back();
    if (i > j) continue;
    if (i == j) {
      script->ops.push_back({EditOpKind::kDelete, i, Paren{}});
      continue;
    }
    const int32_t cost = a.At(i, j);
    const int32_t pc = PairCost(seq[i], seq[j], subs);
    if (pc < kPairImpossible && cost == a.At(i + 1, j - 1) + pc) {
      AppendPairAlignment(seq, i, j, script);
      work.emplace_back(i + 1, j - 1);
      continue;
    }
    bool split_found = false;
    for (int64_t r = i; r < j; ++r) {
      if (cost == a.At(i, r) + a.At(r + 1, j)) {
        work.emplace_back(i, r);
        work.emplace_back(r + 1, j);
        split_found = true;
        break;
      }
    }
    DYCK_CHECK(split_found) << "cubic backtrack found no consistent move";
  }
}

}  // namespace

CubicResult CubicRepair(ParenSpan seq, bool allow_substitutions,
                        RepairContext* context) {
  CubicResult result;
  if (seq.empty()) return result;
  IntervalTable a(static_cast<int64_t>(seq.size()), context);
  FillTable(seq, allow_substitutions, &a);
  result.distance = a.At(0, static_cast<int64_t>(seq.size()) - 1);
  Backtrack(seq, a, allow_substitutions, &result.script);
  result.script.Normalize();
  DYCK_CHECK_EQ(result.script.Cost(), result.distance);
  BudgetReleaseAlloc(TableBytes(static_cast<int64_t>(seq.size())));
  return result;
}

int64_t CubicDistance(ParenSpan seq, bool allow_substitutions,
                      RepairContext* context) {
  if (seq.empty()) return 0;
  IntervalTable a(static_cast<int64_t>(seq.size()), context);
  FillTable(seq, allow_substitutions, &a);
  const int64_t v = a.At(0, static_cast<int64_t>(seq.size()) - 1);
  BudgetReleaseAlloc(TableBytes(static_cast<int64_t>(seq.size())));
  return v;
}

}  // namespace dyck
