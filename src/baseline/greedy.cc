#include "src/baseline/greedy.h"

#include <algorithm>
#include <vector>

#include "src/simd/greedy_kernel.h"

namespace dyck {

namespace {

// Reads a span back to front with every parenthesis direction flipped,
// without materializing the reversed sequence. Reversal-with-flip is a
// Dyck distance isometry (see greedy.h), so scanning through this view
// yields a second, independent upper bound on the same distance.
// operator[] returns by value — GreedyScan copies symbols out rather than
// holding references, precisely so this adapter can exist.
class ReversedFlippedView {
 public:
  explicit ReversedFlippedView(ParenSpan seq) : seq_(seq) {}

  size_t size() const { return seq_.size(); }
  Paren operator[](size_t i) const {
    Paren p = seq_[seq_.size() - 1 - i];
    p.is_open = !p.is_open;
    return p;
  }

  ParenSpan underlying() const { return seq_; }

 private:
  ParenSpan seq_;
};

// How GreedyAdvance reads each view: the raw storage plus a reversed flag
// (the kernel applies the flip-and-reverse itself, so neither view is ever
// materialized).
const Paren* KernelData(ParenSpan seq) { return seq.data(); }
bool KernelReversed(ParenSpan) { return false; }
const Paren* KernelData(const ReversedFlippedView& view) {
  return view.underlying().data();
}
bool KernelReversed(const ReversedFlippedView&) { return true; }

// The one-pass decision logic, templated over what happens at each edit so
// the script-producing repair and the count-only distance estimate can
// never drift apart, and over the sequence view so the same scan serves
// the forward pass (ParenSpan) and the reversed pass (ReversedFlippedView)
// without a copy. The policy receives one call per event:
//
//   DeleteTop(entry)      pop a (possibly flipped) stack entry for cost 1,
//                         folding into the entry's own substitution op
//   DeleteCloser(pos)     drop the current closing symbol
//   MatchPair(open, close) zero-cost alignment
//   FlipOpener(pos, type) substitute a closer into an opener; returns the
//                         op handle stored in the new stack entry
//   RetypeCloser(top, pos) substitute the closer to match the top
//   PairLeftovers(a, b)   close leftover opener a with flipped/rewritten b
//   DeleteLeftover(entry) delete a leftover opener
template <typename Seq, typename Policy>
void GreedyScan(const Seq& seq, bool allow_substitutions,
                std::vector<GreedyEntry>& stack, Policy& policy) {
  stack.clear();

  auto delete_top = [&] {
    policy.DeleteTop(stack.back());
    stack.pop_back();
  };

  // The conflict-free portion of the scan (push opens, pop matching
  // closes) runs through the vector kernel when profitable, leaving only
  // actual conflicts to the rule engine below. GreedyAdvance replicates
  // the fast path exactly — including the (top.pos, i) pair stream the
  // script policy records — so kernel on/off changes timing only.
  const auto n = static_cast<int64_t>(seq.size());
  const Paren* const data = KernelData(seq);
  const bool reversed = KernelReversed(seq);
  const bool use_kernel = simd::GreedyKernelProfitable(data, n);

  for (int64_t i = 0; i < n; ++i) {
    if (use_kernel) {
      i = simd::GreedyAdvance(data, n, i, reversed, &stack, policy.PairSink());
      if (i >= n) break;
    } else {
      const Paren cur = seq[i];
      if (cur.is_open) {
        stack.push_back({cur.type, i, -1});
        continue;
      }
      if (!stack.empty() && stack.back().type == cur.type) {
        policy.MatchPair(stack.back().pos, i);
        stack.pop_back();
        continue;
      }
    }
    const Paren p = seq[i];  // a closer the fast path could not consume
    // Conflict. The rules below are ordered to defuse the cascade modes a
    // naive policy suffers (see greedy.h).
    const bool has_next = i + 1 < static_cast<int64_t>(seq.size());
    const Paren next_val = has_next ? seq[i + 1] : Paren{};
    const Paren* next = has_next ? &next_val : nullptr;
    //
    // Probe a few entries below the top: if the closer matches one of
    // them, the entries above it are likely spurious openers — drop them
    // and complete the match. Depth 2 is accepted on the match alone;
    // deeper matches are too likely coincidences (with 4 types, ~58%
    // within 3 probes), so they additionally require the next symbol to
    // close the entry that would become the new top.
    constexpr size_t kProbeDepth = 4;
    size_t match_depth = 0;
    for (size_t k = 2; k <= kProbeDepth && k <= stack.size(); ++k) {
      if (stack[stack.size() - k].type != p.type) continue;
      if (k == 2 ||
          (next != nullptr && k < stack.size() &&
           Paren::Open(stack[stack.size() - k - 1].type).Matches(*next))) {
        match_depth = k;
        break;
      }
    }
    if (match_depth >= 2) {
      for (size_t k = 1; k < match_depth; ++k) delete_top();
      policy.MatchPair(stack.back().pos, i);
      stack.pop_back();
      continue;
    }
    if (!stack.empty() && next != nullptr &&
        Paren::Open(stack.back().type).Matches(*next)) {
      // The very next symbol closes the top properly: y is a stray.
      policy.DeleteCloser(i);
      continue;
    }
    if (!stack.empty() && allow_substitutions) {
      if (next != nullptr && next->is_open) {
        // Nesting continues below y: y looks like a direction-flipped
        // opener. Flip it back and push.
        stack.push_back({p.type, i, policy.FlipOpener(i, p.type)});
      } else if (next == nullptr ||
                 (stack.size() >= 2 &&
                  Paren::Open(stack[stack.size() - 2].type)
                      .Matches(*next))) {
        // Retype the closer to match the top — either the input ends here
        // (no cascade possible) or the parent closes right after
        // (positive evidence y really was the top's closer). Without such
        // evidence, sub-aligning an *orphaned* closer consumes the
        // parent's opener and the mistake cascades up the nesting spine.
        policy.RetypeCloser(stack.back(), i);
        stack.pop_back();
      } else {
        policy.DeleteCloser(i);
      }
    } else {
      // Conflict or empty stack: drop the closer.
      policy.DeleteCloser(i);
    }
  }

  // Leftover openings.
  if (allow_substitutions) {
    size_t idx = 0;
    for (; idx + 1 < stack.size(); idx += 2) {
      policy.PairLeftovers(stack[idx], stack[idx + 1]);
    }
    if (idx < stack.size()) policy.DeleteLeftover(stack[idx]);
  } else {
    for (const GreedyEntry& e : stack) policy.DeleteLeftover(e);
  }
}

// Materializes the edit script; GreedyResult semantics are unchanged from
// the pre-template implementation byte for byte.
class ScriptPolicy {
 public:
  ScriptPolicy(ParenSpan seq, GreedyResult* result)
      : seq_(seq), result_(result) {}

  void DeleteTop(const GreedyEntry& top) {
    std::vector<EditOp>& ops = result_->script.ops;
    if (top.op_index >= 0) {
      ops[top.op_index] = {EditOpKind::kDelete, top.pos, Paren{}};
    } else {
      ops.push_back({EditOpKind::kDelete, top.pos, Paren{}});
    }
  }

  void DeleteCloser(int64_t pos) {
    result_->script.ops.push_back({EditOpKind::kDelete, pos, Paren{}});
  }

  void MatchPair(int64_t open_pos, int64_t close_pos) {
    result_->script.aligned_pairs.emplace_back(open_pos, close_pos);
  }

  // Where GreedyAdvance streams the fast path's zero-cost pairs — the
  // same vector MatchPair appends to.
  std::vector<std::pair<int64_t, int64_t>>* PairSink() {
    return &result_->script.aligned_pairs;
  }

  int32_t FlipOpener(int64_t pos, ParenType type) {
    std::vector<EditOp>& ops = result_->script.ops;
    const int32_t op_index = static_cast<int32_t>(ops.size());
    ops.push_back({EditOpKind::kSubstitute, pos, Paren::Open(type)});
    return op_index;
  }

  void RetypeCloser(const GreedyEntry& top, int64_t pos) {
    result_->script.ops.push_back(
        {EditOpKind::kSubstitute, pos, Paren::Close(top.type)});
    result_->script.aligned_pairs.emplace_back(top.pos, pos);
  }

  void PairLeftovers(const GreedyEntry& first, const GreedyEntry& second) {
    std::vector<EditOp>& ops = result_->script.ops;
    const Paren close = Paren::Close(first.type);
    if (second.op_index >= 0) {
      // The second entry is a flipped closer: rewrite its op in place.
      // If its original symbol already equals the needed closer, the
      // flip was wasted — drop the op entirely (tombstone).
      if (seq_[second.pos] == close) {
        ops[second.op_index].pos = -1;
      } else {
        ops[second.op_index] = {EditOpKind::kSubstitute, second.pos, close};
      }
    } else {
      ops.push_back({EditOpKind::kSubstitute, second.pos, close});
    }
    result_->script.aligned_pairs.emplace_back(first.pos, second.pos);
  }

  void DeleteLeftover(const GreedyEntry& e) {
    std::vector<EditOp>& ops = result_->script.ops;
    if (e.op_index >= 0) {
      ops[e.op_index] = {EditOpKind::kDelete, e.pos, Paren{}};
    } else {
      ops.push_back({EditOpKind::kDelete, e.pos, Paren{}});
    }
  }

  void Finish() {
    // Drop tombstoned ops, then order.
    std::erase_if(result_->script.ops,
                  [](const EditOp& op) { return op.pos < 0; });
    result_->script.Normalize();
    result_->cost = result_->script.Cost();
  }

 private:
  ParenSpan seq_;
  GreedyResult* result_;
};

// Counts what ScriptPolicy would have put in ops (after tombstone
// removal), touching no script storage at all. Templated on the view so
// the reversed-pass lookup in PairLeftovers reads the same coordinates the
// scan produced.
template <typename Seq>
class CountPolicy {
 public:
  explicit CountPolicy(const Seq& seq) : seq_(seq) {}

  // A flipped entry already paid for its substitution; rewriting it into
  // a deletion keeps the op count unchanged.
  void DeleteTop(const GreedyEntry& top) {
    if (top.op_index < 0) ++count_;
  }
  void DeleteCloser(int64_t) { ++count_; }
  void MatchPair(int64_t, int64_t) {}
  // Zero-cost pairs don't affect the count; the kernel skips recording.
  std::vector<std::pair<int64_t, int64_t>>* PairSink() { return nullptr; }
  int32_t FlipOpener(int64_t, ParenType) {
    ++count_;
    return 0;  // "has an op" flag; the index itself is never dereferenced
  }
  void RetypeCloser(const GreedyEntry&, int64_t) { ++count_; }
  void PairLeftovers(const GreedyEntry& first, const GreedyEntry& second) {
    if (second.op_index >= 0) {
      // In-place rewrite of the flip op (no new op) — unless the original
      // symbol already is the needed closer, where the flip op tombstones
      // away entirely.
      if (seq_[second.pos] == Paren::Close(first.type)) --count_;
    } else {
      ++count_;
    }
  }
  void DeleteLeftover(const GreedyEntry& e) {
    if (e.op_index < 0) ++count_;
  }

  int64_t count() const { return count_; }

 private:
  Seq seq_;
  int64_t count_ = 0;
};

template <typename Seq>
int64_t CountEdits(const Seq& seq, bool allow_substitutions,
                   std::vector<GreedyEntry>& stack) {
  CountPolicy<Seq> policy(seq);
  GreedyScan(seq, allow_substitutions, stack, policy);
  return policy.count();
}

}  // namespace

GreedyResult GreedyRepair(ParenSpan seq, bool allow_substitutions,
                          std::vector<GreedyEntry>* stack_scratch) {
  GreedyResult result;
  std::vector<GreedyEntry> local;
  ScriptPolicy policy(seq, &result);
  GreedyScan(seq, allow_substitutions,
             stack_scratch != nullptr ? *stack_scratch : local, policy);
  policy.Finish();
  return result;
}

int64_t EstimateDistanceUpperBound(ParenSpan seq, bool allow_substitutions,
                                   std::vector<GreedyEntry>* stack_scratch) {
  std::vector<GreedyEntry> local;
  return CountEdits(seq, allow_substitutions,
                    stack_scratch != nullptr ? *stack_scratch : local);
}

int64_t EstimateDistanceUpperBoundBidirectional(
    ParenSpan seq, bool allow_substitutions,
    std::vector<GreedyEntry>* stack_scratch) {
  std::vector<GreedyEntry> local;
  std::vector<GreedyEntry>& stack =
      stack_scratch != nullptr ? *stack_scratch : local;
  const int64_t forward = CountEdits(seq, allow_substitutions, stack);
  if (forward <= 1) return forward;  // already tight: d >= 1 on any conflict
  const int64_t backward =
      CountEdits(ReversedFlippedView(seq), allow_substitutions, stack);
  return std::min(forward, backward);
}

}  // namespace dyck
