#include "src/baseline/greedy.h"

#include <vector>

namespace dyck {

GreedyResult GreedyRepair(const ParenSeq& seq, bool allow_substitutions) {
  GreedyResult result;
  std::vector<EditOp>& ops = result.script.ops;
  struct Entry {
    ParenType type;
    int64_t pos;
    // Index into `ops` of the substitution that created this entry (a
    // direction-flipped closer), or -1 for an ordinary opener. If such an
    // entry is later edited again, the existing op is rewritten in place
    // so each position carries at most one op.
    int32_t op_index;
  };
  std::vector<Entry> stack;

  // Deletes the top entry for cost 1, folding the deletion into the
  // entry's own substitution op when it has one.
  auto delete_top = [&] {
    const Entry& top = stack.back();
    if (top.op_index >= 0) {
      ops[top.op_index] = {EditOpKind::kDelete, top.pos, Paren{}};
    } else {
      ops.push_back({EditOpKind::kDelete, top.pos, Paren{}});
    }
    stack.pop_back();
  };

  for (int64_t i = 0; i < static_cast<int64_t>(seq.size()); ++i) {
    const Paren& p = seq[i];
    if (p.is_open) {
      stack.push_back({p.type, i, -1});
      continue;
    }
    if (!stack.empty() && stack.back().type == p.type) {
      result.script.aligned_pairs.emplace_back(stack.back().pos, i);
      stack.pop_back();
      continue;
    }
    // Conflict. The rules below are ordered to defuse the cascade modes a
    // naive policy suffers (see greedy.h).
    const Paren* next =
        i + 1 < static_cast<int64_t>(seq.size()) ? &seq[i + 1] : nullptr;
    //
    // Probe a few entries below the top: if the closer matches one of
    // them, the entries above it are likely spurious openers — drop them
    // and complete the match. Depth 2 is accepted on the match alone;
    // deeper matches are too likely coincidences (with 4 types, ~58%
    // within 3 probes), so they additionally require the next symbol to
    // close the entry that would become the new top.
    constexpr size_t kProbeDepth = 4;
    size_t match_depth = 0;
    for (size_t k = 2; k <= kProbeDepth && k <= stack.size(); ++k) {
      if (stack[stack.size() - k].type != p.type) continue;
      if (k == 2 ||
          (next != nullptr && k < stack.size() &&
           Paren::Open(stack[stack.size() - k - 1].type).Matches(*next))) {
        match_depth = k;
        break;
      }
    }
    if (match_depth >= 2) {
      for (size_t k = 1; k < match_depth; ++k) delete_top();
      result.script.aligned_pairs.emplace_back(stack.back().pos, i);
      stack.pop_back();
      continue;
    }
    if (!stack.empty() && next != nullptr &&
        Paren::Open(stack.back().type).Matches(*next)) {
      // The very next symbol closes the top properly: y is a stray.
      ops.push_back({EditOpKind::kDelete, i, Paren{}});
      continue;
    }
    if (!stack.empty() && allow_substitutions) {
      if (next != nullptr && next->is_open) {
        // Nesting continues below y: y looks like a direction-flipped
        // opener. Flip it back and push.
        const int32_t op_index = static_cast<int32_t>(ops.size());
        ops.push_back({EditOpKind::kSubstitute, i, Paren::Open(p.type)});
        stack.push_back({p.type, i, op_index});
      } else if (next == nullptr ||
                 (stack.size() >= 2 &&
                  Paren::Open(stack[stack.size() - 2].type)
                      .Matches(*next))) {
        // Retype the closer to match the top — either the input ends here
        // (no cascade possible) or the parent closes right after
        // (positive evidence y really was the top's closer). Without such
        // evidence, sub-aligning an *orphaned* closer consumes the
        // parent's opener and the mistake cascades up the nesting spine.
        ops.push_back(
            {EditOpKind::kSubstitute, i, Paren::Close(stack.back().type)});
        result.script.aligned_pairs.emplace_back(stack.back().pos, i);
        stack.pop_back();
      } else {
        ops.push_back({EditOpKind::kDelete, i, Paren{}});
      }
    } else {
      // Conflict or empty stack: drop the closer.
      ops.push_back({EditOpKind::kDelete, i, Paren{}});
    }
  }

  // Leftover openings.
  if (allow_substitutions) {
    size_t idx = 0;
    for (; idx + 1 < stack.size(); idx += 2) {
      const Entry& first = stack[idx];
      const Entry& second = stack[idx + 1];
      const Paren close = Paren::Close(first.type);
      if (second.op_index >= 0) {
        // The second entry is a flipped closer: rewrite its op in place.
        // If its original symbol already equals the needed closer, the
        // flip was wasted — drop the op entirely (tombstone).
        if (seq[second.pos] == close) {
          ops[second.op_index].pos = -1;
        } else {
          ops[second.op_index] = {EditOpKind::kSubstitute, second.pos,
                                  close};
        }
      } else {
        ops.push_back({EditOpKind::kSubstitute, second.pos, close});
      }
      result.script.aligned_pairs.emplace_back(first.pos, second.pos);
    }
    if (idx < stack.size()) {
      const Entry& odd = stack[idx];
      if (odd.op_index >= 0) {
        ops[odd.op_index] = {EditOpKind::kDelete, odd.pos, Paren{}};
      } else {
        ops.push_back({EditOpKind::kDelete, odd.pos, Paren{}});
      }
    }
  } else {
    for (const Entry& e : stack) {
      ops.push_back({EditOpKind::kDelete, e.pos, Paren{}});
    }
  }

  // Drop tombstoned ops, then order.
  std::erase_if(ops, [](const EditOp& op) { return op.pos < 0; });
  result.script.Normalize();
  result.cost = result.script.Cost();
  return result;
}

}  // namespace dyck
