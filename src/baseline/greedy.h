// Linear-time greedy repair heuristic.
//
// Table 1 lists Saha's near-linear O(log d)-approximation [Sah14] alongside
// the exact algorithms. Her meta-algorithm (random-walk alignment guessing
// over an approximate edit-distance oracle) is a research project of its
// own; this module provides the library's practical stand-in: a one-pass
// stack repair that commits a fixed local fix at every parse conflict. It
// is exact on conflict-free inputs, never better than the true distance,
// and its empirical approximation ratio on corrupted workloads is measured
// by bench_table1_scaling_d (typically well under 2x on random
// corruptions; no worst-case guarantee is claimed — see DESIGN.md).
//
// Decision policy at each conflict (closer y vs mismatching open top x),
// ordered, with one symbol of lookahead:
//   1. y matches an entry a little below the top (probe depth 4; deep
//      matches need the next symbol to corroborate) -> the tops above it
//      are spurious openers; delete them and match y. Without this rule a
//      single spurious opener poisons the stack and every later closer
//      conflicts.
//   2. the next symbol closes x properly -> y is a stray; delete it.
//   3. [subs] the next symbol is an opener -> y looks like a
//      direction-flipped opener; flip it back and push.
//   4. [subs] the input ends at y, or the next symbol closes the entry
//      below x -> positive evidence y is x's retyped closer; substitute.
//   5. default: delete y. Deleting is the asymmetrically safe move:
//      mistaking a retyped closer for an orphan wastes O(1) edits, while
//      sub-aligning an orphaned closer consumes the parent's opener and
//      the mistake cascades up the whole nesting spine (measured ~90x
//      cost blow-up on deep inputs before these rules; see
//      bench_ablation's approx_ratio counter and greedy_test's
//      large-input regression).
// Leftover openings at the end: delete all (deletion metric) or pair
// adjacent ones with one substitution each (substitution metric).

#ifndef DYCKFIX_SRC_BASELINE_GREEDY_H_
#define DYCKFIX_SRC_BASELINE_GREEDY_H_

#include <cstdint>

#include "src/alphabet/paren.h"
#include "src/core/edit_script.h"

namespace dyck {

struct GreedyResult {
  /// Number of edits the heuristic used; an upper bound on the true
  /// distance.
  int64_t cost = 0;
  EditScript script;
};

/// One-pass repair. O(n) time, O(depth) space.
GreedyResult GreedyRepair(const ParenSeq& seq, bool allow_substitutions);

}  // namespace dyck

#endif  // DYCKFIX_SRC_BASELINE_GREEDY_H_
