// Linear-time greedy repair heuristic.
//
// Table 1 lists Saha's near-linear O(log d)-approximation [Sah14] alongside
// the exact algorithms. Her meta-algorithm (random-walk alignment guessing
// over an approximate edit-distance oracle) is a research project of its
// own; this module provides the library's practical stand-in: a one-pass
// stack repair that commits a fixed local fix at every parse conflict. It
// is exact on conflict-free inputs, never better than the true distance,
// and its empirical approximation ratio on corrupted workloads is measured
// by bench_table1_scaling_d (typically well under 2x on random
// corruptions; no worst-case guarantee is claimed — see DESIGN.md).
//
// Decision policy at each conflict (closer y vs mismatching open top x),
// ordered, with one symbol of lookahead:
//   1. y matches an entry a little below the top (probe depth 4; deep
//      matches need the next symbol to corroborate) -> the tops above it
//      are spurious openers; delete them and match y. Without this rule a
//      single spurious opener poisons the stack and every later closer
//      conflicts.
//   2. the next symbol closes x properly -> y is a stray; delete it.
//   3. [subs] the next symbol is an opener -> y looks like a
//      direction-flipped opener; flip it back and push.
//   4. [subs] the input ends at y, or the next symbol closes the entry
//      below x -> positive evidence y is x's retyped closer; substitute.
//   5. default: delete y. Deleting is the asymmetrically safe move:
//      mistaking a retyped closer for an orphan wastes O(1) edits, while
//      sub-aligning an orphaned closer consumes the parent's opener and
//      the mistake cascades up the whole nesting spine (measured ~90x
//      cost blow-up on deep inputs before these rules; see
//      bench_ablation's approx_ratio counter and greedy_test's
//      large-input regression).
// Leftover openings at the end: delete all (deletion metric) or pair
// adjacent ones with one substitution each (substitution metric).
//
// Two consumers share one scan (src/baseline/greedy.cc templates the
// decision logic over a policy, so the two can never drift):
//   - GreedyRepair materializes the edit script — the approximate solver
//     and the DegradePolicy::kGreedy budget fallback.
//   - EstimateDistanceUpperBound counts the edits without building a
//     script — the planner's d-hint (src/pipeline/planner.h) and any other
//     caller that needs a cheap distance upper bound.

#ifndef DYCKFIX_SRC_BASELINE_GREEDY_H_
#define DYCKFIX_SRC_BASELINE_GREEDY_H_

#include <cstdint>
#include <vector>

#include "src/alphabet/paren.h"
#include "src/core/edit_script.h"

namespace dyck {

struct GreedyResult {
  /// Number of edits the heuristic used; an upper bound on the true
  /// distance.
  int64_t cost = 0;
  EditScript script;
};

/// One stack entry of the greedy scan. Exposed so callers can provide the
/// parse stack from reusable scratch (RepairContext::greedy_stack()).
struct GreedyEntry {
  ParenType type;
  int64_t pos;
  // Index into the script's ops of the substitution that created this
  // entry (a direction-flipped closer), or -1 for an ordinary opener. If
  // such an entry is later edited again, the existing op is rewritten in
  // place so each position carries at most one op. The count-only policy
  // stores a 0/-1 flag here (any op index collapses to "has one").
  int32_t op_index;
};

/// One-pass repair. O(n) time, O(depth) space. `stack_scratch` (optional)
/// provides the parse stack's storage, retaining its capacity across
/// documents; when null a local stack is used.
GreedyResult GreedyRepair(ParenSpan seq, bool allow_substitutions,
                          std::vector<GreedyEntry>* stack_scratch = nullptr);

/// The cost GreedyRepair would report, without materializing the script:
/// an upper bound on the true distance under the chosen metric, exact on
/// conflict-free inputs. O(n) time, zero allocations when `stack_scratch`
/// is a warmed reusable vector. A differential test pins it equal to
/// GreedyRepair(...).cost.
int64_t EstimateDistanceUpperBound(
    ParenSpan seq, bool allow_substitutions,
    std::vector<GreedyEntry>* stack_scratch = nullptr);

/// min(EstimateDistanceUpperBound(seq), same scan over the reversed
/// sequence with every direction flipped). Reversal-with-flip is a Dyck
/// distance isometry — deletion and substitution scripts map position by
/// position — so both scans bound the same distance, while greedy's
/// cascade pathologies are direction-dependent: a spurious symbol that
/// poisons the left-to-right parse is often benign right-to-left (measured
/// 145 vs 69 on one bench_planner grid cell whose true distance is 45).
/// The planner derives its d-hint from this tighter bound
/// (src/pipeline/planner.h); the reversed scan reads the span through a
/// flipping view, so no reversed copy is ever materialized.
int64_t EstimateDistanceUpperBoundBidirectional(
    ParenSpan seq, bool allow_substitutions,
    std::vector<GreedyEntry>* stack_scratch = nullptr);

}  // namespace dyck

#endif  // DYCKFIX_SRC_BASELINE_GREEDY_H_
