#include "src/baseline/branching.h"

#include <algorithm>
#include <vector>

#include "src/util/budget.h"
#include "src/util/logging.h"

namespace dyck {

namespace {

constexpr ParenType kWildcard = -1;

class Searcher {
 public:
  Searcher(ParenSpan seq, bool subs, int64_t max_d)
      : seq_(seq), subs_(subs), best_(max_d + 1) {}

  void Run() { Go(0, 0, {}); }

  int64_t best() const { return best_; }
  const std::vector<EditOp>& best_ops() const { return best_ops_; }
  bool found() const { return found_; }

 private:
  struct Entry {
    ParenType type;   // kWildcard for substituted closers
    int64_t pos;      // original index
    int32_t op_idx;   // index into ops_ of the pending wildcard op, or -1
  };

  // Explores from position i with `cost` edits spent and the given open
  // stack. The stack is copied per call; recursion depth is bounded by the
  // budget, so this costs O(n) per branch, within the 2^{O(d)} n budget.
  void Go(int64_t i, int64_t cost, std::vector<Entry> stack) {
    // One step per explored branch bounds the 2^{O(d)} search tree.
    BudgetCheckpoint("baseline.branching.search");
    if (cost >= best_) return;
    const int64_t n = static_cast<int64_t>(seq_.size());
    while (i < n) {
      const Paren& p = seq_[i];
      if (p.is_open) {
        stack.push_back(Entry{p.type, i, -1});
        ++i;
        continue;
      }
      if (!stack.empty() &&
          (stack.back().type == p.type || stack.back().type == kWildcard)) {
        if (stack.back().type == kWildcard) {
          // Commit the wildcard's type to this closer.
          ops_[stack.back().op_idx].replacement = Paren::Open(p.type);
        }
        stack.pop_back();
        ++i;
        continue;
      }
      // Stuck: enumerate the constant-size decision set.
      // (a) Delete the closer.
      ops_.push_back({EditOpKind::kDelete, i, Paren{}});
      Go(i + 1, cost + 1, stack);
      ops_.pop_back();
      // (b) Delete the mismatching top and retry this closer. Skipped for
      // wildcard tops: deleting a symbol we just substituted is dominated
      // by deleting it outright at its own stuck point.
      if (!stack.empty() && stack.back().type != kWildcard) {
        std::vector<Entry> popped = stack;
        const Entry top = popped.back();
        popped.pop_back();
        ops_.push_back({EditOpKind::kDelete, top.pos, Paren{}});
        Go(i, cost + 1, std::move(popped));
        ops_.pop_back();
      }
      if (subs_) {
        // (c) Substitute the closer to match the top.
        if (!stack.empty() && stack.back().type != kWildcard) {
          std::vector<Entry> popped = stack;
          const Entry top = popped.back();
          popped.pop_back();
          ops_.push_back(
              {EditOpKind::kSubstitute, i, Paren::Close(top.type)});
          Go(i + 1, cost + 1, std::move(popped));
          ops_.pop_back();
        }
        // (d) Substitute the closer into an opening wildcard.
        {
          std::vector<Entry> pushed = stack;
          pushed.push_back(
              Entry{kWildcard, i, static_cast<int32_t>(ops_.size())});
          ops_.push_back({EditOpKind::kSubstitute, i, Paren::Open(0)});
          Go(i + 1, cost + 1, std::move(pushed));
          ops_.pop_back();
        }
        // (e) Pair the top two stack openings with one substitution
        // (turn the top into the matching closer of the one below) and
        // retry this closer against the rest of the stack. Needed when the
        // current closer matches a deeper entry: for "([{" + ")", the
        // optimum rewrites "{" into "]" (pairing "[{" as "[]") and then
        // matches ")" to "(" — one edit total, unreachable via (a)-(d).
        if (stack.size() >= 2 && stack.back().type != kWildcard) {
          std::vector<Entry> popped = stack;
          const Entry top = popped.back();
          popped.pop_back();
          const Entry below = popped.back();
          popped.pop_back();
          if (below.type == kWildcard) {
            // The wildcard adopts the top's type; the top flips direction.
            ops_[below.op_idx].replacement = Paren::Open(top.type);
            ops_.push_back(
                {EditOpKind::kSubstitute, top.pos, Paren::Close(top.type)});
          } else {
            ops_.push_back({EditOpKind::kSubstitute, top.pos,
                            Paren::Close(below.type)});
          }
          Go(i, cost + 1, std::move(popped));
          ops_.pop_back();
        }
      }
      return;
    }
    FinishLeaf(cost, stack);
  }

  // End of input: repair the leftover open stack. Pruning here is
  // deliberately conservative (cost only): wildcard folds and self-sub
  // cleanup below can make the final op count smaller than any simple
  // ceil(m/2) estimate.
  void FinishLeaf(int64_t cost, const std::vector<Entry>& stack) {
    const int64_t m = static_cast<int64_t>(stack.size());
    if (cost >= best_) return;

    std::vector<EditOp> ops = ops_;
    if (subs_) {
      // Pair consecutive leftovers bottom-up: substitute the second of each
      // pair into a closer of the first's (chosen) type; delete an odd top.
      int64_t idx = 0;
      for (; idx + 1 < m; idx += 2) {
        const Entry& first = stack[idx];
        const Entry& second = stack[idx + 1];
        ParenType t = first.type;
        if (t == kWildcard) {
          t = 0;
          ops[first.op_idx].replacement = Paren::Open(0);
        }
        if (second.type == kWildcard) {
          // The wildcard becomes a closer after all: rewrite its pending op
          // in place (still one op on that position).
          ops[second.op_idx].replacement = Paren::Close(t);
        } else {
          ops.push_back({EditOpKind::kSubstitute, second.pos,
                         Paren::Close(t)});
        }
      }
      if (idx < m) {
        const Entry& odd = stack[idx];
        if (odd.type == kWildcard) {
          // Substituting then deleting would be two ops on one position;
          // fold into a single deletion.
          ops[odd.op_idx] = {EditOpKind::kDelete, odd.pos, Paren{}};
          // The fold removes one unit of previously-counted cost.
          // (Handled below by recounting from the op list.)
        } else {
          ops.push_back({EditOpKind::kDelete, odd.pos, Paren{}});
        }
      }
    } else {
      for (const Entry& e : stack) {
        ops.push_back({EditOpKind::kDelete, e.pos, Paren{}});
      }
    }

    // Canonicalize: drop self-substitutions (a wildcard rewritten back to
    // its original symbol); each drop strictly improves the solution.
    std::vector<EditOp> cleaned;
    cleaned.reserve(ops.size());
    for (const EditOp& op : ops) {
      if (op.kind == EditOpKind::kSubstitute &&
          op.replacement == seq_[op.pos]) {
        continue;
      }
      cleaned.push_back(op);
    }
    const int64_t total = static_cast<int64_t>(cleaned.size());
    if (total < best_) {
      best_ = total;
      best_ops_ = std::move(cleaned);
      found_ = true;
    }
  }

  const ParenSpan seq_;
  const bool subs_;
  int64_t best_;
  bool found_ = false;
  std::vector<EditOp> ops_;
  std::vector<EditOp> best_ops_;
};

}  // namespace

std::optional<int64_t> BranchingDistance(ParenSpan seq,
                                         bool allow_substitutions,
                                         int64_t max_d) {
  Searcher searcher(seq, allow_substitutions, max_d);
  searcher.Run();
  if (!searcher.found()) return std::nullopt;
  return searcher.best();
}

StatusOr<BranchingResult> BranchingRepair(ParenSpan seq,
                                          bool allow_substitutions,
                                          int64_t max_d) {
  Searcher searcher(seq, allow_substitutions, max_d);
  searcher.Run();
  if (!searcher.found()) {
    return Status::BoundExceeded("distance exceeds max_d " +
                                 std::to_string(max_d));
  }
  BranchingResult result;
  result.distance = searcher.best();
  result.script.ops = searcher.best_ops();
  result.script.Normalize();
  DYCK_CHECK_EQ(result.script.Cost(), result.distance);
  return result;
}

}  // namespace dyck
