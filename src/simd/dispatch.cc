// Backend selection: compile-time TU availability, runtime CPU detection,
// DYCKFIX_SIMD override, and the test hooks.

#include <atomic>
#include <cstdlib>
#include <string>

#include "src/simd/kernels.h"

namespace dyck::simd {

namespace {

std::atomic<int32_t> g_forced{-1};
std::atomic<bool> g_force_vector_path{false};

Backend AutoBackend() {
  if (BackendAvailable(Backend::kAvx2)) return Backend::kAvx2;
  if (BackendAvailable(Backend::kNeon)) return Backend::kNeon;
  if (BackendAvailable(Backend::kSse2)) return Backend::kSse2;
  return Backend::kScalar;
}

// Resolved once: a valid + available DYCKFIX_SIMD wins, anything else
// falls back to auto-detection (CheckEnv() surfaces the error to front
// ends that want to fail loudly instead).
Backend EnvOrAutoBackend() {
  static const Backend backend = [] {
    const char* env = std::getenv("DYCKFIX_SIMD");
    if (env != nullptr && *env != '\0') {
      Backend parsed;
      if (ParseBackendName(env, &parsed) && BackendAvailable(parsed)) {
        return parsed;
      }
    }
    return AutoBackend();
  }();
  return backend;
}

}  // namespace

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kScalar: return "scalar";
    case Backend::kSse2: return "sse2";
    case Backend::kAvx2: return "avx2";
    case Backend::kNeon: return "neon";
  }
  return "unknown";
}

bool ParseBackendName(std::string_view name, Backend* out) {
  for (const Backend b : kAllBackends) {
    if (name == BackendName(b)) {
      *out = b;
      return true;
    }
  }
  return false;
}

bool BackendAvailable(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kSse2:
#if defined(DYCKFIX_SIMD_HAVE_SSE2) && \
    (defined(__x86_64__) || defined(__i386__))
      return __builtin_cpu_supports("sse2") != 0;
#else
      return false;
#endif
    case Backend::kAvx2:
#if defined(DYCKFIX_SIMD_HAVE_AVX2) && \
    (defined(__x86_64__) || defined(__i386__))
      // PEXT is BMI2; both must be present for the dirbyte extraction.
      return __builtin_cpu_supports("avx2") != 0 &&
             __builtin_cpu_supports("bmi2") != 0;
#else
      return false;
#endif
    case Backend::kNeon:
#if defined(DYCKFIX_SIMD_HAVE_NEON)
      return true;  // baseline on aarch64
#else
      return false;
#endif
  }
  return false;
}

std::vector<Backend> AvailableBackends() {
  std::vector<Backend> out;
  for (const Backend b : kAllBackends) {
    if (BackendAvailable(b)) out.push_back(b);
  }
  return out;
}

Backend ActiveBackend() {
  const int32_t forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Backend>(forced);
  return EnvOrAutoBackend();
}

bool CheckEnv(std::string* error) {
  const char* env = std::getenv("DYCKFIX_SIMD");
  if (env == nullptr || *env == '\0') return true;
  Backend parsed;
  if (!ParseBackendName(env, &parsed)) {
    if (error != nullptr) {
      *error = "invalid DYCKFIX_SIMD value '" + std::string(env) +
               "'; valid values: scalar, sse2, avx2, neon";
    }
    return false;
  }
  if (!BackendAvailable(parsed)) {
    if (error != nullptr) {
      *error = "DYCKFIX_SIMD backend '" + std::string(env) +
               "' is not available in this build/CPU; available:";
      for (const Backend b : AvailableBackends()) {
        *error += ' ';
        *error += BackendName(b);
      }
    }
    return false;
  }
  return true;
}

bool ForceBackend(Backend backend) {
  if (!BackendAvailable(backend)) return false;
  g_forced.store(static_cast<int32_t>(backend), std::memory_order_relaxed);
  return true;
}

void ClearForcedBackend() {
  g_forced.store(-1, std::memory_order_relaxed);
}

void ForceVectorPathForTest(bool force) {
  g_force_vector_path.store(force, std::memory_order_relaxed);
}

namespace internal {

bool VectorPathForced() {
  return g_force_vector_path.load(std::memory_order_relaxed);
}

const KernelOps& ActiveOps() {
  switch (ActiveBackend()) {
#if defined(DYCKFIX_SIMD_HAVE_SSE2) && \
    (defined(__x86_64__) || defined(__i386__))
    case Backend::kSse2:
      return Sse2Ops();
#endif
#if defined(DYCKFIX_SIMD_HAVE_AVX2) && \
    (defined(__x86_64__) || defined(__i386__))
    case Backend::kAvx2:
      return Avx2Ops();
#endif
#if defined(DYCKFIX_SIMD_HAVE_NEON)
    case Backend::kNeon:
      return NeonOps();
#endif
    default:
      return ScalarOps();
  }
}

}  // namespace internal

}  // namespace dyck::simd
