// Templated kernel cores shared by the backend translation units. Each
// backend instantiates these with its own dirbyte / row-store functors, so
// the block structure (and therefore the exact arithmetic) is identical
// across backends and only the symbol-load primitives differ.

#ifndef DYCKFIX_SRC_SIMD_SPAN_CORE_H_
#define DYCKFIX_SRC_SIMD_SPAN_CORE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/simd/kernels.h"

namespace dyck::simd::internal {

// Height summary, 32 symbols per iteration. The four dirbyte table chains
// are paired into a min tree to shorten the dependency chain.
template <class DirByteFn>
SpanHeight SummarizeCore(const Paren* p, size_t n, DirByteFn dirbyte8) {
  const Tables& tb = GetTables();
  int64_t h = 0;
  int64_t m = 0;
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const uint32_t b0 = dirbyte8(p + i);
    const uint32_t b1 = dirbyte8(p + i + 8);
    const uint32_t b2 = dirbyte8(p + i + 16);
    const uint32_t b3 = dirbyte8(p + i + 24);
    int64_t m0 = h + tb.minp[b0];
    const int64_t h0 = h + tb.net[b0];
    const int64_t m1 = h0 + tb.minp[b1];
    const int64_t h1 = h0 + tb.net[b1];
    int64_t m2 = h1 + tb.minp[b2];
    const int64_t h2 = h1 + tb.net[b2];
    const int64_t m3 = h2 + tb.minp[b3];
    h = h2 + tb.net[b3];
    m0 = m1 < m0 ? m1 : m0;
    m2 = m3 < m2 ? m3 : m2;
    m0 = m2 < m0 ? m2 : m0;
    m = m0 < m ? m0 : m;
  }
  for (; i + 8 <= n; i += 8) {
    const uint32_t b = dirbyte8(p + i);
    const int64_t mm = h + tb.minp[b];
    m = mm < m ? mm : m;
    h += tb.net[b];
  }
  for (; i < n; ++i) {
    h += WordOpen(LoadWord(p + i)) != 0 ? +1 : -1;
    m = h < m ? h : m;
  }
  return {h, m};
}

// Slot pass. `store_row` writes slots[0..8) = base + row[0..8) (row is the
// int8 slot_off table row); the chains for net/min run scalar through the
// byte tables.
template <class DirByteFn, class StoreRowFn>
Pass1Info Pass1Core(const Paren* p, size_t n, int32_t* slots,
                    DirByteFn dirbyte8, StoreRowFn store_row) {
  const Tables& tb = GetTables();
  int64_t h = 0;
  int64_t sm = 0;
  int64_t mp = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const uint32_t b = dirbyte8(p + i);
    store_row(slots + i, tb.slot_off[b], static_cast<int32_t>(h));
    const int64_t s = h + tb.smin[b];
    sm = s < sm ? s : sm;
    const int64_t m = h + tb.minp[b];
    mp = m < mp ? m : mp;
    h += tb.net[b];
  }
  for (; i < n; ++i) {
    const uint64_t w = LoadWord(p + i);
    const int64_t o = WordOpen(w);
    h += 2 * o - 1;
    mp = h < mp ? h : mp;
    const int64_t s = h - o;
    sm = s < sm ? s : sm;
    slots[i] = static_cast<int32_t>(s);
  }
  return {h, sm, mp};
}

// Greedy fast-advance. Optimistic branch-free groups of 8 with a register
// journal; a group containing a conflict (type mismatch) or potential
// underflow is rolled back and replayed symbol by symbol, stopping exactly
// where GreedyScan's scalar fast path would stop.
template <class DirByteFn>
int64_t GreedyAdvanceCore(const Paren* data, int64_t n, int64_t i0, bool rev,
                          std::vector<GreedyEntry>& stack,
                          std::vector<std::pair<int64_t, int64_t>>* pairs,
                          DirByteFn dirbyte8) {
  const Tables& tb = GetTables();
  int64_t i = i0;
  int64_t d = static_cast<int64_t>(stack.size());
  const auto view = [&](int64_t idx) {
    Paren p = data[rev ? n - 1 - idx : idx];
    if (rev) p.is_open = !p.is_open;
    return p;
  };
  // Consumes up to `lim` symbols with the plain stack loop; false when a
  // conflict stops it (i then points at the conflicting symbol).
  const auto scalar_run = [&](int64_t lim) {
    stack.resize(static_cast<size_t>(d));
    const int64_t end = i + lim < n ? i + lim : n;
    while (i < end) {
      const Paren p = view(i);
      if (p.is_open) {
        stack.push_back({p.type, i, -1});
      } else if (!stack.empty() && stack.back().type == p.type) {
        if (pairs != nullptr) pairs->emplace_back(stack.back().pos, i);
        stack.pop_back();
      } else {
        d = static_cast<int64_t>(stack.size());
        return false;
      }
      ++i;
    }
    d = static_cast<int64_t>(stack.size());
    return true;
  };
  while (i + 8 <= n) {
    uint32_t b;
    if (!rev) {
      b = dirbyte8(data + i);
    } else {
      b = static_cast<uint32_t>(tb.rev8[dirbyte8(data + (n - 1 - i - 7))]) ^
          0xFFu;
    }
    if (d + tb.smin[b] < 0) {
      // The group may pop below the current depth — run it scalar.
      if (!scalar_run(8)) return i;
      continue;
    }
    if (static_cast<int64_t>(stack.size()) < d + 8) {
      stack.resize(static_cast<size_t>(d + 8));
    }
    GreedyEntry* st = stack.data();
    size_t np0 = 0;
    std::pair<int64_t, int64_t>* pp = nullptr;
    if (pairs != nullptr) {
      np0 = pairs->size();
      pairs->resize(np0 + 8);
      pp = pairs->data() + np0;
    }
    GreedyEntry journal[8];
    uint32_t bad = 0;
    size_t np = 0;
    if (pp != nullptr) {
      for (int j = 0; j < 8; ++j) {
        const int64_t pos = i + j;
        const Paren p = view(pos);
        const int64_t s = d + tb.slot_off[b][j];
        const GreedyEntry prev = st[s];
        journal[j] = prev;
        st[s] = {p.type, pos, -1};
        const uint32_t is_close = p.is_open ? 0u : 1u;
        pp[np] = {prev.pos, pos};
        np += is_close;
        bad |= is_close & static_cast<uint32_t>(prev.type != p.type);
      }
    } else {
      for (int j = 0; j < 8; ++j) {
        const int64_t pos = i + j;
        const Paren p = view(pos);
        const int64_t s = d + tb.slot_off[b][j];
        const GreedyEntry prev = st[s];
        journal[j] = prev;
        st[s] = {p.type, pos, -1};
        const uint32_t is_close = p.is_open ? 0u : 1u;
        bad |= is_close & static_cast<uint32_t>(prev.type != p.type);
      }
    }
    if (bad == 0) {
      d += tb.net[b];
      if (pairs != nullptr) pairs->resize(np0 + np);
      i += 8;
      continue;
    }
    for (int j = 7; j >= 0; --j) {
      st[d + tb.slot_off[b][j]] = journal[j];
    }
    if (pairs != nullptr) pairs->resize(np0);
    if (!scalar_run(8)) return i;
  }
  if (!scalar_run(n - i)) return i;
  return n;
}

}  // namespace dyck::simd::internal

#endif  // DYCKFIX_SRC_SIMD_SPAN_CORE_H_
