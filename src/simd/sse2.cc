// SSE2 backend (x86 baseline, no SSSE3/SSE4/BMI2 assumed). Vectorizes the
// dirbyte extraction and slot-row widening; tokenization and the wave
// combine fall back to the scalar implementations (they need PSHUFB /
// 64-bit compares that SSE2 lacks).

#if defined(DYCKFIX_SIMD_HAVE_SSE2)

#include <emmintrin.h>

#include "src/simd/span_core.h"

namespace dyck::simd::internal {
namespace {

// Direction bits of p[0..8): four 16-byte loads cover 8 Parens; MOVMSKB
// after a lane shift puts each is_open bit at positions 4 + 8k of a 64-bit
// word, and the classic multiply-gather packs those into one byte (the
// bitboard file-to-rank identity; carries cannot reach bits 56..63).
inline uint32_t DirByte8(const Paren* p) {
  const auto mask16 = [](const Paren* q) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q));
    return static_cast<uint64_t>(
        static_cast<uint32_t>(_mm_movemask_epi8(_mm_slli_epi64(v, 7))) &
        0xFFFFu);
  };
  const uint64_t m64 = mask16(p) | (mask16(p + 2) << 16) |
                       (mask16(p + 4) << 32) | (mask16(p + 6) << 48);
  const uint64_t bits = (m64 >> 4) & 0x0101010101010101ull;
  return static_cast<uint32_t>((bits * 0x0102040810204080ull) >> 56);
}

// slots[0..8) = base + row[0..8), widening int8 -> int32 with SSE2
// unpack/shift sign extension.
inline void StoreRow(int32_t* dst, const int8_t* row, int32_t base) {
  const __m128i b8 =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(row));
  const __m128i w16 = _mm_srai_epi16(_mm_unpacklo_epi8(b8, b8), 8);
  const __m128i lo =
      _mm_srai_epi32(_mm_unpacklo_epi16(w16, w16), 16);
  const __m128i hi =
      _mm_srai_epi32(_mm_unpackhi_epi16(w16, w16), 16);
  const __m128i vbase = _mm_set1_epi32(base);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(dst),
                   _mm_add_epi32(lo, vbase));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 4),
                   _mm_add_epi32(hi, vbase));
}

SpanHeight SummarizeSse2(const Paren* p, size_t n) {
  return SummarizeCore(p, n, [](const Paren* q) { return DirByte8(q); });
}

Pass1Info Pass1Sse2(const Paren* p, size_t n, int32_t* slots) {
  return Pass1Core(p, n, slots, [](const Paren* q) { return DirByte8(q); },
                   [](int32_t* dst, const int8_t* row, int32_t base) {
                     StoreRow(dst, row, base);
                   });
}

int64_t GreedyAdvanceSse2(const Paren* data, int64_t n, int64_t i,
                          bool reversed_flipped,
                          std::vector<GreedyEntry>* stack,
                          std::vector<std::pair<int64_t, int64_t>>* pairs) {
  return GreedyAdvanceCore(data, n, i, reversed_flipped, *stack, pairs,
                           [](const Paren* q) { return DirByte8(q); });
}

size_t FindByteSse2(const char* s, size_t n, char c) {
  const __m128i needle = _mm_set1_epi8(c);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i));
    const auto hits = static_cast<uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(chunk, needle)));
    if (hits != 0) {
      return i + static_cast<size_t>(__builtin_ctz(hits));
    }
  }
  for (; i < n; ++i) {
    if (s[i] == c) return i;
  }
  return n;
}

}  // namespace

const KernelOps& Sse2Ops() {
  static const KernelOps ops = {
      &Pass1Sse2,          &SummarizeSse2,
      &GreedyAdvanceSse2,  &FindByteSse2,
      &TokenizeScalar,     &TokenizeLenientScalar,
      &WaveCombineScalar,
      nullptr,  // balance_blocks: needs VPERMD (AVX2) for the table-driven
      nullptr,  // in-register pair check; SSE2 keeps the height-tracked pass.
  };
  return ops;
}

}  // namespace dyck::simd::internal

#endif  // DYCKFIX_SIMD_HAVE_SSE2
