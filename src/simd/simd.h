// Portable fixed-width vector kernel layer.
//
// Every byte-at-a-time scan in the hot pipeline path — tokenization,
// balance checking, height summarization, matched-pair reduction, the
// greedy counting scan, and the LMS wave combine — bottoms out in a small
// set of span kernels declared here. Each kernel has one scalar reference
// implementation plus optional SSE2/AVX2/NEON implementations compiled
// into their own translation units with per-file target flags; a runtime
// dispatch table picks the best backend the CPU supports (overridable via
// the DYCKFIX_SIMD environment variable or ForceBackend()).
//
// Design (DESIGN.md §5.14 has the full story):
//   - A Paren is 8 bytes ({int32 type, bool is_open} + padding), so eight
//     symbols fit in two 256-bit loads. The direction bits of 8 symbols
//     are extracted into one "dirbyte", which indexes 256-entry tables of
//     per-block net height, min-prefix, and per-symbol stack-slot offsets
//     (the height prefix sum is a monoid, so 8-symbol blocks compose
//     exactly like ChunkSummary heights do in ReductionMerger).
//   - Stack-shaped scans (balance, reduce, greedy) become two passes:
//     pass 1 computes each symbol's stack slot (= height) vectorized;
//     pass 2 replays the slots through a flat array with no unpredictable
//     branches. Reduce and greedy run pass 2 optimistically in groups of
//     eight with a register journal and roll back to an exact scalar
//     replay on the rare conflicting group.
//   - Run-heavy inputs (long open/close runs, e.g. deeply nested docs) are
//     branch-predictor friendly, so the slot path loses to plain scalar
//     there; drivers probe the direction-alternation rate on a sample and
//     fall back to scalar scans when runs dominate. The fallback changes
//     timing only — every backend is pinned byte-identical to the scalar
//     reference by tests/simd_test.cc.
//
// Thread safety: kernels are pure or use thread_local scratch; the active
// backend is a process-global atomic. ForceBackend()/ForceVectorPathForTest()
// are test/bench hooks and must not race with concurrent repairs.

#ifndef DYCKFIX_SRC_SIMD_SIMD_H_
#define DYCKFIX_SRC_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/alphabet/paren.h"

namespace dyck::simd {

// Keep names/order in sync with BackendName() and kAllBackends.
enum class Backend : int32_t {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kNeon = 3,
};

inline constexpr Backend kAllBackends[] = {Backend::kScalar, Backend::kSse2,
                                           Backend::kAvx2, Backend::kNeon};

/// Lower-case stable name ("scalar", "sse2", "avx2", "neon") — the value
/// accepted by DYCKFIX_SIMD and reported by telemetry.
const char* BackendName(Backend backend);

/// Inverse of BackendName. False on unknown names (no partial matches).
bool ParseBackendName(std::string_view name, Backend* out);

/// True when `backend` is compiled into this binary and usable on this CPU.
bool BackendAvailable(Backend backend);

/// Every available backend, scalar first.
std::vector<Backend> AvailableBackends();

/// The backend kernels dispatch to: ForceBackend() override if set, else a
/// valid DYCKFIX_SIMD value, else the best available.
Backend ActiveBackend();

/// Validates DYCKFIX_SIMD without changing state. Returns false and fills
/// `error` when the variable names an unknown or unavailable backend (the
/// library then ignores it and auto-selects; front ends call this at
/// startup to fail loudly instead of running silently on scalar).
bool CheckEnv(std::string* error);

/// Test/bench hook: pin dispatch to `backend`. False if unavailable.
bool ForceBackend(Backend backend);
/// Undoes ForceBackend (back to env/auto selection).
void ClearForcedBackend();

/// Test hook: when true, drivers skip the size thresholds and the
/// run-heaviness probe so differential tests exercise the vector code
/// paths on arbitrarily small and arbitrarily shaped inputs.
void ForceVectorPathForTest(bool force);

// ---------------------------------------------------------------------------
// Span kernels. All are byte-identical to their scalar reference on every
// backend; drivers may route small spans to the scalar path internally.

/// Height summary of a raw span: net height change and minimum prefix
/// height (both 0 for the empty span; min_prefix <= 0). The same monoid as
/// profile/height.h's HeightSummary.
struct SpanHeight {
  int64_t net = 0;
  int64_t min_prefix = 0;
};

SpanHeight Summarize(const Paren* p, size_t n);

/// Exactly IsBalanced(span): every close matches the nearest open and the
/// final height is zero.
bool IsBalancedSpan(const Paren* p, size_t n);

/// Exactly the Reduce/SummarizeChunk stack pass: `kept` (cleared first)
/// receives the surviving positions in ascending order; `pairs` (appended
/// to, close-ascending) receives every (open_pos, close_pos) cancellation;
/// `height` (optional) receives the span's height summary.
void ReduceSpan(const Paren* p, size_t n, std::vector<int64_t>* kept,
                std::vector<std::pair<int64_t, int64_t>>* pairs,
                SpanHeight* height);

/// Index of the first `c` in s[0..n), or n. (The scalar backend defers to
/// memchr; vector backends use explicit compare loops.)
size_t FindByte(const char* s, size_t n, char c);

// ---------------------------------------------------------------------------
// Tokenization kernels.

/// Nibble-decomposed membership tables for the set of mapped characters
/// (char_map[c] >= 0). `usable` is false when any mapped character is
/// >= 0x80 (the PSHUFB trick can only index 7-bit chars); kernels then run
/// their scalar paths. Plain POD so it can live inside ParenAlphabet.
struct ByteSet {
  alignas(16) uint8_t lo[16] = {};
  alignas(16) uint8_t hi[16] = {};
  bool usable = false;
};

/// Builds the membership tables from a 256-entry char map (-1 = unmapped).
void BuildByteSet(const int32_t* char_map, ByteSet* out);

/// Strict tokenizer: converts s[0..k) into out[0..k) where k is the index
/// of the first unmapped character (k == n when fully mapped). Returns k.
/// Mirrors ParenAlphabet::Parse's per-char decode byte for byte.
size_t Tokenize(const char* s, size_t n, const int32_t* char_map,
                const ByteSet& set, Paren* out);

/// Lenient tokenizer: converts every mapped character of s[0..n), skipping
/// the rest. Returns the number of Parens written (out needs room for n).
size_t TokenizeLenient(const char* s, size_t n, const int32_t* char_map,
                       const ByteSet& set, Paren* out);

// ---------------------------------------------------------------------------
// LMS wave kernel.

/// Computes the pre-Slide candidate frontier row of wave h from the row of
/// wave h-1: for every diagonal index i in [0, 2*span], cand[i] is the
/// best row reachable by carry-over or one edit move (with the boundary
/// clamps of lms/wave.cc), or `unreached` when no move lands there.
/// `scratch` holds the padded copy of `prev` between calls.
void WaveCombineRow(const int64_t* prev, int64_t span, int64_t a_len,
                    int64_t b_len, bool substitutions, int64_t unreached,
                    int64_t* cand, std::vector<int64_t>* scratch);

}  // namespace dyck::simd

#endif  // DYCKFIX_SRC_SIMD_SIMD_H_
