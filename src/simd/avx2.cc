// AVX2+BMI2 backend. Compiled with -mavx2 -mbmi2 (per-file flags in
// src/CMakeLists.txt); only reachable through the dispatch table after a
// runtime __builtin_cpu_supports("avx2") && ("bmi2") check.

#if defined(DYCKFIX_SIMD_HAVE_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <cstring>

#include "src/simd/span_core.h"

namespace dyck::simd::internal {
namespace {

// Direction bits of p[0..8) in one byte, shuffle-port-free: the is_open
// byte of each 8-byte Paren moves its bit 0 to the byte's top bit with a
// lane shift, MOVMSKB collects one bit per byte, and PEXT picks the eight
// positions that correspond to the is_open bytes (4, 12, ..., 60). The
// type and padding bytes contribute garbage bits at positions PEXT
// discards.
inline uint32_t DirByte8(const Paren* p) {
  const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  const __m256i b =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 4));
  const auto am =
      static_cast<uint32_t>(_mm256_movemask_epi8(_mm256_slli_epi64(a, 7)));
  const auto bm =
      static_cast<uint32_t>(_mm256_movemask_epi8(_mm256_slli_epi64(b, 7)));
  const uint64_t m64 = static_cast<uint64_t>(am) | (static_cast<uint64_t>(bm) << 32);
  return static_cast<uint32_t>(_pext_u64(m64, 0x1010101010101010ull));
}

SpanHeight SummarizeAvx2(const Paren* p, size_t n) {
  return SummarizeCore(p, n, [](const Paren* q) { return DirByte8(q); });
}

Pass1Info Pass1Avx2(const Paren* p, size_t n, int32_t* slots) {
  const Tables& tb = GetTables();
  int64_t h = 0;
  int64_t mp = 0;
  __m256i vmin = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const uint32_t b = DirByte8(p + i);
    const __m128i row = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(tb.slot_off[b]));
    const __m256i slot = _mm256_add_epi32(
        _mm256_cvtepi8_epi32(row), _mm256_set1_epi32(static_cast<int32_t>(h)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(slots + i), slot);
    vmin = _mm256_min_epi32(vmin, slot);
    const int64_t m = h + tb.minp[b];
    mp = m < mp ? m : mp;
    h += tb.net[b];
  }
  __m128i lo = _mm_min_epi32(_mm256_castsi256_si128(vmin),
                             _mm256_extracti128_si256(vmin, 1));
  lo = _mm_min_epi32(lo, _mm_shuffle_epi32(lo, 0x4E));
  lo = _mm_min_epi32(lo, _mm_shuffle_epi32(lo, 0xB1));
  int64_t sm = _mm_cvtsi128_si32(lo);
  for (; i < n; ++i) {
    const uint64_t w = LoadWord(p + i);
    const int64_t o = WordOpen(w);
    h += 2 * o - 1;
    mp = h < mp ? h : mp;
    const int64_t s = h - o;
    sm = s < sm ? s : sm;
    slots[i] = static_cast<int32_t>(s);
  }
  return {h, sm, mp};
}

int64_t GreedyAdvanceAvx2(const Paren* data, int64_t n, int64_t i,
                          bool reversed_flipped,
                          std::vector<GreedyEntry>* stack,
                          std::vector<std::pair<int64_t, int64_t>>* pairs) {
  return GreedyAdvanceCore(data, n, i, reversed_flipped, *stack, pairs,
                           [](const Paren* q) { return DirByte8(q); });
}

// Staged balance kernel (kernels.h has the contract). Per 8-symbol block:
// the types of in-block matched pairs are compared entirely in registers
// (a table-driven VPERMD routes each close lane its matching open's
// type), and only the external lanes — on uniform inputs about a third —
// are left-packed into the staging arrays for the driver's slot replay.
// In-block pairs thus generate no memory traffic at all, which is where
// this wins over a full slot-array pass.
size_t BalanceBlocksAvx2(const Paren* p, size_t n, int32_t* codes_stage,
                         int32_t* slots_stage, Pass1Info* info,
                         uint32_t* bad) {
  const Tables& tb = GetTables();
  const __m256i lane_idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i ones = _mm256_set1_epi32(1);
  int64_t h = 0;
  int64_t mp = 0;
  size_t cnt = 0;
  uint32_t badm = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i + 4));
    // Dirbyte, sharing the two loads with the type extraction below.
    const auto am =
        static_cast<uint32_t>(_mm256_movemask_epi8(_mm256_slli_epi64(a, 7)));
    const auto bm =
        static_cast<uint32_t>(_mm256_movemask_epi8(_mm256_slli_epi64(c, 7)));
    const uint64_t m64 =
        static_cast<uint64_t>(am) | (static_cast<uint64_t>(bm) << 32);
    const uint32_t b =
        static_cast<uint32_t>(_pext_u64(m64, 0x1010101010101010ull));
    // Even dwords of a|c are the 8 types. SHUFPS 0x88 gathers them per
    // 128-bit half as [t0 t1 t4 t5 | t2 t3 t6 t7]; the qword permute
    // restores lane order.
    const __m256i tmix = _mm256_castps_si256(_mm256_shuffle_ps(
        _mm256_castsi256_ps(a), _mm256_castsi256_ps(c), 0x88));
    const __m256i types = _mm256_permute4x64_epi64(tmix, 0xD8);
    // In-block pair check: close lane k must equal its open's type.
    const __m256i msrc = _mm256_cvtepi8_epi32(_mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(tb.match_src[b])));
    const __m256i shuf = _mm256_permutevar8x32_epi32(types, msrc);
    const auto eq = static_cast<uint32_t>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(shuf, types))));
    badm |= tb.inblock_close[b] & ~eq;
    // codes = (type << 1) | direction, slots = h + per-lane offset.
    const __m256i openb = _mm256_and_si256(
        _mm256_srlv_epi32(_mm256_set1_epi32(static_cast<int32_t>(b)),
                          lane_idx),
        ones);
    const __m256i codes =
        _mm256_or_si256(_mm256_slli_epi32(types, 1), openb);
    const __m128i row = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(tb.slot_off[b]));
    const __m256i slots = _mm256_add_epi32(
        _mm256_cvtepi8_epi32(row),
        _mm256_set1_epi32(static_cast<int32_t>(h)));
    // Left-pack the external lanes; the full-width store clobbers up to
    // 8 don't-care lanes past cnt (staging arrays have n + 8 room).
    const __m256i perm = _mm256_cvtepi8_epi32(_mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(tb.ext_perm[b])));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(codes_stage + cnt),
                        _mm256_permutevar8x32_epi32(codes, perm));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(slots_stage + cnt),
                        _mm256_permutevar8x32_epi32(slots, perm));
    cnt += tb.ext_count[b];
    const int64_t m = h + tb.minp[b];
    mp = m < mp ? m : mp;
    h += tb.net[b];
  }
  *info = {h, mp, mp};
  *bad |= badm;
  return cnt;
}

// Second-level cancellation over the staged stream (kernels.h has the
// contract). The staged entries are already codes + slots, so a block of 8
// is two plain 32-byte loads and the direction byte is one movemask of the
// code LSBs — denser than the Paren form the first pass chews through.
size_t ReduceStageAvx2(int32_t* codes, int32_t* slots, size_t cnt,
                       uint32_t* bad) {
  const Tables& tb = GetTables();
  size_t out = 0;
  uint32_t badm = 0;
  size_t i = 0;
  for (; i + 8 <= cnt; i += 8) {
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(slots + i));
    const auto b = static_cast<uint32_t>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_slli_epi32(c, 31))));
    const __m256i types = _mm256_srli_epi32(c, 1);
    const __m256i msrc = _mm256_cvtepi8_epi32(_mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(tb.match_src[b])));
    const __m256i shuf = _mm256_permutevar8x32_epi32(types, msrc);
    const auto eq = static_cast<uint32_t>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(shuf, types))));
    badm |= tb.inblock_close[b] & ~eq;
    // In-place left-pack: out <= i always, and the full-width store tops
    // out at out + 7 <= i + 7, inside the block just loaded.
    const __m256i perm = _mm256_cvtepi8_epi32(_mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(tb.ext_perm[b])));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(codes + out),
                        _mm256_permutevar8x32_epi32(c, perm));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(slots + out),
                        _mm256_permutevar8x32_epi32(s, perm));
    out += tb.ext_count[b];
  }
  if (out != i && i < cnt) {
    std::memmove(codes + out, codes + i, (cnt - i) * sizeof(int32_t));
    std::memmove(slots + out, slots + i, (cnt - i) * sizeof(int32_t));
  }
  out += cnt - i;
  *bad |= badm;
  return out;
}

size_t FindByteAvx2(const char* s, size_t n, char c) {
  const __m256i needle = _mm256_set1_epi8(c);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i chunk =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i));
    const auto hits = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(chunk, needle)));
    if (hits != 0) {
      return i + static_cast<size_t>(__builtin_ctz(hits));
    }
  }
  for (; i < n; ++i) {
    if (s[i] == c) return i;
  }
  return n;
}

// Mapped-character mask of 32 bytes via nibble set-membership (bit i of
// the result = s[i] is in the alphabet). Characters >= 0x80 index past the
// hi table's populated half and come out unmapped, matching char_map.
inline uint32_t MappedMask32(const char* s, const __m256i lo_tbl,
                             const __m256i hi_tbl) {
  const __m256i chunk =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s));
  const __m256i nib_mask = _mm256_set1_epi8(0x0F);
  const __m256i lonib = _mm256_and_si256(chunk, nib_mask);
  const __m256i hinib = _mm256_and_si256(
      _mm256_srli_epi16(chunk, 4), nib_mask);
  const __m256i hit =
      _mm256_and_si256(_mm256_shuffle_epi8(lo_tbl, lonib),
                       _mm256_shuffle_epi8(hi_tbl, hinib));
  const auto zero = static_cast<uint32_t>(_mm256_movemask_epi8(
      _mm256_cmpeq_epi8(hit, _mm256_setzero_si256())));
  return ~zero;
}

size_t TokenizeAvx2(const char* s, size_t n, const int32_t* char_map,
                    const ByteSet* set, Paren* out) {
  if (set == nullptr || !set->usable) {
    return TokenizeScalar(s, n, char_map, set, out);
  }
  const __m256i lo_tbl = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(set->lo)));
  const __m256i hi_tbl = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(set->hi)));
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const uint32_t mapped = MappedMask32(s + i, lo_tbl, hi_tbl);
    if (mapped != 0xFFFFFFFFu) break;
    for (size_t j = 0; j < 32; ++j) {
      const int32_t entry = char_map[static_cast<unsigned char>(s[i + j])];
      out[i + j] = Paren{entry >> 1, (entry & 1) != 0};
    }
  }
  const size_t k = TokenizeScalar(s + i, n - i, char_map, set, out + i);
  return i + k;
}

size_t TokenizeLenientAvx2(const char* s, size_t n, const int32_t* char_map,
                           const ByteSet* set, Paren* out) {
  if (set == nullptr || !set->usable) {
    return TokenizeLenientScalar(s, n, char_map, set, out);
  }
  const __m256i lo_tbl = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(set->lo)));
  const __m256i hi_tbl = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(set->hi)));
  size_t written = 0;
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    uint32_t mapped = MappedMask32(s + i, lo_tbl, hi_tbl);
    if (mapped == 0) continue;  // prose block: nothing to extract
    if (mapped == 0xFFFFFFFFu) {
      for (size_t j = 0; j < 32; ++j) {
        const int32_t entry = char_map[static_cast<unsigned char>(s[i + j])];
        out[written++] = Paren{entry >> 1, (entry & 1) != 0};
      }
      continue;
    }
    while (mapped != 0) {
      const auto j = static_cast<size_t>(__builtin_ctz(mapped));
      mapped &= mapped - 1;
      const int32_t entry = char_map[static_cast<unsigned char>(s[i + j])];
      out[written++] = Paren{entry >> 1, (entry & 1) != 0};
    }
  }
  written += TokenizeLenientScalar(s + i, n - i, char_map, set, out + written);
  return written;
}

inline __m256i Min64(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b));
}
inline __m256i Max64(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(b, a, _mm256_cmpgt_epi64(a, b));
}

void WaveCombineAvx2(const int64_t* prev, int64_t span, int64_t a_len,
                     int64_t b_len, bool subs, int64_t unreached,
                     int64_t* cand) {
  const int64_t stride = 2 * span + 1;
  const __m256i zero = _mm256_setzero_si256();
  int64_t idx = 0;
  for (; idx + 4 <= stride; idx += 4) {
    // k = idx + lane - span, per lane.
    const __m256i k = _mm256_add_epi64(_mm256_set1_epi64x(idx - span),
                                       _mm256_setr_epi64x(0, 1, 2, 3));
    // Carry-over (unreached sorts below every real frontier row).
    __m256i best =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prev + idx));
    const auto consider = [&](int64_t diag_delta, int64_t row_delta) {
      __m256i src = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(prev + idx + diag_delta));
      // r <= a_len and c <= b_len clamps; an unreached source (-2) stays
      // negative through the mins and fails the src >= 0 test below.
      src = Min64(src, _mm256_set1_epi64x(a_len - row_delta));
      src = Min64(src,
                  _mm256_sub_epi64(_mm256_set1_epi64x(b_len - row_delta), k));
      const __m256i src_col = _mm256_add_epi64(
          _mm256_add_epi64(src, k), _mm256_set1_epi64x(diag_delta));
      const __m256i r =
          _mm256_add_epi64(src, _mm256_set1_epi64x(row_delta));
      const __m256i r_col = _mm256_add_epi64(r, k);
      // valid = src >= 0 && src + k + diag_delta >= 0 && r + k >= 0
      __m256i invalid = _mm256_cmpgt_epi64(zero, src);
      invalid = _mm256_or_si256(invalid, _mm256_cmpgt_epi64(zero, src_col));
      invalid = _mm256_or_si256(invalid, _mm256_cmpgt_epi64(zero, r_col));
      const __m256i candidate =
          _mm256_blendv_epi8(r, _mm256_set1_epi64x(unreached), invalid);
      best = Max64(best, candidate);
    };
    consider(+1, +1);
    consider(-1, 0);
    if (subs) {
      consider(0, +1);
      consider(+2, +2);
      consider(-2, 0);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(cand + idx), best);
  }
  for (; idx < stride; ++idx) {
    const int64_t k = idx - span;
    int64_t best = prev[idx];  // carry; unreached sorts below frontiers
    const auto consider = [&](int64_t diag_delta, int64_t row_delta) {
      int64_t src = prev[idx + diag_delta];
      if (src == unreached) return;
      src = std::min(src, a_len - row_delta);
      src = std::min(src, b_len - k - row_delta);
      if (src < 0 || src + k + diag_delta < 0) return;
      const int64_t r = src + row_delta;
      if (r < 0 || r + k < 0) return;
      best = std::max(best, r);
    };
    consider(+1, +1);
    consider(-1, 0);
    if (subs) {
      consider(0, +1);
      consider(+2, +2);
      consider(-2, 0);
    }
    cand[idx] = best;
  }
}

}  // namespace

const KernelOps& Avx2Ops() {
  static const KernelOps ops = {
      &Pass1Avx2,          &SummarizeAvx2,
      &GreedyAdvanceAvx2,  &FindByteAvx2,
      &TokenizeAvx2,       &TokenizeLenientAvx2,
      &WaveCombineAvx2,    &BalanceBlocksAvx2,
      &ReduceStageAvx2,
  };
  return ops;
}

}  // namespace dyck::simd::internal

#endif  // DYCKFIX_SIMD_HAVE_AVX2
