// Greedy fast-advance kernel: the conflict-free portion of GreedyScan
// (src/baseline/greedy.cc) as a span kernel, so the scan only pays the
// rule engine at actual conflicts.

#ifndef DYCKFIX_SRC_SIMD_GREEDY_KERNEL_H_
#define DYCKFIX_SRC_SIMD_GREEDY_KERNEL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/baseline/greedy.h"
#include "src/simd/simd.h"

namespace dyck::simd {

/// Consumes symbols of the view starting at view index `i`, replicating
/// GreedyScan's fast path exactly: an open pushes {type, pos, -1}; a close
/// whose type matches the stack top pops it and (when `pairs` is non-null,
/// i.e. the script policy) appends (top.pos, pos). Stops at the first
/// symbol the fast path cannot consume — a close with an empty stack or a
/// mismatching top — and returns its view index (n when the whole view was
/// consumed). The view is data[0..n) directly, or, when `reversed_flipped`
/// is set, data[n-1-i] with the direction inverted (the
/// ReversedFlippedView isometry), without materializing the reversal.
///
/// `stack` is the live GreedyScan stack: entries below the entry size are
/// preserved (including op_index of flipped openers), and on return
/// stack.size() is the new depth.
int64_t GreedyAdvance(const Paren* data, int64_t n, int64_t i,
                      bool reversed_flipped, std::vector<GreedyEntry>* stack,
                      std::vector<std::pair<int64_t, int64_t>>* pairs);

/// Should a scan over data[0..n) route its fast path through GreedyAdvance?
/// False for short spans, the scalar backend, and run-heavy inputs (where
/// the branch predictor makes the plain loop faster). GreedyScan evaluates
/// this once per scan — not per conflict — because the probe samples the
/// whole span. Always true while ForceVectorPathForTest is set.
bool GreedyKernelProfitable(const Paren* data, int64_t n);

}  // namespace dyck::simd

#endif  // DYCKFIX_SRC_SIMD_GREEDY_KERNEL_H_
