// Internal kernel plumbing shared by the backend translation units and the
// dispatch layer. Not part of the public surface — include src/simd/simd.h
// (or src/simd/greedy_kernel.h) from outside src/simd/.

#ifndef DYCKFIX_SRC_SIMD_KERNELS_H_
#define DYCKFIX_SRC_SIMD_KERNELS_H_

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "src/alphabet/paren.h"
#include "src/baseline/greedy.h"
#include "src/simd/simd.h"

namespace dyck::simd::internal {

// ---------------------------------------------------------------------------
// Dirbyte tables. The direction bits (is_open) of 8 consecutive symbols,
// LSB = first symbol, index precomputed per-block quantities:
//   slot_off[b][k]  stack slot of symbol k relative to the block-entry
//                   height: h_after(k) - is_open(k). An open's slot is the
//                   depth it is pushed at; a close's slot is the depth of
//                   the entry it pops.
//   net[b]          height change across the block.
//   minp[b]         min over k of h_after(k) (<= 0).
//   smin[b]         min over k of slot_off[b][k] (<= 0).
//   rev8[b]         b with its 8 bits reversed (for reversed-view scans).
struct Tables {
  alignas(64) int8_t slot_off[256][8];
  alignas(64) int8_t net[256];
  alignas(64) int8_t minp[256];
  alignas(64) int8_t smin[256];
  alignas(64) uint8_t rev8[256];
  // In-block matching (the staged balance kernel): cancelling adjacent
  // open/close direction pairs within the block matches each close to an
  // open — and any such adjacency-matched pair is also matched in the
  // global parse, independent of what surrounds the block.
  //   match_src[b][k]   lane of the open that close-lane k pops when the
  //                     pair completes inside the block; 0 (ignored) when
  //                     k is an open or pops outside the block.
  //   inblock_close[b]  bitmask of the close lanes covered by match_src.
  //   ext_perm[b]       dword left-pack permutation: the ext_count[b]
  //                     external (not in-block-matched) lanes first, in
  //                     ascending order; trailing lanes are don't-cares.
  // Byte rows (expanded with cvtepi8_epi32 at use) keep the combined
  // footprint small enough to stay L1-resident next to the streamed data.
  alignas(64) int8_t match_src[256][8];
  alignas(64) int8_t ext_perm[256][8];
  alignas(64) uint8_t inblock_close[256];
  alignas(64) uint8_t ext_count[256];
};

const Tables& GetTables();

// Loads one Paren as a raw 64-bit word. Bits [0,32) are the type, bit 32
// is is_open; bits [40,64) are padding and must never be interpreted.
inline uint64_t LoadWord(const Paren* p) {
  uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;
}

inline int32_t WordType(uint64_t w) {
  return static_cast<int32_t>(static_cast<uint32_t>(w));
}
inline uint32_t WordOpen(uint64_t w) {
  return static_cast<uint32_t>(w >> 32) & 1u;
}
// (type << 1) | is_open — the same code ParenAlphabet's char map stores.
inline int32_t WordCode(uint64_t w) {
  return static_cast<int32_t>((static_cast<uint32_t>(w) << 1) | WordOpen(w));
}

// Scalar dirbyte: direction bits of p[0..8).
inline uint32_t DirByte8Scalar(const Paren* p) {
  uint32_t b = 0;
  for (int k = 0; k < 8; ++k) b |= WordOpen(LoadWord(p + k)) << k;
  return b;
}

// ---------------------------------------------------------------------------
// Per-backend kernel table. Entries may point at the scalar implementation
// when a backend has no profitable vector variant (documented per backend).

struct Pass1Info {
  int64_t h_end = 0;      // net height across the span
  int64_t slot_min = 0;   // min slot (<= 0); lower bound for slot arrays
  int64_t min_prefix = 0; // min prefix height (<= 0)
};

struct KernelOps {
  // Fills slots[0..n) with each symbol's absolute stack slot (entry height
  // h == 0) and returns {h_end, slot_min, min_prefix}. slots has room for
  // n + 8.
  Pass1Info (*pass1)(const Paren* p, size_t n, int32_t* slots);
  SpanHeight (*summarize)(const Paren* p, size_t n);
  // Greedy fast-advance; see greedy_kernel.h for the contract.
  int64_t (*greedy_advance)(const Paren* data, int64_t n, int64_t i,
                            bool reversed_flipped,
                            std::vector<GreedyEntry>* stack,
                            std::vector<std::pair<int64_t, int64_t>>* pairs);
  size_t (*find_byte)(const char* s, size_t n, char c);
  size_t (*tokenize)(const char* s, size_t n, const int32_t* char_map,
                     const ByteSet* set, Paren* out);
  size_t (*tokenize_lenient)(const char* s, size_t n, const int32_t* char_map,
                             const ByteSet* set, Paren* out);
  // prev is padded: prev[-2..stride+1] are readable, pads = unreached.
  void (*wave_combine)(const int64_t* prev, int64_t span, int64_t a_len,
                       int64_t b_len, bool subs, int64_t unreached,
                       int64_t* cand);
  // Optional staged balance kernel; nullptr when the backend has none
  // (the driver then runs its height-tracked array pass). Processes the
  // first floor(n/8) * 8 symbols: verifies type equality of every
  // in-block matched pair (OR-ing close-lane failure bits into *bad),
  // left-packs the external symbols' codes and absolute slots into the
  // staging arrays (each with room for n + 8), and returns the staged
  // count. info->h_end and info->min_prefix describe the processed
  // prefix (slot_min mirrors min_prefix) — the driver's shape check,
  // which it must apply before replaying the staged slots (min_prefix
  // >= 0 and a zero final height bound every staged slot to [0, n/2)).
  size_t (*balance_blocks)(const Paren* p, size_t n, int32_t* codes_stage,
                           int32_t* slots_stage, Pass1Info* info,
                           uint32_t* bad);
  // Optional follow-up to balance_blocks (nullptr when absent). The staged
  // stream is itself a parenthesis stream in original order, so the same
  // in-block cancellation applies to it verbatim: verifies every pair
  // matched within a block of 8 staged entries (OR-ing failures into
  // *bad), left-packs the survivors in place, and returns the new count.
  // In-place is safe: the write cursor never passes the read cursor and
  // the full-width stores stay within the current block. The driver calls
  // this repeatedly while the stream keeps shrinking, then replays only
  // what remains.
  size_t (*reduce_stage)(int32_t* codes, int32_t* slots, size_t cnt,
                         uint32_t* bad);
};

// Scalar reference implementations (always compiled; other backends reuse
// them for kernels they do not vectorize).
Pass1Info Pass1Scalar(const Paren* p, size_t n, int32_t* slots);
SpanHeight SummarizeScalar(const Paren* p, size_t n);
int64_t GreedyAdvanceScalar(const Paren* data, int64_t n, int64_t i,
                            bool reversed_flipped,
                            std::vector<GreedyEntry>* stack,
                            std::vector<std::pair<int64_t, int64_t>>* pairs);
size_t FindByteScalar(const char* s, size_t n, char c);
size_t TokenizeScalar(const char* s, size_t n, const int32_t* char_map,
                      const ByteSet* set, Paren* out);
size_t TokenizeLenientScalar(const char* s, size_t n, const int32_t* char_map,
                             const ByteSet* set, Paren* out);
void WaveCombineScalar(const int64_t* prev, int64_t span, int64_t a_len,
                       int64_t b_len, bool subs, int64_t unreached,
                       int64_t* cand);

const KernelOps& ScalarOps();
#if defined(__x86_64__) || defined(__i386__)
#if defined(DYCKFIX_SIMD_HAVE_SSE2)
const KernelOps& Sse2Ops();
#endif
#if defined(DYCKFIX_SIMD_HAVE_AVX2)
const KernelOps& Avx2Ops();
#endif
#endif
#if defined(DYCKFIX_SIMD_HAVE_NEON)
const KernelOps& NeonOps();
#endif

// Active table after backend selection (dispatch.cc).
const KernelOps& ActiveOps();
// True when drivers should bypass thresholds and shape probes (test hook).
bool VectorPathForced();

}  // namespace dyck::simd::internal

#endif  // DYCKFIX_SRC_SIMD_KERNELS_H_
