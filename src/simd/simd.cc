// Public kernel drivers: adaptive routing between the plain scalar scans
// and the two-pass vector kernels, plus the backend-independent pass-2
// replays (balance's type-only array pass and reduce's journaled stack
// replay) that consume the vectorized slot arrays.

#include <algorithm>
#include <cstring>

#include "src/simd/greedy_kernel.h"
#include "src/simd/kernels.h"
#include "src/simd/simd.h"

namespace dyck::simd {

namespace {

using internal::ActiveOps;
using internal::KernelOps;
using internal::LoadWord;
using internal::Pass1Info;
using internal::VectorPathForced;
using internal::WordCode;
using internal::WordOpen;
using internal::WordType;

// Size floors below which the two-pass structure cannot pay for itself.
// The reduce floor is the largest: its pass 2 re-touches every slot, so
// the win over the (branch-predictable on repeated inputs) plain loop
// only materializes on spans that exceed the predictor's memory.
constexpr size_t kMinVectorSummarize = 64;
constexpr size_t kMinVectorBalance = 512;
constexpr size_t kMinVectorReduce = 8192;
constexpr int64_t kMinVectorGreedy = 512;

// Reusable per-thread buffers for the slot arrays and pass-2 state. Sized
// to the largest span seen; never shrunk.
struct Scratch {
  std::vector<int32_t> slots;  // pass-1 output, capacity n + 8
  std::vector<int32_t> type_at;  // balance pass 2: type by stack slot
  std::vector<uint64_t> entries;  // reduce pass 2: code | pos<<32 by slot
  std::vector<int32_t> codes;  // staged balance: external-symbol codes
};

Scratch& TlsScratch() {
  static thread_local Scratch scratch;
  return scratch;
}

// Direction-alternation probe: fraction of adjacent pairs that change
// direction, over ~1k symbols sampled across the span. Run-heavy inputs
// (long open/close runs — deeply nested documents) parse with near-perfect
// branch prediction, where the slot path's extra pass loses to the plain
// scan; route those to scalar.
bool RunHeavy(const Paren* p, size_t n) {
  constexpr size_t kProbes = 128;
  constexpr size_t kProbeLen = 9;  // 8 adjacent pairs per probe
  size_t transitions = 0;
  size_t samples = 0;
  if (n <= kProbes * kProbeLen) {
    for (size_t i = 1; i < n; ++i) {
      transitions += p[i - 1].is_open != p[i].is_open;
    }
    samples = n - 1;
  } else {
    const size_t step = n / kProbes;
    for (size_t b = 0; b + kProbeLen <= n; b += step) {
      for (size_t j = 1; j < kProbeLen; ++j) {
        transitions += p[b + j - 1].is_open != p[b + j].is_open;
      }
      samples += kProbeLen - 1;
    }
  }
  // Alternation under 25% => runs dominate.
  return transitions * 4 < samples;
}

bool IsBalancedScalar(const Paren* p, size_t n) {
  Scratch& sc = TlsScratch();
  std::vector<int32_t>& stack = sc.type_at;  // reused as a plain type stack
  stack.clear();
  for (size_t i = 0; i < n; ++i) {
    const Paren& cur = p[i];
    if (cur.is_open) {
      stack.push_back(cur.type);
    } else if (!stack.empty() && stack.back() == cur.type) {
      stack.pop_back();
    } else {
      return false;
    }
  }
  return stack.empty();
}

void ReduceScalar(const Paren* p, size_t n, std::vector<int64_t>* kept,
                  std::vector<std::pair<int64_t, int64_t>>* pairs,
                  SpanHeight* height) {
  int64_t h = 0;
  int64_t mp = 0;
  for (int64_t i = 0; i < static_cast<int64_t>(n); ++i) {
    const Paren& cur = p[i];
    h += cur.is_open ? +1 : -1;
    mp = h < mp ? h : mp;
    if (!cur.is_open && !kept->empty() &&
        p[static_cast<size_t>(kept->back())].Matches(cur)) {
      pairs->emplace_back(kept->back(), i);
      kept->pop_back();
    } else {
      kept->push_back(i);
    }
  }
  if (height != nullptr) *height = {h, mp};
}

}  // namespace

SpanHeight Summarize(const Paren* p, size_t n) {
  if (!VectorPathForced() &&
      (n < kMinVectorSummarize || ActiveBackend() == Backend::kScalar)) {
    return internal::SummarizeScalar(p, n);
  }
  return ActiveOps().summarize(p, n);
}

bool IsBalancedSpan(const Paren* p, size_t n) {
  if (!VectorPathForced() &&
      (n < kMinVectorBalance || ActiveBackend() == Backend::kScalar ||
       RunHeavy(p, n))) {
    return IsBalancedScalar(p, n);
  }
  const KernelOps& ops = ActiveOps();
  Scratch& sc = TlsScratch();
  if (sc.type_at.size() < n / 2 + 2) sc.type_at.resize(n / 2 + 2);
  int32_t* type_at = sc.type_at.data();

  if (ops.balance_blocks != nullptr) {
    // Staged pass: the kernel checks in-block pairs in registers, tracks
    // the height shape, and stages only the block-external symbols; the
    // tail joins the staging arrays verbatim. The replay then needs one
    // memory touch per staged symbol: opens write their type at their
    // slot, closes read it — a close never needs to write, because the
    // next access to its slot (if any) is always an open's write.
    if (sc.slots.size() < n + 8) sc.slots.resize(n + 8);
    if (sc.codes.size() < n + 8) sc.codes.resize(n + 8);
    int32_t* codes = sc.codes.data();
    int32_t* slots = sc.slots.data();
    uint32_t block_bad = 0;
    Pass1Info p1;
    size_t cnt = ops.balance_blocks(p, n, codes, slots, &p1, &block_bad);
    int64_t h = p1.h_end;
    int64_t mp = p1.min_prefix;
    for (size_t i = n & ~size_t{7}; i < n; ++i) {
      const uint64_t w = LoadWord(p + i);
      const int64_t o = WordOpen(w);
      codes[cnt] = WordCode(w);
      slots[cnt] = static_cast<int32_t>(h - 1 + o);
      ++cnt;
      h += 2 * o - 1;
      mp = h < mp ? h : mp;
    }
    // Shape check: a negative dip (close with no open to pop) or leftover
    // height is an imbalance regardless of types — and its absence bounds
    // every staged slot to [0, n/2), making the replay's indexing safe.
    if (mp < 0 || h != 0) return false;
    if (block_bad != 0) return false;
    // Second-level cancellation: the staged stream is a parenthesis
    // stream in original order, so the same in-block matching shrinks it
    // again — geometrically on typical inputs. Stop when a pass stops
    // paying for itself (< 1/8 shrink: deeply nested shapes cancel only
    // around their turning points).
    if (ops.reduce_stage != nullptr) {
      while (cnt >= 64) {
        const size_t before = cnt;
        cnt = ops.reduce_stage(codes, slots, cnt, &block_bad);
        if (before - cnt < before / 8) break;
      }
      if (block_bad != 0) return false;
    }
    // Branchless replay (mask selects, no data-dependent branches): the
    // non-taken memory op of each entry is routed to a dummy slot above
    // the live range.
    const size_t dummy = n / 2 + 1;
    uint32_t bad = 0;
    for (size_t k = 0; k < cnt; ++k) {
      const auto c = static_cast<uint32_t>(codes[k]);
      const uint32_t o = c & 1;
      const auto t = static_cast<int32_t>(c >> 1);
      const auto s = static_cast<size_t>(static_cast<uint32_t>(slots[k]));
      const size_t open_mask = size_t{0} - static_cast<size_t>(o);
      const size_t widx = (s & open_mask) | (dummy & ~open_mask);
      const size_t ridx = (s & ~open_mask) | (dummy & open_mask);
      const int32_t prev = type_at[ridx];
      type_at[widx] = t;
      bad |= ~o & static_cast<uint32_t>(prev != t);
    }
    return (bad & 1u) == 0;
  }

  // Shape check first: one store-free vector pass rejects any negative dip
  // or leftover height. Its min_prefix >= 0 guarantee also bounds pass 2's
  // running height to [0, n/2], so the slot can be recomputed on the fly —
  // cheaper than materializing pass 1's slot array only to stream it
  // straight back in.
  const SpanHeight shape = ops.summarize(p, n);
  if (shape.min_prefix < 0 || shape.net != 0) return false;
  // Pass 2, type-only: every slot's last writer must be an open of the
  // close's type. The balanced-shape precondition means each close at slot
  // s pops exactly the open that last wrote s, so one flat array replaces
  // the stack and the loop has no unpredictable branches.
  uint32_t bad = 0;
  int64_t h = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t w = LoadWord(p + i);
    const int32_t t = WordType(w);
    const uint32_t o = WordOpen(w);
    const int64_t s = h - 1 + static_cast<int64_t>(o);  // open: h, close: h-1
    h += static_cast<int64_t>(o) * 2 - 1;
    const int32_t prev = type_at[s];
    type_at[s] = t;
    bad |= ~o & static_cast<uint32_t>(prev != t);
  }
  return (bad & 1u) == 0;
}

void ReduceSpan(const Paren* p, size_t n, std::vector<int64_t>* kept,
                std::vector<std::pair<int64_t, int64_t>>* pairs,
                SpanHeight* height) {
  kept->clear();
  if (!VectorPathForced() &&
      (n < kMinVectorReduce || ActiveBackend() == Backend::kScalar ||
       RunHeavy(p, n))) {
    ReduceScalar(p, n, kept, pairs, height);
    return;
  }
  Scratch& sc = TlsScratch();
  if (sc.slots.size() < n + 8) sc.slots.resize(n + 8);
  const Pass1Info p1 = ActiveOps().pass1(p, n, sc.slots.data());
  if (height != nullptr) *height = {p1.h_end, p1.min_prefix};
  const int32_t* slots = sc.slots.data();

  // Pass 2: replay the slots through a flat array of (code, position)
  // entries. Indices range over [slot_min, n]; `lo` leaves one spare slot
  // below for the deepest close.
  const int64_t lo = p1.slot_min - 1;
  const size_t entries_size = n + 2 + static_cast<size_t>(-lo);
  if (sc.entries.size() < entries_size) sc.entries.resize(entries_size);
  uint64_t* entry_at = sc.entries.data() - lo;

  // Cancellations are appended through a raw cursor; reserve the worst
  // case up front and trim after.
  const size_t pairs0 = pairs->size();
  pairs->resize(pairs0 + n);
  std::pair<int64_t, int64_t>* prs = pairs->data() + pairs0;
  size_t np = 0;

  // `base` is the stack floor: slots below it hold dead entries (survivor
  // closes and the opens they buried). A close only cancels when its slot
  // is live (s >= base) and the last writer is an open of its type.
  int64_t base = 0;

  // Exact replay of one symbol, with the survivor bookkeeping. Only runs
  // for the rare group that contains a non-canceling close.
  const auto replay = [&](size_t i) {
    const uint64_t w = LoadWord(p + i);
    const int32_t c = WordCode(w);
    const int64_t s = slots[i];
    const uint64_t pos = static_cast<uint64_t>(i);
    if ((c & 1) != 0) {  // open: push
      entry_at[s] = static_cast<uint32_t>(c) | (pos << 32);
      return;
    }
    const uint64_t prev = entry_at[s];
    if (s >= base && static_cast<int32_t>(static_cast<uint32_t>(prev)) ==
                         (c | 1)) {
      prs[np++] = {static_cast<int64_t>(prev >> 32),
                   static_cast<int64_t>(pos)};
    } else {
      // Survivor close: everything live below it survives too (those
      // opens can never cancel against a later close), then the close
      // itself becomes the new floor.
      for (int64_t q = base; q < s + 1; ++q) {
        kept->push_back(static_cast<int64_t>(entry_at[q] >> 32));
      }
      kept->push_back(static_cast<int64_t>(pos));
      base = s;
    }
    entry_at[s] = static_cast<uint32_t>(c) | (pos << 32);
  };

  size_t i = 0;
  const size_t n8 = n & ~static_cast<size_t>(7);
  while (i < n8) {
    // Optimistic group of 8: journal the previous entries, write
    // unconditionally, emit pair candidates through the cursor. If any
    // close fails to cancel, roll everything back and replay exactly.
    const size_t np0 = np;
    uint64_t journal[8];
    uint32_t bad = 0;
    for (size_t j = 0; j < 8; ++j) {
      const uint64_t w = LoadWord(p + i + j);
      const int32_t c = WordCode(w);
      const int64_t s = slots[i + j];
      const uint64_t prev = entry_at[s];
      journal[j] = prev;
      entry_at[s] = static_cast<uint32_t>(c) |
                    (static_cast<uint64_t>(i + j) << 32);
      const uint32_t is_close = ~static_cast<uint32_t>(c) & 1u;
      prs[np] = {static_cast<int64_t>(prev >> 32),
                 static_cast<int64_t>(i + j)};
      np += is_close;
      bad |= is_close &
             (static_cast<uint32_t>(
                  static_cast<int32_t>(static_cast<uint32_t>(prev)) !=
                  (c | 1)) |
              static_cast<uint32_t>(s < base));
    }
    if (bad == 0) {
      i += 8;
      continue;
    }
    for (size_t j = 8; j-- > 0;) entry_at[slots[i + j]] = journal[j];
    np = np0;
    for (size_t j = 0; j < 8; ++j) replay(i + j);
    i += 8;
  }
  for (; i < n; ++i) replay(i);

  // The live region [base, h_end) holds the trailing unmatched opens.
  for (int64_t q = base; q < p1.h_end; ++q) {
    kept->push_back(static_cast<int64_t>(entry_at[q] >> 32));
  }
  pairs->resize(pairs0 + np);
}

size_t FindByte(const char* s, size_t n, char c) {
  return ActiveOps().find_byte(s, n, c);
}

void BuildByteSet(const int32_t* char_map, ByteSet* out) {
  *out = ByteSet{};
  for (int c = 0; c < 256; ++c) {
    if (char_map[c] < 0) continue;
    if (c >= 0x80) {
      // PSHUFB can only classify 7-bit characters; leave the tables
      // unusable and let the kernels run their scalar paths.
      *out = ByteSet{};
      return;
    }
    out->lo[c & 0x0F] |= static_cast<uint8_t>(1u << (c >> 4));
  }
  for (int h = 0; h < 8; ++h) out->hi[h] = static_cast<uint8_t>(1u << h);
  out->usable = true;
}

size_t Tokenize(const char* s, size_t n, const int32_t* char_map,
                const ByteSet& set, Paren* out) {
  return ActiveOps().tokenize(s, n, char_map, &set, out);
}

size_t TokenizeLenient(const char* s, size_t n, const int32_t* char_map,
                       const ByteSet& set, Paren* out) {
  return ActiveOps().tokenize_lenient(s, n, char_map, &set, out);
}

void WaveCombineRow(const int64_t* prev, int64_t span, int64_t a_len,
                    int64_t b_len, bool substitutions, int64_t unreached,
                    int64_t* cand, std::vector<int64_t>* scratch) {
  // Pad the previous row by two unreached cells on each side so the +-1
  // and +-2 diagonal reads need no edge branches.
  const int64_t stride = 2 * span + 1;
  scratch->resize(static_cast<size_t>(stride) + 4);
  int64_t* padded = scratch->data() + 2;
  padded[-2] = unreached;
  padded[-1] = unreached;
  std::memcpy(padded, prev, static_cast<size_t>(stride) * sizeof(int64_t));
  padded[stride] = unreached;
  padded[stride + 1] = unreached;
  ActiveOps().wave_combine(padded, span, a_len, b_len, substitutions,
                           unreached, cand);
}

int64_t GreedyAdvance(const Paren* data, int64_t n, int64_t i,
                      bool reversed_flipped, std::vector<GreedyEntry>* stack,
                      std::vector<std::pair<int64_t, int64_t>>* pairs) {
  if (!VectorPathForced() && ActiveBackend() == Backend::kScalar) {
    return internal::GreedyAdvanceScalar(data, n, i, reversed_flipped, stack,
                                         pairs);
  }
  return ActiveOps().greedy_advance(data, n, i, reversed_flipped, stack,
                                    pairs);
}

bool GreedyKernelProfitable(const Paren* data, int64_t n) {
  if (VectorPathForced()) return true;
  if (n < kMinVectorGreedy || ActiveBackend() == Backend::kScalar) {
    return false;
  }
  return !RunHeavy(data, static_cast<size_t>(n));
}

}  // namespace dyck::simd
