// NEON backend (aarch64). De-interleaving structure loads extract the
// is_open words of 8 Parens; the rest of each kernel shares the templated
// cores. Tokenization and the wave combine use the scalar implementations.
//
// Note: this TU is compile-gated to aarch64 builds and exercised by the
// same differential suite (tests/simd_test.cc) as the x86 backends.

#if defined(DYCKFIX_SIMD_HAVE_NEON)

#include <arm_neon.h>

#include "src/simd/span_core.h"

namespace dyck::simd::internal {
namespace {

// Direction bits of p[0..8). vld2q deinterleaves {type, dir+padding} word
// pairs; bit 0 of each dir word is is_open (padding bytes occupy bits
// 8..31 and are masked off). The narrowed 0/1 bytes pack into one byte
// with the multiply-gather identity.
inline uint32_t DirByte8(const Paren* p) {
  const uint32x4x2_t a =
      vld2q_u32(reinterpret_cast<const uint32_t*>(p));
  const uint32x4x2_t b =
      vld2q_u32(reinterpret_cast<const uint32_t*>(p + 4));
  const uint32x4_t one = vdupq_n_u32(1);
  const uint16x4_t n0 = vmovn_u32(vandq_u32(a.val[1], one));
  const uint16x4_t n1 = vmovn_u32(vandq_u32(b.val[1], one));
  const uint8x8_t bytes = vmovn_u16(vcombine_u16(n0, n1));
  const uint64_t x = vget_lane_u64(vreinterpret_u64_u8(bytes), 0);
  return static_cast<uint32_t>((x * 0x0102040810204080ull) >> 56);
}

// slots[0..8) = base + row[0..8) via int8 -> int32 widening.
inline void StoreRow(int32_t* dst, const int8_t* row, int32_t base) {
  const int16x8_t w16 = vmovl_s8(vld1_s8(row));
  const int32x4_t vbase = vdupq_n_s32(base);
  vst1q_s32(dst, vaddq_s32(vmovl_s16(vget_low_s16(w16)), vbase));
  vst1q_s32(dst + 4, vaddq_s32(vmovl_s16(vget_high_s16(w16)), vbase));
}

SpanHeight SummarizeNeon(const Paren* p, size_t n) {
  return SummarizeCore(p, n, [](const Paren* q) { return DirByte8(q); });
}

Pass1Info Pass1Neon(const Paren* p, size_t n, int32_t* slots) {
  return Pass1Core(p, n, slots, [](const Paren* q) { return DirByte8(q); },
                   [](int32_t* dst, const int8_t* row, int32_t base) {
                     StoreRow(dst, row, base);
                   });
}

int64_t GreedyAdvanceNeon(const Paren* data, int64_t n, int64_t i,
                          bool reversed_flipped,
                          std::vector<GreedyEntry>* stack,
                          std::vector<std::pair<int64_t, int64_t>>* pairs) {
  return GreedyAdvanceCore(data, n, i, reversed_flipped, *stack, pairs,
                           [](const Paren* q) { return DirByte8(q); });
}

}  // namespace

const KernelOps& NeonOps() {
  static const KernelOps ops = {
      &Pass1Neon,          &SummarizeNeon,
      &GreedyAdvanceNeon,  &FindByteScalar,
      &TokenizeScalar,     &TokenizeLenientScalar,
      &WaveCombineScalar,
      nullptr,  // balance_blocks / reduce_stage: the staged kernel relies
      nullptr,  // on a cross-lane permute NEON lacks at dword width.
  };
  return ops;
}

}  // namespace dyck::simd::internal

#endif  // DYCKFIX_SIMD_HAVE_NEON
