// Scalar reference backend. Every other backend is pinned byte-identical
// to these implementations by tests/simd_test.cc; they are also the
// fallback entries for kernels a vector backend does not implement.

#include <algorithm>
#include <cstring>

#include "src/simd/kernels.h"

namespace dyck::simd::internal {

const Tables& GetTables() {
  static const Tables tables = [] {
    Tables tb;
    for (int b = 0; b < 256; ++b) {
      int h = 0;
      int mp = 0;
      int sm = 0;
      for (int k = 0; k < 8; ++k) {
        const int d = (b >> k) & 1;
        h += 2 * d - 1;
        mp = h < mp ? h : mp;
        const int slot = h - d;
        sm = slot < sm ? slot : sm;
        tb.slot_off[b][k] = static_cast<int8_t>(slot);
      }
      tb.net[b] = static_cast<int8_t>(h);
      tb.minp[b] = static_cast<int8_t>(mp);
      tb.smin[b] = static_cast<int8_t>(sm);
      uint8_t r = 0;
      for (int k = 0; k < 8; ++k) r |= ((b >> k) & 1) << (7 - k);
      tb.rev8[b] = r;
      // In-block matching: run the direction stack over the block; every
      // close that pops an in-block open is adjacency-matched to it.
      int open_stack[8];
      int sp = 0;
      bool paired[8] = {};
      tb.inblock_close[b] = 0;
      for (int k = 0; k < 8; ++k) {
        tb.match_src[b][k] = 0;
        if ((b >> k) & 1) {
          open_stack[sp++] = k;
        } else if (sp > 0) {
          const int a = open_stack[--sp];
          tb.match_src[b][k] = static_cast<int8_t>(a);
          tb.inblock_close[b] |= static_cast<uint8_t>(1u << k);
          paired[a] = true;
          paired[k] = true;
        }
      }
      int ext = 0;
      for (int k = 0; k < 8; ++k) {
        if (!paired[k]) tb.ext_perm[b][ext++] = static_cast<int8_t>(k);
      }
      tb.ext_count[b] = static_cast<uint8_t>(ext);
      for (int k = ext; k < 8; ++k) tb.ext_perm[b][k] = 0;
    }
    return tb;
  }();
  return tables;
}

SpanHeight SummarizeScalar(const Paren* p, size_t n) {
  int64_t h = 0;
  int64_t m = 0;
  for (size_t i = 0; i < n; ++i) {
    h += p[i].is_open ? +1 : -1;
    m = h < m ? h : m;
  }
  return {h, m};
}

Pass1Info Pass1Scalar(const Paren* p, size_t n, int32_t* slots) {
  int64_t h = 0;
  int64_t sm = 0;
  int64_t mp = 0;
  for (size_t i = 0; i < n; ++i) {
    const int64_t o = p[i].is_open ? 1 : 0;
    h += 2 * o - 1;
    mp = h < mp ? h : mp;
    const int64_t s = h - o;
    sm = s < sm ? s : sm;
    slots[i] = static_cast<int32_t>(s);
  }
  return {h, sm, mp};
}

int64_t GreedyAdvanceScalar(const Paren* data, int64_t n, int64_t i,
                            bool reversed_flipped,
                            std::vector<GreedyEntry>* stack,
                            std::vector<std::pair<int64_t, int64_t>>* pairs) {
  while (i < n) {
    Paren p = data[reversed_flipped ? n - 1 - i : i];
    if (reversed_flipped) p.is_open = !p.is_open;
    if (p.is_open) {
      stack->push_back({p.type, i, -1});
    } else if (!stack->empty() && stack->back().type == p.type) {
      if (pairs != nullptr) pairs->emplace_back(stack->back().pos, i);
      stack->pop_back();
    } else {
      return i;
    }
    ++i;
  }
  return n;
}

size_t FindByteScalar(const char* s, size_t n, char c) {
  const void* hit = std::memchr(s, static_cast<unsigned char>(c), n);
  return hit == nullptr
             ? n
             : static_cast<size_t>(static_cast<const char*>(hit) - s);
}

size_t TokenizeScalar(const char* s, size_t n, const int32_t* char_map,
                      const ByteSet* /*set*/, Paren* out) {
  for (size_t i = 0; i < n; ++i) {
    const int32_t entry = char_map[static_cast<unsigned char>(s[i])];
    if (entry < 0) return i;
    out[i] = Paren{entry >> 1, (entry & 1) != 0};
  }
  return n;
}

size_t TokenizeLenientScalar(const char* s, size_t n, const int32_t* char_map,
                             const ByteSet* /*set*/, Paren* out) {
  size_t written = 0;
  for (size_t i = 0; i < n; ++i) {
    const int32_t entry = char_map[static_cast<unsigned char>(s[i])];
    if (entry >= 0) out[written++] = Paren{entry >> 1, (entry & 1) != 0};
  }
  return written;
}

void WaveCombineScalar(const int64_t* prev, int64_t span, int64_t a_len,
                       int64_t b_len, bool subs, int64_t unreached,
                       int64_t* cand) {
  const int64_t stride = 2 * span + 1;
  for (int64_t idx = 0; idx < stride; ++idx) {
    const int64_t k = idx - span;
    int64_t best = unreached;
    // Carry-over: D <= h-1 implies D <= h.
    if (prev[idx] != unreached) best = std::max(best, prev[idx]);
    const auto consider = [&](int64_t diag_delta, int64_t row_delta) {
      int64_t src = prev[idx + diag_delta];
      if (src == unreached) return;
      src = std::min(src, a_len - row_delta);
      src = std::min(src, b_len - k - row_delta);
      if (src < 0 || src + k + diag_delta < 0) return;
      const int64_t r = src + row_delta;
      if (r < 0 || r + k < 0) return;
      best = std::max(best, r);
    };
    consider(+1, +1);
    consider(-1, 0);
    if (subs) {
      consider(0, +1);
      consider(+2, +2);
      consider(-2, 0);
    }
    cand[idx] = best;
  }
}

const KernelOps& ScalarOps() {
  static const KernelOps ops = {
      &Pass1Scalar,          &SummarizeScalar,
      &GreedyAdvanceScalar,  &FindByteScalar,
      &TokenizeScalar,       &TokenizeLenientScalar,
      &WaveCombineScalar,
      nullptr,  // balance_blocks: the driver's height-tracked pass is the
      nullptr,  // scalar path; staging would only add traffic here.
  };
  return ops;
}

}  // namespace dyck::simd::internal
