// XML/HTML tag tokenizer: <tag ...> and </tag> become typed parentheses,
// one type per distinct tag name.
//
// This is exactly the paper's HTML motivation (§1): properly nesting text
// formatting tags. Handled and skipped constructs: self-closing tags
// (<br/>), HTML void elements (<br>, <img>, ...), comments (<!-- -->),
// declarations (<!DOCTYPE ...>), processing instructions (<? ?>), and
// CDATA sections. Tag names are matched case-insensitively when
// `options.case_insensitive` is set (the HTML default).

#ifndef DYCKFIX_SRC_TEXTIO_XML_TOKENIZER_H_
#define DYCKFIX_SRC_TEXTIO_XML_TOKENIZER_H_

#include <string_view>

#include "src/textio/span_map.h"
#include "src/util/statusor.h"

namespace dyck {
namespace textio {

struct XmlTokenizerOptions {
  /// Lowercase tag names before interning (HTML behaviour).
  bool case_insensitive = true;
  /// Skip HTML void elements (br, img, hr, ...), which never take a closing
  /// tag and would otherwise always look unbalanced.
  bool skip_html_void_elements = true;
};

/// Extracts the tag structure of `text`.
StatusOr<TokenizedDocument> TokenizeXml(std::string_view text,
                                        const XmlTokenizerOptions& options);

/// Renders a tag token back to text, e.g. "<b>" / "</b>".
std::string RenderXmlToken(const Paren& paren,
                           const std::vector<std::string>& type_names);

}  // namespace textio
}  // namespace dyck

#endif  // DYCKFIX_SRC_TEXTIO_XML_TOKENIZER_H_
