// LaTeX environment tokenizer: \begin{env} / \end{env} pairs, one paren
// type per environment name — the paper's "mismatched LaTeX tags" use case.

#ifndef DYCKFIX_SRC_TEXTIO_LATEX_TOKENIZER_H_
#define DYCKFIX_SRC_TEXTIO_LATEX_TOKENIZER_H_

#include <string_view>

#include "src/textio/span_map.h"
#include "src/util/statusor.h"

namespace dyck {
namespace textio {

struct LatexTokenizerOptions {
  /// Also track brace groups "{...}" as a dedicated paren type named "{}".
  bool track_brace_groups = false;
  /// Skip comments (% to end of line) and verbatim environments.
  bool skip_comments = true;
};

/// Extracts the environment structure of `text`.
StatusOr<TokenizedDocument> TokenizeLatex(
    std::string_view text, const LatexTokenizerOptions& options);

/// Renders an environment token back to text, e.g. "\begin{itemize}".
std::string RenderLatexToken(const Paren& paren,
                             const std::vector<std::string>& type_names);

}  // namespace textio
}  // namespace dyck

#endif  // DYCKFIX_SRC_TEXTIO_LATEX_TOKENIZER_H_
