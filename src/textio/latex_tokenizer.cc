#include "src/textio/latex_tokenizer.h"

#include <algorithm>

namespace dyck {
namespace textio {

namespace {

constexpr std::string_view kBegin = "\\begin{";
constexpr std::string_view kEnd = "\\end{";
constexpr std::string_view kBraceTypeName = "{}";

}  // namespace

StatusOr<TokenizedDocument> TokenizeLatex(
    std::string_view text, const LatexTokenizerOptions& options) {
  TokenizedDocument doc;
  TypeInterner interner;
  ParenType brace_type = -1;
  if (options.track_brace_groups) {
    brace_type = interner.Intern(kBraceTypeName, &doc);
  }
  const int64_t n = static_cast<int64_t>(text.size());
  int64_t i = 0;
  while (i < n) {
    const char c = text[i];
    if (options.skip_comments && c == '%') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '\\' && i + 1 < n &&
        (text[i + 1] == '{' || text[i + 1] == '}' || text[i + 1] == '%' ||
         text[i + 1] == '\\')) {
      i += 2;  // escaped character, not structure
      continue;
    }
    if (options.track_brace_groups && (c == '{' || c == '}')) {
      doc.seq.push_back(c == '{' ? Paren::Open(brace_type)
                                 : Paren::Close(brace_type));
      doc.spans.push_back({i, i + 1});
      ++i;
      continue;
    }
    const bool is_begin = text.substr(i, kBegin.size()) == kBegin;
    const bool is_end = !is_begin && text.substr(i, kEnd.size()) == kEnd;
    if (!is_begin && !is_end) {
      ++i;
      continue;
    }
    const int64_t name_start =
        i + static_cast<int64_t>(is_begin ? kBegin.size() : kEnd.size());
    const size_t close = text.find('}', name_start);
    if (close == std::string_view::npos) {
      return Status::ParseError("unterminated \\begin/\\end at offset " +
                                std::to_string(i));
    }
    const std::string_view name =
        text.substr(name_start, close - name_start);
    const ParenType type = interner.Intern(name, &doc);
    const int64_t token_end = static_cast<int64_t>(close) + 1;
    doc.seq.push_back(is_begin ? Paren::Open(type) : Paren::Close(type));
    doc.spans.push_back({i, token_end});
    i = token_end;
    // Verbatim content must not be scanned for structure.
    if (options.skip_comments && is_begin && name == "verbatim") {
      const size_t end_pos = text.find("\\end{verbatim}", i);
      if (end_pos != std::string_view::npos) {
        i = static_cast<int64_t>(end_pos);
      }
    }
  }
  return doc;
}

std::string RenderLatexToken(const Paren& paren,
                             const std::vector<std::string>& type_names) {
  const std::string& name =
      (paren.type >= 0 &&
       paren.type < static_cast<ParenType>(type_names.size()))
          ? type_names[paren.type]
          : "unknown";
  if (name == kBraceTypeName) return paren.is_open ? "{" : "}";
  return (paren.is_open ? "\\begin{" : "\\end{") + name + "}";
}

}  // namespace textio
}  // namespace dyck
