// JSON bracket tokenizer: projects a (possibly corrupt) JSON document onto
// its {} / [] structure, skipping string literals.
//
// The paper's motivating application (§1): repairing semi-structured
// documents. Tokens: '{' '}' '[' ']' appearing outside strings. String
// literals honor backslash escapes; an unterminated string is treated as
// running to the end of the document (lenient mode) or reported as a
// ParseError (strict mode).

#ifndef DYCKFIX_SRC_TEXTIO_JSON_TOKENIZER_H_
#define DYCKFIX_SRC_TEXTIO_JSON_TOKENIZER_H_

#include <string_view>

#include "src/textio/span_map.h"
#include "src/util/statusor.h"

namespace dyck {
namespace textio {

struct JsonTokenizerOptions {
  /// In lenient mode an unterminated string literal simply ends the scan of
  /// string content; in strict mode it is a ParseError.
  bool lenient = true;
};

/// Extracts the bracket structure of `text`. Type 0 = "{}", type 1 = "[]".
StatusOr<TokenizedDocument> TokenizeJson(std::string_view text,
                                         const JsonTokenizerOptions& options);

/// Renders a bracket token back to text (for document repair).
std::string RenderJsonToken(const Paren& paren);

}  // namespace textio
}  // namespace dyck

#endif  // DYCKFIX_SRC_TEXTIO_JSON_TOKENIZER_H_
