// Shared types for document tokenizers.
//
// A tokenizer extracts the Dyck-relevant tokens of a document (tags,
// brackets, environments), producing a ParenSeq plus, per token, the byte
// span it came from and a printable name per type id. Distance/Repair run
// on the ParenSeq; ApplyScriptToDocument (document_repair.h) maps the edit
// script back onto the original text.

#ifndef DYCKFIX_SRC_TEXTIO_SPAN_MAP_H_
#define DYCKFIX_SRC_TEXTIO_SPAN_MAP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/alphabet/paren.h"

namespace dyck {
namespace textio {

/// Byte range [begin, end) in the source document.
struct TokenSpan {
  int64_t begin = 0;
  int64_t end = 0;
};

/// A document projected onto its parenthesis structure.
struct TokenizedDocument {
  ParenSeq seq;
  /// spans[i] is the source range of seq[i].
  std::vector<TokenSpan> spans;
  /// type_names[t] is the printable name of type id t (tag name,
  /// environment name, or bracket pair like "()").
  std::vector<std::string> type_names;
};

/// Interns names to dense type ids; shared by the tag-based tokenizers.
class TypeInterner {
 public:
  /// Returns the id for `name`, assigning the next free id on first use and
  /// recording the name into `doc->type_names`.
  ParenType Intern(std::string_view name, TokenizedDocument* doc);

 private:
  std::unordered_map<std::string, ParenType> ids_;
};

}  // namespace textio
}  // namespace dyck

#endif  // DYCKFIX_SRC_TEXTIO_SPAN_MAP_H_
