#include "src/textio/document_repair.h"

namespace dyck {
namespace textio {

StatusOr<std::string> ApplyScriptToDocument(std::string_view text,
                                            const TokenizedDocument& doc,
                                            const EditScript& script,
                                            const TokenRenderer& renderer) {
  const int64_t num_tokens = static_cast<int64_t>(doc.spans.size());
  std::string out;
  out.reserve(text.size());
  int64_t cursor = 0;
  for (const EditOp& op : script.ops) {
    const bool is_insert = op.kind == EditOpKind::kInsert;
    if (op.pos < 0 || op.pos >= num_tokens + (is_insert ? 1 : 0)) {
      return Status::InvalidArgument("script position " +
                                     std::to_string(op.pos) +
                                     " outside the tokenized document");
    }
    // Inserts anchor just before the token at pos (end of text for
    // pos == num_tokens); deletes/substitutes consume the token's span.
    const int64_t anchor = op.pos == num_tokens
                               ? static_cast<int64_t>(text.size())
                               : doc.spans[op.pos].begin;
    if (anchor < cursor) {
      return Status::InvalidArgument(
          "token spans overlap or script is unsorted");
    }
    out.append(text.substr(cursor, anchor - cursor));
    cursor = anchor;
    if (is_insert) {
      out.append(renderer(op.replacement, doc.type_names));
      continue;
    }
    if (op.kind == EditOpKind::kSubstitute) {
      out.append(renderer(op.replacement, doc.type_names));
    }
    cursor = doc.spans[op.pos].end;
  }
  out.append(text.substr(cursor));
  return out;
}

StatusOr<DocumentRepairResult> RepairDocument(std::string_view text,
                                              const TokenizedDocument& doc,
                                              const TokenRenderer& renderer,
                                              const Options& options) {
  DYCK_ASSIGN_OR_RETURN(RepairResult repair, Repair(doc.seq, options));
  DocumentRepairResult result;
  result.distance = repair.distance;
  result.script = std::move(repair.script);
  result.telemetry = repair.telemetry;
  DYCK_ASSIGN_OR_RETURN(
      result.repaired_text,
      ApplyScriptToDocument(text, doc, result.script, renderer));
  return result;
}

}  // namespace textio
}  // namespace dyck
