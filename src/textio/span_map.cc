#include "src/textio/span_map.h"

namespace dyck {
namespace textio {

ParenType TypeInterner::Intern(std::string_view name,
                               TokenizedDocument* doc) {
  auto [it, inserted] =
      ids_.try_emplace(std::string(name),
                       static_cast<ParenType>(doc->type_names.size()));
  if (inserted) doc->type_names.emplace_back(name);
  return it->second;
}

}  // namespace textio
}  // namespace dyck
