#include "src/textio/json_tokenizer.h"

namespace dyck {
namespace textio {

StatusOr<TokenizedDocument> TokenizeJson(
    std::string_view text, const JsonTokenizerOptions& options) {
  TokenizedDocument doc;
  // Type ids follow the default ()[]{}<> alphabet so debug rendering via
  // ToString() shows the expected characters: 1 = "[]", 2 = "{}".
  doc.type_names = {"()", "[]", "{}"};
  const int64_t n = static_cast<int64_t>(text.size());
  int64_t i = 0;
  while (i < n) {
    const char c = text[i];
    if (c == '"') {
      // Skip the string literal, honoring escapes.
      int64_t j = i + 1;
      while (j < n && text[j] != '"') {
        j += (text[j] == '\\') ? 2 : 1;
      }
      if (j >= n && !options.lenient) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(i));
      }
      i = std::min(j + 1, n);
      continue;
    }
    switch (c) {
      case '{':
        doc.seq.push_back(Paren::Open(2));
        doc.spans.push_back({i, i + 1});
        break;
      case '}':
        doc.seq.push_back(Paren::Close(2));
        doc.spans.push_back({i, i + 1});
        break;
      case '[':
        doc.seq.push_back(Paren::Open(1));
        doc.spans.push_back({i, i + 1});
        break;
      case ']':
        doc.seq.push_back(Paren::Close(1));
        doc.spans.push_back({i, i + 1});
        break;
      default:
        break;
    }
    ++i;
  }
  return doc;
}

std::string RenderJsonToken(const Paren& paren) {
  if (paren.type == 2) return paren.is_open ? "{" : "}";
  return paren.is_open ? "[" : "]";
}

}  // namespace textio
}  // namespace dyck
