// Generic single-character bracket tokenizer with source spans.
//
// Projects any text onto the bracket characters of a ParenAlphabet,
// recording one span per bracket so edit scripts can be applied back to
// the text. This is the format-agnostic fallback the CLI's "parens" mode
// and plain-text uses share; the structured tokenizers (JSON, XML, LaTeX,
// source) add literal/comment awareness on top.

#ifndef DYCKFIX_SRC_TEXTIO_BRACKET_TOKENIZER_H_
#define DYCKFIX_SRC_TEXTIO_BRACKET_TOKENIZER_H_

#include <string_view>

#include "src/alphabet/parse.h"
#include "src/textio/span_map.h"

namespace dyck {
namespace textio {

/// Extracts every alphabet bracket of `text` with its byte span; all other
/// characters are ignored (and preserved by ApplyScriptToDocument).
TokenizedDocument TokenizeBrackets(std::string_view text,
                                   const ParenAlphabet& alphabet);

/// Renderer companion for TokenizeBrackets over the default alphabet.
std::string RenderBracketToken(const Paren& paren);

}  // namespace textio
}  // namespace dyck

#endif  // DYCKFIX_SRC_TEXTIO_BRACKET_TOKENIZER_H_
