#include "src/textio/bracket_tokenizer.h"

namespace dyck {
namespace textio {

TokenizedDocument TokenizeBrackets(std::string_view text,
                                   const ParenAlphabet& alphabet) {
  TokenizedDocument doc;
  for (int t = 0; t < alphabet.num_types(); ++t) {
    const auto rendered =
        alphabet.Render({Paren::Open(t), Paren::Close(t)});
    doc.type_names.push_back(rendered.ok() ? *rendered : "??");
  }
  for (int64_t i = 0; i < static_cast<int64_t>(text.size()); ++i) {
    const ParenSeq one = alphabet.ParseLenient(text.substr(i, 1));
    if (!one.empty()) {
      doc.seq.push_back(one[0]);
      doc.spans.push_back({i, i + 1});
    }
  }
  return doc;
}

std::string RenderBracketToken(const Paren& paren) {
  const auto rendered = ParenAlphabet::Default().Render({paren});
  return rendered.ok() ? *rendered : "?";
}

}  // namespace textio
}  // namespace dyck
