// Source-code bracket tokenizer: (), [], {} outside string/char literals
// and comments — the paper's "compilers attempt to correct syntax errors"
// motivation. Comment and literal syntax follows the C family.

#ifndef DYCKFIX_SRC_TEXTIO_SOURCE_TOKENIZER_H_
#define DYCKFIX_SRC_TEXTIO_SOURCE_TOKENIZER_H_

#include <string_view>

#include "src/textio/span_map.h"
#include "src/util/statusor.h"

namespace dyck {
namespace textio {

struct SourceTokenizerOptions {
  /// Recognize // line and /* block */ comments.
  bool skip_comments = true;
  /// Recognize "..." and '...' literals with backslash escapes.
  bool skip_literals = true;
};

/// Extracts the bracket structure. Type 0 = "()", 1 = "[]", 2 = "{}".
StatusOr<TokenizedDocument> TokenizeSource(
    std::string_view text, const SourceTokenizerOptions& options);

/// Renders a bracket token back to text.
std::string RenderSourceToken(const Paren& paren);

}  // namespace textio
}  // namespace dyck

#endif  // DYCKFIX_SRC_TEXTIO_SOURCE_TOKENIZER_H_
