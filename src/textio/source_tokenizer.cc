#include "src/textio/source_tokenizer.h"

namespace dyck {
namespace textio {

StatusOr<TokenizedDocument> TokenizeSource(
    std::string_view text, const SourceTokenizerOptions& options) {
  TokenizedDocument doc;
  doc.type_names = {"()", "[]", "{}"};
  const int64_t n = static_cast<int64_t>(text.size());
  int64_t i = 0;
  while (i < n) {
    const char c = text[i];
    if (options.skip_comments && c == '/' && i + 1 < n) {
      if (text[i + 1] == '/') {
        while (i < n && text[i] != '\n') ++i;
        continue;
      }
      if (text[i + 1] == '*') {
        const size_t end = text.find("*/", i + 2);
        i = end == std::string_view::npos ? n
                                          : static_cast<int64_t>(end) + 2;
        continue;
      }
    }
    if (options.skip_literals && (c == '"' || c == '\'')) {
      int64_t j = i + 1;
      while (j < n && text[j] != c) {
        j += (text[j] == '\\') ? 2 : 1;
      }
      i = std::min(j + 1, n);
      continue;
    }
    ParenType type = -1;
    bool open = false;
    switch (c) {
      case '(':
        type = 0;
        open = true;
        break;
      case ')':
        type = 0;
        break;
      case '[':
        type = 1;
        open = true;
        break;
      case ']':
        type = 1;
        break;
      case '{':
        type = 2;
        open = true;
        break;
      case '}':
        type = 2;
        break;
      default:
        break;
    }
    if (type >= 0) {
      doc.seq.push_back(Paren{type, open});
      doc.spans.push_back({i, i + 1});
    }
    ++i;
  }
  return doc;
}

std::string RenderSourceToken(const Paren& paren) {
  static constexpr const char* kOpen[] = {"(", "[", "{"};
  static constexpr const char* kClose[] = {")", "]", "}"};
  if (paren.type < 0 || paren.type > 2) return "?";
  return paren.is_open ? kOpen[paren.type] : kClose[paren.type];
}

}  // namespace textio
}  // namespace dyck
