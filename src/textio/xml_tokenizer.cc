#include "src/textio/xml_tokenizer.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace dyck {
namespace textio {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == ':' || c == '-' || c == '.';
}

bool IsHtmlVoidElement(std::string_view name) {
  static constexpr std::array<std::string_view, 14> kVoid = {
      "area", "base", "br",    "col",    "embed",  "hr",    "img",
      "input", "link", "meta", "param",  "source", "track", "wbr"};
  return std::find(kVoid.begin(), kVoid.end(), name) != kVoid.end();
}

int64_t SkipUntil(std::string_view text, int64_t from,
                  std::string_view terminator) {
  const size_t pos = text.find(terminator, from);
  if (pos == std::string_view::npos) return static_cast<int64_t>(text.size());
  return static_cast<int64_t>(pos + terminator.size());
}

}  // namespace

StatusOr<TokenizedDocument> TokenizeXml(std::string_view text,
                                        const XmlTokenizerOptions& options) {
  TokenizedDocument doc;
  TypeInterner interner;
  const int64_t n = static_cast<int64_t>(text.size());
  int64_t i = 0;
  while (i < n) {
    if (text[i] != '<') {
      ++i;
      continue;
    }
    const int64_t tag_begin = i;
    if (i + 1 >= n) break;
    const char next = text[i + 1];
    if (next == '!') {
      if (text.substr(i, 4) == "<!--") {
        i = SkipUntil(text, i + 4, "-->");
      } else if (text.substr(i, 9) == "<![CDATA[") {
        i = SkipUntil(text, i + 9, "]]>");
      } else {
        i = SkipUntil(text, i + 2, ">");  // <!DOCTYPE ...>
      }
      continue;
    }
    if (next == '?') {
      i = SkipUntil(text, i + 2, "?>");
      continue;
    }
    const bool closing = next == '/';
    int64_t j = i + 1 + (closing ? 1 : 0);
    if (j >= n || !IsNameStart(text[j])) {
      ++i;  // stray '<'; not a tag
      continue;
    }
    int64_t name_end = j;
    while (name_end < n && IsNameChar(text[name_end])) ++name_end;
    std::string name(text.substr(j, name_end - j));
    if (options.case_insensitive) {
      std::transform(name.begin(), name.end(), name.begin(), [](char c) {
        return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      });
    }
    // Find the end of the tag, skipping quoted attribute values.
    int64_t k = name_end;
    bool self_closing = false;
    while (k < n && text[k] != '>') {
      if (text[k] == '"' || text[k] == '\'') {
        const char quote = text[k];
        ++k;
        while (k < n && text[k] != quote) ++k;
      }
      ++k;
    }
    if (k < n && k > tag_begin && text[k - 1] == '/') self_closing = true;
    const int64_t tag_end = std::min(k + 1, n);
    i = tag_end;
    if (self_closing && !closing) continue;
    if (!closing && options.skip_html_void_elements &&
        IsHtmlVoidElement(name)) {
      continue;
    }
    const ParenType type = interner.Intern(name, &doc);
    doc.seq.push_back(closing ? Paren::Close(type) : Paren::Open(type));
    doc.spans.push_back({tag_begin, tag_end});
  }
  return doc;
}

std::string RenderXmlToken(const Paren& paren,
                           const std::vector<std::string>& type_names) {
  const std::string& name =
      (paren.type >= 0 &&
       paren.type < static_cast<ParenType>(type_names.size()))
          ? type_names[paren.type]
          : "unknown";
  return paren.is_open ? "<" + name + ">" : "</" + name + ">";
}

}  // namespace textio
}  // namespace dyck
