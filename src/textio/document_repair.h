// Mapping edit scripts back onto source documents.
//
// Distance/Repair operate on the projected ParenSeq; this module rewrites
// the original text: deleted tokens have their byte span removed,
// substituted tokens have it replaced with the rendered replacement token.

#ifndef DYCKFIX_SRC_TEXTIO_DOCUMENT_REPAIR_H_
#define DYCKFIX_SRC_TEXTIO_DOCUMENT_REPAIR_H_

#include <functional>
#include <string>
#include <string_view>

#include "src/core/dyck.h"
#include "src/textio/span_map.h"

namespace dyck {
namespace textio {

/// Renders a replacement token, given the document's type-name table.
using TokenRenderer = std::function<std::string(
    const Paren&, const std::vector<std::string>& type_names)>;

/// Applies `script` (produced against doc.seq) to the original text.
/// Script positions index doc.seq; spans must be non-overlapping and
/// ordered, which every tokenizer in this library guarantees.
StatusOr<std::string> ApplyScriptToDocument(std::string_view text,
                                            const TokenizedDocument& doc,
                                            const EditScript& script,
                                            const TokenRenderer& renderer);

/// End-to-end convenience: tokenize-with, repair, and rewrite.
/// Example:
///   auto fixed = RepairDocument(html, TokenizeXml(html, {}).value(),
///                               RenderXml, options);
struct DocumentRepairResult {
  int64_t distance = 0;
  std::string repaired_text;
  EditScript script;
  /// Stage-level observability of the underlying Repair() run.
  RepairTelemetry telemetry;
};

StatusOr<DocumentRepairResult> RepairDocument(std::string_view text,
                                              const TokenizedDocument& doc,
                                              const TokenRenderer& renderer,
                                              const Options& options);

}  // namespace textio
}  // namespace dyck

#endif  // DYCKFIX_SRC_TEXTIO_DOCUMENT_REPAIR_H_
