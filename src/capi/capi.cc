#include "include/dyckfix.h"

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/dyck.h"
#include "src/runtime/batch_engine.h"
#include "src/textio/bracket_tokenizer.h"
#include "src/textio/document_repair.h"

namespace {

dyck::Options MakeOptions(dyckfix_metric metric, dyckfix_style style) {
  dyck::Options options;
  options.metric = metric == DYCKFIX_METRIC_DELETIONS
                       ? dyck::Metric::kDeletionsOnly
                       : dyck::Metric::kDeletionsAndSubstitutions;
  options.style = style == DYCKFIX_STYLE_PRESERVE
                      ? dyck::RepairStyle::kPreserveContent
                      : dyck::RepairStyle::kMinimalEdits;
  return options;
}

int CodeFor(const dyck::Status& status) {
  if (status.ok()) return DYCKFIX_OK;
  if (status.IsInvalidArgument()) return DYCKFIX_ERROR_INVALID_ARGUMENT;
  if (status.IsBoundExceeded()) return DYCKFIX_ERROR_BOUND_EXCEEDED;
  return DYCKFIX_ERROR_INTERNAL;
}

/* Telemetry of the last successful repair on this thread; see
 * dyckfix_last_telemetry. Thread-local keeps the API thread-compatible. */
thread_local bool g_has_telemetry = false;
thread_local dyck::RepairTelemetry g_last_telemetry;

/* Shared per-document core of dyckfix_repair and dyckfix_repair_batch. */
int RepairToString(const char* text, const dyck::Options& options,
                   std::string* out_text, long long* out_distance) {
  const dyck::textio::TokenizedDocument doc =
      dyck::textio::TokenizeBrackets(text, dyck::ParenAlphabet::Default());
  const auto result = dyck::textio::RepairDocument(
      text, doc,
      [](const dyck::Paren& p, const std::vector<std::string>&) {
        return dyck::textio::RenderBracketToken(p);
      },
      options);
  if (!result.ok()) return CodeFor(result.status());
  *out_text = result->repaired_text;
  *out_distance = static_cast<long long>(result->distance);
  g_last_telemetry = result->telemetry;
  g_has_telemetry = true;
  return DYCKFIX_OK;
}

/* malloc'd NUL-terminated copy of `s`, or NULL on allocation failure. */
char* CopyToMalloc(const std::string& s) {
  char* copy = static_cast<char*>(std::malloc(s.size() + 1));
  if (copy == nullptr) return nullptr;
  std::memcpy(copy, s.data(), s.size());
  copy[s.size()] = '\0';
  return copy;
}

}  // namespace

extern "C" {

int dyckfix_is_balanced(const char* text) {
  if (text == nullptr) return 0;
  const dyck::textio::TokenizedDocument doc =
      dyck::textio::TokenizeBrackets(text, dyck::ParenAlphabet::Default());
  return dyck::IsBalanced(doc.seq) ? 1 : 0;
}

int dyckfix_distance(const char* text, dyckfix_metric metric,
                     long long* out_distance) {
  if (text == nullptr || out_distance == nullptr) {
    return DYCKFIX_ERROR_INVALID_ARGUMENT;
  }
  const dyck::textio::TokenizedDocument doc =
      dyck::textio::TokenizeBrackets(text, dyck::ParenAlphabet::Default());
  const auto result =
      dyck::Distance(doc.seq, MakeOptions(metric, DYCKFIX_STYLE_MINIMAL));
  if (!result.ok()) return CodeFor(result.status());
  *out_distance = static_cast<long long>(*result);
  return DYCKFIX_OK;
}

int dyckfix_repair(const char* text, dyckfix_metric metric,
                   dyckfix_style style, char** out_text,
                   long long* out_distance) {
  if (text == nullptr || out_text == nullptr) {
    return DYCKFIX_ERROR_INVALID_ARGUMENT;
  }
  std::string repaired;
  long long distance = 0;
  const int code =
      RepairToString(text, MakeOptions(metric, style), &repaired, &distance);
  if (code != DYCKFIX_OK) return code;
  char* copy = CopyToMalloc(repaired);
  if (copy == nullptr) return DYCKFIX_ERROR_INTERNAL;
  *out_text = copy;
  if (out_distance != nullptr) *out_distance = distance;
  return DYCKFIX_OK;
}

void dyckfix_string_free(char* text) { std::free(text); }

int dyckfix_last_telemetry(dyckfix_telemetry* out) {
  if (out == nullptr) return DYCKFIX_ERROR_INVALID_ARGUMENT;
  if (!g_has_telemetry) return DYCKFIX_ERROR_NO_TELEMETRY;
  const dyck::RepairTelemetry& t = g_last_telemetry;
  const auto stage = [&t](dyck::PipelineStage s) {
    return t.stage_seconds[static_cast<int>(s)];
  };
  out->normalize_seconds = stage(dyck::PipelineStage::kNormalize);
  out->profile_reduce_seconds = stage(dyck::PipelineStage::kProfileReduce);
  out->select_seconds = stage(dyck::PipelineStage::kSelect);
  out->solve_seconds = stage(dyck::PipelineStage::kSolve);
  out->materialize_seconds = stage(dyck::PipelineStage::kMaterialize);
  out->doubling_iterations = t.doubling_iterations;
  out->solve_bound = t.solve_bound;
  out->input_length = t.input_length;
  out->reduced_length = t.reduced_length;
  out->seq_copies = t.seq_copies;
  out->algorithm = static_cast<int>(t.chosen_algorithm);
  out->balanced_fast_path = t.balanced_fast_path ? 1 : 0;
  return DYCKFIX_OK;
}

int dyckfix_repair_batch(const char* const* texts, size_t count,
                         dyckfix_metric metric, dyckfix_style style,
                         int jobs, char*** out_texts, int** out_codes,
                         long long** out_distances) {
  if (out_texts == nullptr || out_codes == nullptr || jobs < 0 ||
      (texts == nullptr && count > 0)) {
    return DYCKFIX_ERROR_INVALID_ARGUMENT;
  }
  if (count == 0) {
    *out_texts = nullptr;
    *out_codes = nullptr;
    if (out_distances != nullptr) *out_distances = nullptr;
    return DYCKFIX_OK;
  }

  const dyck::Options options = MakeOptions(metric, style);
  std::vector<std::string> repaired(count);
  std::vector<int> codes(count, DYCKFIX_ERROR_INTERNAL);
  std::vector<long long> distances(count, -1);

  dyck::runtime::BatchRepairEngine engine({.jobs = jobs});
  engine.ForEach(count, [&](size_t i) {
    if (texts[i] == nullptr) {
      codes[i] = DYCKFIX_ERROR_INVALID_ARGUMENT;
      return;
    }
    long long distance = -1;
    codes[i] = RepairToString(texts[i], options, &repaired[i], &distance);
    if (codes[i] == DYCKFIX_OK) distances[i] = distance;
  });

  char** text_array =
      static_cast<char**>(std::calloc(count, sizeof(char*)));
  int* code_array = static_cast<int*>(std::malloc(count * sizeof(int)));
  long long* distance_array =
      out_distances == nullptr
          ? nullptr
          : static_cast<long long*>(
                std::malloc(count * sizeof(long long)));
  bool failed = text_array == nullptr || code_array == nullptr ||
                (out_distances != nullptr && distance_array == nullptr);
  for (size_t i = 0; !failed && i < count; ++i) {
    code_array[i] = codes[i];
    if (distance_array != nullptr) distance_array[i] = distances[i];
    if (codes[i] == DYCKFIX_OK) {
      text_array[i] = CopyToMalloc(repaired[i]);
      if (text_array[i] == nullptr) failed = true;
    }
  }
  if (failed) {
    dyckfix_batch_free(text_array, code_array, distance_array, count);
    return DYCKFIX_ERROR_INTERNAL;
  }
  *out_texts = text_array;
  *out_codes = code_array;
  if (out_distances != nullptr) *out_distances = distance_array;
  return DYCKFIX_OK;
}

void dyckfix_batch_free(char** texts, int* codes, long long* distances,
                        size_t count) {
  if (texts != nullptr) {
    for (size_t i = 0; i < count; ++i) std::free(texts[i]);
    std::free(texts);
  }
  std::free(codes);
  std::free(distances);
}

const char* dyckfix_version(void) { return "1.0.0"; }

}  // extern "C"
