#include "include/dyckfix.h"

#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/dyck.h"
#include "src/textio/bracket_tokenizer.h"
#include "src/textio/document_repair.h"

namespace {

dyck::Options MakeOptions(dyckfix_metric metric, dyckfix_style style) {
  dyck::Options options;
  options.metric = metric == DYCKFIX_METRIC_DELETIONS
                       ? dyck::Metric::kDeletionsOnly
                       : dyck::Metric::kDeletionsAndSubstitutions;
  options.style = style == DYCKFIX_STYLE_PRESERVE
                      ? dyck::RepairStyle::kPreserveContent
                      : dyck::RepairStyle::kMinimalEdits;
  return options;
}

int CodeFor(const dyck::Status& status) {
  if (status.ok()) return DYCKFIX_OK;
  if (status.IsInvalidArgument()) return DYCKFIX_ERROR_INVALID_ARGUMENT;
  if (status.IsBoundExceeded()) return DYCKFIX_ERROR_BOUND_EXCEEDED;
  return DYCKFIX_ERROR_INTERNAL;
}

}  // namespace

extern "C" {

int dyckfix_is_balanced(const char* text) {
  if (text == nullptr) return 0;
  const dyck::textio::TokenizedDocument doc =
      dyck::textio::TokenizeBrackets(text, dyck::ParenAlphabet::Default());
  return dyck::IsBalanced(doc.seq) ? 1 : 0;
}

int dyckfix_distance(const char* text, dyckfix_metric metric,
                     long long* out_distance) {
  if (text == nullptr || out_distance == nullptr) {
    return DYCKFIX_ERROR_INVALID_ARGUMENT;
  }
  const dyck::textio::TokenizedDocument doc =
      dyck::textio::TokenizeBrackets(text, dyck::ParenAlphabet::Default());
  const auto result =
      dyck::Distance(doc.seq, MakeOptions(metric, DYCKFIX_STYLE_MINIMAL));
  if (!result.ok()) return CodeFor(result.status());
  *out_distance = static_cast<long long>(*result);
  return DYCKFIX_OK;
}

int dyckfix_repair(const char* text, dyckfix_metric metric,
                   dyckfix_style style, char** out_text,
                   long long* out_distance) {
  if (text == nullptr || out_text == nullptr) {
    return DYCKFIX_ERROR_INVALID_ARGUMENT;
  }
  const dyck::textio::TokenizedDocument doc =
      dyck::textio::TokenizeBrackets(text, dyck::ParenAlphabet::Default());
  const auto result = dyck::textio::RepairDocument(
      text, doc,
      [](const dyck::Paren& p, const std::vector<std::string>&) {
        return dyck::textio::RenderBracketToken(p);
      },
      MakeOptions(metric, style));
  if (!result.ok()) return CodeFor(result.status());
  char* copy =
      static_cast<char*>(std::malloc(result->repaired_text.size() + 1));
  if (copy == nullptr) return DYCKFIX_ERROR_INTERNAL;
  std::memcpy(copy, result->repaired_text.data(),
              result->repaired_text.size());
  copy[result->repaired_text.size()] = '\0';
  *out_text = copy;
  if (out_distance != nullptr) {
    *out_distance = static_cast<long long>(result->distance);
  }
  return DYCKFIX_OK;
}

void dyckfix_string_free(char* text) { std::free(text); }

const char* dyckfix_version(void) { return "1.0.0"; }

}  // extern "C"
