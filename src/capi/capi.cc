#include "include/dyckfix.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <memory>
#include <mutex>

#include "src/core/context.h"
#include "src/core/doc.h"
#include "src/core/dyck.h"
#include "src/runtime/batch_engine.h"
#include "src/server/server.h"
#include "src/textio/bracket_tokenizer.h"
#include "src/textio/document_repair.h"

/* The context handle is a thin bag around the C++ RepairContext; explicit-
 * context entry points install it as the calling thread's ambient context
 * (RepairContextScope) so the whole repair stack — scratch, errors,
 * telemetry — routes to it with no further plumbing. */
struct dyckfix_context {
  dyck::RepairContext impl;
};

/* The doc handle wraps the C++ RepairDoc. Errors and telemetry route to
 * the doc's own RepairContext, so a doc behaves like an implicit
 * dyckfix_context scoped to its lifetime. */
struct dyckfix_doc {
  explicit dyckfix_doc(dyck::ParenSeq initial) : impl(std::move(initial)) {}
  dyck::RepairDoc impl;
};

/* The server handle bundles the C++ Server with one Session whose sink
 * appends to a mutex-guarded buffer; dyckfix_server_read_output drains
 * it. Members are ordered so the session (which references the server)
 * is destroyed first. */
struct dyckfix_server {
  explicit dyckfix_server(const dyck::server::ServerOptions& options)
      : impl(options),
        session(impl.OpenSession([this](std::string_view bytes) {
          std::lock_guard<std::mutex> lock(output_mu);
          output.append(bytes.data(), bytes.size());
        })) {}
  dyck::server::Server impl;
  std::mutex output_mu;
  std::string output;
  std::unique_ptr<dyck::server::Session> session;
};

namespace {

dyck::Options MakeOptions(dyckfix_metric metric, dyckfix_style style) {
  dyck::Options options;
  options.metric = metric == DYCKFIX_METRIC_DELETIONS
                       ? dyck::Metric::kDeletionsOnly
                       : dyck::Metric::kDeletionsAndSubstitutions;
  options.style = style == DYCKFIX_STYLE_PRESERVE
                      ? dyck::RepairStyle::kPreserveContent
                      : dyck::RepairStyle::kMinimalEdits;
  return options;
}

int CodeFor(const dyck::Status& status) {
  if (status.ok()) return DYCKFIX_OK;
  if (status.IsInvalidArgument()) return DYCKFIX_ERROR_INVALID_ARGUMENT;
  if (status.IsBoundExceeded()) return DYCKFIX_ERROR_BOUND_EXCEEDED;
  if (status.IsDeadlineExceeded()) return DYCKFIX_ERROR_DEADLINE_EXCEEDED;
  if (status.IsCancelled()) return DYCKFIX_ERROR_CANCELLED;
  if (status.IsResourceExhausted()) return DYCKFIX_ERROR_RESOURCE_EXHAUSTED;
  return DYCKFIX_ERROR_INTERNAL;
}

/* The per-call mutable state (last error, telemetry snapshot) lives on
 * the ambient RepairContext: the innermost installed one (explicit-
 * context calls) or the calling thread's lazily-created default. One
 * accessor instead of three thread_local globals. */
dyck::RepairContext& Ctx() { return dyck::RepairContext::CurrentThread(); }

int Fail(int code, std::string message) {
  Ctx().last_error() = std::move(message);
  return code;
}

int FailStatus(const dyck::Status& status) {
  return Fail(CodeFor(status), status.ToString());
}

/* Validates a dyckfix_options and converts it to dyck::Options. The C
 * surface uses 0 = unlimited for the numeric knobs (the zero-initialized
 * default); the C++ Options use -1. Returns DYCKFIX_OK or
 * DYCKFIX_ERROR_INVALID_ARGUMENT with a specific last_error message. */
int ConvertOptions(const dyckfix_options& opts, dyck::Options* out) {
  if (opts.metric != DYCKFIX_METRIC_DELETIONS &&
      opts.metric != DYCKFIX_METRIC_SUBSTITUTIONS) {
    return Fail(DYCKFIX_ERROR_INVALID_ARGUMENT,
                "unknown metric " + std::to_string(opts.metric));
  }
  if (opts.style != DYCKFIX_STYLE_MINIMAL &&
      opts.style != DYCKFIX_STYLE_PRESERVE) {
    return Fail(DYCKFIX_ERROR_INVALID_ARGUMENT,
                "unknown style " + std::to_string(opts.style));
  }
  if (opts.degrade != DYCKFIX_DEGRADE_FAIL &&
      opts.degrade != DYCKFIX_DEGRADE_GREEDY &&
      opts.degrade != DYCKFIX_DEGRADE_APPROX) {
    return Fail(DYCKFIX_ERROR_INVALID_ARGUMENT,
                "unknown degrade mode " + std::to_string(opts.degrade));
  }
  if (opts.max_distance < 0) {
    return Fail(DYCKFIX_ERROR_INVALID_ARGUMENT,
                "max_distance must be >= 0 (0 = unlimited), got " +
                    std::to_string(opts.max_distance));
  }
  if (opts.timeout_ms < 0) {
    return Fail(DYCKFIX_ERROR_INVALID_ARGUMENT,
                "timeout_ms must be >= 0 (0 = unlimited), got " +
                    std::to_string(opts.timeout_ms));
  }
  if (opts.max_work_steps < 0) {
    return Fail(DYCKFIX_ERROR_INVALID_ARGUMENT,
                "max_work_steps must be >= 0 (0 = unlimited), got " +
                    std::to_string(opts.max_work_steps));
  }
  if (opts.max_approx_factor != 0 && opts.max_approx_factor < 1.0) {
    return Fail(DYCKFIX_ERROR_INVALID_ARGUMENT,
                "max_approx_factor must be 0 (exact) or >= 1.0, got " +
                    std::to_string(opts.max_approx_factor));
  }
  *out = MakeOptions(static_cast<dyckfix_metric>(opts.metric),
                     static_cast<dyckfix_style>(opts.style));
  out->max_distance = opts.max_distance == 0 ? -1 : opts.max_distance;
  out->timeout_ms = opts.timeout_ms == 0 ? -1 : opts.timeout_ms;
  out->max_work_steps =
      opts.max_work_steps == 0 ? -1 : opts.max_work_steps;
  out->on_budget_exceeded = opts.degrade == DYCKFIX_DEGRADE_GREEDY
                                ? dyck::DegradePolicy::kGreedy
                            : opts.degrade == DYCKFIX_DEGRADE_APPROX
                                ? dyck::DegradePolicy::kApproximate
                                : dyck::DegradePolicy::kFail;
  /* 0 is the zero-initialized "exact answers only" default, same as 1.0. */
  out->max_approximation_factor =
      opts.max_approx_factor == 0 ? 1.0 : opts.max_approx_factor;
  /* Algorithm-family names map to the enum (byte-identical to the
   * pre-registry forced paths); everything else is treated as a solver
   * registry name and validated by the pipeline, whose "unknown solver"
   * InvalidArgument surfaces verbatim through dyckfix_last_error. */
  if (opts.algorithm != nullptr && opts.algorithm[0] != '\0') {
    const std::string name = opts.algorithm;
    if (name == "fpt") {
      out->algorithm = dyck::Algorithm::kFpt;
    } else if (name == "cubic") {
      out->algorithm = dyck::Algorithm::kCubic;
    } else if (name == "branching") {
      out->algorithm = dyck::Algorithm::kBranching;
    } else if (name == "banded") {
      out->algorithm = dyck::Algorithm::kBanded;
    } else if (name == "greedy") {
      out->algorithm = dyck::Algorithm::kGreedy;
    } else if (name == "approx") {
      out->algorithm = dyck::Algorithm::kApprox;
    } else if (name != "auto") {
      out->solver = name;
    }
  }
  return DYCKFIX_OK;
}

/* Shared per-document core of dyckfix_repair and the batch entry points.
 * `out_degraded` (optional) receives 1 when the greedy fallback answered. */
int RepairToString(const char* text, const dyck::Options& options,
                   std::string* out_text, long long* out_distance,
                   int* out_degraded = nullptr) {
  const dyck::textio::TokenizedDocument doc =
      dyck::textio::TokenizeBrackets(text, dyck::ParenAlphabet::Default());
  const auto result = dyck::textio::RepairDocument(
      text, doc,
      [](const dyck::Paren& p, const std::vector<std::string>&) {
        return dyck::textio::RenderBracketToken(p);
      },
      options);
  if (!result.ok()) return FailStatus(result.status());
  *out_text = result->repaired_text;
  *out_distance = static_cast<long long>(result->distance);
  if (out_degraded != nullptr) {
    *out_degraded = result->telemetry.degraded ? 1 : 0;
  }
  Ctx().set_last_telemetry(result->telemetry);
  return DYCKFIX_OK;
}

/* Converts a C++ telemetry record to the C struct. */
void FillTelemetry(const dyck::RepairTelemetry& t, dyckfix_telemetry* out) {
  const auto stage = [&t](dyck::PipelineStage s) {
    return t.stage_seconds[static_cast<int>(s)];
  };
  out->normalize_seconds = stage(dyck::PipelineStage::kNormalize);
  out->profile_reduce_seconds = stage(dyck::PipelineStage::kProfileReduce);
  out->select_seconds = stage(dyck::PipelineStage::kSelect);
  out->solve_seconds = stage(dyck::PipelineStage::kSolve);
  out->materialize_seconds = stage(dyck::PipelineStage::kMaterialize);
  out->doubling_iterations = t.doubling_iterations;
  out->solve_bound = t.solve_bound;
  out->input_length = t.input_length;
  out->reduced_length = t.reduced_length;
  out->seq_copies = t.seq_copies;
  out->algorithm = static_cast<int>(t.chosen_algorithm);
  out->balanced_fast_path = t.balanced_fast_path ? 1 : 0;
  out->degraded = t.degraded ? 1 : 0;
  out->budget_steps = t.budget_steps;
  out->arena_high_water_bytes = t.arena_high_water_bytes;
  out->arena_resets = t.arena_resets;
  out->heap_allocs = t.heap_allocs;
  std::snprintf(out->solver, sizeof(out->solver), "%s",
                t.solver_name.c_str());
  out->certified_factor = t.certified_factor;
  out->exact_lower_bound = t.exact_lower_bound;
  out->chunks_reused = t.chunks_reused;
  out->chunks_recomputed = t.chunks_recomputed;
  out->incremental = t.incremental ? 1 : 0;
  std::snprintf(out->simd_backend, sizeof(out->simd_backend), "%s",
                t.simd_backend.c_str());
}

/* Bracket tokens of `text`; NULL and "" both mean an empty sequence. */
dyck::ParenSeq TokenizeToSeq(const char* text) {
  if (text == nullptr || text[0] == '\0') return {};
  return dyck::textio::TokenizeBrackets(text, dyck::ParenAlphabet::Default())
      .seq;
}

/* Shared body of dyckfix_last_solver / dyckfix_context_last_solver. */
const char* LastSolverOf(const dyck::RepairContext& ctx) {
  if (!ctx.has_last_telemetry()) return "";
  return ctx.last_telemetry().solver_name.c_str();
}

/* malloc'd NUL-terminated copy of `s`, or NULL on allocation failure. */
char* CopyToMalloc(const std::string& s) {
  char* copy = static_cast<char*>(std::malloc(s.size() + 1));
  if (copy == nullptr) return nullptr;
  std::memcpy(copy, s.data(), s.size());
  copy[s.size()] = '\0';
  return copy;
}

/* Shared core of dyckfix_repair_batch and dyckfix_repair_batch_opts. */
int RepairBatchCore(const char* const* texts, size_t count,
                    const dyck::Options& options, int jobs,
                    long long batch_timeout_ms, char*** out_texts,
                    int** out_codes, long long** out_distances,
                    int** out_degraded) {
  if (out_texts == nullptr || out_codes == nullptr || jobs < 0 ||
      (texts == nullptr && count > 0)) {
    return Fail(DYCKFIX_ERROR_INVALID_ARGUMENT,
                "texts/out_texts/out_codes must be non-NULL and jobs >= 0");
  }
  if (batch_timeout_ms < 0) {
    return Fail(DYCKFIX_ERROR_INVALID_ARGUMENT,
                "batch_timeout_ms must be >= 0 (0 = unlimited), got " +
                    std::to_string(batch_timeout_ms));
  }
  if (count == 0) {
    *out_texts = nullptr;
    *out_codes = nullptr;
    if (out_distances != nullptr) *out_distances = nullptr;
    if (out_degraded != nullptr) *out_degraded = nullptr;
    return DYCKFIX_OK;
  }

  std::vector<std::string> repaired(count);
  std::vector<int> codes(count, DYCKFIX_ERROR_CANCELLED);
  std::vector<long long> distances(count, -1);
  std::vector<int> degraded(count, 0);

  dyck::runtime::BatchOptions batch_options;
  batch_options.jobs = jobs;
  batch_options.batch_timeout_ms =
      batch_timeout_ms == 0 ? -1 : batch_timeout_ms;
  dyck::runtime::BatchRepairEngine engine(batch_options);

  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (batch_timeout_ms > 0) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(batch_timeout_ms);
  }
  const dyck::BudgetLimits limits{options.timeout_ms,
                                  options.max_work_steps,
                                  options.max_memory_bytes};
  const bool budgeted = !limits.Unlimited() || deadline.has_value() ||
                        dyck::BudgetFaultInjectionArmed();
  dyck::CancelToken cancel;
  engine.ForEachWithDeadline(count, deadline, &cancel, [&](size_t i) {
    if (texts[i] == nullptr) {
      codes[i] = DYCKFIX_ERROR_INVALID_ARGUMENT;
      return;
    }
    long long distance = -1;
    if (budgeted) {
      // A document dequeued after the batch deadline is equivalent to one
      // dropped from the queue: the submitter's cancel may not have landed
      // yet, so check the deadline directly rather than racing the token.
      if (deadline.has_value() &&
          std::chrono::steady_clock::now() > *deadline) {
        codes[i] = DYCKFIX_ERROR_CANCELLED;
        return;
      }
      // Per-document budget merging the per-doc limits with the batch
      // deadline and cancellation; the dispatch checkpoint short-circuits
      // documents that reach a worker after the batch expired.
      dyck::Budget budget(limits, &cancel);
      if (deadline.has_value()) budget.CapDeadline(*deadline);
      const dyck::Status dispatch = budget.CheckNow("runtime.batch_dispatch");
      if (!dispatch.ok()) {
        codes[i] = CodeFor(dispatch);
        return;
      }
      dyck::BudgetScope scope(&budget);
      codes[i] = RepairToString(texts[i], options, &repaired[i], &distance,
                                &degraded[i]);
    } else {
      codes[i] = RepairToString(texts[i], options, &repaired[i], &distance,
                                &degraded[i]);
    }
    if (codes[i] == DYCKFIX_OK) distances[i] = distance;
  });

  char** text_array =
      static_cast<char**>(std::calloc(count, sizeof(char*)));
  int* code_array = static_cast<int*>(std::malloc(count * sizeof(int)));
  long long* distance_array =
      out_distances == nullptr
          ? nullptr
          : static_cast<long long*>(
                std::malloc(count * sizeof(long long)));
  int* degraded_array =
      out_degraded == nullptr
          ? nullptr
          : static_cast<int*>(std::malloc(count * sizeof(int)));
  bool failed = text_array == nullptr || code_array == nullptr ||
                (out_distances != nullptr && distance_array == nullptr) ||
                (out_degraded != nullptr && degraded_array == nullptr);
  for (size_t i = 0; !failed && i < count; ++i) {
    code_array[i] = codes[i];
    if (distance_array != nullptr) distance_array[i] = distances[i];
    if (degraded_array != nullptr) degraded_array[i] = degraded[i];
    if (codes[i] == DYCKFIX_OK) {
      text_array[i] = CopyToMalloc(repaired[i]);
      if (text_array[i] == nullptr) failed = true;
    }
  }
  if (failed) {
    dyckfix_batch_free(text_array, code_array, distance_array, count);
    std::free(degraded_array);
    return Fail(DYCKFIX_ERROR_INTERNAL, "out of memory");
  }
  *out_texts = text_array;
  *out_codes = code_array;
  if (out_distances != nullptr) *out_distances = distance_array;
  if (out_degraded != nullptr) *out_degraded = degraded_array;
  return DYCKFIX_OK;
}

}  // namespace

extern "C" {

int dyckfix_is_balanced(const char* text) {
  if (text == nullptr) return 0;
  const dyck::textio::TokenizedDocument doc =
      dyck::textio::TokenizeBrackets(text, dyck::ParenAlphabet::Default());
  return dyck::IsBalanced(doc.seq) ? 1 : 0;
}

int dyckfix_distance(const char* text, dyckfix_metric metric,
                     long long* out_distance) {
  if (text == nullptr || out_distance == nullptr) {
    return DYCKFIX_ERROR_INVALID_ARGUMENT;
  }
  const dyck::textio::TokenizedDocument doc =
      dyck::textio::TokenizeBrackets(text, dyck::ParenAlphabet::Default());
  const auto result =
      dyck::Distance(doc.seq, MakeOptions(metric, DYCKFIX_STYLE_MINIMAL));
  if (!result.ok()) return CodeFor(result.status());
  *out_distance = static_cast<long long>(*result);
  return DYCKFIX_OK;
}

int dyckfix_repair(const char* text, dyckfix_metric metric,
                   dyckfix_style style, char** out_text,
                   long long* out_distance) {
  Ctx().last_error().clear();
  if (text == nullptr || out_text == nullptr) {
    return Fail(DYCKFIX_ERROR_INVALID_ARGUMENT,
                "text and out_text must be non-NULL");
  }
  std::string repaired;
  long long distance = 0;
  const int code =
      RepairToString(text, MakeOptions(metric, style), &repaired, &distance);
  if (code != DYCKFIX_OK) return code;
  char* copy = CopyToMalloc(repaired);
  if (copy == nullptr) return Fail(DYCKFIX_ERROR_INTERNAL, "out of memory");
  *out_text = copy;
  if (out_distance != nullptr) *out_distance = distance;
  return DYCKFIX_OK;
}

void dyckfix_string_free(char* text) { std::free(text); }

void dyckfix_options_init(dyckfix_options* opts) {
  if (opts == nullptr) return;
  opts->metric = DYCKFIX_METRIC_SUBSTITUTIONS;
  opts->style = DYCKFIX_STYLE_MINIMAL;
  opts->max_distance = 0;
  opts->timeout_ms = 0;
  opts->max_work_steps = 0;
  opts->degrade = DYCKFIX_DEGRADE_FAIL;
  opts->algorithm = nullptr;
  opts->max_approx_factor = 0; /* = exact answers only */
}

int dyckfix_repair_opts(const char* text, const dyckfix_options* opts,
                        char** out_text, long long* out_distance,
                        int* out_degraded) {
  Ctx().last_error().clear();
  if (text == nullptr || opts == nullptr || out_text == nullptr) {
    return Fail(DYCKFIX_ERROR_INVALID_ARGUMENT,
                "text, opts, and out_text must be non-NULL");
  }
  dyck::Options options;
  const int validation = ConvertOptions(*opts, &options);
  if (validation != DYCKFIX_OK) return validation;
  std::string repaired;
  long long distance = 0;
  int degraded = 0;
  const int code =
      RepairToString(text, options, &repaired, &distance, &degraded);
  if (code != DYCKFIX_OK) return code;
  char* copy = CopyToMalloc(repaired);
  if (copy == nullptr) return Fail(DYCKFIX_ERROR_INTERNAL, "out of memory");
  *out_text = copy;
  if (out_distance != nullptr) *out_distance = distance;
  if (out_degraded != nullptr) *out_degraded = degraded;
  return DYCKFIX_OK;
}

const char* dyckfix_last_error(void) { return Ctx().last_error().c_str(); }

int dyckfix_last_telemetry(dyckfix_telemetry* out) {
  if (out == nullptr) return DYCKFIX_ERROR_INVALID_ARGUMENT;
  if (!Ctx().has_last_telemetry()) return DYCKFIX_ERROR_NO_TELEMETRY;
  FillTelemetry(Ctx().last_telemetry(), out);
  return DYCKFIX_OK;
}

const char* dyckfix_last_solver(void) { return LastSolverOf(Ctx()); }

dyckfix_context* dyckfix_context_create(void) {
  return new (std::nothrow) dyckfix_context();
}

void dyckfix_context_free(dyckfix_context* ctx) { delete ctx; }

int dyckfix_context_repair(dyckfix_context* ctx, const char* text,
                           const dyckfix_options* opts, char** out_text,
                           long long* out_distance, int* out_degraded) {
  if (ctx == nullptr) return DYCKFIX_ERROR_INVALID_ARGUMENT;
  /* Route the whole call — scratch memory, errors, telemetry — to the
   * caller's context for its duration. */
  dyck::RepairContextScope scope(&ctx->impl);
  dyckfix_options defaults;
  if (opts == nullptr) {
    dyckfix_options_init(&defaults);
    opts = &defaults;
  }
  return dyckfix_repair_opts(text, opts, out_text, out_distance,
                             out_degraded);
}

const char* dyckfix_context_last_error(const dyckfix_context* ctx) {
  if (ctx == nullptr) return "";
  return ctx->impl.last_error().c_str();
}

int dyckfix_context_telemetry(const dyckfix_context* ctx,
                              dyckfix_telemetry* out) {
  if (ctx == nullptr || out == nullptr) {
    return DYCKFIX_ERROR_INVALID_ARGUMENT;
  }
  if (!ctx->impl.has_last_telemetry()) return DYCKFIX_ERROR_NO_TELEMETRY;
  FillTelemetry(ctx->impl.last_telemetry(), out);
  return DYCKFIX_OK;
}

const char* dyckfix_context_last_solver(const dyckfix_context* ctx) {
  if (ctx == nullptr) return "";
  return LastSolverOf(ctx->impl);
}

int dyckfix_repair_batch(const char* const* texts, size_t count,
                         dyckfix_metric metric, dyckfix_style style,
                         int jobs, char*** out_texts, int** out_codes,
                         long long** out_distances) {
  Ctx().last_error().clear();
  return RepairBatchCore(texts, count, MakeOptions(metric, style), jobs,
                         /*batch_timeout_ms=*/0, out_texts, out_codes,
                         out_distances, /*out_degraded=*/nullptr);
}

int dyckfix_repair_batch_opts(const char* const* texts, size_t count,
                              const dyckfix_options* opts, int jobs,
                              long long batch_timeout_ms, char*** out_texts,
                              int** out_codes, long long** out_distances,
                              int** out_degraded) {
  Ctx().last_error().clear();
  if (opts == nullptr) {
    return Fail(DYCKFIX_ERROR_INVALID_ARGUMENT, "opts must be non-NULL");
  }
  dyck::Options options;
  const int validation = ConvertOptions(*opts, &options);
  if (validation != DYCKFIX_OK) return validation;
  return RepairBatchCore(texts, count, options, jobs, batch_timeout_ms,
                         out_texts, out_codes, out_distances, out_degraded);
}

void dyckfix_batch_free(char** texts, int* codes, long long* distances,
                        size_t count) {
  if (texts != nullptr) {
    for (size_t i = 0; i < count; ++i) std::free(texts[i]);
    std::free(texts);
  }
  std::free(codes);
  std::free(distances);
}

dyckfix_doc* dyckfix_doc_create(const char* text) {
  return new (std::nothrow) dyckfix_doc(TokenizeToSeq(text));
}

void dyckfix_doc_free(dyckfix_doc* doc) { delete doc; }

long long dyckfix_doc_size(const dyckfix_doc* doc) {
  if (doc == nullptr) return -1;
  return static_cast<long long>(doc->impl.size());
}

int dyckfix_doc_splice(dyckfix_doc* doc, long long pos, long long erase_len,
                       const char* insert_text) {
  if (doc == nullptr) return DYCKFIX_ERROR_INVALID_ARGUMENT;
  /* Route validation errors to the doc's own context. */
  dyck::RepairContextScope scope(&doc->impl.context());
  Ctx().last_error().clear();
  const long long size = static_cast<long long>(doc->impl.size());
  if (pos < 0 || pos > size || erase_len < 0 || erase_len > size - pos) {
    return Fail(DYCKFIX_ERROR_INVALID_ARGUMENT,
                "splice range [" + std::to_string(pos) + ", " +
                    std::to_string(pos + erase_len) +
                    ") out of bounds for doc of " + std::to_string(size) +
                    " tokens");
  }
  const dyck::ParenSeq insert = TokenizeToSeq(insert_text);
  doc->impl.Splice(pos, erase_len, insert);
  return DYCKFIX_OK;
}

int dyckfix_doc_repair(dyckfix_doc* doc, const dyckfix_options* opts,
                       char** out_text, long long* out_distance,
                       int* out_degraded) {
  if (doc == nullptr) return DYCKFIX_ERROR_INVALID_ARGUMENT;
  dyck::RepairContextScope scope(&doc->impl.context());
  Ctx().last_error().clear();
  if (out_text == nullptr) {
    return Fail(DYCKFIX_ERROR_INVALID_ARGUMENT, "out_text must be non-NULL");
  }
  dyckfix_options defaults;
  if (opts == nullptr) {
    dyckfix_options_init(&defaults);
    opts = &defaults;
  }
  dyck::Options options;
  const int validation = ConvertOptions(*opts, &options);
  if (validation != DYCKFIX_OK) return validation;
  dyck::RepairResult result;
  const dyck::Status status = doc->impl.RepairInto(options, &result);
  if (!status.ok()) return FailStatus(status);
  std::string rendered;
  rendered.reserve(result.repaired.size());
  for (const dyck::Paren& p : result.repaired) {
    rendered += dyck::textio::RenderBracketToken(p);
  }
  char* copy = CopyToMalloc(rendered);
  if (copy == nullptr) return Fail(DYCKFIX_ERROR_INTERNAL, "out of memory");
  *out_text = copy;
  if (out_distance != nullptr) {
    *out_distance = static_cast<long long>(result.distance);
  }
  if (out_degraded != nullptr) {
    *out_degraded = result.telemetry.degraded ? 1 : 0;
  }
  doc->impl.context().set_last_telemetry(result.telemetry);
  return DYCKFIX_OK;
}

int dyckfix_doc_telemetry(const dyckfix_doc* doc, dyckfix_telemetry* out) {
  if (doc == nullptr || out == nullptr) {
    return DYCKFIX_ERROR_INVALID_ARGUMENT;
  }
  if (!doc->impl.context().has_last_telemetry()) {
    return DYCKFIX_ERROR_NO_TELEMETRY;
  }
  FillTelemetry(doc->impl.context().last_telemetry(), out);
  return DYCKFIX_OK;
}

const char* dyckfix_doc_last_error(const dyckfix_doc* doc) {
  if (doc == nullptr) return "";
  return doc->impl.context().last_error().c_str();
}

void dyckfix_server_options_init(dyckfix_server_options* opts) {
  if (opts == nullptr) return;
  opts->workers = 0;
  opts->max_queue_depth = 64;
  opts->max_doc_bytes = 1 << 20;
  opts->default_timeout_ms = -1;
}

dyckfix_server* dyckfix_server_create(const dyckfix_server_options* opts) {
  dyck::server::ServerOptions options;
  if (opts != nullptr) {
    options.workers = opts->workers > 0 ? opts->workers : 0;
    if (opts->max_queue_depth > 0) {
      options.max_queue_depth = opts->max_queue_depth;
    }
    if (opts->max_doc_bytes > 0) options.max_doc_bytes = opts->max_doc_bytes;
    options.default_timeout_ms = opts->default_timeout_ms;
  }
  dyckfix_server* server = new (std::nothrow) dyckfix_server(options);
  return server;
}

void dyckfix_server_free(dyckfix_server* server) { delete server; }

int dyckfix_server_feed(dyckfix_server* server, const char* bytes,
                        size_t len) {
  if (server == nullptr || (bytes == nullptr && len > 0)) return -1;
  return server->session->Feed(std::string_view(bytes, len)) ? 1 : 0;
}

void dyckfix_server_drain(dyckfix_server* server) {
  if (server == nullptr) return;
  server->impl.Drain();
}

char* dyckfix_server_read_output(dyckfix_server* server, size_t* out_len) {
  if (out_len != nullptr) *out_len = 0;
  if (server == nullptr) return nullptr;
  std::string taken;
  {
    std::lock_guard<std::mutex> lock(server->output_mu);
    taken.swap(server->output);
  }
  if (taken.empty()) return nullptr;
  char* copy = CopyToMalloc(taken);
  if (copy != nullptr && out_len != nullptr) *out_len = taken.size();
  return copy;
}

int dyckfix_server_get_stats(const dyckfix_server* server,
                             dyckfix_server_stats* out) {
  if (server == nullptr || out == nullptr) {
    return DYCKFIX_ERROR_INVALID_ARGUMENT;
  }
  const dyck::ServerStats stats = server->impl.Stats();
  out->requests_received = stats.requests_received;
  out->admitted = stats.admitted;
  out->served_ok = stats.served_ok;
  out->shed_overloaded = stats.shed_overloaded;
  out->protocol_errors = stats.protocol_errors;
  out->faulted = stats.faulted;
  out->cancelled = stats.cancelled;
  out->degraded_pressure = stats.degraded_pressure;
  out->queue_depth_high_water = stats.queue_depth_high_water;
  out->bytes_in = stats.bytes_in;
  out->bytes_out = stats.bytes_out;
  return DYCKFIX_OK;
}

const char* dyckfix_version(void) { return "1.0.0"; }

}  // extern "C"
