// Registry adapters for the paper's FPT algorithms (Theorems 26 / 40).
//
// Three entries share one implementation:
//   "fpt"              — the forced-selection umbrella (Algorithm::kFpt):
//                        both metrics, never picked by the planner.
//   "fpt-deletion"     — deletion metric only, planner candidate with the
//                        Theorem-26 cost model.
//   "fpt-substitution" — substitution metric only, planner candidate with
//                        the Theorem-40 cost model.
// Splitting the planner entries per metric lets each carry its own
// calibrated constants (the substitution solver's poly(d) is far steeper).

#include <memory>
#include <utility>

#include "src/core/context.h"
#include "src/core/solver.h"
#include "src/fpt/deletion.h"
#include "src/fpt/substitution.h"
#include "src/util/logging.h"

namespace dyck {

namespace {

// Cost models calibrated against the committed crossover grid
// (bench_crossover -> BENCH_crossover.json; methodology in DESIGN.md
// §5.10). The linear term is the O(n) preprocessing; the n*d^3 term is an
// empirical fit of the doubling driver's memo + reconstruction work over
// the measured (n, d) grid — not the paper's worst-case exponent, which
// would wildly overpredict at practical d.
constexpr double kDeletionPerSymbol = 30e-9;
constexpr double kDeletionPerSymbolD3 = 1.0e-9;
constexpr double kSubstitutionPerSymbol = 300e-9;
constexpr double kSubstitutionPerSymbolD3 = 2.5e-9;

double PredictDeletion(int64_t n, int64_t d_hint) {
  const double nd = static_cast<double>(n);
  const double dd = static_cast<double>(d_hint);
  return kDeletionPerSymbol * nd + kDeletionPerSymbolD3 * nd * dd * dd * dd;
}

double PredictSubstitution(int64_t n, int64_t d_hint) {
  const double nd = static_cast<double>(n);
  const double dd = static_cast<double>(d_hint);
  return kSubstitutionPerSymbol * nd +
         kSubstitutionPerSymbolD3 * nd * dd * dd * dd;
}

// The pipeline's former kFpt arm, verbatim: doubling driver over bounded
// Repair probes, borrowing the precomputed reduction and the context's
// scratch when available (zero-copy), reducing internally otherwise (the
// Distance() path and direct Solve calls without a pipeline).
Status SolveFpt(const SolveRequest& request, RepairContext& ctx,
                RepairTelemetry* telemetry, SolverResult* out) {
  StatusOr<SolverResult> result = [&]() -> StatusOr<SolverResult> {
    if (request.use_substitutions) {
      SubstitutionSolver solver =
          request.reduced != nullptr
              ? SubstitutionSolver(request.reduced, &ctx)
              : SubstitutionSolver(request.seq);
      auto repaired = solver_internal::DoublingSolve(
          request.doubling_cap, request.max_distance, telemetry,
          [&](int32_t d) -> StatusOr<SolverResult> {
            DYCK_ASSIGN_OR_RETURN(FptResult r, solver.Repair(d));
            SolverResult s;
            s.distance = r.distance;
            s.script = std::move(r.script);
            return s;
          });
      telemetry->subproblems = solver.last_subproblem_count();
      return repaired;
    }
    DeletionSolver solver = request.reduced != nullptr
                                ? DeletionSolver(request.reduced, &ctx)
                                : DeletionSolver(request.seq);
    auto repaired = solver_internal::DoublingSolve(
        request.doubling_cap, request.max_distance, telemetry,
        [&](int32_t d) -> StatusOr<SolverResult> {
          DYCK_ASSIGN_OR_RETURN(FptResult r, solver.Repair(d));
          SolverResult s;
          s.distance = r.distance;
          s.script = std::move(r.script);
          return s;
        });
    telemetry->subproblems = solver.last_subproblem_count();
    return repaired;
  }();
  if (!result.ok()) return result.status();
  *out = std::move(result).value();
  return Status::OK();
}

StatusOr<int64_t> FptDistance(const SolveRequest& request) {
  if (request.use_substitutions) {
    SubstitutionSolver solver(request.seq);
    return solver_internal::DoublingDistance(
        request.doubling_cap, request.max_distance,
        [&](int32_t d) { return solver.Distance(d); });
  }
  DeletionSolver solver(request.seq);
  return solver_internal::DoublingDistance(
      request.doubling_cap, request.max_distance,
      [&](int32_t d) { return solver.Distance(d); });
}

class FptUmbrellaSolver final : public Solver {
 public:
  const char* name() const override { return "fpt"; }
  const SolverCaps& caps() const override {
    static const SolverCaps caps{/*deletions=*/true, /*substitutions=*/true,
                                 /*exact=*/true, /*needs_reduced=*/true,
                                 /*supports_doubling=*/true,
                                 /*planner_candidate=*/false,
                                 Algorithm::kFpt};
    return caps;
  }
  double PredictCost(int64_t n, int64_t d_hint) const override {
    // Metric-agnostic, so conservatively the steeper of the two models.
    return PredictSubstitution(n, d_hint);
  }
  Status Solve(const SolveRequest& request, RepairContext& ctx,
               RepairTelemetry* telemetry, SolverResult* out) const override {
    return SolveFpt(request, ctx, telemetry, out);
  }
  StatusOr<int64_t> SolveDistance(const SolveRequest& request) const override {
    return FptDistance(request);
  }
};

class FptDeletionSolver final : public Solver {
 public:
  const char* name() const override { return "fpt-deletion"; }
  const SolverCaps& caps() const override {
    static const SolverCaps caps{/*deletions=*/true, /*substitutions=*/false,
                                 /*exact=*/true, /*needs_reduced=*/true,
                                 /*supports_doubling=*/true,
                                 /*planner_candidate=*/true, Algorithm::kFpt};
    return caps;
  }
  double PredictCost(int64_t n, int64_t d_hint) const override {
    return PredictDeletion(n, d_hint);
  }
  Status Solve(const SolveRequest& request, RepairContext& ctx,
               RepairTelemetry* telemetry, SolverResult* out) const override {
    return SolveFpt(request, ctx, telemetry, out);
  }
  StatusOr<int64_t> SolveDistance(const SolveRequest& request) const override {
    return FptDistance(request);
  }
};

class FptSubstitutionSolver final : public Solver {
 public:
  const char* name() const override { return "fpt-substitution"; }
  const SolverCaps& caps() const override {
    static const SolverCaps caps{/*deletions=*/false, /*substitutions=*/true,
                                 /*exact=*/true, /*needs_reduced=*/true,
                                 /*supports_doubling=*/true,
                                 /*planner_candidate=*/true, Algorithm::kFpt};
    return caps;
  }
  double PredictCost(int64_t n, int64_t d_hint) const override {
    return PredictSubstitution(n, d_hint);
  }
  Status Solve(const SolveRequest& request, RepairContext& ctx,
               RepairTelemetry* telemetry, SolverResult* out) const override {
    return SolveFpt(request, ctx, telemetry, out);
  }
  StatusOr<int64_t> SolveDistance(const SolveRequest& request) const override {
    return FptDistance(request);
  }
};

}  // namespace

void RegisterFptSolvers(SolverRegistry& registry) {
  DYCK_CHECK(registry.Register(std::make_unique<FptUmbrellaSolver>()).ok());
  DYCK_CHECK(registry.Register(std::make_unique<FptDeletionSolver>()).ok());
  DYCK_CHECK(
      registry.Register(std::make_unique<FptSubstitutionSolver>()).ok());
}

}  // namespace dyck
