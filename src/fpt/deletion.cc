#include "src/fpt/deletion.h"

#include <algorithm>
#include <optional>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/context.h"
#include "src/fpt/oracle.h"
#include "src/profile/height.h"
#include "src/profile/reduce.h"
#include "src/profile/valleys.h"
#include "src/util/arena.h"
#include "src/util/budget.h"
#include "src/util/logging.h"

namespace dyck {

namespace {
constexpr int64_t kInf = int64_t{1} << 50;
}  // namespace

// Theorem 25's per-subproblem backend: the full O(|A| * |B|) deletion-
// distance table for A = U(X), B = rev(U(Y)), queryable at any (r, c).
class QuadraticPairTable {
 public:
  QuadraticPairTable(std::vector<int32_t> a, std::vector<int32_t> b)
      : a_(std::move(a)), b_(std::move(b)), cols_(b_.size() + 1) {
    const int64_t rows = static_cast<int64_t>(a_.size()) + 1;
    dp_.resize(rows * cols_);
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t c = 0; c < cols_; ++c) {
        int32_t& cell = dp_[r * cols_ + c];
        if (r == 0) {
          cell = static_cast<int32_t>(c);
        } else if (c == 0) {
          cell = static_cast<int32_t>(r);
        } else {
          const int32_t mismatch = a_[r - 1] == b_[c - 1] ? 0 : 2;
          cell = std::min({dp_[(r - 1) * cols_ + c] + 1,
                           dp_[r * cols_ + c - 1] + 1,
                           dp_[(r - 1) * cols_ + c - 1] + mismatch});
        }
      }
    }
  }

  std::optional<int32_t> Point(int64_t r, int64_t c, int32_t max_d) const {
    const int32_t v = dp_[r * cols_ + c];
    if (v > max_d) return std::nullopt;
    return v;
  }

 private:
  std::vector<int32_t> a_;
  std::vector<int32_t> b_;
  int64_t cols_;
  std::vector<int32_t> dp_;
};

class DeletionSolver::Impl {
 public:
  Impl(Reduced reduced, DeletionOracleKind oracle_kind)
      : oracle_kind_(oracle_kind),
        owned_(std::move(reduced)),
        reduced_(&owned_),
        owned_heights_(ComputeHeights(reduced_->seq)),
        heights_(&owned_heights_),
        owned_blocks_(BlockStructure::Build(reduced_->seq)),
        blocks_(&owned_blocks_),
        oracle_(reduced_->seq),
        owned_arena_(std::make_unique<Arena>()),
        memo_(MakeMemo(owned_arena_.get())) {
    CheckSize();
  }

  Impl(const Reduced* reduced, RepairContext* context,
       DeletionOracleKind oracle_kind)
      : oracle_kind_(oracle_kind),
        reduced_(reduced),
        heights_(&context->heights()),
        blocks_(&context->blocks()),
        oracle_(reduced_->seq, &context->wave_pool()),
        context_(context),
        memo_(MakeMemo(&context->arena())) {
    ComputeHeights(reduced_->seq, heights_);
    blocks_->Rebuild(reduced_->seq);
    CheckSize();
  }

  std::optional<int64_t> Distance(int32_t d) {
    DYCK_CHECK_GE(d, 0);
    if (reduced_->seq.empty()) return 0;
    d_ = d;
    memo_.clear();
    memo_.reserve(64);
    const int64_t v =
        Solve(0, static_cast<int64_t>(reduced_->seq.size()) - 1);
    if (v > d) return std::nullopt;
    return v;
  }

  StatusOr<FptResult> Repair(int32_t d) {
    const std::optional<int64_t> dist = Distance(d);
    if (!dist.has_value()) {
      return Status::BoundExceeded("edit1 exceeds bound " +
                                   std::to_string(d));
    }
    FptResult result;
    result.distance = *dist;
    result.script.ops.reserve(static_cast<size_t>(*dist));
    result.script.aligned_pairs.reserve(reduced_->seq.size() / 2 +
                                        reduced_->matched_pairs.size());
    if (!reduced_->seq.empty()) {
      DYCK_RETURN_NOT_OK(Reconstruct(
          0, static_cast<int64_t>(reduced_->seq.size()) - 1,
          &result.script));
    }
    // Translate reduced indices to original ones and add the zero-cost
    // pairs removed by the reduction.
    for (EditOp& op : result.script.ops) {
      op.pos = reduced_->orig_pos[op.pos];
    }
    for (auto& [a, b] : result.script.aligned_pairs) {
      a = reduced_->orig_pos[a];
      b = reduced_->orig_pos[b];
    }
    result.script.aligned_pairs.insert(result.script.aligned_pairs.end(),
                                       reduced_->matched_pairs.begin(),
                                       reduced_->matched_pairs.end());
    result.script.Normalize();
    DYCK_CHECK_EQ(result.script.Cost(), result.distance);
    return result;
  }

  int64_t reduced_size() const {
    return static_cast<int64_t>(reduced_->seq.size());
  }

  int64_t subproblem_count() const {
    return static_cast<int64_t>(memo_.size());
  }

 private:
  struct Entry {
    int64_t value = kInf;
    int8_t kase = 0;  // 1, 2, 3 per the paper's case analysis
    int64_t i = -1;   // Case 2: last index of D'_1
    int64_t j = -1;   // Case 2: first index of U'_k
    int64_t t = -1;   // Cases 2/3: split position (start of the right part)
  };

  static uint64_t Key(int64_t p, int64_t q) {
    return (static_cast<uint64_t>(p) << 32) | static_cast<uint64_t>(q);
  }

  using MemoMap =
      std::unordered_map<uint64_t, Entry, std::hash<uint64_t>,
                         std::equal_to<uint64_t>,
                         ArenaAllocator<std::pair<const uint64_t, Entry>>>;
  using SplitVec = std::vector<int64_t, ArenaAllocator<int64_t>>;

  static MemoMap MakeMemo(Arena* arena) {
    return MemoMap(0, std::hash<uint64_t>{}, std::equal_to<uint64_t>{},
                   ArenaAllocator<std::pair<const uint64_t, Entry>>(arena));
  }

  void CheckSize() const {
    // Guards the 32-bit (p, q) memo key packing; the reduced length bounds
    // every index the recursion touches.
    DYCK_CHECK_LT(static_cast<int64_t>(reduced_->seq.size()),
                  int64_t{1} << 31)
        << "sequences beyond 2^31 symbols are unsupported";
  }

  int64_t Solve(int64_t p, int64_t q) {
    if (p > q) return 0;
    const uint64_t key = Key(p, q);
    if (auto it = memo_.find(key); it != memo_.end()) {
      return it->second.value;
    }
    // Reserve the slot first: the recursion never revisits (p, q) before
    // Compute returns (subproblems strictly shrink), so this only guards
    // against pathological rehashing costs.
    Entry entry = Compute(p, q);
    if (entry.value > d_) entry.value = kInf;
    memo_[key] = entry;
    return entry.value;
  }

  // Valley-boundary split positions inside [p, q]: every end of a closing
  // run except U_k's (paper's r in {1, ..., k-1}). Arena-backed: the list
  // dies with the subproblem, and the arena rewinds with the document.
  SplitVec SplitPoints(int64_t p, int64_t q) const {
    SplitVec splits(ArenaAllocator<int64_t>(memo_.get_allocator().arena()));
    const int rf = blocks_->run_of(p);
    const int rl = blocks_->run_of(q);
    splits.reserve(static_cast<size_t>(rl - rf + 1));
    for (int r = rf; r <= rl; ++r) {
      const Run& run = blocks_->runs()[r];
      if (!run.is_open && run.end <= q) splits.push_back(run.end);
    }
    return splits;
  }

  Entry Compute(int64_t p, int64_t q) {
    // One budget step per memoized subproblem, so max_work_steps caps the
    // paper's poly(d) subproblem count directly.
    BudgetCheckpoint("fpt.deletion.solve");
    Entry best;
    const std::vector<int64_t>& heights = *heights_;
    // Fact 20: far-apart endpoint heights force more than d edits.
    if (std::abs(heights[q] - heights[p]) > d_) return best;
    // Claim 21: each valley costs at least one edit.
    const int k_range = blocks_->NumValleysInRange(p, q);
    if (k_range > d_) return best;

    const Run& rf = blocks_->runs()[blocks_->run_of(p)];
    const Run& rl = blocks_->runs()[blocks_->run_of(q)];

    if (k_range <= 1) {
      // Case 1: one valley; a single oracle query.
      int64_t x_begin = p;
      int64_t x_end = p;
      int64_t y_begin = q + 1;
      int64_t y_end = q + 1;
      if (rf.is_open) x_end = std::min(rf.end, q + 1);
      if (!rl.is_open) y_begin = std::max(rl.begin, p);
      std::optional<int32_t> v;
      if (oracle_kind_ == DeletionOracleKind::kWaveOracle) {
        v = oracle_.PairDistance(x_begin, x_end, y_begin, y_end, d_,
                                 WaveMetric::kDeletion);
      } else {
        const QuadraticPairTable table(TypesOf(x_begin, x_end),
                                       TypesOfReversed(y_begin, y_end));
        v = table.Point(x_end - x_begin, y_end - y_begin, d_);
      }
      if (v.has_value()) {
        best.value = *v;
        best.kase = 1;
      }
      return best;
    }

    const SplitVec splits = SplitPoints(p, q);

    // Case 3 (Lemma 24): split at a valley boundary.
    for (int64_t t : splits) {
      const int64_t total = Sum(Solve(p, t - 1), Solve(t, q));
      if (total < best.value) {
        best = Entry{total, 3, -1, -1, t};
      }
    }

    // Case 2 (Lemma 23): some D_1 symbol aligns with some U_k symbol.
    if (rf.is_open && !rl.is_open && !splits.empty()) {
      const int64_t d1_end = std::min(rf.end, q + 1);
      const int64_t uk_begin = std::max(rl.begin, p);
      // l = the highest intermediate peak (the paper's "l := max_i h(i)"
      // ranges over the i_t marking the last symbols of U_1..U_{k-1}).
      // The rightmost good pair sits within O(d) of it: the middle parts
      // of decomposition (3) have endpoint heights within d of their
      // peak (Fact 20), and a peak can rise above a repairable
      // subsequence's endpoints by at most O(d).
      int64_t l = heights[splits.front() - 1];
      for (int64_t t : splits) l = std::max(l, heights[t - 1]);
      // Heights decrease by one per step inside an opening run, so the
      // window |h(i) - l| <= 10d is a contiguous stretch of D_1; similarly
      // for the closing run U_k.
      const int64_t i_lo =
          std::max(p, p + (heights[p] - l) - 10 * int64_t{d_});
      const int64_t i_hi =
          std::min(d1_end - 1, p + (heights[p] - l) + 10 * int64_t{d_});
      const int64_t j_lo =
          std::max(uk_begin, q - (heights[q] - l) - 10 * int64_t{d_});
      const int64_t j_hi =
          std::min(q, q - (heights[q] - l) + 10 * int64_t{d_});
      if (i_hi >= i_lo && j_hi >= j_lo) {
        std::optional<WaveTable> wave;
        std::optional<QuadraticPairTable> quadratic;
        if (oracle_kind_ == DeletionOracleKind::kWaveOracle) {
          wave.emplace(oracle_.BuildTable(p, d1_end, uk_begin, q + 1, d_,
                                          WaveMetric::kDeletion));
        } else {
          quadratic.emplace(TypesOf(p, d1_end),
                            TypesOfReversed(uk_begin, q + 1));
        }
        for (int64_t i = i_lo; i <= i_hi; ++i) {
          // The O(d^2) good-pair scan dominates Case 2; poll per row so a
          // tripped budget interrupts it within O(d) pair probes.
          BudgetCheckpoint("fpt.deletion.solve");
          for (int64_t j = j_lo; j <= j_hi; ++j) {
            const std::optional<int32_t> pair_cost =
                wave.has_value() ? wave->Point(i - p + 1, q - j + 1)
                                 : quadratic->Point(i - p + 1, q - j + 1,
                                                    d_);
            if (!pair_cost.has_value()) continue;
            for (int64_t t : splits) {
              const int64_t total =
                  Sum(*pair_cost, Sum(Solve(i + 1, t - 1), Solve(t, j - 1)));
              if (total < best.value) {
                best = Entry{total, 2, i, j, t};
              }
            }
          }
        }
      }
    }
    return best;
  }

  static int64_t Sum(int64_t a, int64_t b) {
    return (a >= kInf || b >= kInf) ? kInf : a + b;
  }

  Status Reconstruct(int64_t p0, int64_t q0, EditScript* script) {
    std::vector<std::pair<int64_t, int64_t>> local_work;
    std::vector<std::pair<int64_t, int64_t>>& work =
        context_ != nullptr ? context_->work_stack() : local_work;
    work.clear();
    // Each Case 2/3 pops one subproblem and pushes two, and the recursion
    // depth is bounded by the d splits, so 2d + 4 slots suffice.
    work.reserve(static_cast<size_t>(2 * d_ + 4));
    work.emplace_back(p0, q0);
    while (!work.empty()) {
      const auto [p, q] = work.back();
      work.pop_back();
      if (p > q) continue;
      const auto it = memo_.find(Key(p, q));
      if (it == memo_.end() || it->second.value >= kInf) {
        return Status::Internal("reconstruction hit an unsolved subproblem");
      }
      const Entry& entry = it->second;
      switch (entry.kase) {
        case 1: {
          const Run& rf = blocks_->runs()[blocks_->run_of(p)];
          const Run& rl = blocks_->runs()[blocks_->run_of(q)];
          int64_t x_begin = p, x_end = p, y_begin = q + 1, y_end = q + 1;
          if (rf.is_open) x_end = std::min(rf.end, q + 1);
          if (!rl.is_open) y_begin = std::max(rl.begin, p);
          DYCK_RETURN_NOT_OK(
              EmitPairOps(x_begin, x_end, y_begin, y_end, script));
          break;
        }
        case 2: {
          DYCK_RETURN_NOT_OK(
              EmitPairOps(p, entry.i + 1, entry.j, q + 1, script));
          work.emplace_back(entry.i + 1, entry.t - 1);
          work.emplace_back(entry.t, entry.j - 1);
          break;
        }
        case 3: {
          work.emplace_back(p, entry.t - 1);
          work.emplace_back(entry.t, q);
          break;
        }
        default:
          return Status::Internal("corrupt memo entry");
      }
    }
    return Status::OK();
  }

  // Expands the leaf pair (X, Y) into deletions/matches on reduced indices.
  Status EmitPairOps(int64_t x_begin, int64_t x_end, int64_t y_begin,
                     int64_t y_end, EditScript* script) {
    DYCK_ASSIGN_OR_RETURN(
        const BandedResult aligned,
        oracle_.AlignPair(x_begin, x_end, y_begin, y_end, d_,
                          WaveMetric::kDeletion));
    size_t matches = 0;
    size_t deletes = 0;
    for (const PairOp& op : aligned.ops) {
      if (op.kind == PairOpKind::kMatch) {
        matches += static_cast<size_t>(op.len);
      } else {
        ++deletes;
      }
    }
    script->aligned_pairs.reserve(script->aligned_pairs.size() + matches);
    script->ops.reserve(script->ops.size() + deletes);
    for (const PairOp& op : aligned.ops) {
      switch (op.kind) {
        case PairOpKind::kMatch:
          for (int64_t t = 0; t < op.len; ++t) {
            script->aligned_pairs.emplace_back(x_begin + op.a_pos + t,
                                               y_end - 1 - (op.b_pos + t));
          }
          break;
        case PairOpKind::kDeleteA:
          script->ops.push_back(
              {EditOpKind::kDelete, x_begin + op.a_pos, Paren{}});
          break;
        case PairOpKind::kDeleteB:
          script->ops.push_back(
              {EditOpKind::kDelete, y_end - 1 - op.b_pos, Paren{}});
          break;
        default:
          return Status::Internal(
              "substitution op under the deletion metric");
      }
    }
    return Status::OK();
  }

  // U(X) for X = reduced[begin, end): the type ids in order.
  std::vector<int32_t> TypesOf(int64_t begin, int64_t end) const {
    std::vector<int32_t> out;
    out.reserve(end - begin);
    for (int64_t i = begin; i < end; ++i) {
      out.push_back(reduced_->seq[i].type);
    }
    return out;
  }

  // rev(U(Y)) for Y = reduced[begin, end).
  std::vector<int32_t> TypesOfReversed(int64_t begin, int64_t end) const {
    std::vector<int32_t> out;
    out.reserve(end - begin);
    for (int64_t i = end - 1; i >= begin; --i) {
      out.push_back(reduced_->seq[i].type);
    }
    return out;
  }

  DeletionOracleKind oracle_kind_;
  // Legacy owning path: owned_ holds the reduction and reduced_ points at
  // it. Context path: reduced_ borrows the caller's (owned_ stays empty),
  // and heights_/blocks_/memo_ storage all live on the context.
  Reduced owned_;
  const Reduced* reduced_;
  std::vector<int64_t> owned_heights_;
  std::vector<int64_t>* heights_;
  BlockStructure owned_blocks_;
  BlockStructure* blocks_;
  PairOracle oracle_;
  RepairContext* context_ = nullptr;
  std::unique_ptr<Arena> owned_arena_;  // null on the context path
  int32_t d_ = 0;
  MemoMap memo_;
};

DeletionSolver::DeletionSolver(ParenSpan seq, DeletionOracleKind oracle)
    : impl_(std::make_unique<Impl>(Reduce(seq), oracle)) {}

DeletionSolver::DeletionSolver(Reduced reduced, DeletionOracleKind oracle)
    : impl_(std::make_unique<Impl>(std::move(reduced), oracle)) {}

DeletionSolver::DeletionSolver(const Reduced* reduced,
                               RepairContext* context,
                               DeletionOracleKind oracle)
    : impl_(std::make_unique<Impl>(reduced, context, oracle)) {}

DeletionSolver::~DeletionSolver() = default;
DeletionSolver::DeletionSolver(DeletionSolver&&) noexcept = default;
DeletionSolver& DeletionSolver::operator=(DeletionSolver&&) noexcept =
    default;

std::optional<int64_t> DeletionSolver::Distance(int32_t d) {
  return impl_->Distance(d);
}

StatusOr<FptResult> DeletionSolver::Repair(int32_t d) {
  return impl_->Repair(d);
}

int64_t DeletionSolver::reduced_size() const { return impl_->reduced_size(); }

int64_t DeletionSolver::last_subproblem_count() const {
  return impl_->subproblem_count();
}

int64_t FptDeletionDistance(const ParenSeq& seq) {
  DeletionSolver solver(seq);
  for (int64_t d = 1;; d *= 2) {
    const int32_t bound =
        static_cast<int32_t>(std::min<int64_t>(d, 1 + seq.size()));
    if (const auto v = solver.Distance(bound); v.has_value()) return *v;
  }
}

FptResult FptDeletionRepair(const ParenSeq& seq) {
  DeletionSolver solver(seq);
  for (int64_t d = 1;; d *= 2) {
    const int32_t bound =
        static_cast<int32_t>(std::min<int64_t>(d, 1 + seq.size()));
    auto result = solver.Repair(bound);
    if (result.ok()) return std::move(result).value();
    DYCK_CHECK(result.status().IsBoundExceeded()) << result.status();
  }
}

}  // namespace dyck
