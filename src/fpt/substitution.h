// The paper's substitution FPT algorithm: Theorem 40, O(n + d^16).
//
// Pipeline (paper §4.2):
//   1. Reduce to Property-19 form; build the Theorem-34 oracle — O(n), once.
//   2. Build the layer structure L: the +-100d neighbourhoods of every peak
//      and base height (the set H), merged into disjoint intervals. The
//      pair set E contains the index pairs whose heights share a layer;
//      A[i][j] = edit2(S_i..S_j) is computed only for pairs in E.
//   3. Memoized recursion:
//      Step 2 — (i, j) not "bottom neighbours" of any layer: interval
//        recurrence (4) restricted to split points r with (i, r) and
//        (r+1, j) in E, plus the aligned-pair move A[i+1][j-1] +
//        PairCost(S_i, S_j) (the pair-cost generalization that makes the
//        recurrence correct under substitutions, e.g. edit2("((") = 1).
//      Step 3 — (i, j) bottom neighbours in layer t (both heights within
//        10d of the layer floor, S_i on a descending and S_j on an
//        ascending slope, and S_j's run is the first ascending run after i
//        to revisit that zone): the interval's interior must dive through
//        the empty height gap below layer t into layer t-1, along two
//        monotone slopes. Enumerate "top neighbour" anchor pairs (i', j')
//        in layer t-1's ceiling zone and bridge with one oracle query
//        edit2(S_i..S_{i'-1}, S_{j'+1}..S_j). All (i', j') bridges for one
//        (i, j) are point queries into a single wave table, so Step 3
//        costs O(d^2) per pair rather than the paper's O(d^4).
//
// Edit scripts are reconstructed from the memoized decisions; bridge leaves
// re-expand through WaveAlign, mapping the pair-metric operations
// (including Definition 28's paired double-deletions, which become one
// substitution each) back to sequence positions.

#ifndef DYCKFIX_SRC_FPT_SUBSTITUTION_H_
#define DYCKFIX_SRC_FPT_SUBSTITUTION_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "src/alphabet/paren.h"
#include "src/fpt/deletion.h"  // FptResult
#include "src/profile/reduce.h"
#include "src/util/statusor.h"

namespace dyck {

class RepairContext;

/// Solver instance for one input sequence under the substitution metric.
/// Construction performs the O(n) preprocessing; Distance/Repair may then
/// be called with increasing bounds at poly(d) cost each.
class SubstitutionSolver {
 public:
  explicit SubstitutionSolver(ParenSpan seq);

  /// Takes ownership of an already-computed Property-19 reduction (the
  /// pipeline's Profile/Reduce stage output) instead of reducing
  /// internally, so the input sequence is never re-read or copied.
  explicit SubstitutionSolver(Reduced reduced);

  /// Zero-copy, zero-scratch construction: borrows `*reduced` (typically
  /// context->reduced()) and draws every piece of working memory — height
  /// profile, valley structure, wave frontiers, the DP memo's arena — from
  /// `*context`. Both must outlive the solver, and the context must not
  /// BeginDocument() while the solver lives.
  SubstitutionSolver(const Reduced* reduced, RepairContext* context);
  ~SubstitutionSolver();
  SubstitutionSolver(SubstitutionSolver&&) noexcept;
  SubstitutionSolver& operator=(SubstitutionSolver&&) noexcept;

  /// edit2(seq) if it is <= d; std::nullopt otherwise.
  std::optional<int64_t> Distance(int32_t d);

  /// Distance plus an optimal deletion+substitution script.
  StatusOr<FptResult> Repair(int32_t d);

  int64_t reduced_size() const;

  /// Number of memoized A[i][j] entries from the most recent call; the
  /// paper bounds the pair set E by O(d^8) independently of n.
  int64_t last_subproblem_count() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

/// Exact edit2(seq) via the d-doubling driver. O(n + poly(d)).
int64_t FptSubstitutionDistance(const ParenSeq& seq);

/// Doubling driver with script reconstruction.
FptResult FptSubstitutionRepair(const ParenSeq& seq);

}  // namespace dyck

#endif  // DYCKFIX_SRC_FPT_SUBSTITUTION_H_
