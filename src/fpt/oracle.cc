#include "src/fpt/oracle.h"

#include <algorithm>

#include "src/util/logging.h"

namespace dyck {

PairOracle::PairOracle(const ParenSeq& seq, ScratchPool<int64_t>* wave_pool)
    : wave_pool_(wave_pool) {
  n_ = static_cast<int64_t>(seq.size());
  // C = U(S) . rev(U(S)).
  std::vector<int32_t> c;
  c.reserve(2 * seq.size());
  for (const Paren& p : seq) c.push_back(p.type);
  for (auto it = seq.rbegin(); it != seq.rend(); ++it) {
    c.push_back(it->type);
  }
  index_ = LceIndex::Build(std::move(c));
}

WaveParams PairOracle::MakeParams(int64_t x_begin, int64_t x_end,
                                  int64_t y_begin, int64_t y_end,
                                  int32_t max_d, WaveMetric metric) const {
  DYCK_DCHECK_GE(x_begin, 0);
  DYCK_DCHECK_LE(x_begin, x_end);
  DYCK_DCHECK_LE(x_end, n_);
  DYCK_DCHECK_GE(y_begin, 0);
  DYCK_DCHECK_LE(y_begin, y_end);
  DYCK_DCHECK_LE(y_end, n_);
  WaveParams params;
  params.a_begin = x_begin;
  params.a_len = x_end - x_begin;
  params.b_begin = 2 * n_ - y_end;
  params.b_len = y_end - y_begin;
  params.max_d = max_d;
  params.metric = metric;
  return params;
}

WaveTable PairOracle::BuildTable(int64_t x_begin, int64_t x_end,
                                 int64_t y_begin, int64_t y_end,
                                 int32_t max_d, WaveMetric metric) const {
  return ComputeWaves(
      index_, MakeParams(x_begin, x_end, y_begin, y_end, max_d, metric),
      wave_pool_);
}

std::optional<int32_t> PairOracle::PairDistance(int64_t x_begin,
                                                int64_t x_end,
                                                int64_t y_begin,
                                                int64_t y_end, int32_t max_d,
                                                WaveMetric metric) const {
  return BuildTable(x_begin, x_end, y_begin, y_end, max_d, metric)
      .Distance();
}

StatusOr<BandedResult> PairOracle::AlignPair(int64_t x_begin, int64_t x_end,
                                             int64_t y_begin, int64_t y_end,
                                             int32_t max_d,
                                             WaveMetric metric) const {
  return WaveAlign(
      index_, MakeParams(x_begin, x_end, y_begin, y_end, max_d, metric),
      wave_pool_);
}

}  // namespace dyck
