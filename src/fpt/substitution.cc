#include "src/fpt/substitution.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/context.h"
#include "src/core/edit_script.h"
#include "src/fpt/oracle.h"
#include "src/profile/height.h"
#include "src/profile/reduce.h"
#include "src/profile/valleys.h"
#include "src/util/arena.h"
#include "src/util/budget.h"
#include "src/util/logging.h"

namespace dyck {

namespace {
constexpr int64_t kInf = int64_t{1} << 50;
}  // namespace

class SubstitutionSolver::Impl {
 public:
  explicit Impl(Reduced reduced)
      : owned_(std::move(reduced)),
        owned_heights_(ComputeHeights(owned_.seq)),
        owned_blocks_(BlockStructure::Build(owned_.seq)),
        reduced_(owned_),
        heights_(owned_heights_),
        blocks_(owned_blocks_),
        oracle_(owned_.seq),
        owned_arena_(std::make_unique<Arena>()),
        memo_(MakeMemo(owned_arena_.get())) {
    CheckSize();
  }

  Impl(const Reduced* reduced, RepairContext* context)
      : reduced_(*reduced),
        heights_(context->heights()),
        blocks_(context->blocks()),
        oracle_(reduced->seq, &context->wave_pool()),
        context_(context),
        memo_(MakeMemo(&context->arena())) {
    ComputeHeights(reduced_.seq, &heights_);
    blocks_.Rebuild(reduced_.seq);
    CheckSize();
  }

  std::optional<int64_t> Distance(int32_t d) {
    DYCK_CHECK_GE(d, 0);
    const int64_t n = static_cast<int64_t>(reduced_.seq.size());
    if (n == 0) return 0;
    // Claim 35: more than 2d valleys already witness edit2 > d.
    if (blocks_.num_valleys() > 2 * static_cast<int64_t>(d)) {
      return std::nullopt;
    }
    d_ = d;
    BuildLayers();
    memo_.clear();
    if (LayerOf(heights_[0]) < 0 ||
        LayerOf(heights_[0]) != LayerOf(heights_[n - 1])) {
      return std::nullopt;  // (1, |S|) not in E => distance > d
    }
    const int64_t v = A(0, n - 1);
    if (v > d) return std::nullopt;
    return v;
  }

  StatusOr<FptResult> Repair(int32_t d) {
    const std::optional<int64_t> dist = Distance(d);
    if (!dist.has_value()) {
      return Status::BoundExceeded("edit2 exceeds bound " +
                                   std::to_string(d));
    }
    FptResult result;
    result.distance = *dist;
    result.script.ops.reserve(static_cast<size_t>(*dist));
    result.script.aligned_pairs.reserve(reduced_.seq.size() / 2 +
                                        reduced_.matched_pairs.size());
    if (!reduced_.seq.empty()) {
      DYCK_RETURN_NOT_OK(Reconstruct(
          0, static_cast<int64_t>(reduced_.seq.size()) - 1, &result.script));
    }
    for (EditOp& op : result.script.ops) {
      op.pos = reduced_.orig_pos[op.pos];
    }
    for (auto& [a, b] : result.script.aligned_pairs) {
      a = reduced_.orig_pos[a];
      b = reduced_.orig_pos[b];
    }
    result.script.aligned_pairs.insert(result.script.aligned_pairs.end(),
                                       reduced_.matched_pairs.begin(),
                                       reduced_.matched_pairs.end());
    result.script.Normalize();
    DYCK_CHECK_EQ(result.script.Cost(), result.distance);
    return result;
  }

  int64_t reduced_size() const {
    return static_cast<int64_t>(reduced_.seq.size());
  }

  int64_t subproblem_count() const {
    return static_cast<int64_t>(memo_.size());
  }

 private:
  struct Layer {
    int64_t lo = 0;
    int64_t hi = 0;
  };

  struct Entry {
    int64_t value = kInf;
    // 1 = aligned-pair move, 2 = split at r, 3 = layer bridge (i', j').
    int8_t kase = 0;
    int64_t p1 = -1;
    int64_t p2 = -1;
  };

  static uint64_t Key(int64_t i, int64_t j) {
    return (static_cast<uint64_t>(i) << 32) | static_cast<uint64_t>(j);
  }

  static int64_t Sum(int64_t a, int64_t b) {
    return (a >= kInf || b >= kInf) ? kInf : a + b;
  }

  using MemoMap =
      std::unordered_map<uint64_t, Entry, std::hash<uint64_t>,
                         std::equal_to<uint64_t>,
                         ArenaAllocator<std::pair<const uint64_t, Entry>>>;

  static MemoMap MakeMemo(Arena* arena) {
    return MemoMap(0, std::hash<uint64_t>{}, std::equal_to<uint64_t>{},
                   ArenaAllocator<std::pair<const uint64_t, Entry>>(arena));
  }

  void CheckSize() const {
    // Guards the 32-bit (i, j) memo key packing; the reduced length bounds
    // every index the recursion touches.
    DYCK_CHECK_LT(static_cast<int64_t>(reduced_.seq.size()),
                  int64_t{1} << 31)
        << "sequences beyond 2^31 symbols are unsupported";
  }

  // The set H (peak and base heights) is exactly the heights of run
  // endpoints; L is their merged +-100d neighbourhoods (paper §4.2).
  void BuildLayers() {
    std::vector<int64_t>& anchors = anchors_;
    anchors.clear();
    anchors.reserve(2 * blocks_.runs().size());
    for (const Run& run : blocks_.runs()) {
      anchors.push_back(heights_[run.begin]);
      anchors.push_back(heights_[run.end - 1]);
    }
    std::sort(anchors.begin(), anchors.end());
    anchors.erase(std::unique(anchors.begin(), anchors.end()),
                  anchors.end());
    layers_.clear();
    const int64_t margin = 100 * static_cast<int64_t>(d_);
    for (int64_t v : anchors) {
      const int64_t lo = v - margin;
      const int64_t hi = v + margin;
      if (!layers_.empty() && lo <= layers_.back().hi) {
        layers_.back().hi = std::max(layers_.back().hi, hi);
      } else {
        layers_.push_back(Layer{lo, hi});
      }
    }
    BuildPositionIndexes();
  }

  // Per layer: every position whose height lies in the layer, and every
  // closing-run position in the layer's bottom zone. Both are unions of
  // arithmetic windows (heights are monotone within a run), so their total
  // size is O(#runs * layer width) = poly(d), independent of n.
  void BuildPositionIndexes() {
    // resize + per-slot clear instead of assign: the inner vectors keep
    // their capacity across doubling probes and documents.
    pos_in_layer_.resize(layers_.size());
    closing_bottom_.resize(layers_.size());
    for (auto& v : pos_in_layer_) v.clear();
    for (auto& v : closing_bottom_) v.clear();
    const int64_t zone = 10 * static_cast<int64_t>(d_);
    for (const Run& run : blocks_.runs()) {
      const int64_t h0 = heights_[run.begin];
      // Height at run.begin + s is h0 - s (opening) or h0 + s (closing).
      const int64_t step = run.is_open ? -1 : +1;
      const int64_t h_last = h0 + step * (run.size() - 1);
      const int64_t h_min = std::min(h0, h_last);
      const int64_t h_max = std::max(h0, h_last);
      for (size_t t = 0; t < layers_.size(); ++t) {
        const Layer& layer = layers_[t];
        if (layer.hi < h_min || layer.lo > h_max) continue;
        AppendWindow(run, h0, step, std::max(layer.lo, h_min),
                     std::min(layer.hi, h_max), &pos_in_layer_[t]);
        if (!run.is_open) {
          const int64_t blo = std::max(layer.lo, h_min);
          const int64_t bhi = std::min(layer.lo + zone, h_max);
          if (blo <= bhi) {
            AppendWindow(run, h0, step, blo, bhi, &closing_bottom_[t]);
          }
        }
      }
    }
    for (auto& v : pos_in_layer_) std::sort(v.begin(), v.end());
    for (auto& v : closing_bottom_) std::sort(v.begin(), v.end());
  }

  static void AppendWindow(const Run& run, int64_t h0, int64_t step,
                           int64_t lo, int64_t hi,
                           std::vector<int64_t>* out) {
    // Positions run.begin + s with h0 + step*s in [lo, hi].
    int64_t s_lo, s_hi;
    if (step > 0) {
      s_lo = lo - h0;
      s_hi = hi - h0;
    } else {
      s_lo = h0 - hi;
      s_hi = h0 - lo;
    }
    s_lo = std::max<int64_t>(s_lo, 0);
    s_hi = std::min(s_hi, run.size() - 1);
    for (int64_t s = s_lo; s <= s_hi; ++s) out->push_back(run.begin + s);
  }

  int LayerOf(int64_t height) const {
    // Last layer with lo <= height.
    auto it = std::upper_bound(
        layers_.begin(), layers_.end(), height,
        [](int64_t h, const Layer& l) { return h < l.lo; });
    if (it == layers_.begin()) return -1;
    --it;
    if (height > it->hi) return -1;
    return static_cast<int>(it - layers_.begin());
  }

  // Definition 39's "bottom neighbours in layer t" dispatch predicate.
  bool BottomNeighbors(int64_t i, int64_t j, int t) const {
    const int64_t zone_hi = layers_[t].lo + 10 * static_cast<int64_t>(d_);
    if (heights_[i] > zone_hi || heights_[j] > zone_hi) return false;
    if (!reduced_.seq[i].is_open || reduced_.seq[j].is_open) return false;
    // S_j's run must be the first closing run after i revisiting the zone.
    const auto& zone = closing_bottom_[t];
    const auto it = std::upper_bound(zone.begin(), zone.end(), i);
    DYCK_DCHECK(it != zone.end());  // j itself is in the zone
    return blocks_.run_of(*it) == blocks_.run_of(j);
  }

  int64_t A(int64_t i, int64_t j) {
    if (i > j) return 0;
    if (i == j) return 1;
    const uint64_t key = Key(i, j);
    if (auto it = memo_.find(key); it != memo_.end()) {
      return it->second.value;
    }
    Entry entry = Compute(i, j);
    if (entry.value > d_) entry.value = kInf;
    memo_[key] = entry;
    return entry.value;
  }

  Entry Compute(int64_t i, int64_t j) {
    // One budget step per memoized subproblem of recurrence (4).
    BudgetCheckpoint("fpt.substitution.solve");
    Entry best;
    const int ti = LayerOf(heights_[i]);
    if (ti < 0 || ti != LayerOf(heights_[j])) return best;  // not in E
    // Fact 36: a substitution moves endpoint heights by at most 2.
    if (std::abs(heights_[i] - heights_[j]) > 2 * int64_t{d_}) return best;
    // Claim 35 applied to the subrange.
    if (blocks_.NumValleysInRange(i, j) > 2 * d_) return best;

    if (ti > 0 && BottomNeighbors(i, j, ti)) {
      ComputeBridge(i, j, ti, &best);
    } else {
      ComputeInterval(i, j, ti, &best);
    }
    return best;
  }

  // Step 2: recurrence (4) restricted to E.
  void ComputeInterval(int64_t i, int64_t j, int ti, Entry* best) {
    const int32_t pc = PairCost(reduced_.seq[i], reduced_.seq[j],
                                /*allow_substitutions=*/true);
    if (pc < kPairImpossible) {
      const int64_t total = Sum(A(i + 1, j - 1), pc);
      if (total < best->value) *best = Entry{total, 1, -1, -1};
    }
    const auto& positions = pos_in_layer_[ti];
    for (auto it = std::lower_bound(positions.begin(), positions.end(), i);
         it != positions.end() && *it < j; ++it) {
      const int64_t r = *it;
      if (LayerOf(heights_[r + 1]) != ti) continue;  // (r+1, j) not in E
      const int64_t total = Sum(A(i, r), A(r + 1, j));
      if (total < best->value) *best = Entry{total, 2, r, -1};
    }
  }

  // Step 3: bridge through the height gap below layer t via top-neighbour
  // anchors (i', j') in layer t-1.
  void ComputeBridge(int64_t i, int64_t j, int ti, Entry* best) {
    const Layer& below = layers_[ti - 1];
    const int64_t zlo = below.hi - 10 * int64_t{d_};
    const int64_t zhi = below.hi;
    const Run& ri = blocks_.runs()[blocks_.run_of(i)];
    const Run& rj = blocks_.runs()[blocks_.run_of(j)];
    const int64_t hi_ = heights_[i];
    const int64_t hj_ = heights_[j];
    // i' strictly after i inside the same descending run, h(i') in the
    // ceiling zone of the layer below: h(i + s) = h(i) - s.
    const int64_t ip_lo = std::max(i + 1, i + (hi_ - zhi));
    const int64_t ip_hi = std::min(ri.end - 1, i + (hi_ - zlo));
    // j' before j inside the same ascending run: h(j - s) = h(j) - s.
    const int64_t jp_lo = std::max(rj.begin, j - (hj_ - zlo));
    const int64_t jp_hi = std::min(j - 1, j - (hj_ - zhi));
    if (ip_lo > ip_hi || jp_lo > jp_hi) return;

    // One wave table answers every bridge: prefixes of X = S[i, ip_hi)
    // against suffixes of Y = S[jp_lo + 1, j + 1).
    const WaveTable table = oracle_.BuildTable(
        i, ip_hi, jp_lo + 1, j + 1, d_, WaveMetric::kSubstitution);
    for (int64_t ip = ip_lo; ip <= ip_hi; ++ip) {
      // The anchor scan is the O(d^2) hot loop of Step 3; poll per row.
      BudgetCheckpoint("fpt.substitution.solve");
      for (int64_t jp = std::max(jp_lo, ip + 1); jp <= jp_hi; ++jp) {
        const std::optional<int32_t> bridge = table.Point(ip - i, j - jp);
        if (!bridge.has_value()) continue;
        const int64_t total = Sum(*bridge, A(ip, jp));
        if (total < best->value) *best = Entry{total, 3, ip, jp};
      }
    }
  }

  Status Reconstruct(int64_t p0, int64_t q0, EditScript* script) {
    std::vector<std::pair<int64_t, int64_t>> local_work;
    std::vector<std::pair<int64_t, int64_t>>& work =
        context_ != nullptr ? context_->work_stack() : local_work;
    work.clear();
    work.reserve(static_cast<size_t>(2 * d_ + 4));
    work.emplace_back(p0, q0);
    while (!work.empty()) {
      const auto [i, j] = work.back();
      work.pop_back();
      if (i > j) continue;
      if (i == j) {
        script->ops.push_back({EditOpKind::kDelete, i, Paren{}});
        continue;
      }
      const auto it = memo_.find(Key(i, j));
      if (it == memo_.end() || it->second.value >= kInf) {
        return Status::Internal("reconstruction hit an unsolved subproblem");
      }
      const Entry& entry = it->second;
      switch (entry.kase) {
        case 1:
          AppendPairAlignment(reduced_.seq, i, j, script);
          work.emplace_back(i + 1, j - 1);
          break;
        case 2:
          work.emplace_back(i, entry.p1);
          work.emplace_back(entry.p1 + 1, j);
          break;
        case 3: {
          DYCK_RETURN_NOT_OK(
              EmitBridgeOps(i, entry.p1, entry.p2, j, script));
          work.emplace_back(entry.p1, entry.p2);
          break;
        }
        default:
          return Status::Internal("corrupt memo entry");
      }
    }
    return Status::OK();
  }

  // Expands one bridge leaf: the pair-metric alignment of the descending
  // fragment S[i, i') against the ascending fragment S[j'+1, j] (reversed).
  Status EmitBridgeOps(int64_t i, int64_t ip, int64_t jp, int64_t j,
                       EditScript* script) {
    DYCK_ASSIGN_OR_RETURN(const BandedResult aligned,
                          oracle_.AlignPair(i, ip, jp + 1, j + 1, d_,
                                            WaveMetric::kSubstitution));
    const ParenSeq& s = reduced_.seq;
    for (const PairOp& op : aligned.ops) {
      const int64_t pa = i + op.a_pos;  // position in the opening fragment
      const int64_t pb = j - op.b_pos;  // position in the closing fragment
      switch (op.kind) {
        case PairOpKind::kMatch:
          for (int64_t t = 0; t < op.len; ++t) {
            script->aligned_pairs.emplace_back(pa + t, pb - t);
          }
          break;
        case PairOpKind::kDeleteA:
          script->ops.push_back({EditOpKind::kDelete, pa, Paren{}});
          break;
        case PairOpKind::kDeleteB:
          script->ops.push_back({EditOpKind::kDelete, pb, Paren{}});
          break;
        case PairOpKind::kSubstitute:
          // Opening pa vs closing pb of a different type: rewrite the
          // closer to match.
          script->ops.push_back(
              {EditOpKind::kSubstitute, pb, Paren::Close(s[pa].type)});
          script->aligned_pairs.emplace_back(pa, pb);
          break;
        case PairOpKind::kDoubleDeleteA:
          // Two consecutive openings leave the alignment: "((" -> "()".
          script->ops.push_back({EditOpKind::kSubstitute, pa + 1,
                                 Paren::Close(s[pa].type)});
          script->aligned_pairs.emplace_back(pa, pa + 1);
          break;
        case PairOpKind::kDoubleDeleteB:
          // Two consecutive closings (pb-1, pb): "))" -> "()".
          script->ops.push_back({EditOpKind::kSubstitute, pb - 1,
                                 Paren::Open(s[pb].type)});
          script->aligned_pairs.emplace_back(pb - 1, pb);
          break;
      }
    }
    return Status::OK();
  }

  // Legacy owning path: owned_* hold the data and the references below
  // bind to them. Context path: the references bind to the context's
  // scratch and owned_* stay empty.
  Reduced owned_;
  std::vector<int64_t> owned_heights_;
  BlockStructure owned_blocks_;
  const Reduced& reduced_;
  std::vector<int64_t>& heights_;
  BlockStructure& blocks_;
  PairOracle oracle_;
  RepairContext* context_ = nullptr;
  std::unique_ptr<Arena> owned_arena_;  // null on the context path
  int32_t d_ = 0;
  std::vector<Layer> layers_;
  std::vector<int64_t> anchors_;
  std::vector<std::vector<int64_t>> pos_in_layer_;
  std::vector<std::vector<int64_t>> closing_bottom_;
  MemoMap memo_;
};

SubstitutionSolver::SubstitutionSolver(ParenSpan seq)
    : impl_(std::make_unique<Impl>(Reduce(seq))) {}

SubstitutionSolver::SubstitutionSolver(Reduced reduced)
    : impl_(std::make_unique<Impl>(std::move(reduced))) {}

SubstitutionSolver::SubstitutionSolver(const Reduced* reduced,
                                       RepairContext* context)
    : impl_(std::make_unique<Impl>(reduced, context)) {}

SubstitutionSolver::~SubstitutionSolver() = default;
SubstitutionSolver::SubstitutionSolver(SubstitutionSolver&&) noexcept =
    default;
SubstitutionSolver& SubstitutionSolver::operator=(
    SubstitutionSolver&&) noexcept = default;

std::optional<int64_t> SubstitutionSolver::Distance(int32_t d) {
  return impl_->Distance(d);
}

StatusOr<FptResult> SubstitutionSolver::Repair(int32_t d) {
  return impl_->Repair(d);
}

int64_t SubstitutionSolver::reduced_size() const {
  return impl_->reduced_size();
}

int64_t SubstitutionSolver::last_subproblem_count() const {
  return impl_->subproblem_count();
}

int64_t FptSubstitutionDistance(const ParenSeq& seq) {
  SubstitutionSolver solver(seq);
  for (int64_t d = 1;; d *= 2) {
    const int32_t bound =
        static_cast<int32_t>(std::min<int64_t>(d, 1 + seq.size()));
    if (const auto v = solver.Distance(bound); v.has_value()) return *v;
  }
}

FptResult FptSubstitutionRepair(const ParenSeq& seq) {
  SubstitutionSolver solver(seq);
  for (int64_t d = 1;; d *= 2) {
    const int32_t bound =
        static_cast<int32_t>(std::min<int64_t>(d, 1 + seq.size()));
    auto result = solver.Repair(bound);
    if (result.ok()) return std::move(result).value();
    DYCK_CHECK(result.status().IsBoundExceeded()) << result.status();
  }
}

}  // namespace dyck
