// The paper's deletion-only FPT algorithm: Theorem 26, O(n + d^6).
//
// Pipeline (paper §3.2):
//   1. Reduce the input to Property-19 form (Fact 18) — O(n), done once.
//   2. Build the pair oracle of Theorem 14 — O(n), done once, reused across
//      every d of the doubling driver.
//   3. Memoized recursion over contiguous subproblems S[p..q]:
//        Case 1 (single valley): one oracle query edit1(D_1, U_1).
//        Case 2 (a D_1 symbol aligns with a U_k symbol): enumerate the
//          split (i, j, r) of eq. (3); the pair term edit1(D'_1, U'_k)
//          comes from one wave table built per subproblem, the two middle
//          terms recurse. Candidates for i and j are limited to the
//          <= 20d+1 positions within height 10d of the subproblem's
//          maximum height (Fact 20's pruning).
//        Case 3 (no such pair / empty D_1 or U_k): split at valley
//          boundaries r (Lemma 24).
//      Each subproblem result is cached; every generated subproblem starts
//      or ends at a peak, bounding the memo at O(d^3) entries.
//
// Edit scripts are reconstructed from the memoized case choices; leaf pair
// alignments are re-expanded with WaveAlign (O(d^2) each).

#ifndef DYCKFIX_SRC_FPT_DELETION_H_
#define DYCKFIX_SRC_FPT_DELETION_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "src/alphabet/paren.h"
#include "src/core/edit_script.h"
#include "src/profile/reduce.h"
#include "src/util/statusor.h"

namespace dyck {

class RepairContext;

struct FptResult {
  int64_t distance = 0;
  EditScript script;
};

/// Which pair-distance backend the deletion recursion uses. The paper
/// develops the algorithm in three stages; exposing the middle one makes
/// the final improvement measurable (bench_ablation):
enum class DeletionOracleKind {
  /// Theorem 26: wave tables over the shared LCE index — O(d^2) per
  /// subproblem after one O(n) preprocessing.
  kWaveOracle,
  /// Theorem 25: a full quadratic DP table per subproblem — O(n^2) each,
  /// O(d^3 (n^2 + d^3)) total.
  kQuadraticTable,
};

/// Solver instance for one input sequence. Construction performs the O(n)
/// preprocessing; Distance/Repair may then be called with increasing bounds
/// (the doubling driver of §1.1) at poly(d) cost each.
class DeletionSolver {
 public:
  explicit DeletionSolver(
      ParenSpan seq,
      DeletionOracleKind oracle = DeletionOracleKind::kWaveOracle);

  /// Takes ownership of an already-computed Property-19 reduction (the
  /// pipeline's Profile/Reduce stage output) instead of reducing
  /// internally, so the input sequence is never re-read or copied.
  explicit DeletionSolver(
      Reduced reduced,
      DeletionOracleKind oracle = DeletionOracleKind::kWaveOracle);

  /// Zero-copy, zero-scratch construction: borrows `*reduced` (typically
  /// context->reduced()) and draws every piece of working memory — height
  /// profile, valley structure, wave frontiers, the DP memo's arena — from
  /// `*context`. Both must outlive the solver, and the context must not
  /// BeginDocument() while the solver lives.
  DeletionSolver(const Reduced* reduced, RepairContext* context,
                 DeletionOracleKind oracle = DeletionOracleKind::kWaveOracle);
  ~DeletionSolver();
  DeletionSolver(DeletionSolver&&) noexcept;
  DeletionSolver& operator=(DeletionSolver&&) noexcept;

  /// edit1(seq) if it is <= d; std::nullopt otherwise. O(d^6) after
  /// preprocessing.
  std::optional<int64_t> Distance(int32_t d);

  /// Distance plus an optimal deletion script (positions refer to the
  /// original constructor argument). BoundExceeded if edit1(seq) > d.
  StatusOr<FptResult> Repair(int32_t d);

  /// Length of the reduced (Property-19) sequence; exposed for tests.
  int64_t reduced_size() const;

  /// Number of memoized subproblems solved by the most recent
  /// Distance/Repair call. The paper bounds this by O(d^3) independently
  /// of n; tests and benchmarks verify that shape.
  int64_t last_subproblem_count() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience driver: exact edit1(seq) via d-doubling (§1.1's note),
/// never failing. O(n + d^6).
int64_t FptDeletionDistance(const ParenSeq& seq);

/// Convenience driver with script reconstruction.
FptResult FptDeletionRepair(const ParenSeq& seq);

}  // namespace dyck

#endif  // DYCKFIX_SRC_FPT_DELETION_H_
