// The preprocessing + query oracle of Theorems 14 and 34.
//
// One linear-time preprocessing over the whole input builds an LCE index on
// C = U(S) . rev(U(S)). Afterwards, for any opening run X = S[x_begin,
// x_end) and closing run Y = S[y_begin, y_end) and any bound d, a wave
// table costing O(d^2) answers
//   edit(first r symbols of X, last c symbols of Y)
// point queries in O(log d) — exactly the queries Cases 1 and 2 of the
// deletion algorithm and Step 3 of the substitution algorithm make.
//
// The index translation uses that U(X) is a substring of U(S) and
// rev(U(Y')) for a suffix Y' of Y is a *prefix* of rev(U(Y)), which is a
// substring of rev(U(S)) starting at offset 2n - y_end.

#ifndef DYCKFIX_SRC_FPT_ORACLE_H_
#define DYCKFIX_SRC_FPT_ORACLE_H_

#include <cstdint>

#include "src/alphabet/paren.h"
#include "src/lms/banded.h"
#include "src/lms/wave.h"
#include "src/lms/wave_align.h"
#include "src/util/statusor.h"

namespace dyck {

/// Per-sequence oracle; build once, query O(d^3) times (Theorem 26's
/// accounting). Immutable after construction.
class PairOracle {
 public:
  /// O(n) preprocessing (up to the RMQ sparse table's log factor).
  /// `wave_pool` (optional) recycles the frontier buffers of every wave
  /// table the oracle builds; it must outlive the oracle. The solvers pass
  /// their RepairContext's pool so O(d^3) queries per document stop
  /// costing O(d^3) allocations.
  explicit PairOracle(const ParenSeq& seq,
                      ScratchPool<int64_t>* wave_pool = nullptr);

  /// Wave table for the pair (X, Y) = (S[x_begin, x_end),
  /// S[y_begin, y_end)). X must contain only opening and Y only closing
  /// parentheses. table.Point(r, c) is the distance between the first r
  /// symbols of X and the *last* c symbols of Y. O(max_d^2).
  WaveTable BuildTable(int64_t x_begin, int64_t x_end, int64_t y_begin,
                       int64_t y_end, int32_t max_d,
                       WaveMetric metric) const;

  /// Distance between X and Y if <= max_d. O(max_d^2).
  std::optional<int32_t> PairDistance(int64_t x_begin, int64_t x_end,
                                      int64_t y_begin, int64_t y_end,
                                      int32_t max_d,
                                      WaveMetric metric) const;

  /// Operation reconstruction for (X, Y); PairOp::a_pos indexes into X
  /// (add x_begin for sequence positions) and b_pos into rev(Y)
  /// (sequence position = y_end - 1 - b_pos). O(max_d^2) plus output.
  StatusOr<BandedResult> AlignPair(int64_t x_begin, int64_t x_end,
                                   int64_t y_begin, int64_t y_end,
                                   int32_t max_d, WaveMetric metric) const;

  int64_t n() const { return n_; }
  const LceIndex& index() const { return index_; }

 private:
  WaveParams MakeParams(int64_t x_begin, int64_t x_end, int64_t y_begin,
                        int64_t y_end, int32_t max_d,
                        WaveMetric metric) const;

  int64_t n_ = 0;
  LceIndex index_;
  ScratchPool<int64_t>* wave_pool_ = nullptr;
};

}  // namespace dyck

#endif  // DYCKFIX_SRC_FPT_ORACLE_H_
