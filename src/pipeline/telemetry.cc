#include "src/pipeline/telemetry.h"

#include <sstream>

#include "src/core/dyck.h"

namespace dyck {

namespace {

// Seconds rendered as microseconds with one decimal; stage timings live in
// the ns-to-ms range, so a fixed unit keeps rows comparable.
std::string Micros(double seconds) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  os << seconds * 1e6 << "us";
  return os.str();
}

void AppendStageSeconds(const double (&stage_seconds)[kNumPipelineStages],
                        double total, std::ostringstream* os) {
  for (int i = 0; i < kNumPipelineStages; ++i) {
    *os << " " << PipelineStageName(static_cast<PipelineStage>(i)) << "="
        << Micros(stage_seconds[i]);
  }
  *os << " total=" << Micros(total);
}

}  // namespace

const char* PipelineStageName(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kNormalize:
      return "normalize";
    case PipelineStage::kProfileReduce:
      return "reduce";
    case PipelineStage::kSelect:
      return "select";
    case PipelineStage::kSolve:
      return "solve";
    case PipelineStage::kMaterialize:
      return "materialize";
  }
  return "unknown";
}

// telemetry.h only forward-declares Algorithm; verify its enumerator count
// guess here, where the real enum is visible.
static_assert(static_cast<int>(Algorithm::kApprox) + 1 == kNumAlgorithms,
              "kNumAlgorithms out of sync with enum Algorithm");

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kAuto:
      return "auto";
    case Algorithm::kFpt:
      return "fpt";
    case Algorithm::kCubic:
      return "cubic";
    case Algorithm::kBranching:
      return "branching";
    case Algorithm::kBanded:
      return "banded";
    case Algorithm::kGreedy:
      return "greedy";
    case Algorithm::kApprox:
      return "approx";
  }
  return "unknown";
}

double RepairTelemetry::TotalSeconds() const {
  double total = 0;
  for (const double s : stage_seconds) total += s;
  return total;
}

std::string RepairTelemetry::ToString() const {
  std::ostringstream os;
  os << "algorithm="
     << (balanced_fast_path ? "none(balanced)"
                            : AlgorithmName(chosen_algorithm));
  if (!solver_name.empty()) os << " solver=" << solver_name;
  if (d_upper_bound >= 0) {
    os << " planner=" << planner_choice << " d_hint=" << d_upper_bound
       << " planned=" << Micros(planned_cost);
  }
  os << " iterations=" << doubling_iterations << " bound=" << solve_bound
     << " reduced=";
  if (reduced_length >= 0) {
    os << reduced_length << "/" << input_length;
  } else {
    os << "skipped";
  }
  os << " subproblems=" << subproblems << " copies=" << seq_copies
     << " allocs=" << seq_allocations;
  if (degraded) {
    os << " degraded=1 trip=" << budget_checkpoint
       << " lower_bound=" << exact_lower_bound;
  } else if (!budget_checkpoint.empty()) {
    os << " trip=" << budget_checkpoint;
  }
  if (certified_factor != 1.0) {
    if (certified_factor > 0.0) {
      std::ostringstream factor;
      factor.setf(std::ios::fixed);
      factor.precision(2);
      factor << certified_factor;
      os << " factor=" << factor.str();
      if (!degraded) os << " lower_bound=" << exact_lower_bound;
    } else {
      os << " factor=uncertified";
    }
  }
  if (budget_steps > 0) os << " steps=" << budget_steps;
  if (arena_resets > 0) {
    os << " arena=" << arena_high_water_bytes << "B resets=" << arena_resets
       << " heap_allocs=" << heap_allocs;
  }
  if (incremental || chunks_reused > 0 || chunks_recomputed > 0) {
    os << " incremental=" << (incremental ? 1 : 0)
       << " chunks=" << chunks_reused << "r/" << chunks_recomputed << "c";
  }
  if (!simd_backend.empty()) os << " backend=" << simd_backend;
  AppendStageSeconds(stage_seconds, TotalSeconds(), &os);
  return os.str();
}

void TelemetryAggregate::Add(const RepairTelemetry& telemetry) {
  ++documents;
  for (int i = 0; i < kNumPipelineStages; ++i) {
    stage_seconds[i] += telemetry.stage_seconds[i];
  }
  doubling_iterations += telemetry.doubling_iterations;
  seq_copies += telemetry.seq_copies;
  seq_allocations += telemetry.seq_allocations;
  subproblems += telemetry.subproblems;
  if (telemetry.reduced_length >= 0) {
    reduced_length_total += telemetry.reduced_length;
    reduced_input_total += telemetry.input_length;
  }
  const int index = static_cast<int>(telemetry.chosen_algorithm);
  if (index >= 0 && index < kNumAlgorithms) ++algorithm_counts[index];
  if (!telemetry.solver_name.empty()) {
    ++solver_documents[telemetry.solver_name];
  }
  if (telemetry.degraded) ++degraded_documents;
  if (telemetry.certified_factor > 1.0) {
    ++approx_documents;
    if (telemetry.certified_factor > max_certified_factor) {
      max_certified_factor = telemetry.certified_factor;
    }
  } else if (telemetry.certified_factor == 0.0) {
    ++uncertified_documents;
  }
  budget_steps += telemetry.budget_steps;
  if (telemetry.arena_high_water_bytes > arena_high_water_bytes) {
    arena_high_water_bytes = telemetry.arena_high_water_bytes;
  }
  if (telemetry.arena_resets > arena_resets) {
    arena_resets = telemetry.arena_resets;
  }
  heap_allocs += telemetry.heap_allocs;
  if (telemetry.incremental) ++incremental_documents;
  chunks_reused += telemetry.chunks_reused;
  chunks_recomputed += telemetry.chunks_recomputed;
}

void TelemetryAggregate::Merge(const TelemetryAggregate& other) {
  documents += other.documents;
  for (int i = 0; i < kNumPipelineStages; ++i) {
    stage_seconds[i] += other.stage_seconds[i];
  }
  doubling_iterations += other.doubling_iterations;
  seq_copies += other.seq_copies;
  seq_allocations += other.seq_allocations;
  subproblems += other.subproblems;
  reduced_length_total += other.reduced_length_total;
  reduced_input_total += other.reduced_input_total;
  for (int i = 0; i < kNumAlgorithms; ++i) {
    algorithm_counts[i] += other.algorithm_counts[i];
  }
  for (const auto& [name, count] : other.solver_documents) {
    solver_documents[name] += count;
  }
  degraded_documents += other.degraded_documents;
  approx_documents += other.approx_documents;
  uncertified_documents += other.uncertified_documents;
  if (other.max_certified_factor > max_certified_factor) {
    max_certified_factor = other.max_certified_factor;
  }
  budget_steps += other.budget_steps;
  if (other.arena_high_water_bytes > arena_high_water_bytes) {
    arena_high_water_bytes = other.arena_high_water_bytes;
  }
  if (other.arena_resets > arena_resets) arena_resets = other.arena_resets;
  heap_allocs += other.heap_allocs;
  incremental_documents += other.incremental_documents;
  chunks_reused += other.chunks_reused;
  chunks_recomputed += other.chunks_recomputed;
}

double TelemetryAggregate::TotalSeconds() const {
  double total = 0;
  for (const double s : stage_seconds) total += s;
  return total;
}

std::string TelemetryAggregate::ToString() const {
  std::ostringstream os;
  os << "docs=" << documents << " trivial=" << algorithm_counts[0];
  for (const Algorithm algorithm :
       {Algorithm::kFpt, Algorithm::kCubic, Algorithm::kBranching,
        Algorithm::kBanded, Algorithm::kGreedy, Algorithm::kApprox}) {
    os << " " << AlgorithmName(algorithm) << "="
       << algorithm_counts[static_cast<int>(algorithm)];
  }
  if (!solver_documents.empty()) {
    os << " solvers=";
    bool first = true;
    for (const auto& [name, count] : solver_documents) {
      if (!first) os << ",";
      first = false;
      os << name << ":" << count;
    }
  }
  os << " iterations=" << doubling_iterations << " reduced="
     << reduced_length_total << "/" << reduced_input_total
     << " subproblems=" << subproblems << " copies=" << seq_copies
     << " allocs=" << seq_allocations << " degraded=" << degraded_documents;
  if (approx_documents > 0 || uncertified_documents > 0) {
    std::ostringstream factor;
    factor.setf(std::ios::fixed);
    factor.precision(2);
    factor << max_certified_factor;
    os << " approx=" << approx_documents
       << " uncertified=" << uncertified_documents
       << " max_factor=" << factor.str();
  }
  if (budget_steps > 0) os << " steps=" << budget_steps;
  if (arena_resets > 0) {
    os << " arena=" << arena_high_water_bytes << "B resets=" << arena_resets
       << " heap_allocs=" << heap_allocs;
  }
  if (incremental_documents > 0 || chunks_reused > 0 ||
      chunks_recomputed > 0) {
    os << " incremental=" << incremental_documents
       << " chunks=" << chunks_reused << "r/" << chunks_recomputed << "c";
  }
  AppendStageSeconds(stage_seconds, TotalSeconds(), &os);
  return os.str();
}

std::string ServerStats::ToString() const {
  std::ostringstream os;
  os << "received=" << requests_received << " admitted=" << admitted
     << " ok=" << served_ok << " shed=" << shed_overloaded
     << " protocol_errors=" << protocol_errors << " faulted=" << faulted
     << " cancelled=" << cancelled << " degraded=" << degraded_pressure
     << " queue_hw=" << queue_depth_high_water << " in=" << bytes_in
     << "B out=" << bytes_out << "B";
  return os.str();
}

void ServerCounters::NoteQueueDepth(int64_t depth) {
  int64_t seen = queue_depth_high_water.load(std::memory_order_relaxed);
  while (depth > seen &&
         !queue_depth_high_water.compare_exchange_weak(
             seen, depth, std::memory_order_relaxed)) {
  }
}

ServerStats ServerCounters::Snapshot() const {
  ServerStats stats;
  stats.requests_received = requests_received.load(std::memory_order_relaxed);
  stats.admitted = admitted.load(std::memory_order_relaxed);
  stats.served_ok = served_ok.load(std::memory_order_relaxed);
  stats.shed_overloaded = shed_overloaded.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors.load(std::memory_order_relaxed);
  stats.faulted = faulted.load(std::memory_order_relaxed);
  stats.cancelled = cancelled.load(std::memory_order_relaxed);
  stats.degraded_pressure =
      degraded_pressure.load(std::memory_order_relaxed);
  stats.queue_depth_high_water =
      queue_depth_high_water.load(std::memory_order_relaxed);
  stats.bytes_in = bytes_in.load(std::memory_order_relaxed);
  stats.bytes_out = bytes_out.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace dyck
