#include "src/pipeline/planner.h"

#include <algorithm>

#include "src/baseline/greedy.h"
#include "src/core/context.h"

namespace dyck {

namespace {

// Predictions below this are inside measurement noise for a single
// document; prefer the paper's FPT default there instead of trusting
// sub-noise model deltas. Keeps tiny inputs on the historical (and
// test-pinned) kAuto -> fpt path.
constexpr double kSmallCostFloorSeconds = 200e-6;

}  // namespace

StatusOr<PlanDecision> PlanSolver(const SolveRequest& request,
                                  RepairContext& ctx) {
  const bool subs = request.use_substitutions;
  // Accuracy filter bound, also needed to pick the hint source below: a
  // solver is admissible when its certified factor is covered by the
  // options.
  const double max_factor = std::max(request.max_approximation_factor, 1.0);
  int64_t d_hint = request.d_hint;
  if (d_hint < 0) {
    // Bidirectional: greedy's cascade overestimates are direction-dependent,
    // and a loose hint inflates only the *predicted* FPT cost (the doubling
    // driver stops at the true distance regardless), so the tighter of the
    // two scans avoids ceding large low-d inputs to cubic. See greedy.h.
    //
    // Under exact-only selection the scan runs on the reduced sequence when
    // one is available: a greedy repair of the reduction is a valid repair,
    // so its cost still upper-bounds the distance (Fact 18), and the scan
    // drops from O(n) to O(reduced) — the difference between O(edit) and
    // O(n) replanning for RepairDoc. Approximation-admissible configs keep
    // the full-sequence scan because the certified-greedy rung interprets
    // the hint as a full-sequence greedy bound in its certificate check.
    const ParenSpan hint_view =
        (max_factor <= 1.0 && request.reduced != nullptr)
            ? ParenSpan(request.reduced->seq)
            : request.seq;
    d_hint = EstimateDistanceUpperBoundBidirectional(hint_view, subs,
                                                     &ctx.greedy_stack());
  }
  // Only unbalanced inputs reach the planner, so the distance is >= 1.
  d_hint = std::max<int64_t>(d_hint, 1);
  // A max_distance bound caps the doubling driver, and therefore the work
  // any solver will actually do, at max_distance + 1 probes' worth.
  if (request.max_distance >= 0) {
    d_hint = std::min(d_hint, request.max_distance + 1);
  }
  const int64_t n = static_cast<int64_t>(request.seq.size());
  // Exact solvers (factor 1.0) always pass the accuracy filter, so the
  // default max_approximation_factor == 1.0 reproduces exact-only
  // selection bit for bit; uncertified greedy (factor inf) never passes.
  // Applicable() gates that need the greedy bound (the certified-greedy
  // rung) read it from the annotated request instead of rescanning.
  SolveRequest hinted = request;
  hinted.d_hint = d_hint;

  const Solver* best = nullptr;
  double best_cost = 0;
  const Solver* fpt = nullptr;
  double fpt_cost = 0;
  for (const Solver* solver : SolverRegistry::Global().solvers()) {
    const SolverCaps& caps = solver->caps();
    if (!caps.planner_candidate || caps.approximation_factor > max_factor) {
      continue;
    }
    if (subs ? !caps.substitutions : !caps.deletions) continue;
    if (!solver->Applicable(hinted)) continue;
    const double cost = solver->PredictCost(n, d_hint);
    if (caps.family == Algorithm::kFpt && fpt == nullptr) {
      fpt = solver;
      fpt_cost = cost;
    }
    if (best == nullptr || cost < best_cost) {
      best = solver;
      best_cost = cost;
    }
  }
  if (fpt != nullptr && fpt_cost <= kSmallCostFloorSeconds) {
    best = fpt;
    best_cost = fpt_cost;
  }
  if (best == nullptr) {
    return Status::Internal(
        "no registered exact solver supports the requested metric");
  }
  return PlanDecision{best, best_cost, d_hint};
}

}  // namespace dyck
