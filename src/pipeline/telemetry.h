// Per-stage observability for the staged repair pipeline (src/pipeline).
//
// Every Repair() call fills a RepairTelemetry: wall time per pipeline
// stage, the d-doubling trajectory, the Property-19 reduction ratio, which
// algorithm actually ran, and copy/allocation counters proving the
// pipeline shuttles views (ParenSpan) rather than sequence copies between
// stages. The struct rides on RepairResult through every layer — the batch
// runtime aggregates it across workers (TelemetryAggregate), the C API
// exposes it via dyckfix_last_telemetry, and the CLI prints it under
// --stats — so any future perf change is measurable against a stage-level
// baseline.
//
// This header is standalone (no core/ includes) so core/dyck.h can embed
// RepairTelemetry in RepairResult without a cycle.

#ifndef DYCKFIX_SRC_PIPELINE_TELEMETRY_H_
#define DYCKFIX_SRC_PIPELINE_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

namespace dyck {

// Defined in core/dyck.h; opaque here to keep the layering acyclic.
enum class Algorithm : int;

/// The five stages of the single-document repair pipeline, in execution
/// order. See src/pipeline/pipeline.h for what each stage does and
/// DESIGN.md for the mapping to paper sections.
enum class PipelineStage : int {
  /// Input inspection: the linear balance scan (Definition 3 stack parse).
  kNormalize = 0,
  /// Property-19 reduction (Fact 18) + the zero-cost pair alignment; run
  /// only for paths that consume it (FPT solvers, balanced fast path).
  kProfileReduce = 1,
  /// Algorithm selection: resolving Algorithm::kAuto.
  kSelect = 2,
  /// The solver itself, including the d-doubling driver (§1.1).
  kSolve = 3,
  /// Script finalization: preserve-content transform + ApplyScript.
  kMaterialize = 4,
};

inline constexpr int kNumPipelineStages = 5;

/// Short lowercase stage name ("normalize", "reduce", ...), for logs and
/// the CLI --stats rendering.
const char* PipelineStageName(PipelineStage stage);

/// Lowercase name of an Algorithm value ("auto", "fpt", ...).
const char* AlgorithmName(Algorithm algorithm);

/// Number of Algorithm enumerators (telemetry.cc static_asserts this
/// against the real enum in core/dyck.h, which is opaque here).
inline constexpr int kNumAlgorithms = 7;

/// Observability record of one Repair() pipeline run.
struct RepairTelemetry {
  /// Wall seconds per stage, indexed by PipelineStage.
  double stage_seconds[kNumPipelineStages] = {};
  /// Probes issued by the d-doubling driver (0 when no driver ran: cubic,
  /// or the balanced fast path).
  int32_t doubling_iterations = 0;
  /// The bound d at which the doubling driver succeeded; -1 if no driver
  /// ran or the last probe failed.
  int64_t solve_bound = -1;
  /// Symbols in the input sequence.
  int64_t input_length = 0;
  /// Length of the Property-19 reduced sequence; -1 when the reduction
  /// stage was skipped (cubic / branching operate on the raw input).
  int64_t reduced_length = -1;
  /// Memoized subproblems solved by the FPT solver's last probe; 0 for
  /// non-FPT paths. The paper bounds this by poly(d) independently of n.
  int64_t subproblems = 0;
  /// The algorithm that actually produced the result. For kAuto options
  /// this is the resolved choice; Algorithm::kAuto (0) only when the
  /// balanced fast path answered without running any solver.
  Algorithm chosen_algorithm = static_cast<Algorithm>(0);
  /// True when the input was already balanced and kAuto short-circuited.
  bool balanced_fast_path = false;
  /// Registry name of the solver that produced the result ("fpt",
  /// "cubic", "banded", ...); empty on the balanced fast path and the
  /// trivial path, where no solver ran.
  std::string solver_name;
  /// The planner's pick under kAuto (equal to solver_name unless a budget
  /// later degraded the run to greedy); empty for forced selection, where
  /// the planner never ran.
  std::string planner_choice;
  /// The cost model's predicted wall seconds for the planner's pick; -1
  /// when the planner did not run.
  double planned_cost = -1;
  /// The greedy-scan distance upper bound the planner fed into the cost
  /// models (>= the true distance); -1 when the planner did not run.
  int64_t d_upper_bound = -1;
  /// Full-sequence ParenSeq copies made *between* stages. The pipeline
  /// contract is zero — stages hand each other ParenSpan views — and a
  /// test asserts it; any future stage that must copy goes through
  /// pipeline-internal helpers that bump this.
  int64_t seq_copies = 0;
  /// Sequences the pipeline materialized on purpose: the reduced sequence
  /// (bounded by the reduction ratio) and the repaired output.
  int64_t seq_allocations = 0;
  /// True when an execution budget tripped and the greedy fallback
  /// produced this result (RepairResult::degraded mirrors it).
  bool degraded = false;
  /// Name of the budget checkpoint that tripped first ("fpt.deletion.
  /// solve", "pipeline.doubling", ...); empty when no budget tripped.
  std::string budget_checkpoint;
  /// StatusCode (as int) of the budget trip: kDeadlineExceeded,
  /// kResourceExhausted, or kCancelled; 0 (kOk) when no budget tripped.
  int budget_trip_code = 0;
  /// Cooperative work steps the budget counted (0 without a budget).
  int64_t budget_steps = 0;
  /// Best known lower bound on the exact distance when the result is not
  /// exact (degraded, or produced by a certified approximate solver): the
  /// larger of the untyped Dyck-1 relaxation bound and the largest
  /// doubling bound proven exceeded plus one (>= 1, since only unbalanced
  /// inputs reach a solver). `distance - exact_lower_bound` bounds the
  /// approximate/exact gap. -1 when the distance is exact.
  int64_t exact_lower_bound = -1;
  /// Accuracy of this result. 1.0: exact. Values in (1.0, inf): a
  /// *certified* approximation — distance <= certified_factor * exact is
  /// proven (the realized ratio distance / exact_lower_bound, which is at
  /// most the serving solver's SolverCaps::approximation_factor). 0.0:
  /// uncertified (the plain greedy solver, or a budget trip the
  /// kApproximate ladder could not certify) — the distance is an upper
  /// bound with no multiplicative guarantee.
  double certified_factor = 1.0;
  /// High-water mark (bytes) of the RepairContext arena across the
  /// context's lifetime; 0 when the repair ran without arena scratch.
  int64_t arena_high_water_bytes = 0;
  /// Times the context's arena was reset (== documents the context has
  /// started, counting this one). Values > 1 prove context reuse.
  int64_t arena_resets = 0;
  /// Heap blocks the arena fetched so far; a steady value across
  /// documents proves steady-state zero-allocation scratch.
  int64_t heap_allocs = 0;
  /// True when this result was served by RepairDoc from incrementally
  /// maintained chunk summaries (no full rescan of the document); false
  /// for eager runs and for doc repairs that fell back to a full rebuild.
  bool incremental = false;
  /// Chunk summaries reused as-is from the doc's stage cache (clean at
  /// repair time). 0 for eager runs.
  int64_t chunks_reused = 0;
  /// Chunk summaries recomputed because a splice dirtied them (or the
  /// whole document on a fallback rebuild). 0 for eager runs.
  int64_t chunks_recomputed = 0;
  /// Active vector-kernel backend ("scalar", "sse2", "avx2", "neon") the
  /// span kernels dispatched to during this repair (src/simd). Adaptive
  /// drivers may still route individual small or run-heavy spans to the
  /// scalar path; results are byte-identical either way.
  std::string simd_backend;

  double TotalSeconds() const;

  /// One-line human-readable rendering, e.g.
  /// "algorithm=fpt iterations=2 bound=2 reduced=6/128 copies=0
  ///  normalize=1.2us reduce=0.8us select=0.1us solve=40.5us
  ///  materialize=2.2us total=44.8us".
  std::string ToString() const;
};

/// Sum of RepairTelemetry records across the documents of a batch.
/// Accumulated by the submitting thread after the workers join (see
/// runtime::BatchRepairEngine::RepairAll), so no synchronization is needed
/// and the totals are deterministic for a given result set.
struct TelemetryAggregate {
  int64_t documents = 0;
  double stage_seconds[kNumPipelineStages] = {};
  int64_t doubling_iterations = 0;
  int64_t seq_copies = 0;
  int64_t seq_allocations = 0;
  int64_t subproblems = 0;
  /// Sum of input/reduced lengths over documents whose reduction ran
  /// (reduced_length >= 0), giving the corpus-level reduction ratio.
  int64_t reduced_length_total = 0;
  int64_t reduced_input_total = 0;
  /// Documents per resolved algorithm, indexed by Algorithm's enumerator
  /// value (kAuto counts the balanced fast path).
  int64_t algorithm_counts[kNumAlgorithms] = {};
  /// Documents per registry solver name (finer-grained than the family
  /// buckets above, e.g. "fpt-deletion" vs "fpt-substitution").
  std::map<std::string, int64_t> solver_documents;
  /// Documents whose budget tripped and were served by the greedy
  /// fallback (DegradePolicy::kGreedy or the uncertified end of
  /// kApproximate).
  int64_t degraded_documents = 0;
  /// Documents served with a certified approximation (certified_factor in
  /// (1.0, inf)); exact documents (1.0) are not counted.
  int64_t approx_documents = 0;
  /// Documents served with no accuracy certificate at all
  /// (certified_factor == 0.0): forced greedy, or uncertifiable degrades.
  int64_t uncertified_documents = 0;
  /// Largest certified_factor over the batch's approximate documents; 0
  /// when every document was exact or uncertified.
  double max_certified_factor = 0.0;
  /// Total cooperative work steps across documents that ran a budget.
  int64_t budget_steps = 0;
  /// Largest per-context arena high-water mark observed in the batch.
  int64_t arena_high_water_bytes = 0;
  /// Largest per-context reset count observed (documents served by the
  /// busiest context — reuse shows up as values well above 1).
  int64_t arena_resets = 0;
  /// Total arena heap-block fetches across documents; flat after warmup.
  int64_t heap_allocs = 0;
  /// Documents served incrementally from a RepairDoc stage cache.
  int64_t incremental_documents = 0;
  /// Chunk summaries reused / recomputed across documents (RepairDoc).
  int64_t chunks_reused = 0;
  int64_t chunks_recomputed = 0;

  void Add(const RepairTelemetry& telemetry);
  void Merge(const TelemetryAggregate& other);

  double TotalSeconds() const;

  /// One-line rendering of the totals, e.g.
  /// "docs=48 trivial=12 fpt=36 cubic=0 branching=0 iterations=80
  ///  copies=0 normalize=... total=...".
  std::string ToString() const;
};

/// Point-in-time copy of the serving daemon's counters (see ServerCounters
/// below). Plain integers; safe to format, compare, and diff in tests.
struct ServerStats {
  /// Frames that parsed into a request of any verb.
  int64_t requests_received = 0;
  /// Repair requests that passed admission control (queued or ran).
  int64_t admitted = 0;
  /// Requests answered with an ok response.
  int64_t served_ok = 0;
  /// Repair requests refused with a typed OVERLOADED response because the
  /// queue was at capacity.
  int64_t shed_overloaded = 0;
  /// Frames rejected before reaching a verb: malformed headers, bad
  /// key=value fields, oversized payloads, framing violations.
  int64_t protocol_errors = 0;
  /// Admitted requests answered with an err response (solver fault,
  /// budget trip under DegradePolicy::kFail, injected fault).
  int64_t faulted = 0;
  /// Admitted requests dropped by shutdown or session close before a
  /// worker picked them up.
  int64_t cancelled = 0;
  /// Requests served below the exact tier because queue pressure moved
  /// the degrade ladder (the response still carries certified_factor).
  int64_t degraded_pressure = 0;
  /// Deepest admission queue observed across the server's lifetime.
  int64_t queue_depth_high_water = 0;
  /// Payload + header bytes consumed from / written to sessions.
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;

  /// One-line rendering: "received=120 admitted=100 ok=96 shed=20
  /// protocol_errors=0 faulted=4 cancelled=0 degraded=12 queue_hw=64
  /// in=81920B out=40960B".
  std::string ToString() const;
};

/// Monotonic lifetime counters for the serving daemon (src/server).
/// Incremented concurrently by session threads (framing, admission) and
/// pool workers (completion), so every field is a relaxed atomic —
/// counters are independent and monotone, and readers only want totals,
/// so no ordering beyond atomicity is needed. Snapshot() copies the
/// fields into a plain ServerStats; the copy is per-field consistent,
/// not a cross-field transaction (a snapshot taken mid-request can show
/// admitted == served_ok + 1).
struct ServerCounters {
  std::atomic<int64_t> requests_received{0};
  std::atomic<int64_t> admitted{0};
  std::atomic<int64_t> served_ok{0};
  std::atomic<int64_t> shed_overloaded{0};
  std::atomic<int64_t> protocol_errors{0};
  std::atomic<int64_t> faulted{0};
  std::atomic<int64_t> cancelled{0};
  std::atomic<int64_t> degraded_pressure{0};
  std::atomic<int64_t> queue_depth_high_water{0};
  std::atomic<int64_t> bytes_in{0};
  std::atomic<int64_t> bytes_out{0};

  /// Raises queue_depth_high_water to `depth` if it is a new maximum.
  void NoteQueueDepth(int64_t depth);

  ServerStats Snapshot() const;
};

}  // namespace dyck

#endif  // DYCKFIX_SRC_PIPELINE_TELEMETRY_H_
