#include "src/pipeline/pipeline.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <string>
#include <utility>

#include "src/baseline/branching.h"
#include "src/baseline/cubic.h"
#include "src/baseline/greedy.h"
#include "src/core/context.h"
#include "src/core/insertion_repair.h"
#include "src/fpt/deletion.h"
#include "src/fpt/substitution.h"
#include "src/profile/reduce.h"
#include "src/util/arena.h"
#include "src/util/budget.h"
#include "src/util/logging.h"

namespace dyck {
namespace pipeline {

namespace {

bool UseSubstitutions(Metric metric) {
  return metric == Metric::kDeletionsAndSubstitutions;
}

/// Attributes wall time to pipeline stages. Exactly one stage is open at a
/// time; Start() closes the previous one, so the per-stage seconds
/// partition the whole Run() call.
class StageTimer {
 public:
  explicit StageTimer(RepairTelemetry* telemetry) : telemetry_(telemetry) {}
  ~StageTimer() { Stop(); }

  void Start(PipelineStage stage) {
    Stop();
    current_ = stage;
    running_ = true;
    start_ = std::chrono::steady_clock::now();
  }

  void Stop() {
    if (!running_) return;
    telemetry_->stage_seconds[static_cast<int>(current_)] +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    running_ = false;
  }

 private:
  RepairTelemetry* telemetry_;
  PipelineStage current_ = PipelineStage::kNormalize;
  bool running_ = false;
  std::chrono::steady_clock::time_point start_;
};

// Doubling driver over a script-producing probe. `probe(d)` returns
// BoundExceeded to request a larger d. Every probe is one telemetry
// iteration; the bound that finally succeeded is recorded as solve_bound.
// Each completed-but-exceeded probe proves distance > bound, which the
// degraded path reports as exact_lower_bound. The per-probe checkpoint
// bounds how long a runaway doubling trajectory survives a tripped budget.
template <typename Probe>
StatusOr<FptResult> DoublingRepair(int64_t cap, int64_t max_distance,
                                   RepairTelemetry* telemetry, Probe probe) {
  for (int64_t d = 1;; d *= 2) {
    BudgetCheckpoint("pipeline.doubling");
    const int64_t bound =
        max_distance >= 0 ? std::min(d, max_distance) : std::min(d, cap);
    ++telemetry->doubling_iterations;
    auto result = probe(static_cast<int32_t>(bound));
    if (result.ok()) {
      telemetry->solve_bound = bound;
      return result;
    }
    if (!result.status().IsBoundExceeded()) return result.status();
    // The probe ran to completion, so distance > bound is proven.
    telemetry->exact_lower_bound =
        std::max(telemetry->exact_lower_bound, bound + 1);
    if (max_distance >= 0 && bound >= max_distance) return result.status();
    if (bound >= cap) {
      return Status::Internal("doubling repair exceeded the trivial cap");
    }
  }
}

// The five stages, minus budget handling (RunInto() below owns that).
// `out` is caller-owned so the telemetry written by StageTimer survives a
// budget unwind mid-stage. All scratch — balance stack, reduction output,
// height profile, valley structure, wave frontiers, FPT memo arena — comes
// from `ctx`, which RunInto has already reset for this document.
Status RunStaged(const ParenSeq& seq, const Options& options,
                 RepairContext& ctx, RepairResult* outp) {
  const ParenSpan view(seq);
  const bool subs = UseSubstitutions(options.metric);
  const int64_t cap = static_cast<int64_t>(seq.size()) + 1;

  RepairResult& out = *outp;
  RepairTelemetry& telemetry = out.telemetry;
  telemetry.input_length = static_cast<int64_t>(seq.size());
  StageTimer timer(&telemetry);

  // Stage 1 — Normalize: the linear stack parse. Its balance verdict
  // drives both the reduction policy and kAuto selection.
  timer.Start(PipelineStage::kNormalize);
  const bool balanced = IsBalanced(view, &ctx.type_stack());
  timer.Stop();

  // Stage 2 — Profile/Reduce (Fact 18 / Property 19). Only the consumers
  // that semantically operate on the reduced sequence get one: the FPT
  // solvers (which borrow it from the context) and the balanced fast path
  // (which needs just the zero-cost pair alignment — no reduced sequence
  // is materialized for it). Cubic and branching produce scripts against
  // raw input positions, so reduction is skipped for them, not discarded.
  const bool wants_reduction =
      options.algorithm == Algorithm::kFpt ||
      (options.algorithm == Algorithm::kAuto && !balanced);
  Reduced& reduced = ctx.reduced();
  timer.Start(PipelineStage::kProfileReduce);
  if (wants_reduction) {
    Reduce(view, &reduced);
    telemetry.reduced_length = static_cast<int64_t>(reduced.seq.size());
    ++telemetry.seq_allocations;  // the reduced sequence itself
  } else if (options.algorithm == Algorithm::kAuto && balanced) {
    AppendMatchedPairs(view, &out.script.aligned_pairs, &ctx.index_stack());
    telemetry.reduced_length = 0;  // balanced input reduces to empty
  }
  timer.Stop();

  // Stage 3 — Select: resolve kAuto. Balanced inputs need no solver at
  // all; everything else goes to the paper's FPT algorithms.
  timer.Start(PipelineStage::kSelect);
  Algorithm algorithm = options.algorithm;
  bool trivial = false;
  if (algorithm == Algorithm::kAuto) {
    if (balanced) {
      trivial = true;
      telemetry.balanced_fast_path = true;
    } else {
      algorithm = Algorithm::kFpt;
    }
  }
  telemetry.chosen_algorithm = trivial ? Algorithm::kAuto : algorithm;
  timer.Stop();

  if (trivial) {
    // Stage 5 — Materialize (Solve is a no-op): the input is its own
    // repair; the stage-2 alignment becomes the full arc diagram.
    timer.Start(PipelineStage::kMaterialize);
    out.repaired = seq;
    ++telemetry.seq_allocations;  // the output copy
    out.script.Normalize();
    timer.Stop();
    return Status::OK();
  }

  // Stage 4 — Solve: the chosen algorithm, under the d-doubling driver of
  // §1.1 where the solver supports bounded probes.
  timer.Start(PipelineStage::kSolve);
  switch (algorithm) {
    case Algorithm::kFpt: {
      StatusOr<FptResult> result = [&]() -> StatusOr<FptResult> {
        if (subs) {
          SubstitutionSolver solver(&reduced, &ctx);
          auto repaired = DoublingRepair(
              cap, options.max_distance, &telemetry,
              [&](int32_t d) { return solver.Repair(d); });
          telemetry.subproblems = solver.last_subproblem_count();
          return repaired;
        }
        DeletionSolver solver(&reduced, &ctx);
        auto repaired =
            DoublingRepair(cap, options.max_distance, &telemetry,
                           [&](int32_t d) { return solver.Repair(d); });
        telemetry.subproblems = solver.last_subproblem_count();
        return repaired;
      }();
      if (!result.ok()) return result.status();
      out.distance = result->distance;
      out.script = std::move(result->script);
      break;
    }
    case Algorithm::kCubic: {
      CubicResult result = CubicRepair(seq, subs, &ctx);
      if (options.max_distance >= 0 &&
          result.distance > options.max_distance) {
        return Status::BoundExceeded("distance exceeds max_distance " +
                                     std::to_string(options.max_distance));
      }
      out.distance = result.distance;
      out.script = std::move(result.script);
      break;
    }
    case Algorithm::kBranching: {
      StatusOr<FptResult> result =
          DoublingRepair(cap, options.max_distance, &telemetry,
                         [&](int32_t d) -> StatusOr<FptResult> {
                           DYCK_ASSIGN_OR_RETURN(
                               BranchingResult r,
                               BranchingRepair(seq, subs, d));
                           FptResult fpt;
                           fpt.distance = r.distance;
                           fpt.script = std::move(r.script);
                           return fpt;
                         });
      if (!result.ok()) return result.status();
      out.distance = result->distance;
      out.script = std::move(result->script);
      break;
    }
    case Algorithm::kAuto:
      return Status::Internal("unhandled algorithm selector");
  }
  timer.Stop();

  // Stage 5 — Materialize: turn the optimal script into the repaired
  // sequence (plus the content-preserving trade when requested).
  timer.Start(PipelineStage::kMaterialize);
  if (options.style == RepairStyle::kPreserveContent) {
    DYCK_ASSIGN_OR_RETURN(out.script,
                          PreserveContentScript(seq, out.script));
  }
  ApplyScript(seq, out.script, &out.repaired);
  ++telemetry.seq_allocations;  // the repaired output
  DYCK_DCHECK(IsBalanced(out.repaired, &ctx.type_stack()));
  timer.Stop();
  return Status::OK();
}

// Graceful degradation: the linear-time greedy baseline stands in for the
// interrupted exact solver, in the spirit of the Saha / Das–Kociumaka–Saha
// approximation line (see DESIGN.md). The answer is a valid balanced
// repair whose cost upper-bounds the exact distance; `max_distance` is
// deliberately not enforced here — a degraded answer is best-effort.
void DegradeToGreedy(const ParenSeq& seq, const Options& options,
                     RepairResult* out) {
  GreedyResult greedy = GreedyRepair(seq, UseSubstitutions(options.metric));
  out->distance = greedy.cost;
  out->script = std::move(greedy.script);
  if (options.style == RepairStyle::kPreserveContent) {
    StatusOr<EditScript> preserved = PreserveContentScript(seq, out->script);
    // On the (internal-bug-only) failure path keep the minimal-edit
    // script: still a valid repair, just not content-preserving.
    if (preserved.ok()) out->script = std::move(preserved).value();
  }
  ApplyScript(seq, out->script, &out->repaired);
  out->degraded = true;
  out->telemetry.degraded = true;
  // Any input that reached a solver is unbalanced, so distance >= 1; the
  // doubling driver may have proven a larger bound before the trip.
  out->telemetry.exact_lower_bound =
      std::max<int64_t>(out->telemetry.exact_lower_bound, 1);
  DYCK_DCHECK(IsBalanced(out->repaired));
}

// Capacity-retaining reset: clears every member of a (possibly reused)
// RepairResult without releasing the vectors' heap storage, so a caller
// that loops RunInto over documents with one long-lived result performs no
// result-side allocations after warmup.
void ResetResult(RepairResult* out) {
  out->repaired.clear();
  out->script.ops.clear();
  out->script.aligned_pairs.clear();
  out->distance = 0;
  out->degraded = false;
  out->telemetry = RepairTelemetry{};
}

// Stamps the context's arena counters into the result so --stats and
// BatchStats can report scratch-memory behaviour per document/batch.
void FillArenaTelemetry(const RepairContext& ctx, RepairTelemetry* t) {
  t->arena_high_water_bytes = ctx.arena().high_water_bytes();
  t->arena_resets = ctx.arena().resets();
  t->heap_allocs = static_cast<int64_t>(ctx.arena().block_allocs());
}

}  // namespace

Status RunInto(const ParenSeq& seq, const Options& options,
               RepairContext* context, RepairResult* out) {
  RepairContext& ctx =
      context != nullptr ? *context : RepairContext::CurrentThread();
  ctx.BeginDocument();
  ResetResult(out);

  // Budget wiring. An externally installed budget (the batch runtime's
  // per-document budget, which merges batch deadline + cancellation) wins;
  // otherwise one is built from the Options limits. The fault-injection
  // seam forces a budget so tests can trip checkpoints without real
  // timeouts. With neither, the solvers pay one thread-local read per
  // checkpoint and nothing else.
  Budget* budget = BudgetScope::Current();
  std::optional<Budget> own;
  std::optional<BudgetScope> scope;
  if (budget == nullptr) {
    const BudgetLimits limits{options.timeout_ms, options.max_work_steps,
                              options.max_memory_bytes};
    if (!limits.Unlimited() || BudgetFaultInjectionArmed()) {
      own.emplace(limits);
      scope.emplace(&*own);
      budget = &*own;
    }
  }

  if (budget == nullptr) {
    DYCK_RETURN_NOT_OK(RunStaged(seq, options, ctx, out));
    // A clean exact run reports no lower bound (the distance is exact).
    out->telemetry.exact_lower_bound = -1;
    FillArenaTelemetry(ctx, &out->telemetry);
    return Status::OK();
  }

  Status status;
  bool tripped = false;
  try {
    status = RunStaged(seq, options, ctx, out);
  } catch (const BudgetExceededError& error) {
    status = error.status;
    tripped = true;
  }
  out->telemetry.budget_steps = budget->steps();
  if (budget->exceeded()) {
    out->telemetry.budget_checkpoint = budget->trip_checkpoint();
    out->telemetry.budget_trip_code =
        static_cast<int>(budget->trip_status().code());
  }

  if (!tripped) {
    if (!status.ok()) return status;
    out->telemetry.exact_lower_bound = -1;
    FillArenaTelemetry(ctx, &out->telemetry);
    return Status::OK();
  }

  // Budget tripped mid-solve. Cancellation always fails (the caller asked
  // for the whole batch to stop); deadline/resource trips degrade to the
  // greedy baseline when the options ask for it.
  if (options.on_budget_exceeded == DegradePolicy::kFail ||
      status.IsCancelled()) {
    return status;
  }
  DegradeToGreedy(seq, options, out);
  FillArenaTelemetry(ctx, &out->telemetry);
  return Status::OK();
}

StatusOr<RepairResult> Run(const ParenSeq& seq, const Options& options,
                           RepairContext* context) {
  RepairResult out;
  DYCK_RETURN_NOT_OK(RunInto(seq, options, context, &out));
  return out;
}

}  // namespace pipeline
}  // namespace dyck
