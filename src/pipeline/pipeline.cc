#include "src/pipeline/pipeline.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <string>
#include <utility>

#include "src/approx/bidi_greedy.h"
#include "src/approx/lower_bound.h"
#include "src/baseline/greedy.h"
#include "src/core/context.h"
#include "src/core/insertion_repair.h"
#include "src/core/solver.h"
#include "src/pipeline/planner.h"
#include "src/profile/reduce.h"
#include "src/simd/simd.h"
#include "src/util/arena.h"
#include "src/util/budget.h"
#include "src/util/logging.h"

namespace dyck {
namespace pipeline {

namespace {

bool UseSubstitutions(Metric metric) {
  return metric == Metric::kDeletionsAndSubstitutions;
}

/// Attributes wall time to pipeline stages. Exactly one stage is open at a
/// time; Start() closes the previous one, so the per-stage seconds
/// partition the whole Run() call.
class StageTimer {
 public:
  explicit StageTimer(RepairTelemetry* telemetry) : telemetry_(telemetry) {}
  ~StageTimer() { Stop(); }

  void Start(PipelineStage stage) {
    Stop();
    current_ = stage;
    running_ = true;
    start_ = std::chrono::steady_clock::now();
  }

  void Stop() {
    if (!running_) return;
    telemetry_->stage_seconds[static_cast<int>(current_)] +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    running_ = false;
  }

 private:
  RepairTelemetry* telemetry_;
  PipelineStage current_ = PipelineStage::kNormalize;
  bool running_ = false;
  std::chrono::steady_clock::time_point start_;
};

// Maps the Options' forced-selection fields onto a registry entry:
// Options::solver (a registry name) wins over Options::algorithm (an enum
// whose AlgorithmName is the registry name); both empty/kAuto means the
// planner decides. Unknown names fail with InvalidArgument naming them.
StatusOr<const Solver*> ResolveForcedSolver(const Options& options) {
  if (!options.solver.empty()) {
    const Solver* solver = SolverRegistry::Global().Find(options.solver);
    if (solver == nullptr) {
      return Status::InvalidArgument("unknown solver '" + options.solver +
                                     "'");
    }
    return solver;
  }
  if (options.algorithm == Algorithm::kAuto) {
    return static_cast<const Solver*>(nullptr);
  }
  const Solver* solver =
      SolverRegistry::Global().ForAlgorithm(options.algorithm);
  if (solver == nullptr) {
    return Status::Internal(
        std::string("no solver registered for algorithm '") +
        AlgorithmName(options.algorithm) + "'");
  }
  return solver;
}

// The five stages, minus budget handling (RunInto() below owns that).
// `out` is caller-owned so the telemetry written by StageTimer survives a
// budget unwind mid-stage. All scratch — balance stack, reduction output,
// height profile, valley structure, wave frontiers, FPT memo arena — comes
// from `ctx`, which RunInto has already reset for this document.
// When `art` is non-null, stages 1-2 are served from the caller's cached
// artifacts instead of scanning `seq` (see StageArtifacts in pipeline.h).
Status RunStaged(const ParenSeq& seq, const Options& options,
                 RepairContext& ctx, RepairResult* outp,
                 StageArtifacts* art) {
  const ParenSpan view(seq);
  const bool subs = UseSubstitutions(options.metric);
  const int64_t cap = static_cast<int64_t>(seq.size()) + 1;

  RepairResult& out = *outp;
  RepairTelemetry& telemetry = out.telemetry;
  telemetry.input_length = static_cast<int64_t>(seq.size());
  telemetry.simd_backend = simd::BackendName(simd::ActiveBackend());

  // Forced selection resolves before any stage runs: an unknown solver
  // name or an unsupported metric is an options error, not a solve error.
  DYCK_ASSIGN_OR_RETURN(const Solver* forced, ResolveForcedSolver(options));
  if (forced != nullptr) DYCK_RETURN_NOT_OK(forced->CheckMetric(subs));
  const bool is_auto = forced == nullptr;

  StageTimer timer(&telemetry);

  // Stage 1 — Normalize: the linear stack parse. Its balance verdict
  // drives both the reduction policy and kAuto selection. A caller with
  // cached artifacts already knows the verdict (empty merged residual).
  timer.Start(PipelineStage::kNormalize);
  const bool balanced =
      art != nullptr ? art->balanced : IsBalanced(view, &ctx.type_stack());
  timer.Stop();

  // Stage 2 — Profile/Reduce (Fact 18 / Property 19). Only the consumers
  // that semantically operate on the reduced sequence get one: forced
  // solvers that declare needs_reduced (they borrow it from the context),
  // the planner (which inspects the reduced shape, e.g. the banded
  // solver's single-peak test), and the balanced fast path (which needs
  // just the zero-cost pair alignment — no reduced sequence is
  // materialized for it). Cubic and branching produce scripts against raw
  // input positions, so reduction is skipped for them, not discarded.
  const bool wants_reduction =
      (forced != nullptr && forced->caps().needs_reduced) ||
      (is_auto && !balanced);
  Reduced& reduced = ctx.reduced();
  timer.Start(PipelineStage::kProfileReduce);
  if (art != nullptr) {
    if (wants_reduction) {
      telemetry.reduced_length =
          static_cast<int64_t>(art->reduced->seq.size());
    } else if (is_auto && balanced) {
      // For a balanced document the cached reduction's zero-cost pairs ARE
      // the full alignment AppendMatchedPairs would emit (empty under the
      // caller's omitted-pairs mode, where the caller assembles them
      // itself after the run).
      out.script.aligned_pairs.insert(out.script.aligned_pairs.end(),
                                      art->reduced->matched_pairs.begin(),
                                      art->reduced->matched_pairs.end());
      telemetry.reduced_length = 0;
    }
  } else if (wants_reduction) {
    Reduce(view, &reduced);
    telemetry.reduced_length = static_cast<int64_t>(reduced.seq.size());
    ++telemetry.seq_allocations;  // the reduced sequence itself
  } else if (is_auto && balanced) {
    AppendMatchedPairs(view, &out.script.aligned_pairs, &ctx.index_stack());
    telemetry.reduced_length = 0;  // balanced input reduces to empty
  }
  timer.Stop();

  SolveRequest request;
  request.seq = view;
  request.reduced =
      wants_reduction ? (art != nullptr ? art->reduced : &reduced) : nullptr;
  request.use_substitutions = subs;
  request.max_distance = options.max_distance;
  request.doubling_cap = cap;
  request.max_approximation_factor = options.max_approximation_factor;
  // The cached d-hint short-circuits the planner's greedy scan; forced
  // solvers never consumed one on the eager path, so it stays -1 there.
  if (art != nullptr && is_auto) request.d_hint = art->d_hint;

  // Stage 3 — Select: balanced inputs need no solver at all; a forced
  // solver is already resolved; everything else goes to the cost-model
  // planner.
  timer.Start(PipelineStage::kSelect);
  const Solver* solver = forced;
  bool trivial = false;
  if (is_auto) {
    if (balanced) {
      trivial = true;
      telemetry.balanced_fast_path = true;
    } else {
      StatusOr<PlanDecision> plan = PlanSolver(request, ctx);
      if (!plan.ok()) return plan.status();
      solver = plan->solver;
      telemetry.planner_choice = solver->name();
      telemetry.planned_cost = plan->predicted_cost;
      telemetry.d_upper_bound = plan->d_upper_bound;
    }
  }
  telemetry.chosen_algorithm =
      trivial ? Algorithm::kAuto : solver->caps().family;
  if (!trivial) telemetry.solver_name = solver->name();
  if (art != nullptr) art->served_by = trivial ? nullptr : solver;
  timer.Stop();

  if (trivial) {
    // Stage 5 — Materialize (Solve is a no-op): the input is its own
    // repair; the stage-2 alignment becomes the full arc diagram.
    timer.Start(PipelineStage::kMaterialize);
    out.repaired = seq;
    ++telemetry.seq_allocations;  // the output copy
    out.script.Normalize();
    timer.Stop();
    return Status::OK();
  }

  // Stage 4 — Solve: the selected registry entry, under the d-doubling
  // driver of §1.1 where the solver supports bounded probes.
  timer.Start(PipelineStage::kSolve);
  SolverResult result;
  DYCK_RETURN_NOT_OK(solver->Solve(request, ctx, &telemetry, &result));
  out.distance = result.distance;
  out.script = std::move(result.script);
  timer.Stop();

  // Stage 5 — Materialize: turn the optimal script into the repaired
  // sequence (plus the content-preserving trade when requested).
  timer.Start(PipelineStage::kMaterialize);
  if (options.style == RepairStyle::kPreserveContent) {
    DYCK_ASSIGN_OR_RETURN(out.script,
                          PreserveContentScript(seq, out.script));
  }
  if (art != nullptr && art->skip_materialize &&
      options.style == RepairStyle::kMinimalEdits) {
    // The caller materializes out.repaired itself (segmented copies around
    // the edit script) and owns the balance DCHECK.
    art->materialize_skipped = true;
  } else {
    ApplyScript(seq, out.script, &out.repaired);
    ++telemetry.seq_allocations;  // the repaired output
    DYCK_DCHECK(IsBalanced(out.repaired, &ctx.type_stack()));
  }
  timer.Stop();
  return Status::OK();
}

// Graceful degradation: the linear-time greedy baseline stands in for the
// interrupted exact solver, in the spirit of the Saha / Das–Kociumaka–Saha
// approximation line (see DESIGN.md). The answer is a valid balanced
// repair whose cost upper-bounds the exact distance; `max_distance` is
// deliberately not enforced here — a degraded answer is best-effort.
void DegradeToGreedy(const ParenSeq& seq, const Options& options,
                     RepairContext& ctx, RepairResult* out) {
  GreedyResult greedy = GreedyRepair(seq, UseSubstitutions(options.metric),
                                     &ctx.greedy_stack());
  out->distance = greedy.cost;
  out->script = std::move(greedy.script);
  if (options.style == RepairStyle::kPreserveContent) {
    StatusOr<EditScript> preserved = PreserveContentScript(seq, out->script);
    // On the (internal-bug-only) failure path keep the minimal-edit
    // script: still a valid repair, just not content-preserving.
    if (preserved.ok()) out->script = std::move(preserved).value();
  }
  ApplyScript(seq, out->script, &out->repaired);
  out->degraded = true;
  out->telemetry.degraded = true;
  // The greedy answer carries no accuracy certificate.
  out->telemetry.certified_factor = 0.0;
  // Any input that reached a solver is unbalanced, so distance >= 1; the
  // doubling driver may have proven a larger bound before the trip.
  out->telemetry.exact_lower_bound =
      std::max<int64_t>(out->telemetry.exact_lower_bound, 1);
  DYCK_DCHECK(IsBalanced(out->repaired));
}

// The kApproximate rung of the degrade ladder (kFail -> kApproximate ->
// kGreedy): the same linear-time fallback, but taken in the better of the
// two scan directions and paired with the untyped-relaxation lower bound,
// so the degraded answer carries an accuracy certificate whenever one
// exists. The rung certifies against max(Options::max_approximation_factor,
// 3.0) — the ladder never demands better accuracy from a degraded answer
// than the certified-greedy solver guarantees on its admissible inputs.
// When even that bound fails, the result falls through to the same
// uncertified shape kGreedy produces (certified_factor == 0).
void DegradeToApproximate(const ParenSeq& seq, const Options& options,
                          RepairContext& ctx, RepairResult* out) {
  const bool subs = UseSubstitutions(options.metric);
  GreedyResult greedy =
      GreedyRepairBestDirection(seq, subs, &ctx.greedy_stack());
  out->distance = greedy.cost;
  out->script = std::move(greedy.script);
  if (options.style == RepairStyle::kPreserveContent) {
    StatusOr<EditScript> preserved = PreserveContentScript(seq, out->script);
    if (preserved.ok()) out->script = std::move(preserved).value();
  }
  ApplyScript(seq, out->script, &out->repaired);
  out->degraded = true;
  out->telemetry.degraded = true;
  // The interrupted solver may have proven a doubling bound stronger than
  // the linear relaxation; the certificate uses the best of both.
  const int64_t lower = std::max({DyckRelaxationLowerBound(seq, subs),
                                  out->telemetry.exact_lower_bound,
                                  int64_t{1}});
  const double factor = std::max(options.max_approximation_factor, 3.0);
  const double realized =
      static_cast<double>(greedy.cost) / static_cast<double>(lower);
  if (realized <= factor) {
    out->telemetry.certified_factor = realized;
    out->telemetry.exact_lower_bound = lower;
  } else {
    out->telemetry.certified_factor = 0.0;
    out->telemetry.exact_lower_bound =
        std::max<int64_t>(out->telemetry.exact_lower_bound, 1);
  }
  DYCK_DCHECK(IsBalanced(out->repaired));
}

// Capacity-retaining reset: clears every member of a (possibly reused)
// RepairResult without releasing the vectors' heap storage, so a caller
// that loops RunInto over documents with one long-lived result performs no
// result-side allocations after warmup.
void ResetResult(RepairResult* out) {
  out->repaired.clear();
  out->script.ops.clear();
  out->script.aligned_pairs.clear();
  out->distance = 0;
  out->degraded = false;
  out->telemetry = RepairTelemetry{};
}

// Stamps the context's arena counters into the result so --stats and
// BatchStats can report scratch-memory behaviour per document/batch.
void FillArenaTelemetry(const RepairContext& ctx, RepairTelemetry* t) {
  t->arena_high_water_bytes = ctx.arena().high_water_bytes();
  t->arena_resets = ctx.arena().resets();
  t->heap_allocs = static_cast<int64_t>(ctx.arena().block_allocs());
}

}  // namespace

Status RunInto(const ParenSeq& seq, const Options& options,
               RepairContext* context, RepairResult* out) {
  return RunInto(seq, options, context, out, nullptr);
}

Status RunInto(const ParenSeq& seq, const Options& options,
               RepairContext* context, RepairResult* out,
               StageArtifacts* artifacts) {
  RepairContext& ctx =
      context != nullptr ? *context : RepairContext::CurrentThread();
  ctx.BeginDocument();
  ResetResult(out);
  if (artifacts != nullptr) {
    artifacts->served_by = nullptr;
    artifacts->materialize_skipped = false;
  }

  // Budget wiring. An externally installed budget (the batch runtime's
  // per-document budget, which merges batch deadline + cancellation) wins;
  // otherwise one is built from the Options limits. The fault-injection
  // seam forces a budget so tests can trip checkpoints without real
  // timeouts. With neither, the solvers pay one thread-local read per
  // checkpoint and nothing else.
  Budget* budget = BudgetScope::Current();
  std::optional<Budget> own;
  std::optional<BudgetScope> scope;
  if (budget == nullptr) {
    const BudgetLimits limits{options.timeout_ms, options.max_work_steps,
                              options.max_memory_bytes};
    if (!limits.Unlimited() || BudgetFaultInjectionArmed()) {
      own.emplace(limits);
      scope.emplace(&*own);
      budget = &*own;
    }
  }

  if (budget == nullptr) {
    DYCK_RETURN_NOT_OK(RunStaged(seq, options, ctx, out, artifacts));
    // A clean exact run reports no lower bound (the distance is exact);
    // certified approximate runs keep the bound their certificate proved.
    if (out->telemetry.certified_factor == 1.0) {
      out->telemetry.exact_lower_bound = -1;
    }
    FillArenaTelemetry(ctx, &out->telemetry);
    return Status::OK();
  }

  Status status;
  bool tripped = false;
  try {
    status = RunStaged(seq, options, ctx, out, artifacts);
  } catch (const BudgetExceededError& error) {
    status = error.status;
    tripped = true;
  }
  out->telemetry.budget_steps = budget->steps();
  if (budget->exceeded()) {
    out->telemetry.budget_checkpoint = budget->trip_checkpoint();
    out->telemetry.budget_trip_code =
        static_cast<int>(budget->trip_status().code());
  }

  if (!tripped) {
    if (!status.ok()) return status;
    if (out->telemetry.certified_factor == 1.0) {
      out->telemetry.exact_lower_bound = -1;
    }
    FillArenaTelemetry(ctx, &out->telemetry);
    return Status::OK();
  }

  // Budget tripped mid-solve. Cancellation always fails (the caller asked
  // for the whole batch to stop); deadline/resource trips degrade to the
  // greedy baseline when the options ask for it.
  if (options.on_budget_exceeded == DegradePolicy::kFail ||
      status.IsCancelled()) {
    return status;
  }
  if (artifacts != nullptr) {
    // Degraded answers are built from the raw sequence and arrive fully
    // materialized; nothing of the staged run's selection survives.
    artifacts->served_by = nullptr;
    artifacts->materialize_skipped = false;
  }
  if (options.on_budget_exceeded == DegradePolicy::kApproximate) {
    DegradeToApproximate(seq, options, ctx, out);
  } else {
    DegradeToGreedy(seq, options, ctx, out);
  }
  FillArenaTelemetry(ctx, &out->telemetry);
  return Status::OK();
}

StatusOr<RepairResult> Run(const ParenSeq& seq, const Options& options,
                           RepairContext* context) {
  RepairResult out;
  DYCK_RETURN_NOT_OK(RunInto(seq, options, context, &out));
  return out;
}

}  // namespace pipeline
}  // namespace dyck
