#include "src/pipeline/pipeline.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "src/baseline/branching.h"
#include "src/baseline/cubic.h"
#include "src/core/insertion_repair.h"
#include "src/fpt/deletion.h"
#include "src/fpt/substitution.h"
#include "src/profile/reduce.h"
#include "src/util/logging.h"

namespace dyck {
namespace pipeline {

namespace {

bool UseSubstitutions(Metric metric) {
  return metric == Metric::kDeletionsAndSubstitutions;
}

/// Attributes wall time to pipeline stages. Exactly one stage is open at a
/// time; Start() closes the previous one, so the per-stage seconds
/// partition the whole Run() call.
class StageTimer {
 public:
  explicit StageTimer(RepairTelemetry* telemetry) : telemetry_(telemetry) {}
  ~StageTimer() { Stop(); }

  void Start(PipelineStage stage) {
    Stop();
    current_ = stage;
    running_ = true;
    start_ = std::chrono::steady_clock::now();
  }

  void Stop() {
    if (!running_) return;
    telemetry_->stage_seconds[static_cast<int>(current_)] +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    running_ = false;
  }

 private:
  RepairTelemetry* telemetry_;
  PipelineStage current_ = PipelineStage::kNormalize;
  bool running_ = false;
  std::chrono::steady_clock::time_point start_;
};

// Doubling driver over a script-producing probe. `probe(d)` returns
// BoundExceeded to request a larger d. Every probe is one telemetry
// iteration; the bound that finally succeeded is recorded as solve_bound.
template <typename Probe>
StatusOr<FptResult> DoublingRepair(int64_t cap, int64_t max_distance,
                                   RepairTelemetry* telemetry, Probe probe) {
  for (int64_t d = 1;; d *= 2) {
    const int64_t bound =
        max_distance >= 0 ? std::min(d, max_distance) : std::min(d, cap);
    ++telemetry->doubling_iterations;
    auto result = probe(static_cast<int32_t>(bound));
    if (result.ok()) {
      telemetry->solve_bound = bound;
      return result;
    }
    if (!result.status().IsBoundExceeded()) return result.status();
    if (max_distance >= 0 && bound >= max_distance) return result.status();
    if (bound >= cap) {
      return Status::Internal("doubling repair exceeded the trivial cap");
    }
  }
}

}  // namespace

StatusOr<RepairResult> Run(const ParenSeq& seq, const Options& options) {
  const ParenSpan view(seq);
  const bool subs = UseSubstitutions(options.metric);
  const int64_t cap = static_cast<int64_t>(seq.size()) + 1;

  RepairResult out;
  RepairTelemetry& telemetry = out.telemetry;
  telemetry.input_length = static_cast<int64_t>(seq.size());
  StageTimer timer(&telemetry);

  // Stage 1 — Normalize: the linear stack parse. Its balance verdict
  // drives both the reduction policy and kAuto selection.
  timer.Start(PipelineStage::kNormalize);
  const bool balanced = IsBalanced(view);
  timer.Stop();

  // Stage 2 — Profile/Reduce (Fact 18 / Property 19). Only the consumers
  // that semantically operate on the reduced sequence get one: the FPT
  // solvers (which take it by move) and the balanced fast path (which
  // needs just the zero-cost pair alignment — no reduced sequence is
  // materialized for it). Cubic and branching produce scripts against raw
  // input positions, so reduction is skipped for them, not discarded.
  const bool wants_reduction =
      options.algorithm == Algorithm::kFpt ||
      (options.algorithm == Algorithm::kAuto && !balanced);
  Reduced reduced;
  timer.Start(PipelineStage::kProfileReduce);
  if (wants_reduction) {
    reduced = Reduce(view);
    telemetry.reduced_length = static_cast<int64_t>(reduced.seq.size());
    ++telemetry.seq_allocations;  // the reduced sequence itself
  } else if (options.algorithm == Algorithm::kAuto && balanced) {
    AppendMatchedPairs(view, &out.script.aligned_pairs);
    telemetry.reduced_length = 0;  // balanced input reduces to empty
  }
  timer.Stop();

  // Stage 3 — Select: resolve kAuto. Balanced inputs need no solver at
  // all; everything else goes to the paper's FPT algorithms.
  timer.Start(PipelineStage::kSelect);
  Algorithm algorithm = options.algorithm;
  bool trivial = false;
  if (algorithm == Algorithm::kAuto) {
    if (balanced) {
      trivial = true;
      telemetry.balanced_fast_path = true;
    } else {
      algorithm = Algorithm::kFpt;
    }
  }
  telemetry.chosen_algorithm = trivial ? Algorithm::kAuto : algorithm;
  timer.Stop();

  if (trivial) {
    // Stage 5 — Materialize (Solve is a no-op): the input is its own
    // repair; the stage-2 alignment becomes the full arc diagram.
    timer.Start(PipelineStage::kMaterialize);
    out.repaired = seq;
    ++telemetry.seq_allocations;  // the output copy
    out.script.Normalize();
    timer.Stop();
    return out;
  }

  // Stage 4 — Solve: the chosen algorithm, under the d-doubling driver of
  // §1.1 where the solver supports bounded probes.
  timer.Start(PipelineStage::kSolve);
  switch (algorithm) {
    case Algorithm::kFpt: {
      StatusOr<FptResult> result = [&]() -> StatusOr<FptResult> {
        if (subs) {
          SubstitutionSolver solver(std::move(reduced));
          auto repaired = DoublingRepair(
              cap, options.max_distance, &telemetry,
              [&](int32_t d) { return solver.Repair(d); });
          telemetry.subproblems = solver.last_subproblem_count();
          return repaired;
        }
        DeletionSolver solver(std::move(reduced));
        auto repaired =
            DoublingRepair(cap, options.max_distance, &telemetry,
                           [&](int32_t d) { return solver.Repair(d); });
        telemetry.subproblems = solver.last_subproblem_count();
        return repaired;
      }();
      if (!result.ok()) return result.status();
      out.distance = result->distance;
      out.script = std::move(result->script);
      break;
    }
    case Algorithm::kCubic: {
      CubicResult result = CubicRepair(seq, subs);
      if (options.max_distance >= 0 &&
          result.distance > options.max_distance) {
        return Status::BoundExceeded("distance exceeds max_distance " +
                                     std::to_string(options.max_distance));
      }
      out.distance = result.distance;
      out.script = std::move(result.script);
      break;
    }
    case Algorithm::kBranching: {
      StatusOr<FptResult> result =
          DoublingRepair(cap, options.max_distance, &telemetry,
                         [&](int32_t d) -> StatusOr<FptResult> {
                           DYCK_ASSIGN_OR_RETURN(
                               BranchingResult r,
                               BranchingRepair(seq, subs, d));
                           FptResult fpt;
                           fpt.distance = r.distance;
                           fpt.script = std::move(r.script);
                           return fpt;
                         });
      if (!result.ok()) return result.status();
      out.distance = result->distance;
      out.script = std::move(result->script);
      break;
    }
    case Algorithm::kAuto:
      return Status::Internal("unhandled algorithm selector");
  }
  timer.Stop();

  // Stage 5 — Materialize: turn the optimal script into the repaired
  // sequence (plus the content-preserving trade when requested).
  timer.Start(PipelineStage::kMaterialize);
  if (options.style == RepairStyle::kPreserveContent) {
    DYCK_ASSIGN_OR_RETURN(out.script,
                          PreserveContentScript(seq, out.script));
  }
  out.repaired = ApplyScript(seq, out.script);
  ++telemetry.seq_allocations;  // the repaired output
  DYCK_DCHECK(IsBalanced(out.repaired));
  timer.Stop();
  return out;
}

}  // namespace pipeline
}  // namespace dyck
