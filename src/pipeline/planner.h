// Cost-model planner: resolves Algorithm::kAuto against the SolverRegistry.
//
// The pipeline's Select stage used to hardcode "unbalanced -> kFpt". The
// planner instead derives a distance upper bound d from two linear greedy
// scans (EstimateDistanceUpperBoundBidirectional — forward and
// reversed-with-flipped-directions, taking the min; the true distance can
// only be smaller), asks every planner-candidate solver for
// PredictCost(n, d), and picks the cheapest applicable one whose
// certified accuracy covers Options::max_approximation_factor (with the
// default 1.0 that means exact solvers only; larger values admit the
// src/approx ladder — see DESIGN.md §5.11). The FPT solvers win almost
// everywhere (that is the paper's point), but on short high-d inputs the
// cubic DP's n^3 undercuts FPT's poly(d) — the measured crossover grid in
// BENCH_planner.json pins that the planner lands within 5% of the best
// forced choice on every row. See DESIGN.md §5.10 for the calibration
// methodology.
//
// Selection is deterministic: ties break toward registration order, and a
// small-cost floor keeps predictions below measurement noise from flapping
// — when the FPT candidate's predicted cost is under ~200us, it is chosen
// outright (at that scale every exact solver finishes "instantly" and the
// paper's default is the right answer).

#ifndef DYCKFIX_SRC_PIPELINE_PLANNER_H_
#define DYCKFIX_SRC_PIPELINE_PLANNER_H_

#include <cstdint>

#include "src/core/solver.h"
#include "src/util/statusor.h"

namespace dyck {

class RepairContext;

struct PlanDecision {
  const Solver* solver = nullptr;
  /// The winning solver's PredictCost(n, d_upper_bound), in seconds.
  double predicted_cost = 0;
  /// The greedy-scan distance upper bound fed to every cost model
  /// (clamped to max_distance + 1 when a bound is set).
  int64_t d_upper_bound = 0;
};

/// Picks the cheapest applicable exact solver for `request` from
/// SolverRegistry::Global(). The greedy estimate reuses
/// `ctx.greedy_stack()` and polls no budget checkpoints, so planning costs
/// at most two unbudgeted O(n) scans. Fails with Internal only if no registered
/// exact solver supports the metric (the built-in registry always has one).
StatusOr<PlanDecision> PlanSolver(const SolveRequest& request,
                                  RepairContext& ctx);

}  // namespace dyck

#endif  // DYCKFIX_SRC_PIPELINE_PLANNER_H_
