// The staged single-document repair pipeline.
//
// Repair() (core/dyck.h) used to be a monolithic dispatch that hid where
// the O(n + poly(d)) budget of Theorems 26/40 was spent. This module makes
// the paper's reduce-then-solve shape explicit as five stages:
//
//   1. Normalize    — the linear balance scan (Definition 3 stack parse).
//   2. ProfileReduce— Property-19 reduction (Fact 18), run only for the
//                     consumers that need it: solvers whose caps() declare
//                     needs_reduced borrow it from the context, the
//                     balanced fast path takes just the zero-cost pair
//                     alignment, and under kAuto it is always built so the
//                     planner can inspect the reduced shape. Cubic and
//                     branching solve the raw input, so the stage is a
//                     no-op when they are forced (reduction would relocate
//                     their script positions).
//   3. Select       — resolve the solver: a forced Options::solver /
//                     Options::algorithm maps to its registry entry
//                     (byte-identical to the pre-registry dispatch);
//                     kAuto goes to the cost-model planner
//                     (src/pipeline/planner.h), balanced inputs to the
//                     trivial path.
//   4. Solve        — Solver::Solve of the selected registry entry, under
//                     the d-doubling driver of §1.1 where the solver
//                     supports bounded probes.
//   5. Materialize  — preserve-content transform + ApplyScript.
//
// Stages exchange ParenSpan views and moved ownership, never sequence
// copies; RepairTelemetry records per-stage wall time, the doubling
// trajectory, the planner's decision, and copy counters, and a test pins
// seq_copies == 0.
//
// Run() with a forced algorithm is byte-identical to the dispatch it
// replaced: same scripts, same distances, same Status codes, for every
// Options combination.

#ifndef DYCKFIX_SRC_PIPELINE_PIPELINE_H_
#define DYCKFIX_SRC_PIPELINE_PIPELINE_H_

#include "src/core/dyck.h"

namespace dyck {

class RepairContext;
class Solver;
struct Reduced;

namespace pipeline {

/// Cached stage artifacts supplied by a caller that maintains the
/// Normalize / ProfileReduce results incrementally (core::RepairDoc's
/// chunked summaries). When passed to RunInto, stages 1-2 consume the
/// cached balance verdict and reduction instead of rescanning the
/// sequence, so the pipeline's cost drops to Select+Solve+Materialize —
/// byte-identical results by construction, since the artifacts are defined
/// to equal what the eager stages would compute.
struct StageArtifacts {
  // -- Inputs --
  /// Stage-1 verdict for `seq`.
  bool balanced = false;
  /// Stage-2 result: the Property-19 reduction of `seq`. Must outlive the
  /// call. Its matched_pairs may be legitimately empty even when pairs
  /// were dropped ("omitted-pairs mode"): the caller then assembles the
  /// final alignment itself, and must only do so for configurations where
  /// the serving solver's script verifiably lacks them (see RepairDoc).
  const Reduced* reduced = nullptr;
  /// Raw distance upper bound for the planner (pre-clamping), or -1 to let
  /// the planner compute its own from `reduced`. Ignored for forced
  /// solvers, which never consumed a hint on the eager path.
  int64_t d_hint = -1;
  /// Ask stage 5 to skip ApplyScript so the caller can materialize the
  /// repaired sequence itself (e.g. segmented copies around the edit).
  /// Honored only for RepairStyle::kMinimalEdits on the non-trivial path;
  /// check materialize_skipped.
  bool skip_materialize = false;

  // -- Outputs --
  /// The solver whose script the result carries; nullptr on the balanced
  /// trivial path or when the run degraded / failed before stage 4.
  const Solver* served_by = nullptr;
  /// True iff stage 5 honored skip_materialize and `out->repaired` was
  /// left empty for the caller to fill.
  bool materialize_skipped = false;
};

/// Runs the staged pipeline on `seq`. The result carries its
/// RepairTelemetry; on error the telemetry is lost with the result (batch
/// aggregation only sums successful documents).
///
/// Scratch memory comes from `context` when given, else from the calling
/// thread's ambient RepairContext (RepairContext::CurrentThread()), so
/// repeated calls on one thread reuse warm scratch automatically. The
/// context is reset (BeginDocument) at entry; callers must not hold
/// arena-backed state from a previous Run across this call.
StatusOr<RepairResult> Run(const ParenSeq& seq, const Options& options,
                           RepairContext* context = nullptr);

/// As Run, but writes into caller-owned `*out`, clearing and refilling its
/// members so their heap capacity is retained across documents. With a
/// reused context AND a reused result this is the zero-steady-state-
/// allocation entry point the batch runtime uses. On a non-OK return `*out`
/// holds whatever telemetry the partial run recorded.
Status RunInto(const ParenSeq& seq, const Options& options,
               RepairContext* context, RepairResult* out);

/// As RunInto, but with caller-cached stage artifacts: stages 1-2 are
/// served from `*artifacts` instead of rescanning `seq`. Budget wiring and
/// the degrade ladder are shared with the eager overload; degraded answers
/// ignore the artifacts entirely (the greedy fallbacks scan the raw
/// sequence) and always come back fully materialized.
Status RunInto(const ParenSeq& seq, const Options& options,
               RepairContext* context, RepairResult* out,
               StageArtifacts* artifacts);

}  // namespace pipeline
}  // namespace dyck

#endif  // DYCKFIX_SRC_PIPELINE_PIPELINE_H_
