// The staged single-document repair pipeline.
//
// Repair() (core/dyck.h) used to be a monolithic dispatch that hid where
// the O(n + poly(d)) budget of Theorems 26/40 was spent. This module makes
// the paper's reduce-then-solve shape explicit as five stages:
//
//   1. Normalize    — the linear balance scan (Definition 3 stack parse).
//   2. ProfileReduce— Property-19 reduction (Fact 18), run only for the
//                     consumers that need it: solvers whose caps() declare
//                     needs_reduced borrow it from the context, the
//                     balanced fast path takes just the zero-cost pair
//                     alignment, and under kAuto it is always built so the
//                     planner can inspect the reduced shape. Cubic and
//                     branching solve the raw input, so the stage is a
//                     no-op when they are forced (reduction would relocate
//                     their script positions).
//   3. Select       — resolve the solver: a forced Options::solver /
//                     Options::algorithm maps to its registry entry
//                     (byte-identical to the pre-registry dispatch);
//                     kAuto goes to the cost-model planner
//                     (src/pipeline/planner.h), balanced inputs to the
//                     trivial path.
//   4. Solve        — Solver::Solve of the selected registry entry, under
//                     the d-doubling driver of §1.1 where the solver
//                     supports bounded probes.
//   5. Materialize  — preserve-content transform + ApplyScript.
//
// Stages exchange ParenSpan views and moved ownership, never sequence
// copies; RepairTelemetry records per-stage wall time, the doubling
// trajectory, the planner's decision, and copy counters, and a test pins
// seq_copies == 0.
//
// Run() with a forced algorithm is byte-identical to the dispatch it
// replaced: same scripts, same distances, same Status codes, for every
// Options combination.

#ifndef DYCKFIX_SRC_PIPELINE_PIPELINE_H_
#define DYCKFIX_SRC_PIPELINE_PIPELINE_H_

#include "src/core/dyck.h"

namespace dyck {

class RepairContext;

namespace pipeline {

/// Runs the staged pipeline on `seq`. The result carries its
/// RepairTelemetry; on error the telemetry is lost with the result (batch
/// aggregation only sums successful documents).
///
/// Scratch memory comes from `context` when given, else from the calling
/// thread's ambient RepairContext (RepairContext::CurrentThread()), so
/// repeated calls on one thread reuse warm scratch automatically. The
/// context is reset (BeginDocument) at entry; callers must not hold
/// arena-backed state from a previous Run across this call.
StatusOr<RepairResult> Run(const ParenSeq& seq, const Options& options,
                           RepairContext* context = nullptr);

/// As Run, but writes into caller-owned `*out`, clearing and refilling its
/// members so their heap capacity is retained across documents. With a
/// reused context AND a reused result this is the zero-steady-state-
/// allocation entry point the batch runtime uses. On a non-OK return `*out`
/// holds whatever telemetry the partial run recorded.
Status RunInto(const ParenSeq& seq, const Options& options,
               RepairContext* context, RepairResult* out);

}  // namespace pipeline
}  // namespace dyck

#endif  // DYCKFIX_SRC_PIPELINE_PIPELINE_H_
