#include "src/gen/adversarial.h"

#include <random>

#include "src/util/logging.h"

namespace dyck {
namespace gen {

ParenSeq ManyValleys(int64_t valleys, int64_t depth) {
  ParenSeq seq;
  seq.reserve(2 * valleys * depth);
  for (int64_t v = 0; v < valleys; ++v) {
    for (int64_t i = 0; i < depth; ++i) seq.push_back(Paren::Open(0));
    for (int64_t i = 0; i < depth; ++i) seq.push_back(Paren::Close(1));
  }
  return seq;
}

ParenSeq MismatchedV(int64_t depth, int64_t errors, uint64_t seed) {
  DYCK_CHECK_LE(errors, depth);
  ParenSeq seq;
  seq.reserve(2 * depth);
  for (int64_t i = 0; i < depth; ++i) {
    seq.push_back(Paren::Open(static_cast<ParenType>(i % 2)));
  }
  // Mirror closings; plant `errors` retypes at distinct positions.
  std::vector<bool> flip(depth, false);
  std::mt19937_64 rng(seed);
  for (int64_t planted = 0; planted < errors;) {
    const int64_t at = static_cast<int64_t>(rng() % depth);
    if (!flip[at]) {
      flip[at] = true;
      ++planted;
    }
  }
  for (int64_t i = depth - 1; i >= 0; --i) {
    ParenType t = static_cast<ParenType>(i % 2);
    if (flip[i]) t = static_cast<ParenType>(2);  // a type never opened
    seq.push_back(Paren::Close(t));
  }
  return seq;
}

ParenSeq GreedyTrap(int64_t depth) {
  DYCK_CHECK_GE(depth, 1);
  ParenSeq seq;
  seq.reserve(2 * depth);
  for (int64_t i = 0; i < depth; ++i) {
    seq.push_back(Paren::Open(static_cast<ParenType>(i % 2)));
  }
  seq.push_back(Paren::Open(2));  // the spurious opener at the bottom
  for (int64_t i = depth - 1; i >= 1; --i) {
    seq.push_back(Paren::Close(static_cast<ParenType>(i % 2)));
  }
  // The outermost closer is omitted.
  return seq;
}

}  // namespace gen
}  // namespace dyck
