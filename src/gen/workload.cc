#include "src/gen/workload.h"

#include <random>
#include <vector>

#include "src/util/logging.h"

namespace dyck {
namespace gen {

ParenSeq RandomBalanced(const BalancedOptions& options, uint64_t seed) {
  DYCK_CHECK_GE(options.num_types, 1);
  const int64_t n = options.length - (options.length % 2);
  ParenSeq seq;
  seq.reserve(n);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int32_t> type_dist(0,
                                                   options.num_types - 1);
  switch (options.shape) {
    case Shape::kDeep: {
      std::vector<ParenType> stack;
      for (int64_t i = 0; i < n / 2; ++i) {
        const ParenType t = type_dist(rng);
        stack.push_back(t);
        seq.push_back(Paren::Open(t));
      }
      for (int64_t i = n / 2 - 1; i >= 0; --i) {
        seq.push_back(Paren::Close(stack[i]));
      }
      break;
    }
    case Shape::kFlat: {
      for (int64_t i = 0; i < n / 2; ++i) {
        const ParenType t = type_dist(rng);
        seq.push_back(Paren::Open(t));
        seq.push_back(Paren::Close(t));
      }
      break;
    }
    case Shape::kUniform: {
      std::vector<ParenType> stack;
      std::bernoulli_distribution coin(0.5);
      for (int64_t i = 0; i < n; ++i) {
        const int64_t remaining = n - i;
        const bool can_open =
            static_cast<int64_t>(stack.size()) < remaining;
        const bool can_close = !stack.empty();
        const bool open =
            can_open && (!can_close || coin(rng));
        if (open) {
          const ParenType t = type_dist(rng);
          stack.push_back(t);
          seq.push_back(Paren::Open(t));
        } else {
          seq.push_back(Paren::Close(stack.back()));
          stack.pop_back();
        }
      }
      break;
    }
  }
  DYCK_DCHECK(IsBalanced(seq));
  return seq;
}

CorruptedSequence Corrupt(const ParenSeq& seq,
                          const CorruptionOptions& options, uint64_t seed) {
  DYCK_CHECK_GE(options.num_types, 1);
  CorruptedSequence out;
  out.seq = seq;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int32_t> type_dist(0,
                                                   options.num_types - 1);
  std::uniform_int_distribution<int32_t> kind_dist(0, 3);
  for (int64_t e = 0; e < options.num_edits; ++e) {
    CorruptionKind kind = options.kind;
    if (kind == CorruptionKind::kMixed) {
      kind = static_cast<CorruptionKind>(kind_dist(rng));
    }
    const int64_t size = static_cast<int64_t>(out.seq.size());
    if (size == 0 && kind != CorruptionKind::kInsert) {
      kind = CorruptionKind::kInsert;
    }
    switch (kind) {
      case CorruptionKind::kDelete: {
        std::uniform_int_distribution<int64_t> pos_dist(0, size - 1);
        out.seq.erase(out.seq.begin() + pos_dist(rng));
        out.edit1_bound += 1;
        out.edit2_bound += 1;
        break;
      }
      case CorruptionKind::kInsert: {
        std::uniform_int_distribution<int64_t> pos_dist(0, size);
        const Paren p{type_dist(rng), rng() % 2 == 0};
        out.seq.insert(out.seq.begin() + pos_dist(rng), p);
        out.edit1_bound += 1;
        out.edit2_bound += 1;
        break;
      }
      case CorruptionKind::kFlipDirection: {
        std::uniform_int_distribution<int64_t> pos_dist(0, size - 1);
        out.seq[pos_dist(rng)].is_open ^= true;
        out.edit1_bound += 2;
        out.edit2_bound += 1;
        break;
      }
      case CorruptionKind::kFlipType: {
        std::uniform_int_distribution<int64_t> pos_dist(0, size - 1);
        Paren& p = out.seq[pos_dist(rng)];
        if (options.num_types > 1) {
          ParenType t = type_dist(rng);
          if (t == p.type) t = (t + 1) % options.num_types;
          p.type = t;
          out.edit1_bound += 2;
          out.edit2_bound += 1;
        }
        break;
      }
      case CorruptionKind::kMixed:
        break;  // resolved above
    }
  }
  return out;
}

}  // namespace gen
}  // namespace dyck
