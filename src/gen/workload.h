// Workload generation for tests and benchmarks.
//
// The paper reports no datasets (pure theory), so the evaluation harness
// manufactures them: random balanced sequences of controllable shape, then
// a controlled number of corruptions with a provable upper bound on the
// resulting distance. All generators are deterministic in the seed.

#ifndef DYCKFIX_SRC_GEN_WORKLOAD_H_
#define DYCKFIX_SRC_GEN_WORKLOAD_H_

#include <cstdint>

#include "src/alphabet/paren.h"

namespace dyck {
namespace gen {

/// Overall nesting shape of a generated balanced sequence.
enum class Shape {
  /// Balanced random walk conditioned on staying non-negative; typical
  /// depth O(sqrt(n)).
  kUniform,
  /// One maximal nest: n/2 openings then n/2 closings.
  kDeep,
  /// n/2 adjacent "()" pairs; depth 1.
  kFlat,
};

struct BalancedOptions {
  int64_t length = 0;  // rounded down to even
  int32_t num_types = 4;
  Shape shape = Shape::kUniform;
};

/// A balanced sequence per `options`. O(n).
ParenSeq RandomBalanced(const BalancedOptions& options, uint64_t seed);

/// Primitive corruption operations.
enum class CorruptionKind {
  kDelete,         // remove a symbol            (edit1 bound +1, edit2 +1)
  kInsert,         // insert a random symbol     (+1, +1)
  kFlipDirection,  // opening <-> closing        (+2, +1)
  kFlipType,       // retype a symbol            (+2, +1)
  kMixed,          // uniform choice among the above per edit
};

struct CorruptionOptions {
  int64_t num_edits = 0;
  CorruptionKind kind = CorruptionKind::kMixed;
  int32_t num_types = 4;  // type pool for inserts / retypes
};

struct CorruptedSequence {
  ParenSeq seq;
  /// Provable upper bounds on the distance of `seq` (the true distance may
  /// be smaller when corruptions cancel).
  int64_t edit1_bound = 0;
  int64_t edit2_bound = 0;
};

/// Applies `options.num_edits` corruptions to a copy of `seq`. O(n) per
/// edit (vector splicing); intended for harness setup, not hot paths.
CorruptedSequence Corrupt(const ParenSeq& seq,
                          const CorruptionOptions& options, uint64_t seed);

}  // namespace gen
}  // namespace dyck

#endif  // DYCKFIX_SRC_GEN_WORKLOAD_H_
