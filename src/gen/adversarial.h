// Adversarial workload constructions targeting specific components.
//
// Random corruption exercises average behaviour; these shapes force the
// regimes the analyses actually bound:
//   * ManyValleys      — k non-reducible valleys: drives the FPT memo
//                        toward its O(d^3)/O(d^8) subproblem budgets.
//   * MismatchedV      — one deep valley whose opening and closing runs
//                        disagree in type everywhere except a planted
//                        alignment: maximal-length oracle slopes (the
//                        Theorem 25 vs 26 gap; also the regime that
//                        exposed the Case-2 window bug).
//   * GreedyTrap       — an orphaned closer deep in a nest: one edit for
//                        the exact algorithms, a full cascade for naive
//                        greedy policies.
// Each generator documents the exact distance (or a tight bound) so tests
// can assert it.

#ifndef DYCKFIX_SRC_GEN_ADVERSARIAL_H_
#define DYCKFIX_SRC_GEN_ADVERSARIAL_H_

#include <cstdint>

#include "src/alphabet/paren.h"

namespace dyck {
namespace gen {

/// `valleys` copies of "(^depth ]^depth" with alternating types chosen so
/// neither the reduction nor cross-valley matching helps:
/// edit1 = edit2 * 2 = 2 * depth * valleys... specifically every symbol is
/// unmatched; edit2 = valleys * depth (each open/close pair fixed by one
/// substitution), edit1 = 2 * valleys * depth.
ParenSeq ManyValleys(int64_t valleys, int64_t depth);

/// One deep valley: `depth` openings of alternating types 0/1 followed by
/// `depth` closings that mirror them except for `errors` planted retypes
/// on the closing slope. edit2 == errors; edit1 == 2 * errors.
ParenSeq MismatchedV(int64_t depth, int64_t errors, uint64_t seed);

/// A balanced nest of `depth` pairs with the closer of the outermost pair
/// removed and re-inserted as an extra opener at the bottom: distance 2
/// for the exact algorithms regardless of depth.
ParenSeq GreedyTrap(int64_t depth);

}  // namespace gen
}  // namespace dyck

#endif  // DYCKFIX_SRC_GEN_ADVERSARIAL_H_
