// Status: lightweight error propagation in the style of Arrow / RocksDB.
//
// Library code never throws across the public API boundary; fallible
// operations return Status or StatusOr<T> (see statusor.h). The OK path is
// allocation-free: a Status holds a null pointer unless it carries an error.

#ifndef DYCKFIX_SRC_UTIL_STATUS_H_
#define DYCKFIX_SRC_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace dyck {

/// Broad classification of a failure. Mirrors the small set of conditions
/// the library can actually encounter; not a kitchen sink.
enum class StatusCode : int {
  kOk = 0,
  /// Caller-supplied argument violates a documented precondition.
  kInvalidArgument = 1,
  /// Input text could not be tokenized (malformed beyond repairable syntax).
  kParseError = 2,
  /// A distance bound `d` was exceeded; retry with a larger bound.
  kBoundExceeded = 3,
  /// Internal invariant broken; indicates a bug in this library.
  kInternal = 4,
  /// Requested feature/algorithm combination is not available.
  kNotImplemented = 5,
  /// An execution budget's wall-clock deadline expired (src/util/budget.h).
  kDeadlineExceeded = 6,
  /// The operation was cancelled before or during execution (e.g. a batch
  /// deadline fired while the document was still queued).
  kCancelled = 7,
  /// A work-step or allocation cap of an execution budget was exhausted.
  kResourceExhausted = 8,
};

/// Returns a stable human-readable name, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail without a value payload.
class Status {
 public:
  /// Constructs an OK status. Never allocates.
  Status() = default;

  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BoundExceeded(std::string msg) {
    return Status(StatusCode::kBoundExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }
  /// Error message; empty for OK statuses.
  const std::string& message() const;

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsBoundExceeded() const { return code() == StatusCode::kBoundExceeded; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<State> state_;  // null == OK
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK Status to the caller. Usable only in functions
/// returning Status (or a type constructible from Status).
#define DYCK_RETURN_NOT_OK(expr)              \
  do {                                        \
    ::dyck::Status _dyck_status_ = (expr);    \
    if (!_dyck_status_.ok()) {                \
      return _dyck_status_;                   \
    }                                         \
  } while (false)

}  // namespace dyck

#endif  // DYCKFIX_SRC_UTIL_STATUS_H_
