#include "src/util/status.h"

namespace dyck {

namespace {
const std::string& EmptyString() {
  static const std::string kEmpty;
  return kEmpty;
}
}  // namespace

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBoundExceeded:
      return "BoundExceeded";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.state_ != nullptr) {
    state_ = std::make_unique<State>(*other.state_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ == nullptr ? nullptr
                                     : std::make_unique<State>(*other.state_);
  }
  return *this;
}

const std::string& Status::message() const {
  return state_ == nullptr ? EmptyString() : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace dyck
