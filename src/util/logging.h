// Check macros and minimal logging, in the style of Arrow's util/logging.h.
//
// DYCK_CHECK* abort the process on failure: they guard internal invariants
// and programmer errors, never user input (user input errors flow through
// Status). DYCK_DCHECK* compile away in release builds.

#ifndef DYCKFIX_SRC_UTIL_LOGGING_H_
#define DYCKFIX_SRC_UTIL_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace dyck {
namespace internal {

/// Accumulates a failure message via operator<< and aborts in the destructor.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& t) {
    stream_ << t;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dyck

#define DYCK_CHECK(condition)                                       \
  if (!(condition))                                                 \
  ::dyck::internal::FatalLogMessage(__FILE__, __LINE__, #condition)

#define DYCK_CHECK_OK(expr)                                          \
  if (::dyck::Status _dyck_check_status_ = (expr);                   \
      !_dyck_check_status_.ok())                                     \
  ::dyck::internal::FatalLogMessage(__FILE__, __LINE__, #expr)       \
      << _dyck_check_status_.ToString()

#define DYCK_CHECK_EQ(a, b) DYCK_CHECK((a) == (b)) << " (" #a " vs " #b ") "
#define DYCK_CHECK_NE(a, b) DYCK_CHECK((a) != (b)) << " (" #a " vs " #b ") "
#define DYCK_CHECK_LT(a, b) DYCK_CHECK((a) < (b)) << " (" #a " vs " #b ") "
#define DYCK_CHECK_LE(a, b) DYCK_CHECK((a) <= (b)) << " (" #a " vs " #b ") "
#define DYCK_CHECK_GT(a, b) DYCK_CHECK((a) > (b)) << " (" #a " vs " #b ") "
#define DYCK_CHECK_GE(a, b) DYCK_CHECK((a) >= (b)) << " (" #a " vs " #b ") "

#ifdef NDEBUG
#define DYCK_DCHECK(condition) \
  while (false) DYCK_CHECK(condition)
#define DYCK_DCHECK_EQ(a, b) \
  while (false) DYCK_CHECK_EQ(a, b)
#define DYCK_DCHECK_LE(a, b) \
  while (false) DYCK_CHECK_LE(a, b)
#define DYCK_DCHECK_LT(a, b) \
  while (false) DYCK_CHECK_LT(a, b)
#define DYCK_DCHECK_GE(a, b) \
  while (false) DYCK_CHECK_GE(a, b)
#else
#define DYCK_DCHECK(condition) DYCK_CHECK(condition)
#define DYCK_DCHECK_EQ(a, b) DYCK_CHECK_EQ(a, b)
#define DYCK_DCHECK_LE(a, b) DYCK_CHECK_LE(a, b)
#define DYCK_DCHECK_LT(a, b) DYCK_CHECK_LT(a, b)
#define DYCK_DCHECK_GE(a, b) DYCK_CHECK_GE(a, b)
#endif

#endif  // DYCKFIX_SRC_UTIL_LOGGING_H_
