#include "src/util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace dyck {
namespace internal {

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << file << ":" << line << " check failed: " << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace dyck
