#include "src/util/arena.h"

#include <algorithm>
#include <cstdint>

#include "src/util/logging.h"

namespace dyck {

Arena::Arena(size_t block_bytes)
    : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

Arena::~Arena() = default;

void* Arena::Allocate(size_t bytes, size_t align) {
  DYCK_DCHECK((align & (align - 1)) == 0) << "alignment must be a power of 2";
  if (bytes == 0) bytes = 1;
  if (blocks_.empty()) NextBlock(bytes + align);
  for (;;) {
    Block& block = blocks_[block_index_];
    // Align the actual address, not the cursor offset: new char[] blocks
    // are only aligned to __STDCPP_DEFAULT_NEW_ALIGNMENT__, so for larger
    // alignments the two differ.
    const uintptr_t base = reinterpret_cast<uintptr_t>(block.data.get());
    const uintptr_t addr =
        (base + cursor_ + align - 1) & ~static_cast<uintptr_t>(align - 1);
    const size_t aligned = static_cast<size_t>(addr - base);
    if (aligned + bytes <= block.size) {
      cursor_ = aligned + bytes;
      used_bytes_ += static_cast<int64_t>(bytes);
      if (used_bytes_ > high_water_bytes_) high_water_bytes_ = used_bytes_;
      return block.data.get() + aligned;
    }
    NextBlock(bytes + align);
  }
}

void Arena::NextBlock(size_t min_bytes) {
  if (!blocks_.empty() && block_index_ + 1 < blocks_.size() &&
      blocks_[block_index_ + 1].size >= min_bytes) {
    ++block_index_;
    cursor_ = 0;
    return;
  }
  Block block;
  block.size = std::max(block_bytes_, min_bytes);
  block.data = std::make_unique<char[]>(block.size);
  reserved_bytes_ += static_cast<int64_t>(block.size);
  ++block_allocs_;
  if (blocks_.empty()) {
    blocks_.push_back(std::move(block));
    block_index_ = 0;
  } else {
    // Insert right after the current block so the rewind order stays a
    // simple front-to-back walk. An undersized retained successor is kept
    // further down the chain and may serve a later, smaller request.
    blocks_.insert(blocks_.begin() + static_cast<ptrdiff_t>(block_index_) + 1,
                   std::move(block));
    ++block_index_;
  }
  cursor_ = 0;
}

void Arena::Reset() {
  block_index_ = 0;
  cursor_ = 0;
  used_bytes_ = 0;
  ++resets_;
}

}  // namespace dyck
