// StatusOr<T>: a value or the Status explaining why there is none.

#ifndef DYCKFIX_SRC_UTIL_STATUSOR_H_
#define DYCKFIX_SRC_UTIL_STATUSOR_H_

#include <optional>
#include <utility>

#include "src/util/logging.h"
#include "src/util/status.h"

namespace dyck {

/// Holds either a T or a non-OK Status. Modeled on absl::StatusOr / Arrow's
/// Result. Accessing the value of an errored StatusOr aborts (programming
/// error), so callers must check ok() or use DYCK_ASSIGN_OR_RETURN.
template <typename T>
class StatusOr {
 public:
  /// Implicit from a value: `return MakeThing();`.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error status: `return Status::InvalidArgument(...)`.
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    DYCK_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    DYCK_CHECK(ok()) << "value() on errored StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    DYCK_CHECK(ok()) << "value() on errored StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    DYCK_CHECK(ok()) << "value() on errored StatusOr: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ engaged
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a StatusOr<T>); on error returns the Status, otherwise
/// assigns the value to `lhs`. `lhs` may declare a new variable.
#define DYCK_ASSIGN_OR_RETURN(lhs, rexpr)                   \
  DYCK_ASSIGN_OR_RETURN_IMPL_(                              \
      DYCK_STATUS_MACROS_CONCAT_(_dyck_statusor_, __LINE__), lhs, rexpr)

#define DYCK_STATUS_MACROS_CONCAT_INNER_(x, y) x##y
#define DYCK_STATUS_MACROS_CONCAT_(x, y) DYCK_STATUS_MACROS_CONCAT_INNER_(x, y)
#define DYCK_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                \
  if (!statusor.ok()) {                                   \
    return statusor.status();                             \
  }                                                       \
  lhs = std::move(statusor).value()

}  // namespace dyck

#endif  // DYCKFIX_SRC_UTIL_STATUSOR_H_
