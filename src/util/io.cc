#include "src/util/io.h"

#include <cerrno>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace dyck {
namespace util {

namespace {

std::string ErrnoText(int err) {
  char buf[128];
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  // GNU strerror_r may return a static string instead of filling buf.
  return ::strerror_r(err, buf, sizeof(buf));
#else
  if (::strerror_r(err, buf, sizeof(buf)) != 0) {
    std::snprintf(buf, sizeof(buf), "errno %d", err);
  }
  return buf;
#endif
}

}  // namespace

StatusOr<std::string> ReadFileToString(const std::string& path) {
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDONLY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return Status::InvalidArgument("cannot open " + path + ": " +
                                   ErrnoText(errno));
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      out.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) break;  // EOF
    if (errno == EINTR) continue;
    const int err = errno;
    ::close(fd);
    return Status::InvalidArgument("cannot read " + path + ": " +
                                   ErrnoText(err));
  }
  ::close(fd);
  return out;
}

StatusOr<size_t> ReadFd(int fd, char* buf, size_t len) {
  for (;;) {
    const ssize_t n = ::read(fd, buf, len);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    return Status::InvalidArgument("read failed: " + ErrnoText(errno));
  }
}

Status WriteFdAll(int fd, const char* data, size_t len) {
  size_t written = 0;
  while (written < len) {
    const ssize_t n = ::write(fd, data + written, len - written);
    if (n >= 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EPIPE) {
      return Status::Cancelled("peer closed the stream (EPIPE)");
    }
    return Status::InvalidArgument("write failed: " + ErrnoText(errno));
  }
  return Status::OK();
}

void IgnoreSigpipe() { std::signal(SIGPIPE, SIG_IGN); }

}  // namespace util
}  // namespace dyck
