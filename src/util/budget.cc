#include "src/util/budget.h"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

namespace dyck {

namespace {

thread_local RepairThreadState t_repair_state;

struct FaultSpec {
  bool armed = false;
  std::string checkpoint;
  int64_t hit = 0;
  StatusCode code = StatusCode::kDeadlineExceeded;
};

// Parses DYCKFIX_FAULT_INJECT: "name:k" or "name:k:deadline|cancelled|
// resource". Malformed values disarm the seam rather than aborting — a
// test tool must never take the library down.
FaultSpec ParseFaultSpec() {
  FaultSpec spec;
  const char* raw = std::getenv("DYCKFIX_FAULT_INJECT");
  if (raw == nullptr || raw[0] == '\0') return spec;
  const std::string value(raw);
  const size_t first = value.find(':');
  if (first == std::string::npos || first == 0) return spec;
  const size_t second = value.find(':', first + 1);
  const std::string count = second == std::string::npos
                                ? value.substr(first + 1)
                                : value.substr(first + 1, second - first - 1);
  char* end = nullptr;
  const long long k = std::strtoll(count.c_str(), &end, 10);
  if (end == count.c_str() || *end != '\0' || k < 1) return spec;
  if (second != std::string::npos) {
    const std::string code = value.substr(second + 1);
    if (code == "deadline") {
      spec.code = StatusCode::kDeadlineExceeded;
    } else if (code == "cancelled") {
      spec.code = StatusCode::kCancelled;
    } else if (code == "resource") {
      spec.code = StatusCode::kResourceExhausted;
    } else {
      return spec;
    }
  }
  spec.checkpoint = value.substr(0, first);
  spec.hit = k;
  spec.armed = true;
  return spec;
}

}  // namespace

bool BudgetFaultInjectionArmed() {
  const char* raw = std::getenv("DYCKFIX_FAULT_INJECT");
  return raw != nullptr && raw[0] != '\0';
}

namespace {

// State behind FaultInjectCheck: one spec + hit counter for the whole
// process, re-parsed whenever the environment variable's value changes.
struct GlobalFaultState {
  std::mutex mu;
  std::string raw;  // last-seen DYCKFIX_FAULT_INJECT value
  FaultSpec spec;
  int64_t hits_seen = 0;
};

GlobalFaultState& GlobalFault() {
  static GlobalFaultState* state = new GlobalFaultState();
  return *state;
}

}  // namespace

Status FaultInjectCheck(const char* checkpoint) {
  const char* raw = std::getenv("DYCKFIX_FAULT_INJECT");
  if (raw == nullptr || raw[0] == '\0') return Status::OK();
  GlobalFaultState& state = GlobalFault();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.raw != raw) {
    state.raw = raw;
    state.spec = ParseFaultSpec();
    state.hits_seen = 0;
  }
  if (!state.spec.armed || state.spec.checkpoint != checkpoint) {
    return Status::OK();
  }
  if (++state.hits_seen != state.spec.hit) return Status::OK();
  return Status(state.spec.code,
                std::string("fault injection tripped checkpoint ") +
                    checkpoint + " on hit " +
                    std::to_string(state.spec.hit));
}

Budget::Budget(const BudgetLimits& limits, const CancelToken* cancel)
    : limits_(limits), cancel_(cancel) {
  if (limits_.timeout_ms >= 0) {
    deadline_ = Clock::now() + std::chrono::milliseconds(limits_.timeout_ms);
  }
  FaultSpec spec = ParseFaultSpec();
  if (spec.armed) {
    fault_armed_ = true;
    fault_checkpoint_ = std::move(spec.checkpoint);
    fault_hit_ = spec.hit;
    fault_code_ = spec.code;
  }
}

void Budget::CapDeadline(Clock::time_point deadline) {
  if (!deadline_.has_value() || deadline < *deadline_) {
    deadline_ = deadline;
  }
}

Status Budget::Trip(const char* checkpoint, Status status) {
  if (trip_status_.ok()) {
    trip_status_ = std::move(status);
    trip_checkpoint_ = checkpoint;
  }
  return trip_status_;
}

Status Budget::Check(const char* checkpoint) {
  if (!trip_status_.ok()) return trip_status_;  // sticky
  ++steps_;
  if (limits_.max_steps >= 0 && steps_ > limits_.max_steps) {
    return Trip(checkpoint,
                Status::ResourceExhausted(
                    "work-step cap " + std::to_string(limits_.max_steps) +
                    " exceeded at checkpoint " + checkpoint));
  }
  // The clock, the token, and the fault seam are polled once per stride so
  // the common case stays a counter increment and two compares.
  if ((steps_ % kStride) != 0 && !fault_armed_) return Status::OK();
  return CheckSlow(checkpoint, /*force=*/false);
}

Status Budget::CheckNow(const char* checkpoint) {
  if (!trip_status_.ok()) return trip_status_;  // sticky
  ++steps_;
  if (limits_.max_steps >= 0 && steps_ > limits_.max_steps) {
    return Trip(checkpoint,
                Status::ResourceExhausted(
                    "work-step cap " + std::to_string(limits_.max_steps) +
                    " exceeded at checkpoint " + checkpoint));
  }
  return CheckSlow(checkpoint, /*force=*/true);
}

Status Budget::CheckSlow(const char* checkpoint, bool force) {
  if (fault_armed_ && fault_checkpoint_ == checkpoint &&
      ++fault_hits_seen_ == fault_hit_) {
    return Trip(checkpoint,
                Status(fault_code_,
                       std::string("fault injection tripped checkpoint ") +
                           checkpoint + " on hit " +
                           std::to_string(fault_hit_)));
  }
  if (!force && (steps_ % kStride) != 0) return Status::OK();
  if (cancel_ != nullptr && cancel_->cancelled()) {
    return Trip(checkpoint, Status::Cancelled(
                                std::string("cancelled at checkpoint ") +
                                checkpoint));
  }
  if (deadline_.has_value() && Clock::now() > *deadline_) {
    return Trip(
        checkpoint,
        Status::DeadlineExceeded(
            (limits_.timeout_ms >= 0
                 ? "deadline of " + std::to_string(limits_.timeout_ms) +
                       "ms exceeded at checkpoint "
                 : std::string("deadline exceeded at checkpoint ")) +
            checkpoint));
  }
  return Status::OK();
}

void Budget::ReportAlloc(const char* checkpoint, int64_t bytes) {
  alloc_bytes_ += bytes;
  if (alloc_bytes_ > peak_alloc_bytes_) peak_alloc_bytes_ = alloc_bytes_;
  if (limits_.max_alloc_bytes >= 0 &&
      alloc_bytes_ > limits_.max_alloc_bytes) {
    Trip(checkpoint,
         Status::ResourceExhausted(
             "allocation cap " + std::to_string(limits_.max_alloc_bytes) +
             " bytes exceeded at checkpoint " + checkpoint + " (" +
             std::to_string(alloc_bytes_) + " bytes reported)"));
  }
  if (!trip_status_.ok()) {
    throw BudgetExceededError{trip_status_, trip_checkpoint_};
  }
}

void Budget::ReleaseAlloc(int64_t bytes) { alloc_bytes_ -= bytes; }

RepairThreadState& CurrentRepairThreadState() { return t_repair_state; }

BudgetScope::BudgetScope(Budget* budget)
    : previous_(t_repair_state.budget) {
  t_repair_state.budget = budget;
}

BudgetScope::~BudgetScope() { t_repair_state.budget = previous_; }

Budget* BudgetScope::Current() { return t_repair_state.budget; }

}  // namespace dyck
