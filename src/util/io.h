// Signal-robust file and descriptor I/O.
//
// Long-running use (the dyckfixd daemon, large CLI batches) must survive
// the POSIX realities an interactive run rarely meets: reads interrupted
// by EINTR when a signal handler fires, and SIGPIPE-turned-EPIPE when the
// peer of a pipe or socket goes away. These helpers centralize the retry
// loops so every caller gets the same semantics: EINTR is always retried,
// every other errno is surfaced as a classified Status.

#ifndef DYCKFIX_SRC_UTIL_IO_H_
#define DYCKFIX_SRC_UTIL_IO_H_

#include <cstddef>
#include <string>

#include "src/util/status.h"
#include "src/util/statusor.h"

namespace dyck {
namespace util {

/// Reads the entire file at `path` into a string. open() and read() are
/// retried on EINTR, so a signal arriving mid-load (the daemon's SIGTERM,
/// a profiler's SIGPROF) cannot truncate a batch input. Errors:
/// InvalidArgument with the path and errno text.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// One read() from `fd` into `buf`, retried on EINTR. Returns the byte
/// count (0 = EOF) or InvalidArgument carrying the errno text.
StatusOr<size_t> ReadFd(int fd, char* buf, size_t len);

/// Writes all `len` bytes to `fd`, retrying on EINTR and short writes.
/// With SIGPIPE ignored (see IgnoreSigpipe) a vanished reader surfaces
/// here as a Cancelled status (EPIPE) instead of killing the process.
Status WriteFdAll(int fd, const char* data, size_t len);

/// Ignores SIGPIPE process-wide so writes to a closed pipe/socket return
/// EPIPE instead of terminating the daemon. Idempotent.
void IgnoreSigpipe();

}  // namespace util
}  // namespace dyck

#endif  // DYCKFIX_SRC_UTIL_IO_H_
