#pragma once

/// \file
/// Monotonic arena allocation and capacity-retaining scratch pools.
///
/// An Arena hands out pointer-bumped storage from a chain of large blocks
/// and rewinds in O(1): Reset() keeps every block alive and just moves the
/// cursor back to the first one. The repair pipeline allocates per-document
/// scratch (DP memo tables, split lists, reconstruction stacks) from one
/// arena owned by a RepairContext, so the steady state performs no heap
/// traffic at all — only the first documents grow the chain.
///
/// ScratchPool<T> complements the arena for buffers that must be ordinary
/// std::vector<T> (wave frontiers handed across API layers): it recycles
/// vectors with their capacity intact instead of freeing them.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace dyck {

/// Bump allocator over a chain of heap blocks. Not thread-safe; each
/// RepairContext (and therefore each worker thread) owns its own arena.
class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 64 * 1024;

  explicit Arena(size_t block_bytes = kDefaultBlockBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  /// Storage stays valid until the next Reset(); it is never freed
  /// individually.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Rewinds the cursor to the start of the first block in O(1). Every
  /// block is retained, so a workload that fit once never allocates again.
  void Reset();

  /// Total bytes handed out since the last Reset().
  int64_t used_bytes() const { return used_bytes_; }
  /// Largest used_bytes() ever observed across the arena's lifetime.
  int64_t high_water_bytes() const { return high_water_bytes_; }
  /// Bytes of block storage currently held (survives Reset()).
  int64_t reserved_bytes() const { return reserved_bytes_; }
  /// Number of Reset() calls.
  int64_t resets() const { return resets_; }
  /// Number of blocks fetched from the heap — the arena's only heap
  /// traffic. Stable block_allocs across documents proves steady-state
  /// zero-allocation behaviour.
  int64_t block_allocs() const { return block_allocs_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  /// Makes the block at blocks_[block_index_ + 1] exist and hold at least
  /// `min_bytes`, then steps into it.
  void NextBlock(size_t min_bytes);

  size_t block_bytes_;
  std::vector<Block> blocks_;
  size_t block_index_ = 0;  // valid only when !blocks_.empty()
  size_t cursor_ = 0;       // offset into blocks_[block_index_]
  int64_t used_bytes_ = 0;
  int64_t high_water_bytes_ = 0;
  int64_t reserved_bytes_ = 0;
  int64_t resets_ = 0;
  int64_t block_allocs_ = 0;
};

/// Minimal STL allocator over an Arena. deallocate() is a no-op — freed
/// nodes become garbage until the owning arena resets, which is fine for
/// per-document scratch that dies wholesale between documents.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, size_t) {}

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const {
    return arena_ != other.arena();
  }

 private:
  Arena* arena_;
};

/// Recycles std::vector<T> buffers with their capacity intact. Acquire()
/// returns a cleared vector (possibly with warm capacity); Release() puts
/// it back. Not thread-safe; pools live on a per-thread RepairContext.
template <typename T>
class ScratchPool {
 public:
  std::vector<T> Acquire() {
    if (free_.empty()) {
      ++misses_;
      return {};
    }
    std::vector<T> v = std::move(free_.back());
    free_.pop_back();
    v.clear();
    return v;
  }

  void Release(std::vector<T>&& v) { free_.push_back(std::move(v)); }

  /// Acquire() calls that found the pool empty — after warmup this stops
  /// growing for a steady workload.
  int64_t misses() const { return misses_; }

 private:
  std::vector<std::vector<T>> free_;
  int64_t misses_ = 0;
};

}  // namespace dyck
