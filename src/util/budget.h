// Execution budgets: deadlines, work-step caps, allocation caps, and
// cooperative cancellation for the repair stack.
//
// The FPT bounds — O(n + d^6) for edit1, O(n + d^16) for edit2 — mean a
// single high-d adversarial document can consume effectively unbounded CPU
// inside a solver. A Budget makes that interruptible: long-running layers
// poll a cheap cooperative checkpoint (`BudgetCheckpoint("fpt.deletion.
// solve")`) from their inner loops, and the first limit to trip unwinds
// the computation with a classified Status (kDeadlineExceeded,
// kResourceExhausted, or kCancelled).
//
// Budgets are installed per thread with a BudgetScope (RAII); checkpoints
// read a thread_local pointer, so the solvers need no signature changes
// and pay a single predictable branch when no budget is active. The
// pipeline (src/pipeline) installs a scope when Options carries limits;
// the batch runtime installs one per document, merging the per-document
// limits with the whole-batch deadline and cancellation token.
//
// Trip mechanics: BudgetCheckpoint throws BudgetExceededError, which is
// internal to the library — pipeline::Run and the batch engine catch it
// and convert to Status (optionally degrading to the greedy baseline), so
// it never crosses the public API boundary.
//
// Fault injection: the DYCKFIX_FAULT_INJECT environment variable
// ("checkpoint-name:k" or "checkpoint-name:k:deadline|cancelled|resource")
// force-trips the named checkpoint on its k-th hit, so tests can exercise
// every budget path deterministically without real multi-second timeouts.

#ifndef DYCKFIX_SRC_UTIL_BUDGET_H_
#define DYCKFIX_SRC_UTIL_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "src/util/status.h"

namespace dyck {

/// Shared cancellation flag. One writer (e.g. the batch submitter when the
/// whole-batch deadline fires) flips it; any number of Budgets observe it
/// at their next checkpoint. Thread-safe; copy-free.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Caps a Budget enforces. Every limit defaults to "unlimited" (< 0).
struct BudgetLimits {
  /// Wall-clock budget in milliseconds, measured from Budget construction.
  int64_t timeout_ms = -1;
  /// Cooperative work steps (one per checkpoint poll).
  int64_t max_steps = -1;
  /// Peak bytes of reported large allocations (see ReportAlloc).
  int64_t max_alloc_bytes = -1;

  bool Unlimited() const {
    return timeout_ms < 0 && max_steps < 0 && max_alloc_bytes < 0;
  }
};

/// Thrown by checkpoints when a budget trips. Internal control flow only:
/// pipeline::Run and the batch engine convert it to Status before it can
/// reach the public API.
struct BudgetExceededError {
  Status status;
  /// Name of the checkpoint that tripped (static storage).
  const char* checkpoint;
};

/// One execution budget: a deadline plus step/allocation caps plus an
/// optional external cancellation token. Not thread-safe — each document
/// (or solver run) gets its own Budget on its own thread; only the
/// CancelToken is shared across threads.
class Budget {
 public:
  using Clock = std::chrono::steady_clock;

  /// `cancel` (optional) is observed at checkpoint stride boundaries; it
  /// must outlive the Budget.
  explicit Budget(const BudgetLimits& limits,
                  const CancelToken* cancel = nullptr);

  Budget(const Budget&) = delete;
  Budget& operator=(const Budget&) = delete;

  /// Tightens the deadline to `deadline` if it is earlier than (or the
  /// only) one. Used by the batch engine to merge the per-document timeout
  /// with the whole-batch deadline.
  void CapDeadline(Clock::time_point deadline);

  /// Cooperative poll from an inner loop: counts one work step; every
  /// kStride steps (and on the caps themselves) checks the deadline, the
  /// cancel token, and the fault-injection seam. Returns the trip Status
  /// (sticky once tripped) or OK. `checkpoint` must be a string literal.
  Status Check(const char* checkpoint);

  /// Check() without the stride gate: the deadline, cancel token, and
  /// fault seam are polled unconditionally. For dispatch boundaries (one
  /// call per document, not per inner-loop iteration) where an already-
  /// expired deadline must be observed on the first poll.
  Status CheckNow(const char* checkpoint);

  /// Check() that throws BudgetExceededError instead of returning, for
  /// deep recursions that cannot propagate Status.
  void Poll(const char* checkpoint) {
    const Status status = Check(checkpoint);
    if (!status.ok()) throw BudgetExceededError{status, trip_checkpoint_};
  }

  /// Reports a large planned allocation (solver DP tables); trips
  /// kResourceExhausted via the same throwing path when the running peak
  /// exceeds max_alloc_bytes. Call ReleaseAlloc when the memory is freed.
  void ReportAlloc(const char* checkpoint, int64_t bytes);
  void ReleaseAlloc(int64_t bytes);

  bool exceeded() const { return !trip_status_.ok(); }
  /// The sticky first trip; OK while within budget.
  const Status& trip_status() const { return trip_status_; }
  /// Checkpoint of the first trip; nullptr while within budget.
  const char* trip_checkpoint() const { return trip_checkpoint_; }

  int64_t steps() const { return steps_; }
  int64_t current_alloc_bytes() const { return alloc_bytes_; }
  int64_t peak_alloc_bytes() const { return peak_alloc_bytes_; }
  bool has_deadline() const { return deadline_.has_value(); }

 private:
  static constexpr int64_t kStride = 256;  // clock/cancel poll period

  Status Trip(const char* checkpoint, Status status);
  /// The expensive part of Check: clock, cancel token, fault seam.
  /// `force` bypasses the stride gate on the clock/cancel polls.
  Status CheckSlow(const char* checkpoint, bool force);

  BudgetLimits limits_;
  std::optional<Clock::time_point> deadline_;
  const CancelToken* cancel_ = nullptr;

  int64_t steps_ = 0;
  int64_t alloc_bytes_ = 0;
  int64_t peak_alloc_bytes_ = 0;

  Status trip_status_;  // OK until the first trip; sticky afterwards
  const char* trip_checkpoint_ = nullptr;

  // Fault-injection seam (parsed from DYCKFIX_FAULT_INJECT at
  // construction): trip `fault_checkpoint_` on its `fault_hit_`-th hit
  // with `fault_code_`.
  bool fault_armed_ = false;
  std::string fault_checkpoint_;
  int64_t fault_hit_ = 0;
  int64_t fault_hits_seen_ = 0;
  StatusCode fault_code_ = StatusCode::kDeadlineExceeded;
};

class RepairContext;

/// The one thread-local the repair stack owns. Budget checkpoints and the
/// ambient RepairContext (scratch arenas, last-error/telemetry state for
/// the C API) read a single object instead of scattered globals; the
/// accessor lives here because util/ is the lowest layer both users share.
struct RepairThreadState {
  /// Active budget installed by the innermost BudgetScope, or nullptr.
  Budget* budget = nullptr;
  /// Context installed by the innermost RepairContextScope, or nullptr
  /// (RepairContext::CurrentThread falls back to a lazily-created
  /// thread-local default).
  RepairContext* context = nullptr;
};

/// The calling thread's repair state. Never returns nullptr; the struct
/// lives for the thread's lifetime.
RepairThreadState& CurrentRepairThreadState();

/// Installs `budget` as the calling thread's active budget for the scope's
/// lifetime. Nesting restores the previous budget on destruction.
class BudgetScope {
 public:
  explicit BudgetScope(Budget* budget);
  ~BudgetScope();

  BudgetScope(const BudgetScope&) = delete;
  BudgetScope& operator=(const BudgetScope&) = delete;

  /// The calling thread's active budget, or nullptr.
  static Budget* Current();

 private:
  Budget* previous_;
};

/// The cooperative checkpoint for inner loops: a no-op (one thread-local
/// read) when no budget is installed; otherwise Budget::Poll, which throws
/// BudgetExceededError on a tripped budget.
inline void BudgetCheckpoint(const char* name) {
  if (Budget* budget = BudgetScope::Current(); budget != nullptr) {
    budget->Poll(name);
  }
}

/// Reports a large planned allocation against the active budget (no-op
/// without one). Pair with BudgetReleaseAlloc when the memory dies.
inline void BudgetReportAlloc(const char* name, int64_t bytes) {
  if (Budget* budget = BudgetScope::Current(); budget != nullptr) {
    budget->ReportAlloc(name, bytes);
  }
}

inline void BudgetReleaseAlloc(int64_t bytes) {
  if (Budget* budget = BudgetScope::Current(); budget != nullptr) {
    budget->ReleaseAlloc(bytes);
  }
}

/// True when DYCKFIX_FAULT_INJECT is set, meaning budget machinery must be
/// engaged even without explicit limits (test seam).
bool BudgetFaultInjectionArmed();

/// Process-wide fault-injection poll for checkpoints that run outside any
/// Budget — the serving daemon's admission/dispatch/respond seams
/// ("server.admit", "server.dispatch", "server.respond"). Consults the
/// same DYCKFIX_FAULT_INJECT spec as Budget, but counts hits in one
/// process-global counter (re-read from the environment when the variable
/// changes, so tests can re-arm it between cases). Returns the injected
/// Status on the k-th hit of the named checkpoint, OK otherwise. Unlike a
/// Budget trip this is not sticky: hit k trips, hit k+1 passes — the seam
/// models a transient fault one request absorbs.
Status FaultInjectCheck(const char* checkpoint);

}  // namespace dyck

#endif  // DYCKFIX_SRC_UTIL_BUDGET_H_
