#include "src/core/solver.h"

#include <utility>

#include "src/pipeline/telemetry.h"

namespace dyck {

namespace {

const char* MetricCapabilityName(bool use_substitutions) {
  return use_substitutions ? "deletions+substitutions" : "deletions";
}

}  // namespace

Status Solver::CheckMetric(bool use_substitutions) const {
  const SolverCaps& c = caps();
  if (use_substitutions ? c.substitutions : c.deletions) return Status::OK();
  const char* capability =
      c.deletions ? "deletions-only" : "substitutions-only";
  return Status::InvalidArgument(
      std::string("solver '") + name() + "' does not support the " +
      MetricCapabilityName(use_substitutions) + " metric (capability: " +
      capability + ")");
}

SolverRegistry& SolverRegistry::Global() {
  static SolverRegistry* const registry = [] {
    auto* r = new SolverRegistry();
    // Explicit registration instead of static-initializer side effects:
    // a static library strips translation units nothing references, which
    // would silently lose a self-registering family.
    RegisterFptSolvers(*r);
    RegisterBaselineSolvers(*r);
    RegisterLmsSolvers(*r);
    RegisterApproxSolvers(*r);
    return r;
  }();
  return *registry;
}

Status SolverRegistry::Register(std::unique_ptr<Solver> solver) {
  if (solver == nullptr || solver->name() == nullptr ||
      solver->name()[0] == '\0') {
    return Status::InvalidArgument("solver registration requires a name");
  }
  if (Find(solver->name()) != nullptr) {
    return Status::InvalidArgument(std::string("solver '") + solver->name() +
                                   "' is already registered");
  }
  view_.push_back(solver.get());
  owned_.push_back(std::move(solver));
  return Status::OK();
}

const Solver* SolverRegistry::Find(std::string_view name) const {
  for (const Solver* solver : view_) {
    if (name == solver->name()) return solver;
  }
  return nullptr;
}

const Solver* SolverRegistry::ForAlgorithm(Algorithm algorithm) const {
  if (algorithm == Algorithm::kAuto) return nullptr;
  return Find(AlgorithmName(algorithm));
}

}  // namespace dyck
