#include "src/core/checker.h"

namespace dyck {

void IncrementalChecker::Append(const Paren& paren) {
  const int64_t pos = position_++;
  if (paren.is_open) {
    stack_.push_back({paren.type, pos});
    return;
  }
  if (!stack_.empty() && stack_.back().type == paren.type) {
    stack_.pop_back();
    return;
  }
  Conflict conflict;
  conflict.pos = pos;
  conflict.symbol = paren;
  if (!stack_.empty()) {
    conflict.blocking_open_pos = stack_.back().pos;
  }
  conflicts_.push_back(conflict);
}

std::vector<int64_t> IncrementalChecker::PendingOpenPositions() const {
  std::vector<int64_t> positions;
  positions.reserve(stack_.size());
  for (const Open& open : stack_) positions.push_back(open.pos);
  return positions;
}

void IncrementalChecker::Reset() {
  position_ = 0;
  stack_.clear();
  conflicts_.clear();
}

}  // namespace dyck
