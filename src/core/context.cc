#include "src/core/context.h"

namespace dyck {

RepairContext& RepairContext::CurrentThread() {
  RepairThreadState& state = CurrentRepairThreadState();
  if (state.context != nullptr) return *state.context;
  // One default context per thread, constructed on first use and kept for
  // the thread's lifetime — this is what gives every batch pool worker a
  // warm context across documents with no explicit plumbing.
  static thread_local RepairContext default_context;
  return default_context;
}

void RepairContext::BeginDocument() {
  arena_.Reset();
  ++documents_;
}

}  // namespace dyck
