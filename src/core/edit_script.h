// Edit scripts: the "optimal sequence of edits" of paper §1.1.
//
// A script lists unit-cost operations against *original* sequence indices:
// deletions (edit1/edit2) and substitutions (edit2 only). Scripts never
// reorder symbols. ApplyScript materializes the repaired sequence;
// ValidateScript is the testing workhorse: a correct distance algorithm
// must produce a script that (a) costs exactly the reported distance and
// (b) applies to a balanced sequence.

#ifndef DYCKFIX_SRC_CORE_EDIT_SCRIPT_H_
#define DYCKFIX_SRC_CORE_EDIT_SCRIPT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/alphabet/paren.h"
#include "src/util/status.h"

namespace dyck {

enum class EditOpKind {
  kDelete,
  kSubstitute,
  /// Insert `replacement` immediately BEFORE original index `pos`
  /// (pos == sequence length appends). The paper's distances use only
  /// deletions and substitutions; insertions arise from the
  /// content-preserving repair style (see core/insertion_repair.h), which
  /// trades each deletion for an insertion of equal cost.
  kInsert,
};

/// One edit against the input sequence.
struct EditOp {
  EditOpKind kind = EditOpKind::kDelete;
  /// Index into the original (pre-reduction) input sequence.
  int64_t pos = 0;
  /// New/inserted symbol; meaningful for kSubstitute and kInsert.
  Paren replacement;

  bool operator==(const EditOp&) const = default;
};

/// A set of edits plus, optionally, the zero-cost alignment that the edits
/// make possible (used to draw Figure 2/3-style arc diagrams).
struct EditScript {
  /// Sorted by pos; at most one op per position.
  std::vector<EditOp> ops;
  /// Aligned (open, close) index pairs of the repaired sequence, in
  /// original-index terms. Optional; empty if the producer skipped it.
  std::vector<std::pair<int64_t, int64_t>> aligned_pairs;

  int64_t Cost() const { return static_cast<int64_t>(ops.size()); }

  /// Sorts ops by position (producers may emit out of order).
  void Normalize();

  std::string ToString() const;

  /// Machine-readable rendering for tooling:
  /// {"cost":2,"ops":[{"op":"delete","pos":3},
  ///                  {"op":"substitute","pos":5,"type":1,"open":false}]}
  std::string ToJson() const;
};

/// Applies `script` to `seq`; ops must be sorted by position (inserts at a
/// position apply, in op order, before the symbol at that position; at
/// most one delete/substitute per position). Substituting a symbol by
/// itself is allowed (costs 1 like any op) but never produced by this
/// library's algorithms.
ParenSeq ApplyScript(const ParenSeq& seq, const EditScript& script);

/// As above, writing into `*out` (cleared first). Lets callers with a
/// long-lived result object reuse its capacity across documents.
void ApplyScript(const ParenSeq& seq, const EditScript& script,
                 ParenSeq* out);

/// Checks that `script` is well-formed for `seq`, costs `expected_cost`,
/// and that the repaired sequence is balanced.
Status ValidateScript(const ParenSeq& seq, const EditScript& script,
                      int64_t expected_cost, bool allow_substitutions,
                      bool allow_insertions = false);

/// Sentinel returned by PairCost when alignment is impossible.
inline constexpr int32_t kPairImpossible = 1 << 20;

/// Cost of aligning `left` (the earlier symbol) with `right` (the later) as
/// an (open, close) pair: 0 for an exact match; with substitutions, 1 when
/// one rewrite aligns them (open/close of different types, open/open,
/// close/close) and 2 for close/open; kPairImpossible when substitutions
/// are disallowed and the symbols do not match.
int32_t PairCost(const Paren& left, const Paren& right,
                 bool allow_substitutions);

/// Appends the substitutions (if any) realizing PairCost(seq[i], seq[j])
/// and records (i, j) as an aligned pair. Requires the cost to be
/// realizable (< kPairImpossible).
void AppendPairAlignment(ParenSpan seq, int64_t i, int64_t j,
                         EditScript* script);

}  // namespace dyck

#endif  // DYCKFIX_SRC_CORE_EDIT_SCRIPT_H_
