// Streaming structural checker with diagnostics.
//
// The paper's §1 suggests using fast tag correction "in an integrated
// development environment to provide feedback to the user about structural
// problems in the document being created". This class is the online front
// end of that pipeline: symbols are fed one at a time, immediate conflicts
// (a closer that matches nothing) are reported with the position of the
// opening symbol they collided with, and the running greedy repair cost
// upper-bounds edit1. For optimal suggestions, hand the full sequence to
// Repair() (the FPT path) once the user pauses.

#ifndef DYCKFIX_SRC_CORE_CHECKER_H_
#define DYCKFIX_SRC_CORE_CHECKER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/alphabet/paren.h"

namespace dyck {

/// Online bracket-structure checker. O(1) amortized per symbol, O(depth)
/// space.
class IncrementalChecker {
 public:
  /// An immediate structural conflict: `symbol` at `pos` could not extend
  /// any balanced continuation.
  struct Conflict {
    int64_t pos = 0;
    Paren symbol;
    /// Position of the unmatched opening the closer collided with, if the
    /// stack was non-empty.
    std::optional<int64_t> blocking_open_pos;
  };

  /// Feeds one symbol. Conflicting closers are recorded and (for the
  /// purpose of further checking) dropped, mirroring GreedyRepair's
  /// deletion policy.
  void Append(const Paren& paren);

  void AppendAll(const ParenSeq& seq) {
    for (const Paren& p : seq) Append(p);
  }

  /// Symbols consumed so far.
  int64_t position() const { return position_; }

  /// Current nesting depth (unmatched openings so far).
  int64_t depth() const { return static_cast<int64_t>(stack_.size()); }

  /// Positions of the currently unmatched openings, outermost first.
  std::vector<int64_t> PendingOpenPositions() const;

  /// True while the stream has had no conflicts; a prefix in this state
  /// can always be completed to a balanced sequence.
  bool ok_so_far() const { return conflicts_.empty(); }

  const std::vector<Conflict>& conflicts() const { return conflicts_; }

  /// Edits the built-in greedy policy would spend if the stream ended now:
  /// recorded conflicts plus unmatched openings. An upper bound on
  /// edit1(prefix) and at least UnmatchedCount(prefix).
  int64_t GreedyCostIfEndedNow() const {
    return static_cast<int64_t>(conflicts_.size()) + depth();
  }

  void Reset();

 private:
  struct Open {
    ParenType type;
    int64_t pos;
  };
  int64_t position_ = 0;
  std::vector<Open> stack_;
  std::vector<Conflict> conflicts_;
};

}  // namespace dyck

#endif  // DYCKFIX_SRC_CORE_CHECKER_H_
