// dyckfix public API.
//
// Everything a downstream user needs: parse or build a ParenSeq (see
// src/alphabet and src/textio), then call Distance() or Repair(). The
// default configuration runs the paper's FPT algorithms with the d-doubling
// driver (§1.1), so the cost is O(n + poly(d)) where d is the true distance
// — linear for nearly-correct documents.
//
//   ParenSeq seq = ParenAlphabet::Default().Parse("(()[]").value();
//   RepairResult fixed = Repair(seq, {}).value();
//   // fixed.distance == 1, IsBalanced(fixed.repaired)
//
// See DESIGN.md for the algorithm inventory and the paper mapping.

#ifndef DYCKFIX_SRC_CORE_DYCK_H_
#define DYCKFIX_SRC_CORE_DYCK_H_

#include <cstdint>
#include <string>

#include "src/alphabet/paren.h"
#include "src/alphabet/parse.h"
#include "src/core/edit_script.h"
#include "src/pipeline/telemetry.h"
#include "src/util/statusor.h"

namespace dyck {

/// Which distance is computed (paper Definition 4).
enum class Metric {
  /// edit1: deletions only. FPT algorithm: Theorem 26, O(n + d^6).
  kDeletionsOnly,
  /// edit2: deletions and substitutions. Theorem 40, O(n + d^16).
  kDeletionsAndSubstitutions,
};

/// Algorithm selection; kAuto consults the planner (src/pipeline/planner.h),
/// which picks the cheapest applicable exact solver from the registry using
/// calibrated cost models. The fixed underlying type matches the opaque
/// declaration in src/pipeline/telemetry.h.
enum class Algorithm : int {
  kAuto,
  /// The paper's contribution (Theorems 26 / 40) with the doubling driver.
  kFpt,
  /// O(n^3) interval DP oracle [AP72].
  kCubic,
  /// 2^{O(d)} n branching baseline.
  kBranching,
  /// Banded LMS alignment for single-peak reduced inputs (deletions only).
  kBanded,
  /// Linear-time approximate repair (upper-bounds the true distance).
  kGreedy,
  /// Certified-approximation family (src/approx): results carry a proven
  /// multiplicative error bound (RepairTelemetry::certified_factor). The
  /// canonical registry entry is "approx" (the refinement solver); forcing
  /// this enumerator routes to it.
  kApprox,
};

/// How Repair materializes an optimal solution.
enum class RepairStyle {
  /// Ops exactly as the metric defines them: deletions (+ substitutions).
  kMinimalEdits,
  /// Equal cost, but every deletion is traded for the insertion of a
  /// matching partner, so no input symbol is ever removed (see
  /// core/insertion_repair.h). Distances are unchanged.
  kPreserveContent,
};

/// What Repair does when an execution budget (timeout_ms / max_work_steps
/// / max_memory_bytes) trips mid-solve. See src/util/budget.h.
/// The three policies form a ladder (kFail → kApproximate → kGreedy):
/// each step trades more accuracy guarantees for a guaranteed answer.
enum class DegradePolicy {
  /// Fail the document with kDeadlineExceeded / kResourceExhausted.
  kFail,
  /// Fall back to the linear-time greedy baseline: the result is a valid
  /// balanced repair whose distance upper-bounds the true one, marked
  /// RepairResult::degraded. Cancellation (kCancelled) never degrades —
  /// a cancelled batch wants no answer at all.
  kGreedy,
  /// Step down the accuracy ladder instead of jumping to uncertified
  /// greedy: the greedy answer is kept, but the pipeline first tries to
  /// *certify* it against a proven lower bound (the untyped Dyck-1
  /// relaxation, improved by any doubling probes the interrupted solver
  /// completed). When the certificate holds within
  /// max(Options::max_approximation_factor, 3.0), the result carries
  /// RepairTelemetry::certified_factor > 0; otherwise it is the same
  /// uncertified greedy answer kGreedy would have produced.
  kApproximate,
};

struct Options {
  Metric metric = Metric::kDeletionsAndSubstitutions;
  Algorithm algorithm = Algorithm::kAuto;
  RepairStyle style = RepairStyle::kMinimalEdits;
  /// If >= 0, fail with BoundExceeded instead of computing distances larger
  /// than this (useful to cap work on hopelessly corrupt inputs).
  int64_t max_distance = -1;
  /// Wall-clock budget for one Repair call in milliseconds; -1 = unlimited.
  /// The solvers poll cooperative checkpoints, so overshoot is bounded by
  /// one checkpoint stride (microseconds), not by solver runtime.
  int64_t timeout_ms = -1;
  /// Cooperative work-step cap (one step per solver checkpoint poll);
  /// -1 = unlimited. A deterministic alternative to wall-clock deadlines.
  int64_t max_work_steps = -1;
  /// Peak bytes of solver table allocations; -1 = unlimited. Tracked
  /// cooperatively at the large allocation sites (cubic DP table, FPT
  /// memo), not via a malloc hook.
  int64_t max_memory_bytes = -1;
  /// Applied when any of the three budget limits trips.
  DegradePolicy on_budget_exceeded = DegradePolicy::kFail;
  /// Force a solver by registry name (SolverRegistry::Global()), e.g.
  /// "fpt-deletion" or "banded". Empty = defer to `algorithm`. Unknown
  /// names fail with InvalidArgument; takes precedence over `algorithm`
  /// when non-empty. Kept before the accuracy knob so pre-existing
  /// aggregate initializers keep their positions.
  std::string solver = {};
  /// Largest certified approximation factor kAuto may accept: the planner
  /// considers a registry solver only when its
  /// SolverCaps::approximation_factor is <= this value, so the default 1.0
  /// keeps selection exact (byte-identical to an accuracy-unaware build).
  /// Values > 1.0 unlock the src/approx ladder: every accepted result
  /// still satisfies distance <= factor * exact, with the realized factor
  /// reported in RepairTelemetry::certified_factor. Values < 1.0 are
  /// treated as 1.0. Forced selection (`algorithm` / `solver`) bypasses
  /// this filter — forcing "greedy" or "approx" is an explicit request.
  double max_approximation_factor = 1.0;
};

struct RepairResult {
  int64_t distance = 0;
  /// Ops + alignment against the input sequence.
  EditScript script;
  /// The input with the script applied; always balanced.
  ParenSeq repaired;
  /// True when an execution budget tripped and Options::on_budget_exceeded
  /// == kGreedy substituted the greedy baseline: `distance` is then an
  /// upper bound on the exact distance (telemetry records the checkpoint
  /// that tripped and the best known lower bound).
  bool degraded = false;
  /// Per-stage observability of the pipeline run that produced this
  /// result: stage wall times, d-doubling trajectory, reduction ratio,
  /// the algorithm kAuto actually chose, and copy counters. See
  /// src/pipeline/telemetry.h.
  RepairTelemetry telemetry;
};

/// Distance from `seq` to the closest balanced sequence under the chosen
/// metric. Errors: BoundExceeded (distance > options.max_distance);
/// DeadlineExceeded / ResourceExhausted when an execution budget trips
/// (Distance has no degraded channel, so on_budget_exceeded is ignored
/// here — use Repair for graceful degradation).
StatusOr<int64_t> Distance(const ParenSeq& seq, const Options& options);

class RepairContext;

/// Distance plus an optimal edit script and the repaired sequence.
/// Budget errors (DeadlineExceeded / ResourceExhausted) are returned under
/// DegradePolicy::kFail and converted to a greedy fallback result under
/// kGreedy; kCancelled is always returned as an error.
///
/// Scratch memory comes from `context` when given, else from the calling
/// thread's ambient RepairContext (src/core/context.h) — either way it is
/// reused across calls, so repeated repairs on one thread allocate no
/// fresh scratch after warmup.
StatusOr<RepairResult> Repair(const ParenSeq& seq, const Options& options,
                              RepairContext* context = nullptr);

/// As Repair, but writes into caller-owned `*out` (cleared first, heap
/// capacity retained). With a long-lived context and a reused result this
/// is the zero-steady-state-allocation entry point; the batch runtime's
/// worker loop is built on it.
Status RepairInto(const ParenSeq& seq, const Options& options,
                  RepairContext* context, RepairResult* out);

}  // namespace dyck

#endif  // DYCKFIX_SRC_CORE_DYCK_H_
