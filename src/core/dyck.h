// dyckfix public API.
//
// Everything a downstream user needs: parse or build a ParenSeq (see
// src/alphabet and src/textio), then call Distance() or Repair(). The
// default configuration runs the paper's FPT algorithms with the d-doubling
// driver (§1.1), so the cost is O(n + poly(d)) where d is the true distance
// — linear for nearly-correct documents.
//
//   ParenSeq seq = ParenAlphabet::Default().Parse("(()[]").value();
//   RepairResult fixed = Repair(seq, {}).value();
//   // fixed.distance == 1, IsBalanced(fixed.repaired)
//
// See DESIGN.md for the algorithm inventory and the paper mapping.

#ifndef DYCKFIX_SRC_CORE_DYCK_H_
#define DYCKFIX_SRC_CORE_DYCK_H_

#include <cstdint>

#include "src/alphabet/paren.h"
#include "src/alphabet/parse.h"
#include "src/core/edit_script.h"
#include "src/pipeline/telemetry.h"
#include "src/util/statusor.h"

namespace dyck {

/// Which distance is computed (paper Definition 4).
enum class Metric {
  /// edit1: deletions only. FPT algorithm: Theorem 26, O(n + d^6).
  kDeletionsOnly,
  /// edit2: deletions and substitutions. Theorem 40, O(n + d^16).
  kDeletionsAndSubstitutions,
};

/// Algorithm selection; kAuto picks the FPT solver with special-casing for
/// trivial inputs. The fixed underlying type matches the opaque
/// declaration in src/pipeline/telemetry.h.
enum class Algorithm : int {
  kAuto,
  /// The paper's contribution (Theorems 26 / 40) with the doubling driver.
  kFpt,
  /// O(n^3) interval DP oracle [AP72].
  kCubic,
  /// 2^{O(d)} n branching baseline.
  kBranching,
};

/// How Repair materializes an optimal solution.
enum class RepairStyle {
  /// Ops exactly as the metric defines them: deletions (+ substitutions).
  kMinimalEdits,
  /// Equal cost, but every deletion is traded for the insertion of a
  /// matching partner, so no input symbol is ever removed (see
  /// core/insertion_repair.h). Distances are unchanged.
  kPreserveContent,
};

struct Options {
  Metric metric = Metric::kDeletionsAndSubstitutions;
  Algorithm algorithm = Algorithm::kAuto;
  RepairStyle style = RepairStyle::kMinimalEdits;
  /// If >= 0, fail with BoundExceeded instead of computing distances larger
  /// than this (useful to cap work on hopelessly corrupt inputs).
  int64_t max_distance = -1;
};

struct RepairResult {
  int64_t distance = 0;
  /// Ops + alignment against the input sequence.
  EditScript script;
  /// The input with the script applied; always balanced.
  ParenSeq repaired;
  /// Per-stage observability of the pipeline run that produced this
  /// result: stage wall times, d-doubling trajectory, reduction ratio,
  /// the algorithm kAuto actually chose, and copy counters. See
  /// src/pipeline/telemetry.h.
  RepairTelemetry telemetry;
};

/// Distance from `seq` to the closest balanced sequence under the chosen
/// metric. Errors: BoundExceeded (distance > options.max_distance).
StatusOr<int64_t> Distance(const ParenSeq& seq, const Options& options);

/// Distance plus an optimal edit script and the repaired sequence.
StatusOr<RepairResult> Repair(const ParenSeq& seq, const Options& options);

}  // namespace dyck

#endif  // DYCKFIX_SRC_CORE_DYCK_H_
