// Content-preserving repair: trade deletions for insertions.
//
// The paper's distances (Definition 4) repair with deletions and
// substitutions only, but for document repair, deleting user content is
// usually the wrong call: given "{\"a\": [1, 2}", users want the missing
// "]" inserted, not the "[" removed. A folklore observation makes this
// free: in any optimal deletion script, each deleted symbol can instead
// be kept and given a freshly inserted matching partner — the repaired
// sequence stays balanced and the edit count is unchanged (so the
// insertion-augmented distance equals edit2; tests verify this against
// the general CFG parser with insertions enabled).
//
// PreserveContentScript performs that transformation in O(n): deleted
// closers get an opener inserted directly before them; deleted openers
// become "virtual" stack entries whose closer is inserted at the moment
// the surrounding structure closes past them (or at the end of input).

#ifndef DYCKFIX_SRC_CORE_INSERTION_REPAIR_H_
#define DYCKFIX_SRC_CORE_INSERTION_REPAIR_H_

#include "src/alphabet/paren.h"
#include "src/core/edit_script.h"
#include "src/util/statusor.h"

namespace dyck {

/// Rewrites `script` (a valid deletion+substitution repair of `seq`) into
/// an equal-cost insertion+substitution repair that keeps every input
/// symbol. Fails with InvalidArgument if `script` does not repair `seq`.
StatusOr<EditScript> PreserveContentScript(const ParenSeq& seq,
                                           const EditScript& script);

}  // namespace dyck

#endif  // DYCKFIX_SRC_CORE_INSERTION_REPAIR_H_
