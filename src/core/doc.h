// Persistent, splice-updatable repair document (ROADMAP: incremental
// repair for live editing).
//
// Repair() reruns the whole five-stage pipeline per call, so an editor
// paying one repair per keystroke pays O(n) per keystroke. RepairDoc keeps
// the token buffer *and* the pipeline's stage-1/2 artifacts alive between
// calls as a chunked cache: the document is cut into ~target-sized chunks,
// each carrying its Property-19 reduction residual, its zero-cost pairs,
// and its untyped height summary (src/profile/reduce.h ChunkSummary).
// Chunk summaries compose monoid-style (ReductionMerger / MergeHeight), so
//
//   Splice(pos, erase_len, insert)   dirties only the touched chunks, and
//   Repair(options)                  re-summarizes just those, re-merges
//                                    all residuals, and enters the
//                                    pipeline at stage 3 (Select)
//
// for a per-edit cost of O(chunk + total residual + solver(d)) instead of
// O(n). Results are byte-identical to the eager pipeline by construction:
// the merged artifacts are provably equal to what stages 1-2 would compute
// (see ReductionMerger), and the remaining stages are the very same code,
// entered through pipeline::RunInto's StageArtifacts overload. When a
// splice storm dirties more than half the cache (or chunk bookkeeping
// drifts), Repair falls back to a full rebuild — same answers, telemetry
// reports incremental=false.
//
// Telemetry: each result's RepairTelemetry carries
// {incremental, chunks_reused, chunks_recomputed}; the doc-side refresh /
// merge / materialize work is folded into the existing per-stage seconds.

#ifndef DYCKFIX_SRC_CORE_DOC_H_
#define DYCKFIX_SRC_CORE_DOC_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/alphabet/paren.h"
#include "src/core/context.h"
#include "src/core/dyck.h"
#include "src/profile/reduce.h"

namespace dyck {

class RepairDoc {
 public:
  /// An empty document; grow it with Splice.
  RepairDoc() = default;
  /// A document holding a copy of `initial`. `target_chunk_size` overrides
  /// the automatic chunking (clamped to >= 16); 0 keeps the default, which
  /// scales with the document size. Summaries are built lazily on the
  /// first Repair.
  explicit RepairDoc(ParenSeq initial, int64_t target_chunk_size = 0);

  // The doc owns scratch (RepairContext) and cached artifacts; neither is
  // meaningfully copyable.
  RepairDoc(const RepairDoc&) = delete;
  RepairDoc& operator=(const RepairDoc&) = delete;

  /// The current token buffer.
  const ParenSeq& tokens() const { return buffer_; }
  int64_t size() const { return static_cast<int64_t>(buffer_.size()); }

  /// Replaces tokens [pos, pos + erase_len) with `insert`. Touched chunks
  /// are merged into one dirty chunk (split back to target size when the
  /// edit is large); everything else keeps its summary. O(n) for the
  /// buffer memmove, O(#chunks) bookkeeping, no re-summarization here.
  /// Requires 0 <= pos <= size() and erase_len within bounds (checked).
  void Splice(int64_t pos, int64_t erase_len, ParenSpan insert);

  /// Repairs the current buffer. Identical results (distance, script,
  /// aligned pairs, repaired sequence, Status codes) to
  /// Repair(tokens(), options) for every Options combination; only the
  /// telemetry's incremental counters and stage timings differ.
  Status RepairInto(const Options& options, RepairResult* out);
  StatusOr<RepairResult> Repair(const Options& options = {});

  /// The untyped-relaxation distance lower bound (== approx::
  /// DyckRelaxationLowerBound on the buffer), folded from the per-chunk
  /// height summaries in O(#chunks). Refreshes dirty chunks if needed.
  int64_t UntypedLowerBound(bool allow_substitutions);

  /// Cache introspection, for tests and reuse stats.
  int64_t chunk_count() const { return static_cast<int64_t>(chunks_.size()); }
  int64_t dirty_chunk_count() const;

  /// The doc's scratch context (also usable to read last_telemetry).
  RepairContext& context() { return ctx_; }
  const RepairContext& context() const { return ctx_; }

 private:
  struct Chunk {
    int64_t len = 0;
    bool dirty = true;
    ChunkSummary summary;
  };

  // Refreshes the chunk cache: full rebuild when it pays (first repair,
  // > half dirty, or drifted bookkeeping), else re-summarize only dirty
  // chunks. Returns true on full rebuild; counts into *reused /
  // *recomputed.
  bool EnsureSummaries(int64_t* reused, int64_t* recomputed);
  void RebuildChunks();
  void SummarizeDirtyChunks();
  // Folds every chunk summary into merged_ / junction_pairs_.
  void MergeSummaries(bool with_matched_pairs);
  // Omitted-pairs completion: rebuilds the final aligned_pairs as the
  // sorted-by-open merge of per-chunk intra pairs, junction pairs, and the
  // solver's own pairs (already in out->script.aligned_pairs).
  void AssemblePairs(RepairResult* out);
  // Doc-side stand-in for stage 5's ApplyScript: segmented copies of the
  // untouched runs between ops.
  void Materialize(RepairResult* out);

  ParenSeq buffer_;
  std::vector<Chunk> chunks_;
  int64_t target_chunk_ = 0;
  int64_t requested_chunk_ = 0;  // constructor override; 0 = auto

  // Merged stage artifacts, valid until the next Splice. merged_has_pairs_
  // records whether matched_pairs was populated (it is skipped in
  // omitted-pairs mode, where AssemblePairs builds the alignment instead).
  Reduced merged_;
  std::vector<std::pair<int64_t, int64_t>> junction_pairs_;
  bool merged_valid_ = false;
  bool merged_has_pairs_ = false;
  // Cached planner d-hint per metric (0: deletions, 1: +substitutions).
  int64_t d_hint_[2] = {-1, -1};
  bool d_hint_valid_[2] = {false, false};

  RepairContext ctx_;
  std::vector<int32_t> close_of_scratch_;
  std::vector<std::pair<int64_t, int64_t>> extra_pairs_scratch_;
  std::vector<std::pair<int64_t, int64_t>> assembled_pairs_scratch_;
};

}  // namespace dyck

#endif  // DYCKFIX_SRC_CORE_DOC_H_
