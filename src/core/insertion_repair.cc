#include "src/core/insertion_repair.h"

#include <algorithm>
#include <vector>

#include "src/util/logging.h"

namespace dyck {

StatusOr<EditScript> PreserveContentScript(const ParenSeq& seq,
                                           const EditScript& script) {
  // Work on T = seq with substitutions applied; deletion positions become
  // the symbols to re-partner.
  ParenSeq t = seq;
  std::vector<bool> deleted(seq.size(), false);
  EditScript out;
  out.aligned_pairs = script.aligned_pairs;
  for (const EditOp& op : script.ops) {
    if (op.pos < 0 || op.pos >= static_cast<int64_t>(seq.size())) {
      return Status::InvalidArgument("script position out of range");
    }
    switch (op.kind) {
      case EditOpKind::kDelete:
        deleted[op.pos] = true;
        break;
      case EditOpKind::kSubstitute:
        t[op.pos] = op.replacement;
        out.ops.push_back(op);
        break;
      case EditOpKind::kInsert:
        return Status::InvalidArgument(
            "input script already contains insertions");
    }
  }

  struct Entry {
    ParenType type;
    bool is_virtual;  // a kept-instead-of-deleted opener awaiting a closer
  };
  std::vector<Entry> stack;
  for (int64_t p = 0; p < static_cast<int64_t>(t.size()); ++p) {
    const Paren& symbol = t[p];
    if (deleted[p]) {
      if (symbol.is_open) {
        stack.push_back({symbol.type, /*is_virtual=*/true});
      } else {
        // Give the kept closer a brand-new opener right before it.
        out.ops.push_back(
            {EditOpKind::kInsert, p, Paren::Open(symbol.type)});
      }
      continue;
    }
    if (symbol.is_open) {
      stack.push_back({symbol.type, /*is_virtual=*/false});
      continue;
    }
    // A surviving closer: close any virtual openers sitting between it and
    // its (surviving) partner first, innermost-out.
    while (!stack.empty() && stack.back().is_virtual) {
      out.ops.push_back(
          {EditOpKind::kInsert, p, Paren::Close(stack.back().type)});
      stack.pop_back();
    }
    if (stack.empty() || stack.back().type != symbol.type) {
      return Status::InvalidArgument(
          "script does not repair the sequence (surviving symbols are "
          "unbalanced)");
    }
    stack.pop_back();
  }
  // Close the remaining virtual openers at the end of the input.
  const int64_t end = static_cast<int64_t>(t.size());
  while (!stack.empty()) {
    if (!stack.back().is_virtual) {
      return Status::InvalidArgument(
          "script does not repair the sequence (unclosed surviving "
          "opener)");
    }
    out.ops.push_back(
        {EditOpKind::kInsert, end, Paren::Close(stack.back().type)});
    stack.pop_back();
  }

  // Order by position with inserts ahead of the substitute occupying the
  // same position (inserts apply before the symbol); equal-key order of
  // the inserts themselves (innermost-first nesting) is preserved.
  std::stable_sort(out.ops.begin(), out.ops.end(),
                   [](const EditOp& a, const EditOp& b) {
                     if (a.pos != b.pos) return a.pos < b.pos;
                     return a.kind == EditOpKind::kInsert &&
                            b.kind != EditOpKind::kInsert;
                   });
  std::sort(out.aligned_pairs.begin(), out.aligned_pairs.end());
  DYCK_DCHECK_EQ(out.Cost(), script.Cost());
  return out;
}

}  // namespace dyck
