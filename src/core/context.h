// Reusable per-worker repair state: arena scratch plus the per-thread
// status the C API used to keep in scattered thread_local globals.
//
// A RepairContext owns every piece of working memory a single-document
// repair needs — the monotonic arena backing the FPT solvers' memo tables
// and split lists, typed scratch vectors for the height profile / balance
// stack / reduced sequence / valley structure, the wave-frontier pool for
// the LMS98 oracle, and the edit-script reconstruction stack. It is
// created once (typically one per worker thread) and reused across
// documents: BeginDocument() rewinds the arena in O(1) and keeps every
// vector's capacity, so after warmup a steady workload performs zero heap
// allocations of scratch per document.
//
// The context is also where cross-cutting per-thread state lives. The C
// API's last-error string and last-telemetry record are members here
// (capi.cc reads RepairContext::CurrentThread() instead of three
// thread_local globals), and the budget machinery shares the same single
// thread_local slot (RepairThreadState in util/budget.h).
//
// Threading: a RepairContext is NOT thread-safe; use one per thread.
// CurrentThread() hands each thread its own lazily-created default, which
// is how the batch engine gets one long-lived context per pool worker
// without any explicit plumbing.

#ifndef DYCKFIX_SRC_CORE_CONTEXT_H_
#define DYCKFIX_SRC_CORE_CONTEXT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/alphabet/paren.h"
#include "src/baseline/greedy.h"
#include "src/pipeline/telemetry.h"
#include "src/profile/reduce.h"
#include "src/profile/valleys.h"
#include "src/util/arena.h"
#include "src/util/budget.h"

namespace dyck {

class RepairContext {
 public:
  RepairContext() = default;
  ~RepairContext() = default;

  RepairContext(const RepairContext&) = delete;
  RepairContext& operator=(const RepairContext&) = delete;

  /// The calling thread's ambient context: the one installed by the
  /// innermost RepairContextScope if any, else a lazily-created
  /// thread-local default that lives for the thread's lifetime.
  static RepairContext& CurrentThread();

  /// Starts a new document: rewinds the arena in O(1) and invalidates all
  /// arena-backed scratch of the previous document. Every typed scratch
  /// vector keeps its capacity. Callers must not hold solvers or arena
  /// pointers from the previous document across this call.
  void BeginDocument();

  /// Documents started on this context (== arena resets).
  int64_t documents() const { return documents_; }

  Arena& arena() { return arena_; }
  const Arena& arena() const { return arena_; }

  // --- Typed scratch, one slot per pipeline consumer. Each accessor hands
  // out the same object every document; consumers clear/refill it.

  /// Balance-scan parse stack (IsBalanced overload).
  std::vector<ParenType>& type_stack() { return type_stack_; }
  /// Survivor-index stack for AppendMatchedPairs on the balanced path.
  std::vector<int64_t>& index_stack() { return index_stack_; }
  /// Height profile h (Definition 15) of the reduced sequence.
  std::vector<int64_t>& heights() { return heights_; }
  /// Property-19 reduction output (Fact 18).
  Reduced& reduced() { return reduced_; }
  /// Valley/run decomposition of the reduced sequence.
  BlockStructure& blocks() { return blocks_; }
  /// Recycled wave-frontier buffers for the PairOracle's O(d^3) queries.
  ScratchPool<int64_t>& wave_pool() { return wave_pool_; }
  /// Subproblem stack for iterative edit-script reconstruction.
  std::vector<std::pair<int64_t, int64_t>>& work_stack() {
    return work_stack_;
  }
  /// Flat DP cell storage for the cubic baseline's interval table.
  std::vector<int32_t>& cubic_cells() { return cubic_cells_; }
  /// Parse stack of the greedy scan — the planner's d-hint estimate and
  /// the budget fallback share it.
  std::vector<GreedyEntry>& greedy_stack() { return greedy_stack_; }
  /// Type sequences handed to BandedAlign by the banded solver (opening
  /// run and reversed closing run of a single-peak reduced input).
  std::vector<int32_t>& band_types_a() { return band_types_a_; }
  std::vector<int32_t>& band_types_b() { return band_types_b_; }

  // --- Per-context state the C API used to keep in thread_local globals.

  /// Message of the most recent failure observed through the C API on
  /// this context; cleared (empty) by successful calls.
  std::string& last_error() { return last_error_; }
  const std::string& last_error() const { return last_error_; }

  bool has_last_telemetry() const { return has_last_telemetry_; }
  const RepairTelemetry& last_telemetry() const { return last_telemetry_; }
  void set_last_telemetry(const RepairTelemetry& telemetry) {
    last_telemetry_ = telemetry;
    has_last_telemetry_ = true;
  }
  void clear_last_telemetry() { has_last_telemetry_ = false; }

 private:
  Arena arena_;
  int64_t documents_ = 0;

  std::vector<ParenType> type_stack_;
  std::vector<int64_t> index_stack_;
  std::vector<int64_t> heights_;
  Reduced reduced_;
  BlockStructure blocks_;
  ScratchPool<int64_t> wave_pool_;
  std::vector<std::pair<int64_t, int64_t>> work_stack_;
  std::vector<int32_t> cubic_cells_;
  std::vector<GreedyEntry> greedy_stack_;
  std::vector<int32_t> band_types_a_;
  std::vector<int32_t> band_types_b_;

  std::string last_error_;
  RepairTelemetry last_telemetry_;
  bool has_last_telemetry_ = false;
};

/// Installs `context` as the calling thread's ambient context for the
/// scope's lifetime (RepairContext::CurrentThread returns it). Nesting
/// restores the previous context on destruction. The C API's
/// dyckfix_context_repair uses this so explicit-context calls route their
/// scratch, telemetry, and errors to the caller's context.
class RepairContextScope {
 public:
  explicit RepairContextScope(RepairContext* context)
      : previous_(CurrentRepairThreadState().context) {
    CurrentRepairThreadState().context = context;
  }
  ~RepairContextScope() { CurrentRepairThreadState().context = previous_; }

  RepairContextScope(const RepairContextScope&) = delete;
  RepairContextScope& operator=(const RepairContextScope&) = delete;

 private:
  RepairContext* previous_;
};

}  // namespace dyck

#endif  // DYCKFIX_SRC_CORE_CONTEXT_H_
