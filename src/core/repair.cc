#include <utility>

#include "src/baseline/branching.h"
#include "src/baseline/cubic.h"
#include "src/core/dyck.h"
#include "src/core/insertion_repair.h"
#include "src/fpt/deletion.h"
#include "src/fpt/substitution.h"
#include "src/profile/reduce.h"
#include "src/util/logging.h"

namespace dyck {

namespace {

bool UseSubstitutions(Metric metric) {
  return metric == Metric::kDeletionsAndSubstitutions;
}

// Doubling driver over a script-producing probe. `probe(d)` returns
// BoundExceeded to request a larger d.
template <typename Probe>
StatusOr<FptResult> DoublingRepair(int64_t cap, int64_t max_distance,
                                   Probe probe) {
  for (int64_t d = 1;; d *= 2) {
    const int64_t bound =
        max_distance >= 0 ? std::min(d, max_distance) : std::min(d, cap);
    auto result = probe(static_cast<int32_t>(bound));
    if (result.ok()) {
      return result;
    }
    if (!result.status().IsBoundExceeded()) return result.status();
    if (max_distance >= 0 && bound >= max_distance) return result.status();
    if (bound >= cap) {
      return Status::Internal("doubling repair exceeded the trivial cap");
    }
  }
}

}  // namespace

StatusOr<RepairResult> Repair(const ParenSeq& seq, const Options& options) {
  const bool subs = UseSubstitutions(options.metric);
  const int64_t cap = static_cast<int64_t>(seq.size()) + 1;

  RepairResult out;
  Algorithm algorithm = options.algorithm;
  if (algorithm == Algorithm::kAuto) {
    if (IsBalanced(seq)) {
      out.repaired = seq;
      // Record the trivial full alignment for arc rendering.
      Reduced reduced = Reduce(seq);
      out.script.aligned_pairs = std::move(reduced.matched_pairs);
      out.script.Normalize();
      return out;
    }
    algorithm = Algorithm::kFpt;
  }

  switch (algorithm) {
    case Algorithm::kFpt: {
      StatusOr<FptResult> result = [&]() -> StatusOr<FptResult> {
        if (subs) {
          SubstitutionSolver solver(seq);
          return DoublingRepair(cap, options.max_distance, [&](int32_t d) {
            return solver.Repair(d);
          });
        }
        DeletionSolver solver(seq);
        return DoublingRepair(cap, options.max_distance,
                              [&](int32_t d) { return solver.Repair(d); });
      }();
      if (!result.ok()) return result.status();
      out.distance = result->distance;
      out.script = std::move(result->script);
      break;
    }
    case Algorithm::kCubic: {
      CubicResult result = CubicRepair(seq, subs);
      if (options.max_distance >= 0 &&
          result.distance > options.max_distance) {
        return Status::BoundExceeded("distance exceeds max_distance " +
                                     std::to_string(options.max_distance));
      }
      out.distance = result.distance;
      out.script = std::move(result.script);
      break;
    }
    case Algorithm::kBranching: {
      StatusOr<FptResult> result =
          DoublingRepair(cap, options.max_distance,
                         [&](int32_t d) -> StatusOr<FptResult> {
                           DYCK_ASSIGN_OR_RETURN(
                               BranchingResult r,
                               BranchingRepair(seq, subs, d));
                           FptResult fpt;
                           fpt.distance = r.distance;
                           fpt.script = std::move(r.script);
                           return fpt;
                         });
      if (!result.ok()) return result.status();
      out.distance = result->distance;
      out.script = std::move(result->script);
      break;
    }
    case Algorithm::kAuto:
      return Status::Internal("unhandled algorithm selector");
  }

  if (options.style == RepairStyle::kPreserveContent) {
    DYCK_ASSIGN_OR_RETURN(out.script,
                          PreserveContentScript(seq, out.script));
  }
  out.repaired = ApplyScript(seq, out.script);
  DYCK_DCHECK(IsBalanced(out.repaired));
  return out;
}

}  // namespace dyck
