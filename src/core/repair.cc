#include "src/core/dyck.h"
#include "src/pipeline/pipeline.h"

namespace dyck {

// Repair is the staged pipeline (src/pipeline): Normalize → Profile/Reduce
// → Select → Solve → Materialize, with per-stage telemetry on the result.
StatusOr<RepairResult> Repair(const ParenSeq& seq, const Options& options) {
  return pipeline::Run(seq, options);
}

}  // namespace dyck
