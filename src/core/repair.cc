#include "src/core/dyck.h"
#include "src/pipeline/pipeline.h"

namespace dyck {

// Repair is the staged pipeline (src/pipeline): Normalize → Profile/Reduce
// → Select → Solve → Materialize, with per-stage telemetry on the result.
StatusOr<RepairResult> Repair(const ParenSeq& seq, const Options& options,
                              RepairContext* context) {
  return pipeline::Run(seq, options, context);
}

Status RepairInto(const ParenSeq& seq, const Options& options,
                  RepairContext* context, RepairResult* out) {
  return pipeline::RunInto(seq, options, context, out);
}

}  // namespace dyck
