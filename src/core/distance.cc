#include <algorithm>
#include <optional>

#include "src/baseline/branching.h"
#include "src/baseline/cubic.h"
#include "src/baseline/dyck1.h"
#include "src/core/dyck.h"
#include "src/fpt/deletion.h"
#include "src/fpt/substitution.h"
#include "src/util/budget.h"
#include "src/util/logging.h"

namespace dyck {

namespace {

bool UseSubstitutions(Metric metric) {
  return metric == Metric::kDeletionsAndSubstitutions;
}

Status BoundError(int64_t bound) {
  return Status::BoundExceeded("distance exceeds max_distance " +
                               std::to_string(bound));
}

// Doubling driver shared by the FPT and branching paths. `probe(d)` returns
// the distance if it is <= d. The cap keeps the driver finite: every
// sequence is repairable with at most |seq| deletions.
template <typename Probe>
StatusOr<int64_t> DoublingDriver(int64_t cap, int64_t max_distance,
                                 Probe probe) {
  for (int64_t d = 1;; d *= 2) {
    BudgetCheckpoint("pipeline.doubling");
    const int64_t bound =
        max_distance >= 0 ? std::min(d, max_distance) : std::min(d, cap);
    if (const auto v = probe(static_cast<int32_t>(bound)); v.has_value()) {
      if (max_distance >= 0 && *v > max_distance) {
        return BoundError(max_distance);
      }
      return *v;
    }
    if (bound >= cap) {
      return Status::Internal("doubling driver exceeded the trivial cap");
    }
    if (max_distance >= 0 && bound >= max_distance) {
      return BoundError(max_distance);
    }
  }
}

StatusOr<int64_t> DistanceImpl(const ParenSeq& seq, const Options& options) {
  const bool subs = UseSubstitutions(options.metric);
  const int64_t cap = static_cast<int64_t>(seq.size()) + 1;

  Algorithm algorithm = options.algorithm;
  if (algorithm == Algorithm::kAuto) {
    if (IsBalanced(seq)) return 0;
    // Single-type inputs have a closed form (src/baseline/dyck1.h).
    if (const auto v = Dyck1Distance(seq, subs); v.has_value()) {
      if (options.max_distance >= 0 && *v > options.max_distance) {
        return BoundError(options.max_distance);
      }
      return *v;
    }
    algorithm = Algorithm::kFpt;
  }

  switch (algorithm) {
    case Algorithm::kFpt: {
      if (subs) {
        SubstitutionSolver solver(seq);
        return DoublingDriver(cap, options.max_distance,
                              [&](int32_t d) { return solver.Distance(d); });
      }
      DeletionSolver solver(seq);
      return DoublingDriver(cap, options.max_distance,
                            [&](int32_t d) { return solver.Distance(d); });
    }
    case Algorithm::kCubic: {
      const int64_t v = CubicDistance(seq, subs);
      if (options.max_distance >= 0 && v > options.max_distance) {
        return BoundError(options.max_distance);
      }
      return v;
    }
    case Algorithm::kBranching:
      return DoublingDriver(cap, options.max_distance, [&](int32_t d) {
        return BranchingDistance(seq, subs, d);
      });
    case Algorithm::kAuto:
      break;
  }
  return Status::Internal("unhandled algorithm selector");
}

}  // namespace

StatusOr<int64_t> Distance(const ParenSeq& seq, const Options& options) {
  // Distance has no degraded channel (there is no script to substitute),
  // so Options::on_budget_exceeded is ignored: a tripped budget always
  // surfaces as its Status. An externally installed budget (batch runtime)
  // wins over the Options limits, exactly as in pipeline::Run.
  Budget* budget = BudgetScope::Current();
  std::optional<Budget> own;
  std::optional<BudgetScope> scope;
  if (budget == nullptr) {
    const BudgetLimits limits{options.timeout_ms, options.max_work_steps,
                              options.max_memory_bytes};
    if (!limits.Unlimited() || BudgetFaultInjectionArmed()) {
      own.emplace(limits);
      scope.emplace(&*own);
      budget = &*own;
    }
  }
  if (budget == nullptr) return DistanceImpl(seq, options);
  try {
    return DistanceImpl(seq, options);
  } catch (const BudgetExceededError& error) {
    return error.status;
  }
}

}  // namespace dyck
