#include <algorithm>

#include "src/baseline/branching.h"
#include "src/baseline/cubic.h"
#include "src/baseline/dyck1.h"
#include "src/core/dyck.h"
#include "src/fpt/deletion.h"
#include "src/fpt/substitution.h"
#include "src/util/logging.h"

namespace dyck {

namespace {

bool UseSubstitutions(Metric metric) {
  return metric == Metric::kDeletionsAndSubstitutions;
}

Status BoundError(int64_t bound) {
  return Status::BoundExceeded("distance exceeds max_distance " +
                               std::to_string(bound));
}

// Doubling driver shared by the FPT and branching paths. `probe(d)` returns
// the distance if it is <= d. The cap keeps the driver finite: every
// sequence is repairable with at most |seq| deletions.
template <typename Probe>
StatusOr<int64_t> DoublingDriver(int64_t cap, int64_t max_distance,
                                 Probe probe) {
  for (int64_t d = 1;; d *= 2) {
    const int64_t bound =
        max_distance >= 0 ? std::min(d, max_distance) : std::min(d, cap);
    if (const auto v = probe(static_cast<int32_t>(bound)); v.has_value()) {
      if (max_distance >= 0 && *v > max_distance) {
        return BoundError(max_distance);
      }
      return *v;
    }
    if (bound >= cap) {
      return Status::Internal("doubling driver exceeded the trivial cap");
    }
    if (max_distance >= 0 && bound >= max_distance) {
      return BoundError(max_distance);
    }
  }
}

}  // namespace

StatusOr<int64_t> Distance(const ParenSeq& seq, const Options& options) {
  const bool subs = UseSubstitutions(options.metric);
  const int64_t cap = static_cast<int64_t>(seq.size()) + 1;

  Algorithm algorithm = options.algorithm;
  if (algorithm == Algorithm::kAuto) {
    if (IsBalanced(seq)) return 0;
    // Single-type inputs have a closed form (src/baseline/dyck1.h).
    if (const auto v = Dyck1Distance(seq, subs); v.has_value()) {
      if (options.max_distance >= 0 && *v > options.max_distance) {
        return BoundError(options.max_distance);
      }
      return *v;
    }
    algorithm = Algorithm::kFpt;
  }

  switch (algorithm) {
    case Algorithm::kFpt: {
      if (subs) {
        SubstitutionSolver solver(seq);
        return DoublingDriver(cap, options.max_distance,
                              [&](int32_t d) { return solver.Distance(d); });
      }
      DeletionSolver solver(seq);
      return DoublingDriver(cap, options.max_distance,
                            [&](int32_t d) { return solver.Distance(d); });
    }
    case Algorithm::kCubic: {
      const int64_t v = CubicDistance(seq, subs);
      if (options.max_distance >= 0 && v > options.max_distance) {
        return BoundError(options.max_distance);
      }
      return v;
    }
    case Algorithm::kBranching:
      return DoublingDriver(cap, options.max_distance, [&](int32_t d) {
        return BranchingDistance(seq, subs, d);
      });
    case Algorithm::kAuto:
      break;
  }
  return Status::Internal("unhandled algorithm selector");
}

}  // namespace dyck
