#include <optional>

#include "src/baseline/dyck1.h"
#include "src/core/context.h"
#include "src/core/dyck.h"
#include "src/core/solver.h"
#include "src/pipeline/planner.h"
#include "src/util/budget.h"
#include "src/util/logging.h"

namespace dyck {

namespace {

bool UseSubstitutions(Metric metric) {
  return metric == Metric::kDeletionsAndSubstitutions;
}

Status BoundError(int64_t bound) {
  return Status::BoundExceeded("distance exceeds max_distance " +
                               std::to_string(bound));
}

StatusOr<int64_t> DistanceImpl(const ParenSeq& seq, const Options& options) {
  const bool subs = UseSubstitutions(options.metric);

  SolveRequest request;
  request.seq = seq;
  request.use_substitutions = subs;
  request.max_distance = options.max_distance;
  request.doubling_cap = static_cast<int64_t>(seq.size()) + 1;
  request.max_approximation_factor = options.max_approximation_factor;

  const Solver* solver = nullptr;
  if (!options.solver.empty()) {
    solver = SolverRegistry::Global().Find(options.solver);
    if (solver == nullptr) {
      return Status::InvalidArgument("unknown solver '" + options.solver +
                                     "'");
    }
  } else if (options.algorithm != Algorithm::kAuto) {
    solver = SolverRegistry::Global().ForAlgorithm(options.algorithm);
    if (solver == nullptr) {
      return Status::Internal(
          std::string("no solver registered for algorithm '") +
          AlgorithmName(options.algorithm) + "'");
    }
  } else {
    if (IsBalanced(seq)) return 0;
    // Single-type inputs have a closed form (src/baseline/dyck1.h).
    if (const auto v = Dyck1Distance(seq, subs); v.has_value()) {
      if (options.max_distance >= 0 && *v > options.max_distance) {
        return BoundError(options.max_distance);
      }
      return *v;
    }
    // No precomputed reduction exists on this path (request.reduced stays
    // null), so reduced-shape-gated solvers like banded sit out.
    DYCK_ASSIGN_OR_RETURN(
        const PlanDecision plan,
        PlanSolver(request, RepairContext::CurrentThread()));
    solver = plan.solver;
  }
  DYCK_RETURN_NOT_OK(solver->CheckMetric(subs));
  return solver->SolveDistance(request);
}

}  // namespace

StatusOr<int64_t> Distance(const ParenSeq& seq, const Options& options) {
  // Distance has no degraded channel (there is no script to substitute),
  // so Options::on_budget_exceeded is ignored: a tripped budget always
  // surfaces as its Status. An externally installed budget (batch runtime)
  // wins over the Options limits, exactly as in pipeline::Run.
  Budget* budget = BudgetScope::Current();
  std::optional<Budget> own;
  std::optional<BudgetScope> scope;
  if (budget == nullptr) {
    const BudgetLimits limits{options.timeout_ms, options.max_work_steps,
                              options.max_memory_bytes};
    if (!limits.Unlimited() || BudgetFaultInjectionArmed()) {
      own.emplace(limits);
      scope.emplace(&*own);
      budget = &*own;
    }
  }
  if (budget == nullptr) return DistanceImpl(seq, options);
  try {
    return DistanceImpl(seq, options);
  } catch (const BudgetExceededError& error) {
    return error.status;
  }
}

}  // namespace dyck
