#include "src/core/edit_script.h"

#include <algorithm>

#include "src/util/logging.h"

namespace dyck {

void EditScript::Normalize() {
  // Stable: multiple inserts at one position keep their relative order,
  // and an insert emitted before a delete/substitute at the same position
  // stays before it.
  std::stable_sort(
      ops.begin(), ops.end(),
      [](const EditOp& a, const EditOp& b) { return a.pos < b.pos; });
  std::sort(aligned_pairs.begin(), aligned_pairs.end());
}

std::string EditScript::ToString() const {
  std::string out;
  for (const EditOp& op : ops) {
    if (!out.empty()) out += ", ";
    if (op.kind == EditOpKind::kDelete) {
      out += "del@" + std::to_string(op.pos);
    } else if (op.kind == EditOpKind::kSubstitute) {
      out += "sub@" + std::to_string(op.pos) + "->" +
             (op.replacement.is_open ? "open" : "close") +
             std::to_string(op.replacement.type);
    } else {
      out += "ins@" + std::to_string(op.pos) + "+" +
             (op.replacement.is_open ? "open" : "close") +
             std::to_string(op.replacement.type);
    }
  }
  return out.empty() ? "(no edits)" : out;
}

std::string EditScript::ToJson() const {
  std::string out = "{\"cost\":" + std::to_string(Cost()) + ",\"ops\":[";
  bool first = true;
  for (const EditOp& op : ops) {
    if (!first) out += ",";
    first = false;
    if (op.kind == EditOpKind::kDelete) {
      out += "{\"op\":\"delete\",\"pos\":" + std::to_string(op.pos) + "}";
    } else {
      out += std::string("{\"op\":\"") +
             (op.kind == EditOpKind::kSubstitute ? "substitute" : "insert") +
             "\",\"pos\":" + std::to_string(op.pos) +
             ",\"type\":" + std::to_string(op.replacement.type) +
             ",\"open\":" + (op.replacement.is_open ? "true" : "false") +
             "}";
    }
  }
  out += "]}";
  return out;
}

ParenSeq ApplyScript(const ParenSeq& seq, const EditScript& script) {
  ParenSeq out;
  ApplyScript(seq, script, &out);
  return out;
}

void ApplyScript(const ParenSeq& seq, const EditScript& script,
                 ParenSeq* out) {
  out->clear();
  out->reserve(seq.size() + script.ops.size());
  size_t next_op = 0;
  for (int64_t i = 0; i <= static_cast<int64_t>(seq.size()); ++i) {
    while (next_op < script.ops.size() && script.ops[next_op].pos == i &&
           script.ops[next_op].kind == EditOpKind::kInsert) {
      out->push_back(script.ops[next_op].replacement);
      ++next_op;
    }
    if (i == static_cast<int64_t>(seq.size())) break;
    if (next_op < script.ops.size() && script.ops[next_op].pos == i) {
      const EditOp& op = script.ops[next_op];
      ++next_op;
      if (op.kind == EditOpKind::kDelete) continue;
      out->push_back(op.replacement);
    } else {
      out->push_back(seq[i]);
    }
  }
  DYCK_CHECK_EQ(next_op, script.ops.size())
      << "script op positions out of range or unsorted";
}

int32_t PairCost(const Paren& left, const Paren& right,
                 bool allow_substitutions) {
  if (left.Matches(right)) return 0;
  if (!allow_substitutions) return kPairImpossible;
  if (!left.is_open && right.is_open) return 2;  // both must be rewritten
  return 1;  // one substitution aligns the pair
}

void AppendPairAlignment(ParenSpan seq, int64_t i, int64_t j,
                         EditScript* script) {
  const Paren& left = seq[i];
  const Paren& right = seq[j];
  if (left.Matches(right)) {
    // exact match, zero cost
  } else if (left.is_open) {
    // open/close type mismatch or open/open: rewrite the right symbol.
    script->ops.push_back(
        {EditOpKind::kSubstitute, j, Paren::Close(left.type)});
  } else if (!right.is_open) {
    // close/close: rewrite the left symbol.
    script->ops.push_back(
        {EditOpKind::kSubstitute, i, Paren::Open(right.type)});
  } else {
    // close/open: rewrite both.
    script->ops.push_back(
        {EditOpKind::kSubstitute, i, Paren::Open(left.type)});
    script->ops.push_back(
        {EditOpKind::kSubstitute, j, Paren::Close(left.type)});
  }
  script->aligned_pairs.emplace_back(i, j);
}

Status ValidateScript(const ParenSeq& seq, const EditScript& script,
                      int64_t expected_cost, bool allow_substitutions,
                      bool allow_insertions) {
  if (script.Cost() != expected_cost) {
    return Status::Internal("script cost " + std::to_string(script.Cost()) +
                            " != reported distance " +
                            std::to_string(expected_cost));
  }
  int64_t prev_pos = -1;
  int64_t prev_consuming_pos = -1;  // last delete/substitute position
  for (const EditOp& op : script.ops) {
    if (op.pos < prev_pos) {
      return Status::Internal("script ops not sorted by position");
    }
    prev_pos = op.pos;
    if (op.kind == EditOpKind::kInsert) {
      if (!allow_insertions) {
        return Status::Internal(
            "insertion produced under a paper metric (edit1/edit2)");
      }
      if (op.pos < 0 || op.pos > static_cast<int64_t>(seq.size())) {
        return Status::Internal("insert position out of range: " +
                                std::to_string(op.pos));
      }
      if (op.pos == prev_consuming_pos) {
        return Status::Internal(
            "insert listed after a delete/substitute at the same position "
            "(inserts apply before the symbol; use pos+1 to insert after)");
      }
      continue;
    }
    if (op.pos <= prev_consuming_pos) {
      return Status::Internal(
          "multiple delete/substitute ops on one position");
    }
    prev_consuming_pos = op.pos;
    if (op.pos < 0 || op.pos >= static_cast<int64_t>(seq.size())) {
      return Status::Internal("script op position out of range: " +
                              std::to_string(op.pos));
    }
    if (op.kind == EditOpKind::kSubstitute) {
      if (!allow_substitutions) {
        return Status::Internal(
            "substitution produced under the deletions-only metric");
      }
      if (op.replacement == seq[op.pos]) {
        return Status::Internal("substitution replaces a symbol by itself");
      }
    }
  }
  if (!IsBalanced(ApplyScript(seq, script))) {
    return Status::Internal("script does not repair the sequence: " +
                            script.ToString());
  }
  return Status::OK();
}

}  // namespace dyck
