#include "src/core/batch.h"

namespace dyck {

runtime::BatchRepairOutcome RepairBatch(const std::vector<ParenSeq>& docs,
                                        const Options& options,
                                        const runtime::BatchOptions& batch) {
  runtime::BatchRepairEngine engine(batch);
  return engine.RepairAll(docs, options);
}

}  // namespace dyck
