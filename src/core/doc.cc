#include "src/core/doc.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/baseline/greedy.h"
#include "src/core/solver.h"
#include "src/pipeline/pipeline.h"
#include "src/profile/height.h"
#include "src/util/logging.h"

namespace dyck {

namespace {

// Chunk sizing: small enough that one keystroke re-summarizes a sliver of
// the document, large enough that the O(#chunks) merge bookkeeping stays
// negligible next to it. Scales with n so tiny documents use one chunk.
constexpr int64_t kMinChunk = 16;
constexpr int64_t kDefaultMinChunk = 1024;
constexpr int64_t kDefaultMaxChunk = 8192;

int64_t ChooseChunkTarget(int64_t n, int64_t requested) {
  if (requested > 0) return std::max(requested, kMinChunk);
  return std::clamp(n / 64, kDefaultMinChunk, kDefaultMaxChunk);
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

RepairDoc::RepairDoc(ParenSeq initial, int64_t target_chunk_size)
    : buffer_(std::move(initial)), requested_chunk_(target_chunk_size) {}

int64_t RepairDoc::dirty_chunk_count() const {
  int64_t dirty = 0;
  for (const Chunk& c : chunks_) dirty += c.dirty ? 1 : 0;
  return dirty;
}

void RepairDoc::Splice(int64_t pos, int64_t erase_len, ParenSpan insert) {
  const int64_t n = size();
  DYCK_CHECK(pos >= 0 && pos <= n);
  DYCK_CHECK(erase_len >= 0 && pos + erase_len <= n);
  const int64_t ins = static_cast<int64_t>(insert.size());
  if (erase_len > 0) {
    buffer_.erase(buffer_.begin() + pos, buffer_.begin() + pos + erase_len);
  }
  if (ins > 0) {
    buffer_.insert(buffer_.begin() + pos, insert.begin(), insert.end());
  }
  merged_valid_ = false;
  d_hint_valid_[0] = d_hint_valid_[1] = false;
  if (chunks_.empty()) return;  // no cache yet; the first Repair builds it

  // Locate the chunk range [a, b] covering [pos, pos + erase_len). A pure
  // insert at a boundary lands in the right-hand chunk (the last chunk for
  // pos == n).
  size_t a = 0;
  int64_t off = 0;  // start offset of chunk a
  while (a + 1 < chunks_.size() && off + chunks_[a].len <= pos) {
    off += chunks_[a].len;
    ++a;
  }
  size_t b = a;
  int64_t covered = chunks_[a].len;
  while (off + covered < pos + erase_len) {
    ++b;
    DYCK_CHECK(b < chunks_.size());
    covered += chunks_[b].len;
  }

  // Collapse [a, b] into one dirty chunk with the post-edit length.
  chunks_[a].len = covered - erase_len + ins;
  chunks_[a].dirty = true;
  if (b > a) chunks_.erase(chunks_.begin() + a + 1, chunks_.begin() + b + 1);
  if (chunks_[a].len == 0) {
    chunks_.erase(chunks_.begin() + a);
    return;
  }
  // A chunk bloated by repeated inserts (or a huge paste) would make every
  // later edit in it pay O(bloat); split it back toward target size.
  if (target_chunk_ > 0 && chunks_[a].len > 2 * target_chunk_) {
    const int64_t len = chunks_[a].len;
    const int64_t pieces = (len + target_chunk_ - 1) / target_chunk_;
    const int64_t base = len / pieces;
    const int64_t rem = len % pieces;
    chunks_[a].len = base + (rem > 0 ? 1 : 0);
    std::vector<Chunk> extra(static_cast<size_t>(pieces - 1));
    for (int64_t p = 1; p < pieces; ++p) {
      extra[p - 1].len = base + (p < rem ? 1 : 0);
      extra[p - 1].dirty = true;
    }
    chunks_.insert(chunks_.begin() + a + 1,
                   std::make_move_iterator(extra.begin()),
                   std::make_move_iterator(extra.end()));
  }
}

bool RepairDoc::EnsureSummaries(int64_t* reused, int64_t* recomputed) {
  const int64_t n = size();
  if (n == 0) {
    chunks_.clear();
    *reused = 0;
    *recomputed = 0;
    return false;
  }
  const int64_t dirty = dirty_chunk_count();
  const int64_t total = static_cast<int64_t>(chunks_.size());
  const int64_t ideal =
      target_chunk_ > 0 ? (n + target_chunk_ - 1) / target_chunk_ : 0;
  // Rebuild when it pays: no cache yet, more than half the chunks dirty
  // (re-merging them incrementally would cost about as much), or the chunk
  // count has drifted far from ideal after splice-driven merges/splits.
  const bool rebuild = chunks_.empty() || 2 * dirty > total ||
                       total > 4 * ideal + 8;
  if (rebuild) {
    RebuildChunks();
    *reused = 0;
    *recomputed = static_cast<int64_t>(chunks_.size());
    return true;
  }
  *reused = total - dirty;
  *recomputed = dirty;
  if (dirty > 0) SummarizeDirtyChunks();
  return false;
}

void RepairDoc::RebuildChunks() {
  const int64_t n = size();
  target_chunk_ = ChooseChunkTarget(n, requested_chunk_);
  const int64_t count = std::max<int64_t>((n + target_chunk_ - 1) /
                                              target_chunk_,
                                          1);
  chunks_.resize(static_cast<size_t>(count));  // keeps summary capacity
  const int64_t base = n / count;
  const int64_t rem = n % count;
  for (int64_t i = 0; i < count; ++i) {
    chunks_[i].len = base + (i < rem ? 1 : 0);
    chunks_[i].dirty = true;
  }
  SummarizeDirtyChunks();
  merged_valid_ = false;
}

void RepairDoc::SummarizeDirtyChunks() {
  const ParenSpan view(buffer_);
  int64_t off = 0;
  for (Chunk& c : chunks_) {
    if (c.dirty) {
      SummarizeChunk(view.subspan(off, c.len), &c.summary,
                     &close_of_scratch_);
      c.dirty = false;
    }
    off += c.len;
  }
  DYCK_DCHECK_EQ(off, size());
}

void RepairDoc::MergeSummaries(bool with_matched_pairs) {
  ReductionMerger merger;
  merger.Reset(&merged_, &junction_pairs_, with_matched_pairs);
  int64_t off = 0;
  for (const Chunk& c : chunks_) {
    merger.Append(c.summary, off);
    off += c.len;
  }
  merger.Finish();
  merged_valid_ = true;
  merged_has_pairs_ = with_matched_pairs;
}

int64_t RepairDoc::UntypedLowerBound(bool allow_substitutions) {
  int64_t reused = 0;
  int64_t recomputed = 0;
  EnsureSummaries(&reused, &recomputed);
  HeightSummary h;
  for (const Chunk& c : chunks_) h = MergeHeight(h, c.summary.height);
  return SummaryLowerBound(h, allow_substitutions);
}

Status RepairDoc::RepairInto(const Options& options, RepairResult* out) {
  const auto refresh_start = std::chrono::steady_clock::now();
  int64_t reused = 0;
  int64_t recomputed = 0;
  const bool rebuilt = EnsureSummaries(&reused, &recomputed);

  const bool subs = options.metric == Metric::kDeletionsAndSubstitutions;
  const bool is_auto =
      options.solver.empty() && options.algorithm == Algorithm::kAuto;
  const bool exact_only = options.max_approximation_factor <= 1.0;
  // Omitted-pairs mode: hand the solvers a Reduced whose matched_pairs is
  // empty, so no solver copies/sorts the O(n) zero-cost alignment, and
  // assemble the final aligned_pairs ourselves from the per-chunk pair
  // lists. Whether the serving solver's script lacks exactly those pairs
  // must be decidable from its caps().needs_reduced, which rules out the
  // "approx" refinement solver (it serves either a greedy full-sequence
  // script or an FPT reduced-based one, indistinguishable from outside)
  // and the preserve-content style (its transform consumes the pairs
  // inside stage 5).
  const bool forced_approx_family =
      options.algorithm == Algorithm::kApprox || options.solver == "approx";
  const bool omit_pairs = exact_only && !forced_approx_family &&
                          options.style == RepairStyle::kMinimalEdits;

  if (!merged_valid_ || merged_has_pairs_ == omit_pairs) {
    MergeSummaries(!omit_pairs);
  }
  const bool balanced = merged_.seq.empty();

  // Planner d-hint: the greedy scan of the *reduced* sequence (a valid
  // upper bound by Fact 18 — exactly what the planner itself would scan),
  // cached per metric until the next splice. Approximation-admissible
  // configs keep -1: their certified-greedy rung interprets the hint as a
  // full-sequence bound.
  int64_t d_hint = -1;
  if (is_auto && exact_only && !balanced) {
    const int idx = subs ? 1 : 0;
    if (!d_hint_valid_[idx]) {
      d_hint_[idx] = EstimateDistanceUpperBoundBidirectional(
          merged_.seq, subs, &ctx_.greedy_stack());
      d_hint_valid_[idx] = true;
    }
    d_hint = d_hint_[idx];
  }
  const double refresh_seconds = SecondsSince(refresh_start);

  pipeline::StageArtifacts art;
  art.balanced = balanced;
  art.reduced = &merged_;
  art.d_hint = d_hint;
  art.skip_materialize = omit_pairs;
  DYCK_RETURN_NOT_OK(pipeline::RunInto(buffer_, options, &ctx_, out, &art));

  const auto finish_start = std::chrono::steady_clock::now();
  if (!out->degraded) {
    // Pairs were omitted from the solver's script iff it built them from
    // request.reduced: needs_reduced solvers (fpt-*, banded), or the
    // trivial balanced path (served_by == nullptr), whose stage-2 copy saw
    // the empty matched_pairs. Raw-input solvers (cubic, branching) emit
    // complete pairs themselves.
    const bool pairs_omitted =
        omit_pairs && (art.served_by != nullptr
                           ? art.served_by->caps().needs_reduced
                           : true);
    if (pairs_omitted) AssemblePairs(out);
    if (art.materialize_skipped) Materialize(out);
  }
  out->telemetry.stage_seconds[static_cast<int>(
      PipelineStage::kProfileReduce)] += refresh_seconds;
  out->telemetry.stage_seconds[static_cast<int>(
      PipelineStage::kMaterialize)] += SecondsSince(finish_start);
  out->telemetry.incremental = !rebuilt;
  out->telemetry.chunks_reused = reused;
  out->telemetry.chunks_recomputed = recomputed;
  return Status::OK();
}

StatusOr<RepairResult> RepairDoc::Repair(const Options& options) {
  RepairResult out;
  DYCK_RETURN_NOT_OK(RepairInto(options, &out));
  return out;
}

void RepairDoc::AssemblePairs(RepairResult* out) {
  // Three sorted-by-open streams: (1) each chunk's intra pairs, offset by
  // the chunk start — their concatenation is globally sorted because every
  // pair is intra-chunk; (2) junction pairs, few, sorted here; (3) the
  // solver's own pairs, already sorted by EditScript::Normalize (opens are
  // unique, so lexicographic == by open). The merge reproduces
  // Normalize()'s sorted order byte for byte without sorting O(n) pairs.
  std::vector<std::pair<int64_t, int64_t>>& extras = extra_pairs_scratch_;
  extras.clear();
  extras.assign(junction_pairs_.begin(), junction_pairs_.end());
  std::sort(extras.begin(), extras.end());
  if (!out->script.aligned_pairs.empty()) {
    // Merge the solver pairs in (both streams are sorted by open).
    const size_t junction_count = extras.size();
    extras.insert(extras.end(), out->script.aligned_pairs.begin(),
                  out->script.aligned_pairs.end());
    std::inplace_merge(extras.begin(), extras.begin() + junction_count,
                       extras.end());
  }

  std::vector<std::pair<int64_t, int64_t>>& merged = assembled_pairs_scratch_;
  merged.clear();
  size_t intra_total = 0;
  for (const Chunk& c : chunks_) intra_total += c.summary.pairs_by_open.size();
  merged.reserve(intra_total + extras.size());
  size_t e = 0;
  int64_t off = 0;
  for (const Chunk& c : chunks_) {
    for (const auto& [open, close] : c.summary.pairs_by_open) {
      const int64_t abs_open = open + off;
      while (e < extras.size() && extras[e].first < abs_open) {
        merged.push_back(extras[e++]);
      }
      merged.emplace_back(abs_open, close + off);
    }
    off += c.len;
  }
  while (e < extras.size()) merged.push_back(extras[e++]);
  out->script.aligned_pairs.swap(merged);
}

void RepairDoc::Materialize(RepairResult* out) {
  // Stage-5 stand-in: ApplyScript semantics (ops sorted by pos; inserts at
  // a position before the delete/substitute there), but copying the
  // untouched runs between ops wholesale instead of symbol by symbol.
  ParenSeq& rep = out->repaired;
  rep.clear();
  rep.reserve(buffer_.size() + out->script.ops.size());
  int64_t src = 0;
  for (const EditOp& op : out->script.ops) {
    DYCK_DCHECK_GE(op.pos, src);
    rep.insert(rep.end(), buffer_.begin() + src, buffer_.begin() + op.pos);
    src = op.pos;
    switch (op.kind) {
      case EditOpKind::kInsert:
        rep.push_back(op.replacement);
        break;
      case EditOpKind::kDelete:
        ++src;
        break;
      case EditOpKind::kSubstitute:
        rep.push_back(op.replacement);
        ++src;
        break;
    }
  }
  rep.insert(rep.end(), buffer_.begin() + src, buffer_.end());
  ++out->telemetry.seq_allocations;
  DYCK_DCHECK(IsBalanced(rep, &ctx_.type_stack()));
}

}  // namespace dyck
