// Unified solver interface + process-wide registry.
//
// Every solver family — the paper's FPT algorithms (Theorems 26/40), the
// cubic interval-DP oracle, the exponential branching baseline, the greedy
// heuristic, and the banded single-peak specialization — sits behind one
// Solver interface: a name, capability metadata, a calibrated cost model,
// and Solve/SolveDistance entry points. Instances register themselves in
// the SolverRegistry; the pipeline's Select stage (src/pipeline/planner.h)
// asks the registry for the cheapest exact solver instead of dispatching
// through a hardcoded `switch (Algorithm)`, and the CLI/C API address
// solvers by registry name. Adding an algorithm is now: implement Solver,
// register it, done — no switch arm in any layer (see DESIGN.md §5.10).
//
// Forced selection (Options::algorithm != kAuto, or Options::solver naming
// a registry entry) routes to exactly one solver and is byte-identical to
// the pre-registry dispatch; the differential tests pin that.

#ifndef DYCKFIX_SRC_CORE_SOLVER_H_
#define DYCKFIX_SRC_CORE_SOLVER_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/alphabet/paren.h"
#include "src/core/dyck.h"
#include "src/core/edit_script.h"
#include "src/profile/reduce.h"
#include "src/util/budget.h"
#include "src/util/statusor.h"

namespace dyck {

class RepairContext;

/// Distance plus an optimal (or, for approximate solvers, upper-bounding)
/// edit script against the solver's original input positions.
struct SolverResult {
  int64_t distance = 0;
  EditScript script;
};

/// Capability metadata the planner and the error paths consult. A solver
/// asked to run outside its capabilities fails with InvalidArgument naming
/// the solver and the capability that failed (Solver::CheckMetric).
struct SolverCaps {
  /// Supports Metric::kDeletionsOnly (edit1).
  bool deletions = true;
  /// Supports Metric::kDeletionsAndSubstitutions (edit2).
  bool substitutions = true;
  /// Always returns the true distance. Must equal
  /// (approximation_factor == 1.0); approximate solvers are admitted by
  /// the planner only when Options::max_approximation_factor covers their
  /// factor (uncertified greedy — factor infinity — never is; it serves
  /// forced selection and the DegradePolicy::kGreedy budget fallback).
  bool exact = true;
  /// Consumes the Property-19 reduction (SolveRequest::reduced); the
  /// pipeline materializes one into context scratch before Solve.
  bool needs_reduced = false;
  /// Solves bounded subproblems under the d-doubling driver of §1.1
  /// (telemetry records the doubling trajectory).
  bool supports_doubling = false;
  /// Eligible for automatic selection. Non-candidates are forced-only:
  /// branching (its exponential cost model makes any d-hint overestimate
  /// catastrophic), greedy (approximate), and the "fpt" umbrella (its two
  /// metric-specific entries carry the calibrated models instead).
  bool planner_candidate = false;
  /// Telemetry bucket (RepairTelemetry::chosen_algorithm and the
  /// TelemetryAggregate per-algorithm counts).
  Algorithm family = Algorithm::kAuto;
  /// Worst-case multiplicative accuracy guarantee of the solver's results:
  /// 1.0 for exact solvers (`exact` must agree), a finite value f > 1 for
  /// certified approximate solvers (every returned distance is proven
  /// <= f * exact; src/approx), and +infinity for uncertified heuristics
  /// (greedy). The planner admits a solver only when this is <=
  /// max(1.0, Options::max_approximation_factor), so exact solvers are
  /// always admissible and greedy never is. Declared last so pre-existing
  /// positional aggregate initializers keep their meaning.
  double approximation_factor = 1.0;
};

/// Everything a Solve/SolveDistance call needs beyond the context.
struct SolveRequest {
  /// The raw input, as a view — solvers never copy it.
  ParenSpan seq;
  /// The Property-19 reduction of `seq`; non-null whenever the pipeline
  /// ran the Reduce stage (always for caps().needs_reduced solvers; also
  /// under kAuto so the planner can inspect the reduced shape). Null on
  /// the Distance() fast path, where no reduction is precomputed.
  const Reduced* reduced = nullptr;
  /// Metric::kDeletionsAndSubstitutions?
  bool use_substitutions = false;
  /// Options::max_distance passthrough; -1 = unlimited.
  int64_t max_distance = -1;
  /// Trivial upper bound for the doubling driver (|seq| + 1).
  int64_t doubling_cap = 0;
  /// Options::max_approximation_factor passthrough (already clamped to
  /// >= 1.0): the planner's accuracy filter. Solvers themselves certify
  /// against their own caps().approximation_factor, not this value, so a
  /// forced approximate solver keeps its advertised guarantee.
  double max_approximation_factor = 1.0;
  /// The planner's bidirectional greedy distance upper bound, when one was
  /// already computed for this request (-1 otherwise). Lets
  /// Applicable() implementations that need the greedy estimate (e.g. the
  /// certified-greedy gate) avoid a redundant scan; never consumed by
  /// Solve, which recomputes from scratch it owns.
  int64_t d_hint = -1;
};

namespace solver_internal {

inline Status MaxDistanceError(int64_t max_distance) {
  return Status::BoundExceeded("distance exceeds max_distance " +
                               std::to_string(max_distance));
}

/// Doubling driver over a script-producing probe (§1.1). `probe(d)`
/// returns BoundExceeded to request a larger d. Every probe is one
/// telemetry iteration; the bound that finally succeeded is recorded as
/// solve_bound, and each completed-but-exceeded probe proves
/// distance > bound, which the degraded path reports as exact_lower_bound.
/// The per-probe checkpoint bounds how long a runaway doubling trajectory
/// survives a tripped budget.
template <typename Probe>
StatusOr<SolverResult> DoublingSolve(int64_t cap, int64_t max_distance,
                                     RepairTelemetry* telemetry,
                                     Probe probe) {
  for (int64_t d = 1;; d *= 2) {
    BudgetCheckpoint("pipeline.doubling");
    const int64_t bound =
        max_distance >= 0 ? std::min(d, max_distance) : std::min(d, cap);
    ++telemetry->doubling_iterations;
    auto result = probe(static_cast<int32_t>(bound));
    if (result.ok()) {
      telemetry->solve_bound = bound;
      return result;
    }
    if (!result.status().IsBoundExceeded()) return result.status();
    // The probe ran to completion, so distance > bound is proven.
    telemetry->exact_lower_bound =
        std::max(telemetry->exact_lower_bound, bound + 1);
    if (max_distance >= 0 && bound >= max_distance) return result.status();
    if (bound >= cap) {
      return Status::Internal("doubling repair exceeded the trivial cap");
    }
  }
}

/// Distance-only doubling driver. `probe(d)` returns the distance if it is
/// <= d, std::nullopt otherwise.
template <typename Probe>
StatusOr<int64_t> DoublingDistance(int64_t cap, int64_t max_distance,
                                   Probe probe) {
  for (int64_t d = 1;; d *= 2) {
    BudgetCheckpoint("pipeline.doubling");
    const int64_t bound =
        max_distance >= 0 ? std::min(d, max_distance) : std::min(d, cap);
    if (const auto v = probe(static_cast<int32_t>(bound)); v.has_value()) {
      if (max_distance >= 0 && *v > max_distance) {
        return MaxDistanceError(max_distance);
      }
      return *v;
    }
    if (bound >= cap) {
      return Status::Internal("doubling driver exceeded the trivial cap");
    }
    if (max_distance >= 0 && bound >= max_distance) {
      return MaxDistanceError(max_distance);
    }
  }
}

}  // namespace solver_internal

/// One algorithm behind the registry. Implementations are stateless and
/// const: per-document state lives in the RepairContext, so a single
/// instance serves every thread.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Registry name, e.g. "fpt", "cubic", "banded". Stable across releases;
  /// the CLI (--algorithm=<name>) and the C API address solvers by it.
  virtual const char* name() const = 0;

  virtual const SolverCaps& caps() const = 0;

  /// Predicted wall seconds to repair a document of `n` symbols whose
  /// distance is (at most) `d_hint`. Constants are calibrated from the
  /// committed crossover benchmarks (BENCH_crossover.json; methodology in
  /// DESIGN.md §5.10). Must be nondecreasing in both arguments — a unit
  /// test enforces it for every registered solver.
  virtual double PredictCost(int64_t n, int64_t d_hint) const = 0;

  /// Structural applicability beyond caps(), e.g. the banded solver's
  /// single-peak requirement on the reduced sequence. The planner skips
  /// inapplicable solvers; a forced inapplicable solver fails Solve with
  /// InvalidArgument.
  virtual bool Applicable(const SolveRequest& request) const {
    (void)request;
    return true;
  }

  /// Repairs request.seq, filling `out` and the doubling/subproblem fields
  /// of `telemetry`. Budget checkpoints are polled inside (the ambient
  /// BudgetScope applies).
  virtual Status Solve(const SolveRequest& request, RepairContext& ctx,
                       RepairTelemetry* telemetry,
                       SolverResult* out) const = 0;

  /// Distance only, without script reconstruction or telemetry (the
  /// Distance() entry point). For approximate solvers this is an upper
  /// bound on the true distance.
  virtual StatusOr<int64_t> SolveDistance(
      const SolveRequest& request) const = 0;

  /// OK when the solver supports the metric; InvalidArgument naming the
  /// solver and the capability that failed otherwise. The message is
  /// surfaced verbatim through dyckfix_last_error and the CLI.
  Status CheckMetric(bool use_substitutions) const;
};

/// Process-wide name -> Solver map. Global() registers the built-in
/// solvers on first use (explicit registration, so static-library
/// dead-stripping cannot lose a family); it is immutable afterwards and
/// therefore safe to read from any thread. Out-of-tree solvers must
/// Register() before the first concurrent use, typically at startup.
class SolverRegistry {
 public:
  /// The registry every layer consults, with all built-in solvers
  /// registered.
  static SolverRegistry& Global();

  /// Adds a solver. InvalidArgument if the name is empty or taken.
  Status Register(std::unique_ptr<Solver> solver);

  /// nullptr when no solver has that name.
  const Solver* Find(std::string_view name) const;

  /// The canonical solver for a forced Algorithm enumerator (its
  /// AlgorithmName is the registry name); nullptr for kAuto.
  const Solver* ForAlgorithm(Algorithm algorithm) const;

  /// Registration order; stable for the planner's deterministic
  /// tie-breaking and the CLI's --list-algorithms rendering.
  const std::vector<const Solver*>& solvers() const { return view_; }

 private:
  std::vector<std::unique_ptr<Solver>> owned_;
  std::vector<const Solver*> view_;
};

// Built-in family registration hooks, implemented next to their solvers
// (src/fpt/solvers.cc, src/baseline/solvers.cc, src/lms/solvers.cc,
// src/approx/solvers.cc) and called exactly once by
// SolverRegistry::Global().
void RegisterFptSolvers(SolverRegistry& registry);
void RegisterBaselineSolvers(SolverRegistry& registry);
void RegisterLmsSolvers(SolverRegistry& registry);
void RegisterApproxSolvers(SolverRegistry& registry);

}  // namespace dyck

#endif  // DYCKFIX_SRC_CORE_SOLVER_H_
