// Batch repair: the core entry point for document-parallel workloads.
//
// Repair (core/dyck.h) handles one document; corpora go through
// RepairBatch, which fans the documents out across a fixed-size thread
// pool (src/runtime). Results are byte-identical to per-document Repair
// calls, delivered in input order, with per-document failures isolated to
// their own StatusOr slot.

#ifndef DYCKFIX_SRC_CORE_BATCH_H_
#define DYCKFIX_SRC_CORE_BATCH_H_

#include <vector>

#include "src/core/dyck.h"
#include "src/runtime/batch_engine.h"

namespace dyck {

/// Repairs every document of `docs` under `options` using `batch.jobs`
/// worker threads (see runtime::BatchOptions). One-shot convenience over
/// runtime::BatchRepairEngine; callers issuing many batches should hold an
/// engine instead to amortize pool start-up.
runtime::BatchRepairOutcome RepairBatch(
    const std::vector<ParenSeq>& docs, const Options& options,
    const runtime::BatchOptions& batch = {});

}  // namespace dyck

#endif  // DYCKFIX_SRC_CORE_BATCH_H_
