// Valley decomposition S = D_1 U_1 D_2 U_2 ... D_k U_k (paper eq. (2),
// Definitions 16, 17, 37).
//
// On a Property-19 sequence the maximal runs of openings (D blocks,
// descending slopes of h) and closings (U blocks, ascending slopes)
// alternate; only the leading D_1 and trailing U_k may be empty. Claim 21
// gives k <= d for the deletion metric and Claim 35 gives k <= 2d with
// substitutions, so a decomposition wider than the current distance bound is
// an early "bound exceeded" signal.

#ifndef DYCKFIX_SRC_PROFILE_VALLEYS_H_
#define DYCKFIX_SRC_PROFILE_VALLEYS_H_

#include <cstdint>
#include <vector>

#include "src/alphabet/paren.h"

namespace dyck {

/// One maximal run of same-direction symbols: [begin, end).
struct Run {
  int64_t begin = 0;
  int64_t end = 0;
  bool is_open = true;

  int64_t size() const { return end - begin; }
};

/// Run/valley structure of a sequence, with O(1) run lookup per index.
class BlockStructure {
 public:
  /// Builds the run decomposition of `seq`. O(n).
  static BlockStructure Build(ParenSpan seq);

  /// Rebuilds this structure in place for a new sequence, retaining the
  /// capacity of the run and index tables (RepairContext scratch).
  void Rebuild(ParenSpan seq);

  const std::vector<Run>& runs() const { return runs_; }
  int num_runs() const { return static_cast<int>(runs_.size()); }

  /// Index of the run containing symbol i.
  int run_of(int64_t i) const { return run_of_[i]; }

  /// k of decomposition (2): the number of valleys D_i U_i. An initial
  /// closing run counts as valley 1 with empty D_1; a trailing opening run
  /// counts as valley k with empty U_k.
  int num_valleys() const { return num_valleys_; }

  /// Number of valleys of the subsequence seq[first..last] (inclusive),
  /// which inherits the run structure of the full sequence. Used by the FPT
  /// recursion to budget-check subproblems.
  int NumValleysInRange(int64_t first, int64_t last) const;

 private:
  std::vector<Run> runs_;
  std::vector<int32_t> run_of_;
  int num_valleys_ = 0;
};

}  // namespace dyck

#endif  // DYCKFIX_SRC_PROFILE_VALLEYS_H_
