#include "src/profile/reduce.h"

#include "src/simd/simd.h"

namespace dyck {

Reduced Reduce(ParenSpan seq) {
  Reduced out;
  Reduce(seq, &out);
  return out;
}

void Reduce(ParenSpan seq, Reduced* outp) {
  Reduced& out = *outp;
  out.seq.clear();
  out.matched_pairs.clear();
  // out.orig_pos holds indices into `seq` of the symbols that survive. A
  // closing symbol can only ever cancel against the nearest surviving
  // opening to its left, so the single stack pass inside ReduceSpan
  // performs every possible neighbor removal; the survivor list stays
  // strictly increasing (pushes are increasing, pops are from the back),
  // so it IS the survivor index map.
  simd::ReduceSpan(seq.data(), seq.size(), &out.orig_pos, &out.matched_pairs,
                   nullptr);
  out.seq.reserve(out.orig_pos.size());
  for (int64_t idx : out.orig_pos) out.seq.push_back(seq[idx]);
}

void AppendMatchedPairs(ParenSpan seq,
                        std::vector<std::pair<int64_t, int64_t>>* out,
                        std::vector<int64_t>* kept_scratch) {
  // Same stack pass as Reduce, but survivors are kept only as indices and
  // never materialized into a sequence.
  std::vector<int64_t> local;
  std::vector<int64_t>& kept = kept_scratch != nullptr ? *kept_scratch
                                                       : local;
  simd::ReduceSpan(seq.data(), seq.size(), &kept, out, nullptr);
}

bool SatisfiesProperty19(ParenSpan seq) {
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    if (seq[i].Matches(seq[i + 1])) return false;
  }
  return true;
}

void SummarizeChunk(ParenSpan chunk, ChunkSummary* out,
                    std::vector<int32_t>* close_of_scratch) {
  out->residual.clear();
  out->pairs_by_close.clear();
  out->pairs_by_open.clear();
  // residual_pos is the survivor list of the stack pass, exactly like
  // Reduce's orig_pos: strictly increasing pushes, pops from the back.
  simd::SpanHeight h;
  simd::ReduceSpan(chunk.data(), chunk.size(), &out->residual_pos,
                   &out->pairs_by_close, &h);
  out->height.net = h.net;
  out->height.min_prefix = h.min_prefix;
  out->residual.reserve(out->residual_pos.size());
  for (int64_t idx : out->residual_pos) out->residual.push_back(chunk[idx]);
  // Opens are walked in position order, so pairs_by_open comes out sorted
  // without a comparison sort.
  std::vector<int32_t>& close_of = *close_of_scratch;
  close_of.assign(chunk.size(), -1);
  for (const auto& [open, close] : out->pairs_by_close) {
    close_of[open] = static_cast<int32_t>(close);
  }
  out->pairs_by_open.reserve(out->pairs_by_close.size());
  for (int64_t i = 0; i < static_cast<int64_t>(chunk.size()); ++i) {
    if (close_of[i] >= 0) out->pairs_by_open.emplace_back(i, close_of[i]);
  }
}

void ReductionMerger::Reset(
    Reduced* out, std::vector<std::pair<int64_t, int64_t>>* junction_pairs,
    bool emit_matched_pairs) {
  out_ = out;
  junctions_ = junction_pairs;
  emit_matched_pairs_ = emit_matched_pairs;
  out_->seq.clear();
  out_->orig_pos.clear();
  out_->matched_pairs.clear();
  junctions_->clear();
}

void ReductionMerger::Append(const ChunkSummary& chunk, int64_t offset) {
  Reduced& out = *out_;
  // Replay the residual against the accumulated survivor stack. out.seq
  // and out.orig_pos act as parallel stacks; pushes are ascending in
  // absolute position and pops come from the back, so when the fold ends
  // they already hold the final reduction (Reduce's `kept` invariant).
  // Every pop here is a cancellation the global pass would perform, and no
  // cancellation internal to the residual is possible (Property 19), so
  // the replay reproduces the global reduction exactly.
  const size_t junction_start = junctions_->size();
  for (size_t i = 0; i < chunk.residual.size(); ++i) {
    const Paren& p = chunk.residual[i];
    const int64_t pos = offset + chunk.residual_pos[i];
    if (!p.is_open && !out.seq.empty() && out.seq.back().Matches(p)) {
      junctions_->emplace_back(out.orig_pos.back(), pos);
      out.seq.pop_back();
      out.orig_pos.pop_back();
    } else {
      out.seq.push_back(p);
      out.orig_pos.push_back(pos);
    }
  }
  if (!emit_matched_pairs_) return;
  // The eager pass emits each zero-cost pair the moment its close is
  // scanned, i.e. ascending by close. Both per-chunk streams — the intra
  // pairs and the junctions discovered just above — are already ascending
  // by close, so a two-pointer interleave restores the exact eager order.
  const auto& intra = chunk.pairs_by_close;
  auto& merged = out.matched_pairs;
  size_t ii = 0;
  size_t ji = junction_start;
  while (ii < intra.size() || ji < junctions_->size()) {
    const bool take_intra =
        ji >= junctions_->size() ||
        (ii < intra.size() &&
         intra[ii].second + offset < (*junctions_)[ji].second);
    if (take_intra) {
      merged.emplace_back(intra[ii].first + offset, intra[ii].second + offset);
      ++ii;
    } else {
      merged.push_back((*junctions_)[ji]);
      ++ji;
    }
  }
}

void ReductionMerger::Finish() {}

}  // namespace dyck
