#include "src/profile/reduce.h"

namespace dyck {

Reduced Reduce(ParenSpan seq) {
  Reduced out;
  Reduce(seq, &out);
  return out;
}

void Reduce(ParenSpan seq, Reduced* outp) {
  Reduced& out = *outp;
  out.seq.clear();
  out.matched_pairs.clear();
  // out.orig_pos holds indices into `seq` of the symbols that survive so
  // far. A closing symbol can only ever cancel against the nearest
  // surviving opening to its left, so a single pass with this stack-like
  // vector performs every possible neighbor removal; it stays strictly
  // increasing (pushes are increasing, pops are from the back), so the
  // final stack IS the survivor index map.
  std::vector<int64_t>& kept = out.orig_pos;
  kept.clear();
  kept.reserve(seq.size());
  for (int64_t i = 0; i < static_cast<int64_t>(seq.size()); ++i) {
    const Paren& p = seq[i];
    if (!p.is_open && !kept.empty() && seq[kept.back()].Matches(p)) {
      out.matched_pairs.emplace_back(kept.back(), i);
      kept.pop_back();
    } else {
      kept.push_back(i);
    }
  }
  out.seq.reserve(kept.size());
  for (int64_t idx : kept) out.seq.push_back(seq[idx]);
}

void AppendMatchedPairs(ParenSpan seq,
                        std::vector<std::pair<int64_t, int64_t>>* out,
                        std::vector<int64_t>* kept_scratch) {
  // Same stack pass as Reduce, but survivors are kept only as indices and
  // never materialized into a sequence.
  std::vector<int64_t> local;
  std::vector<int64_t>& kept = kept_scratch != nullptr ? *kept_scratch
                                                       : local;
  kept.clear();
  kept.reserve(seq.size());
  for (int64_t i = 0; i < static_cast<int64_t>(seq.size()); ++i) {
    const Paren& p = seq[i];
    if (!p.is_open && !kept.empty() && seq[kept.back()].Matches(p)) {
      out->emplace_back(kept.back(), i);
      kept.pop_back();
    } else {
      kept.push_back(i);
    }
  }
}

bool SatisfiesProperty19(ParenSpan seq) {
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    if (seq[i].Matches(seq[i + 1])) return false;
  }
  return true;
}

void SummarizeChunk(ParenSpan chunk, ChunkSummary* out,
                    std::vector<int32_t>* close_of_scratch) {
  out->residual.clear();
  out->pairs_by_close.clear();
  out->pairs_by_open.clear();
  // residual_pos doubles as the survivor stack, exactly like Reduce's
  // orig_pos: strictly increasing pushes, pops from the back.
  std::vector<int64_t>& kept = out->residual_pos;
  kept.clear();
  kept.reserve(chunk.size());
  std::vector<int32_t>& close_of = *close_of_scratch;
  close_of.assign(chunk.size(), -1);
  HeightSummary h;
  for (int64_t i = 0; i < static_cast<int64_t>(chunk.size()); ++i) {
    const Paren& p = chunk[i];
    h.net += p.is_open ? +1 : -1;
    if (h.net < h.min_prefix) h.min_prefix = h.net;
    if (!p.is_open && !kept.empty() && chunk[kept.back()].Matches(p)) {
      out->pairs_by_close.emplace_back(kept.back(), i);
      close_of[kept.back()] = static_cast<int32_t>(i);
      kept.pop_back();
    } else {
      kept.push_back(i);
    }
  }
  out->height = h;
  out->residual.reserve(kept.size());
  for (int64_t idx : kept) out->residual.push_back(chunk[idx]);
  // Opens are walked in position order, so pairs_by_open comes out sorted
  // without a comparison sort.
  out->pairs_by_open.reserve(out->pairs_by_close.size());
  for (int64_t i = 0; i < static_cast<int64_t>(chunk.size()); ++i) {
    if (close_of[i] >= 0) out->pairs_by_open.emplace_back(i, close_of[i]);
  }
}

void ReductionMerger::Reset(
    Reduced* out, std::vector<std::pair<int64_t, int64_t>>* junction_pairs,
    bool emit_matched_pairs) {
  out_ = out;
  junctions_ = junction_pairs;
  emit_matched_pairs_ = emit_matched_pairs;
  out_->seq.clear();
  out_->orig_pos.clear();
  out_->matched_pairs.clear();
  junctions_->clear();
}

void ReductionMerger::Append(const ChunkSummary& chunk, int64_t offset) {
  Reduced& out = *out_;
  // Replay the residual against the accumulated survivor stack. out.seq
  // and out.orig_pos act as parallel stacks; pushes are ascending in
  // absolute position and pops come from the back, so when the fold ends
  // they already hold the final reduction (Reduce's `kept` invariant).
  // Every pop here is a cancellation the global pass would perform, and no
  // cancellation internal to the residual is possible (Property 19), so
  // the replay reproduces the global reduction exactly.
  const size_t junction_start = junctions_->size();
  for (size_t i = 0; i < chunk.residual.size(); ++i) {
    const Paren& p = chunk.residual[i];
    const int64_t pos = offset + chunk.residual_pos[i];
    if (!p.is_open && !out.seq.empty() && out.seq.back().Matches(p)) {
      junctions_->emplace_back(out.orig_pos.back(), pos);
      out.seq.pop_back();
      out.orig_pos.pop_back();
    } else {
      out.seq.push_back(p);
      out.orig_pos.push_back(pos);
    }
  }
  if (!emit_matched_pairs_) return;
  // The eager pass emits each zero-cost pair the moment its close is
  // scanned, i.e. ascending by close. Both per-chunk streams — the intra
  // pairs and the junctions discovered just above — are already ascending
  // by close, so a two-pointer interleave restores the exact eager order.
  const auto& intra = chunk.pairs_by_close;
  auto& merged = out.matched_pairs;
  size_t ii = 0;
  size_t ji = junction_start;
  while (ii < intra.size() || ji < junctions_->size()) {
    const bool take_intra =
        ji >= junctions_->size() ||
        (ii < intra.size() &&
         intra[ii].second + offset < (*junctions_)[ji].second);
    if (take_intra) {
      merged.emplace_back(intra[ii].first + offset, intra[ii].second + offset);
      ++ii;
    } else {
      merged.push_back((*junctions_)[ji]);
      ++ji;
    }
  }
}

void ReductionMerger::Finish() {}

}  // namespace dyck
