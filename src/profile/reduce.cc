#include "src/profile/reduce.h"

namespace dyck {

Reduced Reduce(ParenSpan seq) {
  Reduced out;
  Reduce(seq, &out);
  return out;
}

void Reduce(ParenSpan seq, Reduced* outp) {
  Reduced& out = *outp;
  out.seq.clear();
  out.matched_pairs.clear();
  // out.orig_pos holds indices into `seq` of the symbols that survive so
  // far. A closing symbol can only ever cancel against the nearest
  // surviving opening to its left, so a single pass with this stack-like
  // vector performs every possible neighbor removal; it stays strictly
  // increasing (pushes are increasing, pops are from the back), so the
  // final stack IS the survivor index map.
  std::vector<int64_t>& kept = out.orig_pos;
  kept.clear();
  kept.reserve(seq.size());
  for (int64_t i = 0; i < static_cast<int64_t>(seq.size()); ++i) {
    const Paren& p = seq[i];
    if (!p.is_open && !kept.empty() && seq[kept.back()].Matches(p)) {
      out.matched_pairs.emplace_back(kept.back(), i);
      kept.pop_back();
    } else {
      kept.push_back(i);
    }
  }
  out.seq.reserve(kept.size());
  for (int64_t idx : kept) out.seq.push_back(seq[idx]);
}

void AppendMatchedPairs(ParenSpan seq,
                        std::vector<std::pair<int64_t, int64_t>>* out,
                        std::vector<int64_t>* kept_scratch) {
  // Same stack pass as Reduce, but survivors are kept only as indices and
  // never materialized into a sequence.
  std::vector<int64_t> local;
  std::vector<int64_t>& kept = kept_scratch != nullptr ? *kept_scratch
                                                       : local;
  kept.clear();
  kept.reserve(seq.size());
  for (int64_t i = 0; i < static_cast<int64_t>(seq.size()); ++i) {
    const Paren& p = seq[i];
    if (!p.is_open && !kept.empty() && seq[kept.back()].Matches(p)) {
      out->emplace_back(kept.back(), i);
      kept.pop_back();
    } else {
      kept.push_back(i);
    }
  }
}

bool SatisfiesProperty19(ParenSpan seq) {
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    if (seq[i].Matches(seq[i + 1])) return false;
  }
  return true;
}

}  // namespace dyck
