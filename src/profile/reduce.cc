#include "src/profile/reduce.h"

namespace dyck {

Reduced Reduce(ParenSpan seq) {
  Reduced out;
  // kept holds indices into `seq` of the symbols that survive so far. A
  // closing symbol can only ever cancel against the nearest surviving
  // opening to its left, so a single pass with this stack-like vector
  // performs every possible neighbor removal.
  std::vector<int64_t> kept;
  kept.reserve(seq.size());
  for (int64_t i = 0; i < static_cast<int64_t>(seq.size()); ++i) {
    const Paren& p = seq[i];
    if (!p.is_open && !kept.empty() && seq[kept.back()].Matches(p)) {
      out.matched_pairs.emplace_back(kept.back(), i);
      kept.pop_back();
    } else {
      kept.push_back(i);
    }
  }
  // `kept` is not fully sorted order-of-sequence? It is: we only ever push
  // increasing indices and pop from the back, so it stays increasing.
  out.orig_pos = std::move(kept);
  out.seq.reserve(out.orig_pos.size());
  for (int64_t idx : out.orig_pos) out.seq.push_back(seq[idx]);
  return out;
}

void AppendMatchedPairs(ParenSpan seq,
                        std::vector<std::pair<int64_t, int64_t>>* out) {
  // Same stack pass as Reduce, but survivors are kept only as indices and
  // never materialized into a sequence.
  std::vector<int64_t> kept;
  kept.reserve(seq.size());
  for (int64_t i = 0; i < static_cast<int64_t>(seq.size()); ++i) {
    const Paren& p = seq[i];
    if (!p.is_open && !kept.empty() && seq[kept.back()].Matches(p)) {
      out->emplace_back(kept.back(), i);
      kept.pop_back();
    } else {
      kept.push_back(i);
    }
  }
}

bool SatisfiesProperty19(ParenSpan seq) {
  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    if (seq[i].Matches(seq[i + 1])) return false;
  }
  return true;
}

}  // namespace dyck
