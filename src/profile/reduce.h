// Linear-time reduction establishing Property 19 (paper §3.2).
//
// "As long as there are two neighboring symbols that can be aligned, remove
// them." The removal relation is confluent, so a single stack pass computes
// the unique fully-reduced sequence: push openings; when a closing matches
// the type of the top-of-stack opening, drop both. By Fact 18 the reduction
// preserves both edit1 and edit2. The dropped pairs are exactly parentheses
// matched at zero cost, which edit-script reconstruction needs.

#ifndef DYCKFIX_SRC_PROFILE_REDUCE_H_
#define DYCKFIX_SRC_PROFILE_REDUCE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/alphabet/paren.h"

namespace dyck {

/// Result of reducing a sequence to Property-19 form.
struct Reduced {
  /// The reduced sequence; satisfies Property 19.
  ParenSeq seq;
  /// orig_pos[i] = index in the original sequence of reduced symbol i.
  /// Strictly increasing.
  std::vector<int64_t> orig_pos;
  /// Zero-cost matched pairs removed by the reduction, as (open, close)
  /// indices into the original sequence.
  std::vector<std::pair<int64_t, int64_t>> matched_pairs;
};

/// Reduces `seq`; O(n) time and space.
Reduced Reduce(ParenSpan seq);

/// Reduce into caller-owned storage: `out`'s members are cleared and
/// refilled, retaining their capacity across documents (RepairContext
/// scratch). out->orig_pos doubles as the working survivor stack, so no
/// scratch beyond the result itself is touched.
void Reduce(ParenSpan seq, Reduced* out);

/// Appends only the zero-cost matched pairs of the reduction to `*out`,
/// without materializing the reduced sequence or the survivor index map.
/// For a balanced `seq` this is the full alignment (every symbol pairs at
/// zero cost); the pipeline's balanced fast path uses this so rendering
/// the trivial script allocates nothing beyond the output pairs.
/// `kept_scratch` (optional) provides the survivor stack's storage.
void AppendMatchedPairs(ParenSpan seq,
                        std::vector<std::pair<int64_t, int64_t>>* out,
                        std::vector<int64_t>* kept_scratch = nullptr);

/// True iff no two adjacent symbols of `seq` can be aligned (Property 19).
bool SatisfiesProperty19(ParenSpan seq);

}  // namespace dyck

#endif  // DYCKFIX_SRC_PROFILE_REDUCE_H_
