// Linear-time reduction establishing Property 19 (paper §3.2).
//
// "As long as there are two neighboring symbols that can be aligned, remove
// them." The removal relation is confluent, so a single stack pass computes
// the unique fully-reduced sequence: push openings; when a closing matches
// the type of the top-of-stack opening, drop both. By Fact 18 the reduction
// preserves both edit1 and edit2. The dropped pairs are exactly parentheses
// matched at zero cost, which edit-script reconstruction needs.

#ifndef DYCKFIX_SRC_PROFILE_REDUCE_H_
#define DYCKFIX_SRC_PROFILE_REDUCE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/alphabet/paren.h"
#include "src/profile/height.h"

namespace dyck {

/// Result of reducing a sequence to Property-19 form.
struct Reduced {
  /// The reduced sequence; satisfies Property 19.
  ParenSeq seq;
  /// orig_pos[i] = index in the original sequence of reduced symbol i.
  /// Strictly increasing.
  std::vector<int64_t> orig_pos;
  /// Zero-cost matched pairs removed by the reduction, as (open, close)
  /// indices into the original sequence.
  std::vector<std::pair<int64_t, int64_t>> matched_pairs;
};

/// Reduces `seq`; O(n) time and space.
Reduced Reduce(ParenSpan seq);

/// Reduce into caller-owned storage: `out`'s members are cleared and
/// refilled, retaining their capacity across documents (RepairContext
/// scratch). out->orig_pos doubles as the working survivor stack, so no
/// scratch beyond the result itself is touched.
void Reduce(ParenSpan seq, Reduced* out);

/// Appends only the zero-cost matched pairs of the reduction to `*out`,
/// without materializing the reduced sequence or the survivor index map.
/// For a balanced `seq` this is the full alignment (every symbol pairs at
/// zero cost); the pipeline's balanced fast path uses this so rendering
/// the trivial script allocates nothing beyond the output pairs.
/// `kept_scratch` (optional) provides the survivor stack's storage.
void AppendMatchedPairs(ParenSpan seq,
                        std::vector<std::pair<int64_t, int64_t>>* out,
                        std::vector<int64_t>* kept_scratch = nullptr);

/// True iff no two adjacent symbols of `seq` can be aligned (Property 19).
bool SatisfiesProperty19(ParenSpan seq);

/// Per-chunk reduction summary. A chunk's reduction is context-free: the
/// residual (the chunk reduced in isolation) plus its zero-cost intra-chunk
/// pairs fully determine how the chunk composes with any left context,
/// because replaying the residual against the survivor stack of the
/// preceding chunks performs exactly the cancellations the global stack
/// pass would — the residual satisfies Property 19, so no cancellation
/// internal to it is possible, and the first stack pop a survivor could
/// cause must be against the preceding context. This makes chunk summaries
/// a monoid under ReductionMerger composition, and is what lets a splice
/// recompute one chunk in O(chunk) and re-merge in O(total residual).
struct ChunkSummary {
  /// The chunk reduced in isolation (satisfies Property 19).
  ParenSeq residual;
  /// residual_pos[i] = chunk-local index of residual symbol i.
  std::vector<int64_t> residual_pos;
  /// Zero-cost pairs internal to the chunk, chunk-local indices, in the
  /// order the stack pass emits them (ascending close).
  std::vector<std::pair<int64_t, int64_t>> pairs_by_close;
  /// The same pairs sorted ascending by open index; derived in O(len) at
  /// summarize time so document-level pair assembly is a pure merge with
  /// no sorting.
  std::vector<std::pair<int64_t, int64_t>> pairs_by_open;
  /// Untyped balance profile of the raw chunk (not the residual).
  HeightSummary height;
};

/// Summarizes one chunk; O(len) time. Members of `*out` are cleared and
/// refilled, retaining capacity across re-summarizations of the same chunk
/// slot. `close_of_scratch` is working storage (resized to len) used to
/// emit pairs_by_open without sorting.
void SummarizeChunk(ParenSpan chunk, ChunkSummary* out,
                    std::vector<int32_t>* close_of_scratch);

/// Left fold over chunk summaries reconstructing the whole-document
/// reduction byte-identically to Reduce() on the concatenated sequence.
///
///   ReductionMerger m;
///   m.Reset(&reduced, &junction_pairs);
///   for each chunk: m.Append(summary, absolute_offset);
///   m.Finish();
///
/// After Finish, `reduced.seq` / `reduced.orig_pos` equal Reduce()'s
/// output on the full document. Zero-cost pairs are split into two
/// streams: each chunk's intra pairs (already stored in the summary) and
/// the junction pairs (open in an earlier chunk, close in a later one)
/// discovered during the replay, absolute indices, ascending by close.
/// `reduced.matched_pairs` is filled with the interleaved union — the
/// exact emission order of the eager pass — only when Reset is called
/// with emit_matched_pairs = true; callers that assemble alignment pairs
/// themselves (RepairDoc's omitted-pairs mode) skip that O(n) cost.
class ReductionMerger {
 public:
  void Reset(Reduced* out,
             std::vector<std::pair<int64_t, int64_t>>* junction_pairs,
             bool emit_matched_pairs);

  /// Folds in the next chunk; `offset` is the chunk's absolute start
  /// index in the document. O(residual size) amortized.
  void Append(const ChunkSummary& chunk, int64_t offset);

  /// No-op today (the survivor stacks are maintained in place), kept as
  /// an explicit end-of-fold marker for future batched materialization.
  void Finish();

 private:
  Reduced* out_ = nullptr;
  std::vector<std::pair<int64_t, int64_t>>* junctions_ = nullptr;
  bool emit_matched_pairs_ = false;
};

}  // namespace dyck

#endif  // DYCKFIX_SRC_PROFILE_REDUCE_H_
