// Height function h (paper Definition 15).
//
// h(0) = 0 (we use 0-based indices; the paper's h(1) = 0). Between
// consecutive symbols the height changes only when they are of the same
// direction: two openings step down, two closings step up, a direction
// change keeps the height. Runs of openings are thus descending slopes and
// runs of closings ascending slopes, giving the "valley" picture of
// Figures 1-3. Fact 20 / Fact 36 bound how far apart in height two symbols
// can sit and still be matched with at most d edits; the FPT algorithms use
// those bounds to prune candidate alignments.

#ifndef DYCKFIX_SRC_PROFILE_HEIGHT_H_
#define DYCKFIX_SRC_PROFILE_HEIGHT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/alphabet/paren.h"

namespace dyck {

/// Monoid summary of a chunk's untyped balance profile. `net` is the
/// opens-minus-closes delta across the chunk; `min_prefix` (always <= 0)
/// is the lowest value the running delta reaches inside the chunk. Chunk
/// summaries compose associatively (MergeHeight), so a document split into
/// chunks re-derives its global profile from per-chunk summaries in O(#chunks)
/// after a splice instead of rescanning all n symbols.
struct HeightSummary {
  int64_t net = 0;
  int64_t min_prefix = 0;

  bool operator==(const HeightSummary& o) const {
    return net == o.net && min_prefix == o.min_prefix;
  }
};

/// Summary of a single chunk; O(len).
HeightSummary SummarizeHeight(ParenSpan seq);

/// Monoid composition: the summary of the concatenation a ++ b.
inline HeightSummary MergeHeight(const HeightSummary& a,
                                 const HeightSummary& b) {
  return {a.net + b.net, a.min_prefix < a.net + b.min_prefix
                             ? a.min_prefix
                             : a.net + b.min_prefix};
}

/// Untyped relaxation lower bound recovered from a whole-document summary;
/// agrees with approx::DyckRelaxationLowerBound by construction:
/// -min_prefix closings arrive below ground and net - min_prefix openings
/// are left unmatched at the end.
int64_t SummaryLowerBound(const HeightSummary& s, bool allow_substitutions);

/// Heights of every symbol per Definition 15; empty for an empty sequence.
std::vector<int64_t> ComputeHeights(ParenSpan seq);

/// ComputeHeights into caller-owned storage: `out` is resized to
/// seq.size(), retaining capacity across calls (RepairContext scratch).
void ComputeHeights(ParenSpan seq, std::vector<int64_t>* out);

/// Renders the height profile as multi-line ASCII art (one column per
/// symbol), reproducing the visual content of the paper's Figures 1-3.
/// `marks` optionally connects aligned pairs: each pair (i, j) draws arc
/// endpoints '*' at those columns.
std::string RenderProfile(ParenSpan seq,
                          const std::vector<std::pair<int64_t, int64_t>>&
                              aligned_pairs = {});

}  // namespace dyck

#endif  // DYCKFIX_SRC_PROFILE_HEIGHT_H_
