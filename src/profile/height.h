// Height function h (paper Definition 15).
//
// h(0) = 0 (we use 0-based indices; the paper's h(1) = 0). Between
// consecutive symbols the height changes only when they are of the same
// direction: two openings step down, two closings step up, a direction
// change keeps the height. Runs of openings are thus descending slopes and
// runs of closings ascending slopes, giving the "valley" picture of
// Figures 1-3. Fact 20 / Fact 36 bound how far apart in height two symbols
// can sit and still be matched with at most d edits; the FPT algorithms use
// those bounds to prune candidate alignments.

#ifndef DYCKFIX_SRC_PROFILE_HEIGHT_H_
#define DYCKFIX_SRC_PROFILE_HEIGHT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/alphabet/paren.h"

namespace dyck {

/// Heights of every symbol per Definition 15; empty for an empty sequence.
std::vector<int64_t> ComputeHeights(ParenSpan seq);

/// ComputeHeights into caller-owned storage: `out` is resized to
/// seq.size(), retaining capacity across calls (RepairContext scratch).
void ComputeHeights(ParenSpan seq, std::vector<int64_t>* out);

/// Renders the height profile as multi-line ASCII art (one column per
/// symbol), reproducing the visual content of the paper's Figures 1-3.
/// `marks` optionally connects aligned pairs: each pair (i, j) draws arc
/// endpoints '*' at those columns.
std::string RenderProfile(ParenSpan seq,
                          const std::vector<std::pair<int64_t, int64_t>>&
                              aligned_pairs = {});

}  // namespace dyck

#endif  // DYCKFIX_SRC_PROFILE_HEIGHT_H_
