#include "src/profile/height.h"

#include <algorithm>

#include "src/simd/simd.h"

namespace dyck {

HeightSummary SummarizeHeight(ParenSpan seq) {
  const simd::SpanHeight h = simd::Summarize(seq.data(), seq.size());
  HeightSummary s;
  s.net = h.net;
  s.min_prefix = h.min_prefix;
  return s;
}

int64_t SummaryLowerBound(const HeightSummary& s, bool allow_substitutions) {
  const int64_t closes = -s.min_prefix;
  const int64_t opens = s.net - s.min_prefix;
  if (allow_substitutions) return (closes + 1) / 2 + (opens + 1) / 2;
  return closes + opens;
}

std::vector<int64_t> ComputeHeights(ParenSpan seq) {
  std::vector<int64_t> h;
  ComputeHeights(seq, &h);
  return h;
}

void ComputeHeights(ParenSpan seq, std::vector<int64_t>* out) {
  std::vector<int64_t>& h = *out;
  h.resize(seq.size());
  if (seq.empty()) return;
  h[0] = 0;
  for (size_t i = 1; i < seq.size(); ++i) {
    if (seq[i - 1].is_open == seq[i].is_open) {
      h[i] = h[i - 1] + (seq[i].is_open ? -1 : +1);
    } else {
      h[i] = h[i - 1];
    }
  }
}

std::string RenderProfile(
    ParenSpan seq,
    const std::vector<std::pair<int64_t, int64_t>>& aligned_pairs) {
  if (seq.empty()) return "(empty sequence)\n";
  const std::vector<int64_t> h = ComputeHeights(seq);
  const int64_t h_min = *std::min_element(h.begin(), h.end());
  const int64_t h_max = *std::max_element(h.begin(), h.end());
  const int64_t rows = h_max - h_min + 1;
  const int64_t cols = static_cast<int64_t>(seq.size());

  // grid[row][col]; row 0 is the highest height.
  std::vector<std::string> grid(rows, std::string(cols, ' '));
  const std::string text = ToString(seq);
  for (int64_t i = 0; i < cols; ++i) {
    grid[h_max - h[i]][i] = text[std::min<int64_t>(i, text.size() - 1)];
  }
  for (const auto& [a, b] : aligned_pairs) {
    if (a < 0 || b < 0 || a >= cols || b >= cols) continue;
    grid[h_max - h[a]][a] = '*';
    grid[h_max - h[b]][b] = '*';
    // Draw the connecting line at the height of the left endpoint where the
    // cell is free (dotted, as in Figure 3).
    const int64_t row = h_max - h[a];
    for (int64_t c = a + 1; c < b; ++c) {
      if (grid[row][c] == ' ') grid[row][c] = '.';
    }
  }

  std::string out;
  for (int64_t r = 0; r < rows; ++r) {
    out += std::to_string(h_max - r);
    out += "\t|";
    out += grid[r];
    out += '\n';
  }
  return out;
}

}  // namespace dyck
