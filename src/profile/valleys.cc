#include "src/profile/valleys.h"

#include "src/util/logging.h"

namespace dyck {

BlockStructure BlockStructure::Build(ParenSpan seq) {
  BlockStructure bs;
  bs.Rebuild(seq);
  return bs;
}

void BlockStructure::Rebuild(ParenSpan seq) {
  runs_.clear();
  const int64_t n = static_cast<int64_t>(seq.size());
  run_of_.resize(n);
  int64_t i = 0;
  while (i < n) {
    int64_t j = i;
    while (j < n && seq[j].is_open == seq[i].is_open) ++j;
    const int run_id = static_cast<int>(runs_.size());
    runs_.push_back(Run{i, j, seq[i].is_open});
    for (int64_t t = i; t < j; ++t) run_of_[t] = run_id;
    i = j;
  }
  // Count valleys: each U run closes one valley; a trailing D run opens a
  // valley with an empty U_k.
  int valleys = 0;
  for (const Run& run : runs_) {
    if (!run.is_open) ++valleys;
  }
  if (!runs_.empty() && runs_.back().is_open) ++valleys;
  num_valleys_ = valleys;
}

int BlockStructure::NumValleysInRange(int64_t first, int64_t last) const {
  if (first > last) return 0;
  DYCK_DCHECK_GE(first, 0);
  DYCK_DCHECK_LT(last, static_cast<int64_t>(run_of_.size()));
  const int rf = run_of_[first];
  const int rl = run_of_[last];
  int valleys = 0;
  for (int r = rf; r <= rl; ++r) {
    if (!runs_[r].is_open) ++valleys;
  }
  if (runs_[rl].is_open) ++valleys;
  return valleys;
}

}  // namespace dyck
