// Diagonal-wave ("O(n + d^2)") edit distance engine, adapted from Landau,
// Myers & Schmidt 1998 as described in paper §3.1 and §4.1.
//
// Two cost models are supported, matching the paper's edit1' (Definition 6)
// and edit2' (Definition 28):
//
//  * kDeletion: delete a symbol from A or B, cost 1 each. A mismatched
//    diagonal step costs 2 (= two deletions), so the wave recurrence keeps
//    only the two +-1-diagonal moves — the paper's modification of
//    [LMS98, Lemma 2.8] that "removes the second argument from max".
//
//  * kSubstitution: deletions cost 1, substitutions cost 1, and *deleting
//    two consecutive symbols of one side* costs 1 (Definition 28's third
//    operation, which models rewriting "((" into "()"). This yields the
//    five-way recurrence of Lemma 31.
//
// The engine operates on two substrings A = C[a_begin, a_begin+a_len) and
// B = C[b_begin, b_begin+b_len) of one shared indexed string C, so a single
// O(n) preprocessing (the LceIndex) serves every query — exactly the
// contract of Theorems 12-14 and 32-34. The computed wave tables answer
// point queries D[r][c] in O(log d) (Theorem 13) and containment checks in
// O(1).

#ifndef DYCKFIX_SRC_LMS_WAVE_H_
#define DYCKFIX_SRC_LMS_WAVE_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/suffix/lce.h"
#include "src/util/arena.h"

namespace dyck {

/// Which of the paper's primed distances the DP computes.
enum class WaveMetric {
  kDeletion,      // edit1' (Definition 6)
  kSubstitution,  // edit2' (Definition 28)
};

/// A substring-vs-substring wave computation request.
struct WaveParams {
  int64_t a_begin = 0;
  int64_t a_len = 0;
  int64_t b_begin = 0;
  int64_t b_len = 0;
  /// Waves 0..max_d are computed; entries of the DP table above max_d are
  /// reported as "exceeds the bound" (Property 10 makes them irrelevant).
  int32_t max_d = 0;
  WaveMetric metric = WaveMetric::kDeletion;
};

/// Computed waves for one (A, B) pair; see Definition 11. Immutable after
/// construction. Move-only: the frontier storage may be borrowed from a
/// ScratchPool (RepairContext reuse), to which the destructor returns it.
class WaveTable {
 public:
  WaveTable() = default;
  ~WaveTable() {
    if (pool_ != nullptr) pool_->Release(std::move(frontiers_));
  }

  WaveTable(const WaveTable&) = delete;
  WaveTable& operator=(const WaveTable&) = delete;

  WaveTable(WaveTable&& other) noexcept
      : frontiers_(std::move(other.frontiers_)),
        pool_(std::exchange(other.pool_, nullptr)),
        stride_(other.stride_),
        diag_span_(other.diag_span_),
        a_len_(other.a_len_),
        b_len_(other.b_len_),
        max_d_(other.max_d_) {}

  WaveTable& operator=(WaveTable&& other) noexcept {
    if (this != &other) {
      if (pool_ != nullptr) pool_->Release(std::move(frontiers_));
      frontiers_ = std::move(other.frontiers_);
      pool_ = std::exchange(other.pool_, nullptr);
      stride_ = other.stride_;
      diag_span_ = other.diag_span_;
      a_len_ = other.a_len_;
      b_len_ = other.b_len_;
      max_d_ = other.max_d_;
    }
    return *this;
  }

  /// D[a_len][b_len] if it is <= max_d.
  std::optional<int32_t> Distance() const { return Point(a_len_, b_len_); }

  /// D[r][c] for the edit distance between the length-r prefix of A and the
  /// length-c prefix of B, if <= max_d; std::nullopt otherwise. O(log d).
  std::optional<int32_t> Point(int64_t r, int64_t c) const;

  /// Whether D[r][c] <= max_d. O(1): compares against wave(max_d),
  /// mirroring Theorem 13's constant-time check.
  bool PointWithin(int64_t r, int64_t c) const;

  int32_t max_d() const { return max_d_; }
  int64_t a_len() const { return a_len_; }
  int64_t b_len() const { return b_len_; }

  /// Total number of frontier cells stored; O(d^2). Exposed so tests and
  /// benchmarks can verify the space bound of Theorem 12.
  int64_t StoredCells() const;

  /// Sentinel row meaning "no cell of this diagonal is reachable at this
  /// wave"; see FrontierRow.
  static constexpr int64_t kUnreached = -2;

  /// wave(h) frontier on diagonal `diag` (= c - r): the largest row r with
  /// D[r][r+diag] <= h, or kUnreached. Exposed for backtracking
  /// (wave_align.h) and for tests that validate Definition 11 directly.
  int64_t FrontierRow(int32_t h, int64_t diag) const {
    return FrontierAt(h, diag);
  }

  int64_t diag_span() const { return diag_span_; }

 private:
  friend WaveTable ComputeWaves(const LceIndex&, const WaveParams&,
                                ScratchPool<int64_t>*);

  int64_t FrontierAt(int32_t h, int64_t diag) const {
    if (diag < -diag_span_ || diag > diag_span_) return kUnreached;
    return frontiers_[h * stride_ + diag + diag_span_];
  }

  // Waves stored as one flat (max_d+1) x stride row-major buffer so a
  // ScratchPool can recycle the whole table in one move.
  std::vector<int64_t> frontiers_;
  ScratchPool<int64_t>* pool_ = nullptr;
  int64_t stride_ = 0;  // 2 * diag_span_ + 1
  int64_t diag_span_ = 0;
  int64_t a_len_ = 0;
  int64_t b_len_ = 0;
  int32_t max_d_ = 0;
};

/// Runs the wave computation. O(max_d^2) time and space, independent of the
/// substring lengths (Theorem 12 / Theorem 33). `pool` (optional) supplies
/// the frontier storage; the table returns it on destruction.
WaveTable ComputeWaves(const LceIndex& index, const WaveParams& params,
                       ScratchPool<int64_t>* pool = nullptr);

/// Convenience one-shot: distance between two standalone integer strings
/// under `metric` if <= max_d (Theorem 32's interface). Builds a throwaway
/// LceIndex over A concatenated with B.
std::optional<int32_t> WaveEditDistance(const std::vector<int32_t>& a,
                                        const std::vector<int32_t>& b,
                                        WaveMetric metric, int32_t max_d);

/// Reference O(|A|*|B|) dynamic program for both metrics; the test oracle
/// for the wave engine and the reconstruction backend for short pairs.
int64_t EditDistanceQuadratic(const std::vector<int32_t>& a,
                              const std::vector<int32_t>& b,
                              WaveMetric metric);

}  // namespace dyck

#endif  // DYCKFIX_SRC_LMS_WAVE_H_
