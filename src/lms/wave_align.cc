#include "src/lms/wave_align.h"

#include <algorithm>

#include "src/util/logging.h"

namespace dyck {

namespace {

// Largest row reachable from `r` on `diag` via matches only (same slide the
// wave computation used).
int64_t Slide(const LceIndex& index, const WaveParams& p, int64_t diag,
              int64_t r) {
  const int64_t c = r + diag;
  const int64_t room = std::min(p.a_len - r, p.b_len - c);
  if (room <= 0) return r;
  return r + std::min(room, index.Lce(p.a_begin + r, p.b_begin + c));
}

struct Move {
  int64_t diag_delta;
  int64_t row_delta;
  PairOpKind kind;
};

// Mirror the `consider` moves of ComputeWaves.
constexpr Move kDeletionMoves[] = {
    {+1, +1, PairOpKind::kDeleteA},
    {-1, 0, PairOpKind::kDeleteB},
};
constexpr Move kSubstitutionMoves[] = {
    {0, +1, PairOpKind::kSubstitute},
    {+1, +1, PairOpKind::kDeleteA},
    {-1, 0, PairOpKind::kDeleteB},
    {+2, +2, PairOpKind::kDoubleDeleteA},
    {-2, 0, PairOpKind::kDoubleDeleteB},
};

}  // namespace

StatusOr<BandedResult> WaveAlign(const LceIndex& index,
                                 const WaveParams& params,
                                 ScratchPool<int64_t>* pool) {
  const WaveTable table = ComputeWaves(index, params, pool);
  const std::optional<int32_t> distance = table.Distance();
  if (!distance.has_value()) {
    return Status::BoundExceeded("distance exceeds max_d " +
                                 std::to_string(params.max_d));
  }

  const bool subs = params.metric == WaveMetric::kSubstitution;
  const Move* moves = subs ? kSubstitutionMoves : kDeletionMoves;
  const int num_moves = subs ? 5 : 2;

  BandedResult result;
  result.cost = *distance;

  // Walk back from the corner cell. State: current cell (cur_r, cur_r + k)
  // known to satisfy D <= h. Each iteration either tightens h (the cell was
  // already reachable one wave earlier) or peels one unit operation plus the
  // run of matches that followed it.
  int32_t h = *distance;
  int64_t k = params.b_len - params.a_len;
  int64_t cur_r = params.a_len;
  std::vector<PairOp> rev_ops;
  // At most one unit op per wave plus one match run between consecutive
  // unit ops (and one trailing run).
  rev_ops.reserve(static_cast<size_t>(2 * *distance + 1));
  auto emit_matches = [&](int64_t from_row, int64_t to_row) {
    if (to_row > from_row) {
      rev_ops.push_back(PairOp{PairOpKind::kMatch, from_row, from_row + k,
                               to_row - from_row});
    }
  };

  while (h > 0) {
    if (table.FrontierRow(h - 1, k) >= cur_r) {
      --h;  // cell already reachable with cost h-1
      continue;
    }
    bool stepped = false;
    for (int mi = 0; mi < num_moves && !stepped; ++mi) {
      const Move& move = moves[mi];
      const int64_t src_diag = k + move.diag_delta;
      const int64_t frontier = table.FrontierRow(h - 1, src_diag);
      if (frontier == WaveTable::kUnreached) continue;
      // Land as close below the current row as the predecessor frontier
      // allows; rows below a frontier are also <= h-1 (Property 9).
      const int64_t land = std::min(frontier + move.row_delta, cur_r);
      const int64_t pred_row = land - move.row_delta;
      if (pred_row < 0) continue;
      const int64_t pred_col = pred_row + src_diag;
      if (pred_col < 0 || pred_col > params.b_len) continue;
      if (land + k < 0 || land + k > params.b_len || land > params.a_len) {
        continue;
      }
      if (land < cur_r && Slide(index, params, k, land) < cur_r) continue;
      // A substitution must rewrite a genuine mismatch; equal symbols are
      // consumed by match runs instead.
      if (move.kind == PairOpKind::kSubstitute &&
          index.text()[params.a_begin + pred_row] ==
              index.text()[params.b_begin + pred_col]) {
        continue;
      }
      emit_matches(land, cur_r);
      switch (move.kind) {
        case PairOpKind::kDeleteA:
          rev_ops.push_back(PairOp{PairOpKind::kDeleteA, pred_row, -1, 1});
          break;
        case PairOpKind::kDeleteB:
          rev_ops.push_back(PairOp{PairOpKind::kDeleteB, -1, pred_col, 1});
          break;
        case PairOpKind::kSubstitute:
          rev_ops.push_back(
              PairOp{PairOpKind::kSubstitute, pred_row, pred_col, 1});
          break;
        case PairOpKind::kDoubleDeleteA:
          rev_ops.push_back(
              PairOp{PairOpKind::kDoubleDeleteA, pred_row, -1, 1});
          break;
        case PairOpKind::kDoubleDeleteB:
          rev_ops.push_back(
              PairOp{PairOpKind::kDoubleDeleteB, -1, pred_col, 1});
          break;
        case PairOpKind::kMatch:
          break;  // not a unit op; unreachable
      }
      k = src_diag;
      cur_r = pred_row;
      --h;
      stepped = true;
    }
    if (!stepped) {
      return Status::Internal("wave backtrack found no consistent move");
    }
  }

  DYCK_CHECK_EQ(k, 0) << "backtrack must end on the main diagonal";
  emit_matches(0, cur_r);
  std::reverse(rev_ops.begin(), rev_ops.end());
  result.ops = std::move(rev_ops);
  return result;
}

}  // namespace dyck
