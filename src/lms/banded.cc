#include "src/lms/banded.h"

#include <algorithm>
#include <limits>

namespace dyck {

namespace {
constexpr int64_t kInf = std::numeric_limits<int64_t>::max() / 4;
}  // namespace

StatusOr<BandedResult> BandedAlign(const std::vector<int32_t>& a,
                                   const std::vector<int32_t>& b,
                                   WaveMetric metric, int64_t max_cost) {
  if (max_cost < 0) {
    return Status::InvalidArgument("max_cost must be non-negative");
  }
  const int64_t n = static_cast<int64_t>(a.size());
  const int64_t m = static_cast<int64_t>(b.size());
  const bool subs = metric == WaveMetric::kSubstitution;
  // A path of cost h strays at most h (deletions) or 2h (double deletions)
  // diagonals from the main diagonal.
  const int64_t w = subs ? 2 * max_cost : max_cost;
  if (std::abs(n - m) > w) {
    return Status::BoundExceeded("length difference exceeds the band");
  }

  // dp[r][c - (r - w)]: row-local band of width 2w+1.
  const int64_t width = 2 * w + 1;
  std::vector<std::vector<int64_t>> dp(
      n + 1, std::vector<int64_t>(width, kInf));
  auto at = [&](int64_t r, int64_t c) -> int64_t {
    if (r < 0 || r > n || c < 0 || c > m) return kInf;
    const int64_t off = c - (r - w);
    if (off < 0 || off >= width) return kInf;
    return dp[r][off];
  };
  auto set = [&](int64_t r, int64_t c, int64_t v) {
    dp[r][c - (r - w)] = v;
  };

  for (int64_t r = 0; r <= n; ++r) {
    const int64_t c_lo = std::max<int64_t>(0, r - w);
    const int64_t c_hi = std::min(m, r + w);
    for (int64_t c = c_lo; c <= c_hi; ++c) {
      if (r == 0 && c == 0) {
        set(r, c, 0);
        continue;
      }
      int64_t best = kInf;
      best = std::min(best, at(r - 1, c) + 1);
      best = std::min(best, at(r, c - 1) + 1);
      if (r > 0 && c > 0) {
        const int64_t mismatch = a[r - 1] == b[c - 1] ? 0 : (subs ? 1 : 2);
        best = std::min(best, at(r - 1, c - 1) + mismatch);
      }
      if (subs) {
        best = std::min(best, at(r - 2, c) + 1);
        best = std::min(best, at(r, c - 2) + 1);
      }
      set(r, c, best);
    }
  }

  const int64_t cost = at(n, m);
  if (cost > max_cost) {
    return Status::BoundExceeded("pair distance exceeds max_cost");
  }

  // Backtrack, preferring matches so scripts keep as many symbols as
  // possible. Ops are emitted in reverse and flipped at the end.
  BandedResult result;
  result.cost = cost;
  int64_t r = n;
  int64_t c = m;
  while (r > 0 || c > 0) {
    const int64_t cur = at(r, c);
    if (r > 0 && c > 0 && a[r - 1] == b[c - 1] &&
        at(r - 1, c - 1) == cur) {
      result.ops.push_back({PairOpKind::kMatch, r - 1, c - 1});
      --r;
      --c;
      continue;
    }
    if (subs && r > 0 && c > 0 && a[r - 1] != b[c - 1] &&
        at(r - 1, c - 1) + 1 == cur) {
      result.ops.push_back({PairOpKind::kSubstitute, r - 1, c - 1});
      --r;
      --c;
      continue;
    }
    if (r > 0 && at(r - 1, c) + 1 == cur) {
      result.ops.push_back({PairOpKind::kDeleteA, r - 1, -1});
      --r;
      continue;
    }
    if (c > 0 && at(r, c - 1) + 1 == cur) {
      result.ops.push_back({PairOpKind::kDeleteB, -1, c - 1});
      --c;
      continue;
    }
    if (subs && r > 1 && at(r - 2, c) + 1 == cur) {
      result.ops.push_back({PairOpKind::kDoubleDeleteA, r - 2, -1});
      r -= 2;
      continue;
    }
    if (subs && c > 1 && at(r, c - 2) + 1 == cur) {
      result.ops.push_back({PairOpKind::kDoubleDeleteB, -1, c - 2});
      c -= 2;
      continue;
    }
    // Deletion-metric mismatch step (cost 2) decomposes into two deletions.
    if (!subs && r > 0 && c > 0 && at(r - 1, c - 1) + 2 == cur) {
      result.ops.push_back({PairOpKind::kDeleteA, r - 1, -1});
      result.ops.push_back({PairOpKind::kDeleteB, -1, c - 1});
      --r;
      --c;
      continue;
    }
    return Status::Internal("banded backtrack found no consistent move");
  }
  std::reverse(result.ops.begin(), result.ops.end());
  return result;
}

}  // namespace dyck
