// Registry adapter for the banded single-peak solver.
//
// A Property-19 reduced sequence that is one opening run followed by one
// closing run (a "single peak" — either run may be empty) has
// edit1(X) = the deletion edit distance between the opening run's type
// string and the reversed closing run's type string: every surviving
// symbol pair is a LIFO match across the peak, which is exactly the primed
// distance the LMS98 machinery computes (paper Definition 6). BandedAlign
// answers it in O(len * d) with operation reconstruction, so this solver
// beats the full FPT recursion on high-d single-peak inputs while
// remaining exact. Deletion metric only: under substitutions the optimal
// script can pair symbols within one run (edit2("((") = 1), which the
// two-string alignment cannot express.

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/core/context.h"
#include "src/core/solver.h"
#include "src/lms/banded.h"
#include "src/profile/reduce.h"
#include "src/util/logging.h"

namespace dyck {

namespace {

// Calibrated against BENCH_crossover.json (DESIGN.md §5.10): O(n) reduce +
// O(reduced_len * d) band fill, charged against the full input length.
constexpr double kBandedPerSymbol = 10e-9;
constexpr double kBandedPerSymbolD = 2e-9;

bool IsSinglePeak(ParenSpan seq) {
  bool seen_close = false;
  for (const Paren& p : seq) {
    if (p.is_open) {
      if (seen_close) return false;
    } else {
      seen_close = true;
    }
  }
  return true;
}

Status NotSinglePeak() {
  return Status::InvalidArgument(
      "solver 'banded' requires a single-peak reduced input — one opening "
      "run followed by one closing run (capability: single-peak)");
}

// Splits the reduced single-peak sequence into the opening run's type
// string and the reversed closing run's type string.
void BuildTypeStrings(ParenSpan reduced_seq, std::vector<int32_t>* a,
                      std::vector<int32_t>* b) {
  const int64_t n = static_cast<int64_t>(reduced_seq.size());
  int64_t m = 0;
  while (m < n && reduced_seq[m].is_open) ++m;
  a->clear();
  a->reserve(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) a->push_back(reduced_seq[i].type);
  b->clear();
  b->reserve(static_cast<size_t>(n - m));
  for (int64_t i = n - 1; i >= m; --i) b->push_back(reduced_seq[i].type);
}

class BandedSolver final : public Solver {
 public:
  const char* name() const override { return "banded"; }
  const SolverCaps& caps() const override {
    static const SolverCaps caps{/*deletions=*/true, /*substitutions=*/false,
                                 /*exact=*/true, /*needs_reduced=*/true,
                                 /*supports_doubling=*/true,
                                 /*planner_candidate=*/true,
                                 Algorithm::kBanded};
    return caps;
  }
  double PredictCost(int64_t n, int64_t d_hint) const override {
    const double nd = static_cast<double>(n);
    return kBandedPerSymbol * nd +
           kBandedPerSymbolD * nd * static_cast<double>(d_hint);
  }
  bool Applicable(const SolveRequest& request) const override {
    return request.reduced != nullptr &&
           IsSinglePeak(request.reduced->seq);
  }
  Status Solve(const SolveRequest& request, RepairContext& ctx,
               RepairTelemetry* telemetry, SolverResult* out) const override {
    if (request.use_substitutions) return CheckMetric(true);
    if (!Applicable(request)) return NotSinglePeak();
    const Reduced& reduced = *request.reduced;
    const int64_t n_red = static_cast<int64_t>(reduced.seq.size());
    std::vector<int32_t>& a = ctx.band_types_a();
    std::vector<int32_t>& b = ctx.band_types_b();
    BuildTypeStrings(reduced.seq, &a, &b);
    StatusOr<SolverResult> result = solver_internal::DoublingSolve(
        request.doubling_cap, request.max_distance, telemetry,
        [&](int32_t d) -> StatusOr<SolverResult> {
          DYCK_ASSIGN_OR_RETURN(
              const BandedResult aligned,
              BandedAlign(a, b, WaveMetric::kDeletion, d));
          SolverResult s;
          s.distance = aligned.cost;
          s.script.ops.reserve(static_cast<size_t>(aligned.cost));
          for (const PairOp& op : aligned.ops) {
            switch (op.kind) {
              case PairOpKind::kMatch:
                for (int64_t t = 0; t < op.len; ++t) {
                  s.script.aligned_pairs.emplace_back(
                      reduced.orig_pos[op.a_pos + t],
                      reduced.orig_pos[n_red - 1 - (op.b_pos + t)]);
                }
                break;
              case PairOpKind::kDeleteA:
                s.script.ops.push_back({EditOpKind::kDelete,
                                        reduced.orig_pos[op.a_pos],
                                        Paren{}});
                break;
              case PairOpKind::kDeleteB:
                s.script.ops.push_back(
                    {EditOpKind::kDelete,
                     reduced.orig_pos[n_red - 1 - op.b_pos], Paren{}});
                break;
              default:
                return Status::Internal(
                    "substitution op under the deletion metric");
            }
          }
          s.script.aligned_pairs.insert(s.script.aligned_pairs.end(),
                                        reduced.matched_pairs.begin(),
                                        reduced.matched_pairs.end());
          s.script.Normalize();
          DYCK_CHECK_EQ(s.script.Cost(), s.distance);
          return s;
        });
    if (!result.ok()) return result.status();
    *out = std::move(result).value();
    return Status::OK();
  }
  StatusOr<int64_t> SolveDistance(const SolveRequest& request) const override {
    if (request.use_substitutions) return CheckMetric(true);
    // The Distance() path precomputes no reduction; build one locally.
    const Reduced reduced = Reduce(request.seq);
    if (!IsSinglePeak(reduced.seq)) return NotSinglePeak();
    std::vector<int32_t> a;
    std::vector<int32_t> b;
    BuildTypeStrings(reduced.seq, &a, &b);
    return solver_internal::DoublingDistance(
        request.doubling_cap, request.max_distance,
        [&](int32_t d) -> std::optional<int64_t> {
          const auto aligned = BandedAlign(a, b, WaveMetric::kDeletion, d);
          if (!aligned.ok()) return std::nullopt;
          return aligned->cost;
        });
  }
};

}  // namespace

void RegisterLmsSolvers(SolverRegistry& registry) {
  DYCK_CHECK(registry.Register(std::make_unique<BandedSolver>()).ok());
}

}  // namespace dyck
