// Banded alignment with operation reconstruction.
//
// The wave engine (wave.h) answers *distances* in O(d^2); when an actual
// optimal operation sequence is needed (edit-script extraction, "A note on
// computing an optimal sequence of edits" in §1.1), the leaves of the FPT
// recursion re-run a classical DP restricted to the band of diagonals
// |c - r| <= O(d) that any <=d-cost path must stay inside. Cost is
// O(len * d) per leaf and the leaves of one optimal solution are disjoint,
// so reconstruction totals O(n * d).

#ifndef DYCKFIX_SRC_LMS_BANDED_H_
#define DYCKFIX_SRC_LMS_BANDED_H_

#include <cstdint>
#include <vector>

#include "src/lms/wave.h"
#include "src/util/statusor.h"

namespace dyck {

/// One primitive operation of the primed distances (Definitions 6 and 28),
/// expressed on the (A, B) pair.
enum class PairOpKind {
  /// a[a_pos] aligned with b[b_pos] at zero cost.
  kMatch,
  /// a[a_pos] deleted (cost 1).
  kDeleteA,
  /// b[b_pos] deleted (cost 1).
  kDeleteB,
  /// a[a_pos] and b[b_pos] aligned by one substitution (cost 1;
  /// substitution metric only).
  kSubstitute,
  /// a[a_pos] and a[a_pos+1] removed together (cost 1; substitution metric
  /// only — models rewriting "((" as "()").
  kDoubleDeleteA,
  /// b[b_pos] and b[b_pos+1] removed together (cost 1; substitution metric
  /// only).
  kDoubleDeleteB,
};

struct PairOp {
  PairOpKind kind;
  int64_t a_pos = -1;  // index into A, or -1 when the op touches only B
  int64_t b_pos = -1;  // index into B, or -1 when the op touches only A
  /// Run length; > 1 only for kMatch (a run of `len` consecutive aligned
  /// pairs starting at (a_pos, b_pos)).
  int64_t len = 1;
};

struct BandedResult {
  int64_t cost = 0;
  /// Operations in order of increasing positions.
  std::vector<PairOp> ops;
};

/// Aligns `a` against `b` under `metric`, confining the DP to the band
/// reachable with cost <= max_cost. Returns BoundExceeded if the true
/// distance is larger than max_cost.
StatusOr<BandedResult> BandedAlign(const std::vector<int32_t>& a,
                                   const std::vector<int32_t>& b,
                                   WaveMetric metric, int64_t max_cost);

}  // namespace dyck

#endif  // DYCKFIX_SRC_LMS_BANDED_H_
