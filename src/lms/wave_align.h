// Operation reconstruction by backtracking through the wave frontiers.
//
// Unlike BandedAlign (O(len * d) time and memory), this walks the O(d^2)
// wave table of a finished ComputeWaves run: one predecessor step per wave,
// so O(d) candidate probes plus one kMatch run op per slide. Memory stays
// O(d^2) regardless of the substring lengths — this is what makes
// edit-script extraction from very long FPT leaves feasible.

#ifndef DYCKFIX_SRC_LMS_WAVE_ALIGN_H_
#define DYCKFIX_SRC_LMS_WAVE_ALIGN_H_

#include "src/lms/banded.h"
#include "src/lms/wave.h"
#include "src/util/statusor.h"

namespace dyck {

/// Computes waves for `params` and reconstructs one optimal operation
/// sequence between the full substrings A and B. Matches are emitted as
/// run ops (PairOpKind::kMatch with len >= 1). Returns BoundExceeded when
/// the distance is larger than params.max_d. `pool` (optional) supplies
/// the wave table's frontier storage (see ComputeWaves).
StatusOr<BandedResult> WaveAlign(const LceIndex& index,
                                 const WaveParams& params,
                                 ScratchPool<int64_t>* pool = nullptr);

}  // namespace dyck

#endif  // DYCKFIX_SRC_LMS_WAVE_ALIGN_H_
