#include "src/lms/wave.h"

#include <algorithm>

#include "src/simd/simd.h"
#include "src/util/logging.h"

namespace dyck {

namespace {

// Largest row r (<= a_len, with r+k <= b_len) reachable by extending `r`
// along diagonal k with cost-free matches.
int64_t Slide(const LceIndex& index, const WaveParams& p, int64_t diag,
              int64_t r) {
  const int64_t c = r + diag;
  const int64_t room = std::min(p.a_len - r, p.b_len - c);
  if (room <= 0) return r;
  const int64_t ext =
      std::min(room, index.Lce(p.a_begin + r, p.b_begin + c));
  return r + ext;
}

}  // namespace

WaveTable ComputeWaves(const LceIndex& index, const WaveParams& params,
                       ScratchPool<int64_t>* pool) {
  DYCK_CHECK_GE(params.max_d, 0);
  DYCK_CHECK_GE(params.a_len, 0);
  DYCK_CHECK_GE(params.b_len, 0);
  DYCK_CHECK_LE(params.a_begin + params.a_len, index.size());
  DYCK_CHECK_LE(params.b_begin + params.b_len, index.size());

  WaveTable table;
  table.a_len_ = params.a_len;
  table.b_len_ = params.b_len;
  table.max_d_ = params.max_d;
  const bool subs = params.metric == WaveMetric::kSubstitution;
  // One edit moves the diagonal by at most 1 (deletion metric) or 2
  // (substitution metric: a paired double-deletion).
  const int64_t span = subs ? 2 * int64_t{params.max_d} : params.max_d;
  table.diag_span_ = span;
  table.stride_ = 2 * span + 1;
  table.pool_ = pool;
  if (pool != nullptr) table.frontiers_ = pool->Acquire();
  table.frontiers_.assign(
      static_cast<size_t>((params.max_d + 1) * table.stride_),
      WaveTable::kUnreached);

  // Wave 0: only the main diagonal, slid through the common prefix.
  if (span >= 0) {
    table.frontiers_[span] = Slide(index, params, 0, 0);
  }

  // Per-wave combine: cand[k+span] = best row on diagonal k reachable from
  // wave h-1 by carry-over (D <= h-1 implies D <= h) or one edit move —
  // deletion from A (diagonal k+1, row +1), deletion from B (k-1, +0), and
  // under the substitution metric also substitution (k, +1) and the paired
  // double deletions (k+2, +2) / (k-2, +0) — with the rectangle clamps:
  // the source need not be the frontier cell itself, since every row below
  // a frontier is also within wave h-1 (Property 9 / Lemma 30), so when a
  // frontier's landing falls outside the rectangle the move clamps the
  // source down instead of rejecting. Without the clamp, boundary cells
  // (c = b_len or r = a_len) reachable only from mid-diagonal cells would
  // be missed. The move arithmetic is the vector kernel's contract
  // (simd::WaveCombineRow, pinned to this exact rule set by simd_test);
  // the Lce-dependent Slide stays on the consumer side.
  std::vector<int64_t> cand(static_cast<size_t>(table.stride_));
  std::vector<int64_t> pad_scratch;
  for (int32_t h = 1; h <= params.max_d; ++h) {
    const int64_t* prev = table.frontiers_.data() + (h - 1) * table.stride_;
    int64_t* cur = table.frontiers_.data() + h * table.stride_;
    simd::WaveCombineRow(prev, span, params.a_len, params.b_len, subs,
                         WaveTable::kUnreached, cand.data(), &pad_scratch);
    for (int64_t k = -span; k <= span; ++k) {
      // No cell of the DP rectangle lies on this diagonal.
      if (k > params.b_len || -k > params.a_len) continue;
      const int64_t best = cand[k + span];
      if (best == WaveTable::kUnreached) continue;
      cur[k + span] = Slide(index, params, k, best);
    }
  }
  return table;
}

std::optional<int32_t> WaveTable::Point(int64_t r, int64_t c) const {
  DYCK_DCHECK_GE(r, 0);
  DYCK_DCHECK_GE(c, 0);
  DYCK_DCHECK_LE(r, a_len_);
  DYCK_DCHECK_LE(c, b_len_);
  const int64_t diag = c - r;
  if (diag < -diag_span_ || diag > diag_span_) return std::nullopt;
  if (FrontierAt(max_d_, diag) < r) return std::nullopt;
  // Waves are nondecreasing per diagonal (Property 9 / Lemma 30), so the
  // first wave whose frontier reaches row r is D[r][c].
  int32_t lo = 0;
  int32_t hi = max_d_;
  while (lo < hi) {
    const int32_t mid = lo + (hi - lo) / 2;
    if (FrontierAt(mid, diag) >= r) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

bool WaveTable::PointWithin(int64_t r, int64_t c) const {
  const int64_t diag = c - r;
  if (diag < -diag_span_ || diag > diag_span_) return false;
  return FrontierAt(max_d_, diag) >= r;
}

int64_t WaveTable::StoredCells() const {
  return static_cast<int64_t>(frontiers_.size());
}

std::optional<int32_t> WaveEditDistance(const std::vector<int32_t>& a,
                                        const std::vector<int32_t>& b,
                                        WaveMetric metric, int32_t max_d) {
  std::vector<int32_t> c;
  c.reserve(a.size() + b.size());
  c.insert(c.end(), a.begin(), a.end());
  c.insert(c.end(), b.begin(), b.end());
  const LceIndex index = LceIndex::Build(std::move(c));
  WaveParams params;
  params.a_begin = 0;
  params.a_len = static_cast<int64_t>(a.size());
  params.b_begin = static_cast<int64_t>(a.size());
  params.b_len = static_cast<int64_t>(b.size());
  params.max_d = max_d;
  params.metric = metric;
  return ComputeWaves(index, params).Distance();
}

int64_t EditDistanceQuadratic(const std::vector<int32_t>& a,
                              const std::vector<int32_t>& b,
                              WaveMetric metric) {
  const int64_t n = static_cast<int64_t>(a.size());
  const int64_t m = static_cast<int64_t>(b.size());
  const bool subs = metric == WaveMetric::kSubstitution;
  std::vector<std::vector<int64_t>> dp(n + 1, std::vector<int64_t>(m + 1));
  for (int64_t r = 0; r <= n; ++r) {
    for (int64_t c = 0; c <= m; ++c) {
      if (r == 0 && c == 0) {
        dp[r][c] = 0;
        continue;
      }
      int64_t best = INT64_MAX;
      if (r > 0) best = std::min(best, dp[r - 1][c] + 1);
      if (c > 0) best = std::min(best, dp[r][c - 1] + 1);
      if (r > 0 && c > 0) {
        const int64_t mismatch =
            a[r - 1] == b[c - 1] ? 0 : (subs ? 1 : 2);
        best = std::min(best, dp[r - 1][c - 1] + mismatch);
      }
      if (subs && r > 1) best = std::min(best, dp[r - 2][c] + 1);
      if (subs && c > 1) best = std::min(best, dp[r][c - 2] + 1);
      dp[r][c] = best;
    }
  }
  return dp[n][m];
}

}  // namespace dyck
