#include "src/suffix/rmq.h"

#include <algorithm>

namespace dyck {

RangeMin RangeMin::Build(std::vector<int32_t> values) {
  RangeMin rmq;
  if (values.empty()) return rmq;
  rmq.levels_.push_back(std::move(values));
  const int64_t n = static_cast<int64_t>(rmq.levels_[0].size());
  for (int64_t len = 2; len <= n; len *= 2) {
    const auto& prev = rmq.levels_.back();
    std::vector<int32_t> next(n - len + 1);
    for (int64_t i = 0; i + len <= n; ++i) {
      next[i] = std::min(prev[i], prev[i + len / 2]);
    }
    rmq.levels_.push_back(std::move(next));
  }
  return rmq;
}

}  // namespace dyck
