#include "src/suffix/suffix_tree.h"

#include <algorithm>

#include "src/util/logging.h"

namespace dyck {

namespace {
constexpr int64_t kOpenEnd = int64_t{1} << 60;  // growing leaf edge
}  // namespace

SuffixTree SuffixTree::Build(const std::vector<int32_t>& text) {
  SuffixTree tree;
  tree.n_ = static_cast<int64_t>(text.size());
  if (tree.n_ == 0) return tree;

  // Append a unique sentinel so every suffix ends at a leaf.
  std::vector<int32_t> s;
  s.reserve(text.size() + 1);
  for (int32_t v : text) {
    DYCK_CHECK_GE(v, 0) << "suffix tree input values must be non-negative";
    s.push_back(v);
  }
  s.push_back(-1);
  const int64_t m = static_cast<int64_t>(s.size());

  auto& nodes = tree.nodes_;
  nodes.push_back(Node{});  // root, id 0
  nodes[0].suffix_link = 0;

  // Ukkonen state.
  int64_t active_node = 0;
  int64_t active_edge = 0;  // index into s of the edge's first symbol
  int64_t active_len = 0;
  int64_t remainder = 0;

  auto edge_length = [&](int64_t v, int64_t pos) {
    return std::min(nodes[v].end, pos + 1) - nodes[v].begin;
  };

  for (int64_t pos = 0; pos < m; ++pos) {
    int64_t need_link = -1;
    ++remainder;
    auto add_link = [&](int64_t to) {
      if (need_link >= 0) nodes[need_link].suffix_link = to;
      need_link = to;
    };
    while (remainder > 0) {
      if (active_len == 0) active_edge = pos;
      const auto it = nodes[active_node].children.find(s[active_edge]);
      if (it == nodes[active_node].children.end()) {
        const int64_t leaf = static_cast<int64_t>(nodes.size());
        nodes.push_back(Node{pos, kOpenEnd, active_node, 0, 0, {}});
        nodes[active_node].children[s[active_edge]] = leaf;
        add_link(active_node);
      } else {
        const int64_t next = it->second;
        const int64_t len = edge_length(next, pos);
        if (active_len >= len) {
          active_node = next;
          active_edge += len;
          active_len -= len;
          continue;  // walk down, then retry
        }
        if (s[nodes[next].begin + active_len] == s[pos]) {
          ++active_len;
          add_link(active_node);
          break;  // current symbol already present; rule 3 stop
        }
        // Split the edge.
        const int64_t split = static_cast<int64_t>(nodes.size());
        nodes.push_back(Node{nodes[next].begin,
                             nodes[next].begin + active_len, active_node, 0,
                             0,
                             {}});
        nodes[active_node].children[s[active_edge]] = split;
        const int64_t leaf = static_cast<int64_t>(nodes.size());
        nodes.push_back(Node{pos, kOpenEnd, split, 0, 0, {}});
        nodes[split].children[s[pos]] = leaf;
        nodes[next].begin += active_len;
        nodes[next].parent = split;
        nodes[split].children[s[nodes[next].begin]] = next;
        add_link(split);
      }
      --remainder;
      if (active_node == 0 && active_len > 0) {
        --active_len;
        active_edge = pos - remainder + 1;
      } else if (active_node != 0) {
        active_node = nodes[active_node].suffix_link;
      }
    }
  }

  // Close leaf edges and compute weighted depths + the Euler tour.
  for (Node& node : nodes) {
    if (node.end == kOpenEnd) node.end = m;
  }
  tree.leaf_of_suffix_.assign(m, -1);
  std::vector<int32_t> tour_depths;
  tree.first_visit_.assign(nodes.size(), -1);

  struct Frame {
    int64_t node;
    int32_t depth;
    std::unordered_map<int32_t, int64_t>::const_iterator next_child;
  };
  std::vector<Frame> stack;
  nodes[0].weighted_depth = 0;
  stack.push_back({0, 0, nodes[0].children.cbegin()});
  tree.first_visit_[0] = 0;
  tree.tour_nodes_.push_back(0);
  tour_depths.push_back(0);
  while (!stack.empty()) {
    Frame& frame = stack.back();
    Node& node = nodes[frame.node];
    if (frame.next_child == node.children.cend()) {
      if (node.children.empty()) {
        // Leaf: its path spells a suffix of s (sentinel included).
        const int64_t suffix = m - node.weighted_depth;
        DYCK_DCHECK_GE(suffix, 0);
        tree.leaf_of_suffix_[suffix] = frame.node;
      }
      stack.pop_back();
      if (!stack.empty()) {
        tree.tour_nodes_.push_back(stack.back().node);
        tour_depths.push_back(stack.back().depth);
      }
      continue;
    }
    const int64_t child = frame.next_child->second;
    ++frame.next_child;
    nodes[child].weighted_depth =
        node.weighted_depth + (nodes[child].end - nodes[child].begin);
    const int32_t child_depth = frame.depth + 1;
    stack.push_back({child, child_depth, nodes[child].children.cbegin()});
    tree.first_visit_[child] =
        static_cast<int64_t>(tree.tour_nodes_.size());
    tree.tour_nodes_.push_back(child);
    tour_depths.push_back(child_depth);
  }
  tree.tour_depth_rmq_ = LinearRangeMin::Build(std::move(tour_depths));
  return tree;
}

int64_t SuffixTree::Lce(int64_t i, int64_t j) const {
  DYCK_DCHECK_GE(i, 0);
  DYCK_DCHECK_GE(j, 0);
  if (i >= n_ || j >= n_) return 0;
  if (i == j) return n_ - i;
  int64_t a = first_visit_[leaf_of_suffix_[i]];
  int64_t b = first_visit_[leaf_of_suffix_[j]];
  if (a > b) std::swap(a, b);
  const int64_t lca = tour_nodes_[tour_depth_rmq_.ArgMin(a, b)];
  // The LCA is internal (distinct leaves), so its weighted depth never
  // counts the sentinel.
  return nodes_[lca].weighted_depth;
}

}  // namespace dyck
