// Linear-preprocessing, constant-query range-minimum (Fischer & Heun 2006).
//
// The sparse table (rmq.h) costs O(n log n) to build — the one place this
// library exceeded the paper's "O(n) preprocessing" claim. This structure
// restores the bound: split the array into blocks of b = Theta(log n)
// entries, answer in-block queries from lookup tables keyed by the block's
// Cartesian-tree signature (2b-bit ballot encoding; only O(4^b) = O(sqrt n)
// distinct signatures exist), and answer cross-block queries with a sparse
// table over the n/b block minima (O((n/b) log(n/b)) = O(n)).
//
// bench_preprocess compares the two; tests validate against both the
// sparse table and brute force.

#ifndef DYCKFIX_SRC_SUFFIX_RMQ_LINEAR_H_
#define DYCKFIX_SRC_SUFFIX_RMQ_LINEAR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/suffix/rmq.h"

namespace dyck {

/// Immutable O(n)-space range-minimum structure; O(1) queries.
class LinearRangeMin {
 public:
  /// Builds over `values`; O(n) time and space.
  static LinearRangeMin Build(std::vector<int32_t> values);

  /// Minimum of values[lo..hi] (inclusive); requires lo <= hi in range.
  int32_t Min(int64_t lo, int64_t hi) const;

  /// Position of the minimum (leftmost) — used by tests.
  int64_t ArgMin(int64_t lo, int64_t hi) const;

  int64_t size() const { return static_cast<int64_t>(values_.size()); }

 private:
  // In-block query table for one Cartesian-tree signature:
  // table[i * block + j] = offset of the leftmost minimum of [i..j].
  using BlockTable = std::vector<uint8_t>;

  int64_t InBlockArgMin(int64_t block_index, int64_t i, int64_t j) const;

  std::vector<int32_t> values_;
  int64_t block_ = 1;  // block length b
  // Per block: index into tables_ for its signature.
  std::vector<int32_t> block_table_index_;
  std::vector<BlockTable> tables_;
  // Sparse table over block minima (positions resolved via block argmins).
  RangeMin block_min_rmq_;
  std::vector<int32_t> block_min_;  // min value per block
};

}  // namespace dyck

#endif  // DYCKFIX_SRC_SUFFIX_RMQ_LINEAR_H_
