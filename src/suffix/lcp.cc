#include "src/suffix/lcp.h"

#include "src/util/logging.h"

namespace dyck {

std::vector<int32_t> InversePermutation(const std::vector<int32_t>& sa) {
  std::vector<int32_t> rank(sa.size());
  for (size_t r = 0; r < sa.size(); ++r) rank[sa[r]] = static_cast<int32_t>(r);
  return rank;
}

std::vector<int32_t> BuildLcpArray(const std::vector<int32_t>& text,
                                   const std::vector<int32_t>& sa) {
  const int64_t n = static_cast<int64_t>(text.size());
  DYCK_CHECK_EQ(n, static_cast<int64_t>(sa.size()));
  std::vector<int32_t> lcp(n, 0);
  if (n == 0) return lcp;
  const std::vector<int32_t> rank = InversePermutation(sa);
  int32_t h = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (rank[i] == 0) {
      h = 0;
      continue;
    }
    const int64_t j = sa[rank[i] - 1];
    if (h > 0) --h;
    while (i + h < n && j + h < n && text[i + h] == text[j + h]) ++h;
    lcp[rank[i]] = h;
  }
  return lcp;
}

}  // namespace dyck
