#include "src/suffix/lce.h"

#include <algorithm>
#include <utility>

#include "src/util/logging.h"

namespace dyck {

LceIndex LceIndex::Build(std::vector<int32_t> text) {
  LceIndex index;
  index.text_ = std::move(text);
  if (index.text_.empty()) return index;
  int64_t max_value = 0;
  for (int32_t v : index.text_) max_value = std::max<int64_t>(max_value, v);
  if (max_value > static_cast<int64_t>(index.text_.size()) * 4 + 16) {
    // Sparse alphabet: compress so SA-IS bucket arrays stay linear.
    index.sa_ = BuildSuffixArray(CompressAlphabet(index.text_));
  } else {
    index.sa_ = BuildSuffixArray(index.text_);
  }
  index.rank_ = InversePermutation(index.sa_);
  index.lcp_rmq_ =
      LinearRangeMin::Build(BuildLcpArray(index.text_, index.sa_));
  return index;
}

int64_t LceIndex::Lce(int64_t i, int64_t j) const {
  const int64_t n = size();
  DYCK_DCHECK_GE(i, 0);
  DYCK_DCHECK_GE(j, 0);
  if (i >= n || j >= n) return 0;
  if (i == j) return n - i;
  int32_t ri = rank_[i];
  int32_t rj = rank_[j];
  if (ri > rj) std::swap(ri, rj);
  return lcp_rmq_.Min(ri + 1, rj);
}

}  // namespace dyck
