// LCP array construction (Kasai et al. 2001). O(n).

#ifndef DYCKFIX_SRC_SUFFIX_LCP_H_
#define DYCKFIX_SRC_SUFFIX_LCP_H_

#include <cstdint>
#include <vector>

namespace dyck {

/// lcp[r] = length of the longest common prefix of the suffixes with ranks
/// r and r-1 in `sa`; lcp[0] = 0. `sa` must be the suffix array of `text`.
std::vector<int32_t> BuildLcpArray(const std::vector<int32_t>& text,
                                   const std::vector<int32_t>& sa);

/// Inverse permutation of a suffix array: rank[sa[r]] = r.
std::vector<int32_t> InversePermutation(const std::vector<int32_t>& sa);

}  // namespace dyck

#endif  // DYCKFIX_SRC_SUFFIX_LCP_H_
