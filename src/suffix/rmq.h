// Sparse-table range-minimum queries: O(n log n) build, O(1) query.
//
// Stands in for the constant-time LCA structure over the suffix tree in
// Theorem 12 (range minimum over the LCP array between two suffix ranks is
// exactly the weighted LCA depth).

#ifndef DYCKFIX_SRC_SUFFIX_RMQ_H_
#define DYCKFIX_SRC_SUFFIX_RMQ_H_

#include <cstdint>
#include <vector>

#include "src/util/logging.h"

namespace dyck {

/// Immutable range-minimum structure over an int32 array.
class RangeMin {
 public:
  /// Builds over `values`; O(n log n) time and space.
  static RangeMin Build(std::vector<int32_t> values);

  /// Minimum of values[lo..hi] (inclusive); requires lo <= hi in range.
  int32_t Min(int64_t lo, int64_t hi) const {
    DYCK_DCHECK_LE(lo, hi);
    DYCK_DCHECK_GE(lo, 0);
    DYCK_DCHECK_LT(hi, static_cast<int64_t>(levels_[0].size()));
    const int k = FloorLog2(hi - lo + 1);
    const auto& row = levels_[k];
    return std::min(row[lo], row[hi - (int64_t{1} << k) + 1]);
  }

  int64_t size() const {
    return levels_.empty() ? 0 : static_cast<int64_t>(levels_[0].size());
  }

 private:
  static int FloorLog2(int64_t x) { return 63 - __builtin_clzll(x); }

  std::vector<std::vector<int32_t>> levels_;
};

}  // namespace dyck

#endif  // DYCKFIX_SRC_SUFFIX_RMQ_H_
