// O(1) longest-common-extension queries after linear preprocessing.
//
// This is the exact primitive Theorem 12 extracts from the suffix tree:
// "given i and j, what is the largest q such that S[i+t] = S[j+t] for all
// t < q?". Built from SA-IS + Kasai LCP + sparse-table RMQ.

#ifndef DYCKFIX_SRC_SUFFIX_LCE_H_
#define DYCKFIX_SRC_SUFFIX_LCE_H_

#include <cstdint>
#include <vector>

#include "src/suffix/lcp.h"
#include "src/suffix/rmq_linear.h"
#include "src/suffix/sais.h"

namespace dyck {

/// Immutable LCE index over an integer string.
class LceIndex {
 public:
  /// Builds the index; values must be non-negative. O(n) total: SA-IS +
  /// Kasai LCP + the Fischer-Heun RMQ — matching the paper's linear
  /// preprocessing claim exactly.
  static LceIndex Build(std::vector<int32_t> text);

  /// Length of the longest common prefix of suffixes starting at i and j.
  int64_t Lce(int64_t i, int64_t j) const;

  int64_t size() const { return static_cast<int64_t>(text_.size()); }
  const std::vector<int32_t>& text() const { return text_; }
  const std::vector<int32_t>& suffix_array() const { return sa_; }

 private:
  std::vector<int32_t> text_;
  std::vector<int32_t> sa_;
  std::vector<int32_t> rank_;
  LinearRangeMin lcp_rmq_;
};

}  // namespace dyck

#endif  // DYCKFIX_SRC_SUFFIX_LCE_H_
