// Linear-time suffix array construction (SA-IS; Nong, Zhang & Chan 2009).
//
// This is the repository's stand-in for the suffix tree of Theorem 12: the
// paper only ever uses the suffix tree to answer longest-common-extension
// queries via LCA, and a suffix array + LCP + RMQ provides the identical
// O(n)-preprocessing / O(1)-query contract (see src/suffix/lce.h).

#ifndef DYCKFIX_SRC_SUFFIX_SAIS_H_
#define DYCKFIX_SRC_SUFFIX_SAIS_H_

#include <cstdint>
#include <vector>

namespace dyck {

/// Builds the suffix array of `text` (all values must be >= 0). Returns a
/// permutation sa of [0, n) with suffix sa[0] < suffix sa[1] < ... in
/// lexicographic order. Runs in O(n + sigma) time where sigma is the
/// largest value + 1; callers with sparse large alphabets should compress
/// values first (see CompressAlphabet).
std::vector<int32_t> BuildSuffixArray(const std::vector<int32_t>& text);

/// Coordinate-compresses `values` to the dense range [0, distinct-count),
/// preserving order. O(n log n). Returns the compressed copy.
std::vector<int32_t> CompressAlphabet(const std::vector<int32_t>& values);

/// Reference O(n^2 log n) suffix sort used by tests to validate SA-IS.
std::vector<int32_t> BuildSuffixArrayNaive(const std::vector<int32_t>& text);

}  // namespace dyck

#endif  // DYCKFIX_SRC_SUFFIX_SAIS_H_
