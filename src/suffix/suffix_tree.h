// Suffix tree (Ukkonen 1995) with constant-time LCA — the literal data
// structure Theorem 12 describes: "building the suffix tree and
// constructing an LCA data structure on the suffix tree. The answer to
// queries can be provided in constant time by finding the leaves
// corresponding to the suffixes starting at i and j and finding their LCA.
// The weighted depth of the LCA provides the length."
//
// The library's default LCE backend is the suffix array + LCP + RMQ
// construction (lce.h), which is simpler and cache-friendlier; this module
// exists for fidelity and as a measured ablation (bench_preprocess) — both
// backends answer identical queries and are differentially tested against
// each other.
//
// Construction is Ukkonen's online algorithm with hash-map edges:
// O(n) expected for integer alphabets. LCA uses an Euler tour over the
// finished tree plus the Fischer-Heun O(n)/O(1) RMQ on tour depths.

#ifndef DYCKFIX_SRC_SUFFIX_SUFFIX_TREE_H_
#define DYCKFIX_SRC_SUFFIX_SUFFIX_TREE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/suffix/rmq_linear.h"

namespace dyck {

/// Immutable suffix tree over an integer string, supporting O(1) LCE
/// queries after construction.
class SuffixTree {
 public:
  /// Builds the tree; values must be non-negative (an internal sentinel of
  /// -1 terminates the text).
  static SuffixTree Build(const std::vector<int32_t>& text);

  /// Length of the longest common prefix of suffixes i and j (the
  /// weighted depth of their leaves' LCA).
  int64_t Lce(int64_t i, int64_t j) const;

  /// Number of nodes, including the root; at most 2n+1 (tests verify).
  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }

  int64_t size() const { return n_; }

 private:
  struct Node {
    int64_t begin = 0;   // edge label = text[begin, end)
    int64_t end = 0;
    int64_t parent = -1;
    int64_t suffix_link = -1;
    int64_t weighted_depth = 0;  // string depth at the node's bottom
    std::unordered_map<int32_t, int64_t> children;
  };

  int64_t n_ = 0;
  std::vector<Node> nodes_;
  std::vector<int64_t> leaf_of_suffix_;
  // Euler tour for LCA.
  std::vector<int64_t> tour_nodes_;
  std::vector<int64_t> first_visit_;
  LinearRangeMin tour_depth_rmq_;
};

}  // namespace dyck

#endif  // DYCKFIX_SRC_SUFFIX_SUFFIX_TREE_H_
