#include "src/suffix/rmq_linear.h"

#include <algorithm>
#include <bit>

#include "src/util/logging.h"

namespace dyck {

namespace {

// 2b-bit ballot encoding of a block's Cartesian tree: for each element,
// zero or more implicit pops (bit positions skipped) then a set bit for
// the push. Blocks with equal signatures (and equal length) share argmin
// structure for every sub-range.
uint64_t BlockSignature(const int32_t* data, int64_t len) {
  uint64_t sig = 0;
  int bit = 0;
  int32_t stack[64];
  int top = 0;
  for (int64_t i = 0; i < len; ++i) {
    while (top > 0 && stack[top - 1] > data[i]) {
      --top;
      ++bit;
    }
    sig |= uint64_t{1} << bit;
    ++bit;
    stack[top++] = data[i];
  }
  return (sig << 6) | static_cast<uint64_t>(len);
}

}  // namespace

LinearRangeMin LinearRangeMin::Build(std::vector<int32_t> values) {
  LinearRangeMin rmq;
  rmq.values_ = std::move(values);
  const int64_t n = static_cast<int64_t>(rmq.values_.size());
  if (n == 0) return rmq;
  rmq.block_ = std::max<int64_t>(
      1, std::bit_width(static_cast<uint64_t>(n)) / 4);
  const int64_t b = rmq.block_;
  const int64_t num_blocks = (n + b - 1) / b;

  std::unordered_map<uint64_t, int32_t> signature_to_table;
  rmq.block_table_index_.resize(num_blocks);
  rmq.block_min_.resize(num_blocks);
  for (int64_t blk = 0; blk < num_blocks; ++blk) {
    const int64_t begin = blk * b;
    const int64_t len = std::min(b, n - begin);
    const int32_t* data = rmq.values_.data() + begin;
    const uint64_t sig = BlockSignature(data, len);
    auto [it, inserted] = signature_to_table.try_emplace(
        sig, static_cast<int32_t>(rmq.tables_.size()));
    if (inserted) {
      // Build the argmin table from this representative block.
      BlockTable table(len * len);
      for (int64_t i = 0; i < len; ++i) {
        table[i * len + i] = static_cast<uint8_t>(i);
        for (int64_t j = i + 1; j < len; ++j) {
          const uint8_t prev = table[i * len + j - 1];
          table[i * len + j] =
              data[prev] <= data[j] ? prev : static_cast<uint8_t>(j);
        }
      }
      rmq.tables_.push_back(std::move(table));
    }
    rmq.block_table_index_[blk] = it->second;
    rmq.block_min_[blk] =
        *std::min_element(data, data + len);
  }
  rmq.block_min_rmq_ = RangeMin::Build(rmq.block_min_);
  return rmq;
}

int64_t LinearRangeMin::InBlockArgMin(int64_t block_index, int64_t i,
                                      int64_t j) const {
  const int64_t begin = block_index * block_;
  const int64_t len =
      std::min(block_, static_cast<int64_t>(values_.size()) - begin);
  const BlockTable& table = tables_[block_table_index_[block_index]];
  DYCK_DCHECK_LT(j, len);
  return begin + table[i * len + j];
}

int32_t LinearRangeMin::Min(int64_t lo, int64_t hi) const {
  DYCK_DCHECK_GE(lo, 0);
  DYCK_DCHECK_LE(lo, hi);
  DYCK_DCHECK_LT(hi, static_cast<int64_t>(values_.size()));
  const int64_t bl = lo / block_;
  const int64_t bh = hi / block_;
  if (bl == bh) {
    return values_[InBlockArgMin(bl, lo - bl * block_, hi - bl * block_)];
  }
  const int64_t left_end =
      std::min(static_cast<int64_t>(values_.size()), (bl + 1) * block_) - 1;
  int32_t best = values_[InBlockArgMin(bl, lo - bl * block_,
                                       left_end - bl * block_)];
  best = std::min(best,
                  values_[InBlockArgMin(bh, 0, hi - bh * block_)]);
  if (bh > bl + 1) {
    best = std::min(best, block_min_rmq_.Min(bl + 1, bh - 1));
  }
  return best;  // O(1): three table lookups
}

int64_t LinearRangeMin::ArgMin(int64_t lo, int64_t hi) const {
  DYCK_DCHECK_GE(lo, 0);
  DYCK_DCHECK_LE(lo, hi);
  DYCK_DCHECK_LT(hi, static_cast<int64_t>(values_.size()));
  const int64_t bl = lo / block_;
  const int64_t bh = hi / block_;
  if (bl == bh) {
    return InBlockArgMin(bl, lo - bl * block_, hi - bl * block_);
  }
  // Candidates evaluated left to right with strict comparisons so ties
  // resolve to the leftmost position.
  const int64_t left_end =
      std::min(static_cast<int64_t>(values_.size()), (bl + 1) * block_) - 1;
  int64_t best = InBlockArgMin(bl, lo - bl * block_, left_end - bl * block_);
  if (bh > bl + 1) {
    // Middle: the sparse table gives the minimum *value* over whole
    // blocks; locate the leftmost block attaining it via binary search on
    // prefix minima... a linear scan would break O(1), so instead compare
    // against the value and walk the O(log) sparse-table decomposition.
    const int32_t mid_value = block_min_rmq_.Min(bl + 1, bh - 1);
    if (mid_value < values_[best]) {
      // Find the first block in (bl, bh) whose min equals mid_value.
      // Exponential narrowing via the sparse table keeps this O(log n)
      // worst case and O(1) amortized for Min() callers (the value is
      // already known; only ArgMin pays the search).
      int64_t a = bl + 1;
      int64_t z = bh - 1;
      while (a < z) {
        const int64_t mid = a + (z - a) / 2;
        if (block_min_rmq_.Min(a, mid) == mid_value) {
          z = mid;
        } else {
          a = mid + 1;
        }
      }
      best = InBlockArgMin(a, 0,
                           std::min(block_, static_cast<int64_t>(
                                                values_.size()) -
                                                a * block_) -
                               1);
    }
  }
  const int64_t right = InBlockArgMin(bh, 0, hi - bh * block_);
  if (values_[right] < values_[best]) best = right;
  return best;
}

}  // namespace dyck
