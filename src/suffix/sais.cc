#include "src/suffix/sais.h"

#include <algorithm>
#include <numeric>

#include "src/util/logging.h"

namespace dyck {
namespace {

// Core SA-IS over `s` (values in [0, sigma), s[n-1] == 0 is the unique
// minimal sentinel). Writes the suffix array into sa[0..n).
void SaIs(const int32_t* s, int32_t* sa, int32_t n, int32_t sigma) {
  DYCK_DCHECK_GE(n, 1);
  if (n == 1) {
    sa[0] = 0;
    return;
  }

  // Suffix types: true = S-type (smaller than successor), false = L-type.
  std::vector<uint8_t> is_s(n);
  is_s[n - 1] = 1;
  if (n >= 2) is_s[n - 2] = 0;  // sentinel is unique minimum
  for (int32_t i = n - 3; i >= 0; --i) {
    is_s[i] = (s[i] < s[i + 1]) || (s[i] == s[i + 1] && is_s[i + 1]);
  }
  auto is_lms = [&](int32_t i) {
    return i > 0 && is_s[i] && !is_s[i - 1];
  };

  std::vector<int32_t> bkt(sigma);
  auto bucket_bounds = [&](bool ends) {
    std::fill(bkt.begin(), bkt.end(), 0);
    for (int32_t i = 0; i < n; ++i) ++bkt[s[i]];
    int32_t sum = 0;
    for (int32_t c = 0; c < sigma; ++c) {
      sum += bkt[c];
      bkt[c] = ends ? sum : sum - bkt[c];
    }
  };

  // Induced sorting: given LMS suffixes placed at their bucket ends, fill in
  // L-type suffixes left-to-right, then S-type right-to-left.
  auto induce = [&] {
    bucket_bounds(/*ends=*/false);
    for (int32_t i = 0; i < n; ++i) {
      const int32_t j = sa[i] - 1;
      if (sa[i] > 0 && !is_s[j]) sa[bkt[s[j]]++] = j;
    }
    bucket_bounds(/*ends=*/true);
    for (int32_t i = n - 1; i >= 0; --i) {
      const int32_t j = sa[i] - 1;
      if (sa[i] > 0 && is_s[j]) sa[--bkt[s[j]]] = j;
    }
  };

  // Stage 1: sort LMS *substrings* by placing LMS positions arbitrarily at
  // bucket ends and inducing.
  std::fill(sa, sa + n, -1);
  bucket_bounds(/*ends=*/true);
  for (int32_t i = 1; i < n; ++i) {
    if (is_lms(i)) sa[--bkt[s[i]]] = i;
  }
  induce();

  // Compact the LMS positions, now in sorted LMS-substring order.
  int32_t n1 = 0;
  for (int32_t i = 0; i < n; ++i) {
    if (is_lms(sa[i])) sa[n1++] = sa[i];
  }

  // Name LMS substrings; equal substrings get equal names.
  std::fill(sa + n1, sa + n, -1);
  int32_t name = 0;
  int32_t prev = -1;
  for (int32_t i = 0; i < n1; ++i) {
    const int32_t pos = sa[i];
    bool diff = false;
    if (prev < 0) {
      diff = true;
    } else {
      for (int32_t d = 0;; ++d) {
        if (s[pos + d] != s[prev + d] || is_s[pos + d] != is_s[prev + d]) {
          diff = true;
          break;
        }
        if (d > 0 && (is_lms(pos + d) || is_lms(prev + d))) {
          // Both substrings ended (equal) or exactly one did (the type
          // mismatch above would have caught a length difference at the
          // terminating LMS position).
          break;
        }
      }
    }
    if (diff) {
      ++name;
      prev = pos;
    }
    sa[n1 + pos / 2] = name - 1;
  }
  for (int32_t i = n - 1, j = n - 1; i >= n1; --i) {
    if (sa[i] >= 0) sa[j--] = sa[i];
  }

  // Stage 2: order LMS suffixes, recursing only if names collide.
  int32_t* sa1 = sa;
  int32_t* s1 = sa + n - n1;
  if (name < n1) {
    SaIs(s1, sa1, n1, name);
  } else {
    for (int32_t i = 0; i < n1; ++i) sa1[s1[i]] = i;
  }

  // Stage 3: induce the full order from the sorted LMS suffixes.
  for (int32_t i = 1, j = 0; i < n; ++i) {
    if (is_lms(i)) s1[j++] = i;  // s1[rank-in-text-order] = position
  }
  for (int32_t i = 0; i < n1; ++i) sa1[i] = s1[sa1[i]];
  std::fill(sa + n1, sa + n, -1);
  bucket_bounds(/*ends=*/true);
  for (int32_t i = n1 - 1; i >= 0; --i) {
    const int32_t j = sa[i];
    sa[i] = -1;
    sa[--bkt[s[j]]] = j;
  }
  induce();
}

}  // namespace

std::vector<int32_t> BuildSuffixArray(const std::vector<int32_t>& text) {
  const int32_t n = static_cast<int32_t>(text.size());
  if (n == 0) return {};
  int32_t max_value = 0;
  for (int32_t v : text) {
    DYCK_CHECK_GE(v, 0) << "suffix array input values must be non-negative";
    max_value = std::max(max_value, v);
  }
  // Shift by one to reserve 0 for the sentinel.
  std::vector<int32_t> s(n + 1);
  for (int32_t i = 0; i < n; ++i) s[i] = text[i] + 1;
  s[n] = 0;
  std::vector<int32_t> sa(n + 1);
  SaIs(s.data(), sa.data(), n + 1, max_value + 2);
  // Drop the sentinel suffix (always first).
  DYCK_DCHECK_EQ(sa[0], n);
  return std::vector<int32_t>(sa.begin() + 1, sa.end());
}

std::vector<int32_t> CompressAlphabet(const std::vector<int32_t>& values) {
  std::vector<int32_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::vector<int32_t> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = static_cast<int32_t>(
        std::lower_bound(sorted.begin(), sorted.end(), values[i]) -
        sorted.begin());
  }
  return out;
}

std::vector<int32_t> BuildSuffixArrayNaive(const std::vector<int32_t>& text) {
  std::vector<int32_t> sa(text.size());
  std::iota(sa.begin(), sa.end(), 0);
  std::sort(sa.begin(), sa.end(), [&](int32_t a, int32_t b) {
    return std::lexicographical_compare(text.begin() + a, text.end(),
                                        text.begin() + b, text.end());
  });
  return sa;
}

}  // namespace dyck
