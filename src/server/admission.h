// Admission control and the pressure-driven degrade ladder for the
// serving daemon.
//
// The daemon's one shared resource is the worker pool's FIFO queue
// (runtime::ThreadPool). Left unbounded, a burst turns into unbounded
// queueing delay: every request is eventually served, each slower than
// the last, until clients have long stopped waiting. The controller
// inverts that failure mode — latency is protected, accuracy and then
// admission give way:
//
//   queue depth in [0, exact_limit]      -> kExact   (requested accuracy)
//   (exact_limit, approx_limit]          -> kApproximate (certified
//                                           factor <= max(requested, 3))
//   (approx_limit, max_queue_depth)      -> kGreedy  (linear-time upper
//                                           bound, uncertified)
//   >= max_queue_depth                   -> kShed    (typed OVERLOADED +
//                                           retry-after hint)
//
// The tiers reuse the repair stack's existing accuracy machinery
// (Options::max_approximation_factor admits the certified src/approx
// solvers; Algorithm::kGreedy is the linear-time floor), so a degraded
// response is a *normal* response — balanced output, telemetry, and a
// certified_factor a client can inspect — not a different code path.
//
// Thresholds default to 1/2 and 3/4 of max_queue_depth. The depth reading
// is a point-in-time snapshot (ThreadPool::QueueDepth); a one-request
// race only shifts a tier boundary by one, which the ladder's shape makes
// harmless.

#ifndef DYCKFIX_SRC_SERVER_ADMISSION_H_
#define DYCKFIX_SRC_SERVER_ADMISSION_H_

#include <atomic>
#include <cstdint>

#include "src/core/dyck.h"

namespace dyck {
namespace server {

/// The degrade ladder's rungs, in increasing pressure order.
enum class PressureTier : int {
  kExact = 0,
  kApproximate = 1,
  kGreedy = 2,
  kShed = 3,
};

/// Wire name of a tier ("exact", "approx", "greedy", "shed") — reported
/// in every ok response's pressure= field.
const char* PressureTierName(PressureTier tier);

struct AdmissionConfig {
  /// Queue depth at which requests are shed (>= 1; 0 is clamped to 1).
  int64_t max_queue_depth = 64;
  /// Upper depth bounds of the exact / approximate tiers. <= 0 selects
  /// the defaults max_queue_depth / 2 and 3 * max_queue_depth / 4; values
  /// are clamped into sane order (exact <= approx < max).
  int64_t exact_depth_limit = 0;
  int64_t approx_depth_limit = 0;
  /// Pool width, for the retry-after hint (how fast the queue drains).
  int64_t workers = 1;
};

/// Maps queue depth to a tier and keeps the latency estimate behind the
/// retry-after hint. Decide() is lock-free and callable from any session
/// thread; RecordLatency() from any worker.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);

  struct Decision {
    PressureTier tier = PressureTier::kExact;
    /// The depth the decision was based on.
    int64_t queue_depth = 0;
    /// For kShed: suggested client backoff — the estimated time for the
    /// queue to drain below the shed boundary (EWMA service time x depth
    /// / workers, floored at 1ms).
    int64_t retry_after_ms = 0;
  };

  Decision Decide(int64_t queue_depth) const;

  /// Folds one served request's wall seconds into the service-time EWMA
  /// (alpha 0.2). Relaxed atomics — the estimate feeds a hint, so a lost
  /// update under contention is acceptable.
  void RecordLatency(double seconds);

  /// Rewrites `options` for the tier: kApproximate widens
  /// max_approximation_factor to at least 3.0 (and degrades budget trips
  /// to the certified ladder); kGreedy forces the linear-time solver.
  /// kExact / kShed leave the options untouched.
  static void ApplyTier(PressureTier tier, Options* options);

  int64_t max_queue_depth() const { return max_queue_depth_; }

 private:
  int64_t max_queue_depth_;
  int64_t exact_limit_;
  int64_t approx_limit_;
  int64_t workers_;
  std::atomic<int64_t> ewma_service_us_{0};
};

}  // namespace server
}  // namespace dyck

#endif  // DYCKFIX_SRC_SERVER_ADMISSION_H_
